# Convenience entry points; the project itself is a plain dune build.

.PHONY: all build test check clean bench crashcheck-quick crashcheck-deep faultcheck proccheck verifycheck shardcheck ringcheck snapcheck qoscheck dircheck fmt

all: build

build:
	dune build

# Fast suites only (alcotest -q skips the `Slow-tagged shape/property
# tests); use `make test` for the full tier-1 run.
quick:
	dune build && dune runtest -- -q

test:
	dune runtest

# The pre-commit gate: everything compiles and every test passes
# (dune runtest includes test_crash, i.e. the bounded crash-state
# exploration, mutation check and cross-FS differential fuzz).
check: crashcheck-quick faultcheck proccheck verifycheck shardcheck ringcheck snapcheck qoscheck dircheck

# Verification-plane gate: full vs incremental verification must give
# byte-identical verdicts over the attack suite, the corruption
# campaign and a pinned-seed crash exploration — and the sabotaged
# dirty-tracking mutation must make them diverge (exit 0 BECAUSE the
# divergence was caught).
verifycheck:
	dune build
	dune exec test/test_verifier.exe
	dune exec bin/trioctl.exe -- verifycheck
	dune exec bin/trioctl.exe -- verifycheck --mutate

# NUMA-sharding gate: shard routing, per-socket pool refill/drain, the
# balanced accounting invariant across the failure-plane explorers, and
# the cross-shard rename paths (two-shard ordered locking, writer
# death mid-rename).
shardcheck:
	dune build
	dune exec test/test_shard.exe

fmt:
	dune build @fmt

# Ring-plane gate: the ring protocol suite (wrap-around, backpressure,
# completion correspondence, batch-drain equivalence, every-Delay-point
# kill sweep, conformance over the batched plane), plus a pinned-seed
# process-death exploration with ring-mounted victims.
ringcheck:
	dune build
	dune exec test/test_ring.exe
	dune exec bin/trioctl.exe -- procfail --seed 1 --scripts 2 --ops 6 --ring 4

# Process-failure plane gate: the seeded kill/hang/watchdog/GC unit and
# property tests, a pinned-seed exploration of process-death states
# from the command line, and the skip-GC mutation self-test (the run
# must exit 0 BECAUSE the leak invariant caught the disabled GC).
proccheck:
	dune build
	dune exec test/test_procfail.exe
	dune exec bin/trioctl.exe -- procfail --seed 1 --scripts 2 --ops 6
	dune exec bin/trioctl.exe -- procfail --seed 5 --scripts 1 --ops 5 --kill-points 3 --hang-points 1 --mutate

# Media-fault plane gate: pinned-seed fault/scrub regressions, the
# crash x fault composed exploration, and an end-to-end workload with
# nonzero injection that must finish with zero uncaught exceptions.
faultcheck:
	dune build
	dune exec test/test_nvm.exe -- test faults
	dune exec test/test_core.exe -- test scrub
	dune exec test/test_crash.exe -- test faults
	dune exec bin/trioctl.exe -- faults --seed 42 --transient-p 0.01 --stuck-p 0.02
	dune exec bin/trioctl.exe -- scrub --seed 7 --lines 12 --rounds 2

# Bounded deterministic crash-state exploration from the command line:
# a fixed seed, small scripts, exhaustive subset enumeration.
crashcheck-quick:
	dune build && dune runtest
	dune exec bin/trioctl.exe -- crashcheck --seed 1 --scripts 2 --ops 6

# Full exploration: more seeds, longer scripts, wider sampling, and the
# deep tier of test_crash (CRASHCHECK_DEEP=1).
crashcheck-deep:
	dune build
	CRASHCHECK_DEEP=1 dune exec test/test_crash.exe
	dune exec bin/trioctl.exe -- crashcheck --seed 1 --scripts 8 --ops 12 --samples 10
	dune exec bin/trioctl.exe -- crashcheck --diff --scripts 4 --ops 10

# Snapshot-plane gate: the snapshot unit/regression suite (root slots,
# pinning accounting, ECC-gated rollback, recovery ladder), the
# crash-during-commit exploration (every sampled kill point must leave
# a certifiable root), the torn-commit mutation self-test (exit 0
# BECAUSE the zero-valid-root window was observed), the take/list/
# rollback/clone demo, and the recovery-speed differential gate.
snapcheck:
	dune build
	dune exec test/test_snapshot.exe
	dune exec bin/trioctl.exe -- snap
	dune exec bin/trioctl.exe -- snap --explore 2 --ops 5 --kill-points 10
	dune exec bin/trioctl.exe -- snap --mutate --ops 4 --kill-points 12
	dune exec bench/main.exe -- --fast snaprecover

# Multi-tenant QoS gate: the token-bucket/backpressure/retry-deadline
# suite (including the YCSB byzantine/SIGKILL composition and the
# kills-inside-throttle-parks exploration), the trioctl qos dump, the
# charge-bypass mutation self-test (exit 0 BECAUSE the campaign noticed
# the victim was never throttled), and the noisy-neighbour isolation
# bench (honest p99 within 2x of the all-honest baseline).
qoscheck:
	dune build
	dune exec test/test_qos.exe
	dune exec bin/trioctl.exe -- qos --kill-points 6 --ops 6
	dune exec bin/trioctl.exe -- qos --mutate --kill-points 6 --ops 6
	dune exec bench/main.exe -- --fast qos

# Directory-index gate: the B-link tree suite (scale, collisions,
# split boundaries, rename across indexed directories, the readdir
# ordering contract, kills inside index updates), the trioctl dircheck
# exploration, the skip-index-update mutation self-test (exit 0
# BECAUSE verifier invariant I5 caught the unmaintained tree), and the
# dirscale bench gate (index >= 10x the linear scan, sub-linear
# growth, readdir via range scan).
dircheck:
	dune build
	dune exec test/test_dirindex.exe
	dune exec bin/trioctl.exe -- dircheck
	dune exec bin/trioctl.exe -- dircheck --mutate
	dune exec bench/main.exe -- --fast dirscale

bench:
	dune exec bench/main.exe

clean:
	dune clean
