# Convenience entry points; the project itself is a plain dune build.

.PHONY: all build test check clean bench

all: build

build:
	dune build

# Fast suites only (alcotest -q skips the `Slow-tagged shape/property
# tests); use `make test` for the full tier-1 run.
quick:
	dune build && dune runtest -- -q

test:
	dune runtest

# The pre-commit gate: everything compiles and every test passes.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
