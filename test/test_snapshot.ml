(* Whole-FS CoW snapshot plane (DESIGN.md §4.16): root-slot commit
   protocol, snap-pinned page accounting, verifier-gated rollback
   through the ECC path, mount-the-newest-intact-root crash recovery,
   and the crash-during-publication exploration campaign. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Layout = Trio_core.Layout
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Ctl_state = Trio_core.Ctl_state
module Ctl_snapshot = Trio_core.Ctl_snapshot
module Scrub = Trio_core.Scrub
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
module Rng = Trio_util.Rng
module Explore = Trio_check.Explore
module Script = Trio_check.Script
open Trio_core.Fs_types

let kactor = Pmem.kernel_actor

let take what ctl =
  match Controller.snapshot_take ctl with
  | Ok epoch -> epoch
  | Error e -> Alcotest.failf "%s: snapshot_take failed: %s" what (errno_to_string e)

let file_record ctl ino =
  match Controller.file_info ctl ino with
  | Some f -> f
  | None -> Alcotest.failf "ino %d has no kernel record" ino

(* ------------------------------------------------------------------ *)
(* Root slots: encode/decode, corruption rejection *)

let test_root_slot_roundtrip () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let r =
        {
          Layout.sr_epoch = 7;
          sr_head = 123;
          sr_npages = 4;
          sr_payload_len = 9000;
          sr_payload_crc = 0xdeadbeef;
        }
      in
      Layout.write_snap_root pm ~slot:1 r;
      (match Layout.read_snap_root pm ~slot:1 with
      | Some r' ->
        Alcotest.(check int) "epoch" 7 r'.Layout.sr_epoch;
        Alcotest.(check int) "head" 123 r'.Layout.sr_head;
        Alcotest.(check int) "npages" 4 r'.Layout.sr_npages;
        Alcotest.(check int) "payload len" 9000 r'.Layout.sr_payload_len;
        Alcotest.(check int) "payload crc" 0xdeadbeef r'.Layout.sr_payload_crc
      | None -> Alcotest.fail "written slot did not read back");
      (* one flipped byte anywhere in the record must fail the slot CRC *)
      let addr = Layout.snap_slot_addr 1 + 17 in
      let byte = Bytes.sub (Pmem.read pm ~actor:kactor ~addr ~len:1) 0 1 in
      Bytes.set byte 0 (Char.chr (Char.code (Bytes.get byte 0) lxor 0x40));
      Pmem.write pm ~actor:kactor ~addr ~src:byte;
      Pmem.persist pm ~addr ~len:1;
      Alcotest.(check bool) "corrupted slot rejected" true
        (Layout.read_snap_root pm ~slot:1 = None))

(* ------------------------------------------------------------------ *)
(* Publication: epoch monotonicity, slot alternation, pinning,
   accounting *)

let slot_of_epoch pm epoch =
  match
    List.filter (fun slot -> Controller.snapshot_root_status pm ~slot = Some epoch) [ 0; 1 ]
  with
  | [ s ] -> s
  | [] -> Alcotest.failf "no slot holds epoch %d" epoch
  | _ -> Alcotest.failf "both slots hold epoch %d" epoch

let test_publish_alternates_slots () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl and pm = env.Helpers.pmem in
      (* Controller.create published the empty epoch-1 root already *)
      Alcotest.(check int) "initial epoch" 1 (Controller.snapshot_epoch ctl);
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      Helpers.check_ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      Helpers.check_ok "write a" (Fs.write_file ops "/a" "alpha");
      Helpers.check_ok "write b" (Fs.write_file ops "/d/b" "beta");
      Libfs.unmap_everything fs;
      let e2 = take "second" ctl in
      Alcotest.(check int) "second epoch" 2 e2;
      let s2 = slot_of_epoch pm 2 in
      let e3 = take "third" ctl in
      Alcotest.(check int) "third epoch" 3 e3;
      let s3 = slot_of_epoch pm 3 in
      Alcotest.(check bool) "slots alternate" true (s2 <> s3);
      Alcotest.(check bool) "payload pinned" true (Controller.snap_pinned_count ctl > 0);
      (* the published root names every verified file, root dir included *)
      (match Controller.snapshot_entries ctl with
      | Ok (epoch, entries) ->
        Alcotest.(check int) "entries epoch" 3 epoch;
        Alcotest.(check int) "entry count" 4 (List.length entries);
        Alcotest.(check bool) "root dir covered" true
          (List.exists (fun e -> e.Controller.e_ino = Controller.root_ino) entries);
        List.iter
          (fun e ->
            match Controller.snapshot_entry_checkpoint e with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "entry ino %d blob rejected: %s" e.Controller.e_ino m)
          entries
      | Error m -> Alcotest.failf "entries: %s" m);
      (* pinned payload pages must be invisible to the GC as leaks and
         appear in their own invariant term *)
      let gc = Controller.gc_once ctl in
      Alcotest.(check bool) "gc invariant holds" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked;
      Alcotest.(check bool) "snap term populated" true (gc.Controller.gc_snap_pinned > 0);
      Alcotest.(check int) "pinned term matches" (Controller.snap_pinned_count ctl)
        gc.Controller.gc_snap_pinned)

(* Satellite: the accounting identity
     free + pooled + snap_pinned + reachable + cached + badblocks = total
   must survive snapshots composed with process death and media
   faults. *)
let test_snap_pinned_accounting_under_faults () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl and pm = env.Helpers.pmem in
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      Helpers.check_ok "write a" (Fs.write_file ops1 "/a" (String.make 5000 'a'));
      Libfs.unmap_everything fs1;
      ignore (take "baseline" ctl);
      (* a second process dies mid-write, with a snapshot held *)
      let fs2 = Helpers.mount ~proc:2 env in
      let ops2 = Libfs.ops fs2 in
      let fd = Helpers.check_ok "open" (ops2.Fs.open_ "/a" [ O_RDWR ]) in
      ignore (Helpers.check_ok "append" (ops2.Fs.append fd (Bytes.of_string "tail")));
      Controller.abnormal_teardown ctl ~proc:2;
      let gc1 = Controller.gc_once ctl in
      Alcotest.(check bool) "invariant after proc death" true gc1.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leak after proc death" 0 gc1.Controller.gc_leaked;
      (* media fault on a file page, repaired or quarantined by patrol *)
      let f = file_record ctl (Helpers.check_ok "stat" (ops1.Fs.stat "/a")).st_ino in
      let idx_pg = List.hd f.Ctl_state.f_index_pages in
      Pmem.inject_poison pm ~addr:(idx_pg * Layout.page_size) ~len:8;
      ignore (Scrub.patrol_once ctl);
      ignore (take "post-fault" ctl);
      let gc2 = Controller.gc_once ctl in
      Alcotest.(check bool) "invariant after fault + snapshot" true
        gc2.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leak after fault + snapshot" 0 gc2.Controller.gc_leaked)

(* ------------------------------------------------------------------ *)
(* Satellite: rollback restores through the ECC path — a poisoned
   snapshot payload is detected and refused, never written back *)

let test_poisoned_snapshot_restore_rejected () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl and pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      Helpers.check_ok "write" (Fs.write_file ops "/f" "precious");
      Libfs.unmap_everything fs;
      ignore (take "snapshot" ctl);
      let ino = (Helpers.check_ok "stat" (ops.Fs.stat "/f")).st_ino in
      (* control: an intact payload restores and re-verifies fine *)
      (match Controller.snapshot_rollback_file ctl ~proc:1 ~ino with
      | Ok () -> ()
      | Error m -> Alcotest.failf "clean rollback refused: %s" m);
      (* now poison a page of the payload chain *)
      let chain =
        match Ctl_snapshot.valid_roots pm with
        | (_, _, _, pages) :: _ -> pages
        | [] -> Alcotest.fail "no valid root after publication"
      in
      Pmem.inject_poison pm ~addr:(List.hd chain * Layout.page_size) ~len:8;
      let f = file_record ctl ino in
      let before = Pmem.read pm ~actor:kactor ~addr:(f.Ctl_state.f_dentry_addr) ~len:64 in
      let events_before = List.length (Controller.corruption_events ctl) in
      (match Controller.snapshot_rollback_file ctl ~proc:1 ~ino with
      | Ok () -> Alcotest.fail "rollback from a poisoned payload must be refused"
      | Error _ -> ());
      (* nothing was blindly written back, and the refusal is on the
         media-event record *)
      let after = Pmem.read pm ~actor:kactor ~addr:(f.Ctl_state.f_dentry_addr) ~len:64 in
      Alcotest.(check bool) "device untouched" true (Bytes.equal before after);
      Alcotest.(check bool) "media event recorded" true
        (List.length (Controller.corruption_events ctl) > events_before);
      (* the poisoned pinned page is the root's only copy: patrol must
         leave it for validation to reject, not zero-fill it *)
      ignore (Scrub.patrol_once ctl);
      Alcotest.(check bool) "patrol skips pinned payload" true (Pmem.poisoned_count pm > 0);
      (* the file itself is still healthy and readable *)
      Alcotest.(check bool) "file healthy" true
        (Controller.degradation_of ctl ino = Some Controller.Healthy);
      let fs2 = Helpers.mount ~proc:2 env in
      Alcotest.(check string) "content intact" "precious"
        (Helpers.check_ok "read" (Fs.read_file (Libfs.ops fs2) "/f")))

(* ------------------------------------------------------------------ *)
(* Deepest rollback rung: ensure_verified falls through to the durable
   root when corruption lands and no DRAM checkpoint exists — the
   scenario that used to end in Failed/EIO *)

let test_corruption_recovers_via_snapshot () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl and pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      Helpers.check_ok "write" (Fs.write_file ops "/f" "hello");
      Libfs.unmap_everything fs;
      ignore (take "snapshot" ctl);
      let ino = (Helpers.check_ok "stat" (ops.Fs.stat "/f")).st_ino in
      (* the writer comes back, lies about the size, and dies; the
         controller has meanwhile lost its DRAM checkpoint (restart) *)
      let fd = Helpers.check_ok "reopen" (ops.Fs.open_ "/f" [ O_RDWR ]) in
      ignore (Helpers.check_ok "append" (ops.Fs.append fd (Bytes.of_string "!")));
      let f = file_record ctl ino in
      Pmem.write_u64 pm ~actor:kactor
        ~addr:(f.Ctl_state.f_dentry_addr + Layout.off_size)
        (1 lsl 26);
      f.Ctl_state.f_checkpoint <- None;
      (* the async pipeline may have verified the pre-corruption append
         already; the lie lands after, so re-flag the handoff *)
      Ctl_state.mark_unverified ctl f 1;
      Controller.abnormal_teardown ctl ~proc:1;
      (* teardown flags the handoff; the verdict ladder runs at the
         gate — force it now, as the next mapper would *)
      ignore (Controller.drain_unverified ctl);
      (* without the snapshot rung this was Failed + EIO; now the file
         rolls back to the published root and re-earns its verdict *)
      Alcotest.(check bool) "rolled back, not failed" true
        (Controller.degradation_of ctl ino = Some Controller.Healthy);
      Alcotest.(check bool) "restore attributed" true
        (Controller.was_snapshot_restored ctl ino);
      let fs2 = Helpers.mount ~proc:2 env in
      Alcotest.(check string) "snapshot content readable" "hello"
        (Helpers.check_ok "read" (Fs.read_file (Libfs.ops fs2) "/f")))

(* Scrub repair ladder: with the DRAM checkpoint gone, a poisoned
   metadata page is repaired from the durable root instead of being
   migrated + degraded. *)
let test_scrub_repairs_from_snapshot () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl and pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      Helpers.check_ok "write" (Fs.write_file ops "/f" "scrub me");
      Libfs.unmap_everything fs;
      ignore (take "snapshot" ctl);
      let ino = (Helpers.check_ok "stat" (ops.Fs.stat "/f")).st_ino in
      let f = file_record ctl ino in
      f.Ctl_state.f_checkpoint <- None;
      let idx_pg = List.hd f.Ctl_state.f_index_pages in
      Pmem.inject_poison pm ~addr:(idx_pg * Layout.page_size) ~len:8;
      let st = Scrub.patrol_once ctl in
      Alcotest.(check int) "line repaired from root" 1 st.Scrub.repaired;
      Alcotest.(check int) "nothing migrated" 0 st.Scrub.migrated;
      Alcotest.(check int) "poison healed" 0 (Pmem.poisoned_count pm);
      Alcotest.(check bool) "file still healthy" true
        (Controller.degradation_of ctl ino = Some Controller.Healthy);
      let fs2 = Helpers.mount ~proc:2 env in
      Alcotest.(check string) "content intact" "scrub me"
        (Helpers.check_ok "read" (Fs.read_file (Libfs.ops fs2) "/f")))

(* ------------------------------------------------------------------ *)
(* Crash recovery: mount the newest intact root; fsck as fallback *)

let make_world () =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes:2 ~cpus_per_node:4 in
  let pmem =
    Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node:16384 ~store_data:true ()
  in
  let mmu = Mmu.create pmem in
  (sched, pmem, mmu)

let test_recover_mounts_newest_root () =
  let sched, pmem, mmu = make_world () in
  let done_ = ref false in
  Sched.spawn sched (fun () ->
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let fs = Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } () in
      let ops = Libfs.ops fs in
      (match ops.Fs.mkdir "/d" 0o755 with Ok () -> () | Error _ -> Alcotest.fail "mkdir");
      (match Fs.write_file ops "/a" "survives" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write a");
      (match Fs.write_file ops "/d/b" "also survives" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write b");
      Libfs.unmap_everything fs;
      let epoch = take "publish" ctl in
      (* the machine dies: DRAM state is gone, NVM persists *)
      let mmu2 = Mmu.create pmem in
      (match Controller.recover ~sched ~pmem ~mmu:mmu2 () with
      | Ok (ctl2, Controller.Mounted_root e) ->
        Alcotest.(check int) "mounted the committed epoch" epoch e;
        let checked, bad = Controller.audit_all ctl2 in
        Alcotest.(check bool) "files audited" true (checked >= 4);
        Alcotest.(check int) "all certified" 0 bad;
        let gc = Controller.gc_once ctl2 in
        Alcotest.(check bool) "accounting rebuilt" true gc.Controller.gc_invariant_ok;
        Alcotest.(check int) "nothing leaked" 0 gc.Controller.gc_leaked;
        let fs2 = Libfs.mount ~ctl:ctl2 ~proc:2 ~cred:{ uid = 1000; gid = 1000 } () in
        let ops2 = Libfs.ops fs2 in
        (match Fs.read_file ops2 "/a" with
        | Ok s -> Alcotest.(check string) "/a content" "survives" s
        | Error e -> Alcotest.failf "/a unreadable: %s" (errno_to_string e));
        (match Fs.read_file ops2 "/d/b" with
        | Ok s -> Alcotest.(check string) "/d/b content" "also survives" s
        | Error e -> Alcotest.failf "/d/b unreadable: %s" (errno_to_string e))
      | Ok (_, Controller.Fsck_fallback) ->
        Alcotest.fail "intact roots existed but recovery fell back to the fsck walk"
      | Error m -> Alcotest.failf "recovery failed: %s" m);
      (* destroy both slots: recovery must demote itself to the walk *)
      let garbage = Bytes.make Layout.snap_slot_size '\xff' in
      List.iter
        (fun slot ->
          let addr = Layout.snap_slot_addr slot in
          Pmem.write pmem ~actor:kactor ~addr ~src:garbage;
          Pmem.persist pmem ~addr ~len:Layout.snap_slot_size)
        [ 0; 1 ];
      let mmu3 = Mmu.create pmem in
      (match Controller.recover ~sched ~pmem ~mmu:mmu3 () with
      | Ok (ctl3, Controller.Fsck_fallback) ->
        let fs3 = Libfs.mount ~ctl:ctl3 ~proc:3 ~cred:{ uid = 1000; gid = 1000 } () in
        (match Fs.read_file (Libfs.ops fs3) "/a" with
        | Ok s -> Alcotest.(check string) "fsck still serves /a" "survives" s
        | Error e -> Alcotest.failf "fsck mount unreadable: %s" (errno_to_string e))
      | Ok (_, Controller.Mounted_root e) ->
        Alcotest.failf "mounted epoch %d from two destroyed slots" e
      | Error m -> Alcotest.failf "fsck fallback failed: %s" m);
      done_ := true);
  ignore (Sched.run sched);
  Alcotest.(check bool) "simulation completed" true !done_

(* ------------------------------------------------------------------ *)
(* Satellite: kill publication at every Delay boundary — at least one
   valid root must exist in every crash state, and recovery must land
   on a state the Full verifier certifies *)

let parse_script s =
  match Script.parse s with
  | Ok ops -> ops
  | Error e -> Alcotest.failf "bad test script %S: %s" s e

let explain cx = Format.asprintf "%a" Explore.pp_counterexample cx

let explore_ops = parse_script "mkdir /d00; create /n00; write /n00 900; create /n01"

let test_crash_during_commit_safe () =
  let o = Explore.explore_snapshot_commit explore_ops in
  (match o.Explore.sn_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "%s" (explain cx));
  if o.Explore.sn_points < 2 then
    Alcotest.failf "degenerate exploration: %d kill points" o.Explore.sn_points;
  Alcotest.(check bool) "states explored" true (o.Explore.sn_states > 0);
  Alcotest.(check int) "no zero-root states" 0 o.Explore.sn_zero_roots;
  Alcotest.(check int) "no fsck fallbacks" 0 o.Explore.sn_fsck

let test_crash_during_commit_random_scripts () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let ops = Script.generate rng ~len:5 in
      let config = { Explore.default_snap_config with sc_kill_points = 10 } in
      let o = Explore.explore_snapshot_commit ~config ops in
      match o.Explore.sn_failure with
      | None -> ()
      | Some cx -> Alcotest.failf "seed %d: %s" seed (explain cx))
    [ 11; 42 ]

(* Mutation self-test: with the commit ordering sabotaged (root record
   first, payload second, into the live slot), the campaign must
   observe at least one zero-valid-root crash state — proof it can see
   the bug class. *)
let test_torn_commit_caught () =
  let config = { Explore.sc_kill_points = 16; sc_torn = true } in
  let o = Explore.explore_snapshot_commit ~config explore_ops in
  (match o.Explore.sn_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "torn-mode exploration broke elsewhere: %s" (explain cx));
  if o.Explore.sn_zero_roots = 0 then
    Alcotest.failf
      "sabotaged commit ordering not caught: %d states, no zero-root window observed"
      o.Explore.sn_states

let () =
  Alcotest.run "snapshot"
    [
      ( "roots",
        [
          Alcotest.test_case "slot roundtrip + corruption rejected" `Quick
            test_root_slot_roundtrip;
          Alcotest.test_case "publish alternates slots" `Quick test_publish_alternates_slots;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "snap_pinned term under faults" `Quick
            test_snap_pinned_accounting_under_faults;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "poisoned payload refused" `Quick
            test_poisoned_snapshot_restore_rejected;
          Alcotest.test_case "corruption recovers via snapshot" `Quick
            test_corruption_recovers_via_snapshot;
          Alcotest.test_case "scrub repairs from snapshot" `Quick
            test_scrub_repairs_from_snapshot;
        ] );
      ( "recovery",
        [ Alcotest.test_case "mount newest root, fsck fallback" `Quick
            test_recover_mounts_newest_root ] );
      ( "exploration",
        [
          Alcotest.test_case "crash during commit keeps a root" `Slow
            test_crash_during_commit_safe;
          Alcotest.test_case "random scripts" `Slow test_crash_during_commit_random_scripts;
          Alcotest.test_case "torn commit caught" `Slow test_torn_commit_caught;
        ] );
    ]
