(* Process-failure plane: kill/hang injection, the controller watchdog's
   escalation ladder, the verifier gate on unverified handoffs, and the
   orphan-page GC with its accounting invariant (DESIGN.md §4.12). *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Controller = Trio_core.Controller
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs
module Script = Trio_check.Script
module Explore = Trio_check.Explore
module Rng = Trio_util.Rng
open Trio_core.Fs_types

let timeout_ns = 1.0e6

(* Mount a victim, run [work] in a killable fiber with the injector
   armed, give the watchdog a chance, and hand the test body an intact
   world plus the victim's libfs.  [work] gets the victim's fs record. *)
let with_victim ?(arm = fun _ -> ()) ?(after = fun _ -> ()) env work =
  let sched = env.Helpers.sched in
  let fs1 = Helpers.mount ~proc:1 env in
  let ops1 = Libfs.ops fs1 in
  Sched.spawn sched (fun () -> Sched.killable (fun () -> work ops1));
  arm sched;
  Sched.delay 10.0e6;
  Sched.disarm sched;
  after fs1;
  fs1

(* ------------------------------------------------------------------ *)
(* Scheduler-level injection *)

let test_kill_injection () =
  (* Killing at point 0 stops the victim before any op completes; the
     fiber dies silently (no simulation failure). *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let progressed = ref 0 in
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:0)
           (fun ops1 ->
             Helpers.check_ok "create" (Fs.write_file ops1 "/a" "aaaa");
             incr progressed;
             Helpers.check_ok "create" (Fs.write_file ops1 "/b" "bbbb");
             incr progressed));
      Alcotest.(check int) "no op completed" 0 !progressed)

let test_kill_counts_points () =
  (* The counting pass sees a stable, positive number of kill points for
     a fixed workload, and a later kill index dies later. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let progressed = ref 0 in
      ignore
        (with_victim env ~arm:Sched.arm_count (fun ops1 ->
             Helpers.check_ok "create" (Fs.write_file ops1 "/a" "aaaa");
             incr progressed;
             Helpers.check_ok "create" (Fs.write_file ops1 "/b" "bbbb");
             incr progressed));
      let points = Sched.kill_points_crossed env.Helpers.sched in
      Alcotest.(check bool) "crossed points" true (points > 0);
      Alcotest.(check int) "completed uninjured" 2 !progressed)

let test_hang_injection () =
  (* A wedged fiber stops making progress but the simulation still
     drains; the victim keeps its resources. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let progressed = ref 0 in
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_hang s ~after:0)
           (fun ops1 ->
             Helpers.check_ok "create" (Fs.write_file ops1 "/a" "aaaa");
             incr progressed));
      Alcotest.(check int) "wedged before completing" 0 !progressed;
      Alcotest.(check int) "one fiber hung" 1 (Sched.hung_fibers env.Helpers.sched))

let test_shield_blocks_kill () =
  (* Inside a shield the injector never fires; the kill lands at the
     first unshielded point instead. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let shielded_done = ref false in
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:0)
           (fun ops1 ->
             Sched.shield (fun () ->
                 Helpers.check_ok "create" (Fs.write_file ops1 "/a" "aaaa");
                 shielded_done := true);
             Helpers.check_ok "create" (Fs.write_file ops1 "/b" "bbbb");
             Alcotest.fail "survived past the first unshielded kill point"));
      Alcotest.(check bool) "shielded section completed" true !shielded_done)

(* ------------------------------------------------------------------ *)
(* Watchdog escalation ladder *)

let test_watchdog_escalates_dead () =
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:4)
           (fun ops1 -> ignore (Fs.write_file ops1 "/a" (String.make 256 'a'))));
      let ctl = env.Helpers.ctl in
      let report = Controller.make_watchdog_report () in
      let escalated = Controller.watchdog_once ~report ctl ~timeout_ns in
      Alcotest.(check (list int)) "victim escalated" [ 1 ] escalated;
      Alcotest.(check bool) "marked dead" true (Controller.process_dead ctl ~proc:1);
      (* Second scan is idempotent: already dead, nothing to do. *)
      Alcotest.(check (list int)) "idempotent" [] (Controller.watchdog_once ctl ~timeout_ns))

let test_watchdog_respects_lease () =
  (* Rung 1: a silent writer whose lease is still running is not
     escalated; after expiry it is. *)
  Helpers.run_sim ~lease_ns:50.0e6 (fun env ->
      let sched = env.Helpers.sched in
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              Helpers.check_ok "write" (Fs.write_file ops1 "/f" "data")));
      Sched.arm_kill sched ~after:30;
      Sched.delay 10.0e6;
      Sched.disarm sched;
      (* Stale (timeout 1ms, silent ~10ms) but the 50ms write lease on the
         mapped file still runs: benefit of the doubt. *)
      let ctl = env.Helpers.ctl in
      (match Controller.watchdog_once ctl ~timeout_ns with
      | [] -> ()
      | l ->
        Alcotest.failf "escalated during the lease: [%s]"
          (String.concat ";" (List.map string_of_int l)));
      Sched.delay 60.0e6;
      Alcotest.(check (list int)) "escalated after lease expiry" [ 1 ]
        (Controller.watchdog_once ctl ~timeout_ns))

let test_heartbeat_defers_watchdog () =
  (* A process that keeps issuing ops is never escalated, no matter how
     long it lives. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      let ctl = env.Helpers.ctl in
      for i = 0 to 9 do
        Sched.delay (timeout_ns /. 2.0);
        Helpers.check_ok "write" (Fs.write_file ops1 (Printf.sprintf "/f%d" i) "x");
        match Controller.watchdog_once ctl ~timeout_ns with
        | [] -> ()
        | _ -> Alcotest.fail "live process escalated"
      done)

(* ------------------------------------------------------------------ *)
(* Verifier gate on unverified handoff *)

let test_gate_accepts_consistent_state () =
  (* The victim dies after completing a write; its state verifies as-is,
     so a second process reads the full content through the gate. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      ignore
        (with_victim env (fun ops1 ->
             Helpers.check_ok "write" (Fs.write_file ops1 "/kept" "payload")));
      let ctl = env.Helpers.ctl in
      ignore (Controller.watchdog_once ctl ~timeout_ns);
      ignore (Controller.gc_once ctl);
      let fs2 = Helpers.mount ~proc:2 env in
      let ops2 = Libfs.ops fs2 in
      let got = Helpers.check_ok "read through gate" (Fs.read_file ops2 "/kept") in
      Alcotest.(check string) "content survived the death" "payload" got)

let test_gate_verifies_once () =
  (* After the first gated map the file is ordinary again: no unverified
     flag, normal access, and the dead process stays dead. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:50)
           (fun ops1 ->
             Helpers.check_ok "w1" (Fs.write_file ops1 "/a" "aaaa");
             Helpers.check_ok "w2" (Fs.write_file ops1 "/b" (String.make 300 'b'))));
      let ctl = env.Helpers.ctl in
      ignore (Controller.watchdog_once ctl ~timeout_ns);
      ignore (Controller.gc_once ctl);
      let fs2 = Helpers.mount ~proc:2 env in
      let ops2 = Libfs.ops fs2 in
      (match Fs.read_file ops2 "/a" with
      | Ok _ | Error ENOENT | Error EIO -> ()
      | Error e -> Alcotest.failf "unclean errno %s" (errno_to_string e));
      Helpers.check_ok "write after gate" (Fs.write_file ops2 "/fresh" "new");
      let gc = Controller.gc_once ctl in
      Alcotest.(check bool) "invariant" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked)

(* ------------------------------------------------------------------ *)
(* Orphan-page GC *)

let test_gc_reclaims_orphans () =
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:10)
           (fun ops1 -> ignore (Fs.write_file ops1 "/doomed" (String.make 9000 'x'))));
      let ctl = env.Helpers.ctl in
      ignore (Controller.watchdog_once ctl ~timeout_ns);
      (* While the victim's files await the gate, its pages are deferred
         (they may hold a fresh linked file), not orphaned. *)
      let deferred = Controller.gc_once ctl in
      Alcotest.(check int) "deferred while pending" 0 deferred.Controller.gc_reclaimed_pages;
      Alcotest.(check bool) "invariant while pending" true deferred.Controller.gc_invariant_ok;
      ignore (Controller.drain_unverified ctl);
      let gc = Controller.gc_once ctl in
      (* The dead mount always orphans its allocation cache and journal
         pages, so the GC must have had work to do. *)
      Alcotest.(check bool) "reclaimed orphans" true (gc.Controller.gc_reclaimed_pages > 0);
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked;
      Alcotest.(check bool) "invariant holds" true gc.Controller.gc_invariant_ok;
      (* Steady state: a second pass finds nothing. *)
      let gc2 = Controller.gc_once ctl in
      Alcotest.(check int) "second pass idle" 0 gc2.Controller.gc_reclaimed_pages)

let test_gc_invariant_after_clean_unmount () =
  (* Clean shutdown never looks like a leak: pages cached by a live
     process are accounted as cached, not orphaned. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      Helpers.check_ok "write" (Fs.write_file ops1 "/f" "data");
      Libfs.unmap_everything fs1;
      let gc = Controller.gc_once env.Helpers.ctl in
      Alcotest.(check int) "nothing reclaimed" 0 gc.Controller.gc_reclaimed_pages;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked;
      Alcotest.(check bool) "invariant" true gc.Controller.gc_invariant_ok)

let test_gc_mutation_caught () =
  (* The flag-gated "skip GC" mutation must be provably caught: with the
     flag on, the same death leaves orphans and breaks the invariant. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      ignore
        (with_victim env
           ~arm:(fun s -> Sched.arm_kill s ~after:10)
           (fun ops1 -> ignore (Fs.write_file ops1 "/doomed" (String.make 9000 'x'))));
      let ctl = env.Helpers.ctl in
      ignore (Controller.watchdog_once ctl ~timeout_ns);
      ignore (Controller.drain_unverified ctl);
      Controller.set_crash_test_skip_gc true;
      let broken = Controller.gc_once ctl in
      Controller.set_crash_test_skip_gc false;
      Alcotest.(check bool) "leak detected" true (broken.Controller.gc_leaked > 0);
      Alcotest.(check bool) "invariant broken" false broken.Controller.gc_invariant_ok;
      (* and the real GC then cleans it up *)
      let fixed = Controller.gc_once ctl in
      Alcotest.(check int) "repaired" 0 fixed.Controller.gc_leaked;
      Alcotest.(check bool) "invariant restored" true fixed.Controller.gc_invariant_ok)

(* ------------------------------------------------------------------ *)
(* Satellite: direct seeded lease-expiry force-revoke regression *)

let test_lease_expiry_force_revoke () =
  (* An expired writer is force-unmapped when a conflicting mapping
     arrives: verification runs at revocation, the new writer proceeds,
     and the old writer's completed data survives. *)
  Helpers.run_sim ~lease_ns:1.0e6 (fun env ->
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let fs2 = Helpers.mount ~proc:2 ~uid:1000 env in
      let ops1 = Libfs.ops fs1 and ops2 = Libfs.ops fs2 in
      Helpers.check_ok "write" (Fs.write_file ops1 "/lease" "held-v1");
      (* hand off once so the controller knows the file... *)
      Libfs.unmap_everything fs1;
      (* ...then take the write mapping back and go silent *)
      let fd = Helpers.check_ok "open" (ops1.Fs.open_ "/lease" [ O_RDWR ]) in
      ignore (Helpers.check_ok "pwrite" (ops1.Fs.pwrite fd (Bytes.of_string "held-v2") 0));
      let ino =
        match ops1.Fs.stat "/lease" with
        | Ok st -> st.st_ino
        | Error _ -> Alcotest.fail "stat"
      in
      Alcotest.(check (option int)) "proc1 write-maps the file" (Some 1)
        (Controller.writer_of env.Helpers.ctl ino);
      Sched.delay 2.0e6 (* lease expired *);
      let t0 = Sched.now env.Helpers.sched in
      let got = Helpers.check_ok "read forces revoke" (Fs.read_file ops2 "/lease") in
      Alcotest.(check string) "verified content handed over" "held-v2" got;
      let waited = Sched.now env.Helpers.sched -. t0 in
      if waited > 1.0e6 then Alcotest.failf "expired lease still made the reader wait %.0fns" waited;
      Alcotest.(check (option int)) "writer revoked" None
        (Controller.writer_of env.Helpers.ctl ino);
      Alcotest.(check int) "no corruption recorded" 0
        (List.length (Controller.corruption_events env.Helpers.ctl)))

(* ------------------------------------------------------------------ *)
(* Satellite: concurrent handoff — writer killed mid-write, reader holds
   a read mapping *)

let test_reader_survives_writer_death () =
  (* The reader established a read mapping before the writer took over;
     whatever the kill timing, the reader afterwards sees old or
     verified-repaired content, never a fault escape.  The overwrite has
     the same length, so the only consistent states are old and new. *)
  let run_one kill_at =
    Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
        let sched = env.Helpers.sched in
        let ctl = env.Helpers.ctl in
        let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
        let fs2 = Helpers.mount ~proc:2 ~uid:1000 env in
        let ops1 = Libfs.ops fs1 and ops2 = Libfs.ops fs2 in
        Helpers.check_ok "seed" (Fs.write_file ops1 "/shared" "vvvv-1");
        Libfs.unmap_everything fs1;
        (* reader maps and reads the handed-off state *)
        Alcotest.(check string) "pre" "vvvv-1"
          (Helpers.check_ok "read" (Fs.read_file ops2 "/shared"));
        (* writer dies mid same-length overwrite *)
        Sched.spawn sched (fun () ->
            Sched.killable (fun () ->
                match ops1.Fs.open_ "/shared" [ O_RDWR ] with
                | Ok fd -> ignore (ops1.Fs.pwrite fd (Bytes.of_string "VVVV-2") 0)
                | Error _ -> ()));
        Sched.arm_kill sched ~after:kill_at;
        Sched.delay 10.0e6;
        Sched.disarm sched;
        ignore (Controller.watchdog_once ctl ~timeout_ns);
        ignore (Controller.gc_once ctl);
        let got = Helpers.check_ok "read after death" (Fs.read_file ops2 "/shared") in
        if got <> "vvvv-1" && got <> "VVVV-2" then
          Alcotest.failf "kill@%d: torn read %S" kill_at got;
        let gc = Controller.gc_once ctl in
        Alcotest.(check bool) "invariant" true gc.Controller.gc_invariant_ok;
        Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked)
  in
  List.iter run_one [ 0; 1; 2; 3; 5; 8; 13; 21 ]

(* ------------------------------------------------------------------ *)
(* The ring syscall plane under process failure (DESIGN.md §4.15) *)

let test_ring_dead_consumer_full_ring () =
  (* The drain plane wedges; the producer fills the SQ and parks on it.
     The watchdog counts the outstanding entries as held kernel-side
     work, tears the ring down (waking the parked producer with EIO),
     and the page accounting stays balanced throughout. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let sched = env.Helpers.sched in
      let ctl = env.Helpers.ctl in
      Controller.set_ring_paused ctl true;
      ignore (Helpers.mount ~proc:1 ~ring:4 env);
      let ring = Option.get (Controller.ring_of ctl 1) in
      let accepted = ref 0 and rejected = ref 0 in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              for _ = 1 to 6 do
                match Controller.Ring.submit ~forget:true ring Controller.Ring.Op_lease with
                | Ok _ -> incr accepted
                | Error EIO -> incr rejected
                | Error e -> Alcotest.failf "unexpected submit errno %s" (errno_to_string e)
              done));
      Sched.delay 10.0e6;
      Alcotest.(check int) "SQ filled to capacity" 4 (Controller.Ring.outstanding ring);
      Alcotest.(check bool) "producer parked on the full ring" true
        (Controller.Ring.sq_parks ring > 0);
      Alcotest.(check (list int)) "silent holder escalated" [ 1 ]
        (Controller.watchdog_once ctl ~timeout_ns);
      Alcotest.(check bool) "teardown closed the ring" true (Controller.Ring.is_closed ring);
      Alcotest.(check int) "in-flight entries reaped" 0 (Controller.Ring.outstanding ring);
      Sched.delay 1.0e3;
      Alcotest.(check int) "accepted up to capacity" 4 !accepted;
      Alcotest.(check int) "parked producer woken with EIO" 2 !rejected;
      Controller.set_ring_paused ctl false;
      Sched.delay 1.0e3;
      ignore (Controller.drain_unverified ctl);
      let gc = Controller.gc_once ctl in
      Alcotest.(check bool) "invariant" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked)

let test_ring_killed_mid_enqueue () =
  (* The submit path's only kill point sits before the slot write: a
     producer SIGKILLed there has enqueued nothing, so the ring shows
     zero submissions and teardown finds balanced books. *)
  Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
      let sched = env.Helpers.sched in
      let ctl = env.Helpers.ctl in
      Controller.set_ring_paused ctl true;
      ignore (Helpers.mount ~proc:1 ~ring:4 env);
      let ring = Option.get (Controller.ring_of ctl 1) in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              ignore (Controller.Ring.submit ~forget:true ring Controller.Ring.Op_lease);
              Alcotest.fail "survived the kill armed at the submit boundary"));
      Sched.arm_kill sched ~after:0;
      Sched.delay 10.0e6;
      Sched.disarm sched;
      Alcotest.(check int) "nothing enqueued" 0 (Controller.Ring.submitted ring);
      Alcotest.(check int) "nothing outstanding" 0 (Controller.Ring.outstanding ring);
      Controller.set_ring_paused ctl false;
      Sched.delay 1.0e3;
      ignore (Controller.drain_unverified ctl);
      let gc = Controller.gc_once ctl in
      Alcotest.(check bool) "invariant" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked)

(* ------------------------------------------------------------------ *)
(* The explorer over the script corpus (pinned seeds) *)

let explore_seed seed =
  let rng = Rng.create seed in
  let ops = Script.generate rng ~len:6 in
  let config =
    { Explore.default_proc_config with pd_seed = seed; pd_kill_points = 6; pd_hang_points = 2 }
  in
  let report = Explore.explore_proc_death ~config ops in
  (match report.Explore.pr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "seed %d:@.%a" seed Explore.pp_counterexample cx);
  Alcotest.(check int) "no leaks" 0 report.Explore.pr_leaked;
  Alcotest.(check bool) "states explored" true (report.Explore.pr_states > 0);
  Alcotest.(check bool) "victims escalated" true
    (report.Explore.pr_escalated >= report.Explore.pr_states)

let test_explore_seed_1 () = explore_seed 1
let test_explore_seed_7 () = explore_seed 7

let test_explore_ring_seed () =
  (* Same exploration with the victim mounted over a depth-4 ring: the
     kill/hang points now include the ring submit boundary and the CQ
     park, and the accounting invariant must hold at each of them. *)
  let rng = Rng.create 11 in
  let ops = Script.generate rng ~len:5 in
  let config =
    {
      Explore.default_proc_config with
      pd_seed = 11;
      pd_kill_points = 5;
      pd_hang_points = 2;
      pd_ring = Some 4;
    }
  in
  let report = Explore.explore_proc_death ~config ops in
  (match report.Explore.pr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "ring explore:@.%a" Explore.pp_counterexample cx);
  Alcotest.(check int) "no leaks" 0 report.Explore.pr_leaked;
  Alcotest.(check bool) "states explored" true (report.Explore.pr_states > 0)

let test_explore_catches_skip_gc () =
  (* End to end: with the mutation armed the explorer must fail on the
     leak invariant; with it off the same exploration is clean. *)
  let rng = Rng.create 3 in
  let ops = Script.generate rng ~len:5 in
  let config =
    { Explore.default_proc_config with pd_seed = 3; pd_kill_points = 2; pd_hang_points = 0 }
  in
  Controller.set_crash_test_skip_gc true;
  let mutated =
    Fun.protect
      ~finally:(fun () -> Controller.set_crash_test_skip_gc false)
      (fun () -> Explore.explore_proc_death ~config ops)
  in
  (match mutated.Explore.pr_failure with
  | Some cx
    when String.length cx.Explore.cx_detail >= 15
         && String.sub cx.Explore.cx_detail 0 15 = "page accounting" -> ()
  | Some cx -> Alcotest.failf "mutation caught by the wrong check: %s" cx.Explore.cx_detail
  | None -> Alcotest.fail "skip-GC mutation was not caught by the leak invariant");
  let clean = Explore.explore_proc_death ~config ops in
  match clean.Explore.pr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "clean run failed:@.%a" Explore.pp_counterexample cx

let () =
  Alcotest.run "procfail"
    [
      ( "injection",
        [
          Alcotest.test_case "kill at point 0" `Quick test_kill_injection;
          Alcotest.test_case "counting pass" `Quick test_kill_counts_points;
          Alcotest.test_case "hang wedges the fiber" `Quick test_hang_injection;
          Alcotest.test_case "shield suppresses kill points" `Quick test_shield_blocks_kill;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "escalates a dead process" `Quick test_watchdog_escalates_dead;
          Alcotest.test_case "waits out a running lease" `Quick test_watchdog_respects_lease;
          Alcotest.test_case "heartbeats defer escalation" `Quick test_heartbeat_defers_watchdog;
        ] );
      ( "verifier gate",
        [
          Alcotest.test_case "accepts consistent state" `Quick test_gate_accepts_consistent_state;
          Alcotest.test_case "verifies once, then normal" `Quick test_gate_verifies_once;
        ] );
      ( "gc",
        [
          Alcotest.test_case "reclaims orphans" `Quick test_gc_reclaims_orphans;
          Alcotest.test_case "clean unmount is leak-free" `Quick
            test_gc_invariant_after_clean_unmount;
          Alcotest.test_case "skip-GC mutation caught" `Quick test_gc_mutation_caught;
        ] );
      ( "leases",
        [
          Alcotest.test_case "expiry force-revoke" `Quick test_lease_expiry_force_revoke;
        ] );
      ( "handoff",
        [
          Alcotest.test_case "reader survives writer death" `Quick
            test_reader_survives_writer_death;
        ] );
      ( "ring",
        [
          Alcotest.test_case "dead consumer, full ring" `Quick test_ring_dead_consumer_full_ring;
          Alcotest.test_case "producer killed mid-enqueue" `Quick test_ring_killed_mid_enqueue;
        ] );
      ( "explore",
        [
          Alcotest.test_case "seed 1" `Quick test_explore_seed_1;
          Alcotest.test_case "seed 7" `Quick test_explore_seed_7;
          Alcotest.test_case "ring-mounted victims" `Quick test_explore_ring_seed;
          Alcotest.test_case "skip-GC mutation caught end to end" `Quick
            test_explore_catches_skip_gc;
        ] );
    ]
