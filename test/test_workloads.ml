(* Smoke + semantics tests for the workload generators and the
   measurement harness. *)

module Rig = Trio_workloads.Rig
module Runner = Trio_workloads.Runner
module Fio = Trio_workloads.Fio
module Fxmark = Trio_workloads.Fxmark
module Filebench = Trio_workloads.Filebench
module Dbbench = Trio_workloads.Dbbench
module Sched = Trio_sim.Sched

let small_rig f = Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:false f

let test_runner_counts_ops () =
  small_rig (fun rig ->
      let r =
        Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:4 ~max_ops:100
          ~max_ns:1.0e9 ~warmup_ops:0
          ~body:(fun ~tid ->
            ignore tid;
            Sched.delay 1000.0;
            7)
          ()
      in
      (* in-flight threads may each complete one op past the cap *)
      if r.Runner.ops < 100 || r.Runner.ops > 103 then
        Alcotest.failf "ops: expected ~100, got %d" r.Runner.ops;
      Alcotest.(check (float 30.0)) "bytes" (float_of_int (7 * r.Runner.ops)) r.Runner.bytes;
      if r.Runner.ops_per_us <= 0.0 then Alcotest.fail "throughput must be positive")

let test_runner_deterministic () =
  let once () =
    small_rig (fun rig ->
        let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
        let r = Fxmark.run rig fs (Fxmark.find "MWCL") ~threads:4 ~max_ops:500 ~max_ns:1.0e8 () in
        r.Runner.elapsed_ns)
  in
  Alcotest.(check (float 0.0)) "same virtual time" (once ()) (once ())

let test_runner_respects_deadline () =
  small_rig (fun rig ->
      let r =
        Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:2 ~max_ops:1_000_000
          ~max_ns:50_000.0 ~warmup_ops:0
          ~body:(fun ~tid ->
            ignore tid;
            Sched.delay 1000.0;
            0)
          ()
      in
      (* 2 threads x 50us / 1us per op = ~100 ops, certainly not 1e6 *)
      if r.Runner.ops > 200 then Alcotest.failf "deadline ignored: %d ops" r.Runner.ops)

let test_fio_moves_expected_bytes () =
  small_rig (fun rig ->
      let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
      let config =
        { Fio.threads = 2; block_size = 4096; file_size = 1 lsl 20; kind = Fio.Write }
      in
      let r = Fio.run rig fs config ~max_ops:200 ~max_ns:1.0e9 () in
      Alcotest.(check (float 1.0)) "bytes = ops * block"
        (float_of_int (r.Runner.ops * 4096))
        r.Runner.bytes)

let test_fxmark_all_benches_run () =
  List.iter
    (fun bench ->
      small_rig (fun rig ->
          let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
          let r = Fxmark.run rig fs bench ~threads:2 ~max_ops:100 ~max_ns:1.0e8 () in
          if r.Runner.ops = 0 then
            Alcotest.failf "%s did zero operations" bench.Fxmark.name))
    Fxmark.all

let test_fxmark_descriptions_complete () =
  List.iter
    (fun b ->
      if not (List.mem_assoc b.Fxmark.name Fxmark.descriptions) then
        Alcotest.failf "%s missing from Table 2 descriptions" b.Fxmark.name)
    Fxmark.all;
  Alcotest.(check int) "12 benchmarks" 12 (List.length Fxmark.all)

let test_filebench_personalities_run () =
  List.iter
    (fun p ->
      small_rig (fun rig ->
          let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
          let r = Filebench.run rig fs p ~threads:2 ~max_ops:60 ~max_ns:1.0e9 () in
          if r.Runner.ops = 0 then Alcotest.failf "%s did zero operations" p.Filebench.p_name))
    Filebench.personalities

let test_filebench_runs_on_baseline () =
  small_rig (fun rig ->
      let fs = Rig.mount_fs ~store_data:false rig "nova" in
      let p = Filebench.find "varmail" in
      let r = Filebench.run rig fs p ~threads:2 ~max_ops:60 ~max_ns:1.0e9 () in
      if r.Runner.ops = 0 then Alcotest.fail "varmail on nova did zero operations")

let test_dbbench_workloads_run () =
  List.iter
    (fun w ->
      Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
          let fs = Rig.mount_fs ~store_data:true rig "arckfs" in
          let n = match w with Dbbench.Fill_100k -> 20 | _ -> 200 in
          let r = Dbbench.run ~sched:rig.Rig.sched fs w ~n in
          if r.Dbbench.ops_per_ms <= 0.0 then
            Alcotest.failf "%s reported zero throughput" (Dbbench.workload_name w)))
    Dbbench.all

let test_mount_every_fs () =
  List.iter
    (fun name ->
      small_rig (fun rig ->
          let fs = Rig.mount_fs ~store_data:false rig name in
          Alcotest.(check string) "name matches" name (Trio_core.Vfs.name fs)))
    [ "arckfs"; "fpfs"; "ext4"; "ext4-raid0"; "pmfs"; "nova"; "winefs"; "odinfs"; "splitfs"; "strata" ]

(* ------------------------------------------------------------------ *)
(* Shape assertions: the scalability behaviours the paper's evaluation
   rests on, checked at reduced scale so they guard against regression. *)

let paper_rig f =
  Rig.run ~nodes:8 ~cpus_per_node:28 ~pages_per_node:(1 lsl 19) ~store_data:false f

let throughput fs_name bench threads =
  paper_rig (fun rig ->
      let fs = Rig.mount_fs ~store_data:false rig fs_name in
      let r = Fxmark.run rig fs (Fxmark.find bench) ~threads ~max_ops:6000 ~max_ns:8.0e6 () in
      r.Runner.ops_per_us)

let test_shape_arckfs_creates_scale () =
  let one = throughput "arckfs" "MWCL" 1 in
  let many = throughput "arckfs" "MWCL" 112 in
  if many < one *. 5.0 then
    Alcotest.failf "ArckFS private creates should scale: 1thr=%.2f 112thr=%.2f" one many

let test_shape_kernel_fs_rename_flat () =
  let one = throughput "nova" "MWRL" 1 in
  let many = throughput "nova" "MWRL" 112 in
  if many > one *. 2.0 then
    Alcotest.failf "NOVA renames should be flat under the global lock: 1thr=%.2f 112thr=%.2f"
      one many

let test_shape_arckfs_beats_kernel_open_at_scale () =
  let arck = throughput "arckfs" "MRPH" 112 in
  let nova = throughput "nova" "MRPH" 112 in
  if arck < nova *. 2.0 then
    Alcotest.failf "ArckFS hot open should dominate at scale: arckfs=%.2f nova=%.2f" arck nova

let test_shape_delegation_preserves_write_bw () =
  (* 4KB writes at 112 threads: delegation must beat the direct path *)
  let gib fs_name =
    paper_rig (fun rig ->
        let fs = Rig.mount_fs ~store_data:false rig fs_name in
        let config =
          { Fio.threads = 112; block_size = 4096; file_size = 4 * 1024 * 1024; kind = Fio.Write }
        in
        (Fio.run rig fs config ~max_ops:8000 ~max_ns:8.0e6 ()).Runner.gib_per_s)
  in
  let delegated = gib "arckfs" and direct = gib "nova" in
  if delegated < direct *. 3.0 then
    Alcotest.failf "delegation should preserve write bandwidth: arckfs=%.2f nova=%.2f" delegated
      direct

let () =
  Alcotest.run "workloads"
    [
      ( "runner",
        [
          Alcotest.test_case "counts ops and bytes" `Quick test_runner_counts_ops;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "respects deadline" `Quick test_runner_respects_deadline;
        ] );
      ( "generators",
        [
          Alcotest.test_case "fio byte accounting" `Quick test_fio_moves_expected_bytes;
          Alcotest.test_case "all fxmark benches run" `Quick test_fxmark_all_benches_run;
          Alcotest.test_case "fxmark descriptions" `Quick test_fxmark_descriptions_complete;
          Alcotest.test_case "filebench personalities run" `Slow test_filebench_personalities_run;
          Alcotest.test_case "filebench on a baseline" `Quick test_filebench_runs_on_baseline;
          Alcotest.test_case "db_bench workloads run" `Slow test_dbbench_workloads_run;
          Alcotest.test_case "every fs mounts" `Quick test_mount_every_fs;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "arckfs creates scale" `Slow test_shape_arckfs_creates_scale;
          Alcotest.test_case "kernel rename flat" `Slow test_shape_kernel_fs_rename_flat;
          Alcotest.test_case "arckfs hot-open dominates" `Slow test_shape_arckfs_beats_kernel_open_at_scale;
          Alcotest.test_case "delegation preserves write bw" `Slow
            test_shape_delegation_preserves_write_bw;
        ] );
    ]
