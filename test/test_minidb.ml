(* Tests for the mini-LevelDB running over ArckFS in the simulator. *)

module Rig = Trio_workloads.Rig
module Db = Minidb.Db
module Memtable = Minidb.Memtable
module Sstable = Minidb.Sstable
module Wal = Minidb.Wal
module R = Minidb.Record_format
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Trio_core.Fs_types.errno_to_string e)

let with_fs f =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
      f rig (Trio_core.Vfs.ops (Rig.mount_fs rig "arckfs")))

(* ------------------------------------------------------------------ *)
(* Memtable *)

let test_memtable_basic () =
  let m = Memtable.create () in
  Memtable.put m "b" "2";
  Memtable.put m "a" "1";
  Memtable.put m "a" "1'";
  Memtable.delete m "b";
  Alcotest.(check bool) "a" true (Memtable.find m "a" = Some (Memtable.Put "1'"));
  Alcotest.(check bool) "b tombstone" true (Memtable.find m "b" = Some Memtable.Delete);
  Alcotest.(check bool) "c absent" true (Memtable.find m "c" = None);
  let keys = List.map fst (Memtable.to_sorted_list m) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] keys

(* ------------------------------------------------------------------ *)
(* Record format *)

let test_record_roundtrip () =
  let b = R.encode ~kind:R.t_put ~key:"the-key" ~value:"the-value" in
  match R.decode b 0 with
  | Some (kind, key, value, next) ->
    Alcotest.(check int) "kind" R.t_put kind;
    Alcotest.(check string) "key" "the-key" key;
    Alcotest.(check string) "value" "the-value" value;
    Alcotest.(check int) "next" (Bytes.length b) next
  | None -> Alcotest.fail "decode failed"

let test_record_crc_detects_corruption () =
  let b = R.encode ~kind:R.t_put ~key:"k" ~value:"v" in
  Bytes.set b (Bytes.length b - 1) 'X';
  Alcotest.(check bool) "rejected" true (R.decode b 0 = None)

let test_record_truncation_detected () =
  let b = R.encode ~kind:R.t_put ~key:"key" ~value:"a-long-value" in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  Alcotest.(check bool) "rejected" true (R.decode cut 0 = None)

(* ------------------------------------------------------------------ *)
(* SSTable *)

let test_sstable_roundtrip () =
  with_fs (fun _rig fs ->
      let entries =
        List.init 500 (fun i -> (Printf.sprintf "key%06d" i, Memtable.Put (Printf.sprintf "val%d" i)))
      in
      let table = ok "build" (Sstable.build fs ~path:"/t1.sst" entries) in
      Alcotest.(check int) "count" 500 (Sstable.entry_count table);
      (* point lookups through a fresh open *)
      let reopened = ok "open" (Sstable.open_ fs ~path:"/t1.sst") in
      List.iter
        (fun i ->
          match ok "get" (Sstable.get reopened (Printf.sprintf "key%06d" i)) with
          | Some (Memtable.Put v) ->
            Alcotest.(check string) "value" (Printf.sprintf "val%d" i) v
          | _ -> Alcotest.failf "key%06d missing" i)
        [ 0; 1; 99; 250; 499 ];
      Alcotest.(check bool) "absent key" true (ok "get" (Sstable.get reopened "nope") = None);
      Alcotest.(check bool) "past range" true
        (ok "get" (Sstable.get reopened "zzzz") = None))

let test_sstable_iter_order () =
  with_fs (fun _rig fs ->
      let entries = List.init 100 (fun i -> (Printf.sprintf "k%04d" i, Memtable.Put "v")) in
      let table = ok "build" (Sstable.build fs ~path:"/t2.sst" entries) in
      let seen = ref [] in
      ok "iter" (Sstable.iter_all table (fun k _ -> seen := k :: !seen));
      Alcotest.(check int) "all" 100 (List.length !seen);
      Alcotest.(check (list string)) "order" (List.map fst entries) (List.rev !seen))

(* ------------------------------------------------------------------ *)
(* DB end to end *)

let test_db_put_get () =
  with_fs (fun _rig fs ->
      let db = ok "open" (Db.open_db fs ~dir:"/db") in
      ok "put" (Db.put db ~key:"alpha" ~value:"1");
      ok "put" (Db.put db ~key:"beta" ~value:"2");
      Alcotest.(check (option string)) "alpha" (Some "1") (ok "get" (Db.get db ~key:"alpha"));
      Alcotest.(check (option string)) "beta" (Some "2") (ok "get" (Db.get db ~key:"beta"));
      Alcotest.(check (option string)) "gamma" None (ok "get" (Db.get db ~key:"gamma"));
      ok "overwrite" (Db.put db ~key:"alpha" ~value:"1'");
      Alcotest.(check (option string)) "alpha'" (Some "1'") (ok "get" (Db.get db ~key:"alpha"));
      ok "close" (Db.close db))

let test_db_delete () =
  with_fs (fun _rig fs ->
      let db = ok "open" (Db.open_db fs ~dir:"/db") in
      ok "put" (Db.put db ~key:"k" ~value:"v");
      ok "delete" (Db.delete db ~key:"k");
      Alcotest.(check (option string)) "deleted" None (ok "get" (Db.get db ~key:"k"));
      ok "close" (Db.close db))

let test_db_flush_and_compaction () =
  with_fs (fun _rig fs ->
      let options = { Db.default_options with write_buffer_bytes = 4096; l0_compaction_trigger = 3 } in
      let db = ok "open" (Db.open_db ~options fs ~dir:"/db") in
      let n = 600 in
      for i = 0 to n - 1 do
        ok "put" (Db.put db ~key:(Printf.sprintf "key%06d" i) ~value:(String.make 50 'v'))
      done;
      let flushes, compactions, _, _ = Db.stats db in
      if flushes = 0 then Alcotest.fail "no memtable flush happened";
      if compactions = 0 then Alcotest.fail "no compaction happened";
      (* every key still readable after flushes + compactions *)
      for i = 0 to n - 1 do
        match ok "get" (Db.get db ~key:(Printf.sprintf "key%06d" i)) with
        | Some _ -> ()
        | None -> Alcotest.failf "key%06d lost" i
      done;
      (* deletes survive compaction *)
      for i = 0 to 99 do
        ok "delete" (Db.delete db ~key:(Printf.sprintf "key%06d" i))
      done;
      for _ = 1 to 200 do
        ok "fill" (Db.put db ~key:"filler" ~value:(String.make 100 'f'))
      done;
      for i = 0 to 99 do
        Alcotest.(check (option string))
          (Printf.sprintf "deleted %d" i)
          None
          (ok "get" (Db.get db ~key:(Printf.sprintf "key%06d" i)))
      done;
      ok "close" (Db.close db))

let test_db_reopen_persistence () =
  with_fs (fun _rig fs ->
      let db = ok "open" (Db.open_db fs ~dir:"/db") in
      for i = 0 to 199 do
        ok "put" (Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(Printf.sprintf "v%d" i))
      done;
      ok "close" (Db.close db);
      let db2 = ok "reopen" (Db.open_db fs ~dir:"/db") in
      for i = 0 to 199 do
        Alcotest.(check (option string))
          (Printf.sprintf "k%04d" i)
          (Some (Printf.sprintf "v%d" i))
          (ok "get" (Db.get db2 ~key:(Printf.sprintf "k%04d" i)))
      done;
      ok "close2" (Db.close db2))

let test_db_wal_recovers_after_crash () =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let fs = Libfs.ops libfs in
      let db = ok "open" (Db.open_db fs ~dir:"/db") in
      (* small writes that stay in the memtable (below flush threshold) *)
      for i = 0 to 49 do
        ok "put" (Db.put db ~key:(Printf.sprintf "k%02d" i) ~value:"payload")
      done;
      (* crash without closing: memtable is lost, WAL survives *)
      Trio_nvm.Pmem.crash rig.Rig.pmem;
      Trio_core.Controller.crash_recover rig.Rig.ctl;
      let libfs2 = Rig.mount_arckfs ~delegated:false rig in
      let fs2 = Libfs.ops libfs2 in
      let db2 = ok "reopen" (Db.open_db fs2 ~dir:"/db") in
      for i = 0 to 49 do
        Alcotest.(check (option string))
          (Printf.sprintf "k%02d" i)
          (Some "payload")
          (ok "get" (Db.get db2 ~key:(Printf.sprintf "k%02d" i)))
      done;
      ok "close" (Db.close db2))

let test_db_runs_on_every_fs () =
  List.iter
    (fun name ->
      Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
          let fs = Trio_core.Vfs.ops (Rig.mount_fs rig name) in
          let db = ok "open" (Db.open_db fs ~dir:"/db") in
          for i = 0 to 99 do
            ok "put" (Db.put db ~key:(Printf.sprintf "k%03d" i) ~value:"v")
          done;
          for i = 0 to 99 do
            if ok "get" (Db.get db ~key:(Printf.sprintf "k%03d" i)) <> Some "v" then
              Alcotest.failf "%s: k%03d lost" name i
          done;
          ok "close" (Db.close db)))
    [ "arckfs"; "ext4"; "nova"; "winefs"; "splitfs"; "strata" ]

let () =
  Alcotest.run "minidb"
    [
      ("memtable", [ Alcotest.test_case "basic" `Quick test_memtable_basic ]);
      ( "records",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "crc detects corruption" `Quick test_record_crc_detects_corruption;
          Alcotest.test_case "truncation detected" `Quick test_record_truncation_detected;
        ] );
      ( "sstable",
        [
          Alcotest.test_case "roundtrip" `Quick test_sstable_roundtrip;
          Alcotest.test_case "iter order" `Quick test_sstable_iter_order;
        ] );
      ( "db",
        [
          Alcotest.test_case "put/get" `Quick test_db_put_get;
          Alcotest.test_case "delete" `Quick test_db_delete;
          Alcotest.test_case "flush & compaction" `Quick test_db_flush_and_compaction;
          Alcotest.test_case "reopen persistence" `Quick test_db_reopen_persistence;
          Alcotest.test_case "WAL crash recovery" `Quick test_db_wal_recovers_after_crash;
          Alcotest.test_case "runs on every fs" `Slow test_db_runs_on_every_fs;
        ] );
    ]
