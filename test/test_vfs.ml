(* Tests for the VFS dispatch layer: per-op counters, errno tallies,
   latency histograms, the bounded trace ring, and the guarantee that
   instrumentation itself adds zero virtual time.

   Most tests drive a synthetic [Fs_intf.t] whose every operation burns
   a known amount of virtual time and succeeds or fails predictably, so
   the expected metrics can be computed exactly.  The final test mounts
   real ArckFS and asserts the zero-copy pread path allocates nothing
   per call in steady state. *)

module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Pmem = Trio_nvm.Pmem
module Vfs = Trio_core.Vfs
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs
open Trio_core.Fs_types

(* ------------------------------------------------------------------ *)
(* Synthetic file system: fixed virtual-time cost per op; paths under
   "/missing" fail with ENOENT, fd < 0 fails with EBADF, everything
   else succeeds. *)

let dummy_stat =
  {
    st_ino = 1;
    st_ftype = Reg;
    st_mode = 0o644;
    st_uid = 1000;
    st_gid = 1000;
    st_size = 0;
    st_mtime = 0.0;
    st_ctime = 0.0;
  }

let synthetic ~cost =
  let path_op path v =
    Sched.delay cost;
    if String.length path >= 8 && String.sub path 0 8 = "/missing" then Error ENOENT else Ok v
  in
  let fd_op fd v =
    Sched.delay cost;
    if fd < 0 then Error EBADF else Ok v
  in
  {
    Fs.fs_name = "synthetic";
    create = (fun path _mode -> path_op path 3);
    open_ = (fun path _flags -> path_op path 3);
    close = (fun fd -> fd_op fd ());
    pread = (fun fd buf _off -> fd_op fd (Bytes.length buf));
    pwrite = (fun fd buf _off -> fd_op fd (Bytes.length buf));
    append = (fun fd buf -> fd_op fd (Bytes.length buf));
    truncate = (fun path _len -> path_op path ());
    unlink = (fun path -> path_op path ());
    mkdir = (fun path _mode -> path_op path ());
    rmdir = (fun path -> path_op path ());
    readdir = (fun path -> path_op path []);
    stat = (fun path -> path_op path dummy_stat);
    rename = (fun src _dst -> path_op src ());
    chmod = (fun path _mode -> path_op path ());
    fsync = (fun fd -> fd_op fd ());
  }

let in_sim f =
  let sched = Sched.create () in
  let r = ref None in
  Sched.spawn sched (fun () -> r := Some (f sched));
  ignore (Sched.run sched);
  Option.get !r

(* ------------------------------------------------------------------ *)

let test_counts_and_errnos () =
  in_sim (fun sched ->
      let vfs = Vfs.wrap ~sched (synthetic ~cost:100.0) in
      let fs = Vfs.ops vfs in
      let buf = Bytes.create 64 in
      for _ = 1 to 5 do
        ignore (fs.Fs.pread 1 buf 0)
      done;
      ignore (fs.Fs.pread (-1) buf 0);
      ignore (fs.Fs.stat "/ok");
      ignore (fs.Fs.stat "/missing/x");
      ignore (fs.Fs.stat "/missing/y");
      let pread = Vfs.op_stats vfs Vfs.Op_pread in
      Alcotest.(check int) "pread count" 6 pread.Vfs.count;
      Alcotest.(check int) "pread errors" 1 pread.Vfs.errors;
      Alcotest.(check bool) "pread errno EBADF" true (pread.Vfs.errnos = [ (EBADF, 1) ]);
      let stat = Vfs.op_stats vfs Vfs.Op_stat in
      Alcotest.(check int) "stat count" 3 stat.Vfs.count;
      Alcotest.(check bool) "stat errno ENOENT" true (stat.Vfs.errnos = [ (ENOENT, 2) ]);
      let unused = Vfs.op_stats vfs Vfs.Op_rename in
      Alcotest.(check int) "rename untouched" 0 unused.Vfs.count;
      Alcotest.(check int) "total" 9 (Vfs.total_ops vfs);
      (* the same tallies flow into the shared Stats counters *)
      let s = Vfs.stats vfs in
      Alcotest.(check (float 0.0)) "counter pread" 6.0 (Stats.get s "vfs.pread.count");
      Alcotest.(check (float 0.0)) "counter pread err" 1.0 (Stats.get s "vfs.pread.errors");
      Alcotest.(check (float 0.0)) "counter stat err" 2.0 (Stats.get s "vfs.stat.errors"))

let test_latency_histogram () =
  in_sim (fun sched ->
      let vfs = Vfs.wrap ~sched (synthetic ~cost:1000.0) in
      let fs = Vfs.ops vfs in
      for _ = 1 to 50 do
        ignore (fs.Fs.mkdir "/d" 0o755)
      done;
      let s = Vfs.op_stats vfs Vfs.Op_mkdir in
      (* every observation is exactly 1000ns of virtual time: max is
         exact; p50/p99 carry at most ~19% log-bucketing error *)
      Alcotest.(check (float 0.0)) "max exact" 1000.0 s.Vfs.max;
      Alcotest.(check (float 0.0)) "mean exact" 1000.0 s.Vfs.mean;
      let within p = p >= 800.0 && p <= 1200.0 in
      if not (within s.Vfs.p50) then Alcotest.failf "p50 %.0f out of range" s.Vfs.p50;
      if not (within s.Vfs.p99) then Alcotest.failf "p99 %.0f out of range" s.Vfs.p99;
      if s.Vfs.p50 > s.Vfs.p99 +. 1e-9 then Alcotest.fail "p50 above p99";
      if s.Vfs.p99 > s.Vfs.max +. 1e-9 then Alcotest.fail "p99 above max")

let test_instrumentation_adds_no_virtual_time () =
  in_sim (fun sched ->
      let raw = synthetic ~cost:250.0 in
      let vfs = Vfs.wrap ~sched raw in
      let fs = Vfs.ops vfs in
      let t0 = Sched.now sched in
      ignore (fs.Fs.stat "/ok");
      Alcotest.(check (float 0.0)) "only the fs cost elapses" 250.0 (Sched.now sched -. t0))

let test_concurrent_fibers () =
  let sched = Sched.create () in
  let vfs = ref None in
  (* one wrapped handle shared by many fibers, like threads sharing a
     mount: counts must not be lost and the histogram must straddle the
     per-fiber costs *)
  Sched.spawn sched (fun () -> vfs := Some (Vfs.wrap ~sched (synthetic ~cost:100.0)));
  ignore (Sched.run sched);
  let vfs = Option.get !vfs in
  let fs = Vfs.ops vfs in
  let fibers = 8 and ops_per_fiber = 25 in
  for i = 1 to fibers do
    Sched.spawn sched (fun () ->
        for j = 1 to ops_per_fiber do
          (* interleave with other fibers at every op *)
          Sched.delay (float_of_int ((i * 13) + j));
          ignore (fs.Fs.append i (Bytes.create 8));
          if j mod 5 = 0 then ignore (fs.Fs.append (-1) (Bytes.create 8))
        done)
  done;
  ignore (Sched.run sched);
  let s = Vfs.op_stats vfs Vfs.Op_append in
  Alcotest.(check int) "appends from all fibers" (fibers * ops_per_fiber * 6 / 5) s.Vfs.count;
  Alcotest.(check int) "errors from all fibers" (fibers * ops_per_fiber / 5) s.Vfs.errors;
  Alcotest.(check bool) "EBADF tally" true (s.Vfs.errnos = [ (EBADF, fibers * ops_per_fiber / 5) ]);
  Alcotest.(check (float 0.0)) "all ops cost 100ns" 100.0 s.Vfs.max;
  Alcotest.(check int) "snapshot holds only append" 1 (List.length (Vfs.snapshot vfs))

let test_trace_ring_bounded () =
  in_sim (fun sched ->
      let vfs = Vfs.wrap ~sched ~trace_capacity:8 (synthetic ~cost:10.0) in
      let fs = Vfs.ops vfs in
      for i = 1 to 20 do
        ignore (fs.Fs.unlink (Printf.sprintf "/f%02d" i))
      done;
      ignore (fs.Fs.stat "/missing/x");
      let entries = Vfs.trace vfs in
      Alcotest.(check int) "ring keeps capacity entries" 8 (List.length entries);
      Alcotest.(check int) "older entries dropped" 13 (Vfs.trace_dropped vfs);
      (* oldest-first: the survivors are unlink /f14 .. /f20 then stat *)
      let paths = List.map (fun e -> e.Vfs.te_path) entries in
      Alcotest.(check (list string)) "last 8 ops in order"
        [ "/f14"; "/f15"; "/f16"; "/f17"; "/f18"; "/f19"; "/f20"; "/missing/x" ]
        paths;
      (match List.rev entries with
      | last :: _ ->
        Alcotest.(check bool) "errno recorded" true (last.Vfs.te_errno = Some ENOENT);
        Alcotest.(check (float 0.0)) "elapsed recorded" 10.0 last.Vfs.te_elapsed
      | [] -> Alcotest.fail "empty trace");
      (* no ring requested -> no trace, no drops *)
      let bare = Vfs.wrap ~sched (synthetic ~cost:1.0) in
      ignore ((Vfs.ops bare).Fs.stat "/ok");
      Alcotest.(check int) "no ring" 0 (List.length (Vfs.trace bare));
      Alcotest.(check int) "no drops" 0 (Vfs.trace_dropped bare);
      try
        ignore (Vfs.wrap ~sched ~trace_capacity:0 (synthetic ~cost:1.0));
        Alcotest.fail "zero capacity accepted"
      with Invalid_argument _ -> ())

let test_reset_clears_everything () =
  in_sim (fun sched ->
      let vfs = Vfs.wrap ~sched ~trace_capacity:4 (synthetic ~cost:5.0) in
      let fs = Vfs.ops vfs in
      for _ = 1 to 10 do
        ignore (fs.Fs.stat "/missing/x")
      done;
      Vfs.reset vfs;
      Alcotest.(check int) "counts cleared" 0 (Vfs.total_ops vfs);
      Alcotest.(check int) "trace cleared" 0 (List.length (Vfs.trace vfs));
      Alcotest.(check int) "drops cleared" 0 (Vfs.trace_dropped vfs);
      Alcotest.(check (float 0.0)) "stats cleared" 0.0 (Stats.get (Vfs.stats vfs) "vfs.stat.count");
      (* and it keeps working after the reset *)
      ignore (fs.Fs.stat "/ok");
      Alcotest.(check int) "records again" 1 (Vfs.total_ops vfs))

(* ------------------------------------------------------------------ *)
(* Crash exploration interplay: instrumentation records an operation
   only after the fs returns, so a process dying at a store inside an
   op (Pmem.Crash_point) must leave no phantom count, errno tally or
   trace entry — and the tallies must still be exact after recovery and
   remount. *)

let test_mid_op_crash_no_phantom_counts () =
  Helpers.run_sim (fun env ->
      let pmem = env.Helpers.pmem in
      let vfs =
        Vfs.wrap ~sched:env.Helpers.sched ~trace_capacity:16 (Libfs.ops (Helpers.mount env))
      in
      let fs = Vfs.ops vfs in
      Helpers.check_ok "mkdir" (fs.Fs.mkdir "/a" 0o755);
      let fd = Helpers.check_ok "create" (fs.Fs.create "/a/f" 0o644) in
      Helpers.check_ok "close" (fs.Fs.close fd);
      let before_total = Vfs.total_ops vfs in
      let before_create = (Vfs.op_stats vfs Vfs.Op_create).Vfs.count in
      let before_trace = List.length (Vfs.trace vfs) in
      (* die at the very next LibFS store: inside the create below *)
      Pmem.fail_after_writes pmem 0;
      (match fs.Fs.create "/a/g" 0o644 with
      | _ -> Alcotest.fail "create should have died at a store"
      | exception Pmem.Crash_point -> ());
      Pmem.fail_after_writes pmem (-1);
      Alcotest.(check int) "no phantom op count" before_total (Vfs.total_ops vfs);
      Alcotest.(check int) "no phantom create" before_create
        (Vfs.op_stats vfs Vfs.Op_create).Vfs.count;
      Alcotest.(check int) "no phantom errno tally" 0
        (List.length (Vfs.op_stats vfs Vfs.Op_create).Vfs.errnos);
      let entries = Vfs.trace vfs in
      Alcotest.(check int) "no phantom trace entry" before_trace (List.length entries);
      if List.exists (fun e -> e.Vfs.te_path = "/a/g") entries then
        Alcotest.fail "interrupted op leaked into the trace ring";
      (* power failure + recovery + remount behind a fresh VFS wrap:
         counters start clean and stay exact *)
      Pmem.crash pmem;
      Trio_core.Controller.crash_recover env.Helpers.ctl;
      let vfs2 =
        Vfs.wrap ~sched:env.Helpers.sched ~trace_capacity:16
          (Libfs.ops (Helpers.mount ~proc:2 env))
      in
      let fs2 = Vfs.ops vfs2 in
      Alcotest.(check int) "fresh counters after remount" 0 (Vfs.total_ops vfs2);
      let names = Helpers.check_ok "readdir" (fs2.Fs.readdir "/a") in
      Alcotest.(check (list string)) "completed op durable, interrupted one absent" [ "f" ]
        (List.map (fun e -> e.d_name) names |> List.sort compare);
      Alcotest.(check int) "exactly one op recorded" 1 (Vfs.total_ops vfs2);
      Alcotest.(check int) "one trace entry" 1 (List.length (Vfs.trace vfs2)))

(* ------------------------------------------------------------------ *)
(* Acceptance: the zero-copy pread path performs no per-call buffer
   allocation in steady state on real ArckFS. *)

let test_arckfs_pread_steady_state_allocs () =
  Helpers.run_sim (fun env ->
      let libfs = Helpers.mount env in
      let vfs = Vfs.wrap ~sched:env.Helpers.sched (Libfs.ops libfs) in
      let fs = Vfs.ops vfs in
      let size = 32768 in
      Helpers.check_ok "write" (Fs.write_file fs "/big" (String.make size 'd'));
      let fd = Helpers.check_ok "open" (fs.Fs.open_ "/big" [ O_RDONLY ]) in
      let buf = Bytes.create size in
      (* warm up: fault pages in, populate caches *)
      for _ = 1 to 3 do
        ignore (Helpers.check_ok "warm" (fs.Fs.pread fd buf 0))
      done;
      let iters = 50 in
      let before = Gc.minor_words () in
      for _ = 1 to iters do
        ignore (fs.Fs.pread fd buf 0)
      done;
      let per_call = (Gc.minor_words () -. before) /. float_of_int iters in
      (* allocating a fresh 32 KiB buffer would cost ~4096 words per
         call; the zero-copy path must stay far below that (small
         closures/boxed floats from instrumentation and the per-page
         cost model are fine — measured ~550 words) *)
      if per_call > 1024.0 then
        Alcotest.failf "pread allocates %.0f words/call — zero-copy path regressed" per_call;
      Helpers.check_ok "close" (fs.Fs.close fd))

let () =
  Alcotest.run "vfs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counts and errnos" `Quick test_counts_and_errnos;
          Alcotest.test_case "latency histogram" `Quick test_latency_histogram;
          Alcotest.test_case "zero virtual-time overhead" `Quick
            test_instrumentation_adds_no_virtual_time;
          Alcotest.test_case "concurrent fibers" `Quick test_concurrent_fibers;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "reset clears everything" `Quick test_reset_clears_everything;
        ] );
      ( "crash",
        [
          Alcotest.test_case "mid-op crash leaves no phantom metrics" `Quick
            test_mid_op_crash_no_phantom_counts;
        ] );
      ( "zero-copy",
        [
          Alcotest.test_case "arckfs pread steady-state allocations" `Quick
            test_arckfs_pread_steady_state_allocs;
        ] );
    ]
