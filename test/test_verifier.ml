(* Systematic tests of the integrity verifier (checks I1-I4) and the
   kernel controller's corruption policy (fix callback, checkpoint
   rollback, quarantine, commit, leases). *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Layout = Trio_core.Layout
module Controller = Trio_core.Controller
module Ctl_state = Trio_core.Ctl_state
module Mmu = Trio_core.Mmu
module Verifier = Trio_core.Verifier
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
open Trio_core.Fs_types

let ok = Helpers.check_ok
let kactor = Pmem.kernel_actor

(* Build a world with a victim file (/v, with content) and a process
   that holds the root write-mapped (by creating its own file). *)
type world = {
  env : Helpers.env;
  fs : Libfs.t;
  ops : Fs.t;
  v_ino : int;
  v_addr : int;
}

let make_world env =
  let fs = Helpers.mount ~proc:1 env in
  let ops = Libfs.ops fs in
  ok "victim" (Fs.write_file ops "/v" (String.make 6000 'p'));
  Libfs.unmap_everything fs;
  ignore (ok "hold root" (ops.Fs.create "/held" 0o644));
  let v_ino = (ok "stat" (ops.Fs.stat "/v")).st_ino in
  let v_addr = Option.get (Controller.dentry_addr_of env.Helpers.ctl v_ino) in
  { env; fs; ops; v_ino; v_addr }

(* Corrupt, unmap, and return the violation tags recorded. *)
let corrupt_and_share w corrupt =
  let before = List.length (Controller.corruption_events w.env.Helpers.ctl) in
  corrupt ();
  Libfs.unmap_everything w.fs;
  let events = Controller.corruption_events w.env.Helpers.ctl in
  let fresh = List.filteri (fun i _ -> i < List.length events - before) events in
  List.concat_map (fun (_, _, vs) -> List.map (fun v -> v.Verifier.check) vs) fresh

let expect_check name expected tags =
  if not (List.mem expected tags) then
    Alcotest.failf "%s: expected an %s violation, got %d violations" name
      (match expected with
      | `I1 -> "I1"
      | `I2 -> "I2"
      | `I3 -> "I3"
      | `I4 -> "I4"
      | `I5 -> "I5"
      | `Media -> "MEDIA")
      (List.length tags)

(* ------------------------------------------------------------------ *)
(* I1: field validity *)

let test_i1_bad_ftype () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write w.env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_ftype)
              ~src:(Bytes.make 1 '\009'))
      in
      expect_check "bad ftype" `I1 tags)

let test_i1_duplicate_names () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      (* craft a second dentry with the same name by renaming a decoy's
         name bytes in place *)
      ignore (ok "decoy" (w.ops.Fs.create "/vv" 0o644));
      let decoy_ino = (ok "stat" (w.ops.Fs.stat "/vv")).st_ino in
      ignore decoy_ino;
      let decoy_addr =
        match Libfs.lookup w.fs (Option.get (Libfs.root_dir w.fs)) "vv" with
        | Some r -> r.Libfs.e_addr
        | None -> Alcotest.fail "decoy lost"
      in
      let tags =
        corrupt_and_share w (fun () ->
            let b = Bytes.create 2 in
            Layout.set_u16 b 0 1;
            Pmem.write w.env.Helpers.pmem ~actor:kactor ~addr:(decoy_addr + Layout.off_name_len)
              ~src:b;
            Pmem.write w.env.Helpers.pmem ~actor:kactor ~addr:(decoy_addr + Layout.off_name)
              ~src:(Bytes.of_string "v"))
      in
      expect_check "duplicate name" `I1 tags)

let test_i1_size_inconsistent () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write_u64 w.env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_size)
              (1 lsl 26))
      in
      expect_check "size" `I1 tags)

let test_i1_bad_name_char () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write w.env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_name)
              ~src:(Bytes.of_string "\000"))
      in
      expect_check "NUL in name" `I1 tags)

(* ------------------------------------------------------------------ *)
(* I2: page/inode validity *)

let test_i2_free_page_reference () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let free_page = Pmem.total_pages env.Helpers.pmem - 3 in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write_u64 w.env.Helpers.pmem ~actor:kactor
              ~addr:(w.v_addr + Layout.off_index_head) free_page)
      in
      expect_check "free page" `I2 tags)

let test_i2_out_of_range_page () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write_u64 w.env.Helpers.pmem ~actor:kactor
              ~addr:(w.v_addr + Layout.off_index_head) (1 lsl 40))
      in
      expect_check "out of range" `I2 tags)

let test_i2_double_reference () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      (* make the file's first two index entries point at the same page *)
      let pm = w.env.Helpers.pmem in
      (match Layout.read_dentry pm ~actor:kactor ~addr:w.v_addr with
      | Some (Ok (inode, _)) ->
        let head = inode.Layout.index_head in
        let first = Layout.read_index_entry pm ~actor:kactor ~page:head 0 in
        let tags =
          corrupt_and_share w (fun () ->
              Layout.write_index_entry pm ~actor:kactor ~page:head 1 first)
        in
        expect_check "double ref" `I2 tags
      | _ -> Alcotest.fail "unreadable victim"))

let test_i2_unknown_ino () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write_u64 w.env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_ino)
              424242)
      in
      expect_check "unknown ino" `I2 tags)

(* ------------------------------------------------------------------ *)
(* I3: tree connectivity *)

let test_i3_deleted_nonempty_dir () =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      ok "mkdir" (ops.Fs.mkdir "/sub" 0o755);
      ok "child" (Fs.write_file ops "/sub/inner" "x");
      Libfs.unmap_everything fs;
      ignore (ok "hold" (ops.Fs.create "/held" 0o644));
      let sub_ino = (ok "stat" (ops.Fs.stat "/sub")).st_ino in
      let sub_addr = Option.get (Controller.dentry_addr_of env.Helpers.ctl sub_ino) in
      let before = List.length (Controller.corruption_events env.Helpers.ctl) in
      (* tombstone the non-empty directory's dentry *)
      Pmem.write_u64 env.Helpers.pmem ~actor:kactor ~addr:sub_addr 0;
      Libfs.unmap_everything fs;
      let events = Controller.corruption_events env.Helpers.ctl in
      if List.length events <= before then Alcotest.fail "non-empty rmdir not detected";
      let tags = List.concat_map (fun (_, _, vs) -> List.map (fun v -> v.Verifier.check) vs) events in
      expect_check "I3" `I3 tags;
      (* rollback restored the directory *)
      let fs2 = Helpers.mount ~proc:2 env in
      let content = ok "inner" (Fs.read_file (Libfs.ops fs2) "/sub/inner") in
      Alcotest.(check string) "inner intact" "x" content)

(* ------------------------------------------------------------------ *)
(* I4 + policy *)

let test_i4_repairs_without_rollback () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      (* write new content after mapping, then corrupt only the cached
         mode bits: the verifier must repair the mode AND keep the new
         content (no rollback for I4 cache fixes) *)
      ok "update" (w.ops.Fs.truncate "/v" 123);
      let evil = Bytes.create 2 in
      Layout.set_u16 evil 0 0o7777;
      Pmem.write env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_mode) ~src:evil;
      Libfs.unmap_everything w.fs;
      (match Layout.read_dentry env.Helpers.pmem ~actor:kactor ~addr:w.v_addr with
      | Some (Ok (inode, _)) ->
        Alcotest.(check int) "mode repaired" 0o644 inode.Layout.mode;
        Alcotest.(check int) "truncate preserved" 123 inode.Layout.size
      | _ -> Alcotest.fail "unreadable");
      Alcotest.(check int) "no quarantine" 0
        (List.length (Controller.quarantined_files env.Helpers.ctl)))

let test_fix_callback_avoids_rollback () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      (* the LibFS' fix callback repairs the size field it corrupted *)
      let victim_addr = ref 0 in
      let fix _ino =
        if !victim_addr <> 0 then begin
          Pmem.write_u64 pm ~actor:kactor ~addr:(!victim_addr + Layout.off_size) 8192;
          Pmem.persist pm ~addr:(!victim_addr + Layout.off_size) ~len:8;
          true
        end
        else false
      in
      let fs =
        Libfs.mount ~ctl:env.Helpers.ctl ~proc:5 ~cred:{ uid = 1000; gid = 1000 } ~fix ()
      in
      let ops = Libfs.ops fs in
      ok "victim" (Fs.write_file ops "/v" (String.make 8192 'd'));
      let ino = (ok "stat" (ops.Fs.stat "/v")).st_ino in
      Libfs.unmap_everything fs;
      victim_addr := Option.get (Controller.dentry_addr_of env.Helpers.ctl ino);
      ignore (ok "hold" (ops.Fs.create "/held" 0o644));
      (* corrupt size, then share: the fix callback must save the file *)
      Pmem.write_u64 pm ~actor:kactor ~addr:(!victim_addr + Layout.off_size) (1 lsl 30);
      Libfs.unmap_everything fs;
      Alcotest.(check int) "no quarantine (fixed by LibFS)" 0
        (List.length (Controller.quarantined_files env.Helpers.ctl));
      let fs2 = Helpers.mount ~proc:6 env in
      let content = ok "read" (Fs.read_file (Libfs.ops fs2) "/v") in
      Alcotest.(check int) "content intact" 8192 (String.length content))

let test_quarantine_on_unfixable () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      Pmem.write_u64 env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_index_head)
        (Pmem.total_pages env.Helpers.pmem - 3);
      Libfs.unmap_everything w.fs;
      if Controller.quarantined_files env.Helpers.ctl = [] then
        Alcotest.fail "corrupted file bytes were not quarantined";
      (* and the rolled-back victim is still readable *)
      let fs2 = Helpers.mount ~proc:2 env in
      let content = ok "read" (Fs.read_file (Libfs.ops fs2) "/v") in
      Alcotest.(check int) "rolled back" 6000 (String.length content))

let test_commit_moves_checkpoint () =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      ignore (ok "a" (ops.Fs.create "/d/a" 0o644));
      Libfs.unmap_everything fs;
      (* new epoch: create /d/b, commit, then corrupt /d and share *)
      ignore (ok "b" (ops.Fs.create "/d/b" 0o644));
      let d_ino = (ok "stat" (ops.Fs.stat "/d")).st_ino in
      ok "commit" (Libfs.commit_file fs "/d");
      (* corrupt the directory's size field so verification fails and the
         controller rolls back — to the COMMITTED state, which has /d/b *)
      let d_addr = Option.get (Controller.dentry_addr_of env.Helpers.ctl d_ino) in
      Pmem.write_u64 env.Helpers.pmem ~actor:kactor ~addr:(d_addr + Layout.off_size) 999;
      Libfs.unmap_everything fs;
      let fs2 = Helpers.mount ~proc:2 env in
      let names =
        ok "readdir" ((Libfs.ops fs2).Fs.readdir "/d")
        |> List.map (fun e -> e.d_name)
        |> List.sort compare
      in
      Alcotest.(check (list string)) "committed create survives rollback" [ "a"; "b" ] names)

let test_writer_lease_expires_for_writer () =
  Helpers.run_sim ~lease_ns:2.0e6 (fun env ->
      let a = Helpers.mount ~proc:1 env in
      let b = Helpers.mount ~proc:2 ~uid:1000 env in
      let aops = Libfs.ops a and bops = Libfs.ops b in
      ok "create" (Fs.write_file aops "/f" "x");
      Libfs.unmap_everything a;
      (* A maps for write and sits on it *)
      let fd = ok "a open" (aops.Fs.open_ "/f" [ O_RDWR ]) in
      ignore (ok "a write" (aops.Fs.append fd (Bytes.of_string "y")));
      (* B wants to write: must wait about a lease, then force the handoff *)
      let t0 = Sched.now env.Helpers.sched in
      let fdb = ok "b open" (bops.Fs.open_ "/f" [ O_RDWR ]) in
      ignore (ok "b write" (bops.Fs.append fdb (Bytes.of_string "z")));
      let waited = Sched.now env.Helpers.sched -. t0 in
      if waited < 1.0e6 then Alcotest.failf "writer did not wait for the lease (%.0f ns)" waited;
      Libfs.unmap_everything b;
      let content = ok "read" (Fs.read_file aops "/f") in
      Alcotest.(check string) "both writes present" "xyz" content)

(* ------------------------------------------------------------------ *)
(* Incremental verification: delta checkpoints and the write-set *)

let checkpoint_of env ino =
  match Controller.file_info env.Helpers.ctl ino with
  | Some f -> (
    match f.Ctl_state.f_checkpoint with
    | Some ck -> ck
    | None -> Alcotest.failf "ino %d has no checkpoint" ino)
  | None -> Alcotest.failf "ino %d has no kernel record" ino

let check_ck_equal name (a : Controller.checkpoint) (b : Controller.checkpoint) =
  Alcotest.(check bool) (name ^ ": dentry") true (Bytes.equal a.ck_dentry b.ck_dentry);
  Alcotest.(check (list int))
    (name ^ ": page ids")
    (List.map fst a.ck_pages) (List.map fst b.ck_pages);
  List.iter2
    (fun (pg, ba) (_, bb) ->
      if not (Bytes.equal ba bb) then Alcotest.failf "%s: page %d bytes differ" name pg)
    a.ck_pages b.ck_pages;
  Alcotest.(check (list int)) (name ^ ": children") a.ck_children b.ck_children;
  Alcotest.(check int) (name ^ ": size") a.ck_size b.ck_size;
  Alcotest.(check int) (name ^ ": index head") a.ck_index_head b.ck_index_head;
  Alcotest.(check int) (name ^ ": mark") a.ck_mark b.ck_mark

let test_checkpoint_roundtrip () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      (* land the /held verification so the root checkpoint is fresh *)
      Libfs.unmap_everything w.fs;
      List.iter
        (fun (name, ino) ->
          let ck = checkpoint_of env ino in
          match Controller.decode_checkpoint (Controller.encode_checkpoint ck) with
          | Ok ck' -> check_ck_equal name ck ck'
          | Error msg -> Alcotest.failf "%s: decode failed: %s" name msg)
        (* the root covers the directory branch: data pages + child inos *)
        [ ("regular file", w.v_ino); ("root directory", Controller.root_ino) ])

let test_checkpoint_decode_rejects () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let b = Controller.encode_checkpoint (checkpoint_of env w.v_ino) in
      let expect_error what bytes =
        match Controller.decode_checkpoint bytes with
        | Ok _ -> Alcotest.failf "%s: corrupted encoding decoded successfully" what
        | Error _ -> ()
      in
      let flipped = Bytes.copy b in
      let mid = Bytes.length b / 2 in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
      expect_error "bit flip" flipped;
      expect_error "truncation" (Bytes.sub b 0 (Bytes.length b - 9));
      expect_error "empty" Bytes.empty)

(* Overflowing the MMU write-set must invalidate every older checkpoint
   mark: no snapshot may be served (full-walk fallback), and verdicts
   must stay correct. *)
let test_write_set_overflow_fallback () =
  Helpers.run_sim (fun env ->
      let w = make_world env in
      let mmu = env.Helpers.mmu in
      let f = Option.get (Controller.file_info env.Helpers.ctl w.v_ino) in
      let idx_pg = List.hd f.Ctl_state.f_index_pages in
      let ck = checkpoint_of env w.v_ino in
      Alcotest.(check bool) "tracked before overflow" true
        (Mmu.writes_tracked_since mmu ~mark:ck.ck_mark ~page:idx_pg);
      (match Controller.page_snapshot env.Helpers.ctl idx_pg with
      | Some _ -> ()
      | None -> Alcotest.fail "expected a snapshot for a clean index page");
      (* shrink the write-set so the next two stores overflow it *)
      Mmu.set_write_set_capacity mmu 1;
      (match f.Ctl_state.f_data_pages with
      | a :: b :: _ ->
        List.iter
          (fun pg ->
            Pmem.write env.Helpers.pmem ~actor:kactor ~addr:(pg * Layout.page_size)
              ~src:(Bytes.make 1 'z'))
          [ a; b ]
      | _ -> Alcotest.fail "victim too small");
      Alcotest.(check bool) "overflow invalidates the mark" false
        (Mmu.writes_tracked_since mmu ~mark:ck.ck_mark ~page:idx_pg);
      (match Controller.page_snapshot env.Helpers.ctl idx_pg with
      | None -> ()
      | Some _ -> Alcotest.fail "snapshot served after write-set overflow");
      (* the fallback full walk still gets verdicts right *)
      let tags =
        corrupt_and_share w (fun () ->
            Pmem.write_u64 env.Helpers.pmem ~actor:kactor ~addr:(w.v_addr + Layout.off_size)
              (1 lsl 26))
      in
      expect_check "size lie caught on fallback" `I1 tags)

let () =
  Alcotest.run "verifier"
    [
      ( "I1",
        [
          Alcotest.test_case "bad ftype" `Quick test_i1_bad_ftype;
          Alcotest.test_case "duplicate names" `Quick test_i1_duplicate_names;
          Alcotest.test_case "size inconsistent" `Quick test_i1_size_inconsistent;
          Alcotest.test_case "bad name char" `Quick test_i1_bad_name_char;
        ] );
      ( "I2",
        [
          Alcotest.test_case "free page" `Quick test_i2_free_page_reference;
          Alcotest.test_case "out of range" `Quick test_i2_out_of_range_page;
          Alcotest.test_case "double reference" `Quick test_i2_double_reference;
          Alcotest.test_case "unknown ino" `Quick test_i2_unknown_ino;
        ] );
      ("I3", [ Alcotest.test_case "deleted non-empty dir" `Quick test_i3_deleted_nonempty_dir ]);
      ( "policy",
        [
          Alcotest.test_case "I4 repairs without rollback" `Quick test_i4_repairs_without_rollback;
          Alcotest.test_case "fix callback avoids rollback" `Quick test_fix_callback_avoids_rollback;
          Alcotest.test_case "quarantine on unfixable" `Quick test_quarantine_on_unfixable;
          Alcotest.test_case "commit moves the checkpoint" `Quick test_commit_moves_checkpoint;
          Alcotest.test_case "writer lease expires" `Quick test_writer_lease_expires_for_writer;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "checkpoint round-trips" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "decode rejects corruption" `Quick test_checkpoint_decode_rejects;
          Alcotest.test_case "write-set overflow falls back" `Quick
            test_write_set_overflow_fallback;
        ] );
    ]
