(* Tests for the customized LibFSes (paper §5): KVFS and FPFS.

   Beyond functional correctness, these suites check the two properties
   Trio promises for customization: (1) the customized auxiliary state
   is *private* — files stay fully shareable through the generic POSIX
   LibFS — and (2) the customization actually pays off on its target
   workload (measured in virtual time). *)

module Rig = Trio_workloads.Rig
module Sched = Trio_sim.Sched
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Trio_core.Fs_types.errno_to_string e)

let with_rig f = Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 ~store_data:true f

(* ------------------------------------------------------------------ *)
(* KVFS *)

let test_kvfs_set_get () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      ok "set" (Kvfs.set kv "alpha" (Bytes.of_string "value-1"));
      Alcotest.(check string) "get" "value-1" (Bytes.to_string (ok "get" (Kvfs.get kv "alpha")));
      ok "overwrite" (Kvfs.set kv "alpha" (Bytes.of_string "v2"));
      Alcotest.(check string) "updated" "v2" (Bytes.to_string (ok "get" (Kvfs.get kv "alpha")));
      (match Kvfs.get kv "missing" with
      | Error Trio_core.Fs_types.ENOENT -> ()
      | _ -> Alcotest.fail "missing key should be ENOENT");
      Alcotest.(check bool) "exists" true (Kvfs.exists kv "alpha");
      Alcotest.(check bool) "not exists" false (Kvfs.exists kv "missing"))

let test_kvfs_size_limit () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      (* exactly the 32 KiB cap is fine; beyond is refused *)
      ok "max" (Kvfs.set kv "big" (Bytes.make Kvfs.max_file_size 'x'));
      match Kvfs.set kv "too-big" (Bytes.make (Kvfs.max_file_size + 1) 'x') with
      | Error Trio_core.Fs_types.EINVAL -> ()
      | _ -> Alcotest.fail "oversized value accepted")

let test_kvfs_many_small_values () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      for i = 0 to 299 do
        ok "set" (Kvfs.set kv (Printf.sprintf "obj%04d" i) (Bytes.make (100 + i) 'a'))
      done;
      for i = 0 to 299 do
        let v = ok "get" (Kvfs.get kv (Printf.sprintf "obj%04d" i)) in
        Alcotest.(check int) "length" (100 + i) (Bytes.length v)
      done)

(* Customization is PRIVATE: the same files are visible through the
   plain POSIX interface of the same (and another) LibFS. *)
let test_kvfs_interops_with_posix () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      ok "set" (Kvfs.set kv "shared-obj" (Bytes.of_string "kv-payload"));
      (* same process, POSIX view *)
      let posix = Libfs.ops libfs in
      Alcotest.(check string) "same LibFS" "kv-payload"
        (ok "read" (Fs.read_file posix "/kv/shared-obj"));
      (* hand the namespace to a different process with a plain LibFS *)
      Libfs.unmap_everything libfs;
      let other = Rig.mount_arckfs ~delegated:false rig in
      let other_ops = Libfs.ops other in
      Alcotest.(check string) "other LibFS" "kv-payload"
        (ok "read" (Fs.read_file other_ops "/kv/shared-obj"));
      (* and POSIX-created files are readable through get *)
      ())

let test_kvfs_delete () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      ok "set" (Kvfs.set kv "gone" (Bytes.of_string "x"));
      ok "delete" (Kvfs.delete kv "gone");
      match Kvfs.get kv "gone" with
      | Error Trio_core.Fs_types.ENOENT -> ()
      | _ -> Alcotest.fail "deleted key still readable")

(* The headline: get/set must beat open/pread/close on small files. *)
let test_kvfs_faster_than_posix () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount" (Kvfs.mount libfs ~dir:"/kv") in
      let posix = Libfs.ops libfs in
      let value = Bytes.make 4096 'v' in
      for i = 0 to 63 do
        ok "seed" (Kvfs.set kv (Printf.sprintf "o%03d" i) value)
      done;
      let kv_cost =
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:200 (fun () ->
            ignore (ok "get" (Kvfs.get kv "o007")))
      in
      let posix_cost =
        let buf = Bytes.create 4096 in
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:200 (fun () ->
            let fd = ok "open" (posix.Fs.open_ "/kv/o007" [ Trio_core.Fs_types.O_RDONLY ]) in
            ignore (ok "pread" (posix.Fs.pread fd buf 0));
            ok "close" (posix.Fs.close fd))
      in
      if kv_cost >= posix_cost then
        Alcotest.failf "KVFS get (%.0fns) should beat POSIX open+read+close (%.0fns)" kv_cost
          posix_cost)

(* ------------------------------------------------------------------ *)
(* FPFS *)

let deep_path depth name =
  "/" ^ String.concat "/" (List.init depth (fun i -> Printf.sprintf "l%d" i)) ^ "/" ^ name

let test_fpfs_conformance =
  ( "fpfs conformance",
    Conformance.suite ~make_fs:(fun check ->
        with_rig (fun rig ->
            check (Rig.mount_fs rig "fpfs");
            Rig.unmount_all rig;
            Conformance.accounting rig.Rig.ctl)) )

let test_fpfs_deep_paths () =
  with_rig (fun rig ->
      let fs = Trio_core.Vfs.ops (Rig.mount_fs rig "fpfs") in
      let dir = deep_path 20 "" in
      let dir = String.sub dir 0 (String.length dir - 1) in
      ok "mkdir_p" (Fs.mkdir_p fs dir);
      ok "write" (Fs.write_file fs (dir ^ "/leaf") "deep-content");
      Alcotest.(check string) "read back" "deep-content" (ok "read" (Fs.read_file fs (dir ^ "/leaf"))))

let test_fpfs_faster_on_deep_dirs () =
  (* stat at depth 20: FPFS (one probe after warmup) must beat ArckFS
     (twenty component walks). *)
  let cost name =
    with_rig (fun rig ->
        let fs = Trio_core.Vfs.ops (Rig.mount_fs rig name) in
        let dir =
          "/" ^ String.concat "/" (List.init 20 (fun i -> Printf.sprintf "l%d" i))
        in
        ok "mkdir_p" (Fs.mkdir_p fs dir);
        ok "write" (Fs.write_file fs (dir ^ "/leaf") "x");
        (* warm both systems' caches *)
        ignore (ok "warm" (fs.Fs.stat (dir ^ "/leaf")));
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:300 (fun () ->
            ignore (ok "stat" (fs.Fs.stat (dir ^ "/leaf")))))
  in
  let arckfs = cost "arckfs" and fpfs = cost "fpfs" in
  if fpfs >= arckfs then
    Alcotest.failf "FPFS deep stat (%.0fns) should beat ArckFS (%.0fns)" fpfs arckfs

let test_fpfs_rename_dir_invalidates () =
  with_rig (fun rig ->
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let fpfs = Fpfs.mount libfs in
      let fs = Fpfs.ops fpfs in
      ok "mkdir" (fs.Fs.mkdir "/olddir" 0o755);
      ok "write" (Fs.write_file fs "/olddir/f" "inside");
      (* warm the path cache *)
      ignore (ok "stat" (fs.Fs.stat "/olddir/f"));
      if Fpfs.cached_paths fpfs = 0 then Alcotest.fail "path cache not populated";
      ok "rename" (fs.Fs.rename "/olddir" "/newdir");
      (* stale cached paths must not resolve *)
      (match fs.Fs.stat "/olddir/f" with
      | Error Trio_core.Fs_types.ENOENT -> ()
      | Ok _ -> Alcotest.fail "stale path resolved after directory rename"
      | Error e -> Alcotest.failf "unexpected %s" (Trio_core.Fs_types.errno_to_string e));
      Alcotest.(check string) "new path works" "inside" (ok "read" (Fs.read_file fs "/newdir/f")))

let () =
  Alcotest.run "customized"
    [
      ( "kvfs",
        [
          Alcotest.test_case "set/get" `Quick test_kvfs_set_get;
          Alcotest.test_case "size limit" `Quick test_kvfs_size_limit;
          Alcotest.test_case "many small values" `Quick test_kvfs_many_small_values;
          Alcotest.test_case "interops with POSIX view" `Quick test_kvfs_interops_with_posix;
          Alcotest.test_case "delete" `Quick test_kvfs_delete;
          Alcotest.test_case "faster than POSIX on small files" `Quick test_kvfs_faster_than_posix;
        ] );
      test_fpfs_conformance;
      ( "fpfs",
        [
          Alcotest.test_case "deep paths" `Quick test_fpfs_deep_paths;
          Alcotest.test_case "faster on deep dirs" `Quick test_fpfs_faster_on_deep_dirs;
          Alcotest.test_case "dir rename invalidates cache" `Quick test_fpfs_rename_dir_invalidates;
        ] );
    ]
