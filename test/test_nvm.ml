(* Tests for the simulated NVM device: data plumbing, persistence and
   crash semantics, MMU enforcement, and the performance model. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Rng = Trio_util.Rng

let make ?(nodes = 2) ?(store_data = true) () =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes ~cpus_per_node:4 in
  let pmem = Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node:1024 ~store_data () in
  (sched, pmem)

let in_fiber ?nodes ?store_data f =
  let sched, pmem = make ?nodes ?store_data () in
  let r = ref None in
  Sched.spawn sched (fun () -> r := Some (f sched pmem));
  ignore (Sched.run sched);
  Option.get !r

let actor = Pmem.kernel_actor

(* ------------------------------------------------------------------ *)

let test_read_write_roundtrip () =
  in_fiber (fun _ pm ->
      let data = Bytes.of_string "hello persistent world" in
      Pmem.write pm ~actor ~addr:8192 ~src:data;
      let back = Pmem.read pm ~actor ~addr:8192 ~len:(Bytes.length data) in
      Alcotest.(check string) "roundtrip" (Bytes.to_string data) (Bytes.to_string back))

let test_unwritten_reads_zero () =
  in_fiber (fun _ pm ->
      let b = Pmem.read pm ~actor ~addr:4096 ~len:16 in
      Alcotest.(check string) "zeros" (String.make 16 '\000') (Bytes.to_string b))

let test_cross_page_access () =
  in_fiber (fun _ pm ->
      let data = Bytes.init 8192 (fun i -> Char.chr (i mod 256)) in
      (* start mid-page so the write spans three pages *)
      Pmem.write pm ~actor ~addr:6000 ~src:data;
      let back = Pmem.read pm ~actor ~addr:6000 ~len:8192 in
      Alcotest.(check bool) "cross-page roundtrip" true (Bytes.equal data back))

let test_u64_accessors () =
  in_fiber (fun _ pm ->
      Pmem.write_u64 pm ~actor ~addr:4096 0x1122334455667788;
      Alcotest.(check int) "u64" 0x1122334455667788 (Pmem.read_u64 pm ~actor ~addr:4096))

(* ------------------------------------------------------------------ *)
(* Persistence & crash *)

let test_crash_reverts_unflushed () =
  in_fiber (fun _ pm ->
      Pmem.write_u64 pm ~actor ~addr:4096 1111;
      Pmem.persist pm ~addr:4096 ~len:8;
      Pmem.write_u64 pm ~actor ~addr:4096 2222;
      (* not persisted *)
      Pmem.crash pm;
      Alcotest.(check int) "old value survives" 1111 (Pmem.read_u64 pm ~actor ~addr:4096))

let test_crash_keeps_flushed () =
  in_fiber (fun _ pm ->
      Pmem.write_u64 pm ~actor ~addr:4096 1111;
      Pmem.persist pm ~addr:4096 ~len:8;
      Pmem.crash pm;
      Alcotest.(check int) "persisted survives" 1111 (Pmem.read_u64 pm ~actor ~addr:4096))

let test_crash_line_granularity () =
  in_fiber (fun _ pm ->
      (* two values on different cachelines; persist only one *)
      Pmem.write_u64 pm ~actor ~addr:4096 1;
      Pmem.write_u64 pm ~actor ~addr:(4096 + 64) 2;
      Pmem.persist pm ~addr:4096 ~len:8;
      Pmem.crash pm;
      Alcotest.(check int) "flushed line" 1 (Pmem.read_u64 pm ~actor ~addr:4096);
      Alcotest.(check int) "unflushed line reverted" 0 (Pmem.read_u64 pm ~actor ~addr:(4096 + 64)))

let test_crash_random_subset_is_deterministic () =
  let run seed =
    in_fiber (fun _ pm ->
        for i = 0 to 9 do
          Pmem.write_u64 pm ~actor ~addr:(4096 + (i * 64)) (i + 1)
        done;
        let rng = Rng.create seed in
        Pmem.crash ~rng pm;
        List.init 10 (fun i -> Pmem.read_u64 pm ~actor ~addr:(4096 + (i * 64))))
  in
  Alcotest.(check (list int)) "same seed, same surviving lines" (run 42) (run 42);
  (* dirty state is cleared after crash: a second crash changes nothing *)
  in_fiber (fun _ pm ->
      Pmem.write_u64 pm ~actor ~addr:4096 7;
      Pmem.crash pm;
      let v = Pmem.read_u64 pm ~actor ~addr:4096 in
      Pmem.crash pm;
      Alcotest.(check int) "stable after second crash" v (Pmem.read_u64 pm ~actor ~addr:4096))

let test_dirty_lines_accounting () =
  in_fiber (fun _ pm ->
      Alcotest.(check int) "clean" 0 (Pmem.dirty_lines pm);
      Pmem.write_u64 pm ~actor ~addr:4096 1;
      Alcotest.(check int) "one dirty line" 1 (Pmem.dirty_lines pm);
      Pmem.persist pm ~addr:4096 ~len:8;
      Alcotest.(check int) "clean again" 0 (Pmem.dirty_lines pm))

let test_redirty_same_line_counts_once () =
  in_fiber (fun _ pm ->
      (* hammering one cacheline keeps exactly one pre-image *)
      for i = 1 to 50 do
        Pmem.write_u64 pm ~actor ~addr:4096 i
      done;
      Alcotest.(check int) "one line" 1 (Pmem.dirty_lines pm);
      (* the pre-image is from before the FIRST store *)
      Pmem.crash pm;
      Alcotest.(check int) "reverts to original" 0 (Pmem.read_u64 pm ~actor ~addr:4096);
      (* persist then re-dirty: the line is tracked afresh *)
      Pmem.write_u64 pm ~actor ~addr:4096 7;
      Pmem.persist pm ~addr:4096 ~len:8;
      Pmem.write_u64 pm ~actor ~addr:4096 8;
      Alcotest.(check int) "re-dirtied after persist" 1 (Pmem.dirty_lines pm);
      Pmem.crash pm;
      Alcotest.(check int) "reverts to persisted value" 7 (Pmem.read_u64 pm ~actor ~addr:4096))

let test_dirty_accounting_across_pages () =
  in_fiber (fun _ pm ->
      (* a 3-page write dirties exactly ceil(len/64) lines, device-wide *)
      let len = 3 * 4096 in
      Pmem.write pm ~actor ~addr:8192 ~src:(Bytes.make len 'x');
      Alcotest.(check int) "lines = len/64" (len / 64) (Pmem.dirty_lines pm);
      (* persisting a sub-range clears only that range's lines *)
      Pmem.persist pm ~addr:8192 ~len:4096;
      Alcotest.(check int) "one page persisted" (2 * 4096 / 64) (Pmem.dirty_lines pm);
      Pmem.crash pm;
      Alcotest.(check int) "crash drains the counter" 0 (Pmem.dirty_lines pm))

let test_zero_copy_roundtrip () =
  in_fiber (fun _ pm ->
      (* write_from / read_into move sub-ranges of caller buffers *)
      let src = Bytes.of_string "....payload-here...." in
      Pmem.write_from pm ~actor ~addr:12288 ~src ~pos:4 ~len:12;
      let dst = Bytes.make 20 '#' in
      Pmem.read_into pm ~actor ~addr:12288 ~dst ~pos:4 ~len:12;
      Alcotest.(check string) "payload lands at pos" "####payload-here####" (Bytes.to_string dst);
      (* bounds are validated with a typed error *)
      (try
         Pmem.read_into pm ~actor ~addr:0 ~dst ~pos:16 ~len:8;
         Alcotest.fail "out-of-bounds read_into accepted"
       with Pmem.Bounds _ -> ());
      (try
         Pmem.write_from pm ~actor ~addr:0 ~src ~pos:(-1) ~len:4;
         Alcotest.fail "negative pos accepted"
       with Pmem.Bounds _ -> ());
      (* device-range violations get the same typed error, and the
         copying read/write paths agree with the zero-copy ones *)
      let total = Pmem.total_pages pm * 4096 in
      (try
         Pmem.read_into pm ~actor ~addr:(total - 4) ~dst ~pos:0 ~len:8;
         Alcotest.fail "past-end read_into accepted"
       with Pmem.Bounds _ -> ());
      (try
         ignore (Pmem.read pm ~actor ~addr:(total - 4) ~len:8);
         Alcotest.fail "past-end read accepted"
       with Pmem.Bounds _ -> ());
      try
        Pmem.write pm ~actor ~addr:(-8) ~src;
        Alcotest.fail "negative addr accepted"
      with Pmem.Bounds _ -> ())

(* ------------------------------------------------------------------ *)
(* Data-page materialization *)

let test_data_pages_not_materialized () =
  in_fiber ~store_data:false (fun _ pm ->
      Pmem.set_kind pm 2 Pmem.Data;
      let before = Pmem.materialized_pages pm in
      Pmem.write pm ~actor ~addr:8192 ~src:(Bytes.make 4096 'x');
      (* cost accounted but no storage *)
      Alcotest.(check int) "no page materialized" before (Pmem.materialized_pages pm);
      let b = Pmem.read pm ~actor ~addr:8192 ~len:8 in
      Alcotest.(check string) "reads zeros" (String.make 8 '\000') (Bytes.to_string b))

let test_meta_pages_always_materialized () =
  in_fiber ~store_data:false (fun _ pm ->
      (* default kind is Meta *)
      Pmem.write_u64 pm ~actor ~addr:12288 99;
      Alcotest.(check int) "meta stored" 99 (Pmem.read_u64 pm ~actor ~addr:12288))

(* ------------------------------------------------------------------ *)
(* MMU enforcement *)

let test_mmu_fault_on_unmapped () =
  in_fiber (fun _ pm ->
      Pmem.set_perm_check pm (fun ~actor:_ ~page:_ ~write:_ -> false);
      match Pmem.read pm ~actor:7 ~addr:4096 ~len:8 with
      | _ -> Alcotest.fail "expected MMU fault"
      | exception Pmem.Mmu_fault { actor = a; page; write } ->
        Alcotest.(check int) "actor" 7 a;
        Alcotest.(check int) "page" 1 page;
        Alcotest.(check bool) "read fault" false write)

let test_mmu_kernel_bypasses () =
  in_fiber (fun _ pm ->
      Pmem.set_perm_check pm (fun ~actor:_ ~page:_ ~write:_ -> false);
      ignore (Pmem.read pm ~actor:Pmem.kernel_actor ~addr:4096 ~len:8))

let test_mmu_write_vs_read_perm () =
  in_fiber (fun _ pm ->
      Pmem.set_perm_check pm (fun ~actor:_ ~page:_ ~write -> not write);
      ignore (Pmem.read pm ~actor:7 ~addr:4096 ~len:8);
      match Pmem.write_u64 pm ~actor:7 ~addr:4096 1 with
      | _ -> Alcotest.fail "expected write fault"
      | exception Pmem.Mmu_fault { write = true; _ } -> ())

(* ------------------------------------------------------------------ *)
(* Performance model *)

let test_write_slower_than_read () =
  let time_op write =
    in_fiber (fun sched pm ->
        let t0 = Sched.now sched in
        if write then Pmem.write pm ~actor ~addr:4096 ~src:(Bytes.make 4096 'x')
        else ignore (Pmem.read pm ~actor ~addr:4096 ~len:4096);
        Sched.now sched -. t0)
  in
  let r = time_op false and w = time_op true in
  if w <= r then Alcotest.failf "4K write (%.0fns) should cost more than read (%.0fns)" w r

let test_remote_access_penalty () =
  (* Access node 1's pages from a CPU on node 0 vs a CPU on node 1. *)
  let time_from cpu =
    let sched, pm = make () in
    let r = ref 0.0 in
    Sched.spawn ~cpu sched (fun () ->
        let t0 = Sched.now sched in
        Pmem.write pm ~actor ~addr:(1024 * 4096) ~src:(Bytes.make 4096 'x');
        r := Sched.now sched -. t0);
    ignore (Sched.run sched);
    !r
  in
  let local = time_from 4 (* node 1 *) and remote = time_from 0 (* node 0 *) in
  if remote <= local then
    Alcotest.failf "remote write (%.0fns) should cost more than local (%.0fns)" remote local

let test_write_bandwidth_collapse () =
  (* Optane writes: aggregate bandwidth at 64 threads is far below the
     4-thread peak; our curve must reproduce the collapse. *)
  let bw4 = Perf.write_bandwidth Perf.optane 4 in
  let bw64 = Perf.write_bandwidth Perf.optane 64 in
  if not (bw64 < bw4 /. 2.0) then
    Alcotest.failf "write bandwidth should collapse: bw(4)=%.1f bw(64)=%.1f" bw4 bw64

let test_read_bandwidth_saturates () =
  let bw1 = Perf.read_bandwidth Perf.optane 1 in
  let bw16 = Perf.read_bandwidth Perf.optane 16 in
  let bw224 = Perf.read_bandwidth Perf.optane 224 in
  if not (bw16 > bw1 *. 3.0) then Alcotest.fail "read bandwidth should scale up initially";
  if not (bw224 > bw16 /. 2.0) then Alcotest.fail "read bandwidth should not collapse"

let test_interp_clamps () =
  let anchors = [| (1.0, 10.0); (2.0, 20.0) |] in
  Alcotest.(check (float 0.001)) "below" 10.0 (Perf.interp anchors 0.5);
  Alcotest.(check (float 0.001)) "above" 20.0 (Perf.interp anchors 5.0);
  Alcotest.(check (float 0.001)) "between" 15.0 (Perf.interp anchors 1.5)

(* Property: the device's persistence semantics agree with a simple
   two-image model (volatile + persisted) at cacheline granularity,
   under random writes, flushes and crashes. *)
type pmem_op = P_write of int * int | P_persist of int * int | P_crash

let prop_persistence_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (5, map2 (fun off len -> P_write (off, len)) (int_bound 1900) (int_range 1 140));
          (3, map2 (fun off len -> P_persist (off, len)) (int_bound 1900) (int_range 1 140));
          (1, return P_crash);
        ])
  in
  let show = function
    | P_write (o, l) -> Printf.sprintf "write(%d,%d)" o l
    | P_persist (o, l) -> Printf.sprintf "persist(%d,%d)" o l
    | P_crash -> "crash"
  in
  QCheck.Test.make ~name:"persistence agrees with the two-image model" ~count:200
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map show ops))
        Gen.(list_size (int_range 1 40) gen_op))
    (fun ops ->
      let region = 2048 in
      let base = 8192 (* page 2 *) in
      let result = ref false in
      let sched, pm = make () in
      Sched.spawn sched (fun () ->
          (* model: volatile and persisted images + dirty-line set *)
          let volatile = Bytes.make region ' ' in
          let persisted = Bytes.make region ' ' in
          let line = 64 in
          let dirty = Array.make (region / line) false in
          let counter = ref 0 in
          List.iter
            (fun op ->
              match op with
              | P_write (off, len) ->
                let len = min len (region - off) in
                incr counter;
                let v = Char.chr (!counter mod 256) in
                Pmem.write pm ~actor ~addr:(base + off) ~src:(Bytes.make len v);
                Bytes.fill volatile off len v;
                for l = off / line to (off + len - 1) / line do
                  dirty.(l) <- true
                done
              | P_persist (off, len) ->
                let len = min len (region - off) in
                Pmem.persist pm ~addr:(base + off) ~len;
                (* whole lines touched by the range become clean *)
                for l = off / line to (off + len - 1) / line do
                  let lo = l * line in
                  Bytes.blit volatile lo persisted lo line;
                  dirty.(l) <- false
                done
              | P_crash ->
                Pmem.crash pm;
                Bytes.blit persisted 0 volatile 0 region;
                Array.fill dirty 0 (Array.length dirty) false)
            ops;
          let b = Pmem.read pm ~actor ~addr:base ~len:region in
          if not (Bytes.equal b volatile) then
            Alcotest.fail "device disagrees with the model";
          result := true);
      ignore (Sched.run sched);
      !result)

let test_numa_topology () =
  let topo = Numa.paper_machine in
  Alcotest.(check int) "nodes" 8 (Numa.nodes topo);
  Alcotest.(check int) "total cpus" 224 (Numa.total_cpus topo);
  Alcotest.(check int) "cpu 0 -> node 0" 0 (Numa.node_of_cpu topo 0);
  Alcotest.(check int) "cpu 27 -> node 0" 0 (Numa.node_of_cpu topo 27);
  Alcotest.(check int) "cpu 28 -> node 1" 1 (Numa.node_of_cpu topo 28);
  Alcotest.(check int) "cpu 223 -> node 7" 7 (Numa.node_of_cpu topo 223)

(* ------------------------------------------------------------------ *)
(* Crash injector *)

let test_injector_counts_and_rearms () =
  in_fiber (fun _ pm ->
      let user = 1 in
      Pmem.fail_after_writes pm 3;
      (* kernel stores are never counted against the budget *)
      Pmem.write_u64 pm ~actor ~addr:4096 1;
      (* 3 user stores execute... *)
      for i = 1 to 3 do
        Pmem.write_u64 pm ~actor:user ~addr:(8192 + (i * 64)) i
      done;
      (* ...and the 4th raises, auto-disarming the injector *)
      (match Pmem.write_u64 pm ~actor:user ~addr:8192 9 with
      | () -> Alcotest.fail "4th user store should raise Crash_point"
      | exception Pmem.Crash_point -> ());
      Pmem.write_u64 pm ~actor:user ~addr:8192 10;
      Alcotest.(check int) "auto-disarmed" 10 (Pmem.read_u64 pm ~actor ~addr:8192);
      (* re-arming works, including at budget 0 (next store dies) *)
      Pmem.fail_after_writes pm 0;
      (match Pmem.write_u64 pm ~actor:user ~addr:8192 11 with
      | () -> Alcotest.fail "re-armed injector should raise immediately"
      | exception Pmem.Crash_point -> ());
      Pmem.write_u64 pm ~actor:user ~addr:8192 12;
      Alcotest.(check int) "second auto-disarm" 12 (Pmem.read_u64 pm ~actor ~addr:8192))

(* >64 dirty lines spread over pages, with a partial persist and
   re-dirtying in between: accounting, the dirty-line list and crash
   reverts must all stay exact (the per-page dirty_order list keeps
   stale entries after a persist — they must not resurrect). *)
let test_many_dirty_lines_across_pages () =
  in_fiber (fun _ pm ->
      let n = 130 in
      for i = 0 to n - 1 do
        Pmem.write_u64 pm ~actor ~addr:(4096 + (i * 64)) (i + 1)
      done;
      Alcotest.(check int) "130 dirty lines" n (Pmem.dirty_lines pm);
      Alcotest.(check int) "list agrees" n (List.length (Pmem.dirty_line_list pm));
      (* persist the middle page (lines 64..127), then re-dirty two of
         its lines: their pre-images are now the persisted values *)
      Pmem.persist pm ~addr:8192 ~len:4096;
      Alcotest.(check int) "page 2 drained" (n - 64) (Pmem.dirty_lines pm);
      Pmem.write_u64 pm ~actor ~addr:8192 999;
      Pmem.write_u64 pm ~actor ~addr:(8192 + 64) 998;
      Alcotest.(check int) "re-dirtied" (n - 64 + 2) (Pmem.dirty_lines pm);
      Pmem.crash pm;
      Alcotest.(check int) "crash drains everything" 0 (Pmem.dirty_lines pm);
      Alcotest.(check bool) "list empty" true (Pmem.dirty_line_list pm = []);
      Alcotest.(check int) "page 1 reverted to zero" 0 (Pmem.read_u64 pm ~actor ~addr:4096);
      Alcotest.(check int) "page 2 reverted to persisted" 65 (Pmem.read_u64 pm ~actor ~addr:8192);
      Alcotest.(check int) "page 2 line 1 reverted to persisted" 66
        (Pmem.read_u64 pm ~actor ~addr:(8192 + 64)))

(* ------------------------------------------------------------------ *)
(* Event log and replay *)

let test_event_log_order_across_persist_ranges () =
  in_fiber (fun _ pm ->
      Pmem.set_recording pm true;
      Pmem.write_u64 pm ~actor:1 ~addr:4096 1;
      Pmem.write_u64 pm ~actor ~addr:8192 2;
      Pmem.persist_ranges pm [ (4096, 8); (8192, 8) ];
      Pmem.write_u64 pm ~actor:1 ~addr:4160 3;
      Pmem.persist pm ~addr:4160 ~len:8;
      (* the log preserves program order, one Ev_persist per fence with
         all its ranges, and kernel stores are logged but not counted *)
      (match Pmem.recorded_events pm with
      | [
       Pmem.Ev_store { actor = 1; addr = 4096; _ };
       Pmem.Ev_store { actor = 0; addr = 8192; _ };
       Pmem.Ev_persist [ (4096, 8); (8192, 8) ];
       Pmem.Ev_store { actor = 1; addr = 4160; _ };
       Pmem.Ev_persist [ (4160, 8) ];
      ] ->
        ()
      | evs -> Alcotest.failf "unexpected log shape (%d events)" (List.length evs));
      Alcotest.(check int) "user stores counted" 2 (Pmem.recorded_user_stores pm);
      Alcotest.(check int) "event count" 5 (Pmem.recorded_event_count pm))

let test_recording_requires_store_data () =
  in_fiber ~store_data:false (fun _ pm ->
      match Pmem.set_recording pm true with
      | () -> Alcotest.fail "set_recording must reject cost-only devices"
      | exception Invalid_argument _ -> ())

(* Same log => bit-identical image, and the image matches the live
   device in both content and unflushed-line set. *)
let test_replay_determinism () =
  in_fiber (fun _ pm ->
      Pmem.set_recording pm true;
      let rng = Rng.create 9 in
      for i = 0 to 199 do
        let addr = 4096 + (Rng.int rng 40 * 64) in
        Pmem.write_u64 pm ~actor:1 ~addr (i + 1);
        if Rng.int rng 3 = 0 then Pmem.persist pm ~addr ~len:8;
        if Rng.int rng 7 = 0 then Pmem.persist_ranges pm [ (4096, 512); (8192, 128) ]
      done;
      let evs = Pmem.recorded_events pm in
      let replay () =
        let img = Pmem.Replay.create () in
        Pmem.Replay.apply_all img evs;
        img
      in
      let img1 = replay () and img2 = replay () in
      Alcotest.(check (list int)) "same pages" (Pmem.Replay.pages img1) (Pmem.Replay.pages img2);
      List.iter
        (fun pg ->
          Alcotest.(check bool) "replayed pages bit-identical" true
            (Bytes.equal (Pmem.Replay.page img1 pg) (Pmem.Replay.page img2 pg)))
        (Pmem.Replay.pages img1);
      Alcotest.(check bool) "dirty set matches device" true
        (Pmem.Replay.dirty img1 = Pmem.dirty_line_list pm);
      List.iter
        (fun pg ->
          Alcotest.(check bool) "image matches device content" true
            (Bytes.equal (Pmem.Replay.page img1 pg) (Pmem.peek_page pm pg)))
        (Pmem.Replay.pages img1))

(* Power failure applied to the image and to the device with the same
   surviving-line predicate yields the same bytes. *)
let test_crash_select_matches_replay_crash () =
  in_fiber (fun _ pm ->
      Pmem.set_recording pm true;
      for i = 0 to 29 do
        Pmem.write_u64 pm ~actor:1 ~addr:(4096 + (i * 64)) (i + 100)
      done;
      Pmem.persist pm ~addr:4096 ~len:512;
      let img = Pmem.Replay.create () in
      Pmem.Replay.apply_all img (Pmem.recorded_events pm);
      let survives ~page ~line = (page + line) mod 3 = 0 in
      Pmem.Replay.crash img ~survives;
      Pmem.crash_select pm ~survives;
      Alcotest.(check bool) "device dirty drained" true (Pmem.dirty_line_list pm = []);
      Alcotest.(check bool) "image dirty drained" true (Pmem.Replay.dirty img = []);
      List.iter
        (fun pg ->
          Alcotest.(check bool) "post-crash bytes identical" true
            (Bytes.equal (Pmem.Replay.page img pg) (Pmem.peek_page pm pg)))
        (Pmem.Replay.pages img))

(* Freeing a page mid-log: the discard event keeps image and device in
   lockstep (content gone, pending pre-images dropped). *)
let test_replay_discard_parity () =
  in_fiber (fun _ pm ->
      Pmem.set_recording pm true;
      Pmem.write_u64 pm ~actor:1 ~addr:8192 77;
      Pmem.persist pm ~addr:8192 ~len:8;
      Pmem.write_u64 pm ~actor:1 ~addr:8256 78;
      Pmem.discard_page pm 2;
      let img = Pmem.Replay.create () in
      Pmem.Replay.apply_all img (Pmem.recorded_events pm);
      Alcotest.(check bool) "dirty sets agree" true
        (Pmem.Replay.dirty img = Pmem.dirty_line_list pm);
      Alcotest.(check bool) "discarded page reads as zeros" true
        (Bytes.equal (Pmem.Replay.page img 2) (Pmem.peek_page pm 2)))

(* ------------------------------------------------------------------ *)
(* Media-fault plane *)

let user = 1

let test_poison_detected_and_scrambled () =
  in_fiber (fun _ pm ->
      Pmem.write pm ~actor:user ~addr:8192 ~src:(Bytes.make 128 'a');
      Pmem.persist pm ~addr:8192 ~len:128;
      Pmem.inject_poison pm ~addr:8192 ~len:64;
      (* user loads overlapping the line fail, non-transiently *)
      (match Pmem.read pm ~actor:user ~addr:8192 ~len:128 with
      | _ -> Alcotest.fail "read through poison succeeded"
      | exception Pmem.Media_fault { transient; _ } ->
        Alcotest.(check bool) "non-transient" false transient);
      (* the data is genuinely gone: the kernel reads through and sees
         the garbage pattern, not the old payload *)
      let b = Pmem.read pm ~actor:Pmem.kernel_actor ~addr:8192 ~len:64 in
      Alcotest.(check string) "content scrambled" (String.make 64 '\222') (Bytes.to_string b);
      (* ECC read reports the poisoned line addresses without raising *)
      (match Pmem.read_ecc pm ~actor:user ~addr:8192 ~len:128 with
      | Pmem.Ecc.Ok _ -> Alcotest.fail "read_ecc missed the poison"
      | Pmem.Ecc.Poisoned bad -> Alcotest.(check (list int)) "one bad line" [ 8192 ] bad);
      let st = Pmem.fault_stats pm in
      Alcotest.(check bool) "hits counted" true (st.Pmem.poison_read_hits >= 2);
      Alcotest.(check int) "one line poisoned" 1 st.Pmem.poisoned_now)

let test_transient_faults_replay_with_seed () =
  let pattern () =
    in_fiber (fun _ pm ->
        Pmem.set_fault_injection pm ~seed:424242 ~transient_read_p:0.4 ();
        List.init 40 (fun i ->
            match Pmem.read pm ~actor:user ~addr:(4096 + (i * 64)) ~len:8 with
            | _ -> false
            | exception Pmem.Media_fault { transient = true; _ } -> true
            | exception Pmem.Media_fault { transient = false; _ } ->
              Alcotest.fail "clean line reported as poisoned"))
  in
  let p1 = pattern () and p2 = pattern () in
  Alcotest.(check (list bool)) "same seed, same fault sequence" p1 p2;
  if not (List.mem true p1) then Alcotest.fail "p=0.4 over 40 reads drew no fault";
  if not (List.mem false p1) then Alcotest.fail "p=0.4 over 40 reads failed every read"

let test_stuck_store_poisons_then_rewrite_heals () =
  in_fiber (fun _ pm ->
      Pmem.set_fault_injection pm ~seed:7 ~stuck_store_p:1.0 ();
      Pmem.write pm ~actor:user ~addr:12288 ~src:(Bytes.make 100 'x');
      let st = Pmem.fault_stats pm in
      Alcotest.(check int) "one stuck store" 1 st.Pmem.stuck_stores;
      Alcotest.(check int) "two lines poisoned" 2 st.Pmem.poisoned_now;
      (* the lost write is detected by the next read *)
      (match Pmem.read pm ~actor:user ~addr:12288 ~len:100 with
      | _ -> Alcotest.fail "lost write not detected"
      | exception Pmem.Media_fault { transient = false; _ } -> ());
      (* a later good store over the range heals the poison *)
      Pmem.clear_fault_injection pm;
      Pmem.write pm ~actor:user ~addr:12288 ~src:(Bytes.make 100 'y');
      Pmem.persist pm ~addr:12288 ~len:100;
      let st = Pmem.fault_stats pm in
      Alcotest.(check int) "healed" 0 st.Pmem.poisoned_now;
      Alcotest.(check int) "repairs counted" 2 st.Pmem.poison_repaired;
      let b = Pmem.read pm ~actor:user ~addr:12288 ~len:100 in
      Alcotest.(check string) "rewritten data readable" (String.make 100 'y') (Bytes.to_string b))

let test_kernel_actor_immune () =
  in_fiber (fun _ pm ->
      Pmem.set_fault_injection pm ~seed:9 ~transient_read_p:1.0 ~stuck_store_p:1.0 ();
      (* kernel accesses neither draw faults nor latch stores *)
      Pmem.write pm ~actor:Pmem.kernel_actor ~addr:4096 ~src:(Bytes.make 64 'k');
      ignore (Pmem.read pm ~actor:Pmem.kernel_actor ~addr:4096 ~len:64);
      let st = Pmem.fault_stats pm in
      Alcotest.(check int) "no transients" 0 st.Pmem.transient_faults;
      Alcotest.(check int) "no stuck stores" 0 st.Pmem.stuck_stores;
      Alcotest.(check int) "nothing poisoned" 0 st.Pmem.poisoned_now;
      (* and read_ecc never draws transients even for user actors *)
      match Pmem.read_ecc pm ~actor:user ~addr:4096 ~len:64 with
      | Pmem.Ecc.Ok _ -> ()
      | Pmem.Ecc.Poisoned _ -> Alcotest.fail "read_ecc drew a transient fault")

let test_poison_is_media_state () =
  in_fiber (fun _ pm ->
      Pmem.write_u64 pm ~actor:user ~addr:8192 5;
      Pmem.inject_poison pm ~addr:8192 ~len:8;
      (* poison survives a power failure... *)
      Pmem.crash pm;
      Alcotest.(check bool) "survives crash" true (Pmem.is_poisoned pm ~page:2 ~line:0);
      (* ...and surviving a page discard (the free list does not scrub) *)
      Pmem.discard_page pm 2;
      Alcotest.(check bool) "survives discard" true (Pmem.is_poisoned pm ~page:2 ~line:0);
      (* until something rewrites the line *)
      Pmem.write_u64 pm ~actor:user ~addr:8192 6;
      Alcotest.(check bool) "healed by store" false (Pmem.is_poisoned pm ~page:2 ~line:0))

let () =
  Alcotest.run "nvm"
    [
      ( "data",
        [
          Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
          Alcotest.test_case "zeros" `Quick test_unwritten_reads_zero;
          Alcotest.test_case "cross page" `Quick test_cross_page_access;
          Alcotest.test_case "u64" `Quick test_u64_accessors;
        ] );
      ( "crash",
        [
          Alcotest.test_case "reverts unflushed" `Quick test_crash_reverts_unflushed;
          Alcotest.test_case "keeps flushed" `Quick test_crash_keeps_flushed;
          Alcotest.test_case "line granularity" `Quick test_crash_line_granularity;
          Alcotest.test_case "random subset deterministic" `Quick
            test_crash_random_subset_is_deterministic;
          Alcotest.test_case "dirty accounting" `Quick test_dirty_lines_accounting;
          Alcotest.test_case "re-dirty counts once" `Quick test_redirty_same_line_counts_once;
          Alcotest.test_case "dirty accounting across pages" `Quick
            test_dirty_accounting_across_pages;
          Alcotest.test_case "zero-copy roundtrip" `Quick test_zero_copy_roundtrip;
          Alcotest.test_case "injector counts and re-arms" `Quick
            test_injector_counts_and_rearms;
          Alcotest.test_case "many dirty lines across pages" `Quick
            test_many_dirty_lines_across_pages;
        ] );
      ( "replay",
        [
          Alcotest.test_case "event log order" `Quick test_event_log_order_across_persist_ranges;
          Alcotest.test_case "recording needs store_data" `Quick
            test_recording_requires_store_data;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "crash_select parity" `Quick test_crash_select_matches_replay_crash;
          Alcotest.test_case "discard parity" `Quick test_replay_discard_parity;
        ] );
      ( "materialization",
        [
          Alcotest.test_case "data pages cost-only" `Quick test_data_pages_not_materialized;
          Alcotest.test_case "meta pages stored" `Quick test_meta_pages_always_materialized;
        ] );
      ( "faults",
        [
          Alcotest.test_case "poison detected and scrambled" `Quick
            test_poison_detected_and_scrambled;
          Alcotest.test_case "transient faults replay with seed" `Quick
            test_transient_faults_replay_with_seed;
          Alcotest.test_case "stuck store poisons, rewrite heals" `Quick
            test_stuck_store_poisons_then_rewrite_heals;
          Alcotest.test_case "kernel actor immune" `Quick test_kernel_actor_immune;
          Alcotest.test_case "poison is media state" `Quick test_poison_is_media_state;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "fault on unmapped" `Quick test_mmu_fault_on_unmapped;
          Alcotest.test_case "kernel bypasses" `Quick test_mmu_kernel_bypasses;
          Alcotest.test_case "write vs read perm" `Quick test_mmu_write_vs_read_perm;
        ] );
      ( "perf",
        [
          Alcotest.test_case "write slower than read" `Quick test_write_slower_than_read;
          Alcotest.test_case "remote penalty" `Quick test_remote_access_penalty;
          Alcotest.test_case "write collapse" `Quick test_write_bandwidth_collapse;
          Alcotest.test_case "read saturates" `Quick test_read_bandwidth_saturates;
          Alcotest.test_case "interp clamps" `Quick test_interp_clamps;
          Alcotest.test_case "numa topology" `Quick test_numa_topology;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_persistence_model ]);
    ]
