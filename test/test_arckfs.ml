(* End-to-end tests of the ArckFS LibFS: POSIX-like semantics, data
   paths, concurrency, delegation, crash consistency. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
open Trio_core.Fs_types

let ( let* ) = Result.bind
let ok = Helpers.check_ok
let err = Helpers.check_err

(* Everything flows through the instrumented VFS dispatch layer, like
   production consumers do. *)
let with_fs f =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      f env fs (Trio_core.Vfs.ops (Trio_core.Vfs.wrap ~sched:env.Helpers.sched (Libfs.ops fs))))

(* ------------------------------------------------------------------ *)
(* Basic namespace operations *)

let test_create_and_stat () =
  with_fs (fun _ _ ops ->
      let fd = ok "create" (ops.Fs.create "/a.txt" 0o644) in
      ok "close" (ops.Fs.close fd);
      let st = ok "stat" (ops.Fs.stat "/a.txt") in
      Alcotest.(check int) "size 0" 0 st.st_size;
      Alcotest.(check int) "mode" 0o644 st.st_mode;
      Alcotest.(check int) "uid" 1000 st.st_uid;
      Alcotest.(check bool) "is regular" true (st.st_ftype = Reg))

let test_create_duplicate_fails () =
  with_fs (fun _ _ ops ->
      ignore (ok "first" (ops.Fs.create "/dup" 0o644));
      err "duplicate" EEXIST (ops.Fs.create "/dup" 0o644))

let test_open_missing_fails () =
  with_fs (fun _ _ ops -> err "missing" ENOENT (ops.Fs.open_ "/nope" [ O_RDONLY ]))

let test_open_o_creat () =
  with_fs (fun _ _ ops ->
      let fd = ok "o_creat" (ops.Fs.open_ "/new" [ O_RDWR; O_CREAT ]) in
      ok "close" (ops.Fs.close fd);
      ignore (ok "stat" (ops.Fs.stat "/new")))

let test_invalid_paths () =
  with_fs (fun _ _ ops ->
      err "relative" EINVAL (ops.Fs.create "relative/path" 0o644);
      err "empty name" EINVAL (ops.Fs.create "/" 0o644);
      err "name too long" ENAMETOOLONG (ops.Fs.create ("/" ^ String.make 190 'x') 0o644))

let test_mkdir_nested () =
  with_fs (fun _ _ ops ->
      ok "mkdir a" (ops.Fs.mkdir "/a" 0o755);
      ok "mkdir a/b" (ops.Fs.mkdir "/a/b" 0o755);
      ok "mkdir a/b/c" (ops.Fs.mkdir "/a/b/c" 0o755);
      ignore (ok "create deep" (ops.Fs.create "/a/b/c/file" 0o644));
      let st = ok "stat dir" (ops.Fs.stat "/a/b") in
      Alcotest.(check bool) "is dir" true (st.st_ftype = Dir);
      err "file in file" ENOTDIR (ops.Fs.create "/a/b/c/file/x" 0o644))

let test_readdir () =
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      List.iter (fun n -> ignore (ok n (ops.Fs.create ("/d/" ^ n) 0o644))) [ "x"; "y"; "z" ];
      ok "subdir" (ops.Fs.mkdir "/d/sub" 0o755);
      let entries = ok "readdir" (ops.Fs.readdir "/d") in
      let names = List.sort compare (List.map (fun e -> e.d_name) entries) in
      Alcotest.(check (list string)) "names" [ "sub"; "x"; "y"; "z" ] names;
      let sub = List.find (fun e -> e.d_name = "sub") entries in
      Alcotest.(check bool) "sub is dir" true (sub.d_ftype = Dir))

let test_unlink () =
  with_fs (fun _ _ ops ->
      ignore (ok "create" (ops.Fs.create "/gone" 0o644));
      ok "unlink" (ops.Fs.unlink "/gone");
      err "stat after unlink" ENOENT (ops.Fs.stat "/gone");
      err "unlink again" ENOENT (ops.Fs.unlink "/gone");
      (* the name can be reused *)
      ignore (ok "recreate" (ops.Fs.create "/gone" 0o644)))

let test_unlink_dir_fails () =
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      err "unlink dir" EISDIR (ops.Fs.unlink "/d"))

let test_rmdir () =
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      ignore (ok "file" (ops.Fs.create "/d/f" 0o644));
      err "non-empty" ENOTEMPTY (ops.Fs.rmdir "/d");
      ok "unlink" (ops.Fs.unlink "/d/f");
      ok "rmdir" (ops.Fs.rmdir "/d");
      err "gone" ENOENT (ops.Fs.stat "/d");
      err "rmdir file" ENOTDIR (let* _ = ops.Fs.create "/f" 0o644 in ops.Fs.rmdir "/f"))

let test_many_files_in_dir () =
  (* exceeds one dentry page (16 slots) and one index page chain link *)
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/big" 0o755);
      let n = 200 in
      for i = 1 to n do
        ignore (ok "create" (ops.Fs.create (Printf.sprintf "/big/f%03d" i) 0o644))
      done;
      let entries = ok "readdir" (ops.Fs.readdir "/big") in
      Alcotest.(check int) "all entries" n (List.length entries);
      (* delete every other file, then recreate — slot reuse *)
      for i = 1 to n do
        if i mod 2 = 0 then ok "unlink" (ops.Fs.unlink (Printf.sprintf "/big/f%03d" i))
      done;
      Alcotest.(check int) "half left" (n / 2) (List.length (ok "readdir" (ops.Fs.readdir "/big")));
      for i = 1 to n do
        if i mod 2 = 0 then ignore (ok "recreate" (ops.Fs.create (Printf.sprintf "/big/f%03d" i) 0o644))
      done;
      Alcotest.(check int) "full again" n (List.length (ok "readdir" (ops.Fs.readdir "/big"))))

(* ------------------------------------------------------------------ *)
(* Data path *)

let test_write_read_roundtrip () =
  with_fs (fun _ _ ops ->
      ok "write" (Fs.write_file ops "/data" "The quick brown fox");
      Alcotest.(check string) "read" "The quick brown fox" (ok "read" (Fs.read_file ops "/data")))

let test_pwrite_pread_offsets () =
  with_fs (fun _ _ ops ->
      let fd = ok "create" (ops.Fs.create "/f" 0o644) in
      ignore (ok "append" (ops.Fs.append fd (Bytes.make 100 'a')));
      ignore (ok "pwrite" (ops.Fs.pwrite fd (Bytes.make 10 'b') 50));
      let buf = Bytes.create 100 in
      let n = ok "pread" (ops.Fs.pread fd buf 0) in
      Alcotest.(check int) "read all" 100 n;
      Alcotest.(check string) "patched"
        (String.make 50 'a' ^ String.make 10 'b' ^ String.make 40 'a')
        (Bytes.to_string buf))

let test_read_past_eof () =
  with_fs (fun _ _ ops ->
      let fd = ok "create" (ops.Fs.create "/f" 0o644) in
      ignore (ok "append" (ops.Fs.append fd (Bytes.make 10 'x')));
      let buf = Bytes.create 20 in
      Alcotest.(check int) "partial read" 10 (ok "pread" (ops.Fs.pread fd buf 0));
      Alcotest.(check int) "read at eof" 0 (ok "pread" (ops.Fs.pread fd buf 10));
      Alcotest.(check int) "read past eof" 0 (ok "pread" (ops.Fs.pread fd buf 100)))

let test_multi_page_file () =
  with_fs (fun _ _ ops ->
      let size = 3 * 4096 in
      let data = Bytes.init size (fun i -> Char.chr (i * 7 mod 256)) in
      let fd = ok "create" (ops.Fs.create "/big" 0o644) in
      ignore (ok "append" (ops.Fs.append fd data));
      let st = ok "stat" (ops.Fs.stat "/big") in
      Alcotest.(check int) "size" size st.st_size;
      let buf = Bytes.create size in
      ignore (ok "pread" (ops.Fs.pread fd buf 0));
      Alcotest.(check bool) "content" true (Bytes.equal data buf);
      (* unaligned read across page boundaries *)
      let buf2 = Bytes.create 5000 in
      ignore (ok "unaligned" (ops.Fs.pread fd buf2 3000));
      Alcotest.(check bool) "slice" true (Bytes.equal (Bytes.sub data 3000 5000) buf2))

let test_sparse_write_extends () =
  with_fs (fun _ _ ops ->
      let fd = ok "create" (ops.Fs.create "/f" 0o644) in
      (* write at offset 8192 with nothing before: pages 0-1 are zero *)
      ignore (ok "pwrite" (ops.Fs.pwrite fd (Bytes.of_string "tail") 8192));
      let st = ok "stat" (ops.Fs.stat "/f") in
      Alcotest.(check int) "size" 8196 st.st_size;
      let buf = Bytes.create 8196 in
      ignore (ok "pread" (ops.Fs.pread fd buf 0));
      Alcotest.(check string) "zero prefix" (String.make 100 '\000')
        (Bytes.sub_string buf 0 100);
      Alcotest.(check string) "tail" "tail" (Bytes.sub_string buf 8192 4))

let test_truncate_shrink () =
  with_fs (fun _ _ ops ->
      let fd = ok "create" (ops.Fs.create "/f" 0o644) in
      ignore (ok "append" (ops.Fs.append fd (Bytes.make 10000 'z')));
      ok "truncate" (ops.Fs.truncate "/f" 100);
      let st = ok "stat" (ops.Fs.stat "/f") in
      Alcotest.(check int) "shrunk" 100 st.st_size;
      let buf = Bytes.create 200 in
      Alcotest.(check int) "read after shrink" 100 (ok "pread" (ops.Fs.pread fd buf 0));
      (* grow it back: the new range is zero *)
      ok "grow" (ops.Fs.truncate "/f" 5000);
      let buf2 = Bytes.create 5000 in
      ignore (ok "pread2" (ops.Fs.pread fd buf2 0));
      Alcotest.(check char) "old data kept" 'z' (Bytes.get buf2 0);
      Alcotest.(check char) "zero fill" '\000' (Bytes.get buf2 4000))

let test_o_trunc () =
  with_fs (fun _ _ ops ->
      ok "write" (Fs.write_file ops "/f" "content");
      let fd = ok "open trunc" (ops.Fs.open_ "/f" [ O_RDWR; O_TRUNC ]) in
      ok "close" (ops.Fs.close fd);
      let st = ok "stat" (ops.Fs.stat "/f") in
      Alcotest.(check int) "truncated" 0 st.st_size)

let test_bad_fd () =
  with_fs (fun _ _ ops ->
      err "pread" EBADF (ops.Fs.pread 424242 (Bytes.create 1) 0);
      err "close" EBADF (ops.Fs.close 424242))

(* ------------------------------------------------------------------ *)
(* Rename *)

let test_rename_same_dir () =
  with_fs (fun _ _ ops ->
      ok "write" (Fs.write_file ops "/old" "payload");
      ok "rename" (ops.Fs.rename "/old" "/new");
      err "old gone" ENOENT (ops.Fs.stat "/old");
      Alcotest.(check string) "content follows" "payload" (ok "read" (Fs.read_file ops "/new")))

let test_rename_cross_dir () =
  with_fs (fun _ _ ops ->
      ok "mkdir a" (ops.Fs.mkdir "/a" 0o755);
      ok "mkdir b" (ops.Fs.mkdir "/b" 0o755);
      ok "write" (Fs.write_file ops "/a/f" "moved");
      ok "rename" (ops.Fs.rename "/a/f" "/b/g");
      err "src gone" ENOENT (ops.Fs.stat "/a/f");
      Alcotest.(check string) "dst content" "moved" (ok "read" (Fs.read_file ops "/b/g"));
      Alcotest.(check int) "a empty" 0 (List.length (ok "readdir" (ops.Fs.readdir "/a")));
      Alcotest.(check int) "b has one" 1 (List.length (ok "readdir" (ops.Fs.readdir "/b"))))

let test_rename_replaces_destination () =
  with_fs (fun _ _ ops ->
      ok "write src" (Fs.write_file ops "/src" "SRC");
      ok "write dst" (Fs.write_file ops "/dst" "DST");
      ok "rename" (ops.Fs.rename "/src" "/dst");
      Alcotest.(check string) "replaced" "SRC" (ok "read" (Fs.read_file ops "/dst"));
      err "src gone" ENOENT (ops.Fs.stat "/src"))

let test_rename_directory () =
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/olddir" 0o755);
      ok "write" (Fs.write_file ops "/olddir/f" "inside");
      ok "rename" (ops.Fs.rename "/olddir" "/newdir");
      Alcotest.(check string) "reachable through new path" "inside"
        (ok "read" (Fs.read_file ops "/newdir/f")))

let test_rename_missing_src () =
  with_fs (fun _ _ ops -> err "missing" ENOENT (ops.Fs.rename "/nope" "/x"))

(* ------------------------------------------------------------------ *)
(* Concurrency within one LibFS *)

let test_concurrent_creates_in_dir () =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      Sched.delay 1.0;
      let created = ref 0 in
      let nthreads = 8 and per_thread = 25 in
      for th = 0 to nthreads - 1 do
        Sched.spawn ~cpu:th env.Helpers.sched (fun () ->
            for i = 0 to per_thread - 1 do
              match ops.Fs.create (Printf.sprintf "/t%d_f%d" th i) 0o644 with
              | Ok fd ->
                incr created;
                ignore (ops.Fs.close fd)
              | Error e -> Alcotest.failf "create: %s" (errno_to_string e)
            done)
      done;
      (* let the spawned fibers run *)
      Sched.park (fun waker -> Sched.schedule env.Helpers.sched 1.0e12 waker);
      Alcotest.(check int) "all created" (nthreads * per_thread) !created;
      let entries = ok "readdir" (ops.Fs.readdir "/") in
      Alcotest.(check int) "directory consistent" (nthreads * per_thread) (List.length entries))

let test_concurrent_disjoint_writes () =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      let fd = ok "create" (ops.Fs.create "/shared" 0o644) in
      ignore (ok "prealloc" (ops.Fs.append fd (Bytes.make (8 * 4096) '\000')));
      let done_count = ref 0 in
      for th = 0 to 7 do
        Sched.spawn ~cpu:th env.Helpers.sched (fun () ->
            let data = Bytes.make 4096 (Char.chr (Char.code 'A' + th)) in
            (match ops.Fs.pwrite fd data (th * 4096) with
            | Ok _ -> incr done_count
            | Error e -> Alcotest.failf "pwrite: %s" (errno_to_string e)))
      done;
      Sched.park (fun waker -> Sched.schedule env.Helpers.sched 1.0e12 waker);
      Alcotest.(check int) "all wrote" 8 !done_count;
      let buf = Bytes.create (8 * 4096) in
      ignore (ok "pread" (ops.Fs.pread fd buf 0));
      for th = 0 to 7 do
        Alcotest.(check char)
          (Printf.sprintf "region %d" th)
          (Char.chr (Char.code 'A' + th))
          (Bytes.get buf (th * 4096))
      done)

(* ------------------------------------------------------------------ *)
(* Delegation *)

let test_delegation_equivalent_results () =
  (* The same large write/read must produce identical bytes with and
     without the delegation engine. *)
  let run_with_delegation use_dlg =
    Helpers.run_sim ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 (fun env ->
        let delegation =
          if use_dlg then
            Some
              (Arckfs.Delegation.create ~sched:env.Helpers.sched ~pmem:env.Helpers.pmem
                 ~threads_per_node:2 ())
          else None
        in
        let fs = Helpers.mount ~proc:1 ?delegation env in
        let ops = Libfs.ops fs in
        let size = 256 * 1024 in
        let data = Bytes.init size (fun i -> Char.chr (i * 13 mod 256)) in
        let fd = ok "create" (ops.Fs.create "/blob" 0o644) in
        ignore (ok "append" (ops.Fs.append fd data));
        let buf = Bytes.create size in
        ignore (ok "pread" (ops.Fs.pread fd buf 0));
        (match delegation with Some d -> Arckfs.Delegation.shutdown d | None -> ());
        (Bytes.equal data buf, Option.map Arckfs.Delegation.request_count delegation))
  in
  let ok_direct, _ = run_with_delegation false in
  let ok_dlg, reqs = run_with_delegation true in
  Alcotest.(check bool) "direct path intact" true ok_direct;
  Alcotest.(check bool) "delegated path intact" true ok_dlg;
  match reqs with
  | Some n when n > 0 -> ()
  | _ -> Alcotest.fail "delegation engine was not used"

(* ------------------------------------------------------------------ *)
(* Crash consistency *)

let test_crash_after_create_consistent () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      ignore (ok "before" (ops.Fs.create "/durable" 0o644));
      (* crash with everything persisted *)
      Pmem.crash pm;
      Trio_core.Controller.crash_recover env.Helpers.ctl;
      (* a fresh LibFS (fresh aux state) must see the created file *)
      let fs2 = Helpers.mount ~proc:2 ~uid:1000 env in
      let ops2 = Libfs.ops fs2 in
      ignore (ok "after crash" (ops2.Fs.stat "/durable")))

let test_crash_mid_rename_rolls_back () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      ok "write" (Fs.write_file ops "/orig" "payload");
      ok "rename" (ops.Fs.rename "/orig" "/renamed");
      (* now crash; rename was journaled and committed, so it survives *)
      Pmem.crash pm;
      Trio_core.Controller.crash_recover env.Helpers.ctl;
      let fs2 = Helpers.mount ~proc:2 ~uid:1000 env in
      let ops2 = Libfs.ops fs2 in
      Alcotest.(check string) "renamed file intact" "payload"
        (ok "read" (Fs.read_file ops2 "/renamed"));
      err "old name gone" ENOENT (ops2.Fs.stat "/orig"))

let test_crash_size_field_repaired () =
  (* Force a stale directory size: the dentry persists but the size
     update is lost in the crash; LibFS recovery must recount. *)
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let fs = Helpers.mount ~proc:1 env in
      let ops = Libfs.ops fs in
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      ignore (ok "create" (ops.Fs.create "/d/f" 0o644));
      (* manually stale-ify the size field without persisting *)
      let st = ok "stat" (ops.Fs.stat "/d") in
      ignore st;
      Pmem.crash pm;
      Trio_core.Controller.crash_recover env.Helpers.ctl;
      let fs2 = Helpers.mount ~proc:2 ~uid:1000 env in
      let ops2 = Libfs.ops fs2 in
      let entries = ok "readdir" (ops2.Fs.readdir "/d") in
      let st2 = ok "stat" (ops2.Fs.stat "/d") in
      Alcotest.(check int) "size matches entries" (List.length entries) st2.st_size)

(* ------------------------------------------------------------------ *)

(* The shared conformance suite (including errno parity and VFS counter
   checks) over a fresh ArckFS per check. *)
let arckfs_conformance =
  ( "conformance",
    Conformance.suite ~make_fs:(fun check ->
        Helpers.run_sim (fun env ->
            let fs = Helpers.mount ~proc:1 env in
            check (Trio_core.Vfs.wrap ~sched:env.Helpers.sched (Libfs.ops fs));
            Libfs.unmap_everything fs;
            Conformance.accounting env.Helpers.ctl)) )

let () =
  Alcotest.run "arckfs"
    [
      arckfs_conformance;
      ( "namespace",
        [
          Alcotest.test_case "create and stat" `Quick test_create_and_stat;
          Alcotest.test_case "duplicate create" `Quick test_create_duplicate_fails;
          Alcotest.test_case "open missing" `Quick test_open_missing_fails;
          Alcotest.test_case "O_CREAT" `Quick test_open_o_creat;
          Alcotest.test_case "invalid paths" `Quick test_invalid_paths;
          Alcotest.test_case "nested mkdir" `Quick test_mkdir_nested;
          Alcotest.test_case "readdir" `Quick test_readdir;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "unlink dir" `Quick test_unlink_dir_fails;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "many files (page growth)" `Quick test_many_files_in_dir;
        ] );
      ( "data",
        [
          Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "pwrite/pread offsets" `Quick test_pwrite_pread_offsets;
          Alcotest.test_case "read past eof" `Quick test_read_past_eof;
          Alcotest.test_case "multi-page file" `Quick test_multi_page_file;
          Alcotest.test_case "sparse extend" `Quick test_sparse_write_extends;
          Alcotest.test_case "truncate" `Quick test_truncate_shrink;
          Alcotest.test_case "O_TRUNC" `Quick test_o_trunc;
          Alcotest.test_case "bad fd" `Quick test_bad_fd;
        ] );
      ( "rename",
        [
          Alcotest.test_case "same dir" `Quick test_rename_same_dir;
          Alcotest.test_case "cross dir" `Quick test_rename_cross_dir;
          Alcotest.test_case "replaces destination" `Quick test_rename_replaces_destination;
          Alcotest.test_case "directory" `Quick test_rename_directory;
          Alcotest.test_case "missing src" `Quick test_rename_missing_src;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent creates" `Quick test_concurrent_creates_in_dir;
          Alcotest.test_case "disjoint writes" `Quick test_concurrent_disjoint_writes;
        ] );
      ( "delegation",
        [ Alcotest.test_case "results equivalent" `Quick test_delegation_equivalent_results ] );
      ( "crash",
        [
          Alcotest.test_case "create durable" `Quick test_crash_after_create_consistent;
          Alcotest.test_case "rename journaled" `Quick test_crash_mid_rename_rolls_back;
          Alcotest.test_case "dir size repaired" `Quick test_crash_size_field_repaired;
        ] );
    ]
