(* Tests for the B-link ordered directory index (DESIGN.md §4.18):
   the raw tree operations at scale, duplicate-hash collisions, split
   boundaries, the LibFS integration (rename across indexed
   directories, readdir ordering), and the kill-point / mutation
   exploration campaigns. *)

module Pmem = Trio_nvm.Pmem
module Dirindex = Trio_core.Dirindex
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
module Controller = Trio_core.Controller
module Explore = Trio_check.Explore
open Trio_core.Fs_types

let ok = Helpers.check_ok
let err = Helpers.check_err
let deep = Sys.getenv_opt "DIRCHECK_DEEP" = Some "1"

(* Unwrap the tree's two error shapes. *)
let tok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let iok what = function
  | Ok v -> v
  | Error `Nospace -> Alcotest.failf "%s: out of space" what
  | Error (`Damaged e) -> Alcotest.failf "%s: damaged: %s" what e

(* ------------------------------------------------------------------ *)
(* Raw tree harness: a page pool over the top half of the device.  The
   controller's extent allocators never reach up there during these
   tests, so the raw tree can own those pages without a fight. *)

let with_tree f =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let total = Pmem.total_pages pm in
      let next = ref (total / 2) in
      let freed = ref [] in
      let alloc () =
        match !freed with
        | pg :: rest ->
          freed := rest;
          Some pg
        | [] ->
          if !next >= total then None
          else begin
            let pg = !next in
            incr next;
            Some pg
          end
      in
      let free pg = freed := pg :: !freed in
      f pm alloc free)

let audit_clean what pm root =
  let au = Dirindex.audit pm ~actor:Pmem.kernel_actor ~root in
  if au.Dirindex.au_violations <> [] then
    Alcotest.failf "%s: audit violations: %s" what
      (String.concat "; " au.Dirindex.au_violations);
  au

(* ------------------------------------------------------------------ *)
(* Scale: insert / lookup / delete through thousands of entries with a
   scrambled key order, production fanout. *)

let test_scale () =
  with_tree (fun pm alloc free ->
      let actor = Pmem.kernel_actor in
      let n = if deep then 100_000 else 2_000 in
      (* multiplicative scramble so inserts arrive in shuffled key
         order; masked so duplicate hashes appear too *)
      let hash i = i * 2654435761 land 0xFFFFF in
      let root = ref 0 in
      for i = 0 to n - 1 do
        let r, _fresh =
          iok "insert"
            (Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:(hash i) ~addr:i)
        in
        root := r
      done;
      let au = audit_clean "after inserts" pm !root in
      Alcotest.(check int) "entry count" n (List.length au.Dirindex.au_entries);
      (* every key resolvable; sample when deep to keep the suite honest
         about wall clock *)
      let step = if deep then 97 else 1 in
      let i = ref 0 in
      while !i < n do
        let addrs =
          tok "lookup" (Dirindex.lookup pm ~actor ~root:!root ~hash:(hash !i))
        in
        if not (List.mem !i addrs) then Alcotest.failf "entry %d not found" !i;
        i := !i + step
      done;
      (* delete the even half, then verify the odd half survives *)
      let i = ref 0 in
      while !i < n do
        tok "delete" (Dirindex.delete pm ~actor ~root:!root ~hash:(hash !i) ~addr:!i);
        i := !i + 2
      done;
      let au = audit_clean "after deletes" pm !root in
      Alcotest.(check int) "half left" (n / 2) (List.length au.Dirindex.au_entries);
      let addrs = tok "lookup even" (Dirindex.lookup pm ~actor ~root:!root ~hash:(hash 0)) in
      Alcotest.(check bool) "deleted gone" false (List.mem 0 addrs);
      let addrs = tok "lookup odd" (Dirindex.lookup pm ~actor ~root:!root ~hash:(hash 1)) in
      Alcotest.(check bool) "survivor found" true (List.mem 1 addrs);
      (* drain the rest: an empty tree is legal and still audits *)
      let i = ref 1 in
      while !i < n do
        tok "delete rest" (Dirindex.delete pm ~actor ~root:!root ~hash:(hash !i) ~addr:!i);
        i := !i + 2
      done;
      let au = audit_clean "empty" pm !root in
      Alcotest.(check int) "empty" 0 (List.length au.Dirindex.au_entries))

(* Duplicate hashes: many names can share one hash bucket; the
   composite (hash, addr) key keeps them distinct, lookup returns the
   whole bucket, delete removes exactly one. *)
let test_duplicate_hashes () =
  with_tree (fun pm alloc free ->
      let actor = Pmem.kernel_actor in
      Dirindex.set_test_capacity (Some 4);
      Fun.protect
        ~finally:(fun () -> Dirindex.set_test_capacity None)
        (fun () ->
          let root = ref 0 in
          (* 50 entries, all hash 42: the bucket spans many leaves *)
          for a = 0 to 49 do
            let r, _ =
              iok "insert dup"
                (Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:42 ~addr:a)
            in
            root := r
          done;
          ignore
            (iok "insert other"
               (Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:7 ~addr:1000)
             : int * int list);
          let bucket = tok "lookup bucket" (Dirindex.lookup pm ~actor ~root:!root ~hash:42) in
          Alcotest.(check int) "whole bucket" 50 (List.length bucket);
          tok "delete one" (Dirindex.delete pm ~actor ~root:!root ~hash:42 ~addr:17);
          let bucket = tok "re-lookup" (Dirindex.lookup pm ~actor ~root:!root ~hash:42) in
          Alcotest.(check int) "one fewer" 49 (List.length bucket);
          Alcotest.(check bool) "victim gone" false (List.mem 17 bucket);
          Alcotest.(check bool) "neighbors live" true (List.mem 16 bucket && List.mem 18 bucket);
          ignore (audit_clean "collisions" pm !root : Dirindex.audit)))

(* Boundaries: the empty tree (root = 0) and the first split. *)
let test_boundaries () =
  with_tree (fun pm alloc free ->
      let actor = Pmem.kernel_actor in
      Dirindex.set_test_capacity (Some 4);
      Fun.protect
        ~finally:(fun () -> Dirindex.set_test_capacity None)
        (fun () ->
          (* root = 0 is the legal unindexed state: lookups miss,
             deletes and folds no-op *)
          Alcotest.(check (list int))
            "empty lookup" []
            (tok "lookup root=0" (Dirindex.lookup pm ~actor ~root:0 ~hash:5));
          tok "delete root=0" (Dirindex.delete pm ~actor ~root:0 ~hash:5 ~addr:5);
          let r0, pages = iok "build empty" (Dirindex.build pm ~actor ~alloc ~free ~entries:[]) in
          Alcotest.(check int) "empty build is unindexed" 0 r0;
          Alcotest.(check (list int)) "no pages" [] pages;
          (* fill exactly one node, then push it over: the first insert
             past capacity must split and grow a root *)
          let root = ref 0 in
          for a = 0 to 3 do
            let r, _ =
              iok "fill" (Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:a ~addr:a)
            in
            root := r
          done;
          let one = Dirindex.pages pm ~actor ~root:!root in
          Alcotest.(check int) "single node before split" 1 (List.length one);
          let r, fresh =
            iok "overflow" (Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:4 ~addr:4)
          in
          Alcotest.(check bool) "root swung" true (r <> !root);
          Alcotest.(check bool) "split minted pages" true (List.length fresh >= 2);
          root := r;
          let after = Dirindex.pages pm ~actor ~root:!root in
          Alcotest.(check bool) "tree grew" true (List.length after >= 3);
          let au = audit_clean "post split" pm !root in
          Alcotest.(check int) "all five" 5 (List.length au.Dirindex.au_entries);
          for a = 0 to 4 do
            let addrs = tok "find" (Dirindex.lookup pm ~actor ~root:!root ~hash:a) in
            if not (List.mem a addrs) then Alcotest.failf "key %d lost across split" a
          done))

(* ------------------------------------------------------------------ *)
(* LibFS integration *)

let with_fs f =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 env in
      f env fs (Libfs.ops fs))

(* Rename between two indexed directories: the entry must leave the
   source tree and land in the destination tree, and the handoff must
   certify (no I5 divergence). *)
let test_rename_across_indexed_dirs () =
  Dirindex.set_test_capacity (Some 4);
  Fun.protect
    ~finally:(fun () -> Dirindex.set_test_capacity None)
    (fun () ->
      with_fs (fun env fs ops ->
          ok "mkdir a" (ops.Fs.mkdir "/a" 0o755);
          ok "mkdir b" (ops.Fs.mkdir "/b" 0o755);
          (* enough entries that both directories hold split trees *)
          for i = 0 to 9 do
            ignore (ok "create a" (ops.Fs.create (Printf.sprintf "/a/f%d" i) 0o644) : int)
          done;
          for i = 0 to 5 do
            ignore (ok "create b" (ops.Fs.create (Printf.sprintf "/b/g%d" i) 0o644) : int)
          done;
          ok "rename" (ops.Fs.rename "/a/f3" "/b/moved");
          err "gone from a" ENOENT (ops.Fs.stat "/a/f3");
          ignore (ok "landed in b" (ops.Fs.stat "/b/moved") : stat);
          Alcotest.(check int) "a count" 9 (List.length (ok "readdir a" (ops.Fs.readdir "/a")));
          Alcotest.(check int) "b count" 7 (List.length (ok "readdir b" (ops.Fs.readdir "/b")));
          (* rename onto an existing indexed entry replaces it *)
          ok "rename replace" (ops.Fs.rename "/a/f4" "/b/g0");
          Alcotest.(check int) "a count" 8 (List.length (ok "readdir a" (ops.Fs.readdir "/a")));
          Alcotest.(check int) "b count" 7 (List.length (ok "readdir b" (ops.Fs.readdir "/b")));
          Libfs.unmap_everything fs;
          (match Controller.corruption_events env.Helpers.ctl with
          | [] -> ()
          | evs -> Alcotest.failf "verifier flagged %d event(s)" (List.length evs));
          let _checked, bad = Controller.audit_all env.Helpers.ctl in
          Alcotest.(check int) "full sweep clean" 0 bad))

(* The readdir contract: entries stream in ascending (name-hash, name)
   order — the index's native order — and repeated scans agree. *)
let test_readdir_order () =
  with_fs (fun _ _ ops ->
      ok "mkdir" (ops.Fs.mkdir "/d" 0o755);
      for i = 0 to 40 do
        ignore (ok "create" (ops.Fs.create (Printf.sprintf "/d/n%02d" i) 0o644) : int)
      done;
      let names entries = List.map (fun e -> e.d_name) entries in
      let first = names (ok "readdir" (ops.Fs.readdir "/d")) in
      let second = names (ok "readdir again" (ops.Fs.readdir "/d")) in
      Alcotest.(check (list string)) "stable across scans" first second;
      let keyed = List.map (fun n -> (Dirindex.hash_name n, n)) first in
      let sorted = List.sort compare keyed in
      Alcotest.(check bool) "ascending (hash, name)" true (keyed = sorted);
      Alcotest.(check int) "complete" 41 (List.length first))

(* ------------------------------------------------------------------ *)
(* Exploration campaigns *)

(* SIGKILL at sampled points inside index mutations: every recovered
   state must certify under a Full sweep (I5 included), and at least
   one sampled state must have split a node (else the campaign never
   entered the interesting windows). *)
let test_explore_kills () =
  let config =
    if deep then Explore.default_dir_config
    else { Explore.default_dir_config with Explore.dx_kill_points = 8; dx_entries = 12 }
  in
  let r = Explore.explore_dir_index ~config () in
  (match r.Explore.dx_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "%a" Explore.pp_counterexample cx);
  Alcotest.(check bool) "sampled states" true (r.Explore.dx_states > 0);
  Alcotest.(check int)
    "every state certified" r.Explore.dx_states
    (r.Explore.dx_indexed + r.Explore.dx_unindexed);
  Alcotest.(check bool) "splits reached" true (r.Explore.dx_splits > 0)

(* The detection self-test: a LibFS that silently skips index
   maintenance must be caught by I5 at the sharing point (and the
   honest prefix must not be flagged — that check lives inside). *)
let test_mutation_caught () =
  Alcotest.(check bool) "skip-index-update caught" true (Explore.dir_index_mutation_caught ())

let () =
  Alcotest.run "dirindex"
    [
      ( "tree",
        [
          Alcotest.test_case "insert/lookup/delete at scale" `Quick test_scale;
          Alcotest.test_case "duplicate hashes" `Quick test_duplicate_hashes;
          Alcotest.test_case "empty tree and first split" `Quick test_boundaries;
        ] );
      ( "libfs",
        [
          Alcotest.test_case "rename across indexed dirs" `Quick test_rename_across_indexed_dirs;
          Alcotest.test_case "readdir order" `Quick test_readdir_order;
        ] );
      ( "explore",
        [
          Alcotest.test_case "kill points certify" `Quick test_explore_kills;
          Alcotest.test_case "mutation caught" `Quick test_mutation_caught;
        ] );
    ]
