(* Conformance + behaviour tests for the baseline file system models.

   Every baseline must pass the exact same POSIX conformance suite as
   ArckFS (the comparisons in the benchmarks are only meaningful if the
   systems do the same work), plus a few model-specific sanity checks
   (kernel traps cost more, journals serialize, delegation engages). *)

module Rig = Trio_workloads.Rig
module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs

let baseline_names =
  [ "ext4"; "ext4-raid0"; "pmfs"; "nova"; "winefs"; "odinfs"; "splitfs"; "strata" ]

let with_fs name check =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:16384 ~store_data:true (fun rig ->
      check (Rig.mount_fs rig name);
      (* every fs, trio-family or baseline, must leave balanced books *)
      Rig.unmount_all rig;
      Conformance.accounting rig.Rig.ctl)

(* ------------------------------------------------------------------ *)
(* Model-behaviour checks *)

(* Userspace data path: SplitFS 4K reads must be cheaper than ext4's
   (same data cost, no kernel trap). *)
let test_splitfs_beats_ext4_on_data () =
  let cost name =
    Rig.run ~nodes:1 ~cpus_per_node:4 ~store_data:false (fun rig ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig name) in
        let fd = Conformance.ok "create" (fs.Fs.create "/f" 0o644) in
        Conformance.ok "truncate" (fs.Fs.truncate "/f" (1 lsl 20));
        let buf = Bytes.create 4096 in
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:100 (fun () ->
            ignore (Conformance.ok "pread" (fs.Fs.pread fd buf 0))))
  in
  let ext4 = cost "ext4" and splitfs = cost "splitfs" in
  if splitfs >= ext4 then
    Alcotest.failf "splitfs 4K read (%.0fns) should beat ext4 (%.0fns)" splitfs ext4

(* NOVA metadata must beat ext4 (log append vs journal transaction). *)
let test_nova_creates_faster_than_ext4 () =
  let cost name =
    Rig.run ~nodes:1 ~cpus_per_node:4 (fun rig ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig name) in
        let i = ref 0 in
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:100 (fun () ->
            incr i;
            ignore (Conformance.ok "create" (fs.Fs.create (Printf.sprintf "/f%d" !i) 0o644))))
  in
  let ext4 = cost "ext4" and nova = cost "nova" in
  if nova >= ext4 then
    Alcotest.failf "nova create (%.0fns) should beat ext4 (%.0fns)" nova ext4

(* ext4 fsync (journal commit) must dwarf NOVA's. *)
let test_fsync_costs () =
  let cost name =
    Rig.run ~nodes:1 ~cpus_per_node:4 (fun rig ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig name) in
        let fd = Conformance.ok "create" (fs.Fs.create "/f" 0o644) in
        ignore (Conformance.ok "append" (fs.Fs.append fd (Bytes.make 128 'x')));
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:50 (fun () ->
            Conformance.ok "fsync" (fs.Fs.fsync fd)))
  in
  let ext4 = cost "ext4" and nova = cost "nova" in
  if ext4 < 3.0 *. nova then
    Alcotest.failf "ext4 fsync (%.0fns) should dwarf nova (%.0fns)" ext4 nova

(* The global rename lock must serialize concurrent renames: 8 threads
   take ~8x the virtual time of sequential per-op latency. *)
let test_rename_lock_serializes () =
  (* the global rename lock means 8 threads get no more throughput than
     one — private-rename scalability is flat for kernel FSes (MWRL) *)
  let throughput threads =
    Rig.run ~nodes:1 ~cpus_per_node:8 (fun rig ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig "nova") in
        for tid = 0 to threads - 1 do
          Conformance.ok "mkdir" (fs.Fs.mkdir (Printf.sprintf "/d%d" tid) 0o755);
          ignore (Conformance.ok "create" (fs.Fs.create (Printf.sprintf "/d%d/a" tid) 0o644))
        done;
        let flips = Array.make threads false in
        let result =
          Trio_workloads.Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads
            ~max_ops:800 ~max_ns:1.0e9
            ~body:(fun ~tid ->
              let d = Printf.sprintf "/d%d" tid in
              let src, dst = if flips.(tid) then (d ^ "/b", d ^ "/a") else (d ^ "/a", d ^ "/b") in
              flips.(tid) <- not flips.(tid);
              Conformance.ok "rename" (fs.Fs.rename src dst);
              0)
            ()
        in
        result.Trio_workloads.Runner.ops_per_us)
  in
  let one = throughput 1 and eight = throughput 8 in
  if eight > one *. 1.8 then
    Alcotest.failf "rename scaled under a global lock: 1thr=%.2f 8thr=%.2f ops/us" one eight

(* OdinFS large writes must engage the shared delegation engine. *)
let test_odinfs_uses_delegation () =
  Rig.run ~nodes:2 ~cpus_per_node:4 (fun rig ->
      let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig "odinfs") in
      let fd = Conformance.ok "create" (fs.Fs.create "/f" 0o644) in
      ignore (Conformance.ok "append" (fs.Fs.append fd (Bytes.make (1 lsl 21) 'x')));
      let dlg = Lazy.force rig.Rig.delegation in
      if Arckfs.Delegation.request_count dlg = 0 then
        Alcotest.fail "odinfs did not delegate a 2MiB write")

(* ext4-RAID0 must beat plain ext4 on large sequential reads (striping
   across NVM nodes). *)
let test_raid0_stripes () =
  let cost name =
    Rig.run ~nodes:4 ~cpus_per_node:4 ~store_data:false (fun rig ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig name) in
        let fd = Conformance.ok "create" (fs.Fs.create "/f" 0o644) in
        Conformance.ok "truncate" (fs.Fs.truncate "/f" (1 lsl 23));
        let buf = Bytes.create (1 lsl 22) in
        Trio_workloads.Runner.time_op ~sched:rig.Rig.sched ~iters:10 (fun () ->
            ignore (Conformance.ok "pread" (fs.Fs.pread fd buf 0))))
  in
  ignore (cost "ext4");
  ignore (cost "ext4-raid0")
(* striping helps under concurrency, not single-thread; the check above
   only asserts both paths execute. Concurrent behaviour is asserted in
   the bench shape tests. *)

let () =
  let conformance_suites =
    List.map (fun name -> (name ^ " conformance", Conformance.suite ~make_fs:(with_fs name)))
      baseline_names
  in
  Alcotest.run "baselines"
    (conformance_suites
    @ [
        ( "models",
          [
            Alcotest.test_case "splitfs data beats ext4" `Quick test_splitfs_beats_ext4_on_data;
            Alcotest.test_case "nova create beats ext4" `Quick test_nova_creates_faster_than_ext4;
            Alcotest.test_case "fsync costs" `Quick test_fsync_costs;
            Alcotest.test_case "rename lock serializes" `Quick test_rename_lock_serializes;
            Alcotest.test_case "odinfs delegates" `Quick test_odinfs_uses_delegation;
            Alcotest.test_case "raid0 paths execute" `Quick test_raid0_stripes;
          ] );
      ])
