(* Multi-tenant QoS plane (DESIGN.md §4.17): token-bucket admission
   control, backpressure through the ring and syscall planes, the
   retry-deadline budget, and noisy-neighbour isolation under
   concurrent byzantine + SIGKILL tenants. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Controller = Trio_core.Controller
module Ctl_qos = Trio_core.Ctl_qos
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs
module Rig = Trio_workloads.Rig
module Ycsb = Trio_workloads.Ycsb
module Attacks = Trio_attacks.Attacks
module Explore = Trio_check.Explore
open Trio_core.Fs_types

let cred = { Trio_core.Fs_types.uid = 1000; gid = 1000 }

(* ------------------------------------------------------------------ *)
(* Token bucket (pure unit tests; no simulation needed) *)

let test_bucket_charge_and_refill () =
  let q = Ctl_qos.create () in
  Ctl_qos.set_share q ~group:1 ~now:0.0 1.0;
  let b0 = Ctl_qos.balance q ~group:1 ~now:0.0 in
  Alcotest.(check bool) "bucket starts at burst" true (b0 > 0.0);
  Ctl_qos.charge q ~group:1 ~now:0.0 Ctl_qos.Syscall;
  let b1 = Ctl_qos.balance q ~group:1 ~now:0.0 in
  Alcotest.(check (float 1e-6))
    "a syscall debits its cost"
    (Ctl_qos.cost_of Ctl_qos.Syscall)
    (b0 -. b1);
  (* a long quiet period refills to burst, never beyond *)
  let b2 = Ctl_qos.balance q ~group:1 ~now:1.0e12 in
  Alcotest.(check (float 1e-6)) "refill caps at burst" b0 b2

let test_bucket_admission_deadline () =
  let q = Ctl_qos.create () in
  Ctl_qos.set_share q ~group:1 ~now:0.0 0.5;
  Ctl_qos.set_share q ~group:2 ~now:0.0 0.5;
  (* drain group 1 well past zero *)
  for _ = 1 to 100 do
    Ctl_qos.charge q ~group:1 ~now:0.0 Ctl_qos.Verify
  done;
  Alcotest.(check bool) "balance went negative" true (Ctl_qos.balance q ~group:1 ~now:0.0 < 0.0);
  (match Ctl_qos.admission q ~group:1 ~now:0.0 with
  | None -> Alcotest.fail "overdrawn tenant was admitted"
  | Some deadline ->
    Alcotest.(check bool) "deadline is in the future" true (deadline > 0.0);
    (* by the deadline the deficit has refilled away *)
    Alcotest.(check bool)
      "admitted at the deadline" true
      (Ctl_qos.admission q ~group:1 ~now:deadline = None));
  (* the sibling tenant is unaffected *)
  Alcotest.(check bool) "sibling admitted" true (Ctl_qos.admission q ~group:2 ~now:0.0 = None)

let test_bucket_unconfigured_always_admitted () =
  let q = Ctl_qos.create () in
  for _ = 1 to 1000 do
    Ctl_qos.charge q ~group:5 ~now:0.0 Ctl_qos.Verify
  done;
  Alcotest.(check bool)
    "unconfigured tenant never throttles" true
    (Ctl_qos.admission q ~group:5 ~now:0.0 = None);
  let stats = Ctl_qos.stats q ~now:0.0 in
  let s = List.find (fun s -> s.Ctl_qos.ts_group = 5) stats in
  Alcotest.(check int) "but its usage is accounted" 1000 s.Ctl_qos.ts_verifies;
  Alcotest.(check bool) "and unshared" true (s.Ctl_qos.ts_share = None)

let test_bucket_bypass_mutation_visible () =
  let q = Ctl_qos.create () in
  Ctl_qos.set_share q ~group:1 ~now:0.0 1.0;
  let b0 = Ctl_qos.balance q ~group:1 ~now:0.0 in
  Ctl_qos.bypass := true;
  Fun.protect ~finally:(fun () -> Ctl_qos.bypass := false) @@ fun () ->
  for _ = 1 to 50 do
    Ctl_qos.charge q ~group:1 ~now:0.0 Ctl_qos.Verify
  done;
  Alcotest.(check (float 1e-6)) "bypass debits nothing" b0 (Ctl_qos.balance q ~group:1 ~now:0.0);
  Alcotest.(check bool) "bypass still admits" true (Ctl_qos.admission q ~group:1 ~now:0.0 = None)

(* ------------------------------------------------------------------ *)
(* Backpressure through the planes *)

(* Register a throttled tenant next to a big competing share and drive
   its bucket negative through release-path charges (charged, never
   delayed — so the drain is immediate and deterministic). *)
let drain_tenant_bucket ctl ~proc =
  for _ = 1 to 40 do
    ignore (Controller.free_pages ctl ~proc ~pages:[] : (unit, errno) result)
  done;
  Alcotest.(check bool)
    "bucket is overdrawn" true
    (Controller.qos_balance ctl ~group:proc < 0.0)

let test_ring_nowait_eagain () =
  Helpers.run_sim (fun env ->
      Controller.set_qos_share env.Helpers.ctl ~group:99 50.0;
      Controller.register_process env.Helpers.ctl ~proc:7 ~cred ~qos_share:0.02 ();
      let ring = Controller.ring_setup env.Helpers.ctl ~proc:7 ~depth:4 in
      drain_tenant_bucket env.Helpers.ctl ~proc:7;
      (match Controller.Ring.submit ~nowait:true ring Controller.Ring.Op_lease with
      | Error EAGAIN ->
        let d = Controller.Ring.last_throttle_deadline ring in
        Alcotest.(check bool)
          "EAGAIN carries a future admission deadline" true
          (d > Sched.now env.Helpers.sched)
      | Ok _ -> Alcotest.fail "overdrawn nowait submit was admitted"
      | Error e -> Alcotest.failf "expected EAGAIN, got %s" (errno_to_string e));
      Alcotest.(check int) "nothing was enqueued" 0 (Controller.Ring.depth ring))

let test_ring_submit_parks_until_admitted () =
  Helpers.run_sim (fun env ->
      Controller.set_qos_share env.Helpers.ctl ~group:99 50.0;
      Controller.register_process env.Helpers.ctl ~proc:7 ~cred ~qos_share:0.02 ();
      let ring = Controller.ring_setup env.Helpers.ctl ~proc:7 ~depth:4 in
      drain_tenant_bucket env.Helpers.ctl ~proc:7;
      let t0 = Sched.now env.Helpers.sched in
      (match Controller.Ring.submit ring Controller.Ring.Op_lease with
      | Ok seq -> (
        match Controller.Ring.await ring ~seq with
        | Ok () -> ()
        | Error e -> Alcotest.failf "lease completion: %s" (errno_to_string e))
      | Error e -> Alcotest.failf "blocking submit: %s" (errno_to_string e));
      Alcotest.(check bool)
        "the producer parked at the ring mouth" true
        (Controller.Ring.throttle_parks ring >= 1);
      Alcotest.(check bool)
        "parked time was accounted" true
        (Controller.Ring.throttle_ns ring > 0.0);
      Alcotest.(check bool) "virtual time advanced" true (Sched.now env.Helpers.sched > t0))

let test_throttle_counters_in_stats () =
  Helpers.run_sim (fun env ->
      Controller.set_qos_share env.Helpers.ctl ~group:99 50.0;
      Controller.register_process env.Helpers.ctl ~proc:7 ~cred ~qos_share:0.02 ();
      drain_tenant_bucket env.Helpers.ctl ~proc:7;
      (* an acquisition syscall pays the admission delay *)
      (match Controller.alloc_pages env.Helpers.ctl ~proc:7 ~node:0 ~count:1 ~kind:Pmem.Meta with
      | Ok _ | Error _ -> ());
      let s =
        List.find (fun s -> s.Controller.ts_group = 7) (Controller.qos_stats env.Helpers.ctl)
      in
      Alcotest.(check bool) "throttle events counted" true (s.Controller.ts_throttles >= 1);
      Alcotest.(check bool) "throttled ns accumulated" true (s.Controller.ts_throttle_ns > 0.0);
      Alcotest.(check bool) "page draw accounted" true (s.Controller.ts_page_draws >= 1))

(* Unenforced rigs must behave exactly as before: no parks, no delays. *)
let test_no_enforcement_no_throttle () =
  Helpers.run_sim (fun env ->
      Controller.register_process env.Helpers.ctl ~proc:7 ~cred ();
      let ring = Controller.ring_setup env.Helpers.ctl ~proc:7 ~depth:4 in
      for _ = 1 to 100 do
        ignore (Controller.free_pages env.Helpers.ctl ~proc:7 ~pages:[] : (unit, errno) result)
      done;
      (match Controller.Ring.submit ~nowait:true ring Controller.Ring.Op_lease with
      | Ok seq -> (
        match Controller.Ring.await ring ~seq with
        | Ok () -> ()
        | Error e -> Alcotest.failf "lease completion: %s" (errno_to_string e))
      | Error e -> Alcotest.failf "unenforced submit refused: %s" (errno_to_string e));
      Alcotest.(check int) "no throttle parks" 0 (Controller.Ring.throttle_parks ring))

(* ------------------------------------------------------------------ *)
(* LibFS retry-deadline budget *)

let test_with_retry_etimedout () =
  Helpers.run_sim (fun env ->
      let libfs =
        Libfs.mount ~ctl:env.Helpers.ctl ~proc:1 ~cred ~retry_deadline_ns:500.0 ()
      in
      let ops = Libfs.ops libfs in
      Helpers.check_ok "create" (Fs.write_file ops "/victim" "precious");
      (* every subsequent load soft-faults: the retry loop must give up
         on the deadline budget, not spin through all 8 media retries *)
      Pmem.set_fault_injection env.Helpers.pmem ~seed:7 ~transient_read_p:1.0 ();
      (match Fs.read_file ops "/victim" with
      | Error ETIMEDOUT -> ()
      | Ok _ -> Alcotest.fail "read succeeded under a 100% transient-fault rate"
      | Error e -> Alcotest.failf "expected ETIMEDOUT, got %s" (errno_to_string e));
      (* the terminal errno is counted distinctly *)
      Pmem.set_fault_injection env.Helpers.pmem ~seed:7 ())

let test_with_retry_clean_path_unchanged () =
  Helpers.run_sim (fun env ->
      let libfs = Libfs.mount ~ctl:env.Helpers.ctl ~proc:1 ~cred () in
      let ops = Libfs.ops libfs in
      Helpers.check_ok "create" (Fs.write_file ops "/a" "aaaa");
      Alcotest.(check string)
        "read back" "aaaa"
        (Helpers.check_ok "read" (Fs.read_file ops "/a")))

(* ------------------------------------------------------------------ *)
(* Multi-tenant YCSB: byzantine + SIGKILL tenants vs honest tenants *)

let test_ycsb_isolation_under_chaos () =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:16384 ~store_data:true (fun rig ->
      let neighbor = Attacks.noisy_neighbor ~qos_share:0.02 rig in
      let specs =
        [
          Ycsb.spec ~share:1.0 ~ops:60 "honest-a" Ycsb.A;
          Ycsb.spec ~share:1.0 ~ops:60 "honest-c" Ycsb.C;
          Ycsb.spec ~share:0.1 ~ops:400 ~kill_after:300 "killer" Ycsb.A;
        ]
      in
      let results =
        Ycsb.run rig ~records:48 ~value_size:32 ~chaos:[ Attacks.neighbor_fiber neighbor ] specs
      in
      let find n = List.find (fun r -> r.Ycsb.y_name = n) results in
      let honest_a = find "honest-a" and honest_c = find "honest-c" in
      let killer = find "killer" in
      (* honest tenants finished their full budgets, unkilled *)
      Alcotest.(check int) "honest-a completed" 60 honest_a.Ycsb.y_ops_done;
      Alcotest.(check int) "honest-c completed" 60 honest_c.Ycsb.y_ops_done;
      Alcotest.(check bool) "honest-a alive" false honest_a.Ycsb.y_killed;
      (* the kill-prone tenant actually died mid-run *)
      Alcotest.(check bool) "killer was killed" true killer.Ycsb.y_killed;
      Alcotest.(check bool) "byzantine cycles ran" true (neighbor.Attacks.nb_cycles > 0);
      (* watchdog escalates the dead tenant even under byzantine load.
         The kill can land mid-write, with the victim holding a running
         lease — the watchdog rightly defers while the lease shields the
         writer, so wait out the lease horizon before judging it. *)
      Sched.delay (2.0e6 +. 100.0e6);
      let wd = Controller.make_watchdog_report () in
      let escalated = Controller.watchdog_once ~report:wd rig.Rig.ctl ~timeout_ns:1.0e6 in
      Alcotest.(check bool)
        "watchdog escalated the killed tenant" true
        (List.mem killer.Ycsb.y_group escalated);
      (* page accounting balances once the carnage is reclaimed *)
      ignore (Controller.drain_unverified rig.Rig.ctl : int);
      let gc = Controller.gc_once rig.Rig.ctl in
      Alcotest.(check bool) "page accounting invariant" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaked pages" 0 gc.Controller.gc_leaked;
      (* honest tenants remain serviceable after the reclamation *)
      let probe = Rig.mount_arckfs ~delegated:false rig in
      Helpers.check_ok "post-chaos write" (Fs.write_file (Libfs.ops probe) "/after" "ok"))

(* ------------------------------------------------------------------ *)
(* Exploration: kills inside throttled/parked states *)

let explore_config =
  { Explore.default_qos_config with qd_kill_points = 6; qd_ops = 6 }

let test_explore_qos () =
  let r = Explore.explore_qos ~config:explore_config () in
  (match r.Explore.qr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "explore_qos failed:@.%a" Explore.pp_counterexample cx);
  Alcotest.(check bool) "sampled states" true (r.Explore.qr_states > 0);
  Alcotest.(check bool) "victim was throttled" true (r.Explore.qr_throttles > 0);
  Alcotest.(check bool) "every state escalated" true (r.Explore.qr_escalated >= r.Explore.qr_states);
  Alcotest.(check int) "no leaks at any kill point" 0 r.Explore.qr_leaked

(* Mutation self-test: with the bypass hook on, the tenant is charged
   zero — the campaign must notice that its victim never throttles. *)
let test_explore_qos_catches_bypass_mutation () =
  Controller.set_qos_bypass true;
  Fun.protect ~finally:(fun () -> Controller.set_qos_bypass false) @@ fun () ->
  let r = Explore.explore_qos ~config:explore_config () in
  match r.Explore.qr_failure with
  | Some cx
    when String.length cx.Explore.cx_detail >= 30
         && String.sub cx.Explore.cx_detail 0 30 = "the victim was never throttled" ->
    ()
  | Some cx -> Alcotest.failf "mutation caught by the wrong check: %s" cx.Explore.cx_detail
  | None -> Alcotest.fail "throttle-bypass mutation was not caught"

let () =
  Alcotest.run "qos"
    [
      ( "token bucket",
        [
          Alcotest.test_case "charge and refill" `Quick test_bucket_charge_and_refill;
          Alcotest.test_case "admission deadline" `Quick test_bucket_admission_deadline;
          Alcotest.test_case "unconfigured tenants" `Quick test_bucket_unconfigured_always_admitted;
          Alcotest.test_case "bypass hook" `Quick test_bucket_bypass_mutation_visible;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "ring nowait EAGAIN" `Quick test_ring_nowait_eagain;
          Alcotest.test_case "ring park until admitted" `Quick test_ring_submit_parks_until_admitted;
          Alcotest.test_case "throttle counters" `Quick test_throttle_counters_in_stats;
          Alcotest.test_case "unenforced is untouched" `Quick test_no_enforcement_no_throttle;
        ] );
      ( "retry deadline",
        [
          Alcotest.test_case "ETIMEDOUT on budget expiry" `Quick test_with_retry_etimedout;
          Alcotest.test_case "clean path unchanged" `Quick test_with_retry_clean_path_unchanged;
        ] );
      ( "multi-tenant",
        [
          Alcotest.test_case "YCSB isolation under chaos" `Slow test_ycsb_isolation_under_chaos;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "kills in throttled states" `Slow test_explore_qos;
          Alcotest.test_case "bypass mutation caught" `Slow test_explore_qos_catches_bypass_mutation;
        ] );
    ]
