(* Ring-protocol test suite (DESIGN.md §4.15): SQ/CQ mechanics in
   isolation (wrap-around, backpressure, completion correspondence),
   equivalence of the batched and synchronous syscall paths over the
   same op script, a kill-point sweep across every Delay boundary the
   ring path crosses, and the full conformance suite with the ring
   enabled. *)

module Sched = Trio_sim.Sched
module Controller = Trio_core.Controller
module Ring = Trio_core.Controller.Ring
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs
open Trio_core.Fs_types

let timeout_ns = 1.0e6

(* ------------------------------------------------------------------ *)
(* Protocol mechanics: a bare ring driven by hand, no controller in the
   loop.  [submit]/[take_batch]/[post]/[await] are exercised directly so
   a failure pinpoints the queue logic, not the drain plane. *)

let test_wraparound () =
  (* Three full revolutions of a capacity-4 ring: sequence numbers run
     past the capacity and every slot is reused, with nothing lost. *)
  Helpers.run_sim (fun _env ->
      let r = Ring.create ~proc:7 ~capacity:4 in
      for _round = 0 to 2 do
        let seqs =
          List.init 4 (fun _ ->
              match Ring.submit r Ring.Op_lease with
              | Ok s -> s
              | Error e -> Alcotest.failf "submit: %s" (errno_to_string e))
        in
        let batch = Ring.take_batch r ~max:64 in
        Alcotest.(check int) "whole SQ drained" 4 (List.length batch);
        List.iter (fun (seq, _) -> Ring.post r ~seq (Ok ())) batch;
        List.iter
          (fun seq ->
            match Ring.await r ~seq with
            | Ok () -> ()
            | Error e -> Alcotest.failf "await %d: %s" seq (errno_to_string e))
          seqs
      done;
      Alcotest.(check int) "12 submitted" 12 (Ring.submitted r);
      Alcotest.(check int) "12 reaped" 12 (Ring.completed r);
      Alcotest.(check int) "SQ empty" 0 (Ring.depth r);
      Alcotest.(check int) "nothing outstanding" 0 (Ring.outstanding r))

let test_backpressure () =
  (* A producer pushing five fire-and-forget entries through a
     capacity-2 ring must park on the third and resume as the consumer
     frees slots — blocked, never failed, and no entry lost. *)
  Helpers.run_sim (fun env ->
      let sched = env.Helpers.sched in
      let r = Ring.create ~proc:7 ~capacity:2 in
      let accepted = ref 0 and producer_done = ref false in
      Sched.spawn sched (fun () ->
          for _ = 1 to 5 do
            match Ring.submit ~forget:true r Ring.Op_lease with
            | Ok _ -> incr accepted
            | Error e -> Alcotest.failf "submit: %s" (errno_to_string e)
          done;
          producer_done := true);
      Sched.delay 1.0e3;
      Alcotest.(check int) "ring full" 2 (Ring.outstanding r);
      Alcotest.(check bool) "producer parked" true (Ring.sq_parks r > 0);
      Alcotest.(check bool) "producer blocked, not failed" false !producer_done;
      (* Drain one entry at a time; backpressure releases step by step. *)
      let drained = ref 0 in
      while !drained < 5 do
        let batch = Ring.take_batch r ~max:1 in
        List.iter (fun (seq, _) -> Ring.post r ~seq (Ok ())) batch;
        drained := !drained + List.length batch;
        Sched.delay 1.0e3
      done;
      Sched.delay 1.0e3;
      Alcotest.(check bool) "producer finished" true !producer_done;
      Alcotest.(check int) "no entry lost" 5 !accepted;
      Alcotest.(check int) "all reaped" 5 (Ring.completed r);
      Alcotest.(check int) "nothing outstanding" 0 (Ring.outstanding r))

let test_interleaved_producers () =
  (* Two producers share one ring with jittered submit cadences; the
     consumer posts a parity-coded completion per sequence number.  Each
     await must surface exactly the completion posted for its own seq —
     interleaving must never cross-deliver. *)
  Helpers.run_sim (fun env ->
      let sched = env.Helpers.sched in
      let r = Ring.create ~proc:7 ~capacity:8 in
      let mismatches = ref 0 and completions = ref 0 in
      let producer jitter n =
        Sched.spawn sched (fun () ->
            for _ = 1 to n do
              Sched.delay jitter;
              match Ring.submit r Ring.Op_lease with
              | Error e -> Alcotest.failf "submit: %s" (errno_to_string e)
              | Ok seq ->
                let expect = if seq mod 2 = 0 then Ok () else Error EINVAL in
                if Ring.await r ~seq <> expect then incr mismatches;
                incr completions
            done)
      in
      producer 1.0e3 8;
      producer 1.7e3 8;
      let posted = ref 0 in
      while !posted < 16 do
        Sched.delay 0.9e3;
        List.iter
          (fun (seq, _) ->
            Ring.post r ~seq (if seq mod 2 = 0 then Ok () else Error EINVAL);
            incr posted)
          (Ring.take_batch r ~max:3)
      done;
      Sched.delay 20.0e3;
      Alcotest.(check int) "all completions observed" 16 !completions;
      Alcotest.(check int) "every await matched its seq" 0 !mismatches;
      Alcotest.(check int) "nothing outstanding" 0 (Ring.outstanding r))

(* ------------------------------------------------------------------ *)
(* Batch-drain equivalence: the same op script through a ring-mounted
   and a synchronously-mounted ArckFS must yield the same errno trace,
   the same visible namespace, and balanced books in both worlds. *)

let equivalence_script ops =
  let out = ref [] in
  let tag name r =
    out := (name ^ ":" ^ match r with Ok _ -> "ok" | Error e -> errno_to_string e) :: !out
  in
  tag "mkdir" (ops.Fs.mkdir "/eq" 0o755);
  tag "mkdir" (ops.Fs.mkdir "/eq" 0o755);
  for i = 0 to 9 do
    tag "write" (Fs.write_file ops (Printf.sprintf "/eq/f%d" i) (String.make (100 * (i + 1)) 'r'))
  done;
  tag "read" (Fs.read_file ops "/eq/f3");
  tag "read" (Fs.read_file ops "/eq/missing");
  tag "rename" (ops.Fs.rename "/eq/f0" "/eq/g0");
  tag "unlink" (ops.Fs.unlink "/eq/f1");
  tag "unlink" (ops.Fs.unlink "/eq/f1");
  tag "stat" (ops.Fs.stat "/eq/g0");
  tag "rmdir" (ops.Fs.rmdir "/eq");
  let names =
    match ops.Fs.readdir "/eq" with
    | Ok entries -> List.sort compare (List.map (fun e -> e.d_name) entries)
    | Error e -> Alcotest.failf "readdir: %s" (errno_to_string e)
  in
  (List.rev !out, names)

let run_equivalence_world ?ring () =
  Helpers.run_sim (fun env ->
      let fs = Helpers.mount ~proc:1 ?ring env in
      let labels, names = equivalence_script (Libfs.ops fs) in
      Libfs.unmap_everything fs;
      Conformance.accounting env.Helpers.ctl;
      let ring_submits =
        match Controller.ring_of env.Helpers.ctl 1 with
        | Some r -> Ring.submitted r
        | None -> 0
      in
      (labels, names, ring_submits))

let test_batch_drain_equivalence () =
  let sync_labels, sync_names, sync_submits = run_equivalence_world () in
  let ring_labels, ring_names, ring_submits = run_equivalence_world ~ring:8 () in
  Alcotest.(check int) "sync world has no ring" 0 sync_submits;
  Alcotest.(check bool) "ring world used the ring" true (ring_submits > 0);
  Alcotest.(check (list string)) "errno trace parity" sync_labels ring_labels;
  Alcotest.(check (list string)) "visible namespace parity" sync_names ring_names

(* ------------------------------------------------------------------ *)
(* Kill-point sweep: a counting pass over a ring-mounted victim fixes
   the number of Delay/cpu_work boundaries its script crosses (the ring
   submit's own kill point among them), then a fresh world per point
   kills exactly there.  Whatever the landing spot, the watchdog's
   teardown must leave the page accounting balanced. *)

let ring_victim_script ops =
  ignore (ops.Fs.mkdir "/k" 0o755);
  ignore (Fs.write_file ops "/k/a" (String.make 300 'a'));
  ignore (Fs.read_file ops "/k/a");
  ignore (ops.Fs.unlink "/k/a")

let test_kill_every_ring_point () =
  let points =
    Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
        let sched = env.Helpers.sched in
        let fs = Helpers.mount ~proc:1 ~ring:4 env in
        let ops = Libfs.ops fs in
        Sched.spawn sched (fun () -> Sched.killable (fun () -> ring_victim_script ops));
        Sched.arm_count sched;
        Sched.delay 10.0e6;
        Sched.disarm sched;
        Sched.kill_points_crossed sched)
  in
  Alcotest.(check bool) "ring workload crosses kill points" true (points > 0);
  (* Sweep every boundary, thinning only if the script grows huge. *)
  let step = if points > 120 then points / 120 else 1 in
  let k = ref 0 in
  while !k < points do
    let at = !k in
    Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
        let sched = env.Helpers.sched in
        let ctl = env.Helpers.ctl in
        let fs = Helpers.mount ~proc:1 ~ring:4 env in
        let ops = Libfs.ops fs in
        Sched.spawn sched (fun () -> Sched.killable (fun () -> ring_victim_script ops));
        Sched.arm_kill sched ~after:at;
        Sched.delay 10.0e6;
        Sched.disarm sched;
        (match Controller.watchdog_once ctl ~timeout_ns with
        | [] | [ 1 ] -> ()
        | l ->
          Alcotest.failf "kill@%d: unexpected escalation [%s]" at
            (String.concat ";" (List.map string_of_int l)));
        ignore (Controller.drain_unverified ctl);
        let gc = Controller.gc_once ctl in
        if not gc.Controller.gc_invariant_ok then
          Alcotest.failf "kill@%d: page accounting broken" at;
        Alcotest.(check int) (Printf.sprintf "kill@%d leaks" at) 0 gc.Controller.gc_leaked);
    k := !k + step
  done

(* ------------------------------------------------------------------ *)
(* The shared conformance suite (including the errno-parity script every
   evaluated file system must match, and the VFS counter checks) over an
   ArckFS whose map/unmap traffic rides the ring. *)

let ring_conformance =
  ( "conformance",
    Conformance.suite ~make_fs:(fun check ->
        Helpers.run_sim (fun env ->
            let fs = Helpers.mount ~proc:1 ~ring:8 env in
            check (Trio_core.Vfs.wrap ~sched:env.Helpers.sched (Libfs.ops fs));
            Libfs.unmap_everything fs;
            Conformance.accounting env.Helpers.ctl)) )

let () =
  Alcotest.run "ring"
    [
      ( "protocol",
        [
          Alcotest.test_case "wrap-around reuses slots" `Quick test_wraparound;
          Alcotest.test_case "full SQ parks the producer" `Quick test_backpressure;
          Alcotest.test_case "interleaved producers, per-seq delivery" `Quick
            test_interleaved_producers;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "ring and sync paths agree" `Quick test_batch_drain_equivalence;
        ] );
      ( "kill points",
        [
          Alcotest.test_case "every ring boundary, balanced books" `Quick
            test_kill_every_ring_point;
        ] );
      ring_conformance;
    ]
