(* Shared test harness: stand up a simulated machine and run test bodies
   inside a fiber (all FS operations account virtual time and must run
   under the scheduler). *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Libfs = Arckfs.Libfs

type env = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  ctl : Controller.t;
}

(* Run [f env] to completion inside a fiber; propagate its result.  The
   controller (and mkfs) must also be built inside a fiber because it
   performs NVM accesses. *)
let run_sim ?(nodes = 2) ?(cpus_per_node = 4) ?(pages_per_node = 16384) ?(store_data = true)
    ?(lease_ns = 100.0e6) f =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes ~cpus_per_node in
  let pmem = Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node ~store_data () in
  let mmu = Mmu.create pmem in
  let result = ref None in
  Sched.spawn sched (fun () ->
      let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns () in
      result := Some (f { sched; pmem; mmu; ctl }));
  ignore (Sched.run sched);
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not run the test body to completion"

(* Mount an ArckFS LibFS for process [proc]. *)
let mount ?(proc = 1) ?(uid = 1000) ?(gid = 1000) ?group ?delegation ?unmap_after_write ?ring env
    =
  ignore group;
  Libfs.mount ~ctl:env.ctl ~proc ~cred:{ Trio_core.Fs_types.uid; gid } ?delegation
    ?unmap_after_write ?ring ()

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Trio_core.Fs_types.errno_to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (Trio_core.Fs_types.errno_to_string expected)
  | Error e ->
    Alcotest.(check string)
      what
      (Trio_core.Fs_types.errno_to_string expected)
      (Trio_core.Fs_types.errno_to_string e)

let bytes_of_string = Bytes.of_string
