(* NUMA sharding of the controller: per-socket page pools (batched
   refill/drain against the global reserve), hashed registry shards with
   the two-shard ordered-lock protocol, and the balanced cross-shard
   accounting invariant (DESIGN.md §4.14). *)

module Sched = Trio_sim.Sched
module Controller = Trio_core.Controller
module Fs = Trio_core.Fs_intf
module Libfs = Arckfs.Libfs
module Script = Trio_check.Script
module Explore = Trio_check.Explore
module Rng = Trio_util.Rng
open Trio_core.Fs_types

let timeout_ns = 1.0e6

(* ------------------------------------------------------------------ *)
(* Shard routing *)

let test_shard_of_ino_balanced () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      let shards = Controller.shard_count ctl in
      Alcotest.(check int) "one shard per socket" 2 shards;
      let counts = Array.make shards 0 in
      for ino = 1 to 1024 do
        let s = Controller.shard_of_ino ctl ino in
        Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
        Alcotest.(check int) "deterministic" s (Controller.shard_of_ino ctl ino);
        counts.(s) <- counts.(s) + 1
      done;
      (* Fibonacci hashing over consecutive inos must not starve a shard *)
      Array.iter
        (fun c -> Alcotest.(check bool) "no shard starved" true (c > 1024 * 3 / 10))
        counts)

(* ------------------------------------------------------------------ *)
(* Per-socket page pools *)

let test_pool_exhaustion_batch_refill () =
  Helpers.run_sim ~pages_per_node:2048 (fun env ->
      let ctl = env.Helpers.ctl in
      (* tiny pools so a modest working set exhausts them repeatedly *)
      Controller.set_pool_limits ctl ~refill_batch:32 ~high_water:64;
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      Helpers.check_ok "mkdir" (ops1.Fs.mkdir "/pool" 0o755);
      for i = 0 to 199 do
        Helpers.check_ok "write"
          (Fs.write_file ops1 (Printf.sprintf "/pool/f%03d" i) (String.make 8192 'p'))
      done;
      let refills =
        List.fold_left
          (fun acc s -> acc + s.Controller.ss_pool_refills)
          0 (Controller.shard_stats ctl)
      in
      Alcotest.(check bool) "pools refilled in batches from the reserve" true (refills >= 2);
      for i = 0 to 199 do
        Helpers.check_ok "unlink" (ops1.Fs.unlink (Printf.sprintf "/pool/f%03d" i))
      done;
      Libfs.unmap_everything fs1;
      let stats = Controller.shard_stats ctl in
      let drains = List.fold_left (fun acc s -> acc + s.Controller.ss_pool_drains) 0 stats in
      Alcotest.(check bool) "mass frees drained pools back to the reserve" true (drains >= 1);
      List.iter
        (fun s ->
          Alcotest.(check bool) "pool bounded by its high water" true
            (s.Controller.ss_pool_free <= 64))
        stats;
      let gc = Controller.gc_once ctl in
      Alcotest.(check bool) "accounting invariant" true gc.Controller.gc_invariant_ok;
      Alcotest.(check int) "no leaks" 0 gc.Controller.gc_leaked)

(* ------------------------------------------------------------------ *)
(* Failure-plane exploration: the balanced invariant must hold (summed
   over all shards) after every explored crash/fault state — the
   explorer's worlds are two-socket, so every state exercises the
   sharded pools and registries. *)

let test_proc_death_invariant_across_shards () =
  let rng = Rng.create 11 in
  let ops = Script.generate rng ~len:5 in
  let config =
    { Explore.default_proc_config with pd_seed = 11; pd_kill_points = 4; pd_hang_points = 1 }
  in
  let r = Explore.explore_proc_death ~config ops in
  (match r.Explore.pr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "proc-death state failed:@.%a" Explore.pp_counterexample cx);
  Alcotest.(check bool) "states explored" true (r.Explore.pr_states > 0);
  Alcotest.(check int) "no leaks" 0 r.Explore.pr_leaked;
  Alcotest.(check int) "no invariant failures" 0 r.Explore.pr_invariant_failures

let test_faults_invariant_across_shards () =
  let rng = Rng.create 23 in
  let ops = Script.generate rng ~len:5 in
  let config =
    {
      Explore.default_fault_config with
      fault_seed = 23;
      transient_read_p = 0.02;
      stuck_store_p = 0.03;
      fault_crash_points = 4;
    }
  in
  let r = Explore.explore_faults ~config ops in
  (match r.Explore.fr_failure with
  | None -> ()
  | Some cx -> Alcotest.failf "faulted state failed:@.%a" Explore.pp_counterexample cx);
  Alcotest.(check bool) "states explored" true (r.Explore.fr_states > 0)

(* ------------------------------------------------------------------ *)
(* Cross-shard rename: the two-shard ordered-lock path *)

(* Among a handful of directories the ino hash must land on both shards
   of a two-socket rig; hand back one directory per shard. *)
let cross_shard_dirs ctl ops =
  let dirs = List.init 6 (fun i -> Printf.sprintf "/d%d" i) in
  List.iter (fun d -> Helpers.check_ok "mkdir" (ops.Fs.mkdir d 0o755)) dirs;
  let shard d =
    let st = Helpers.check_ok "stat" (ops.Fs.stat d) in
    Controller.shard_of_ino ctl st.st_ino
  in
  let da = List.hd dirs in
  let sa = shard da in
  match List.find_opt (fun d -> shard d <> sa) dirs with
  | Some db -> (da, db)
  | None -> Alcotest.fail "six directories all hashed to one shard"

let test_cross_shard_rename_counts () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      let fs1 = Helpers.mount ~proc:1 env in
      let ops1 = Libfs.ops fs1 in
      let da, db = cross_shard_dirs ctl ops1 in
      (* a cross-dir move locks the (directory, child) ino pair; over
         eight children the hash must pair at least one child with a
         directory on the other shard *)
      for i = 0 to 7 do
        Helpers.check_ok "seed" (Fs.write_file ops1 (Printf.sprintf "%s/f%d" da i) "payload")
      done;
      (* ingest the children under their source directory first — only a
         move of a *registered* child routes through the pair lock *)
      Libfs.unmap_everything fs1;
      let _, cross0 = Controller.lock_stats ctl in
      for i = 0 to 7 do
        Helpers.check_ok "rename"
          (ops1.Fs.rename (Printf.sprintf "%s/f%d" da i) (Printf.sprintf "%s/f%d" db i))
      done;
      Libfs.unmap_everything fs1;
      let _, cross1 = Controller.lock_stats ctl in
      Alcotest.(check bool) "renames took the two-shard lock path" true (cross1 > cross0))

let test_cross_shard_rename_survives_writer_death () =
  let run_one kill_at =
    Helpers.run_sim ~lease_ns:timeout_ns (fun env ->
        let sched = env.Helpers.sched and ctl = env.Helpers.ctl in
        let fs1 = Helpers.mount ~proc:1 env in
        let fs2 = Helpers.mount ~proc:2 env in
        let ops1 = Libfs.ops fs1 and ops2 = Libfs.ops fs2 in
        let da, db = cross_shard_dirs ctl ops1 in
        Helpers.check_ok "seed" (Fs.write_file ops1 (da ^ "/f") "payload");
        Libfs.unmap_everything fs1;
        (* the victim ping-pongs the file between the two shards' dirs
           and dies mid-flight *)
        Sched.spawn sched (fun () ->
            Sched.killable (fun () ->
                for i = 0 to 19 do
                  let src = if i land 1 = 0 then da ^ "/f" else db ^ "/f" in
                  let dst = if i land 1 = 0 then db ^ "/f" else da ^ "/f" in
                  ignore (ops1.Fs.rename src dst)
                done));
        Sched.arm_kill sched ~after:kill_at;
        Sched.delay 10.0e6;
        Sched.disarm sched;
        ignore (Controller.watchdog_once ctl ~timeout_ns);
        ignore (Controller.gc_once ctl);
        (* no double entry: after escalation and the verifier gate the
           file is in exactly one of the two directories *)
        let here = Result.is_ok (ops2.Fs.stat (da ^ "/f")) in
        let there = Result.is_ok (ops2.Fs.stat (db ^ "/f")) in
        if here && there then Alcotest.failf "kill@%d: file present in both directories" kill_at;
        if not (here || there) then Alcotest.failf "kill@%d: file lost" kill_at;
        (* no deadlock: both shards still serve the survivor *)
        Helpers.check_ok "create on shard A" (Fs.write_file ops2 (da ^ "/post_a") "x");
        Helpers.check_ok "create on shard B" (Fs.write_file ops2 (db ^ "/post_b") "y");
        Helpers.check_ok "survivor rename" (ops2.Fs.rename (da ^ "/post_a") (db ^ "/post_c"));
        Libfs.unmap_everything fs2;
        (* no double-free: a page freed twice would break the balanced
           accounting; run the GC twice so a stale pool entry would show *)
        ignore (Controller.gc_once ctl);
        let gc = Controller.gc_once ctl in
        Alcotest.(check bool)
          (Printf.sprintf "invariant after kill@%d" kill_at)
          true gc.Controller.gc_invariant_ok;
        Alcotest.(check int) (Printf.sprintf "no leaks after kill@%d" kill_at) 0
          gc.Controller.gc_leaked)
  in
  List.iter run_one [ 0; 2; 5; 9; 14; 21; 34 ]

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [ Alcotest.test_case "shard-of-ino balanced and deterministic" `Quick
            test_shard_of_ino_balanced ] );
      ( "pools",
        [ Alcotest.test_case "exhaustion refills in batches" `Quick
            test_pool_exhaustion_batch_refill ] );
      ( "invariant",
        [
          Alcotest.test_case "holds across proc-death exploration" `Quick
            test_proc_death_invariant_across_shards;
          Alcotest.test_case "holds across fault exploration" `Quick
            test_faults_invariant_across_shards;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "rename counts a two-shard op" `Quick test_cross_shard_rename_counts;
          Alcotest.test_case "rename survives writer death" `Quick
            test_cross_shard_rename_survives_writer_death;
        ] );
    ]
