(* Tests for the Trio core: core-state layout, MMU wiring, the kernel
   controller, and the integrity verifier. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Layout = Trio_core.Layout
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Verifier = Trio_core.Verifier
open Trio_core.Fs_types

let actor = Pmem.kernel_actor

(* ------------------------------------------------------------------ *)
(* Layout *)

let sample_inode =
  {
    Layout.ino = 42;
    ftype = Reg;
    mode = 0o640;
    uid = 1000;
    gid = 100;
    size = 12345;
    index_head = 77;
    mtime = 111;
    ctime = 222;
  }

let test_dentry_roundtrip () =
  let b = Layout.encode_dentry ~inode:sample_inode ~name:"report.txt" () in
  match Layout.decode_dentry b with
  | Some (Ok (inode, name)) ->
    Alcotest.(check string) "name" "report.txt" name;
    Alcotest.(check int) "ino" 42 inode.Layout.ino;
    Alcotest.(check int) "mode" 0o640 inode.Layout.mode;
    Alcotest.(check int) "uid" 1000 inode.Layout.uid;
    Alcotest.(check int) "size" 12345 inode.Layout.size;
    Alcotest.(check int) "index head" 77 inode.Layout.index_head;
    Alcotest.(check bool) "ftype" true (inode.Layout.ftype = Reg)
  | _ -> Alcotest.fail "decode failed"

let test_dentry_free_slot () =
  let b = Bytes.make Layout.dentry_size '\000' in
  Alcotest.(check bool) "free slot decodes to None" true (Layout.decode_dentry b = None)

let test_dentry_garbage_rejected () =
  let b = Layout.encode_dentry ~inode:sample_inode ~name:"x" () in
  Layout.set_u8 b Layout.off_ftype 9 (* invalid file type *);
  (match Layout.decode_dentry b with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "invalid ftype accepted");
  let b2 = Layout.encode_dentry ~inode:sample_inode ~name:"x" () in
  Layout.set_u16 b2 Layout.off_name_len 5000;
  match Layout.decode_dentry b2 with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "invalid name length accepted"

let test_name_too_long_rejected () =
  let name = String.make 200 'a' in
  try
    ignore (Layout.encode_dentry ~inode:sample_inode ~name ());
    Alcotest.fail "over-long name accepted"
  with Invalid_argument _ -> ()

let test_superblock_roundtrip () =
  Helpers.run_sim (fun env ->
      match Layout.read_superblock env.Helpers.pmem ~actor with
      | Ok (total, psize, root_ino, root_addr) ->
        Alcotest.(check int) "total pages" (Pmem.total_pages env.Helpers.pmem) total;
        Alcotest.(check int) "page size" 4096 psize;
        Alcotest.(check int) "root ino" Layout.root_ino root_ino;
        Alcotest.(check int) "root dentry" Layout.root_dentry_addr root_addr
      | Error e -> Alcotest.fail e)

let test_atomic_create_protocol () =
  (* write_dentry_atomic must persist everything before activating ino:
     a crash immediately after the full-block write (before the ino
     store is persisted) must leave the slot free. *)
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let addr = 3 * Layout.page_size in
      (* simulate the first half of the protocol by hand *)
      let b = Layout.encode_dentry ~inode:sample_inode ~name:"f" () in
      Layout.set_u64 b Layout.off_ino 0;
      Pmem.write pm ~actor ~addr ~src:b;
      Pmem.persist pm ~addr ~len:Layout.dentry_size;
      (* the ino store happens but is NOT persisted *)
      Pmem.write_u64 pm ~actor ~addr 42;
      Pmem.crash pm;
      match Layout.read_dentry pm ~actor ~addr with
      | None -> () (* slot still free: correct *)
      | _ -> Alcotest.fail "torn create became visible")

let test_index_page_chain () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let p1 = 10 and p2 = 11 in
      Layout.write_index_entry pm ~actor ~page:p1 0 100;
      Layout.write_index_entry pm ~actor ~page:p1 1 101;
      Layout.write_index_next pm ~actor ~page:p1 p2;
      Layout.write_index_entry pm ~actor ~page:p2 0 200;
      let seen = ref [] in
      (match
         Layout.walk_index_chain pm ~actor ~head:p1 ~max_pages:100
           (fun ~index_page ~entries ~next:_ ->
             seen := (index_page, Array.to_list (Array.sub entries 0 2)) :: !seen)
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "two pages" 2 (List.length !seen);
      Alcotest.(check (list int)) "page 1 entries" [ 100; 101 ] (snd (List.nth (List.rev !seen) 0)))

let test_index_chain_cycle_detected () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      Layout.write_index_next pm ~actor ~page:10 11;
      Layout.write_index_next pm ~actor ~page:11 10 (* cycle! *);
      match
        Layout.walk_index_chain pm ~actor ~head:10 ~max_pages:50
          (fun ~index_page:_ ~entries:_ ~next:_ -> ())
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "cycle not detected")

(* ------------------------------------------------------------------ *)
(* Controller: allocation & mapping *)

let test_alloc_pages_grants_access () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      Controller.register_process ctl ~proc:1 ~cred:{ uid = 1; gid = 1 } ();
      match Controller.alloc_pages ctl ~proc:1 ~node:0 ~count:4 ~kind:Pmem.Meta with
      | Error e -> Alcotest.failf "alloc: %s" (errno_to_string e)
      | Ok pages ->
        Alcotest.(check int) "got 4" 4 (List.length pages);
        (* the process can now write these pages *)
        let pg = List.hd pages in
        Pmem.write_u64 env.Helpers.pmem ~actor:1 ~addr:(pg * 4096) 7;
        Alcotest.(check int) "wrote" 7 (Pmem.read_u64 env.Helpers.pmem ~actor:1 ~addr:(pg * 4096)))

let test_unallocated_page_faults () =
  Helpers.run_sim (fun env ->
      Controller.register_process env.Helpers.ctl ~proc:1 ~cred:{ uid = 1; gid = 1 } ();
      match Pmem.write_u64 env.Helpers.pmem ~actor:1 ~addr:(500 * 4096) 1 with
      | _ -> Alcotest.fail "expected fault"
      | exception Pmem.Mmu_fault _ -> ())

let test_free_pages_revokes () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      Controller.register_process ctl ~proc:1 ~cred:{ uid = 1; gid = 1 } ();
      let pages =
        match Controller.alloc_pages ctl ~proc:1 ~node:0 ~count:1 ~kind:Pmem.Meta with
        | Ok p -> p
        | Error _ -> Alcotest.fail "alloc"
      in
      (match Controller.free_pages ctl ~proc:1 ~pages with
      | Ok () -> ()
      | Error e -> Alcotest.failf "free: %s" (errno_to_string e));
      let pg = List.hd pages in
      match Pmem.write_u64 env.Helpers.pmem ~actor:1 ~addr:(pg * 4096) 1 with
      | _ -> Alcotest.fail "freed page still writable"
      | exception Pmem.Mmu_fault _ -> ())

let test_free_foreign_pages_refused () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      Controller.register_process ctl ~proc:1 ~cred:{ uid = 1; gid = 1 } ();
      Controller.register_process ctl ~proc:2 ~cred:{ uid = 2; gid = 2 } ();
      let pages =
        match Controller.alloc_pages ctl ~proc:1 ~node:0 ~count:1 ~kind:Pmem.Meta with
        | Ok p -> p
        | Error _ -> Alcotest.fail "alloc"
      in
      Helpers.check_err "free foreign" EACCES (Controller.free_pages ctl ~proc:2 ~pages))

let test_alloc_inos_distinct () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      Controller.register_process ctl ~proc:1 ~cred:{ uid = 1; gid = 1 } ();
      let a = Controller.alloc_inos ctl ~proc:1 ~count:10 in
      let b = Controller.alloc_inos ctl ~proc:1 ~count:10 in
      let all = a @ b in
      Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare all)))

(* ------------------------------------------------------------------ *)
(* Controller + LibFS integration: sharing and verification *)

let test_two_procs_share_file () =
  Helpers.run_sim (fun env ->
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let fs2 = Helpers.mount ~proc:2 ~uid:1001 env in
      let ops1 = Arckfs.Libfs.ops fs1 and ops2 = Arckfs.Libfs.ops fs2 in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops1 "/shared.txt" "from proc 1");
      (* hand the file over *)
      Arckfs.Libfs.unmap_everything fs1;
      let content = Helpers.check_ok "read" (Trio_core.Fs_intf.read_file ops2 "/shared.txt") in
      Alcotest.(check string) "cross-process content" "from proc 1" content)

let test_exclusive_write_blocks_reader () =
  (* While proc 1 holds a write mapping, proc 2's read map must wait for
     the lease; after expiry it succeeds. *)
  Helpers.run_sim ~lease_ns:1.0e6 (fun env ->
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let fs2 = Helpers.mount ~proc:2 ~uid:1001 env in
      let ops1 = Arckfs.Libfs.ops fs1 and ops2 = Arckfs.Libfs.ops fs2 in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops1 "/f" "v1");
      Arckfs.Libfs.unmap_everything fs1;
      (* proc1 opens for write again and keeps it mapped *)
      let fd = Helpers.check_ok "open" (ops1.Trio_core.Fs_intf.open_ "/f" [ O_RDWR ]) in
      ignore (Helpers.check_ok "append" (ops1.Trio_core.Fs_intf.append fd (Bytes.of_string "x")));
      let t0 = Sched.now env.Helpers.sched in
      let content = Helpers.check_ok "read" (Trio_core.Fs_intf.read_file ops2 "/f") in
      let waited = Sched.now env.Helpers.sched -. t0 in
      Alcotest.(check string) "content" "v1x" content;
      if waited < 0.5e6 then Alcotest.failf "reader did not wait for the lease (%.0fns)" waited)

(* A malicious process with write access to the parent directory edits
   the mode bits in a victim file's inode; the verifier must restore them
   from the shadow table when the directory is shared (check I4). *)
let test_shadow_restores_mode () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops1 = Arckfs.Libfs.ops fs1 in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops1 "/secret" "data");
      Helpers.check_ok "chmod" (ops1.Trio_core.Fs_intf.chmod "/secret" 0o600);
      Arckfs.Libfs.unmap_everything fs1;
      (* find the file's ino/dentry through the kernel records *)
      let ino =
        match ops1.Trio_core.Fs_intf.stat "/secret" with
        | Ok st -> st.st_ino
        | Error _ -> Alcotest.fail "stat"
      in
      let dentry_addr =
        match Controller.dentry_addr_of env.Helpers.ctl ino with
        | Some a -> a
        | None -> Alcotest.fail "dentry unknown"
      in
      (* open the parent for write so proc 1 has the mapping, then attack *)
      let fd2 = Helpers.check_ok "create sibling" (ops1.Trio_core.Fs_intf.create "/sibling" 0o644) in
      ignore fd2;
      let evil = Bytes.create 2 in
      Layout.set_u16 evil 0 0o777;
      Pmem.write pm ~actor:1 ~addr:(dentry_addr + Layout.off_mode) ~src:evil;
      Pmem.persist pm ~addr:(dentry_addr + Layout.off_mode) ~len:2;
      (* sharing point: unmap triggers verification; I4 repairs the mode *)
      Arckfs.Libfs.unmap_everything fs1;
      match Layout.read_dentry pm ~actor ~addr:dentry_addr with
      | Some (Ok (inode, _)) -> Alcotest.(check int) "mode restored from shadow" 0o600 inode.Layout.mode
      | _ -> Alcotest.fail "dentry unreadable")

let test_corruption_detected_and_rolled_back () =
  (* Proc 1 write-maps the root, corrupts a sibling's index-head to point
     at a foreign page, and unmaps: the verifier must flag it and the
     controller must restore the checkpoint. *)
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem in
      let ctl = env.Helpers.ctl in
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops1 = Arckfs.Libfs.ops fs1 in
      Helpers.check_ok "victim" (Trio_core.Fs_intf.write_file ops1 "/victim" "precious");
      Arckfs.Libfs.unmap_everything fs1;
      Alcotest.(check int) "no corruption yet" 0 (List.length (Controller.corruption_events ctl));
      (* re-acquire write access to "/" by creating a file, then attack *)
      ignore (Helpers.check_ok "attacker file" (ops1.Trio_core.Fs_intf.create "/mine" 0o644));
      let victim_ino =
        match ops1.Trio_core.Fs_intf.stat "/victim" with
        | Ok st -> st.st_ino
        | Error _ -> Alcotest.fail "stat victim"
      in
      let victim_addr = Option.get (Controller.dentry_addr_of ctl victim_ino) in
      (* point the victim's index head at the superblock page *)
      Pmem.write_u64 pm ~actor:1 ~addr:(victim_addr + Layout.off_index_head) 0;
      (* point at a free page: neither part of the victim nor allocated
         to the attacker *)
      let free_page = Pmem.total_pages pm - 5 in
      Pmem.write_u64 pm ~actor:1 ~addr:(victim_addr + Layout.off_index_head) free_page;
      Pmem.persist pm ~addr:(victim_addr + Layout.off_index_head) ~len:8;
      Arckfs.Libfs.unmap_everything fs1;
      (* the verifier caught it... *)
      if Controller.corruption_events ctl = [] then Alcotest.fail "corruption not detected";
      (* ...and the rollback restored a readable, verified state *)
      let fs2 = Helpers.mount ~proc:2 ~uid:1001 env in
      let ops2 = Arckfs.Libfs.ops fs2 in
      let content = Helpers.check_ok "read after recovery" (Trio_core.Fs_intf.read_file ops2 "/victim") in
      Alcotest.(check string) "content recovered" "precious" content)

let test_trust_group_shares_without_verify () =
  Helpers.run_sim (fun env ->
      let ctl = env.Helpers.ctl in
      (* both processes in trust group 7 *)
      let fs1 =
        Arckfs.Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } ()
      in
      ignore fs1;
      Controller.register_process ctl ~proc:3 ~cred:{ uid = 1000; gid = 1000 } ~group:7 ();
      Controller.register_process ctl ~proc:4 ~cred:{ uid = 1000; gid = 1000 } ~group:7 ();
      (* proc 3 maps root for write; proc 4's map must not wait *)
      Helpers.check_ok "map 3" (Controller.map_file ctl ~proc:3 ~ino:Controller.root_ino ~write:true);
      let t0 = Sched.now env.Helpers.sched in
      Helpers.check_ok "map 4" (Controller.map_file ctl ~proc:4 ~ino:Controller.root_ino ~write:true);
      let waited = Sched.now env.Helpers.sched -. t0 in
      if waited > 1.0e6 then Alcotest.failf "trust-group map waited %.0fns" waited)

(* Access control: the shadow inode table is the ground truth the
   controller consults when granting mappings. *)
let test_map_denied_without_permission () =
  Helpers.run_sim (fun env ->
      let owner = Helpers.mount ~proc:1 ~uid:1000 env in
      let owner_ops = Arckfs.Libfs.ops owner in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file owner_ops "/private" "secret");
      Helpers.check_ok "chmod 600" (owner_ops.Trio_core.Fs_intf.chmod "/private" 0o600);
      Arckfs.Libfs.unmap_everything owner;
      (* a different uid cannot map the file *)
      let stranger = Helpers.mount ~proc:2 ~uid:2222 env in
      let ops = Arckfs.Libfs.ops stranger in
      Helpers.check_err "open denied" EACCES
        (ops.Trio_core.Fs_intf.open_ "/private" [ O_RDONLY ]);
      (* mode 644 readable but not writable for others *)
      Helpers.check_ok "chmod 644" (owner_ops.Trio_core.Fs_intf.chmod "/private" 0o644);
      let fd = Helpers.check_ok "open ro" (ops.Trio_core.Fs_intf.open_ "/private" [ O_RDONLY ]) in
      let buf = Bytes.create 6 in
      ignore (Helpers.check_ok "read" (ops.Trio_core.Fs_intf.pread fd buf 0));
      Alcotest.(check string) "content" "secret" (Bytes.to_string buf);
      (* a write attempt needs a write mapping, which is denied *)
      Helpers.check_err "write denied" EACCES
        (ops.Trio_core.Fs_intf.pwrite fd (Bytes.of_string "x") 0))

let test_chown_requires_root () =
  Helpers.run_sim (fun env ->
      let user = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops = Arckfs.Libfs.ops user in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops "/f" "x");
      Arckfs.Libfs.unmap_everything user;
      let ino = (Helpers.check_ok "stat" (ops.Trio_core.Fs_intf.stat "/f")).st_ino in
      Helpers.check_err "chown as user" EACCES
        (Controller.chown env.Helpers.ctl ~proc:1 ~ino ~uid:2222 ~gid:2222);
      (* a root process may *)
      Controller.register_process env.Helpers.ctl ~proc:9 ~cred:{ uid = 0; gid = 0 } ();
      Helpers.check_ok "chown as root"
        (Controller.chown env.Helpers.ctl ~proc:9 ~ino ~uid:2222 ~gid:2222);
      let st = Helpers.check_ok "stat" (ops.Trio_core.Fs_intf.stat "/f") in
      Alcotest.(check int) "uid" 2222 st.st_uid)

let test_chmod_only_owner () =
  Helpers.run_sim (fun env ->
      let owner = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops = Arckfs.Libfs.ops owner in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops "/f" "x");
      Arckfs.Libfs.unmap_everything owner;
      let other = Helpers.mount ~proc:2 ~uid:2222 env in
      Helpers.check_err "chmod by non-owner" EACCES
        ((Arckfs.Libfs.ops other).Trio_core.Fs_intf.chmod "/f" 0o777))

(* ------------------------------------------------------------------ *)
(* Patrol scrubber: media-fault repair, migration, quarantine *)

module Scrub = Trio_core.Scrub

(* First data page of a regular file, through the kernel's eyes. *)
let first_data_page pm ino ctl =
  let addr = Option.get (Controller.dentry_addr_of ctl ino) in
  match Layout.read_dentry pm ~actor ~addr with
  | Some (Ok (inode, _)) ->
    let head = inode.Layout.index_head in
    (head, Pmem.read_u64 pm ~actor ~addr:(head * Layout.page_size))
  | _ -> Alcotest.fail "dentry unreadable"

let test_scrub_repairs_index_from_checkpoint () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem and ctl = env.Helpers.ctl in
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops1 = Arckfs.Libfs.ops fs1 in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops1 "/a" "hello scrub");
      Arckfs.Libfs.unmap_everything fs1;
      (* the sharing point verified the file and checkpointed its
         metadata; now a cacheline of its index page goes bad *)
      let ino = (Helpers.check_ok "stat" (ops1.Trio_core.Fs_intf.stat "/a")).st_ino in
      let index_page, _ = first_data_page pm ino ctl in
      Pmem.inject_poison pm ~addr:(index_page * Layout.page_size) ~len:8;
      Alcotest.(check int) "poisoned" 1 (Pmem.poisoned_count pm);
      let st = Scrub.patrol_once ctl in
      Alcotest.(check int) "line repaired" 1 st.Scrub.repaired;
      Alcotest.(check int) "poison gone" 0 (Pmem.poisoned_count pm);
      Alcotest.(check bool) "no pages quarantined" true (Controller.badblocks ctl = []);
      Alcotest.(check bool) "file still healthy" true
        (Controller.degradation_of ctl ino = Some Controller.Healthy);
      (* the repaired index still leads to the data *)
      let fs2 = Helpers.mount ~proc:2 ~uid:1001 env in
      let content =
        Helpers.check_ok "read" (Trio_core.Fs_intf.read_file (Arckfs.Libfs.ops fs2) "/a")
      in
      Alcotest.(check string) "content intact" "hello scrub" content)

let test_scrub_quarantines_data_page_and_degrades () =
  Helpers.run_sim (fun env ->
      let pm = env.Helpers.pmem and ctl = env.Helpers.ctl in
      let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
      let ops1 = Arckfs.Libfs.ops fs1 in
      let payload = String.make 80 'p' in
      Helpers.check_ok "write" (Trio_core.Fs_intf.write_file ops1 "/big" payload);
      Arckfs.Libfs.unmap_everything fs1;
      let ino = (Helpers.check_ok "stat" (ops1.Trio_core.Fs_intf.stat "/big")).st_ino in
      let _, data_page = first_data_page pm ino ctl in
      (* data pages have no checkpoint copy: losing a line there is
         unrepairable.  The scrubber must migrate the page, retire the
         bad one, and degrade the file to read-only. *)
      Pmem.inject_poison pm ~addr:(data_page * Layout.page_size) ~len:8;
      let st = Scrub.patrol_once ctl in
      Alcotest.(check int) "page migrated" 1 st.Scrub.migrated;
      Alcotest.(check int) "page quarantined" 1 st.Scrub.quarantined;
      Alcotest.(check (list int)) "badblock recorded" [ data_page ] (Controller.badblocks ctl);
      Alcotest.(check bool) "file degraded read-only" true
        (Controller.degradation_of ctl ino = Some Controller.Degraded_ro);
      Alcotest.(check bool) "media event recorded" true
        (Controller.corruption_events ctl <> []);
      (* reads still work: salvageable bytes survive, the damaged first
         line reads as zeros *)
      let fs2 = Helpers.mount ~proc:2 ~uid:1001 env in
      let ops2 = Arckfs.Libfs.ops fs2 in
      let content = Helpers.check_ok "read" (Trio_core.Fs_intf.read_file ops2 "/big") in
      Alcotest.(check int) "size preserved" 80 (String.length content);
      Alcotest.(check string) "tail survives" (String.make 16 'p') (String.sub content 64 16);
      Alcotest.(check string) "damaged line zeroed" (String.make 64 '\000') (String.sub content 0 64);
      (* writes are refused at the mapping boundary *)
      let fd = Helpers.check_ok "open" (ops2.Trio_core.Fs_intf.open_ "/big" [ O_RDWR ]) in
      Helpers.check_err "write on degraded file" EROFS
        (ops2.Trio_core.Fs_intf.pwrite fd (Bytes.of_string "x") 0))

(* Pinned seed: the whole fault → scrub → degrade pipeline is replayable.
   Two identical runs must agree on every counter and every outcome. *)
let test_seeded_fault_run_deterministic () =
  let run () =
    Helpers.run_sim (fun env ->
        let pm = env.Helpers.pmem and ctl = env.Helpers.ctl in
        Pmem.set_fault_injection pm ~seed:20260806 ~transient_read_p:0.02 ~stuck_store_p:0.05 ();
        let fs1 = Helpers.mount ~proc:1 ~uid:1000 env in
        let ops1 = Arckfs.Libfs.ops fs1 in
        let outcomes = ref [] in
        for i = 0 to 19 do
          let path = Printf.sprintf "/f%d" i in
          let r = Trio_core.Fs_intf.write_file ops1 path (String.make (50 + i) 'd') in
          outcomes := (match r with Ok () -> "ok" | Error e -> errno_to_string e) :: !outcomes
        done;
        Arckfs.Libfs.unmap_everything fs1;
        let st = Scrub.make_stats () in
        (* several rounds: earlier repairs can unmask later work *)
        for _ = 1 to 3 do
          ignore (Scrub.patrol_once ~stats:st ctl)
        done;
        let fst_ = Pmem.fault_stats pm in
        ( List.rev !outcomes,
          (fst_.Pmem.transient_faults, fst_.Pmem.stuck_stores, fst_.Pmem.poison_read_hits),
          (st.Scrub.repaired, st.Scrub.scrubbed, st.Scrub.migrated, st.Scrub.quarantined),
          Pmem.poisoned_count pm,
          Controller.badblocks ctl ))
  in
  let o1, f1, s1, p1, b1 = run () in
  let o2, f2, s2, p2, b2 = run () in
  Alcotest.(check (list string)) "op outcomes replay" o1 o2;
  Alcotest.(check bool) "fault counters replay" true (f1 = f2);
  Alcotest.(check bool) "scrub counters replay" true (s1 = s2);
  Alcotest.(check int) "residual poison replays" p1 p2;
  Alcotest.(check (list int)) "badblocks replay" b1 b2;
  (* the seeded rates actually exercised the plane *)
  let _, stuck, _ = f1 in
  if stuck = 0 then Alcotest.fail "seed drew no stuck stores; pick a better seed"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "core"
    [
      ( "layout",
        [
          Alcotest.test_case "dentry roundtrip" `Quick test_dentry_roundtrip;
          Alcotest.test_case "free slot" `Quick test_dentry_free_slot;
          Alcotest.test_case "garbage rejected" `Quick test_dentry_garbage_rejected;
          Alcotest.test_case "name too long" `Quick test_name_too_long_rejected;
          Alcotest.test_case "superblock" `Quick test_superblock_roundtrip;
          Alcotest.test_case "atomic create protocol" `Quick test_atomic_create_protocol;
          Alcotest.test_case "index chain" `Quick test_index_page_chain;
          Alcotest.test_case "index cycle detected" `Quick test_index_chain_cycle_detected;
        ] );
      ( "controller",
        [
          Alcotest.test_case "alloc grants access" `Quick test_alloc_pages_grants_access;
          Alcotest.test_case "unallocated faults" `Quick test_unallocated_page_faults;
          Alcotest.test_case "free revokes" `Quick test_free_pages_revokes;
          Alcotest.test_case "free foreign refused" `Quick test_free_foreign_pages_refused;
          Alcotest.test_case "inos distinct" `Quick test_alloc_inos_distinct;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "two procs share a file" `Quick test_two_procs_share_file;
          Alcotest.test_case "exclusive write blocks reader" `Quick
            test_exclusive_write_blocks_reader;
          Alcotest.test_case "shadow restores mode (I4)" `Quick test_shadow_restores_mode;
          Alcotest.test_case "corruption detected and rolled back" `Quick
            test_corruption_detected_and_rolled_back;
          Alcotest.test_case "trust group skips wait" `Quick test_trust_group_shares_without_verify;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "repairs index from checkpoint" `Quick
            test_scrub_repairs_index_from_checkpoint;
          Alcotest.test_case "quarantines data page, degrades file" `Quick
            test_scrub_quarantines_data_page_and_degrades;
          Alcotest.test_case "seeded fault run deterministic" `Quick
            test_seeded_fault_run_deterministic;
        ] );
      ( "access control",
        [
          Alcotest.test_case "map denied without permission" `Quick
            test_map_denied_without_permission;
          Alcotest.test_case "chown requires root" `Quick test_chown_requires_root;
          Alcotest.test_case "chmod only owner" `Quick test_chmod_only_owner;
        ] );
    ]
