(* Generic file system conformance suite.

   Runs the same POSIX-semantics checks against any file system exposed
   through the {!Trio_core.Vfs} dispatch layer, so ArckFS, FPFS, and all
   the baseline models are held to identical behaviour — which is what
   makes the benchmark comparisons apples to apples.  Beyond the
   per-semantic checks, a scripted sequence covering every operation
   with at least one success and one failure asserts errno parity across
   every file system, and a companion check asserts the VFS counters
   track exactly what was dispatched. *)

module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (errno_to_string e)

let expect_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (errno_to_string expected)
  | Error e ->
    Alcotest.(check string) what (errno_to_string expected) (errno_to_string e)

(* Each check is (name, fs -> unit); [run_check] builds a fresh fs. *)
let checks : (string * (Fs.t -> unit)) list =
  [
    ( "create, stat, close",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c1" 0o640) in
        ok "close" (fs.Fs.close fd);
        let st = ok "stat" (fs.Fs.stat "/c1") in
        Alcotest.(check int) "empty" 0 st.st_size;
        Alcotest.(check bool) "regular" true (st.st_ftype = Reg) );
    ( "duplicate create fails",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/c2" 0o644));
        expect_err "dup" EEXIST (fs.Fs.create "/c2" 0o644) );
    ( "missing file errors",
      fun fs ->
        expect_err "open" ENOENT (fs.Fs.open_ "/absent" [ O_RDONLY ]);
        expect_err "stat" ENOENT (fs.Fs.stat "/absent");
        expect_err "unlink" ENOENT (fs.Fs.unlink "/absent") );
    ( "write then read back",
      fun fs ->
        ok "write" (Fs.write_file fs "/c4" "conformance payload");
        Alcotest.(check string) "read" "conformance payload" (ok "read" (Fs.read_file fs "/c4")) );
    ( "pwrite patches a region",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c5" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 64 'a')));
        ignore (ok "pwrite" (fs.Fs.pwrite fd (Bytes.make 8 'b') 8));
        let buf = Bytes.create 64 in
        ignore (ok "pread" (fs.Fs.pread fd buf 0));
        Alcotest.(check string) "patched"
          ("aaaaaaaa" ^ "bbbbbbbb" ^ String.make 48 'a')
          (Bytes.to_string buf) );
    ( "read past eof returns partial",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c6" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 10 'x')));
        let buf = Bytes.create 100 in
        Alcotest.(check int) "partial" 10 (ok "pread" (fs.Fs.pread fd buf 0));
        Alcotest.(check int) "eof" 0 (ok "pread" (fs.Fs.pread fd buf 10)) );
    ( "append grows the file",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c7" 0o644) in
        ignore (ok "a1" (fs.Fs.append fd (Bytes.make 100 'p')));
        ignore (ok "a2" (fs.Fs.append fd (Bytes.make 100 'q')));
        Alcotest.(check int) "size" 200 (ok "stat" (fs.Fs.stat "/c7")).st_size );
    ( "truncate shrink and grow",
      fun fs ->
        ok "write" (Fs.write_file fs "/c8" (String.make 5000 'z'));
        ok "shrink" (fs.Fs.truncate "/c8" 10);
        Alcotest.(check int) "shrunk" 10 (ok "stat" (fs.Fs.stat "/c8")).st_size;
        ok "grow" (fs.Fs.truncate "/c8" 100);
        Alcotest.(check int) "grown" 100 (ok "stat" (fs.Fs.stat "/c8")).st_size;
        let content = ok "read" (Fs.read_file fs "/c8") in
        Alcotest.(check string) "zero fill" (String.make 90 '\000') (String.sub content 10 90) );
    ( "mkdir nesting and ENOTDIR",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/d" 0o755);
        ok "mkdir2" (fs.Fs.mkdir "/d/e" 0o755);
        ignore (ok "create" (fs.Fs.create "/d/e/f" 0o644));
        expect_err "through file" ENOTDIR (fs.Fs.create "/d/e/f/g" 0o644) );
    ( "readdir lists entries",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/rd" 0o755);
        ignore (ok "a" (fs.Fs.create "/rd/a" 0o644));
        ignore (ok "b" (fs.Fs.create "/rd/b" 0o644));
        ok "sub" (fs.Fs.mkdir "/rd/sub" 0o755);
        let names =
          ok "readdir" (fs.Fs.readdir "/rd") |> List.map (fun e -> e.d_name) |> List.sort compare
        in
        Alcotest.(check (list string)) "names" [ "a"; "b"; "sub" ] names );
    ( "readdir entry set is order-independent",
      (* File systems are free to pick their own readdir order (ArckFS
         returns ascending (name-hash, name) from the B-link index;
         baselines return page-scan order) — but after the same mutation
         history every one of them must report the exact same entry
         *set*, with no duplicates and no ghosts.  Checked by sorting
         into one canonical order before comparing. *)
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/es" 0o755);
        let names = List.init 30 (fun i -> Printf.sprintf "n%02d" i) in
        List.iter (fun n -> ignore (ok n (fs.Fs.create ("/es/" ^ n) 0o644))) names;
        ok "subdir" (fs.Fs.mkdir "/es/sub" 0o755);
        ok "unlink" (fs.Fs.unlink "/es/n07");
        ok "rename" (fs.Fs.rename "/es/n11" "/es/renamed");
        let got =
          ok "readdir" (fs.Fs.readdir "/es")
          |> List.map (fun e -> (e.d_name, e.d_ftype = Dir))
          |> List.sort compare
        in
        let rec no_dup = function
          | a :: (b :: _ as tl) -> a <> b && no_dup tl
          | _ -> true
        in
        Alcotest.(check bool) "no duplicate entries" true (no_dup got);
        let expected =
          (("renamed", false) :: ("sub", true)
          :: List.filter_map
               (fun n -> if n = "n07" || n = "n11" then None else Some (n, false))
               names)
          |> List.sort compare
        in
        Alcotest.(check (list (pair string bool))) "entry set" expected got );
    ( "unlink removes and frees the name",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/u" 0o644));
        ok "unlink" (fs.Fs.unlink "/u");
        expect_err "gone" ENOENT (fs.Fs.stat "/u");
        ignore (ok "recreate" (fs.Fs.create "/u" 0o644)) );
    ( "rmdir requires empty",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/re" 0o755);
        ignore (ok "create" (fs.Fs.create "/re/x" 0o644));
        expect_err "not empty" ENOTEMPTY (fs.Fs.rmdir "/re");
        ok "unlink" (fs.Fs.unlink "/re/x");
        ok "rmdir" (fs.Fs.rmdir "/re") );
    ( "unlink of a directory is refused",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/ud" 0o755);
        expect_err "EISDIR" EISDIR (fs.Fs.unlink "/ud") );
    ( "rename moves content",
      fun fs ->
        ok "mkdir a" (fs.Fs.mkdir "/ra" 0o755);
        ok "mkdir b" (fs.Fs.mkdir "/rb" 0o755);
        ok "write" (Fs.write_file fs "/ra/f" "moved-payload");
        ok "rename" (fs.Fs.rename "/ra/f" "/rb/g");
        expect_err "src gone" ENOENT (fs.Fs.stat "/ra/f");
        Alcotest.(check string) "content" "moved-payload" (ok "read" (Fs.read_file fs "/rb/g")) );
    ( "chmod changes the mode",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/cm" 0o644));
        ok "chmod" (fs.Fs.chmod "/cm" 0o600);
        Alcotest.(check int) "mode" 0o600 (ok "stat" (fs.Fs.stat "/cm")).st_mode );
    ( "fsync succeeds on an open fd",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/fy" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 10 's')));
        ok "fsync" (fs.Fs.fsync fd);
        expect_err "bad fd" EBADF (fs.Fs.fsync 987654) );
    ( "multi-page data integrity",
      fun fs ->
        let data = String.init 20000 (fun i -> Char.chr (i * 31 mod 256)) in
        ok "write" (Fs.write_file fs "/mp" data);
        Alcotest.(check bool) "equal" true (String.equal data (ok "read" (Fs.read_file fs "/mp"))) );
  ]

(* ------------------------------------------------------------------ *)
(* Errno parity: one scripted sequence covering all fifteen operations,
   each with at least one success and one failure.  Every file system
   must produce the exact same op:outcome trace. *)

let scripted_sequence fs =
  let out = ref [] in
  let tag name r =
    out := (name ^ ":" ^ match r with Ok _ -> "ok" | Error e -> errno_to_string e) :: !out
  in
  let badfd = 987654 in
  let buf = Bytes.make 8 'x' in
  tag "mkdir" (fs.Fs.mkdir "/p" 0o755);
  tag "mkdir" (fs.Fs.mkdir "/p" 0o755);
  let fdr = fs.Fs.create "/p/f" 0o644 in
  tag "create" fdr;
  tag "create" (fs.Fs.create "/p/f" 0o644);
  let fd = match fdr with Ok fd -> fd | Error _ -> badfd in
  let fdr2 = fs.Fs.open_ "/p/f" [ O_RDONLY ] in
  tag "open" fdr2;
  tag "open" (fs.Fs.open_ "/nope" [ O_RDONLY ]);
  (match fdr2 with Ok fd2 -> tag "close" (fs.Fs.close fd2) | Error _ -> ());
  tag "append" (fs.Fs.append fd buf);
  tag "append" (fs.Fs.append badfd buf);
  tag "pwrite" (fs.Fs.pwrite fd buf 0);
  tag "pwrite" (fs.Fs.pwrite badfd buf 0);
  tag "pread" (fs.Fs.pread fd buf 0);
  tag "pread" (fs.Fs.pread badfd buf 0);
  tag "fsync" (fs.Fs.fsync fd);
  tag "fsync" (fs.Fs.fsync badfd);
  tag "close" (fs.Fs.close fd);
  tag "close" (fs.Fs.close badfd);
  tag "stat" (fs.Fs.stat "/p/f");
  tag "stat" (fs.Fs.stat "/nope");
  tag "truncate" (fs.Fs.truncate "/p/f" 4);
  tag "truncate" (fs.Fs.truncate "/nope" 4);
  tag "chmod" (fs.Fs.chmod "/p/f" 0o600);
  tag "chmod" (fs.Fs.chmod "/nope" 0o600);
  tag "readdir" (fs.Fs.readdir "/p");
  tag "readdir" (fs.Fs.readdir "/nope");
  tag "rename" (fs.Fs.rename "/p/f" "/p/g");
  tag "rename" (fs.Fs.rename "/nope" "/p/x");
  tag "unlink" (fs.Fs.unlink "/p");
  tag "rmdir" (fs.Fs.rmdir "/p");
  tag "unlink" (fs.Fs.unlink "/p/g");
  tag "unlink" (fs.Fs.unlink "/p/g");
  tag "rmdir" (fs.Fs.rmdir "/p");
  tag "rmdir" (fs.Fs.rmdir "/p");
  List.rev !out

let expected_sequence =
  [
    "mkdir:ok"; "mkdir:EEXIST";
    "create:ok"; "create:EEXIST";
    "open:ok"; "open:ENOENT";
    "close:ok";
    "append:ok"; "append:EBADF";
    "pwrite:ok"; "pwrite:EBADF";
    "pread:ok"; "pread:EBADF";
    "fsync:ok"; "fsync:EBADF";
    "close:ok"; "close:EBADF";
    "stat:ok"; "stat:ENOENT";
    "truncate:ok"; "truncate:ENOENT";
    "chmod:ok"; "chmod:ENOENT";
    "readdir:ok"; "readdir:ENOENT";
    "rename:ok"; "rename:ENOENT";
    "unlink:EISDIR"; "rmdir:ENOTEMPTY";
    "unlink:ok"; "unlink:ENOENT";
    "rmdir:ok"; "rmdir:ENOENT";
  ]

let parity_check vfs =
  Alcotest.(check (list string))
    "op/errno trace" expected_sequence
    (scripted_sequence (Vfs.ops vfs))

let is_ok_label l = match String.split_on_char ':' l with [ _; "ok" ] -> true | _ -> false

(* The VFS counters must tally exactly what the script dispatched. *)
let counters_check vfs =
  let labels = scripted_sequence (Vfs.ops vfs) in
  List.iter
    (fun kind ->
      let name = Vfs.op_name kind in
      let mine =
        List.filter
          (fun l -> match String.split_on_char ':' l with op :: _ -> op = name | [] -> false)
          labels
      in
      let errs = List.length (List.filter (fun l -> not (is_ok_label l)) mine) in
      let s = Vfs.op_stats vfs kind in
      Alcotest.(check int) (name ^ " count") (List.length mine) s.Vfs.count;
      Alcotest.(check int) (name ^ " errors") errs s.Vfs.errors;
      Alcotest.(check int)
        (name ^ " errno sum") errs
        (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Vfs.errnos);
      if s.Vfs.count > 0 then begin
        Alcotest.(check bool) (name ^ " p50<=p99") true (s.Vfs.p50 <= s.Vfs.p99 +. 1e-9);
        Alcotest.(check bool) (name ^ " p99<=max") true (s.Vfs.p99 <= s.Vfs.max +. 1e-9)
      end)
    Vfs.all_ops;
  Alcotest.(check int) "total ops" (List.length labels) (Vfs.total_ops vfs)

(* Every check now receives the instrumented VFS handle. *)
let vfs_checks : (string * (Vfs.t -> unit)) list =
  List.map (fun (name, c) -> (name, fun vfs -> c (Vfs.ops vfs))) checks
  @ [
      ("errno parity across all ops", parity_check);
      ("vfs counters track dispatched ops", counters_check);
    ]

(* Page-accounting invariant after a scenario: with every LibFS cleanly
   unmounted, the controller's books must balance and a GC pass must
   find nothing to reclaim — clean shutdown never looks like a leak.
   Call after tearing the scenario's mounts down. *)
let accounting ctl =
  let module C = Trio_core.Controller in
  let gc = C.gc_once ctl in
  if not gc.C.gc_invariant_ok then
    Alcotest.failf "page accounting broken after scenario: %a" C.pp_gc_report gc;
  if gc.C.gc_leaked > 0 || gc.C.gc_reclaimed_pages > 0 then
    Alcotest.failf "phantom orphans after clean shutdown: %a" C.pp_gc_report gc

(* Build the alcotest cases for a given fs constructor (one fresh file
   system per check). *)
let suite ~make_fs =
  List.map
    (fun (name, check) -> Alcotest.test_case name `Quick (fun () -> make_fs check))
    vfs_checks
