examples/quickstart.mli:
