examples/kv_mailstore.mli:
