examples/attack_demo.ml: Format List Printf Trio_attacks
