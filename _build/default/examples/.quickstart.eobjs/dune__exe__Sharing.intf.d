examples/sharing.mli:
