examples/sharing.ml: Arckfs Bytes Printf Trio_core Trio_sim Trio_workloads
