examples/attack_demo.mli:
