examples/deep_paths.ml: Arckfs Fpfs List Printf String Trio_core Trio_sim Trio_workloads
