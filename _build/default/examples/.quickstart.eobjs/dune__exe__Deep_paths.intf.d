examples/deep_paths.mli:
