examples/kv_mailstore.ml: Arckfs Bytes Kvfs Printf String Trio_core Trio_sim Trio_workloads
