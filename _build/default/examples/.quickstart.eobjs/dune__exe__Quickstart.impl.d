examples/quickstart.ml: Arckfs Bytes Char List Printf String Trio_core Trio_nvm Trio_sim Trio_workloads
