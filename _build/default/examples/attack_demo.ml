(* Metadata integrity under attack (paper §4.3, §6.5).

     dune exec examples/attack_demo.exe

   A malicious LibFS gains legitimate write access to a shared directory
   and then corrupts the core state with raw stores.  At the sharing
   point the integrity verifier detects the corruption, the kernel
   controller rolls the file back to its checkpoint, and other processes
   keep seeing a consistent namespace. *)

module Attacks = Trio_attacks.Attacks

let () =
  print_endline "== eleven handcrafted attacks by a malicious LibFS ==";
  print_endline "(each runs in a fresh simulated machine)\n";
  let outcomes = Attacks.run_handcrafted () in
  List.iter (fun o -> Format.printf "  %a@." Attacks.pp_outcome o) outcomes;
  let all_detected = List.for_all (fun o -> o.Attacks.a_detected) outcomes in
  let all_recovered = List.for_all (fun o -> o.Attacks.a_recovered) outcomes in
  Printf.printf "\nall detected: %b; namespace consistent after every attack: %b\n\n"
    all_detected all_recovered;

  print_endline "== scripted corruption campaign (buggy LibFS emulation) ==";
  let r = Attacks.run_campaign ~seeds:6 () in
  Printf.printf
    "  %d corruption scenarios: %d detected or benign, %d left a consistent namespace\n"
    r.Attacks.c_total r.Attacks.c_detected r.Attacks.c_consistent
