lib/workloads/fio.ml: Array Bytes Printf Rig Runner Trio_core Trio_sim Trio_util
