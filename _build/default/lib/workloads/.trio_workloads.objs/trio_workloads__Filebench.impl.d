lib/workloads/filebench.ml: Array Bytes Kvfs List Printf Rig Runner String Trio_core Trio_util
