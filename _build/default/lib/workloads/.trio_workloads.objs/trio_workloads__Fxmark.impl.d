lib/workloads/fxmark.ml: Array List Printf Rig Runner Trio_core Trio_util
