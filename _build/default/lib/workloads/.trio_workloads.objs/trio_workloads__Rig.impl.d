lib/workloads/rig.ml: Arckfs Fpfs Lazy Trio_baselines Trio_core Trio_nvm Trio_sim
