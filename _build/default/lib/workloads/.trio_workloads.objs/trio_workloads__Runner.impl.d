lib/workloads/runner.ml: Fmt Trio_nvm Trio_sim
