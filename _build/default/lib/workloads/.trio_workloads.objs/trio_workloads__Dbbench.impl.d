lib/workloads/dbbench.ml: Fmt Minidb Printf String Trio_core Trio_sim Trio_util
