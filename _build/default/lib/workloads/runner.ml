(* Benchmark measurement harness.

   Spawns N simulated threads pinned to CPUs the way the paper's
   harness pins them (socket by socket), runs a per-thread operation
   closure in a loop, and measures throughput over virtual time.

   A run ends when the total operation budget is consumed or the
   virtual-time budget expires — whichever is first.  Throughput is
   ops (or bytes) per virtual second, so results are deterministic. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Numa = Trio_nvm.Numa

type result = {
  threads : int;
  ops : int;
  bytes : float;
  elapsed_ns : float;
  ops_per_us : float;
  gib_per_s : float;
}

let pp_result ppf r =
  Fmt.pf ppf "%3d thr: %8.3f ops/us %8.2f GiB/s (%d ops, %.2f ms)" r.threads r.ops_per_us
    r.gib_per_s r.ops (r.elapsed_ns /. 1e6)

(* Must be called from inside a fiber.

   Each thread first runs [warmup_ops] unmeasured iterations (filling
   allocation caches, faulting in mappings) and then waits at a barrier;
   the clock starts when every thread is warm, like the paper's
   harness discarding the ramp-up. *)
let run ~sched ~topo ~threads ?(max_ops = 100_000) ?(max_ns = 50.0e6) ?(warmup_ops = 4) ~body ()
    =
  let total_ops = ref 0 in
  let total_bytes = ref 0.0 in
  let warm = Sync.Waitgroup.create threads in
  let gate = Sync.Ivar.create () in
  let wg = Sync.Waitgroup.create threads in
  let t0 = ref (Sched.now sched) in
  let deadline = ref infinity in
  let end_time = ref 0.0 in
  for tid = 0 to threads - 1 do
    let cpu = Numa.cpu_of_thread topo tid in
    Sched.spawn ~cpu sched (fun () ->
        (try
           for _ = 1 to warmup_ops do
             ignore (body ~tid)
           done;
           Sync.Waitgroup.done_ warm;
           Sync.Ivar.read gate;
           let continue_ = ref true in
           while !continue_ do
             let bytes = body ~tid in
             total_ops := !total_ops + 1;
             total_bytes := !total_bytes +. float_of_int bytes;
             if !total_ops >= max_ops || Sched.now sched >= !deadline then continue_ := false
           done
         with Exit ->
           (* a body may stop its thread early (pool exhausted); make
              sure the barrier is not deadlocked *)
           if not (Sync.Ivar.is_full gate) then Sync.Waitgroup.done_ warm);
        if Sched.now sched > !end_time then end_time := Sched.now sched;
        Sync.Waitgroup.done_ wg)
  done;
  Sync.Waitgroup.wait warm;
  t0 := Sched.now sched;
  deadline := !t0 +. max_ns;
  Sync.Ivar.fill gate ();
  Sync.Waitgroup.wait wg;
  let t0 = !t0 in
  let elapsed = max 1.0 (!end_time -. t0) in
  {
    threads;
    ops = !total_ops;
    bytes = !total_bytes;
    elapsed_ns = elapsed;
    ops_per_us = float_of_int !total_ops /. (elapsed /. 1e3);
    gib_per_s = !total_bytes /. elapsed *. 1e9 /. (1024.0 *. 1024.0 *. 1024.0);
  }

(* Latency of a single operation, averaged over [iters] runs. *)
let time_op ~sched ~iters f =
  let t0 = Sched.now sched in
  for _ = 1 to iters do
    f ()
  done;
  (Sched.now sched -. t0) /. float_of_int iters
