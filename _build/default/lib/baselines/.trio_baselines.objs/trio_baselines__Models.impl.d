lib/baselines/models.ml: Vfs
