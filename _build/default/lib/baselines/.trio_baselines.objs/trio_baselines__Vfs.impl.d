lib/baselines/vfs.ml: Arckfs Array Bytes Hashtbl List Result Trio_core Trio_nvm Trio_sim Trio_util
