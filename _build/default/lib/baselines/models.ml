(* Concrete cost models for the baseline file systems of the paper's
   evaluation (§6.1).

   Each record instantiates the Vfs engine with the architectural costs
   of one system.  The constants are calibrated so that the *relations*
   the paper reports hold (who wins, by what rough factor, where the
   knees are); see EXPERIMENTS.md for the shape-by-shape comparison. *)

open Vfs

(* ext4 with DAX: mature journaling kernel FS.  The jbd2 journal is a
   shared resource; fsync pays a transaction commit. *)
let ext4 =
  {
    m_name = "ext4";
    m_kernel_data = true;
    m_kernel_meta = true;
    m_meta_ipc = 0.0;
    m_journal = J_global 900.0;
    m_placement = P_node 0;
    m_create_cpu = 2600.0;
    m_unlink_cpu = 2200.0;
    m_open_cpu = 1100.0;
    m_stat_cpu = 700.0;
    m_write_cpu = 900.0;
    m_read_cpu = 650.0;
    m_index_cpu_per_page = 120.0; (* extent tree *)
    m_fsync_cost = 9000.0;
    m_rename_cpu = 2400.0;
  }

(* ext4 over dm-stripe across all NVM nodes (§6.1 "ext4(RAID0)"). *)
let ext4_raid0 = { ext4 with m_name = "ext4-raid0"; m_placement = P_striped }

(* PMFS: Intel's early PM file system; fine-grained journaling but a
   shared transaction path. *)
let pmfs =
  {
    m_name = "pmfs";
    m_kernel_data = true;
    m_kernel_meta = true;
    m_meta_ipc = 0.0;
    m_journal = J_global 450.0;
    m_placement = P_node 0;
    m_create_cpu = 2000.0;
    m_unlink_cpu = 1900.0;
    m_open_cpu = 800.0;
    m_stat_cpu = 500.0;
    m_write_cpu = 500.0;
    m_read_cpu = 420.0;
    m_index_cpu_per_page = 60.0;
    m_fsync_cost = 200.0;
    m_rename_cpu = 1600.0;
  }

(* NOVA: log-structured per-inode metadata, DRAM radix indexes. *)
let nova =
  {
    m_name = "nova";
    m_kernel_data = true;
    m_kernel_meta = true;
    m_meta_ipc = 0.0;
    m_journal = J_per_inode 280.0;
    m_placement = P_node 0;
    m_create_cpu = 1750.0;
    m_unlink_cpu = 1600.0;
    m_open_cpu = 700.0;
    m_stat_cpu = 450.0;
    m_write_cpu = 430.0;
    m_read_cpu = 380.0;
    m_index_cpu_per_page = 55.0; (* radix tree walk *)
    m_fsync_cost = 120.0;
    m_rename_cpu = 1500.0;
  }

(* WineFS: hugepage-aware allocator, per-CPU journals. *)
let winefs =
  {
    m_name = "winefs";
    m_kernel_data = true;
    m_kernel_meta = true;
    m_meta_ipc = 0.0;
    m_journal = J_per_cpu 240.0;
    m_placement = P_node 0;
    m_create_cpu = 1600.0;
    m_unlink_cpu = 1450.0;
    m_open_cpu = 700.0;
    m_stat_cpu = 450.0;
    m_write_cpu = 440.0;
    m_read_cpu = 380.0;
    m_index_cpu_per_page = 40.0; (* hugepage extents *)
    m_fsync_cost = 120.0;
    m_rename_cpu = 1400.0;
  }

(* OdinFS: NOVA/WineFS-style metadata plus opportunistic delegation for
   the data path.  Requires the machine-wide delegation engine. *)
let odinfs ~delegation =
  {
    m_name = "odinfs";
    m_kernel_data = true;
    m_kernel_meta = true;
    m_meta_ipc = 0.0;
    m_journal = J_per_cpu 240.0;
    m_placement = P_delegated delegation;
    m_create_cpu = 1650.0;
    m_unlink_cpu = 1500.0;
    m_open_cpu = 700.0;
    m_stat_cpu = 450.0;
    m_write_cpu = 450.0;
    m_read_cpu = 390.0;
    m_index_cpu_per_page = 45.0;
    m_fsync_cost = 120.0;
    m_rename_cpu = 1450.0;
  }

(* SplitFS: data operations run in userspace over mmapped ext4 files (no
   trap); metadata operations pass through to ext4, plus the relink
   bookkeeping. *)
let splitfs =
  {
    ext4 with
    m_name = "splitfs";
    m_kernel_data = false;
    m_write_cpu = 420.0;
    m_read_cpu = 450.0;
    m_index_cpu_per_page = 70.0;
    m_create_cpu = 3100.0; (* ext4 create + staging-file bookkeeping *)
    m_fsync_cost = 2500.0; (* relink *)
  }

(* Strata: userspace LibFS appends data and metadata to a per-process
   NVM log; a trusted KernFS digests the log in the background (charged
   as write amplification) and handles leases over IPC. *)
let strata =
  {
    m_name = "strata";
    m_kernel_data = false;
    m_kernel_meta = false;
    m_meta_ipc = 1800.0; (* lease/metadata RPC to KernFS, amortized *)
    m_journal = J_log_digest { log_bytes = 256; digest_factor = 1.0 };
    m_placement = P_node 0;
    m_create_cpu = 2100.0; (* log append + digestion accounting (44.5% of create) *)
    m_unlink_cpu = 1800.0;
    m_open_cpu = 900.0;
    m_stat_cpu = 600.0;
    m_write_cpu = 350.0;
    m_read_cpu = 800.0; (* reads must search the update log first *)
    m_index_cpu_per_page = 90.0;
    m_fsync_cost = 400.0;
    m_rename_cpu = 2000.0;
  }

let all ~delegation =
  [ ext4; ext4_raid0; pmfs; nova; winefs; odinfs ~delegation; splitfs; strata ]

(* Build a mounted instance. *)
let mount ~sched ~pmem ?store_data model =
  let t = Vfs.create ~sched ~pmem ~model ?store_data () in
  Vfs.ops t
