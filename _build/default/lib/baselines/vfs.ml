(* The baseline-file-system engine: a kernel VFS with pluggable per-FS
   cost models.

   The paper compares ArckFS against ext4(-DAX), PMFS, NOVA, WineFS,
   OdinFS (in-kernel) and SplitFS, Strata (userspace with a trusted
   metadata entity).  Re-implementing each of those systems byte-for-byte
   is neither possible nor necessary: the comparisons in the evaluation
   are *architectural*.  What each baseline pays per operation is well
   documented — kernel traps, VFS locking, journaling discipline, log +
   digestion, delegation — and those are exactly the costs this engine
   charges while executing a real namespace (so every workload, including
   the mini-LevelDB, runs unmodified and reads back real bytes).

   Scalability behaviour comes from first principles, not magic
   constants:
   - every operation of a kernel FS pays the trap cost;
   - the final path component bounces a dentry-refcount cacheline
     (a [Hotspot]), which is why opening the same file from many
     threads collapses (FxMark MRPH) while private files scale (MRPL);
   - directory modifications serialize on the parent's inode lock
     (MWCM flat for every kernel FS);
   - rename takes the global rename lock (MWRL/MWRM flat);
   - inode creation touches the inode-cache insertion point;
   - journaling: ext4/PMFS serialize on a global journal; WineFS uses
     per-CPU journals; NOVA appends to per-inode logs; Strata appends to
     a userspace log whose digestion doubles the write volume;
   - data lands on NVM node 0 (kernel PM file systems are mounted on a
     single NUMA namespace), striped over all nodes for ext4 on RAID0,
     or through the shared delegation engine for OdinFS. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Resource = Trio_sim.Resource
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Htbl = Trio_util.Htbl
module Delegation = Arckfs.Delegation
open Trio_core.Fs_types

type journal_kind =
  | J_none
  | J_global of float (* cost per metadata update, serialized *)
  | J_per_cpu of float
  | J_per_inode of float
  | J_log_digest of { log_bytes : int; digest_factor : float }

type data_placement =
  | P_node of int
  | P_striped
  | P_delegated of Delegation.t

type model = {
  m_name : string;
  m_kernel_data : bool; (* data ops enter the kernel *)
  m_kernel_meta : bool; (* metadata ops enter the kernel *)
  m_meta_ipc : float; (* userspace FS: RPC to the trusted entity per metadata op *)
  m_journal : journal_kind;
  m_placement : data_placement;
  m_create_cpu : float;
  m_unlink_cpu : float;
  m_open_cpu : float;
  m_stat_cpu : float;
  m_write_cpu : float; (* fixed software cost per write op *)
  m_read_cpu : float;
  m_index_cpu_per_page : float; (* per-page indexing cost *)
  m_fsync_cost : float;
  m_rename_cpu : float;
}

type vnode = {
  v_ino : int;
  v_ftype : ftype;
  mutable v_mode : int;
  mutable v_uid : int;
  mutable v_gid : int;
  mutable v_size : int;
  mutable v_data : Bytes.t; (* capacity >= v_size when the FS stores data *)
  v_children : (string, vnode) Htbl.t; (* empty for regular files *)
  v_rwlock : Sync.Rwlock.t;
  v_ref : Resource.Hotspot.t; (* dentry refcount cacheline *)
  mutable v_mtime : float;
  mutable v_ctime : float;
}

type fd_state = { fd_node : vnode }

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  topo : Numa.t;
  model : model;
  root : vnode;
  mutable next_ino : int;
  fds : (int, fd_state) Hashtbl.t;
  fd_counters : int array;
  rename_lock : Sync.Mutex.t;
  journal_lock : Sync.Mutex.t;
  icache : Resource.Hotspot.t;
  (* dm-stripe's per-bio remapping work: the kernel-side bottleneck that
     keeps ext4(RAID0) from scaling small reads (paper §6.3) *)
  stripe_remap : Resource.Hotspot.t;
  mutable small_access_seq : int;
  store_data : bool;
}

let ( let* ) = Result.bind

let new_vnode t ~ftype ~mode =
  t.next_ino <- t.next_ino + 1;
  {
    v_ino = t.next_ino;
    v_ftype = ftype;
    v_mode = mode;
    v_uid = 0;
    v_gid = 0;
    v_size = 0;
    v_data = Bytes.empty;
    v_children = Htbl.create_string ~initial_size:8 ();
    v_rwlock = Sync.Rwlock.create ();
    v_ref = Resource.Hotspot.create ~base:15.0 ~alpha:40.0;
    v_mtime = 0.0;
    v_ctime = 0.0;
  }

let create ~sched ~pmem ~model ?(store_data = true) () =
  let topo = Pmem.topo pmem in
  let t =
    {
      sched;
      pmem;
      topo;
      model;
      root =
        {
          v_ino = 1;
          v_ftype = Dir;
          v_mode = 0o777;
          v_uid = 0;
          v_gid = 0;
          v_size = 0;
          v_data = Bytes.empty;
          v_children = Htbl.create_string ();
          v_rwlock = Sync.Rwlock.create ();
          v_ref = Resource.Hotspot.create ~base:15.0 ~alpha:40.0;
          v_mtime = 0.0;
          v_ctime = 0.0;
        };
      next_ino = 1;
      fds = Hashtbl.create 64;
      fd_counters = Array.make (Numa.total_cpus topo) 0;
      rename_lock = Sync.Mutex.create ();
      journal_lock = Sync.Mutex.create ();
      icache = Resource.Hotspot.create ~base:60.0 ~alpha:90.0;
      stripe_remap = Resource.Hotspot.create ~base:150.0 ~alpha:150.0;
      small_access_seq = 0;
      store_data;
    }
  in
  t

(* ------------------------------------------------------------------ *)
(* Cost primitives *)

let trap t ~data =
  let m = t.model in
  if (data && m.m_kernel_data) || ((not data) && m.m_kernel_meta) then
    Sched.cpu_work Perf.Cpu.syscall;
  if (not data) && m.m_meta_ipc > 0.0 then Sched.cpu_work m.m_meta_ipc

(* NVM traffic for the data path, routed by the model's placement. *)
let node_addr t n = ((n * Pmem.pages_per_node t.pmem) + (Pmem.pages_per_node t.pmem / 2)) * Pmem.page_size

let data_io t ~write ~len =
  if len > 0 then begin
    let m = t.model in
    Sched.cpu_work (Perf.Cpu.memcpy_per_byte *. float_of_int len);
    match m.m_placement with
    | P_node n -> Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t n) ~len ~write
    | P_striped ->
      (* dm-stripe: per-bio remapping through the device-mapper layer
         (a shared kernel path), then per-node chunks *)
      Resource.Hotspot.touch t.stripe_remap;
      let nodes = Numa.nodes t.topo in
      let stripe = 2 * 1024 * 1024 in
      let remaining = ref len and node = ref (Sched.current_tid () mod nodes) in
      while !remaining > 0 do
        let chunk = min !remaining stripe in
        Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t !node) ~len:chunk ~write;
        node := (!node + 1) mod nodes;
        remaining := !remaining - chunk
      done
    | P_delegated dlg ->
      if Delegation.should_delegate dlg ~write ~len then begin
        (* data is striped at 64 KiB granularity: split the request into
           per-stripe chunks round-robined over the nodes *)
        let nodes = Numa.nodes t.topo in
        let stripe = 64 * 1024 in
        t.small_access_seq <- t.small_access_seq + 1;
        let first = t.small_access_seq in
        let rec chunks acc off i =
          if off >= len then List.rev acc
          else
            let l = min stripe (len - off) in
            chunks ((node_addr t ((first + i) mod nodes), l) :: acc) (off + l) (i + 1)
        in
        Delegation.touch_all dlg ~actor:Pmem.kernel_actor ~write (chunks [] 0 0)
      end
      else begin
        (* OdinFS data is striped across nodes, so a small non-delegated
           access lands on an effectively random (mostly remote) node *)
        let nodes = Numa.nodes t.topo in
        t.small_access_seq <- t.small_access_seq + 1;
        let n = (Sched.current_tid () + t.small_access_seq) mod nodes in
        Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t n) ~len ~write
      end
  end

(* Journaling cost for one metadata update. *)
let journal t =
  match t.model.m_journal with
  | J_none -> ()
  | J_global cost ->
    Sync.Mutex.lock t.journal_lock;
    Sched.cpu_work cost;
    Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t 0) ~len:64 ~write:true;
    Sync.Mutex.unlock t.journal_lock
  | J_per_cpu cost ->
    Sched.cpu_work cost;
    Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t 0) ~len:64 ~write:true
  | J_per_inode cost ->
    Sched.cpu_work cost;
    Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t 0) ~len:64 ~write:true
  | J_log_digest { log_bytes; digest_factor = _ } ->
    (* metadata goes to the private log; digestion is charged on fsync
       and amortized on writes *)
    let n = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
    Pmem.touch t.pmem ~actor:Pmem.kernel_actor ~addr:(node_addr t n) ~len:log_bytes ~write:true

(* Strata-style write amplification for data. *)
let digest_amplification t ~len =
  match t.model.m_journal with
  | J_log_digest { digest_factor; _ } when len > 0 ->
    data_io t ~write:true ~len:(int_of_float (float_of_int len *. digest_factor))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Path walk *)

let walk_components t components =
  let rec go node = function
    | [] -> Ok node
    | name :: rest -> (
      Sched.cpu_work (Perf.Cpu.hash_lookup +. Perf.Cpu.dcache_step);
      if node.v_ftype <> Dir then Error ENOTDIR
      else
        match Htbl.find node.v_children name with
        | None -> Error ENOENT
        | Some child ->
          (* RCU-style walk: only the final dentry bounces its refcount *)
          if rest = [] then Resource.Hotspot.touch child.v_ref;
          go child rest)
  in
  go t.root components

let walk t path =
  match split_path path with None -> Error EINVAL | Some c -> walk_components t c

let walk_parent t path =
  match dirname_basename path with
  | None -> Error EINVAL
  | Some (dir, name) ->
    if not (valid_name name) then Error EINVAL
    else
      let* parent = walk_components t dir in
      if parent.v_ftype <> Dir then Error ENOTDIR else Ok (parent, name)

(* ------------------------------------------------------------------ *)
(* fd table *)

let alloc_fd t =
  let cpu = Sched.current_cpu () in
  Sched.cpu_work Perf.Cpu.fd_alloc;
  let n = t.fd_counters.(cpu) in
  t.fd_counters.(cpu) <- n + 1;
  (cpu * (1 lsl 20)) + n + 1

let fd_lookup t fd = match Hashtbl.find_opt t.fds fd with Some s -> Ok s | None -> Error EBADF

(* ------------------------------------------------------------------ *)
(* Data plumbing (semantic content, stored when [store_data]) *)

let ensure_capacity v n =
  if Bytes.length v.v_data < n then begin
    let cap = max n (max 4096 (2 * Bytes.length v.v_data)) in
    let bigger = Bytes.make cap '\000' in
    Bytes.blit v.v_data 0 bigger 0 (Bytes.length v.v_data);
    v.v_data <- bigger
  end

let vnode_write t v ~buf ~off =
  let len = Bytes.length buf in
  let end_ = off + len in
  if t.store_data then begin
    ensure_capacity v end_;
    Bytes.blit buf 0 v.v_data off len
  end;
  if end_ > v.v_size then v.v_size <- end_

let vnode_read t v ~buf ~off =
  let len = max 0 (min (Bytes.length buf) (v.v_size - off)) in
  if len > 0 then
    if t.store_data then Bytes.blit v.v_data off buf 0 len
    else Bytes.fill buf 0 len '\000';
  len

(* ------------------------------------------------------------------ *)
(* Operations *)

let op_create t path mode =
  trap t ~data:false;
  let* parent, name = walk_parent t path in
  Sync.Rwlock.write_lock parent.v_rwlock;
  Sched.cpu_work t.model.m_create_cpu;
  let result =
    if Htbl.mem parent.v_children name then Error EEXIST
    else begin
      Resource.Hotspot.touch t.icache;
      journal t;
      let v = new_vnode t ~ftype:Reg ~mode in
      v.v_mtime <- Sched.now t.sched;
      v.v_ctime <- Sched.now t.sched;
      Htbl.replace parent.v_children name v;
      parent.v_size <- parent.v_size + 1;
      Ok v
    end
  in
  Sync.Rwlock.write_unlock parent.v_rwlock;
  match result with
  | Error e -> Error e
  | Ok v ->
    let fd = alloc_fd t in
    Hashtbl.replace t.fds fd { fd_node = v };
    Ok fd

let op_open t path flags =
  trap t ~data:false;
  Sched.cpu_work t.model.m_open_cpu;
  match walk t path with
  | Ok v ->
    if v.v_ftype = Dir then Error EISDIR
    else begin
      if List.mem O_TRUNC flags then begin
        journal t;
        v.v_size <- 0
      end;
      let fd = alloc_fd t in
      Hashtbl.replace t.fds fd { fd_node = v };
      Ok fd
    end
  | Error ENOENT when List.mem O_CREAT flags -> op_create t path 0o644
  | Error e -> Error e

let op_close t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error EBADF
  | Some _ ->
    Hashtbl.remove t.fds fd;
    Ok ()

let op_pwrite t fd buf off =
  trap t ~data:true;
  let* { fd_node = v } = fd_lookup t fd in
  let len = Bytes.length buf in
  Sched.cpu_work t.model.m_write_cpu;
  let pages = (len + 4095) / 4096 in
  Sched.cpu_work (t.model.m_index_cpu_per_page *. float_of_int pages);
  let extending = off + len > v.v_size in
  if extending then Sync.Rwlock.write_lock v.v_rwlock else Sync.Rwlock.read_lock v.v_rwlock;
  if extending then journal t;
  data_io t ~write:true ~len;
  digest_amplification t ~len;
  vnode_write t v ~buf ~off;
  v.v_mtime <- Sched.now t.sched;
  if extending then Sync.Rwlock.write_unlock v.v_rwlock else Sync.Rwlock.read_unlock v.v_rwlock;
  Ok len

let op_append t fd buf =
  let* { fd_node = v } = fd_lookup t fd in
  op_pwrite t fd buf v.v_size

let op_pread t fd buf off =
  trap t ~data:true;
  let* { fd_node = v } = fd_lookup t fd in
  Sched.cpu_work t.model.m_read_cpu;
  Sync.Rwlock.read_lock v.v_rwlock;
  let len = max 0 (min (Bytes.length buf) (v.v_size - off)) in
  let pages = (len + 4095) / 4096 in
  Sched.cpu_work (t.model.m_index_cpu_per_page *. float_of_int pages);
  data_io t ~write:false ~len;
  let n = vnode_read t v ~buf ~off in
  Sync.Rwlock.read_unlock v.v_rwlock;
  Ok n

let op_truncate t path size =
  trap t ~data:false;
  let* v = walk t path in
  if v.v_ftype = Dir then Error EISDIR
  else begin
    Sync.Rwlock.write_lock v.v_rwlock;
    journal t;
    Sched.cpu_work t.model.m_write_cpu;
    if t.store_data && size > v.v_size then begin
      ensure_capacity v size;
      Bytes.fill v.v_data v.v_size (size - v.v_size) '\000'
    end;
    v.v_size <- size;
    Sync.Rwlock.write_unlock v.v_rwlock;
    Ok ()
  end

let op_unlink t path =
  trap t ~data:false;
  let* parent, name = walk_parent t path in
  Sync.Rwlock.write_lock parent.v_rwlock;
  Sched.cpu_work t.model.m_unlink_cpu;
  let result =
    match Htbl.find parent.v_children name with
    | None -> Error ENOENT
    | Some v when v.v_ftype = Dir -> Error EISDIR
    | Some _ ->
      journal t;
      ignore (Htbl.remove parent.v_children name);
      parent.v_size <- parent.v_size - 1;
      Ok ()
  in
  Sync.Rwlock.write_unlock parent.v_rwlock;
  result

let op_mkdir t path mode =
  trap t ~data:false;
  let* parent, name = walk_parent t path in
  Sync.Rwlock.write_lock parent.v_rwlock;
  Sched.cpu_work t.model.m_create_cpu;
  let result =
    if Htbl.mem parent.v_children name then Error EEXIST
    else begin
      Resource.Hotspot.touch t.icache;
      journal t;
      Htbl.replace parent.v_children name (new_vnode t ~ftype:Dir ~mode);
      parent.v_size <- parent.v_size + 1;
      Ok ()
    end
  in
  Sync.Rwlock.write_unlock parent.v_rwlock;
  result

let op_rmdir t path =
  trap t ~data:false;
  let* parent, name = walk_parent t path in
  Sync.Rwlock.write_lock parent.v_rwlock;
  let result =
    match Htbl.find parent.v_children name with
    | None -> Error ENOENT
    | Some v when v.v_ftype = Reg -> Error ENOTDIR
    | Some v when Htbl.length v.v_children > 0 -> Error ENOTEMPTY
    | Some _ ->
      journal t;
      ignore (Htbl.remove parent.v_children name);
      parent.v_size <- parent.v_size - 1;
      Ok ()
  in
  Sync.Rwlock.write_unlock parent.v_rwlock;
  result

let op_readdir t path =
  trap t ~data:false;
  let* v = walk t path in
  if v.v_ftype <> Dir then Error ENOTDIR
  else begin
    Sync.Rwlock.read_lock v.v_rwlock;
    let entries =
      Htbl.fold v.v_children [] (fun acc name child ->
          Sched.cpu_work Perf.Cpu.hash_lookup;
          { d_ino = child.v_ino; d_name = name; d_ftype = child.v_ftype } :: acc)
    in
    Sync.Rwlock.read_unlock v.v_rwlock;
    Ok entries
  end

let op_stat t path =
  trap t ~data:false;
  Sched.cpu_work t.model.m_stat_cpu;
  let* v = walk t path in
  Ok
    {
      st_ino = v.v_ino;
      st_ftype = v.v_ftype;
      st_mode = v.v_mode;
      st_uid = v.v_uid;
      st_gid = v.v_gid;
      st_size = v.v_size;
      st_mtime = v.v_mtime;
      st_ctime = v.v_ctime;
    }

let op_rename t src dst =
  trap t ~data:false;
  (* the kernel-wide rename lock FxMark blames for MWRL/MWRM *)
  Sync.Mutex.lock t.rename_lock;
  Sched.cpu_work t.model.m_rename_cpu;
  let result =
    let* sp, sname = walk_parent t src in
    let* dp, dname = walk_parent t dst in
    match Htbl.find sp.v_children sname with
    | None -> Error ENOENT
    | Some v -> (
      match Htbl.find dp.v_children dname with
      | Some existing when existing.v_ftype = Dir -> Error EEXIST
      | Some _ when v.v_ftype = Dir -> Error EEXIST
      | _ ->
        journal t;
        ignore (Htbl.remove sp.v_children sname);
        sp.v_size <- sp.v_size - 1;
        if Htbl.mem dp.v_children dname then ignore (Htbl.remove dp.v_children dname)
        else dp.v_size <- dp.v_size + 1;
        Htbl.replace dp.v_children dname v;
        Ok ())
  in
  Sync.Mutex.unlock t.rename_lock;
  result

let op_chmod t path mode =
  trap t ~data:false;
  let* v = walk t path in
  journal t;
  v.v_mode <- mode land 0o7777;
  Ok ()

let op_fsync t fd =
  let* _ = fd_lookup t fd in
  trap t ~data:false;
  Sched.cpu_work t.model.m_fsync_cost;
  (match t.model.m_journal with
  | J_log_digest { digest_factor; _ } ->
    (* fsync forces a log flush; digestion already amortized *)
    ignore digest_factor;
    data_io t ~write:true ~len:64
  | J_global _ ->
    Sync.Mutex.lock t.journal_lock;
    data_io t ~write:true ~len:512;
    Sync.Mutex.unlock t.journal_lock;
    ()
  | _ -> ());
  Ok ()

let ops t =
  {
    Trio_core.Fs_intf.fs_name = t.model.m_name;
    create = op_create t;
    open_ = op_open t;
    close = op_close t;
    pread = op_pread t;
    pwrite = op_pwrite t;
    append = op_append t;
    truncate = op_truncate t;
    unlink = op_unlink t;
    mkdir = op_mkdir t;
    rmdir = op_rmdir t;
    readdir = op_readdir t;
    stat = op_stat t;
    rename = op_rename t;
    chmod = op_chmod t;
    fsync = op_fsync t;
  }
