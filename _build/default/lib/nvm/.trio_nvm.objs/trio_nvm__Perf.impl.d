lib/nvm/perf.ml: Array
