lib/nvm/numa.ml:
