lib/nvm/pmem.ml: Array Bytes Hashtbl Int32 Int64 List Numa Perf Trio_sim Trio_util
