(** FPFS: a LibFS customized for deep directory hierarchies through
    full-path indexing (paper §5).

    Replaces ArckFS' per-directory hash tables (auxiliary state) with a
    single global table mapping full paths to their core-state
    location, so path resolution is one probe instead of one per
    component.  The documented trade-off: renaming a directory
    invalidates the cache (O(cached paths)).

    Only auxiliary state is customized — files remain plain ArckFS
    files, shareable with any other LibFS. *)

type t

val mount : Arckfs.Libfs.t -> t
(** Layer full-path indexing over an existing ArckFS LibFS. *)

val ops : t -> Trio_core.Fs_intf.t
(** The POSIX-like interface with fast-path resolution for
    create/open/stat/unlink; other operations defer to the underlying
    LibFS (with cache maintenance on rename/rmdir). *)

val cached_paths : t -> int
(** Current size of the global path table. *)

val invalidate_all : t -> unit
(** Drop the path cache (what a directory rename does internally). *)
