(* FPFS: a LibFS customized for deep directory hierarchies (paper §5),
   based on full-path indexing.

   A generic file system resolves "/a/b/c/d/e/f" with one directory
   lookup per component; at depth 20 that is 20 hash probes and 20
   auxiliary-state touches per operation.  FPFS replaces the
   per-directory hash tables in ArckFS' auxiliary state with one global
   hash table mapping a *full path* to its location in the core state,
   so resolution is a single probe.

   The well-known cost of full-path indexing is renaming a directory:
   every cached descendant path changes.  FPFS implements it by
   invalidating the global table (O(cached paths)) — the documented
   trade-off; applications that rename directories frequently should
   use plain ArckFS.

   Only auxiliary state is customized: the core state stays ArckFS', so
   files created through FPFS remain shareable with any other LibFS. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Perf = Trio_nvm.Perf
module Libfs = Arckfs.Libfs
module Htbl = Trio_util.Htbl
open Trio_core.Fs_types

type t = {
  fs : Libfs.t;
  (* full path -> parent dir state * name.  Caching the parent (rather
     than the file) keeps every Libfs entry operation available while
     still skipping the component walk. *)
  parents : (string, Libfs.dir_state) Htbl.t;
  stripes : Sync.Rwlock.t array;
  mutable generation : int; (* bumped by directory renames *)
}

let ( let* ) = Result.bind

let mount fs =
  {
    fs;
    parents = Htbl.create_string ~initial_size:1024 ();
    stripes = Array.init Htbl.stripes (fun _ -> Sync.Rwlock.create ());
    generation = 0;
  }

let dirname path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

(* The customized resolution: one global-hash probe; on a miss, fall
   back to the component walk and cache the result. *)
let resolve_parent t path =
  match dirname_basename path with
  | None -> Error EINVAL
  | Some (dir_components, name) ->
    if not (valid_name name) then Error EINVAL
    else begin
      let dir_path = dirname path in
      Sched.cpu_work Perf.Cpu.hash_lookup;
      let stripe = Htbl.stripe_of_key t.parents dir_path in
      let cached =
        Sync.Rwlock.with_read t.stripes.(stripe) (fun () -> Htbl.find t.parents dir_path)
      in
      match cached with
      | Some d -> Ok (d, name)
      | None ->
        let* d = Libfs.resolve_dir t.fs dir_components in
        Sync.Rwlock.with_write t.stripes.(stripe) (fun () -> Htbl.replace t.parents dir_path d);
        Ok (d, name)
    end

(* Directory renames move whole subtrees: every cached path under the
   old prefix is stale.  FPFS simply drops the cache (the documented
   full-path-indexing trade-off). *)
let invalidate_all t =
  Sched.cpu_work (Perf.Cpu.hash_lookup *. float_of_int (Htbl.length t.parents));
  Htbl.clear t.parents;
  t.generation <- t.generation + 1

(* ------------------------------------------------------------------ *)
(* The FPFS ops record: entry operations reuse Libfs internals with the
   fast resolver; everything else defers to the generic LibFS. *)

let ops t =
  let base = Libfs.ops t.fs in
  let open Trio_core.Fs_intf in
  {
    base with
    fs_name = "fpfs";
    create =
      (fun path mode ->
        Libfs.with_retry t.fs (fun () ->
            let* d, name = resolve_parent t path in
            let* r = Libfs.create_entry t.fs d name ~ftype:Reg ~mode in
            let* f = Libfs.get_file t.fs ~ino:r.Libfs.e_ino ~addr:r.Libfs.e_addr in
            let fd = Libfs.alloc_fd t.fs in
            Libfs.register_fd t.fs fd f;
            Ok fd));
    open_ =
      (fun path flags ->
        Libfs.with_retry t.fs (fun () ->
            let* d, name = resolve_parent t path in
            match Libfs.lookup t.fs d name with
            | None ->
              if List.mem O_CREAT flags then
                let* r = Libfs.create_entry t.fs d name ~ftype:Reg ~mode:0o644 in
                let* f = Libfs.get_file t.fs ~ino:r.Libfs.e_ino ~addr:r.Libfs.e_addr in
                let fd = Libfs.alloc_fd t.fs in
                Libfs.register_fd t.fs fd f;
                Ok fd
              else Error ENOENT
            | Some { Libfs.e_ftype = Dir; _ } -> Error EISDIR
            | Some r ->
              let* f = Libfs.get_file t.fs ~ino:r.Libfs.e_ino ~addr:r.Libfs.e_addr in
              let* () =
                if List.mem O_TRUNC flags then Libfs.truncate_file t.fs f ~size:0 else Ok ()
              in
              let fd = Libfs.alloc_fd t.fs in
              Libfs.register_fd t.fs fd f;
              Ok fd));
    stat =
      (fun path ->
        Libfs.with_retry t.fs (fun () ->
            let* d, name = resolve_parent t path in
            match Libfs.lookup t.fs d name with
            | None -> Error ENOENT
            | Some r -> Libfs.stat_dentry t.fs r));
    unlink =
      (fun path ->
        (* also drop any cached parent mapping of the removed subtree *)
        let r = base.unlink path in
        (match r with
        | Ok () ->
          let stripe = Htbl.stripe_of_key t.parents path in
          Sync.Rwlock.with_write t.stripes.(stripe) (fun () ->
              ignore (Htbl.remove t.parents path))
        | Error _ -> ());
        r);
    rename =
      (fun src dst ->
        let is_dir = match base.stat src with Ok st -> st.st_ftype = Dir | _ -> false in
        let r = base.rename src dst in
        (match r with
        | Ok () when is_dir -> invalidate_all t
        | Ok () ->
          let stripe = Htbl.stripe_of_key t.parents src in
          Sync.Rwlock.with_write t.stripes.(stripe) (fun () ->
              ignore (Htbl.remove t.parents src))
        | Error _ -> ());
        r);
    rmdir =
      (fun path ->
        let r = base.rmdir path in
        (match r with
        | Ok () ->
          let stripe = Htbl.stripe_of_key t.parents path in
          Sync.Rwlock.with_write t.stripes.(stripe) (fun () ->
              ignore (Htbl.remove t.parents path))
        | Error _ -> ());
        r);
  }

let cached_paths t = Htbl.length t.parents
