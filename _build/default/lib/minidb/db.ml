(* The LSM key-value store: memtable + WAL + two on-FS levels with
   compaction.  Functionally equivalent to the slice of LevelDB that
   db_bench exercises; runs over any [Fs_intf.t], which is how Table 5
   compares the file systems underneath an identical application. *)

module Fs = Trio_core.Fs_intf
module Sched = Trio_sim.Sched

type options = {
  write_buffer_bytes : int; (* memtable flush threshold *)
  l0_compaction_trigger : int; (* #L0 tables that triggers a merge into L1 *)
  sync_writes : bool; (* fsync the WAL on every write *)
}

let default_options =
  { write_buffer_bytes = 256 * 1024; l0_compaction_trigger = 4; sync_writes = false }

type t = {
  fs : Fs.t;
  dir : string;
  options : options;
  mutable memtable : Memtable.t;
  mutable wal : Wal.t;
  mutable l0 : Sstable.t list; (* newest first; ranges may overlap *)
  mutable l1 : Sstable.t list; (* sorted, disjoint ranges *)
  mutable next_file : int;
  mutable compactions : int;
  mutable flushes : int;
}

let ( let* ) = Result.bind

let table_path t n = Printf.sprintf "%s/%06d.sst" t.dir n

let wal_path dir = dir ^ "/wal.log"

let fresh_file t =
  t.next_file <- t.next_file + 1;
  t.next_file

(* ------------------------------------------------------------------ *)
(* Manifest: the authoritative list of live tables per level, rewritten
   atomically (write new + rename) on every structural change. *)

let manifest_path dir = dir ^ "/MANIFEST"

let write_manifest t =
  let body =
    String.concat "\n"
      (List.map (fun s -> "L0 " ^ Sstable.path s) t.l0
      @ List.map (fun s -> "L1 " ^ Sstable.path s) t.l1
      @ [ Printf.sprintf "NEXT %d" t.next_file ])
  in
  let tmp = t.dir ^ "/MANIFEST.tmp" in
  let* fd =
    match t.fs.Fs.create tmp 0o644 with
    | Ok fd -> Ok fd
    | Error Trio_core.Fs_types.EEXIST ->
      let* () = t.fs.Fs.truncate tmp 0 in
      t.fs.Fs.open_ tmp [ Trio_core.Fs_types.O_RDWR ]
    | Error e -> Error e
  in
  let* _ = t.fs.Fs.append fd (Bytes.of_string body) in
  let* () = t.fs.Fs.fsync fd in
  let* () = t.fs.Fs.close fd in
  t.fs.Fs.rename tmp (manifest_path t.dir)

let read_manifest fs dir =
  match Fs.read_file fs (manifest_path dir) with
  | Error _ -> Ok ([], [], 0)
  | Ok body ->
    let l0 = ref [] and l1 = ref [] and next = ref 0 in
    let ok = ref true in
    String.split_on_char '\n' body
    |> List.iter (fun line ->
           match String.split_on_char ' ' line with
           | [ "L0"; path ] -> (
             match Sstable.open_ fs ~path with
             | Ok s -> l0 := s :: !l0
             | Error _ -> ok := false)
           | [ "L1"; path ] -> (
             match Sstable.open_ fs ~path with
             | Ok s -> l1 := s :: !l1
             | Error _ -> ok := false)
           | [ "NEXT"; n ] -> next := int_of_string n
           | _ -> ());
    if !ok then Ok (List.rev !l0, List.rev !l1, !next) else Error Trio_core.Fs_types.EIO

(* ------------------------------------------------------------------ *)
(* Open / close *)

let open_db ?(options = default_options) fs ~dir =
  let* () =
    match fs.Fs.mkdir dir 0o755 with
    | Ok () | Error Trio_core.Fs_types.EEXIST -> Ok ()
    | Error e -> Error e
  in
  let* l0, l1, next_file = read_manifest fs dir in
  let memtable = Memtable.create () in
  (* replay the WAL into the fresh memtable *)
  let* _ =
    Wal.replay fs ~path:(wal_path dir) ~apply:(fun ~kind ~key ~value ->
        if kind = Record_format.t_put then Memtable.put memtable key value
        else Memtable.delete memtable key)
  in
  let* wal = Wal.create fs ~path:(wal_path dir) in
  (* recreate the WAL contents (replayed entries stay in the memtable
     and will reach an SSTable at the next flush) *)
  Ok
    {
      fs;
      dir;
      options;
      memtable;
      wal;
      l0;
      l1;
      next_file;
      compactions = 0;
      flushes = 0;
    }

(* ------------------------------------------------------------------ *)
(* Flush & compaction *)

let merge_sorted lists =
  (* k-way merge of sorted (key, mutation) lists; earlier lists win on
     duplicate keys (newest first). *)
  let rec merge acc lists =
    let heads = List.filteri (fun _ l -> l <> []) lists in
    if heads = [] then List.rev acc
    else begin
      let min_key =
        List.fold_left
          (fun acc l -> match l with (k, _) :: _ -> (match acc with None -> Some k | Some m -> Some (min m k)) | [] -> acc)
          None lists
        |> Option.get
      in
      (* the first list holding min_key provides the value *)
      let chosen = ref None in
      let lists =
        List.map
          (fun l ->
            match l with
            | (k, v) :: rest when k = min_key ->
              if !chosen = None then chosen := Some (k, v);
              rest
            | l -> l)
          lists
      in
      merge (Option.get !chosen :: acc) lists
    end
  in
  merge [] lists

let compact_l0 t =
  t.compactions <- t.compactions + 1;
  (* read every L0 and L1 table fully, merge, rewrite L1 *)
  let table_entries s =
    let acc = ref [] in
    let* () = Sstable.iter_all s (fun k v -> acc := (k, v) :: !acc) in
    Ok (List.rev !acc)
  in
  let rec read_all = function
    | [] -> Ok []
    | s :: rest ->
      let* e = table_entries s in
      let* r = read_all rest in
      Ok (e :: r)
  in
  let* l0_entries = read_all t.l0 in
  let* l1_entries = read_all t.l1 in
  let merged = merge_sorted (l0_entries @ l1_entries) in
  (* split into ~1 MiB output tables; bottom level drops tombstones *)
  let out = ref [] and cur = ref [] and cur_bytes = ref 0 in
  List.iter
    (fun (k, v) ->
      cur := (k, v) :: !cur;
      cur_bytes :=
        !cur_bytes + String.length k
        + (match v with Memtable.Put s -> String.length s | Memtable.Delete -> 0);
      if !cur_bytes > 1 lsl 20 then begin
        out := List.rev !cur :: !out;
        cur := [];
        cur_bytes := 0
      end)
    merged;
  if !cur <> [] then out := List.rev !cur :: !out;
  let rec build_tables = function
    | [] -> Ok []
    | entries :: rest ->
      let path = table_path t (fresh_file t) in
      let* s = Sstable.build t.fs ~path ~drop_tombstones:true entries in
      let* r = build_tables rest in
      Ok (s :: r)
  in
  let* new_l1 = build_tables (List.rev !out) in
  let old = t.l0 @ t.l1 in
  t.l0 <- [];
  t.l1 <- new_l1;
  let* () = write_manifest t in
  (* delete superseded files *)
  List.iter (fun s -> ignore (t.fs.Fs.unlink (Sstable.path s))) old;
  Ok ()

let flush_memtable t =
  if Memtable.is_empty t.memtable then Ok ()
  else begin
    t.flushes <- t.flushes + 1;
    let entries = Memtable.to_sorted_list t.memtable in
    let path = table_path t (fresh_file t) in
    let* s = Sstable.build t.fs ~path entries in
    t.l0 <- s :: t.l0;
    Memtable.clear t.memtable;
    let* () = Wal.reset t.wal in
    let* () = write_manifest t in
    if List.length t.l0 >= t.options.l0_compaction_trigger then compact_l0 t else Ok ()
  end

let maybe_flush t =
  if Memtable.approximate_bytes t.memtable >= t.options.write_buffer_bytes then flush_memtable t
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Public API *)

let put t ~key ~value =
  let* () = Wal.put t.wal ~key ~value ~sync:t.options.sync_writes in
  Memtable.put t.memtable key value;
  maybe_flush t

let delete t ~key =
  let* () = Wal.delete t.wal ~key ~sync:t.options.sync_writes in
  Memtable.delete t.memtable key;
  maybe_flush t

let get t ~key =
  match Memtable.find t.memtable key with
  | Some (Memtable.Put v) -> Ok (Some v)
  | Some Memtable.Delete -> Ok None
  | None ->
    let rec search_l0 = function
      | [] -> Ok `Missing
      | s :: rest -> (
        let* r = Sstable.get s key in
        match r with
        | Some (Memtable.Put v) -> Ok (`Found v)
        | Some Memtable.Delete -> Ok `Deleted
        | None -> search_l0 rest)
    in
    let* r0 = search_l0 t.l0 in
    (match r0 with
    | `Found v -> Ok (Some v)
    | `Deleted -> Ok None
    | `Missing ->
      let* r1 = search_l0 t.l1 in
      (match r1 with `Found v -> Ok (Some v) | `Deleted | `Missing -> Ok None))

let close t =
  let* () = flush_memtable t in
  Wal.close t.wal

let stats t = (t.flushes, t.compactions, List.length t.l0, List.length t.l1)
