(** A miniature LevelDB: LSM tree with a memtable, write-ahead log, two
    on-FS levels of SSTables and compaction.

    Runs over any {!Trio_core.Fs_intf.t}, which is how Table 5 compares
    file systems underneath an identical application. *)

type options = {
  write_buffer_bytes : int;  (** memtable flush threshold *)
  l0_compaction_trigger : int;  (** #L0 tables that triggers a merge into L1 *)
  sync_writes : bool;  (** fsync the WAL on every write (db_bench "fillsync") *)
}

val default_options : options
(** 256 KiB write buffer, 4-table L0 trigger, asynchronous WAL. *)

type t

val open_db :
  ?options:options -> Trio_core.Fs_intf.t -> dir:string -> (t, Trio_core.Fs_types.errno) result
(** Open (or create) a database under [dir]: loads the manifest, opens
    the live SSTables, and replays the WAL into a fresh memtable. *)

val put : t -> key:string -> value:string -> (unit, Trio_core.Fs_types.errno) result
(** Durable once the call returns when [sync_writes]; otherwise durable
    at the next flush (the WAL still recovers it unless the crash drops
    the unflushed tail). *)

val get : t -> key:string -> (string option, Trio_core.Fs_types.errno) result
(** Checks the memtable, then L0 newest-first, then L1. *)

val delete : t -> key:string -> (unit, Trio_core.Fs_types.errno) result
(** Writes a tombstone; space is reclaimed at the bottom-level merge. *)

val close : t -> (unit, Trio_core.Fs_types.errno) result
(** Flush the memtable and release the WAL. *)

val stats : t -> int * int * int * int
(** [(flushes, compactions, l0_tables, l1_tables)]. *)
