(** Write-ahead log over the generic FS interface.

    Every mutation is appended (and optionally fsynced) before it hits
    the memtable; on open, surviving records are replayed.  Torn tails
    after a crash are cut off by the per-record CRC. *)

type t

val create : Trio_core.Fs_intf.t -> path:string -> (t, Trio_core.Fs_types.errno) result
(** Create (or truncate) the log file. *)

val put :
  t -> key:string -> value:string -> sync:bool -> (unit, Trio_core.Fs_types.errno) result

val delete : t -> key:string -> sync:bool -> (unit, Trio_core.Fs_types.errno) result

val replay :
  Trio_core.Fs_intf.t ->
  path:string ->
  apply:(kind:int -> key:string -> value:string -> unit) ->
  (int, Trio_core.Fs_types.errno) result
(** Replay valid records in order; returns how many were applied.
    A missing log replays zero records. *)

val reset : t -> (unit, Trio_core.Fs_types.errno) result
(** Truncate after a successful memtable flush. *)

val close : t -> (unit, Trio_core.Fs_types.errno) result
