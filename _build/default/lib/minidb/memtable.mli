(** In-memory write buffer of the LSM tree: a sorted map from key to
    the newest mutation (LevelDB's skiplist role). *)

type mutation = Put of string | Delete

type t

val create : unit -> t
val put : t -> string -> string -> unit

val delete : t -> string -> unit
(** Records a tombstone: readers must not fall through to older levels. *)

val find : t -> string -> mutation option
(** [Some Delete] means "deleted here"; [None] means "unknown here". *)

val approximate_bytes : t -> int
(** Payload estimate driving flush decisions. *)

val count : t -> int
val is_empty : t -> bool

val iter : t -> (string -> mutation -> unit) -> unit
(** Key order (SSTable construction). *)

val to_sorted_list : t -> (string * mutation) list
val clear : t -> unit
