(* Immutable sorted string tables.

   File layout:
     records ...                (Record_format, sorted by key)
     index: for each block, [ klen u32 | first_key | off u32 | len u32 ]
     footer: [ index_off u32 | index_len u32 | count u32 | magic u32 ]

   Records are grouped into ~4 KiB blocks; a point lookup reads the
   footer + index once (cached in DRAM after open) and then a single
   block. *)

module Fs = Trio_core.Fs_intf
module R = Record_format

let block_target = 4096
let magic = 0x55AA1234
let footer_size = 16

type index_entry = { first_key : string; off : int; len : int }

type t = {
  fs : Fs.t;
  path : string;
  index : index_entry array;
  count : int;
  mutable smallest : string;
  mutable largest : string;
}

let ( let* ) = Result.bind

(* Build an SSTable from a sorted (key, mutation) sequence.  Tombstones
   are retained (they shadow older levels) unless [drop_tombstones]. *)
let build fs ~path ?(drop_tombstones = false) entries =
  let buf = Buffer.create 4096 in
  let index = ref [] in
  let block_start = ref 0 in
  let block_first = ref None in
  let count = ref 0 in
  let smallest = ref None and largest = ref None in
  let flush_block () =
    match !block_first with
    | None -> ()
    | Some key ->
      index := { first_key = key; off = !block_start; len = Buffer.length buf - !block_start } :: !index;
      block_start := Buffer.length buf;
      block_first := None
  in
  List.iter
    (fun (key, mutation) ->
      let keep = match mutation with Memtable.Put _ -> true | Memtable.Delete -> not drop_tombstones in
      if keep then begin
        let kind, value =
          match mutation with Memtable.Put v -> (R.t_put, v) | Memtable.Delete -> (R.t_delete, "")
        in
        if !block_first = None then block_first := Some key;
        if !smallest = None then smallest := Some key;
        largest := Some key;
        Buffer.add_bytes buf (R.encode ~kind ~key ~value);
        incr count;
        if Buffer.length buf - !block_start >= block_target then flush_block ()
      end)
    entries;
  flush_block ();
  let index = List.rev !index in
  let index_off = Buffer.length buf in
  List.iter
    (fun e ->
      let klen = String.length e.first_key in
      let b = Bytes.create (12 + klen) in
      R.set_u32 b 0 klen;
      Bytes.blit_string e.first_key 0 b 4 klen;
      R.set_u32 b (4 + klen) e.off;
      R.set_u32 b (8 + klen) e.len;
      Buffer.add_bytes buf b)
    index;
  let index_len = Buffer.length buf - index_off in
  let footer = Bytes.create footer_size in
  R.set_u32 footer 0 index_off;
  R.set_u32 footer 4 index_len;
  R.set_u32 footer 8 !count;
  R.set_u32 footer 12 magic;
  Buffer.add_bytes buf footer;
  (* write the table through the FS *)
  let* fd = fs.Fs.create path 0o644 in
  let* _ = fs.Fs.append fd (Buffer.to_bytes buf) in
  let* () = fs.Fs.fsync fd in
  let* () = fs.Fs.close fd in
  Ok
    {
      fs;
      path;
      index = Array.of_list index;
      count = !count;
      smallest = Option.value !smallest ~default:"";
      largest = Option.value !largest ~default:"";
    }

(* Open an existing table: read footer + index. *)
let open_ fs ~path =
  let* st = fs.Fs.stat path in
  let size = st.Trio_core.Fs_types.st_size in
  if size < footer_size then Error Trio_core.Fs_types.EIO
  else begin
    let* fd = fs.Fs.open_ path [ Trio_core.Fs_types.O_RDONLY ] in
    let footer = Bytes.create footer_size in
    let* _ = fs.Fs.pread fd footer (size - footer_size) in
    if R.get_u32 footer 12 <> magic then Error Trio_core.Fs_types.EIO
    else begin
      let index_off = R.get_u32 footer 0 in
      let index_len = R.get_u32 footer 4 in
      let count = R.get_u32 footer 8 in
      let ibuf = Bytes.create index_len in
      let* _ = fs.Fs.pread fd ibuf index_off in
      let* () = fs.Fs.close fd in
      let entries = ref [] in
      let pos = ref 0 in
      while !pos < index_len do
        let klen = R.get_u32 ibuf !pos in
        let first_key = Bytes.sub_string ibuf (!pos + 4) klen in
        let off = R.get_u32 ibuf (!pos + 4 + klen) in
        let len = R.get_u32 ibuf (!pos + 8 + klen) in
        entries := { first_key; off; len } :: !entries;
        pos := !pos + 12 + klen
      done;
      let index = Array.of_list (List.rev !entries) in
      let smallest = if Array.length index > 0 then index.(0).first_key else "" in
      Ok { fs; path; index; count; smallest; largest = "" }
    end
  end

(* Largest index block whose first key <= key (binary search). *)
let find_block t key =
  let n = Array.length t.index in
  if n = 0 || key < t.index.(0).first_key then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.index.(mid).first_key <= key then lo := mid else hi := mid - 1
    done;
    Some t.index.(!lo)
  end

(* Point lookup: [None] = key not in this table; [Some mutation]
   otherwise (tombstones included). *)
let get t key =
  match find_block t key with
  | None -> Ok None
  | Some block ->
    let* fd = t.fs.Fs.open_ t.path [ Trio_core.Fs_types.O_RDONLY ] in
    let buf = Bytes.create block.len in
    let* _ = t.fs.Fs.pread fd buf block.off in
    let* () = t.fs.Fs.close fd in
    let rec scan pos =
      match R.decode buf pos with
      | None -> None
      | Some (kind, k, v, next) ->
        if k = key then Some (if kind = R.t_put then Memtable.Put v else Memtable.Delete)
        else if k > key then None
        else scan next
    in
    Ok (scan 0)

(* Full scan in key order (compaction input). *)
let iter_all t f =
  let* st = t.fs.Fs.stat t.path in
  let* fd = t.fs.Fs.open_ t.path [ Trio_core.Fs_types.O_RDONLY ] in
  let data_len = match t.index with [||] -> 0 | ix -> ix.(Array.length ix - 1).off + ix.(Array.length ix - 1).len in
  ignore st;
  let buf = Bytes.create data_len in
  let* _ = t.fs.Fs.pread fd buf 0 in
  let* () = t.fs.Fs.close fd in
  let rec go pos =
    match R.decode buf pos with
    | None -> ()
    | Some (kind, k, v, next) ->
      f k (if kind = R.t_put then Memtable.Put v else Memtable.Delete);
      go next
  in
  go 0;
  Ok ()

let entry_count t = t.count
let path t = t.path
let key_range t = (t.smallest, t.largest)
