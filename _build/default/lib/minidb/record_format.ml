(* Shared record encoding for the WAL and SSTables.

   Record: [ crc u32 | type u8 | klen u32 | vlen u32 | key | value ]
   The CRC covers everything after itself, so torn tail records after a
   crash are detected and discarded. *)

module Crc32 = Trio_util.Crc32

let t_put = 1
let t_delete = 2

let header_size = 13

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let encode ~kind ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let b = Bytes.create (header_size + klen + vlen) in
  Bytes.set b 4 (Char.chr kind);
  set_u32 b 5 klen;
  set_u32 b 9 vlen;
  Bytes.blit_string key 0 b header_size klen;
  Bytes.blit_string value 0 b (header_size + klen) vlen;
  let crc = Crc32.of_bytes ~pos:4 ~len:(header_size - 4 + klen + vlen) b in
  set_u32 b 0 (crc land 0xFFFFFFFF);
  b

(* Decode one record at [pos]; returns [None] on truncation or CRC
   mismatch (end of valid log). *)
let decode buf pos =
  let total = Bytes.length buf in
  if pos + header_size > total then None
  else begin
    let crc = get_u32 buf pos in
    let kind = Char.code (Bytes.get buf (pos + 4)) in
    let klen = get_u32 buf (pos + 5) in
    let vlen = get_u32 buf (pos + 9) in
    if klen < 0 || vlen < 0 || pos + header_size + klen + vlen > total then None
    else begin
      let computed = Crc32.of_bytes ~pos:(pos + 4) ~len:(header_size - 4 + klen + vlen) buf in
      if computed land 0xFFFFFFFF <> crc then None
      else if kind <> t_put && kind <> t_delete then None
      else begin
        let key = Bytes.sub_string buf (pos + header_size) klen in
        let value = Bytes.sub_string buf (pos + header_size + klen) vlen in
        Some (kind, key, value, pos + header_size + klen + vlen)
      end
    end
  end
