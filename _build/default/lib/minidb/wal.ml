(* Write-ahead log over the generic FS interface.

   Every mutation is appended (and optionally fsynced) before it is
   applied to the memtable; on open, surviving records are replayed.
   Torn tails (possible after a crash: data writes are not atomic) are
   cut off by the per-record CRC. *)

module Fs = Trio_core.Fs_intf

type t = { fs : Fs.t; path : string; mutable fd : Fs.fd }

let ( let* ) = Result.bind

let create fs ~path =
  let* fd =
    match fs.Fs.create path 0o644 with
    | Ok fd -> Ok fd
    | Error Trio_core.Fs_types.EEXIST ->
      let* () = fs.Fs.truncate path 0 in
      fs.Fs.open_ path [ Trio_core.Fs_types.O_RDWR ]
    | Error e -> Error e
  in
  Ok { fs; path; fd }

let append t ~kind ~key ~value ~sync =
  let record = Record_format.encode ~kind ~key ~value in
  let* _ = t.fs.Fs.append t.fd record in
  if sync then t.fs.Fs.fsync t.fd else Ok ()

let put t ~key ~value ~sync = append t ~kind:Record_format.t_put ~key ~value ~sync
let delete t ~key ~sync = append t ~kind:Record_format.t_delete ~key ~value:"" ~sync

(* Replay a log file into [apply].  Stops at the first invalid record. *)
let replay fs ~path ~apply =
  match fs.Fs.stat path with
  | Error _ -> Ok 0 (* no log: nothing to replay *)
  | Ok st ->
    let* fd = fs.Fs.open_ path [ Trio_core.Fs_types.O_RDONLY ] in
    let buf = Bytes.create st.Trio_core.Fs_types.st_size in
    let* _ = fs.Fs.pread fd buf 0 in
    let* () = fs.Fs.close fd in
    let rec go pos n =
      match Record_format.decode buf pos with
      | None -> n
      | Some (kind, key, value, next) ->
        apply ~kind ~key ~value;
        go next (n + 1)
    in
    Ok (go 0 0)

(* Truncate after a successful memtable flush. *)
let reset t =
  let* () = t.fs.Fs.truncate t.path 0 in
  let* () = t.fs.Fs.close t.fd in
  let* fd = t.fs.Fs.open_ t.path [ Trio_core.Fs_types.O_RDWR ] in
  t.fd <- fd;
  Ok ()

let close t = t.fs.Fs.close t.fd
