lib/minidb/db.ml: Bytes List Memtable Option Printf Record_format Result Sstable String Trio_core Trio_sim Wal
