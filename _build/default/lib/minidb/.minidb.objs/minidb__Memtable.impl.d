lib/minidb/memtable.ml: Map String
