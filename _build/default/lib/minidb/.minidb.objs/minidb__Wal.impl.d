lib/minidb/wal.ml: Bytes Record_format Result Trio_core
