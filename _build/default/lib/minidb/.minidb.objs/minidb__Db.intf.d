lib/minidb/db.mli: Trio_core
