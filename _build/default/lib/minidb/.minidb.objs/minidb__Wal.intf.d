lib/minidb/wal.mli: Trio_core
