lib/minidb/memtable.mli:
