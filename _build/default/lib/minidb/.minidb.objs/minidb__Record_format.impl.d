lib/minidb/record_format.ml: Bytes Char String Trio_util
