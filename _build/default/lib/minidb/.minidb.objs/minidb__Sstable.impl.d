lib/minidb/sstable.ml: Array Buffer Bytes List Memtable Option Record_format Result String Trio_core
