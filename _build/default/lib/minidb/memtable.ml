(* In-memory write buffer of the LSM tree: a sorted map from key to the
   newest mutation.  LevelDB uses a skiplist; a balanced map gives the
   same asymptotics and ordering semantics. *)

module StrMap = Map.Make (String)

type mutation = Put of string | Delete

type t = {
  mutable entries : mutation StrMap.t;
  mutable bytes : int; (* approximate payload size, drives flushes *)
}

let create () = { entries = StrMap.empty; bytes = 0 }

let entry_overhead = 16

let put t key value =
  t.entries <- StrMap.add key (Put value) t.entries;
  t.bytes <- t.bytes + String.length key + String.length value + entry_overhead

let delete t key =
  t.entries <- StrMap.add key Delete t.entries;
  t.bytes <- t.bytes + String.length key + entry_overhead

(* [find] distinguishes "deleted here" from "not present": the caller
   must not fall through to older levels on a tombstone. *)
let find t key = StrMap.find_opt key t.entries

let approximate_bytes t = t.bytes
let count t = StrMap.cardinal t.entries
let is_empty t = StrMap.is_empty t.entries

(* Iterate in key order (SSTable construction). *)
let iter t f = StrMap.iter f t.entries

let to_sorted_list t = StrMap.bindings t.entries

let clear t =
  t.entries <- StrMap.empty;
  t.bytes <- 0
