lib/core/verifier.ml: Array Bytes Fmt Fs_types Hashtbl Layout List Printf Trio_nvm Trio_sim
