lib/core/controller.ml: Array Bytes Fs_types Fun Hashtbl Layout List Mmu Option Printf Queue Trio_nvm Trio_sim Trio_util Verifier
