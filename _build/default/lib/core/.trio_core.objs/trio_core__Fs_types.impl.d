lib/core/fs_types.ml: Fmt List String
