lib/core/mmu.ml: Hashtbl List Trio_nvm Trio_sim
