lib/core/layout.ml: Array Bytes Char Fs_types Int32 Int64 Printf String Trio_nvm
