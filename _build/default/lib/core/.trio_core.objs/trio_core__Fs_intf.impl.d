lib/core/fs_intf.ml: Bytes Fs_types Result
