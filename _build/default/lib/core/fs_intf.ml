(* The POSIX-like file system interface shared by every file system in
   the repository.

   A value of type [t] is one process' handle onto a mounted file
   system: ArckFS LibFS instances, the customized LibFSes, and all the
   baseline models produce one.  Workload generators (fio / FxMark /
   Filebench) and the mini-LevelDB are written against this record, so
   every benchmark runs unmodified on every file system.

   All operations must be called from inside a simulation fiber; they
   account virtual time. *)

open Fs_types

type fd = int

type t = {
  fs_name : string;
  create : string -> int -> (fd, errno) result;
      (* [create path mode] creates a regular file and opens it RW *)
  open_ : string -> open_flag list -> (fd, errno) result;
  close : fd -> (unit, errno) result;
  pread : fd -> Bytes.t -> int -> (int, errno) result;
      (* [pread fd buf off] reads [Bytes.length buf] bytes at offset [off] *)
  pwrite : fd -> Bytes.t -> int -> (int, errno) result;
  append : fd -> Bytes.t -> (int, errno) result;
  truncate : string -> int -> (unit, errno) result;
  unlink : string -> (unit, errno) result;
  mkdir : string -> int -> (unit, errno) result;
  rmdir : string -> (unit, errno) result;
  readdir : string -> (dirent list, errno) result;
  stat : string -> (stat, errno) result;
  rename : string -> string -> (unit, errno) result;
  chmod : string -> int -> (unit, errno) result;
  fsync : fd -> (unit, errno) result;
}

let ( let* ) = Result.bind

(* Convenience wrappers used by examples and tests. *)

let write_file fs path data =
  let* fd = fs.create path 0o644 in
  let* _ = fs.append fd (Bytes.of_string data) in
  fs.close fd

let read_file fs path =
  let* st = fs.stat path in
  let* fd = fs.open_ path [ O_RDONLY ] in
  let buf = Bytes.create st.st_size in
  let* n = fs.pread fd buf 0 in
  let* () = fs.close fd in
  Ok (Bytes.sub_string buf 0 n)

let mkdir_p fs path =
  match split_path path with
  | None -> Error EINVAL
  | Some components ->
    let rec go prefix = function
      | [] -> Ok ()
      | c :: rest -> (
        let dir = prefix ^ "/" ^ c in
        match fs.mkdir dir 0o755 with
        | Ok () | Error EEXIST -> go dir rest
        | Error e -> Error e)
    in
    go "" components
