lib/attacks/attacks.ml: Arckfs Bytes Fmt Hashtbl List Option Printf String Trio_core Trio_nvm Trio_sim Trio_util Trio_workloads
