(* Named counters and time accumulators.

   The sharing-cost breakdown of Fig. 8 (map / unmap / verify / rebuild
   fractions) and various benchmark instrumentation read these. *)

type t = { counters : (string, float ref) Hashtbl.t }

let create () = { counters = Hashtbl.create 32 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.counters name r;
    r

let add t name v =
  let r = cell t name in
  r := !r +. v

let incr t name = add t name 1.0

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.0

let reset t = Hashtbl.reset t.counters

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Time a phase and accumulate its virtual duration under [name]. *)
let timed t sched name f =
  let start = Sched.now sched in
  let v = f () in
  add t name (Sched.now sched -. start);
  v

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-32s %.1f@." k v) (to_list t)
