lib/sim/sched.ml: Array Effect Float Option Printexc
