lib/sim/resource.ml: Sched
