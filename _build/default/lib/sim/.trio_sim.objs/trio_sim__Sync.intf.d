lib/sim/sync.mli:
