lib/sim/sched.mli:
