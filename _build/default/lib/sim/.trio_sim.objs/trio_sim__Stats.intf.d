lib/sim/stats.mli: Format Sched
