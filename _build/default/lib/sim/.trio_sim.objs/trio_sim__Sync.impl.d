lib/sim/sync.ml: List Queue Sched
