lib/sim/resource.mli:
