lib/sim/stats.ml: Fmt Hashtbl List Sched String
