(** Simulated synchronization primitives.

    All primitives operate on virtual time: acquiring a held lock parks
    the calling fiber until the holder releases it.  Ownership is handed
    off to the next waiter in FIFO order, keeping runs deterministic. *)

(** Mutual exclusion with FIFO handoff and contention statistics. *)
module Mutex : sig
  type t

  val create : unit -> t

  val lock : t -> unit
  (** Block (park) until the mutex is acquired. *)

  val try_lock : t -> bool
  (** Acquire without blocking; [false] if held. *)

  val unlock : t -> unit
  (** Release; ownership passes directly to the oldest waiter.
      Raises [Invalid_argument] if not locked. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Run under the lock, releasing on exception. *)

  val contended : t -> int
  (** Number of acquisitions that had to wait. *)

  val acquisitions : t -> int
end

(** A spinlock behaves identically under the discrete-event model; KVFS
    uses it for its simplified per-file locking (paper §5). *)
module Spinlock = Mutex

(** Readers–writer lock with writer preference (BRAVO-style readers:
    uncontended reads carry no extra cost). *)
module Rwlock : sig
  type t

  val create : unit -> t
  val read_lock : t -> unit
  val read_unlock : t -> unit
  val write_lock : t -> unit
  val write_unlock : t -> unit

  val with_read : t -> (unit -> 'a) -> 'a
  (** Run under a read lock, releasing on exception. *)

  val with_write : t -> (unit -> 'a) -> 'a

  val contended : t -> int
end

(** Byte-range reader–writer lock: lets one thread extend a file while
    others write disjoint regions and many read (paper §4.2). *)
module Range_lock : sig
  type mode = Read | Write

  type t

  val create : unit -> t

  val lock : t -> lo:int -> hi:int -> mode -> unit
  (** Acquire [lo, hi] (inclusive); blocks while a conflicting range is
      held.  Waiters are admitted in FIFO order. *)

  val unlock : t -> lo:int -> hi:int -> mode -> unit
  (** Release exactly a previously acquired range. *)

  val with_range : t -> lo:int -> hi:int -> mode -> (unit -> 'a) -> 'a
  (** Run holding the range, releasing on exception. *)
end

(** Single-assignment cell with blocking read (completion futures for
    delegation requests). *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val is_full : 'a t -> bool

  val read : 'a t -> 'a
  (** Block until filled. *)
end

(** Bounded FIFO channel: the per-application ring buffer between
    application fibers and delegation fibers (paper §4.5). *)
module Chan : sig
  type 'a t

  exception Closed

  val create : int -> 'a t
  (** [create capacity]; raises on non-positive capacity. *)

  val send : 'a t -> 'a -> unit
  (** Blocks while full; raises {!Closed} if the channel is closed. *)

  val recv : 'a t -> 'a
  (** Blocks while empty; raises {!Closed} once closed and drained. *)

  val close : 'a t -> unit
  (** Wake all waiters with {!Closed}. *)

  val length : 'a t -> int
end

(** Completion counting. *)
module Waitgroup : sig
  type t

  val create : int -> t
  val add : t -> int -> unit
  val done_ : t -> unit
  val wait : t -> unit
end
