(** Contention models for shared hardware resources. *)

(** A bandwidth-shared device: the cost of a transfer depends on how
    many fibers are inside the server concurrently, through a
    caller-supplied aggregate-bandwidth curve. *)
module Server : sig
  type t

  val create : name:string -> base_latency:float -> curve:(int -> float) -> t
  (** [curve k] is the aggregate bandwidth in bytes/ns at concurrency
      [k]. *)

  val access : ?latency_scale:float -> t -> bytes:int -> unit
  (** Move [bytes] through the server, delaying the calling fiber by
      latency + bytes / (per-accessor share). *)

  val active : t -> int
  val peak_active : t -> int
  val total_bytes : t -> float
  val total_accesses : t -> int
end

(** A contended cacheline: access cost grows linearly with the number
    of concurrent accessors (dentry refcounts, lock words — the VFS
    bottlenecks FxMark exposes). *)
module Hotspot : sig
  type t

  val create : base:float -> alpha:float -> t
  (** Cost of one access is [base + alpha * (concurrent - 1)] ns. *)

  val touch : t -> unit
  val touches : t -> int
end
