(* Contention models.

   [Server] is a bandwidth-shared device: the cost of moving [bytes]
   depends on how many fibers are concurrently inside the server, through
   a caller-supplied total-bandwidth curve.  This is how the NVM layer
   models Optane's saturation and collapse under excessive concurrency.

   [Hotspot] is a contended cacheline: the cost of one access grows
   linearly with the number of concurrent accessors.  The VFS baseline
   uses hotspots for the dentry/inode reference counts and coarse locks
   FxMark blames for kernel-FS scalability collapse. *)

module Server = struct
  type t = {
    name : string;
    (* [curve k] is the aggregate bandwidth in bytes/ns when [k] fibers
       access concurrently. *)
    curve : int -> float;
    base_latency : float;
    mutable active : int;
    mutable peak_active : int;
    mutable total_bytes : float;
    mutable total_accesses : int;
  }

  let create ~name ~base_latency ~curve =
    {
      name;
      curve;
      base_latency;
      active = 0;
      peak_active = 0;
      total_bytes = 0.0;
      total_accesses = 0;
    }

  (* Cost model: latency + bytes / per-accessor share of the aggregate
     bandwidth sampled at entry.  Sampling at entry (rather than
     integrating over the transfer) keeps the model simple and the
     simulation fast; at benchmark steady state the two agree. *)
  let access ?(latency_scale = 1.0) t ~bytes =
    t.active <- t.active + 1;
    if t.active > t.peak_active then t.peak_active <- t.active;
    t.total_accesses <- t.total_accesses + 1;
    t.total_bytes <- t.total_bytes +. float_of_int bytes;
    let k = t.active in
    let share = t.curve k /. float_of_int k in
    let cost = (t.base_latency *. latency_scale) +. (float_of_int bytes /. share) in
    Sched.delay cost;
    t.active <- t.active - 1

  let active t = t.active
  let peak_active t = t.peak_active
  let total_bytes t = t.total_bytes
  let total_accesses t = t.total_accesses
end

module Hotspot = struct
  type t = {
    base : float; (* uncontended cost, ns *)
    alpha : float; (* additional cost per concurrent accessor, ns *)
    mutable active : int;
    mutable touches : int;
  }

  let create ~base ~alpha = { base; alpha; active = 0; touches = 0 }

  let touch t =
    t.active <- t.active + 1;
    t.touches <- t.touches + 1;
    let cost = t.base +. (t.alpha *. float_of_int (t.active - 1)) in
    Sched.delay cost;
    t.active <- t.active - 1

  let touches t = t.touches
end
