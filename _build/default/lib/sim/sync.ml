(* Simulated synchronization primitives.

   All of these operate on virtual time: acquiring a held lock parks the
   fiber until the holder releases it.  Ownership is handed off directly
   to the next waiter (no barging), which keeps runs deterministic.

   Contention statistics are kept per lock so the benchmarks can report
   where time went. *)

(* ------------------------------------------------------------------ *)

module Mutex = struct
  type t = {
    mutable locked : bool;
    waiters : Sched.waker Queue.t;
    mutable acquisitions : int;
    mutable contended : int;
  }

  let create () = { locked = false; waiters = Queue.create (); acquisitions = 0; contended = 0 }

  let lock m =
    m.acquisitions <- m.acquisitions + 1;
    if not m.locked then m.locked <- true
    else begin
      m.contended <- m.contended + 1;
      Sched.park (fun waker -> Queue.push waker m.waiters)
    end

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      m.acquisitions <- m.acquisitions + 1;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Mutex.unlock: not locked";
    match Queue.take_opt m.waiters with
    | Some waker -> waker () (* ownership passes to the waiter *)
    | None -> m.locked <- false

  let with_lock m f =
    lock m;
    match f () with
    | v ->
      unlock m;
      v
    | exception e ->
      unlock m;
      raise e

  let contended m = m.contended
  let acquisitions m = m.acquisitions
end

(* A spinlock behaves like a mutex under the discrete-event model; the
   distinction that matters for the benchmarks is the uncontended cost,
   which callers charge via [Sched.cpu_work].  KVFS replaces ArckFS'
   fine-grained locks with this (paper §5). *)
module Spinlock = Mutex

(* ------------------------------------------------------------------ *)

module Rwlock = struct
  type t = {
    mutable readers : int;
    mutable writer : bool;
    read_waiters : Sched.waker Queue.t;
    write_waiters : Sched.waker Queue.t;
    mutable acquisitions : int;
    mutable contended : int;
  }

  let create () =
    {
      readers = 0;
      writer = false;
      read_waiters = Queue.create ();
      write_waiters = Queue.create ();
      acquisitions = 0;
      contended = 0;
    }

  (* Writer preference: readers queue behind a waiting writer so writers
     cannot starve (matches the BRAVO-style locks ArckFS builds on). *)
  let read_lock l =
    l.acquisitions <- l.acquisitions + 1;
    if l.writer || not (Queue.is_empty l.write_waiters) then begin
      l.contended <- l.contended + 1;
      Sched.park (fun waker ->
          Queue.push
            (fun () ->
              l.readers <- l.readers + 1;
              waker ())
            l.read_waiters)
    end
    else l.readers <- l.readers + 1

  let wake_next l =
    if l.readers = 0 && not l.writer then
      match Queue.take_opt l.write_waiters with
      | Some waker ->
        l.writer <- true;
        waker ()
      | None ->
        (* admit the whole read batch *)
        while not (Queue.is_empty l.read_waiters) do
          (Queue.pop l.read_waiters) ()
        done

  let read_unlock l =
    if l.readers <= 0 then invalid_arg "Rwlock.read_unlock";
    l.readers <- l.readers - 1;
    wake_next l

  let write_lock l =
    l.acquisitions <- l.acquisitions + 1;
    if l.writer || l.readers > 0 then begin
      l.contended <- l.contended + 1;
      Sched.park (fun waker -> Queue.push waker l.write_waiters)
    end
    else l.writer <- true

  let write_unlock l =
    if not l.writer then invalid_arg "Rwlock.write_unlock";
    l.writer <- false;
    wake_next l

  let with_read l f =
    read_lock l;
    match f () with
    | v ->
      read_unlock l;
      v
    | exception e ->
      read_unlock l;
      raise e

  let with_write l f =
    write_lock l;
    match f () with
    | v ->
      write_unlock l;
      v
    | exception e ->
      write_unlock l;
      raise e

  let contended l = l.contended
end

(* ------------------------------------------------------------------ *)

(* Byte-range reader-writer lock: ArckFS allows one thread to append while
   others write disjoint regions and many read concurrently (paper §4.2). *)
module Range_lock = struct
  type mode = Read | Write

  type held = { lo : int; hi : int; mode : mode }

  type waiting = { wlo : int; whi : int; wmode : mode; waker : Sched.waker }

  type t = { mutable held : held list; mutable waiting : waiting list }

  let create () = { held = []; waiting = [] }

  let overlaps a_lo a_hi b_lo b_hi = a_lo <= b_hi && b_lo <= a_hi

  let conflicts t lo hi mode =
    List.exists
      (fun h ->
        overlaps lo hi h.lo h.hi && (mode = Write || h.mode = Write))
      t.held

  let lock t ~lo ~hi mode =
    if conflicts t lo hi mode then
      Sched.park (fun waker ->
          t.waiting <- t.waiting @ [ { wlo = lo; whi = hi; wmode = mode; waker } ])
    else t.held <- { lo; hi; mode } :: t.held

  let unlock t ~lo ~hi mode =
    let rec remove_one = function
      | [] -> invalid_arg "Range_lock.unlock: range not held"
      | h :: rest when h.lo = lo && h.hi = hi && h.mode = mode -> rest
      | h :: rest -> h :: remove_one rest
    in
    t.held <- remove_one t.held;
    (* Admit waiters FIFO, stopping at the first that still conflicts so
       ordering is fair. *)
    let rec admit = function
      | [] -> []
      | w :: rest ->
        if conflicts t w.wlo w.whi w.wmode then w :: rest
        else begin
          t.held <- { lo = w.wlo; hi = w.whi; mode = w.wmode } :: t.held;
          w.waker ();
          admit rest
        end
    in
    t.waiting <- admit t.waiting

  let with_range t ~lo ~hi mode f =
    lock t ~lo ~hi mode;
    match f () with
    | v ->
      unlock t ~lo ~hi mode;
      v
    | exception e ->
      unlock t ~lo ~hi mode;
      raise e
end

(* ------------------------------------------------------------------ *)

(* Single-assignment cell with blocking read: completion notification for
   delegation requests and controller RPCs. *)
module Ivar = struct
  type 'a state = Empty of Sched.waker list | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty wakers ->
      t.state <- Full v;
      List.iter (fun w -> w ()) wakers

  let is_full t = match t.state with Full _ -> true | Empty _ -> false

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
      Sched.park (fun waker ->
          match t.state with
          | Full _ -> waker ()
          | Empty ws -> t.state <- Empty (waker :: ws));
      (match t.state with
      | Full v -> v
      | Empty _ -> assert false)
end

(* ------------------------------------------------------------------ *)

(* Bounded channel: the per-application ring buffer between application
   fibers and delegation fibers (paper §4.5). *)
module Chan = struct
  type 'a t = {
    capacity : int;
    items : 'a Queue.t;
    mutable send_waiters : Sched.waker Queue.t;
    mutable recv_waiters : Sched.waker Queue.t;
    mutable closed : bool;
  }

  exception Closed

  let create capacity =
    if capacity <= 0 then invalid_arg "Chan.create";
    {
      capacity;
      items = Queue.create ();
      send_waiters = Queue.create ();
      recv_waiters = Queue.create ();
      closed = false;
    }

  let send t v =
    if t.closed then raise Closed;
    while Queue.length t.items >= t.capacity do
      Sched.park (fun waker -> Queue.push waker t.send_waiters);
      if t.closed then raise Closed
    done;
    Queue.push v t.items;
    match Queue.take_opt t.recv_waiters with Some w -> w () | None -> ()

  let recv t =
    while Queue.is_empty t.items do
      if t.closed then raise Closed;
      Sched.park (fun waker -> Queue.push waker t.recv_waiters)
    done;
    let v = Queue.pop t.items in
    (match Queue.take_opt t.send_waiters with Some w -> w () | None -> ());
    v

  let close t =
    t.closed <- true;
    Queue.iter (fun w -> w ()) t.recv_waiters;
    Queue.iter (fun w -> w ()) t.send_waiters;
    Queue.clear t.recv_waiters;
    Queue.clear t.send_waiters

  let length t = Queue.length t.items
end

(* ------------------------------------------------------------------ *)

module Waitgroup = struct
  type t = { mutable count : int; mutable waiters : Sched.waker list }

  let create n = { count = n; waiters = [] }

  let add t n = t.count <- t.count + n

  let done_ t =
    if t.count <= 0 then invalid_arg "Waitgroup.done_";
    t.count <- t.count - 1;
    if t.count = 0 then begin
      let ws = t.waiters in
      t.waiters <- [];
      List.iter (fun w -> w ()) ws
    end

  let wait t =
    if t.count > 0 then
      Sched.park (fun waker ->
          if t.count = 0 then waker () else t.waiters <- waker :: t.waiters)
end
