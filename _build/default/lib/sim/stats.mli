(** Named counters and virtual-time accumulators (benchmark
    instrumentation; the Fig. 8 sharing-cost breakdown reads these). *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulate [v] under [name]. *)

val incr : t -> string -> unit

val get : t -> string -> float
(** 0 for unknown names. *)

val reset : t -> unit

val to_list : t -> (string * float) list
(** All counters, sorted by name. *)

val timed : t -> Sched.t -> string -> (unit -> 'a) -> 'a
(** Run a thunk and accumulate its virtual duration under [name]. *)

val pp : Format.formatter -> t -> unit
