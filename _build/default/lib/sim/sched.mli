(** Deterministic discrete-event scheduler with effect-based fibers.

    Simulated threads ("fibers") run on a virtual clock measured in
    nanoseconds.  Execution is fully deterministic: a given spawn order
    always yields the same interleaving. *)

type t

type waker = unit -> unit

type ctx = { cpu : int; tid : int }
(** Identity of the running fiber: the simulated CPU it is pinned to and a
    unique thread id. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in nanoseconds. *)

val live_fibers : t -> int
val events_processed : t -> int

val spawn : ?cpu:int -> t -> (unit -> unit) -> unit
(** Start a fiber pinned to simulated CPU [cpu] (default 0). *)

val schedule : t -> float -> (unit -> unit) -> unit
(** Low-level: run a thunk at an absolute virtual time. *)

val run : ?until:float -> t -> float
(** Process events until the heap drains or virtual time [until] is
    reached; returns the virtual time reached.  Re-raises the first
    exception escaping a fiber. *)

val stop : t -> unit
(** Mark the simulation as stopping: every subsequently-resumed fiber is
    discontinued.  Used to tear down infinite service loops. *)

exception Stopped
(** Raised inside fibers on resumption after {!stop}. *)

(** {2 Fiber operations} — valid only inside a fiber. *)

val delay : float -> unit
(** Advance this fiber's virtual time by [ns]. *)

val cpu_work : float -> unit
(** Alias of {!delay}: account CPU time spent off-NVM. *)

val yield : unit -> unit

val park : ((unit -> unit) -> unit) -> unit
(** [park register] suspends the fiber; [register waker] must arrange for
    [waker] to be called exactly when the fiber should resume.  Calling
    the waker more than once is harmless. *)

val self : unit -> ctx
val current_cpu : unit -> int
val current_tid : unit -> int
