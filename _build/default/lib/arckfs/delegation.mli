(** Opportunistic delegation (paper §4.5, following OdinFS).

    A fixed pool of delegation fibers per NUMA node — shared by every
    LibFS — performs bulk NVM accesses on behalf of application fibers,
    so the device never sees more concurrency than the pool size and
    every delegated access is node-local.  Small accesses (reads under
    32 KiB, writes under 256 B) skip the round trip. *)

type op =
  | Op_write of Bytes.t * int  (** source buffer, offset within it *)
  | Op_read of Bytes.t * int  (** destination buffer, offset within it *)
  | Op_touch of bool  (** cost-only transfer; [true] = write (baseline models) *)

type t

val default_threads_per_node : int
val default_read_threshold : int
val default_write_threshold : int

val default_stripe_pages : int
(** Data-striping granularity (pages); 16 = 64 KiB, so a 2 MiB access
    spans every node of the paper machine. *)

val create :
  sched:Trio_sim.Sched.t ->
  pmem:Trio_nvm.Pmem.t ->
  ?threads_per_node:int ->
  ?read_threshold:int ->
  ?write_threshold:int ->
  ?stripe_pages:int ->
  unit ->
  t
(** Spawn the delegation fibers (pinned to their nodes). *)

val shutdown : t -> unit
(** Close the rings; workers exit. *)

val should_delegate : t -> write:bool -> len:int -> bool

val stripe_pages : t -> int

val run_all : t -> actor:int -> write:bool -> buf:Bytes.t -> (int * int * int) list -> unit
(** [run_all t ~actor ~write ~buf runs] executes contiguous runs
    [(nvm_addr, buffer_offset, length)] in parallel across the
    delegation fibers and waits for all completions.  MMU checks apply
    with [actor]'s permissions. *)

val touch_all : t -> actor:int -> write:bool -> (int * int) list -> unit
(** Cost-only variant over [(addr, len)] runs (used by the OdinFS
    baseline model). *)

val request_count : t -> int
