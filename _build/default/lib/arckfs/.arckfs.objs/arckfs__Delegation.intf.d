lib/arckfs/delegation.mli: Bytes Trio_nvm Trio_sim
