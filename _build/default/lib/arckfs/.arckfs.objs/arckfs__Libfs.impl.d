lib/arckfs/libfs.ml: Alloc_cache Array Bytes Delegation Hashtbl Journal List Option Result String Trio_core Trio_nvm Trio_sim Trio_util
