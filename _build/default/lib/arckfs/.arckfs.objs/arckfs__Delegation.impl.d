lib/arckfs/delegation.ml: Array Bytes List Trio_nvm Trio_sim
