lib/arckfs/journal.ml: Array Bytes List Trio_core Trio_nvm Trio_sim
