lib/arckfs/journal.mli: Trio_nvm
