lib/arckfs/alloc_cache.ml: Array List Trio_core Trio_nvm Trio_sim
