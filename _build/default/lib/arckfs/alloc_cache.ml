(* Per-LibFS allocation front caches (paper §4.5).

   Inode numbers and NVM pages are obtained from the kernel controller
   in batches, so the create/append fast paths stay in userspace.  Pools
   are segregated per NUMA node and per page kind (metadata pages must
   always be materialized; data pages may be cost-only at benchmark
   scale). *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Controller = Trio_core.Controller

type pool = { mutable pages : int list; lock : Sync.Mutex.t }

type t = {
  ctl : Controller.t;
  proc : int;
  page_batch : int;
  ino_batch : int;
  (* pools.(node).(kind): kind 0 = Meta, 1 = Data *)
  pools : pool array array;
  mutable ino_pool : int list;
  ino_lock : Sync.Mutex.t;
}

let kind_index = function Pmem.Meta -> 0 | Pmem.Data -> 1
let kind_of_index = function 0 -> Pmem.Meta | _ -> Pmem.Data

let create ~ctl ~proc ?(page_batch = 512) ?(ino_batch = 256) () =
  let nodes = Trio_nvm.Numa.nodes (Pmem.topo (Controller.pmem ctl)) in
  {
    ctl;
    proc;
    page_batch;
    ino_batch;
    pools =
      Array.init nodes (fun _ ->
          Array.init 2 (fun _ -> { pages = []; lock = Sync.Mutex.create () }));
    ino_pool = [];
    ino_lock = Sync.Mutex.create ();
  }

(* Pop [count] pages from the node/kind pool, refilling from the kernel
   when empty.  The refill amortizes the syscall and PTE costs. *)
let rec alloc_pages t ~node ~kind ~count =
  let pool = t.pools.(node).(kind_index kind) in
  Sync.Mutex.lock pool.lock;
  Sched.cpu_work Perf.Cpu.lock_acquire;
  let rec take acc n pages =
    if n = 0 then (List.rev acc, pages)
    else
      match pages with
      | [] -> (List.rev acc, [])
      | pg :: rest -> take (pg :: acc) (n - 1) rest
  in
  let got, rest = take [] count pool.pages in
  pool.pages <- rest;
  Sync.Mutex.unlock pool.lock;
  let missing = count - List.length got in
  if missing = 0 then Ok got
  else begin
    let batch = max t.page_batch missing in
    match Controller.alloc_pages t.ctl ~proc:t.proc ~node ~count:batch ~kind with
    | Error e ->
      (* Return what we took; the caller sees the failure. *)
      if got <> [] then begin
        Sync.Mutex.lock pool.lock;
        pool.pages <- got @ pool.pages;
        Sync.Mutex.unlock pool.lock
      end;
      Error e
    | Ok fresh ->
      Sync.Mutex.lock pool.lock;
      pool.pages <- fresh @ pool.pages;
      Sync.Mutex.unlock pool.lock;
      (* Retry: the pool now has at least [missing] pages (barring
         concurrent drains, which the recursion handles). *)
      if got = [] then alloc_pages t ~node ~kind ~count
      else
        match alloc_pages t ~node ~kind ~count:missing with
        | Ok more -> Ok (got @ more)
        | Error e -> Error e
  end

let alloc_page t ~node ~kind =
  match alloc_pages t ~node ~kind ~count:1 with
  | Ok [ pg ] -> Ok pg
  | Ok _ -> assert false
  | Error e -> Error e

let alloc_ino t =
  Sync.Mutex.lock t.ino_lock;
  Sched.cpu_work Perf.Cpu.lock_acquire;
  let result =
    match t.ino_pool with
    | ino :: rest ->
      t.ino_pool <- rest;
      ino
    | [] -> (
      match Controller.alloc_inos t.ctl ~proc:t.proc ~count:t.ino_batch with
      | ino :: rest ->
        t.ino_pool <- rest;
        ino
      | [] -> assert false)
  in
  Sync.Mutex.unlock t.ino_lock;
  result

(* Give a page back to the local pool (e.g. after an aborted create). *)
let recycle_page t ~page ~kind =
  let pmem = Controller.pmem t.ctl in
  let node = page / Pmem.pages_per_node pmem in
  let pool = t.pools.(node).(kind_index kind) in
  Sync.Mutex.lock pool.lock;
  pool.pages <- page :: pool.pages;
  Sync.Mutex.unlock pool.lock
