(* Radix tree over non-negative integer keys, 6 bits per level.

   This is the index structure ArckFS' LibFS keeps per regular file, mapping
   a file-page index to the NVM location of the index-page entry that holds
   that page (paper §4.2).  The baselines (NOVA model) reuse it for their
   DRAM indexes. *)

let bits = 6
let fanout = 1 lsl bits (* 64 *)
let mask = fanout - 1

type 'a slot =
  | Empty
  | Leaf of 'a
  | Node of 'a slot array

type 'a t = {
  mutable root : 'a slot array;
  mutable height : int; (* number of levels; capacity = 64^height *)
  mutable count : int;
}

let create () = { root = Array.make fanout Empty; height = 1; count = 0 }

let capacity t =
  (* 64^height, computed without overflow for sane heights *)
  let rec go acc h = if h = 0 then acc else go (acc * fanout) (h - 1) in
  go 1 t.height

let length t = t.count

(* Add a level above the root so that the tree covers larger keys. *)
let grow t =
  let new_root = Array.make fanout Empty in
  new_root.(0) <- Node t.root;
  t.root <- new_root;
  t.height <- t.height + 1

let rec ensure_capacity t key = if key >= capacity t then (grow t; ensure_capacity t key)

let shift_of t level = bits * (t.height - 1 - level)

let insert t key v =
  if key < 0 then invalid_arg "Radix.insert: negative key";
  ensure_capacity t key;
  let rec go slots level =
    let idx = (key lsr shift_of t level) land mask in
    if level = t.height - 1 then begin
      (match slots.(idx) with Leaf _ -> () | _ -> t.count <- t.count + 1);
      slots.(idx) <- Leaf v
    end
    else
      match slots.(idx) with
      | Node child -> go child (level + 1)
      | Empty ->
        let child = Array.make fanout Empty in
        slots.(idx) <- Node child;
        go child (level + 1)
      | Leaf _ -> assert false
  in
  go t.root 0

let find t key =
  if key < 0 || key >= capacity t then None
  else begin
    let rec go slots level =
      let idx = (key lsr shift_of t level) land mask in
      match slots.(idx) with
      | Empty -> None
      | Leaf v -> if level = t.height - 1 then Some v else None
      | Node child -> go child (level + 1)
    in
    go t.root 0
  end

let mem t key = Option.is_some (find t key)

let remove t key =
  if key >= 0 && key < capacity t then begin
    let rec go slots level =
      let idx = (key lsr shift_of t level) land mask in
      match slots.(idx) with
      | Empty -> ()
      | Leaf _ ->
        if level = t.height - 1 then begin
          slots.(idx) <- Empty;
          t.count <- t.count - 1
        end
      | Node child -> go child (level + 1)
    in
    go t.root 0
  end

(* In-order iteration: keys visited in increasing order. *)
let iter t f =
  let rec go slots level prefix =
    for idx = 0 to fanout - 1 do
      match slots.(idx) with
      | Empty -> ()
      | Leaf v -> f ((prefix lsl bits) lor idx) v
      | Node child -> go child (level + 1) ((prefix lsl bits) lor idx)
    done
  in
  go t.root 0 0

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let clear t =
  t.root <- Array.make fanout Empty;
  t.height <- 1;
  t.count <- 0

(* Largest key present, if any; ArckFS uses it to locate the file tail. *)
let max_key t =
  let best = ref None in
  iter t (fun k _ -> best := Some k);
  !best
