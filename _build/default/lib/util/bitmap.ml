(* Fixed-size bitset backed by a Bytes.t.

   Used by the integrity verifier to detect doubly-referenced pages (check
   I2) and by tests to model allocation maps. *)

type t = { bits : Bytes.t; size : int }

let create size =
  if size < 0 then invalid_arg "Bitmap.create";
  { bits = Bytes.make ((size + 7) / 8) '\000'; size }

let size t = t.size

let check_idx t i =
  if i < 0 || i >= t.size then invalid_arg "Bitmap: index out of bounds"

let get t i =
  check_idx t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check_idx t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let clear t i =
  check_idx t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xff))

(* Set the bit and report whether it was already set: the one-pass primitive
   the verifier uses for double-reference detection. *)
let test_and_set t i =
  let was = get t i in
  if not was then set t i;
  was

let popcount t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = ref (Char.code (Bytes.get t.bits i)) in
    while !b <> 0 do
      b := !b land (!b - 1);
      incr n
    done
  done;
  !n

let iter_set t f =
  for i = 0 to t.size - 1 do
    if get t i then f i
  done

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
