(* CRC-32 (IEEE 802.3 polynomial, reflected).

   Used by the mini-LevelDB SSTable/WAL formats to detect torn records
   after simulated crashes. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc b =
  let table = Lazy.force table in
  table.((crc lxor Char.code b) land 0xff) lxor (crc lsr 8)

let of_bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Bytes.get b i)
  done;
  !crc lxor 0xFFFFFFFF

let of_string ?(pos = 0) ?len s =
  of_bytes ~pos ?len (Bytes.unsafe_of_string s)
