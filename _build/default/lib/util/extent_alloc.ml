(* Extent-based free-space allocator.

   The paper implements the heap and inode allocators as DRAM red-black
   trees (§4.5); we keep free extents in a balanced map keyed by start
   address (OCaml's AVL [Map]), with coalescing on free.  The kernel
   controller instantiates one per NUMA node and layers per-CPU front
   caches on top. *)

module IntMap = Map.Make (Int)

type t = {
  mutable free : int IntMap.t; (* start -> length; disjoint, coalesced *)
  mutable free_count : int; (* total free units *)
  total : int;
}

exception Out_of_space

let create ~start ~len =
  if len < 0 || start < 0 then invalid_arg "Extent_alloc.create";
  let free = if len = 0 then IntMap.empty else IntMap.singleton start len in
  { free; free_count = len; total = len }

let free_units t = t.free_count
let used_units t = t.total - t.free_count
let fragments t = IntMap.cardinal t.free

(* First-fit allocation of [n] contiguous units; returns the start. *)
let alloc t n =
  if n <= 0 then invalid_arg "Extent_alloc.alloc";
  let found = IntMap.to_seq t.free |> Seq.find (fun (_, len) -> len >= n) in
  match found with
  | None -> raise Out_of_space
  | Some (start, len) ->
    t.free <- IntMap.remove start t.free;
    if len > n then t.free <- IntMap.add (start + n) (len - n) t.free;
    t.free_count <- t.free_count - n;
    start

let alloc_one t = alloc t 1

(* Is [start, start+n) entirely covered by one free extent? *)
let is_free t start n =
  match IntMap.find_last_opt (fun s -> s <= start) t.free with
  | None -> false
  | Some (s, len) -> s + len >= start + n

(* Allocate a specific range; used when rebuilding allocator state from the
   core state after a crash (the free map itself is auxiliary state). *)
let alloc_at t start n =
  if n <= 0 then invalid_arg "Extent_alloc.alloc_at";
  if not (is_free t start n) then raise Out_of_space;
  let s, len =
    match IntMap.find_last_opt (fun s -> s <= start) t.free with
    | Some (s, len) -> (s, len)
    | None -> assert false
  in
  t.free <- IntMap.remove s t.free;
  if start > s then t.free <- IntMap.add s (start - s) t.free;
  let tail = s + len - (start + n) in
  if tail > 0 then t.free <- IntMap.add (start + n) tail t.free;
  t.free_count <- t.free_count - n

let free t start n =
  if n <= 0 then invalid_arg "Extent_alloc.free";
  (* Refuse double frees: the range must not intersect any free extent. *)
  (match IntMap.find_last_opt (fun s -> s <= start) t.free with
  | Some (s, len) when s + len > start -> invalid_arg "Extent_alloc.free: double free"
  | _ -> ());
  (match IntMap.find_first_opt (fun s -> s > start) t.free with
  | Some (s, _) when s < start + n -> invalid_arg "Extent_alloc.free: double free"
  | _ -> ());
  (* Coalesce with predecessor and successor. *)
  let start', n' =
    match IntMap.find_last_opt (fun s -> s <= start) t.free with
    | Some (s, len) when s + len = start ->
      t.free <- IntMap.remove s t.free;
      (s, len + n)
    | _ -> (start, n)
  in
  let n' =
    match IntMap.find_first_opt (fun s -> s >= start') t.free with
    | Some (s, len) when start' + n' = s ->
      t.free <- IntMap.remove s t.free;
      n' + len
    | _ -> n'
  in
  t.free <- IntMap.add start' n' t.free;
  t.free_count <- t.free_count + n

(* Fold over free extents in address order (tests and fsck-style audits). *)
let fold_free t init f = IntMap.fold (fun start len acc -> f acc ~start ~len) t.free init
