lib/util/extent_alloc.mli:
