lib/util/crc32.ml: Array Bytes Char Lazy
