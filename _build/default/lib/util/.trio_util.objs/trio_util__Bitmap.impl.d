lib/util/bitmap.ml: Bytes Char
