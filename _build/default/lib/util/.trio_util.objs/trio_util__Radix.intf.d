lib/util/radix.mli:
