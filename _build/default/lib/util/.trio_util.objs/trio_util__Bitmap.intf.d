lib/util/bitmap.mli:
