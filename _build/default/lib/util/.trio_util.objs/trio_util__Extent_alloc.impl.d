lib/util/extent_alloc.ml: Int Map Seq
