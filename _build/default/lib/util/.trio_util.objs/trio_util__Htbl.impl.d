lib/util/htbl.ml: Array Char Int List Option String
