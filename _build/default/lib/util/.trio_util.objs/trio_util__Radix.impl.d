lib/util/radix.ml: Array Option
