lib/util/rng.mli: Bytes
