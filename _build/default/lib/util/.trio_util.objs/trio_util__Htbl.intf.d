lib/util/htbl.mli:
