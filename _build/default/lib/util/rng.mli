(** Deterministic splitmix64 pseudo-random number generator.

    All randomized components take an explicit generator so that simulations
    are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent copy with the same future stream. *)

val next : t -> int
(** Uniform non-negative int in [0, 2{^62}). *)

val next_int64 : t -> int64
(** Uniform 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val zipf : t -> n:int -> theta:float -> int
(** Zipf-like skewed sample in [0, n); [theta = 0] degrades to uniform. *)

val bytes : t -> int -> Bytes.t
(** Fresh buffer of random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-thread streams). *)
