(** Fixed-size bitset. *)

type t

val create : int -> t
(** [create n] is a bitset over indices [0, n), all clear. *)

val size : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val test_and_set : t -> int -> bool
(** Sets the bit; returns [true] iff it was already set. *)

val popcount : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Apply to every set index in increasing order. *)

val reset : t -> unit
(** Clear all bits. *)
