(** CRC-32 (IEEE, reflected) for record integrity in the mini-LevelDB
    on-disk formats. *)

val of_bytes : ?pos:int -> ?len:int -> Bytes.t -> int
val of_string : ?pos:int -> ?len:int -> string -> int
