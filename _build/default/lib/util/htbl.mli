(** Resizable chained hash table with stable lock stripes.

    Concurrency control is the caller's responsibility: stripe locks over
    [stripe_of_key] remain valid across resizes. *)

type ('k, 'v) t

val create :
  ?initial_size:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t

val create_string : ?initial_size:int -> unit -> (string, 'v) t
(** Table keyed by strings (FNV-1a hash). *)

val create_int : ?initial_size:int -> unit -> (int, 'v) t

val length : ('k, 'v) t -> int
val bucket_count : ('k, 'v) t -> int

val resize_count : ('k, 'v) t -> int
(** How many times the table rehashed (benchmark instrumentation). *)

val stripes : int
(** Number of lock stripes ([stripe_of_key] ranges over [0, stripes)). *)

val stripe_of_key : ('k, 'v) t -> 'k -> int
(** Stable stripe of a key; unaffected by resizes. *)

val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val replace : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. *)

val add_if_absent : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert only if absent; [false] if the key was already bound. *)

val remove : ('k, 'v) t -> 'k -> bool
(** [true] iff a binding was removed. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
val fold : ('k, 'v) t -> 'b -> ('b -> 'k -> 'v -> 'b) -> 'b
val clear : ('k, 'v) t -> unit

val string_hash : string -> int
val int_hash : int -> int
