(** Extent-based free-space allocator with coalescing.

    Backs the kernel controller's per-NUMA-node page allocators and the
    inode-number allocator. *)

type t

exception Out_of_space

val create : start:int -> len:int -> t
(** [create ~start ~len] manages units [start, start+len). *)

val free_units : t -> int
val used_units : t -> int

val fragments : t -> int
(** Number of free extents (fragmentation metric for the aging benches). *)

val alloc : t -> int -> int
(** [alloc t n] returns the start of a fresh contiguous run of [n] units
    (first fit). Raises {!Out_of_space}. *)

val alloc_one : t -> int

val alloc_at : t -> int -> int -> unit
(** [alloc_at t start n] claims a specific range; raises {!Out_of_space}
    if any part is already allocated. Used when rebuilding allocator state
    from the core state. *)

val is_free : t -> int -> int -> bool

val free : t -> int -> int -> unit
(** [free t start n] returns a range; raises [Invalid_argument] on double
    free. *)

val fold_free : t -> 'a -> ('a -> start:int -> len:int -> 'a) -> 'a
