(** Radix tree over non-negative integer keys (6 bits per level).

    The per-file index structure of ArckFS' LibFS auxiliary state. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val insert : 'a t -> int -> 'a -> unit
(** Insert or replace. Raises [Invalid_argument] on a negative key. *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool
val remove : 'a t -> int -> unit

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit bindings in increasing key order. *)

val fold : 'a t -> 'b -> ('b -> int -> 'a -> 'b) -> 'b
val clear : 'a t -> unit

val max_key : 'a t -> int option
(** Largest key present. *)
