(* Resizable chained hash table.

   The per-directory name index of ArckFS' LibFS auxiliary state (paper
   §4.2) and the global full-path index of FPFS (§5).  Concurrency control
   is the caller's business: ArckFS stripes sim locks over [stripe_of_key]
   so that bucket locking survives resizes (the stripe of a key is stable,
   the bucket is not). *)

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable buckets : ('k * 'v) list array;
  mutable count : int;
  mutable resizes : int; (* exposed for benches: how often we rehashed *)
}

let default_size = 16
let max_load = 2 (* resize when count > max_load * buckets *)

let create ?(initial_size = default_size) ~hash ~equal () =
  let size = max 1 initial_size in
  { hash; equal; buckets = Array.make size []; count = 0; resizes = 0 }

let length t = t.count
let bucket_count t = Array.length t.buckets
let resize_count t = t.resizes

let bucket_index t k = t.hash k land max_int mod Array.length t.buckets

let stripes = 64

let stripe_of_key t k = t.hash k land max_int mod stripes

let resize t =
  let old = t.buckets in
  let nsize = Array.length old * 2 in
  t.buckets <- Array.make nsize [];
  t.resizes <- t.resizes + 1;
  Array.iter
    (fun chain ->
      List.iter
        (fun ((k, _) as kv) ->
          let i = t.hash k land max_int mod nsize in
          t.buckets.(i) <- kv :: t.buckets.(i))
        chain)
    old

let find t k =
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else go rest
  in
  go t.buckets.(bucket_index t k)

let mem t k = Option.is_some (find t k)

let replace t k v =
  let i = bucket_index t k in
  let chain = t.buckets.(i) in
  let existed = List.exists (fun (k', _) -> t.equal k k') chain in
  let chain = if existed then List.filter (fun (k', _) -> not (t.equal k k')) chain else chain in
  t.buckets.(i) <- (k, v) :: chain;
  if not existed then begin
    t.count <- t.count + 1;
    if t.count > max_load * Array.length t.buckets then resize t
  end

(* Insert only if absent; returns [false] if the key already exists.  This
   is the primitive `create` uses so that duplicate names are refused
   atomically under the bucket stripe lock. *)
let add_if_absent t k v =
  let i = bucket_index t k in
  if List.exists (fun (k', _) -> t.equal k k') t.buckets.(i) then false
  else begin
    t.buckets.(i) <- (k, v) :: t.buckets.(i);
    t.count <- t.count + 1;
    if t.count > max_load * Array.length t.buckets then resize t;
    true
  end

let remove t k =
  let i = bucket_index t k in
  let chain = t.buckets.(i) in
  if List.exists (fun (k', _) -> t.equal k k') chain then begin
    t.buckets.(i) <- List.filter (fun (k', _) -> not (t.equal k k')) chain;
    t.count <- t.count - 1;
    true
  end
  else false

let iter t f = Array.iter (fun chain -> List.iter (fun (k, v) -> f k v) chain) t.buckets

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let clear t =
  t.buckets <- Array.make default_size [];
  t.count <- 0

(* FNV-1a, the default hash for string keys (file names, paths). *)
let string_hash s =
  let h = ref 0x1cbf29ce4842223 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let create_string ?initial_size () = create ?initial_size ~hash:string_hash ~equal:String.equal ()

let int_hash i =
  (* splitmix64-style finalizer over the int *)
  let z = i + 0x9e3779b9 in
  let z = (z lxor (z lsr 16)) * 0x85ebca6b in
  let z = (z lxor (z lsr 13)) * 0xc2b2ae35 in
  (z lxor (z lsr 16)) land max_int

let create_int ?initial_size () = create ?initial_size ~hash:int_hash ~equal:Int.equal ()
