test/test_arckfs.mli:
