test/test_verifier.mli:
