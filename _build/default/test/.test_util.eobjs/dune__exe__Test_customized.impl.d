test/test_customized.ml: Alcotest Arckfs Bytes Conformance Fpfs Kvfs List Printf String Trio_core Trio_sim Trio_workloads
