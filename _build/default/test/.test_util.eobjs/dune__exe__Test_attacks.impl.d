test/test_attacks.ml: Alcotest List Trio_attacks
