test/test_baselines.ml: Alcotest Arckfs Array Bytes Conformance Lazy List Printf Trio_core Trio_sim Trio_workloads
