test/test_verifier.ml: Alcotest Arckfs Bytes Helpers List Option String Trio_core Trio_nvm Trio_sim
