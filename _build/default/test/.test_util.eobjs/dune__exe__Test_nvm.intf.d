test/test_nvm.mli:
