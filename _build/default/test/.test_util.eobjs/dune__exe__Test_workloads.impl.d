test/test_workloads.ml: Alcotest List Trio_core Trio_sim Trio_workloads
