test/test_minidb.ml: Alcotest Arckfs Bytes List Minidb Printf String Trio_core Trio_nvm Trio_workloads
