test/test_core.ml: Alcotest Arckfs Array Bytes Helpers List Option String Trio_core Trio_nvm Trio_sim
