test/test_attacks.mli:
