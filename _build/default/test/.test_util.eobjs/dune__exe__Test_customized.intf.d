test/test_customized.mli:
