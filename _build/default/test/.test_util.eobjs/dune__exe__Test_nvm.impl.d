test/test_nvm.ml: Alcotest Array Bytes Char Gen List Option Printf QCheck QCheck_alcotest String Trio_nvm Trio_sim Trio_util
