test/test_minidb.mli:
