test/test_crash.ml: Alcotest Arckfs Bytes Char Format Gen Hashtbl List Printf QCheck QCheck_alcotest Result String Trio_core Trio_nvm Trio_sim Trio_util
