test/test_sim.ml: Alcotest Hashtbl List Option QCheck QCheck_alcotest Trio_sim
