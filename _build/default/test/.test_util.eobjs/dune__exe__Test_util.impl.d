test/test_util.ml: Alcotest Bytes Gen Hashtbl List QCheck QCheck_alcotest Trio_util
