test/test_arckfs.ml: Alcotest Arckfs Bytes Char Helpers List Option Printf Result String Trio_core Trio_nvm Trio_sim
