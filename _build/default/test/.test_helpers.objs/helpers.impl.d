test/helpers.ml: Alcotest Arckfs Bytes Trio_core Trio_nvm Trio_sim
