test/conformance.ml: Alcotest Bytes Char List String Trio_core
