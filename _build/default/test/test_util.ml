(* Unit + property tests for the generic data structures in Trio_util. *)

module Rng = Trio_util.Rng
module Bitmap = Trio_util.Bitmap
module Radix = Trio_util.Radix
module Htbl = Trio_util.Htbl
module Extent_alloc = Trio_util.Extent_alloc
module Crc32 = Trio_util.Crc32

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.in_range r ~lo:5 ~hi:9 in
    if v < 5 || v > 9 then Alcotest.failf "Rng.in_range out of bounds: %d" v
  done

let test_rng_zipf_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.zipf r ~n:100 ~theta:0.99 in
    if v < 0 || v >= 100 then Alcotest.failf "zipf out of bounds: %d" v
  done

let test_rng_zipf_skew () =
  (* With high skew, low indices must dominate. *)
  let r = Rng.create 11 in
  let low = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    if Rng.zipf r ~n:1000 ~theta:0.99 < 100 then incr low
  done;
  if !low * 100 / total < 50 then
    Alcotest.failf "zipf not skewed: only %d/%d samples in the first decile" !low total

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let r2 = Rng.split r in
  let v1 = Rng.next r and v2 = Rng.next r2 in
  if v1 = v2 then Alcotest.fail "split streams should diverge"

(* ------------------------------------------------------------------ *)
(* Bitmap *)

let test_bitmap_basic () =
  let b = Bitmap.create 100 in
  Alcotest.(check bool) "initially clear" false (Bitmap.get b 50);
  Bitmap.set b 50;
  Alcotest.(check bool) "set" true (Bitmap.get b 50);
  Alcotest.(check bool) "neighbours untouched" false (Bitmap.get b 49);
  Alcotest.(check bool) "neighbours untouched" false (Bitmap.get b 51);
  Bitmap.clear b 50;
  Alcotest.(check bool) "cleared" false (Bitmap.get b 50)

let test_bitmap_test_and_set () =
  let b = Bitmap.create 8 in
  Alcotest.(check bool) "first" false (Bitmap.test_and_set b 3);
  Alcotest.(check bool) "second" true (Bitmap.test_and_set b 3)

let test_bitmap_popcount () =
  let b = Bitmap.create 64 in
  List.iter (Bitmap.set b) [ 0; 7; 8; 63 ];
  Alcotest.(check int) "popcount" 4 (Bitmap.popcount b);
  Bitmap.reset b;
  Alcotest.(check int) "after reset" 0 (Bitmap.popcount b)

let test_bitmap_bounds () =
  let b = Bitmap.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitmap: index out of bounds") (fun () ->
      ignore (Bitmap.get b 10))

(* ------------------------------------------------------------------ *)
(* Radix *)

let test_radix_basic () =
  let r = Radix.create () in
  Radix.insert r 0 "a";
  Radix.insert r 63 "b";
  Radix.insert r 64 "c";
  Radix.insert r 1_000_000 "d";
  Alcotest.(check (option string)) "find 0" (Some "a") (Radix.find r 0);
  Alcotest.(check (option string)) "find 63" (Some "b") (Radix.find r 63);
  Alcotest.(check (option string)) "find 64" (Some "c") (Radix.find r 64);
  Alcotest.(check (option string)) "find big" (Some "d") (Radix.find r 1_000_000);
  Alcotest.(check (option string)) "absent" None (Radix.find r 5);
  Alcotest.(check int) "length" 4 (Radix.length r)

let test_radix_overwrite () =
  let r = Radix.create () in
  Radix.insert r 10 "x";
  Radix.insert r 10 "y";
  Alcotest.(check (option string)) "overwritten" (Some "y") (Radix.find r 10);
  Alcotest.(check int) "length stays 1" 1 (Radix.length r)

let test_radix_remove () =
  let r = Radix.create () in
  Radix.insert r 100 1;
  Radix.remove r 100;
  Alcotest.(check (option int)) "removed" None (Radix.find r 100);
  Alcotest.(check int) "length" 0 (Radix.length r);
  (* removing a missing key is a no-op *)
  Radix.remove r 100;
  Radix.remove r 424242

let test_radix_iter_order () =
  let r = Radix.create () in
  let keys = [ 512; 3; 70; 4095; 0; 100_000 ] in
  List.iter (fun k -> Radix.insert r k k) keys;
  let seen = ref [] in
  Radix.iter r (fun k v ->
      Alcotest.(check int) "key = value" k v;
      seen := k :: !seen);
  Alcotest.(check (list int)) "in increasing order" (List.sort compare keys) (List.rev !seen)

let test_radix_max_key () =
  let r = Radix.create () in
  Alcotest.(check (option int)) "empty" None (Radix.max_key r);
  Radix.insert r 77 ();
  Radix.insert r 7777 ();
  Alcotest.(check (option int)) "max" (Some 7777) (Radix.max_key r)

let prop_radix_model =
  QCheck.Test.make ~name:"radix agrees with Hashtbl model" ~count:200
    QCheck.(list (pair (int_bound 100_000) (int_bound 1000)))
    (fun ops ->
      let r = Radix.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          if v mod 5 = 0 then begin
            Radix.remove r k;
            Hashtbl.remove model k
          end
          else begin
            Radix.insert r k v;
            Hashtbl.replace model k v
          end)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Radix.find r k = Some v) model true
      && Radix.length r = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* Htbl *)

let test_htbl_basic () =
  let h = Htbl.create_string () in
  Htbl.replace h "foo" 1;
  Htbl.replace h "bar" 2;
  Alcotest.(check (option int)) "foo" (Some 1) (Htbl.find h "foo");
  Alcotest.(check (option int)) "bar" (Some 2) (Htbl.find h "bar");
  Alcotest.(check (option int)) "baz" None (Htbl.find h "baz");
  Htbl.replace h "foo" 3;
  Alcotest.(check (option int)) "overwrite" (Some 3) (Htbl.find h "foo");
  Alcotest.(check int) "length" 2 (Htbl.length h)

let test_htbl_add_if_absent () =
  let h = Htbl.create_string () in
  Alcotest.(check bool) "first insert" true (Htbl.add_if_absent h "k" 1);
  Alcotest.(check bool) "duplicate refused" false (Htbl.add_if_absent h "k" 2);
  Alcotest.(check (option int)) "original kept" (Some 1) (Htbl.find h "k")

let test_htbl_remove () =
  let h = Htbl.create_string () in
  Htbl.replace h "x" 1;
  Alcotest.(check bool) "removed" true (Htbl.remove h "x");
  Alcotest.(check bool) "already gone" false (Htbl.remove h "x");
  Alcotest.(check int) "empty" 0 (Htbl.length h)

let test_htbl_resize_preserves () =
  let h = Htbl.create_string ~initial_size:2 () in
  let n = 1000 in
  for i = 1 to n do
    Htbl.replace h (string_of_int i) i
  done;
  Alcotest.(check int) "all present" n (Htbl.length h);
  if Htbl.resize_count h = 0 then Alcotest.fail "expected at least one resize";
  for i = 1 to n do
    Alcotest.(check (option int)) "lookup" (Some i) (Htbl.find h (string_of_int i))
  done

let test_htbl_stripe_stable () =
  let h = Htbl.create_string ~initial_size:2 () in
  let stripe_before = Htbl.stripe_of_key h "name" in
  for i = 1 to 1000 do
    Htbl.replace h (string_of_int i) i
  done;
  Alcotest.(check int) "stripe survives resizes" stripe_before (Htbl.stripe_of_key h "name")

let prop_htbl_model =
  QCheck.Test.make ~name:"htbl agrees with Hashtbl model" ~count:200
    QCheck.(list (pair (string_of_size (Gen.int_range 1 8)) small_int))
    (fun ops ->
      let h = Htbl.create_string () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          if v mod 7 = 0 then begin
            ignore (Htbl.remove h k);
            Hashtbl.remove model k
          end
          else begin
            Htbl.replace h k v;
            Hashtbl.replace model k v
          end)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Htbl.find h k = Some v) model true
      && Htbl.length h = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* Extent allocator *)

let test_alloc_basic () =
  let a = Extent_alloc.create ~start:0 ~len:100 in
  let p1 = Extent_alloc.alloc a 10 in
  let p2 = Extent_alloc.alloc a 10 in
  if p1 = p2 then Alcotest.fail "overlapping allocations";
  Alcotest.(check int) "free count" 80 (Extent_alloc.free_units a);
  Extent_alloc.free a p1 10;
  Alcotest.(check int) "after free" 90 (Extent_alloc.free_units a)

let test_alloc_exhaustion () =
  let a = Extent_alloc.create ~start:0 ~len:10 in
  ignore (Extent_alloc.alloc a 10);
  Alcotest.check_raises "out of space" Extent_alloc.Out_of_space (fun () ->
      ignore (Extent_alloc.alloc a 1))

let test_alloc_coalesce () =
  let a = Extent_alloc.create ~start:0 ~len:30 in
  let p = Extent_alloc.alloc a 30 in
  Alcotest.(check int) "p" 0 p;
  Extent_alloc.free a 0 10;
  Extent_alloc.free a 20 10;
  Alcotest.(check int) "two fragments" 2 (Extent_alloc.fragments a);
  Extent_alloc.free a 10 10;
  Alcotest.(check int) "coalesced" 1 (Extent_alloc.fragments a);
  Alcotest.(check int) "alloc all again" 0 (Extent_alloc.alloc a 30)

let test_alloc_double_free () =
  let a = Extent_alloc.create ~start:0 ~len:10 in
  let p = Extent_alloc.alloc a 5 in
  Extent_alloc.free a p 5;
  (try
     Extent_alloc.free a p 5;
     Alcotest.fail "double free not detected"
   with Invalid_argument _ -> ())

let test_alloc_at () =
  let a = Extent_alloc.create ~start:0 ~len:100 in
  Extent_alloc.alloc_at a 50 10;
  Alcotest.(check bool) "mid not free" false (Extent_alloc.is_free a 55 1);
  Alcotest.(check bool) "before free" true (Extent_alloc.is_free a 0 50);
  Alcotest.check_raises "overlap refused" Extent_alloc.Out_of_space (fun () ->
      Extent_alloc.alloc_at a 55 10)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap and free count balances" ~count:100
    QCheck.(list (int_range 1 20))
    (fun sizes ->
      let a = Extent_alloc.create ~start:0 ~len:10_000 in
      let held = ref [] in
      List.iter
        (fun size ->
          match Extent_alloc.alloc a size with
          | start ->
            (* check no overlap with anything held *)
            List.iter
              (fun (s, l) ->
                if start < s + l && s < start + size then failwith "overlap")
              !held;
            held := (start, size) :: !held
          | exception Extent_alloc.Out_of_space -> ())
        sizes;
      let used = List.fold_left (fun acc (_, l) -> acc + l) 0 !held in
      Extent_alloc.used_units a = used)

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc32_known () =
  (* standard test vector *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.of_string "123456789")

let test_crc32_detects_change () =
  let crc1 = Crc32.of_string "hello world" in
  let crc2 = Crc32.of_string "hello worle" in
  if crc1 = crc2 then Alcotest.fail "crc collision on single-byte change"

let test_crc32_sub_range () =
  let b = Bytes.of_string "xxhelloxx" in
  Alcotest.(check int) "sub range" (Crc32.of_string "hello") (Crc32.of_bytes ~pos:2 ~len:5 b)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "zipf bounds" `Quick test_rng_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "basic" `Quick test_bitmap_basic;
          Alcotest.test_case "test_and_set" `Quick test_bitmap_test_and_set;
          Alcotest.test_case "popcount" `Quick test_bitmap_popcount;
          Alcotest.test_case "bounds" `Quick test_bitmap_bounds;
        ] );
      ( "radix",
        [
          Alcotest.test_case "basic" `Quick test_radix_basic;
          Alcotest.test_case "overwrite" `Quick test_radix_overwrite;
          Alcotest.test_case "remove" `Quick test_radix_remove;
          Alcotest.test_case "iter order" `Quick test_radix_iter_order;
          Alcotest.test_case "max_key" `Quick test_radix_max_key;
          qc prop_radix_model;
        ] );
      ( "htbl",
        [
          Alcotest.test_case "basic" `Quick test_htbl_basic;
          Alcotest.test_case "add_if_absent" `Quick test_htbl_add_if_absent;
          Alcotest.test_case "remove" `Quick test_htbl_remove;
          Alcotest.test_case "resize" `Quick test_htbl_resize_preserves;
          Alcotest.test_case "stripe stability" `Quick test_htbl_stripe_stable;
          qc prop_htbl_model;
        ] );
      ( "extent_alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "coalesce" `Quick test_alloc_coalesce;
          Alcotest.test_case "double free" `Quick test_alloc_double_free;
          Alcotest.test_case "alloc_at" `Quick test_alloc_at;
          qc prop_alloc_no_overlap;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_known;
          Alcotest.test_case "detects change" `Quick test_crc32_detects_change;
          Alcotest.test_case "sub range" `Quick test_crc32_sub_range;
        ] );
    ]
