(* Generic file system conformance suite.

   Runs the same POSIX-semantics checks against any [Fs_intf.t], so
   ArckFS, FPFS, and all seven baseline models are held to identical
   behaviour — which is what makes the benchmark comparisons apples to
   apples. *)

module Fs = Trio_core.Fs_intf
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (errno_to_string e)

let expect_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (errno_to_string expected)
  | Error e ->
    Alcotest.(check string) what (errno_to_string expected) (errno_to_string e)

(* Each check is (name, fs -> unit); [run_check] builds a fresh fs. *)
let checks : (string * (Fs.t -> unit)) list =
  [
    ( "create, stat, close",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c1" 0o640) in
        ok "close" (fs.Fs.close fd);
        let st = ok "stat" (fs.Fs.stat "/c1") in
        Alcotest.(check int) "empty" 0 st.st_size;
        Alcotest.(check bool) "regular" true (st.st_ftype = Reg) );
    ( "duplicate create fails",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/c2" 0o644));
        expect_err "dup" EEXIST (fs.Fs.create "/c2" 0o644) );
    ( "missing file errors",
      fun fs ->
        expect_err "open" ENOENT (fs.Fs.open_ "/absent" [ O_RDONLY ]);
        expect_err "stat" ENOENT (fs.Fs.stat "/absent");
        expect_err "unlink" ENOENT (fs.Fs.unlink "/absent") );
    ( "write then read back",
      fun fs ->
        ok "write" (Fs.write_file fs "/c4" "conformance payload");
        Alcotest.(check string) "read" "conformance payload" (ok "read" (Fs.read_file fs "/c4")) );
    ( "pwrite patches a region",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c5" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 64 'a')));
        ignore (ok "pwrite" (fs.Fs.pwrite fd (Bytes.make 8 'b') 8));
        let buf = Bytes.create 64 in
        ignore (ok "pread" (fs.Fs.pread fd buf 0));
        Alcotest.(check string) "patched"
          ("aaaaaaaa" ^ "bbbbbbbb" ^ String.make 48 'a')
          (Bytes.to_string buf) );
    ( "read past eof returns partial",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c6" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 10 'x')));
        let buf = Bytes.create 100 in
        Alcotest.(check int) "partial" 10 (ok "pread" (fs.Fs.pread fd buf 0));
        Alcotest.(check int) "eof" 0 (ok "pread" (fs.Fs.pread fd buf 10)) );
    ( "append grows the file",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/c7" 0o644) in
        ignore (ok "a1" (fs.Fs.append fd (Bytes.make 100 'p')));
        ignore (ok "a2" (fs.Fs.append fd (Bytes.make 100 'q')));
        Alcotest.(check int) "size" 200 (ok "stat" (fs.Fs.stat "/c7")).st_size );
    ( "truncate shrink and grow",
      fun fs ->
        ok "write" (Fs.write_file fs "/c8" (String.make 5000 'z'));
        ok "shrink" (fs.Fs.truncate "/c8" 10);
        Alcotest.(check int) "shrunk" 10 (ok "stat" (fs.Fs.stat "/c8")).st_size;
        ok "grow" (fs.Fs.truncate "/c8" 100);
        Alcotest.(check int) "grown" 100 (ok "stat" (fs.Fs.stat "/c8")).st_size;
        let content = ok "read" (Fs.read_file fs "/c8") in
        Alcotest.(check string) "zero fill" (String.make 90 '\000') (String.sub content 10 90) );
    ( "mkdir nesting and ENOTDIR",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/d" 0o755);
        ok "mkdir2" (fs.Fs.mkdir "/d/e" 0o755);
        ignore (ok "create" (fs.Fs.create "/d/e/f" 0o644));
        expect_err "through file" ENOTDIR (fs.Fs.create "/d/e/f/g" 0o644) );
    ( "readdir lists entries",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/rd" 0o755);
        ignore (ok "a" (fs.Fs.create "/rd/a" 0o644));
        ignore (ok "b" (fs.Fs.create "/rd/b" 0o644));
        ok "sub" (fs.Fs.mkdir "/rd/sub" 0o755);
        let names =
          ok "readdir" (fs.Fs.readdir "/rd") |> List.map (fun e -> e.d_name) |> List.sort compare
        in
        Alcotest.(check (list string)) "names" [ "a"; "b"; "sub" ] names );
    ( "unlink removes and frees the name",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/u" 0o644));
        ok "unlink" (fs.Fs.unlink "/u");
        expect_err "gone" ENOENT (fs.Fs.stat "/u");
        ignore (ok "recreate" (fs.Fs.create "/u" 0o644)) );
    ( "rmdir requires empty",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/re" 0o755);
        ignore (ok "create" (fs.Fs.create "/re/x" 0o644));
        expect_err "not empty" ENOTEMPTY (fs.Fs.rmdir "/re");
        ok "unlink" (fs.Fs.unlink "/re/x");
        ok "rmdir" (fs.Fs.rmdir "/re") );
    ( "unlink of a directory is refused",
      fun fs ->
        ok "mkdir" (fs.Fs.mkdir "/ud" 0o755);
        expect_err "EISDIR" EISDIR (fs.Fs.unlink "/ud") );
    ( "rename moves content",
      fun fs ->
        ok "mkdir a" (fs.Fs.mkdir "/ra" 0o755);
        ok "mkdir b" (fs.Fs.mkdir "/rb" 0o755);
        ok "write" (Fs.write_file fs "/ra/f" "moved-payload");
        ok "rename" (fs.Fs.rename "/ra/f" "/rb/g");
        expect_err "src gone" ENOENT (fs.Fs.stat "/ra/f");
        Alcotest.(check string) "content" "moved-payload" (ok "read" (Fs.read_file fs "/rb/g")) );
    ( "chmod changes the mode",
      fun fs ->
        ignore (ok "create" (fs.Fs.create "/cm" 0o644));
        ok "chmod" (fs.Fs.chmod "/cm" 0o600);
        Alcotest.(check int) "mode" 0o600 (ok "stat" (fs.Fs.stat "/cm")).st_mode );
    ( "fsync succeeds on an open fd",
      fun fs ->
        let fd = ok "create" (fs.Fs.create "/fy" 0o644) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 10 's')));
        ok "fsync" (fs.Fs.fsync fd);
        expect_err "bad fd" EBADF (fs.Fs.fsync 987654) );
    ( "multi-page data integrity",
      fun fs ->
        let data = String.init 20000 (fun i -> Char.chr (i * 31 mod 256)) in
        ok "write" (Fs.write_file fs "/mp" data);
        Alcotest.(check bool) "equal" true (String.equal data (ok "read" (Fs.read_file fs "/mp"))) );
  ]

(* Build the alcotest cases for a given fs constructor (one fresh file
   system per check). *)
let suite ~make_fs =
  List.map
    (fun (name, check) -> Alcotest.test_case name `Quick (fun () -> make_fs check))
    checks
