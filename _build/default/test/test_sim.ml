(* Tests for the discrete-event scheduler and simulated synchronization. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Resource = Trio_sim.Resource

let run f =
  let s = Sched.create () in
  Sched.spawn s (fun () -> f s);
  ignore (Sched.run s);
  s

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_delay_advances_time () =
  let s = Sched.create () in
  let final = ref 0.0 in
  Sched.spawn s (fun () ->
      Sched.delay 100.0;
      Sched.delay 50.0;
      final := Sched.now s);
  ignore (Sched.run s);
  Alcotest.(check (float 0.001)) "time" 150.0 !final

let test_fibers_interleave () =
  (* Two fibers with different delays must interleave by virtual time. *)
  let s = Sched.create () in
  let log = ref [] in
  Sched.spawn s (fun () ->
      Sched.delay 10.0;
      log := "a10" :: !log;
      Sched.delay 20.0;
      log := "a30" :: !log);
  Sched.spawn s (fun () ->
      Sched.delay 15.0;
      log := "b15" :: !log;
      Sched.delay 20.0;
      log := "b35" :: !log);
  ignore (Sched.run s);
  Alcotest.(check (list string)) "order" [ "a10"; "b15"; "a30"; "b35" ] (List.rev !log)

let test_determinism () =
  let trace () =
    let s = Sched.create () in
    let log = ref [] in
    for i = 0 to 9 do
      Sched.spawn s (fun () ->
          Sched.delay (float_of_int (i * 7 mod 5));
          log := i :: !log;
          Sched.yield ();
          log := (100 + i) :: !log)
    done;
    ignore (Sched.run s);
    List.rev !log
  in
  Alcotest.(check (list int)) "identical traces" (trace ()) (trace ())

let test_run_until () =
  let s = Sched.create () in
  let hits = ref 0 in
  Sched.spawn s (fun () ->
      for _ = 1 to 10 do
        Sched.delay 10.0;
        incr hits
      done);
  let reached = Sched.run ~until:35.0 s in
  Alcotest.(check (float 0.001)) "paused at deadline" 35.0 reached;
  Alcotest.(check int) "three ticks" 3 !hits;
  ignore (Sched.run s);
  Alcotest.(check int) "resumes to completion" 10 !hits

let test_exception_propagates () =
  let s = Sched.create () in
  Sched.spawn s (fun () ->
      Sched.delay 1.0;
      failwith "boom");
  Alcotest.check_raises "fiber exception" (Failure "boom") (fun () -> ignore (Sched.run s))

let test_spawn_cpu_identity () =
  let s = Sched.create () in
  let seen = ref (-1) in
  Sched.spawn ~cpu:5 s (fun () -> seen := Sched.current_cpu ());
  ignore (Sched.run s);
  Alcotest.(check int) "cpu" 5 !seen

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_exclusion () =
  let s = Sched.create () in
  let m = Sync.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for _ = 1 to 5 do
    Sched.spawn s (fun () ->
        for _ = 1 to 10 do
          Sync.Mutex.lock m;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Sched.delay 5.0;
          decr inside;
          incr total;
          Sync.Mutex.unlock m
        done)
  done;
  ignore (Sched.run s);
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check int) "all critical sections ran" 50 !total;
  Alcotest.(check (float 0.001)) "serialized time" 250.0 (Sched.now s)

let test_mutex_try_lock () =
  ignore
    (run (fun _ ->
         let m = Sync.Mutex.create () in
         assert (Sync.Mutex.try_lock m);
         assert (not (Sync.Mutex.try_lock m));
         Sync.Mutex.unlock m;
         assert (Sync.Mutex.try_lock m);
         Sync.Mutex.unlock m))

(* ------------------------------------------------------------------ *)
(* Rwlock *)

let test_rwlock_readers_concurrent () =
  let s = Sched.create () in
  let l = Sync.Rwlock.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    Sched.spawn s (fun () ->
        Sync.Rwlock.read_lock l;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Sched.delay 10.0;
        decr inside;
        Sync.Rwlock.read_unlock l)
  done;
  ignore (Sched.run s);
  Alcotest.(check int) "readers overlap" 4 !max_inside;
  Alcotest.(check (float 0.001)) "parallel time" 10.0 (Sched.now s)

let test_rwlock_writer_excludes () =
  let s = Sched.create () in
  let l = Sync.Rwlock.create () in
  let in_write = ref false and violation = ref false in
  Sched.spawn s (fun () ->
      Sync.Rwlock.write_lock l;
      in_write := true;
      Sched.delay 10.0;
      in_write := false;
      Sync.Rwlock.write_unlock l);
  for _ = 1 to 3 do
    Sched.spawn s (fun () ->
        Sched.delay 1.0;
        Sync.Rwlock.read_lock l;
        if !in_write then violation := true;
        Sched.delay 1.0;
        Sync.Rwlock.read_unlock l)
  done;
  ignore (Sched.run s);
  Alcotest.(check bool) "no reader saw a writer" false !violation

let test_rwlock_writer_not_starved () =
  let s = Sched.create () in
  let l = Sync.Rwlock.create () in
  let writer_done_at = ref 0.0 in
  (* a stream of readers; the writer arrives at t=5 and must get in *)
  for i = 0 to 9 do
    Sched.spawn s (fun () ->
        Sched.delay (float_of_int i *. 2.0);
        Sync.Rwlock.read_lock l;
        Sched.delay 4.0;
        Sync.Rwlock.read_unlock l)
  done;
  Sched.spawn s (fun () ->
      Sched.delay 5.0;
      Sync.Rwlock.write_lock l;
      writer_done_at := Sched.now s;
      Sync.Rwlock.write_unlock l);
  ignore (Sched.run s);
  if !writer_done_at > 30.0 then
    Alcotest.failf "writer starved until %.1f" !writer_done_at

(* ------------------------------------------------------------------ *)
(* Range lock *)

let test_range_lock_disjoint_writes () =
  let s = Sched.create () in
  let rl = Sync.Range_lock.create () in
  let active = ref 0 and max_active = ref 0 in
  for i = 0 to 3 do
    Sched.spawn s (fun () ->
        let lo = i * 100 and hi = (i * 100) + 99 in
        Sync.Range_lock.lock rl ~lo ~hi Sync.Range_lock.Write;
        incr active;
        if !active > !max_active then max_active := !active;
        Sched.delay 10.0;
        decr active;
        Sync.Range_lock.unlock rl ~lo ~hi Sync.Range_lock.Write)
  done;
  ignore (Sched.run s);
  Alcotest.(check int) "disjoint writers run in parallel" 4 !max_active

let test_range_lock_overlap_serializes () =
  let s = Sched.create () in
  let rl = Sync.Range_lock.create () in
  let active = ref 0 and max_active = ref 0 in
  for _ = 0 to 3 do
    Sched.spawn s (fun () ->
        Sync.Range_lock.lock rl ~lo:50 ~hi:150 Sync.Range_lock.Write;
        incr active;
        if !active > !max_active then max_active := !active;
        Sched.delay 10.0;
        decr active;
        Sync.Range_lock.unlock rl ~lo:50 ~hi:150 Sync.Range_lock.Write)
  done;
  ignore (Sched.run s);
  Alcotest.(check int) "overlapping writers serialize" 1 !max_active

let test_range_lock_readers_share () =
  let s = Sched.create () in
  let rl = Sync.Range_lock.create () in
  let max_active = ref 0 and active = ref 0 in
  for _ = 0 to 2 do
    Sched.spawn s (fun () ->
        Sync.Range_lock.lock rl ~lo:0 ~hi:100 Sync.Range_lock.Read;
        incr active;
        if !active > !max_active then max_active := !active;
        Sched.delay 10.0;
        decr active;
        Sync.Range_lock.unlock rl ~lo:0 ~hi:100 Sync.Range_lock.Read)
  done;
  ignore (Sched.run s);
  Alcotest.(check int) "readers share" 3 !max_active

(* ------------------------------------------------------------------ *)
(* Ivar / Chan / Waitgroup *)

let test_ivar () =
  let s = Sched.create () in
  let iv = Sync.Ivar.create () in
  let got = ref 0 in
  Sched.spawn s (fun () -> got := Sync.Ivar.read iv);
  Sched.spawn s (fun () ->
      Sched.delay 10.0;
      Sync.Ivar.fill iv 42);
  ignore (Sched.run s);
  Alcotest.(check int) "value" 42 !got

let test_chan_fifo () =
  let s = Sched.create () in
  let c = Sync.Chan.create 4 in
  let got = ref [] in
  Sched.spawn s (fun () ->
      for i = 1 to 10 do
        Sync.Chan.send c i
      done);
  Sched.spawn s (fun () ->
      for _ = 1 to 10 do
        got := Sync.Chan.recv c :: !got
      done);
  ignore (Sched.run s);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !got)

let test_chan_backpressure () =
  let s = Sched.create () in
  let c = Sync.Chan.create 2 in
  let sent = ref 0 in
  Sched.spawn s (fun () ->
      for _ = 1 to 10 do
        Sync.Chan.send c ();
        incr sent
      done);
  Sched.spawn s (fun () ->
      Sched.delay 100.0;
      for _ = 1 to 10 do
        ignore (Sync.Chan.recv c)
      done);
  let _ = Sched.run ~until:50.0 s in
  (* with capacity 2, at most 3 sends can complete before any recv *)
  if !sent > 3 then Alcotest.failf "no backpressure: %d sends completed" !sent;
  ignore (Sched.run s);
  Alcotest.(check int) "all sent eventually" 10 !sent

let test_chan_close_unblocks () =
  let s = Sched.create () in
  let c = Sync.Chan.create 1 in
  let closed_seen = ref false in
  Sched.spawn s (fun () ->
      try ignore (Sync.Chan.recv c) with Sync.Chan.Closed -> closed_seen := true);
  Sched.spawn s (fun () ->
      Sched.delay 5.0;
      Sync.Chan.close c);
  ignore (Sched.run s);
  Alcotest.(check bool) "receiver unblocked" true !closed_seen

let test_waitgroup () =
  let s = Sched.create () in
  let wg = Sync.Waitgroup.create 3 in
  let done_at = ref 0.0 in
  for i = 1 to 3 do
    Sched.spawn s (fun () ->
        Sched.delay (float_of_int i *. 10.0);
        Sync.Waitgroup.done_ wg)
  done;
  Sched.spawn s (fun () ->
      Sync.Waitgroup.wait wg;
      done_at := Sched.now s);
  ignore (Sched.run s);
  Alcotest.(check (float 0.001)) "waited for slowest" 30.0 !done_at

(* ------------------------------------------------------------------ *)
(* Resource contention *)

let test_server_bandwidth_sharing () =
  (* Two concurrent equal transfers through a flat-bandwidth server must
     take about twice as long as one. *)
  let single =
    let s = Sched.create () in
    let srv = Resource.Server.create ~name:"x" ~base_latency:0.0 ~curve:(fun _ -> 1.0) in
    Sched.spawn s (fun () -> Resource.Server.access srv ~bytes:1000);
    Sched.run s
  in
  let double =
    let s = Sched.create () in
    let srv = Resource.Server.create ~name:"x" ~base_latency:0.0 ~curve:(fun _ -> 1.0) in
    Sched.spawn s (fun () -> Resource.Server.access srv ~bytes:1000);
    Sched.spawn s (fun () -> Resource.Server.access srv ~bytes:1000);
    Sched.run s
  in
  Alcotest.(check (float 1.0)) "single" 1000.0 single;
  if double < 1500.0 then Alcotest.failf "no contention: double=%f" double

let test_hotspot_contention () =
  let cost n =
    let s = Sched.create () in
    let h = Resource.Hotspot.create ~base:10.0 ~alpha:10.0 in
    for _ = 1 to n do
      Sched.spawn s (fun () -> Resource.Hotspot.touch h)
    done;
    Sched.run s
  in
  let c1 = cost 1 and c8 = cost 8 in
  if c8 <= c1 then Alcotest.fail "hotspot should get slower under contention"

(* ------------------------------------------------------------------ *)
(* Property tests *)

(* Random schedules of readers and writers never co-occupy the lock. *)
let prop_rwlock_invariant =
  QCheck.Test.make ~name:"rwlock never admits writer with others" ~count:150
    QCheck.(list_of_size (QCheck.Gen.int_range 2 25) (pair bool (int_bound 30)))
    (fun jobs ->
      let s = Sched.create () in
      let l = Sync.Rwlock.create () in
      let readers = ref 0 and writers = ref 0 and bad = ref false in
      List.iter
        (fun (is_writer, start) ->
          Sched.spawn s (fun () ->
              Sched.delay (float_of_int start);
              if is_writer then begin
                Sync.Rwlock.write_lock l;
                incr writers;
                if !writers > 1 || !readers > 0 then bad := true;
                Sched.delay 5.0;
                decr writers;
                Sync.Rwlock.write_unlock l
              end
              else begin
                Sync.Rwlock.read_lock l;
                incr readers;
                if !writers > 0 then bad := true;
                Sched.delay 5.0;
                decr readers;
                Sync.Rwlock.read_unlock l
              end))
        jobs;
      ignore (Sched.run s);
      (not !bad) && !readers = 0 && !writers = 0)

(* Range locks never admit overlapping conflicting holders. *)
let prop_range_lock_invariant =
  QCheck.Test.make ~name:"range lock admits only compatible ranges" ~count:150
    QCheck.(
      list_of_size (QCheck.Gen.int_range 2 20)
        (quad bool (int_bound 200) (int_range 1 50) (int_bound 30)))
    (fun jobs ->
      let s = Sched.create () in
      let rl = Sync.Range_lock.create () in
      let held : (int * int * Sync.Range_lock.mode) list ref = ref [] in
      let bad = ref false in
      List.iter
        (fun (is_writer, lo, len, start) ->
          let hi = lo + len - 1 in
          let mode = if is_writer then Sync.Range_lock.Write else Sync.Range_lock.Read in
          Sched.spawn s (fun () ->
              Sched.delay (float_of_int start);
              Sync.Range_lock.lock rl ~lo ~hi mode;
              List.iter
                (fun (l2, h2, m2) ->
                  let overlap = lo <= h2 && l2 <= hi in
                  if overlap && (mode = Sync.Range_lock.Write || m2 = Sync.Range_lock.Write)
                  then bad := true)
                !held;
              held := (lo, hi, mode) :: !held;
              Sched.delay 4.0;
              held := List.filter (fun r -> r <> (lo, hi, mode)) !held;
              Sync.Range_lock.unlock rl ~lo ~hi mode))
        jobs;
      ignore (Sched.run s);
      (not !bad) && !held = [])

(* Channels deliver every message exactly once, in order per sender. *)
let prop_chan_exactly_once =
  QCheck.Test.make ~name:"channel delivers exactly once" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 40))
    (fun (consumers, n) ->
      let s = Sched.create () in
      let c = Sync.Chan.create 3 in
      let seen = Hashtbl.create 16 in
      Sched.spawn s (fun () ->
          for i = 1 to n do
            Sync.Chan.send c i
          done;
          Sync.Chan.close c);
      for _ = 1 to consumers do
        Sched.spawn s (fun () ->
            try
              while true do
                let v = Sync.Chan.recv c in
                Hashtbl.replace seen v (1 + Option.value (Hashtbl.find_opt seen v) ~default:0)
              done
            with Sync.Chan.Closed -> ())
      done;
      ignore (Sched.run s);
      Hashtbl.length seen = n && Hashtbl.fold (fun _ c acc -> acc && c = 1) seen true)

let () =
  Alcotest.run "sim"
    [
      ( "sched",
        [
          Alcotest.test_case "delay advances time" `Quick test_delay_advances_time;
          Alcotest.test_case "fibers interleave" `Quick test_fibers_interleave;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "cpu identity" `Quick test_spawn_cpu_identity;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers concurrent" `Quick test_rwlock_readers_concurrent;
          Alcotest.test_case "writer excludes" `Quick test_rwlock_writer_excludes;
          Alcotest.test_case "writer not starved" `Quick test_rwlock_writer_not_starved;
        ] );
      ( "range_lock",
        [
          Alcotest.test_case "disjoint writes parallel" `Quick test_range_lock_disjoint_writes;
          Alcotest.test_case "overlap serializes" `Quick test_range_lock_overlap_serializes;
          Alcotest.test_case "readers share" `Quick test_range_lock_readers_share;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "ivar" `Quick test_ivar;
          Alcotest.test_case "chan fifo" `Quick test_chan_fifo;
          Alcotest.test_case "chan backpressure" `Quick test_chan_backpressure;
          Alcotest.test_case "chan close" `Quick test_chan_close_unblocks;
          Alcotest.test_case "waitgroup" `Quick test_waitgroup;
        ] );
      ( "resource",
        [
          Alcotest.test_case "server bandwidth sharing" `Quick test_server_bandwidth_sharing;
          Alcotest.test_case "hotspot contention" `Quick test_hotspot_contention;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rwlock_invariant;
          QCheck_alcotest.to_alcotest prop_range_lock_invariant;
          QCheck_alcotest.to_alcotest prop_chan_exactly_once;
        ] );
    ]
