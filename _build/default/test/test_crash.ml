(* Property-based crash-consistency testing.

   ArckFS promises synchronous + atomic metadata operations and
   synchronous (not atomic) data operations (paper §4.4).  These
   properties are explored two ways:

   - crash BETWEEN operations with a random subset of unflushed
     cachelines surviving: every completed operation must be durable and
     the namespace must recover to exactly the model state;

   - crash IN THE MIDDLE of an operation (the process dies at a random
     store, then power fails): the interrupted metadata operation must
     be atomic — fully visible or fully absent — and everything else
     must match the model.

   Both drive random operation sequences against an in-memory model. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
module Rng = Trio_util.Rng
open Trio_core.Fs_types

(* ------------------------------------------------------------------ *)
(* Operation scripts *)

type op =
  | Create of int (* name index *)
  | Write of int * int (* name, size *)
  | Append of int * int
  | Unlink of int
  | Mkdir of int
  | Rmdir of int
  | Rename of int * int
  | Truncate of int * int

let name_of i = Printf.sprintf "/n%02d" (i mod 12)
let dirname_of i = Printf.sprintf "/d%02d" (i mod 4)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> Create i) (int_bound 11));
        (4, map2 (fun i s -> Write (i, s)) (int_bound 11) (int_range 1 9000));
        (3, map2 (fun i s -> Append (i, s)) (int_bound 11) (int_range 1 5000));
        (3, map (fun i -> Unlink i) (int_bound 11));
        (2, map (fun i -> Mkdir i) (int_bound 3));
        (1, map (fun i -> Rmdir i) (int_bound 3));
        (2, map2 (fun a b -> Rename (a, b)) (int_bound 11) (int_bound 11));
        (2, map2 (fun i s -> Truncate (i, s)) (int_bound 11) (int_bound 9000));
      ])

let show_op = function
  | Create i -> Printf.sprintf "Create %s" (name_of i)
  | Write (i, s) -> Printf.sprintf "Write %s %d" (name_of i) s
  | Append (i, s) -> Printf.sprintf "Append %s %d" (name_of i) s
  | Unlink i -> Printf.sprintf "Unlink %s" (name_of i)
  | Mkdir i -> Printf.sprintf "Mkdir %s" (dirname_of i)
  | Rmdir i -> Printf.sprintf "Rmdir %s" (dirname_of i)
  | Rename (a, b) -> Printf.sprintf "Rename %s %s" (name_of a) (name_of b)
  | Truncate (i, s) -> Printf.sprintf "Truncate %s %d" (name_of i) s

(* In-memory model: path -> contents for files, plus a directory set. *)
type model = { files : (string, string) Hashtbl.t; dirs : (string, unit) Hashtbl.t }

let model_create () = { files = Hashtbl.create 16; dirs = Hashtbl.create 4 }

let content_byte op_idx = Char.chr (Char.code 'a' + (op_idx mod 26))

(* Apply one op to both the fs and the model; both must agree on the
   outcome.  The model is updated *before* the fs runs, so that when a
   crash interrupts the fs operation, the model already reflects the
   op's intended post-state (the atomicity check accepts either the pre-
   or post-state). *)
let apply_op fs model op_idx op =
  let expect_same what fs_result model_ok =
    match (fs_result, model_ok) with
    | Ok _, true -> true
    | Error _, false -> true
    | Ok _, false -> Alcotest.failf "%s: fs succeeded but model predicts failure" what
    | Error e, true ->
      Alcotest.failf "%s: fs failed with %s but model predicts success" what (errno_to_string e)
  in
  match op with
  | Create i ->
    let path = name_of i in
    let can = not (Hashtbl.mem model.files path) in
    if can then Hashtbl.replace model.files path "";
    let r =
      match fs.Fs.create path 0o644 with
      | Ok fd ->
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Ok ()
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Write (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    let data = String.make size (content_byte op_idx) in
    if can then begin
      let old = Hashtbl.find model.files path in
      let merged =
        if String.length old <= size then data
        else data ^ String.sub old size (String.length old - size)
      in
      Hashtbl.replace model.files path merged
    end;
    let r =
      match fs.Fs.open_ path [ O_RDWR ] with
      | Ok fd ->
        let r = fs.Fs.pwrite fd (Bytes.of_string data) 0 in
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Result.map (fun _ -> ()) r
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Append (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    let data = String.make size (content_byte op_idx) in
    if can then Hashtbl.replace model.files path (Hashtbl.find model.files path ^ data);
    let r =
      match fs.Fs.open_ path [ O_RDWR ] with
      | Ok fd ->
        let r = fs.Fs.append fd (Bytes.of_string data) in
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Result.map (fun _ -> ()) r
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Unlink i ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    if can then Hashtbl.remove model.files path;
    let r = fs.Fs.unlink path in
    expect_same (show_op op) r can
  | Mkdir i ->
    let path = dirname_of i in
    let can = not (Hashtbl.mem model.dirs path) in
    if can then Hashtbl.replace model.dirs path ();
    let r = fs.Fs.mkdir path 0o755 in
    expect_same (show_op op) r can
  | Rmdir i ->
    let path = dirname_of i in
    let can = Hashtbl.mem model.dirs path in
    if can then Hashtbl.remove model.dirs path;
    let r = fs.Fs.rmdir path in
    expect_same (show_op op) r can
  | Rename (a, b) ->
    let src = name_of a and dst = name_of b in
    (* rename onto itself is a successful no-op *)
    let can = Hashtbl.mem model.files src in
    if can && src <> dst then begin
      let content = Hashtbl.find model.files src in
      Hashtbl.remove model.files src;
      Hashtbl.replace model.files dst content
    end;
    let r = fs.Fs.rename src dst in
    expect_same (show_op op) r can
  | Truncate (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    if can then begin
      let old = Hashtbl.find model.files path in
      let next =
        if String.length old >= size then String.sub old 0 size
        else old ^ String.make (size - String.length old) '\000'
      in
      Hashtbl.replace model.files path next
    end;
    let r = fs.Fs.truncate path size in
    expect_same (show_op op) r can

(* Compare a freshly mounted fs against the model. *)
let check_matches_model fs model =
  Hashtbl.iter
    (fun path expected ->
      match Fs.read_file fs path with
      | Ok got ->
        if not (String.equal got expected) then
          Alcotest.failf "%s: content mismatch (%d vs %d bytes, or bytes differ)" path
            (String.length got) (String.length expected)
      | Error e -> Alcotest.failf "%s: lost after crash (%s)" path (errno_to_string e))
    model.files;
  Hashtbl.iter
    (fun path () ->
      match fs.Fs.readdir path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "dir %s: lost after crash (%s)" path (errno_to_string e))
    model.dirs;
  (* no extra files either *)
  match fs.Fs.readdir "/" with
  | Error e -> Alcotest.failf "readdir /: %s" (errno_to_string e)
  | Ok entries ->
    List.iter
      (fun e ->
        let path = "/" ^ e.d_name in
        if
          (not (Hashtbl.mem model.files path))
          && not (Hashtbl.mem model.dirs path)
        then Alcotest.failf "unexpected entry %s after crash" path)
      entries

let make_world () =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes:2 ~cpus_per_node:4 in
  let pmem = Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node:32768 ~store_data:true () in
  let mmu = Mmu.create pmem in
  (sched, pmem, mmu)

(* ------------------------------------------------------------------ *)
(* Property 1: crash between operations *)

let prop_crash_between_ops =
  QCheck.Test.make ~name:"completed operations survive a crash" ~count:60
    QCheck.(
      make
        ~print:(fun (ops, seed) ->
          String.concat "; " (List.map show_op ops) ^ Printf.sprintf " [seed %d]" seed)
        Gen.(pair (list_size (int_range 1 25) gen_op) (int_bound 10_000)))
    (fun (ops, seed) ->
      let sched, pmem, mmu = make_world () in
      let result = ref true in
      Sched.spawn sched (fun () ->
          let ctl = Controller.create ~sched ~pmem ~mmu () in
          let libfs = Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } () in
          let fs = Libfs.ops libfs in
          let model = model_create () in
          List.iteri (fun i op -> ignore (apply_op fs model i op)) ops;
          (* power failure: random subset of unflushed lines survives *)
          Pmem.crash ~rng:(Rng.create seed) pmem;
          Controller.crash_recover ctl;
          let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred:{ uid = 1000; gid = 1000 } () in
          check_matches_model (Libfs.ops libfs2) model;
          result := true);
      ignore (Sched.run sched);
      !result)

(* ------------------------------------------------------------------ *)
(* Property 2: crash in the middle of an operation *)

let prop_crash_mid_op =
  QCheck.Test.make ~name:"interrupted metadata ops are atomic" ~count:80
    QCheck.(
      make
        ~print:(fun (ops, cut, seed) ->
          String.concat "; " (List.map show_op ops)
          ^ Printf.sprintf " [cut after %d stores, seed %d]" cut seed)
        Gen.(
          triple
            (list_size (int_range 2 15) gen_op)
            (int_bound 120) (int_bound 10_000)))
    (fun (ops, cut_after, seed) ->
      let sched, pmem, mmu = make_world () in
      let ok = ref true in
      Sched.spawn sched (fun () ->
          let ctl = Controller.create ~sched ~pmem ~mmu () in
          let libfs = Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } () in
          let fs = Libfs.ops libfs in
          let model = model_create () in
          (* snapshot of the model before each op, so we can accept
             either pre- or post-state of the interrupted op *)
          let pre = ref (model_create ()) in
          let snapshot () =
            let c = model_create () in
            Hashtbl.iter (Hashtbl.replace c.files) model.files;
            Hashtbl.iter (Hashtbl.replace c.dirs) model.dirs;
            c
          in
          Pmem.fail_after_writes pmem cut_after;
          let interrupted =
            try
              List.iteri
                (fun i op ->
                  pre := snapshot ();
                  ignore (apply_op fs model i op))
                ops;
              false
            with Pmem.Crash_point -> true
          in
          Pmem.fail_after_writes pmem (-1);
          if interrupted then begin
            (* the process died mid-op; now power also fails *)
            Pmem.crash ~rng:(Rng.create seed) pmem;
            Controller.crash_recover ctl;
            let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred:{ uid = 1000; gid = 1000 } () in
            let fs2 = Libfs.ops libfs2 in
            (* metadata atomicity: the recovered namespace must match the
               model either before or after the interrupted op; data
               within the interrupted file may be partial, so compare
               namespaces (file sets + dirs), not the interrupted
               content. *)
            let names_of m =
              Hashtbl.fold (fun k _ acc -> k :: acc) m.files []
              @ Hashtbl.fold (fun k () acc -> k :: acc) m.dirs []
              |> List.sort compare
            in
            let visible =
              (match fs2.Fs.readdir "/" with
              | Ok entries ->
                List.map (fun e -> "/" ^ e.d_name) entries |> List.sort compare
              | Error e -> Alcotest.failf "readdir after mid-op crash: %s" (errno_to_string e))
            in
            let pre_names = names_of !pre and post_names = names_of model in
            if visible <> pre_names && visible <> post_names then
              Alcotest.failf "namespace [%s] is neither pre [%s] nor post [%s]"
                (String.concat " " visible) (String.concat " " pre_names)
                (String.concat " " post_names);
            (* and every surviving file from the pre-state (minus the
               possibly-interrupted one) must be readable *)
            List.iter
              (fun path ->
                if Hashtbl.mem !pre.files path then
                  match Fs.read_file fs2 path with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "%s unreadable after crash: %s" path (errno_to_string e))
              visible;
            (* no corruption events: a crash is not an attack *)
            ()
          end
          else begin
            (* sequence finished without hitting the cut: just check
               consistency *)
            Pmem.crash ~rng:(Rng.create seed) pmem;
            Controller.crash_recover ctl;
            let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred:{ uid = 1000; gid = 1000 } () in
            check_matches_model (Libfs.ops libfs2) model
          end;
          ok := true);
      ignore (Sched.run sched);
      !ok)

(* ------------------------------------------------------------------ *)
(* Property 3: legal operation sequences never look like attacks *)

let prop_no_false_positives =
  QCheck.Test.make ~name:"legal sequences never flag corruption" ~count:60
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map show_op ops))
        Gen.(list_size (int_range 1 30) gen_op))
    (fun ops ->
      let sched, pmem, mmu = make_world () in
      let ok = ref false in
      Sched.spawn sched (fun () ->
          let ctl = Controller.create ~sched ~pmem ~mmu () in
          let libfs = Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } () in
          let fs = Libfs.ops libfs in
          let model = model_create () in
          List.iteri (fun i op -> ignore (apply_op fs model i op)) ops;
          (* the sharing point: every write-mapped file is verified *)
          Libfs.unmap_everything libfs;
          (match Controller.corruption_events ctl with
          | [] -> ()
          | (_, ino, vs) :: _ ->
            Alcotest.failf "legal ops flagged inode %d: %s" ino
              (String.concat "; "
                 (List.map (Format.asprintf "%a" Trio_core.Verifier.pp_violation) vs)));
          ok := true);
      ignore (Sched.run sched);
      !ok)

(* Property 4: the controller's global information is soft state — a
   cold start rebuilt purely from NVM serves the same namespace. *)
let prop_cold_start_equivalent =
  QCheck.Test.make ~name:"cold-started controller serves the same namespace" ~count:40
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map show_op ops))
        Gen.(list_size (int_range 1 25) gen_op))
    (fun ops ->
      let sched, pmem, mmu = make_world () in
      let ok = ref false in
      Sched.spawn sched (fun () ->
          let ctl = Controller.create ~sched ~pmem ~mmu () in
          let libfs = Libfs.mount ~ctl ~proc:1 ~cred:{ uid = 1000; gid = 1000 } () in
          let fs = Libfs.ops libfs in
          let model = model_create () in
          List.iteri (fun i op -> ignore (apply_op fs model i op)) ops;
          Libfs.unmap_everything libfs;
          (* the kernel reboots: all controller DRAM state is lost and
             rebuilt from the core state alone *)
          let mmu2 = Mmu.create pmem in
          (match Controller.cold_start ~sched ~pmem ~mmu:mmu2 () with
          | Error e -> Alcotest.failf "cold start failed: %s" e
          | Ok ctl2 ->
            let libfs2 = Libfs.mount ~ctl:ctl2 ~proc:9 ~cred:{ uid = 1000; gid = 1000 } () in
            check_matches_model (Libfs.ops libfs2) model);
          ok := true);
      ignore (Sched.run sched);
      !ok)

let () =
  Alcotest.run "crash"
    [
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest prop_crash_between_ops;
          QCheck_alcotest.to_alcotest prop_crash_mid_op;
          QCheck_alcotest.to_alcotest prop_no_false_positives;
          QCheck_alcotest.to_alcotest prop_cold_start_equivalent;
        ] );
    ]
