(* §6.5: metadata-integrity enforcement under malicious and buggy
   LibFSes.  Every handcrafted attack must be detected (or repaired) at
   the sharing point, and the namespace must be consistent afterwards;
   the scripted corruption campaign must leave the namespace consistent
   in every scenario. *)

module Attacks = Trio_attacks.Attacks

let test_handcrafted () =
  let outcomes = Attacks.run_handcrafted () in
  Alcotest.(check int) "eleven attacks" 11 (List.length outcomes);
  List.iter
    (fun o ->
      if not o.Attacks.a_detected then
        Alcotest.failf "attack %s was not detected" o.Attacks.a_name;
      if not o.Attacks.a_recovered then
        Alcotest.failf "attack %s: namespace not recovered" o.Attacks.a_name)
    outcomes

let test_campaign () =
  let seeds = 4 in
  let r = Attacks.run_campaign ~seeds () in
  Alcotest.(check int) "all scenarios consistent" r.Attacks.c_total r.Attacks.c_consistent;
  (* the only legitimate misses are name-field corruptions that happen to
     produce a valid name — semantically a rename, nothing to detect *)
  if r.Attacks.c_detected < r.Attacks.c_total - seeds then
    Alcotest.failf "only %d/%d corruptions detected" r.Attacks.c_detected r.Attacks.c_total

let () =
  Alcotest.run "attacks"
    [
      ( "integrity",
        [
          Alcotest.test_case "all handcrafted attacks" `Quick test_handcrafted;
          Alcotest.test_case "scripted corruption campaign" `Slow test_campaign;
        ] );
    ]
