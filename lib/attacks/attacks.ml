(* Metadata-integrity attack & corruption harness (paper §6.5).

   Two families, mirroring the paper's methodology:

   - eleven handcrafted attacks performed by a *malicious LibFS*: a
     process that legitimately obtains write access (by creating a file
     in a shared directory) and then scribbles over the mapped core
     state with raw stores — exactly what a compromised or hostile
     LibFS can do under Trio's threat model;

   - scripted corruptions emulating a *buggy LibFS*: every
     verifier-checked field of a dentry/index page is overwritten with
     adversarial values under many seeds (the paper reports 134
     scenarios in total).

   For each scenario the harness reports whether the verifier detected
   the corruption at the sharing point (or repaired it, for cached
   permission bits — check I4) and whether the file was restored to a
   consistent, readable state afterwards. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Layout = Trio_core.Layout
module Controller = Trio_core.Controller
module Libfs = Arckfs.Libfs
module Fs = Trio_core.Fs_intf
module Rig = Trio_workloads.Rig
module Rng = Trio_util.Rng
module Verifier = Trio_core.Verifier
open Trio_core.Fs_types

type outcome = {
  a_name : string;
  a_detected : bool; (* verifier flagged (or repaired) the corruption *)
  a_recovered : bool; (* the file system is consistent afterwards *)
  a_events : string list;
      (* the formatted verifier verdicts behind [a_detected] — the
         payload the incremental-vs-full differential gate compares
         byte for byte *)
}

let pp_outcome ppf o =
  Fmt.pf ppf "%-28s detected=%b recovered=%b events=%d" o.a_name o.a_detected o.a_recovered
    (List.length o.a_events)

(* ------------------------------------------------------------------ *)
(* Scenario plumbing *)

type ctx = {
  rig : Rig.t;
  attacker : Libfs.t;
  attacker_ops : Fs.t;
  victim_ino : int;
  victim_addr : int; (* dentry address of /victim *)
  dir_ino : int; (* the shared directory (root) *)
}

let fail_on what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "attack setup %s: %s" what (errno_to_string e))

(* Build a world: a victim file with content in "/", and an attacker
   LibFS that holds write access to "/" (by creating its own file). *)
(* Every process' ops record is routed through the VFS dispatch layer so
   attack runs are observable like any other workload. *)
let vfs_ops rig libfs = Trio_core.Vfs.(ops (wrap ~sched:rig.Rig.sched (Libfs.ops libfs)))

let make_ctx rig =
  let owner = Rig.mount_arckfs ~delegated:false ~uid:1000 rig in
  let owner_ops = vfs_ops rig owner in
  fail_on "victim write" (Fs.write_file owner_ops "/victim" "precious-data");
  fail_on "victim dir" (owner_ops.Fs.mkdir "/victim_dir" 0o755);
  fail_on "victim child" (Fs.write_file owner_ops "/victim_dir/inner" "x");
  Libfs.unmap_everything owner;
  let attacker = Rig.mount_arckfs ~delegated:false ~uid:1000 rig in
  let attacker_ops = vfs_ops rig attacker in
  (* gain write access to "/" legitimately *)
  ignore (fail_on "attacker file" (attacker_ops.Fs.create "/attacker_file" 0o644));
  let victim_ino = (fail_on "stat" (attacker_ops.Fs.stat "/victim")).st_ino in
  let victim_addr = Option.get (Controller.dentry_addr_of rig.Rig.ctl victim_ino) in
  {
    rig;
    attacker;
    attacker_ops;
    victim_ino;
    victim_addr;
    dir_ino = Controller.root_ino;
  }

(* After the attack: release write access (the sharing point), then ask
   a fresh LibFS to use the namespace and re-verify the whole tree. *)
(* [require_victim]: the handcrafted attacks demand the victim file
   survives with its content intact; the scripted campaign only demands
   global consistency (a benign corruption of the name field is
   semantically a rename and must not count as damage). *)
let format_event (actor, ino, viols) =
  Fmt.str "actor=%d ino=%d [%a]" actor ino
    (Fmt.list ~sep:(Fmt.any "; ") Verifier.pp_violation)
    viols

let evaluate ?(require_victim = true) ctx ~events_before ~i4_repair =
  Libfs.unmap_everything ctx.attacker;
  let ctl = ctx.rig.Rig.ctl in
  let events_now = Controller.corruption_events ctl in
  (* the log is newest-first: the fresh entries are the head *)
  let fresh =
    List.filteri (fun i _ -> i < List.length events_now - events_before) events_now
  in
  (* The verification pipeline checks independent files concurrently,
     so event *arrival order* is a scheduling artifact (and shifts with
     the per-mode verification cost); the deterministic object is the
     verdict set.  Canonicalize by sorting. *)
  let events = List.sort String.compare (List.rev_map format_event fresh) in
  let detected =
    List.length events_now > events_before
    ||
    (* permission corruptions are repaired in place, not flagged *)
    i4_repair ()
  in
  (* a third process must see a consistent namespace *)
  let reader = Rig.mount_arckfs ~delegated:false ~uid:1000 ctx.rig in
  let reader_ops = vfs_ops ctx.rig reader in
  let victim_ok =
    (not require_victim)
    || ((match reader_ops.Fs.stat "/victim" with Ok st -> st.st_ftype = Reg | Error _ -> false)
       &&
       match Fs.read_file reader_ops "/victim" with Ok _ -> true | Error _ -> false)
  in
  let namespace_ok =
    match reader_ops.Fs.readdir "/" with
    | Error _ -> false
    | Ok entries ->
      List.for_all
        (fun e ->
          valid_name e.d_name
          &&
          let path = "/" ^ e.d_name in
          match e.d_ftype with
          | Dir -> (match reader_ops.Fs.readdir path with Ok _ -> true | Error _ -> false)
          | Reg -> (
            match reader_ops.Fs.stat path with
            | Error _ -> false
            | Ok st ->
              st.st_size >= 0
              && (match Fs.read_file reader_ops path with Ok _ -> true | Error _ -> false)))
        entries
  in
  Libfs.unmap_everything reader;
  (detected, victim_ok && namespace_ok, events)

(* Each scenario runs in a fresh simulated machine so scenarios cannot
   contaminate each other. *)
let fresh_rig f =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:16384 ~store_data:true f

let run_attack ~name ~attack ?(i4_repair = fun _ -> false) () =
  fresh_rig (fun rig ->
      let ctx = make_ctx rig in
      let events_before = List.length (Controller.corruption_events rig.Rig.ctl) in
      attack ctx;
      let detected, recovered, events =
        evaluate ctx ~events_before ~i4_repair:(fun () -> i4_repair ctx)
      in
      { a_name = name; a_detected = detected; a_recovered = recovered; a_events = events })

(* ------------------------------------------------------------------ *)
(* The eleven handcrafted attacks *)

let raw_write ctx ~addr ~bytes =
  Pmem.write ctx.rig.Rig.pmem ~actor:(Libfs.proc_of ctx.attacker) ~addr ~src:bytes;
  Pmem.persist ctx.rig.Rig.pmem ~addr ~len:(Bytes.length bytes)

let raw_write_u64 ctx ~addr v =
  Pmem.write_u64 ctx.rig.Rig.pmem ~actor:(Libfs.proc_of ctx.attacker) ~addr v;
  Pmem.persist ctx.rig.Rig.pmem ~addr ~len:8

(* 1. Dangling index: point the victim's index head at a free page —
   the paper's "modify pointers in file system data structures". *)
let attack_dangling_index ctx =
  let free_page = Pmem.total_pages ctx.rig.Rig.pmem - 7 in
  raw_write_u64 ctx ~addr:(ctx.victim_addr + Layout.off_index_head) free_page

(* 2. Cross-file aliasing: point the victim's index head at another
   file's page (information disclosure / corruption channel). *)
let attack_alias_other_file ctx =
  let inner_ino = (fail_on "stat" (ctx.attacker_ops.Fs.stat "/victim_dir/inner")).st_ino in
  match Controller.file_info ctx.rig.Rig.ctl inner_ino with
  | Some _ ->
    let addr = Option.get (Controller.dentry_addr_of ctx.rig.Rig.ctl inner_ino) in
    (match Layout.read_dentry ctx.rig.Rig.pmem ~actor:Pmem.kernel_actor ~addr with
    | Some (Ok (inner, _)) ->
      raw_write_u64 ctx ~addr:(ctx.victim_addr + Layout.off_index_head) inner.Layout.index_head
    | _ -> failwith "attack 2: inner dentry unreadable")
  | None -> failwith "attack 2: no file info"

(* 3. Remove a non-empty directory by tombstoning its dentry (paper's
   semantic attack: files become disconnected from the root). *)
let attack_rmdir_nonempty ctx =
  let dir_ino = (fail_on "stat" (ctx.attacker_ops.Fs.stat "/victim_dir")).st_ino in
  let addr = Option.get (Controller.dentry_addr_of ctx.rig.Rig.ctl dir_ino) in
  raw_write_u64 ctx ~addr 0

(* 4. Forge a file name containing '/' to confuse path resolution. *)
let attack_slash_in_name ctx =
  let evil = Bytes.of_string "ha/ck" in
  raw_write ctx ~addr:(ctx.victim_addr + Layout.off_name) ~bytes:evil

(* 5. Cycle in the index-page chain (infinite traversal DoS).  The
   victim's index pages are not covered by the directory mapping, so
   the attacker first write-maps the file itself — which it may, since
   it holds matching credentials; the corruption must still be caught
   when the mapping is released. *)
let attack_index_cycle ctx =
  fail_on "map victim"
    (Controller.map_file ctx.rig.Rig.ctl ~proc:(Libfs.proc_of ctx.attacker) ~ino:ctx.victim_ino
       ~write:true);
  match Layout.read_dentry ctx.rig.Rig.pmem ~actor:Pmem.kernel_actor ~addr:ctx.victim_addr with
  | Some (Ok (inode, _)) when inode.Layout.index_head <> 0 ->
    (* make the first index page link to itself *)
    raw_write_u64 ctx
      ~addr:((inode.Layout.index_head * Layout.page_size) + Layout.index_next_off)
      inode.Layout.index_head
  | _ -> failwith "attack 5: victim has no index page"

(* 6. Duplicate names: forge a second dentry named "victim". *)
let attack_duplicate_name ctx =
  (* claim a fresh slot by creating a file, then rewrite its name.
     Fresh files may not be known to the kernel yet, so locate the slot
     through the LibFS' own view. *)
  ignore (fail_on "decoy" (ctx.attacker_ops.Fs.create "/decoy_for_dup" 0o644));
  let addr =
    match Libfs.lookup ctx.attacker (Option.get (Libfs.root_dir ctx.attacker)) "decoy_for_dup" with
    | Some r -> r.Libfs.e_addr
    | None -> failwith "attack 6: decoy lost"
  in
  let name = "victim" in
  let b = Bytes.create 2 in
  Layout.set_u16 b 0 (String.length name);
  raw_write ctx ~addr:(addr + Layout.off_name_len) ~bytes:b;
  raw_write ctx ~addr:(addr + Layout.off_name) ~bytes:(Bytes.of_string name)

(* 7. Permission escalation: open up the victim's cached mode bits and
   change its owner (check I4: shadow inodes are ground truth). *)
let attack_perm_escalation ctx =
  let b = Bytes.create 10 in
  Layout.set_u16 b 0 0o777;
  Layout.set_u32 b 2 4242 (* uid *);
  Layout.set_u32 b 6 4242 (* gid *);
  raw_write ctx ~addr:(ctx.victim_addr + Layout.off_mode) ~bytes:b

(* 8. Size lie: inflate the victim's size beyond its pages (stale-data
   disclosure / out-of-bounds reads in a sharing LibFS). *)
let attack_size_lie ctx =
  raw_write_u64 ctx ~addr:(ctx.victim_addr + Layout.off_size) (1 lsl 30)

(* 9. Invalid file type. *)
let attack_bad_ftype ctx =
  raw_write ctx ~addr:(ctx.victim_addr + Layout.off_ftype) ~bytes:(Bytes.make 1 '\007')

(* 10. Duplicate inode number: alias the victim's ino from a second
   dentry (both names would resolve to "the same file" with divergent
   metadata). *)
let attack_duplicate_ino ctx =
  ignore (fail_on "decoy" (ctx.attacker_ops.Fs.create "/decoy_for_ino" 0o644));
  match Libfs.lookup ctx.attacker (Option.get (Libfs.root_dir ctx.attacker)) "decoy_for_ino" with
  | Some r -> raw_write_u64 ctx ~addr:r.Libfs.e_addr ctx.victim_ino
  | None -> failwith "attack 10: decoy lost"

(* 11. Garbage dentry: shotgun a whole dentry block with noise. *)
let attack_garbage_dentry ctx =
  let rng = Rng.create 666 in
  let noise = Rng.bytes rng Layout.dentry_size in
  (* keep the ino field non-zero so the slot reads as live *)
  Layout.set_u64 noise Layout.off_ino ctx.victim_ino;
  raw_write ctx ~addr:ctx.victim_addr ~bytes:noise

let handcrafted =
  [
    ("dangling-index", attack_dangling_index, None);
    ("alias-other-file", attack_alias_other_file, None);
    ("rmdir-non-empty", attack_rmdir_nonempty, None);
    ("slash-in-name", attack_slash_in_name, None);
    ("index-cycle", attack_index_cycle, None);
    ("duplicate-name", attack_duplicate_name, None);
    ( "perm-escalation",
      attack_perm_escalation,
      (* I4 repairs in place: detection = the mode went back *)
      Some
        (fun ctx ->
          match
            Layout.read_dentry ctx.rig.Rig.pmem ~actor:Pmem.kernel_actor ~addr:ctx.victim_addr
          with
          | Some (Ok (inode, _)) -> inode.Layout.mode <> 0o777 && inode.Layout.uid <> 4242
          | _ -> false) );
    ("size-lie", attack_size_lie, None);
    ("bad-ftype", attack_bad_ftype, None);
    ("duplicate-ino", attack_duplicate_ino, None);
    ("garbage-dentry", attack_garbage_dentry, None);
  ]

let run_handcrafted () =
  List.map
    (fun (name, attack, i4_repair) ->
      match i4_repair with
      | None -> run_attack ~name ~attack ()
      | Some repair -> run_attack ~name ~attack ~i4_repair:repair ())
    handcrafted

(* ------------------------------------------------------------------ *)
(* Scripted corruption campaign (buggy LibFS emulation) *)

(* Each script corrupts one verifier-relevant field with a seeded
   adversarial value. *)
let field_scripts =
  [
    ("ino", Layout.off_ino, 8);
    ("ftype", Layout.off_ftype, 1);
    ("mode", Layout.off_mode, 2);
    ("uid", Layout.off_uid, 4);
    ("size", Layout.off_size, 8);
    ("index_head", Layout.off_index_head, 8);
    ("name_len", Layout.off_name_len, 2);
    ("name", Layout.off_name, 8);
  ]

(* Some corruptions are semantically invisible (e.g. rewriting mtime, or
   a random value that happens to be valid); the campaign asserts the
   stronger property: after the sharing point, a fresh process always
   sees a CONSISTENT namespace — whether because the verifier rolled
   back, repaired, or the value was benign. *)
type campaign_result = {
  c_total : int;
  c_detected : int; (* flagged or repaired *)
  c_consistent : int; (* namespace consistent afterwards *)
}

let run_campaign ?(seeds = 8) () =
  let total = ref 0 and detected = ref 0 and consistent = ref 0 in
  List.iter
    (fun (fname, off, len) ->
      for seed = 1 to seeds do
        incr total;
        let was_detected, was_consistent =
          fresh_rig (fun rig ->
              let ctx = make_ctx rig in
              let before = List.length (Controller.corruption_events rig.Rig.ctl) in
              let rng = Rng.create ((seed * 7919) + Hashtbl.hash fname) in
              let noise = Rng.bytes rng len in
              let pre =
                Pmem.read rig.Rig.pmem ~actor:Pmem.kernel_actor ~addr:(ctx.victim_addr + off)
                  ~len
              in
              raw_write ctx ~addr:(ctx.victim_addr + off) ~bytes:noise;
              let changed = not (Bytes.equal pre noise) in
              let detected, consistent, _events =
                evaluate ~require_victim:false ctx ~events_before:before ~i4_repair:(fun () ->
                    (* repaired = the field no longer holds the noise *)
                    let now =
                      Pmem.read rig.Rig.pmem ~actor:Pmem.kernel_actor
                        ~addr:(ctx.victim_addr + off) ~len
                    in
                    changed && not (Bytes.equal now noise))
              in
              (detected || not changed, consistent))
        in
        if was_detected then incr detected;
        if was_consistent then incr consistent
      done)
    field_scripts;
  { c_total = !total; c_detected = !detected; c_consistent = !consistent }

(* ------------------------------------------------------------------ *)
(* QoS noisy neighbour (DESIGN.md §4.17)

   A byzantine tenant engineered to burn *controller* resources rather
   than damage one victim: every step creates a file, scribbles garbage
   over the fresh dentry with raw stores, and releases all mappings —
   the sharing point forces a verification pass (which rejects the
   garbage) per cycle, and the next cycle's create re-maps and
   re-allocates.  Each cycle therefore charges the tenant for syscalls,
   page draws and verifier work.  Under QoS enforcement the tenant's
   token bucket caps the cycle rate; unthrottled, the cycles flood the
   verify queue and starve honest tenants' sharing points. *)

type neighbor = {
  nb_rig : Rig.t;
  nb_libfs : Libfs.t;
  nb_ops : Fs.t;
  nb_rng : Rng.t;
  mutable nb_cycles : int;
  mutable nb_rejected : int; (* steps that errored (throttled / ENOSPC) *)
}

let noisy_neighbor ?qos_share rig =
  let libfs = Rig.mount_arckfs ~delegated:false ~uid:1999 ?qos_share rig in
  {
    nb_rig = rig;
    nb_libfs = libfs;
    nb_ops = vfs_ops rig libfs;
    nb_rng = Rng.create (0xbad + Libfs.proc_of libfs);
    nb_cycles = 0;
    nb_rejected = 0;
  }

let neighbor_step nb =
  let n = nb.nb_cycles in
  nb.nb_cycles <- n + 1;
  let name = Printf.sprintf "noise_%d_%d" (Libfs.proc_of nb.nb_libfs) n in
  (match nb.nb_ops.Fs.create ("/" ^ name) 0o644 with
  | Error _ -> nb.nb_rejected <- nb.nb_rejected + 1
  | Ok fd ->
    ignore (nb.nb_ops.Fs.close fd);
    (* [root_dir] goes [None] if the watchdog escalated this tenant and
       revoked its mappings while it sat in a throttle park — the
       attacker must shrug, not crash the simulation. *)
    (match
       Option.bind (Libfs.root_dir nb.nb_libfs) (fun root ->
           Libfs.lookup nb.nb_libfs root name)
     with
    | Some r ->
      let noise = Rng.bytes nb.nb_rng Layout.dentry_size in
      (* keep the slot live so the verifier must actually judge it *)
      Layout.set_u64 noise Layout.off_ino r.Libfs.e_ino;
      Pmem.write nb.nb_rig.Rig.pmem ~actor:(Libfs.proc_of nb.nb_libfs) ~addr:r.Libfs.e_addr
        ~src:noise;
      Pmem.persist nb.nb_rig.Rig.pmem ~addr:r.Libfs.e_addr ~len:(Bytes.length noise)
    | None -> ()));
  (* the sharing point: every mapping handed back verifies *)
  Libfs.unmap_everything nb.nb_libfs

(* Loop [neighbor_step] until [stop ()] — the shape {!Trio_workloads.Ycsb.run}
   expects for its [chaos] fibers. *)
let neighbor_fiber nb ~stop =
  while not (stop ()) do
    neighbor_step nb
  done
