(* KVFS: a LibFS customized for many small files (paper §5).

   This is the customization case study the paper borrows from Aerie:
   applications such as mail servers operate on huge numbers of small
   files, for which a generic POSIX LibFS pays for file descriptors,
   radix-tree index walks and fine-grained locking on every access.

   KVFS replaces these parts of ArckFS' *auxiliary state* — the core
   state is untouched, which is exactly what Trio's customization
   contract allows without any privilege:

   - [get]/[set] interfaces keyed by file name; no file descriptors;
   - a fixed 8-slot page array instead of the radix tree (files are
     capped at [max_file_size] = 32 KiB);
   - one simple spinlock per file instead of the inode + range locks
     (contention on a single small file is assumed rare).

   Because only auxiliary state changed, KVFS files remain ordinary
   ArckFS files: any other LibFS can open them through the normal POSIX
   path after a sharing handoff. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Layout = Trio_core.Layout
module Libfs = Arckfs.Libfs
module Alloc_cache = Arckfs.Alloc_cache
module Htbl = Trio_util.Htbl
open Trio_core.Fs_types

let max_pages = 8
let max_file_size = max_pages * Layout.page_size (* 32 KiB *)

type entry = {
  k_ino : int;
  k_addr : int; (* dentry address *)
  mutable k_index_page : int; (* single index page; 0 = none yet *)
  k_pages : int array; (* fixed-size page array: the customized index *)
  mutable k_npages : int;
  mutable k_size : int;
  k_lock : Sync.Spinlock.t; (* the customized, coarse lock *)
}

type t = {
  fs : Libfs.t;
  dir : Libfs.dir_state;
  dir_path : string;
  entries : (string, entry) Htbl.t;
  entries_lock : Sync.Mutex.t;
}

let ( let* ) = Result.bind

(* Mount KVFS over one directory of an existing ArckFS namespace. *)
let mount fs ~dir:path =
  match split_path path with
  | None -> Error EINVAL
  | Some components ->
    let* d =
      match Libfs.resolve_dir fs components with
      | Ok d -> Ok d
      | Error ENOENT ->
        let* () = (Libfs.ops fs).Trio_core.Fs_intf.mkdir path 0o755 in
        Libfs.resolve_dir fs components
      | Error e -> Error e
    in
    let* () = Libfs.ensure_dir_writable fs d in
    Ok
      {
        fs;
        dir = d;
        dir_path = path;
        entries = Htbl.create_string ();
        entries_lock = Sync.Mutex.create ();
      }

(* Build the fixed-array auxiliary state of one small file. *)
let build_entry t (r : Libfs.dentry_ref) =
  match Layout.read_dentry (Libfs.pmem_of t.fs) ~actor:(Libfs.proc_of t.fs) ~addr:r.Libfs.e_addr with
  | Some (Ok (inode, _)) ->
    let e =
      {
        k_ino = r.Libfs.e_ino;
        k_addr = r.Libfs.e_addr;
        k_index_page = inode.Layout.index_head;
        k_pages = Array.make max_pages 0;
        k_npages = 0;
        k_size = inode.Layout.size;
        k_lock = Sync.Spinlock.create ();
      }
    in
    if inode.Layout.index_head <> 0 then begin
      let entries, _next =
        Layout.read_index_page (Libfs.pmem_of t.fs) ~actor:(Libfs.proc_of t.fs)
          ~page:inode.Layout.index_head
      in
      Array.iteri
        (fun i pg ->
          if i < max_pages && pg <> 0 then begin
            e.k_pages.(i) <- pg;
            e.k_npages <- max e.k_npages (i + 1)
          end)
        entries
    end;
    Ok e
  | _ -> Error EIO

let lookup_entry t name =
  Sched.cpu_work Perf.Cpu.hash_lookup;
  match Htbl.find t.entries name with
  | Some e -> Ok (Some e)
  | None -> (
    match Libfs.lookup t.fs t.dir name with
    | None -> Ok None
    | Some { Libfs.e_ftype = Dir; _ } -> Error EISDIR
    | Some r ->
      let* e = build_entry t r in
      Sync.Mutex.lock t.entries_lock;
      Htbl.replace t.entries name e;
      Sync.Mutex.unlock t.entries_lock;
      Ok (Some e))

(* set: create if needed, then write [data] from offset 0 (the KVFS
   interface always operates on whole values). *)
let set t name data =
  let len = Bytes.length data in
  if len > max_file_size then Error EINVAL
  else
    let* existing = lookup_entry t name in
    let* e =
      match existing with
      | Some e -> Ok e
      | None ->
        let* r = Libfs.create_entry t.fs t.dir name ~ftype:Reg ~mode:0o644 in
        let* e = build_entry t r in
        Sync.Mutex.lock t.entries_lock;
        Htbl.replace t.entries name e;
        Sync.Mutex.unlock t.entries_lock;
        Ok e
    in
    let pmem = Libfs.pmem_of t.fs and proc = Libfs.proc_of t.fs in
    Sync.Spinlock.lock e.k_lock;
    Sched.cpu_work Perf.Cpu.lock_acquire;
    let result =
      let needed = (len + Layout.page_size - 1) / Layout.page_size in
      (* allocate the index page lazily, then data pages *)
      let rec ensure_pages () =
        if e.k_npages >= needed then Ok ()
        else begin
          let node = Numa.node_of_cpu (Libfs.topo_of t.fs) (Sched.current_cpu ()) in
          let* () =
            if e.k_index_page = 0 then begin
              let* ip = Alloc_cache.alloc_page (Libfs.cache_of t.fs) ~node ~kind:Pmem.Meta in
              Layout.write_index_head pmem ~actor:proc ~dentry_addr:e.k_addr ip;
              e.k_index_page <- ip;
              Ok ()
            end
            else Ok ()
          in
          let* pg = Alloc_cache.alloc_page (Libfs.cache_of t.fs) ~node ~kind:Pmem.Data in
          Layout.write_index_entry pmem ~actor:proc ~page:e.k_index_page e.k_npages pg;
          e.k_pages.(e.k_npages) <- pg;
          e.k_npages <- e.k_npages + 1;
          ensure_pages ()
        end
      in
      let* () = ensure_pages () in
      (* write the value page by page *)
      let pos = ref 0 in
      while !pos < len do
        let i = !pos / Layout.page_size in
        let chunk = min (len - !pos) Layout.page_size in
        Pmem.write_sub pmem ~actor:proc ~addr:(e.k_pages.(i) * Layout.page_size) ~src:data
          ~pos:!pos ~len:chunk;
        pos := !pos + chunk
      done;
      Sched.cpu_work (Perf.Cpu.memcpy_per_byte *. float_of_int len);
      if len > 0 then Pmem.persist pmem ~addr:(e.k_pages.(0) * Layout.page_size) ~len;
      if e.k_size <> len then begin
        e.k_size <- len;
        Layout.write_size pmem ~actor:proc ~dentry_addr:e.k_addr len
      end;
      Ok ()
    in
    Sync.Spinlock.unlock e.k_lock;
    result

(* Read the whole value of [e] into [dst] (which must be large enough);
   returns the value length. *)
let read_value t e ~dst =
  let pmem = Libfs.pmem_of t.fs and proc = Libfs.proc_of t.fs in
  Sync.Spinlock.lock e.k_lock;
  Sched.cpu_work Perf.Cpu.lock_acquire;
  let pos = ref 0 in
  while !pos < e.k_size do
    let i = !pos / Layout.page_size in
    let chunk = min (e.k_size - !pos) Layout.page_size in
    Pmem.read_into pmem ~actor:proc ~addr:(e.k_pages.(i) * Layout.page_size) ~dst ~pos:!pos
      ~len:chunk;
    pos := !pos + chunk
  done;
  Sched.cpu_work (Perf.Cpu.memcpy_per_byte *. float_of_int e.k_size);
  Sync.Spinlock.unlock e.k_lock;
  e.k_size

(* get: read the whole value. *)
let get t name =
  let* found = lookup_entry t name in
  match found with
  | None -> Error ENOENT
  | Some e ->
    let buf = Bytes.create e.k_size in
    ignore (read_value t e ~dst:buf);
    Ok buf

(* get_into: zero-copy [get] — the value lands in the caller's buffer
   (no per-call allocation); returns the value length. *)
let get_into t name dst =
  let* found = lookup_entry t name in
  match found with
  | None -> Error ENOENT
  | Some e -> if Bytes.length dst < e.k_size then Error EINVAL else Ok (read_value t e ~dst)

let delete t name =
  Sync.Mutex.lock t.entries_lock;
  ignore (Htbl.remove t.entries name);
  Sync.Mutex.unlock t.entries_lock;
  (Libfs.ops t.fs).Trio_core.Fs_intf.unlink (t.dir_path ^ "/" ^ name)

let exists t name =
  match lookup_entry t name with Ok (Some _) -> true | _ -> false
