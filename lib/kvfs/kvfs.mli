(** KVFS: a LibFS customized for many small files (paper §5).

    Replaces parts of ArckFS' *auxiliary state* — which Trio lets an
    unprivileged application do freely — to optimize small-file access:

    - [get]/[set] keyed by file name: no file descriptors;
    - a fixed 8-slot page array instead of the radix tree (files are
      capped at {!max_file_size});
    - one plain spinlock per file instead of inode + range locks.

    The core state is unchanged: KVFS files are ordinary ArckFS files,
    fully shareable with any other LibFS. *)

type t

val max_pages : int

val max_file_size : int
(** 32 KiB: the size cap that makes the fixed-array index sufficient. *)

val mount : Arckfs.Libfs.t -> dir:string -> (t, Trio_core.Fs_types.errno) result
(** Mount the key-value view over one directory of an existing ArckFS
    namespace (created if absent); acquires write access to it. *)

val set : t -> string -> Bytes.t -> (unit, Trio_core.Fs_types.errno) result
(** Create-or-replace the whole value of [key].  [EINVAL] beyond
    {!max_file_size}. *)

val get : t -> string -> (Bytes.t, Trio_core.Fs_types.errno) result
(** Read the whole value; [ENOENT] for missing keys. *)

val get_into : t -> string -> Bytes.t -> (int, Trio_core.Fs_types.errno) result
(** Zero-copy [get]: read the whole value into the caller's buffer and
    return its length.  [ENOENT] for missing keys, [EINVAL] if the
    buffer is smaller than the stored value. *)

val delete : t -> string -> (unit, Trio_core.Fs_types.errno) result

val exists : t -> string -> bool
