(* Types shared by every file system in the repository: the Trio stack
   (ArckFS, KVFS, FPFS) and the baselines. *)

type ftype = Reg | Dir

let ftype_code = function Reg -> 1 | Dir -> 2

let ftype_of_code = function 1 -> Some Reg | 2 -> Some Dir | _ -> None

type errno =
  | ENOENT (* no such file or directory *)
  | EEXIST (* file exists *)
  | ENOTDIR (* a path component is not a directory *)
  | EISDIR (* operation on a directory where a file is required *)
  | ENOTEMPTY (* directory not empty *)
  | EACCES (* permission denied *)
  | EBADF (* bad file descriptor *)
  | EINVAL (* invalid argument *)
  | ENOSPC (* no space left on device *)
  | ENAMETOOLONG
  | EAGAIN (* resource temporarily unavailable (lease contention) *)
  | EIO (* metadata corruption detected / quarantined file / bad media *)
  | EROFS (* file degraded to read-only after unrepairable media damage *)
  | ETIMEDOUT (* retry/backoff deadline budget exhausted (QoS throttling) *)

let errno_to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EACCES -> "EACCES"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EAGAIN -> "EAGAIN"
  | EIO -> "EIO"
  | EROFS -> "EROFS"
  | ETIMEDOUT -> "ETIMEDOUT"

let pp_errno ppf e = Fmt.string ppf (errno_to_string e)

(* Dense index for per-errno counter arrays (see {!Vfs}). *)
let errno_index = function
  | ENOENT -> 0
  | EEXIST -> 1
  | ENOTDIR -> 2
  | EISDIR -> 3
  | ENOTEMPTY -> 4
  | EACCES -> 5
  | EBADF -> 6
  | EINVAL -> 7
  | ENOSPC -> 8
  | ENAMETOOLONG -> 9
  | EAGAIN -> 10
  | EIO -> 11
  | EROFS -> 12
  | ETIMEDOUT -> 13

let all_errnos =
  [ ENOENT; EEXIST; ENOTDIR; EISDIR; ENOTEMPTY; EACCES; EBADF; EINVAL; ENOSPC;
    ENAMETOOLONG; EAGAIN; EIO; EROFS; ETIMEDOUT ]

let errno_count = List.length all_errnos

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

type stat = {
  st_ino : int;
  st_ftype : ftype;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_size : int;
  st_mtime : float;
  st_ctime : float;
}

type dirent = { d_ino : int; d_name : string; d_ftype : ftype }

(* Credentials of a process as seen by permission checks. *)
type cred = { uid : int; gid : int }

let root_cred = { uid = 0; gid = 0 }

(* Classic UNIX permission check against a mode. *)
let permits ~cred ~uid ~gid ~mode ~want_read ~want_write =
  if cred.uid = 0 then true
  else begin
    let shift = if cred.uid = uid then 6 else if cred.gid = gid then 3 else 0 in
    let bits = (mode lsr shift) land 0x7 in
    (not want_read || bits land 0x4 <> 0) && (not want_write || bits land 0x2 <> 0)
  end

(* Path handling: absolute, '/'-separated, no "." or ".." in the core
   state (the paper stores neither; LibFSes synthesize them). *)
let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some (String.split_on_char '/' path |> List.filter (fun s -> String.length s > 0))

let dirname_basename path =
  match split_path path with
  | None | Some [] -> None
  | Some components ->
    let rec go acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | c :: rest -> go (c :: acc) rest
    in
    go [] components

let valid_name name =
  let len = String.length name in
  len > 0 && len <= 180
  && (not (String.contains name '/'))
  && (not (String.contains name '\000'))
  && name <> "." && name <> ".."
