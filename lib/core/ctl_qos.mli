(* Per-tenant QoS: token-bucket admission control over the shared
   controller planes (DESIGN.md §4.17).

   One bucket per trust group, charged for syscalls, ring-batch slots,
   verification enqueues and page-pool draw.  Refill rate is the
   tenant's weighted fair share of device write bandwidth
   (Perf.fair_share) converted into tokens/ns.  Enforcement is opt-in:
   buckets gate admission only once a share has been configured;
   unconfigured tenants are charged for observability but always
   admitted, so existing single-tenant setups are unchanged.

   Pure accounting: virtual time is passed in by the caller, which also
   performs any parking/delaying the admission verdict calls for. *)

type kind = Syscall | Ring_slot | Verify | Page_draw

type t

val create : ?profile:Trio_nvm.Perf.profile -> unit -> t

(* Token cost of one charged unit of [kind]. *)
val cost_of : kind -> float

val kind_to_string : kind -> string

(* Mutation hook (isolation-gate self-test): when set, charges debit
   zero tokens, so no tenant is ever throttled. *)
val bypass : bool ref

(* True once any tenant has a configured share (enables the weighted
   drain paths in Ctl_gate). *)
val enforced : t -> bool

(* Configure a tenant's weight and turn enforcement on for it.  Shares
   are relative; the refill rate is share / (sum of configured shares)
   of peak device write bandwidth. *)
val set_share : t -> group:int -> now:float -> float -> unit

(* [Some share] once configured, [None] for unenforced tenants. *)
val share_of : t -> group:int -> float option

(* Debit [n] units of [kind] from the group's bucket (and bump its
   charge counters).  Never blocks. *)
val charge : t -> group:int -> now:float -> ?n:int -> kind -> unit

(* [None]: admit now.  [Some deadline]: overdrawn; the balance returns
   to zero at [deadline] (virtual ns).  Callers park/delay until then,
   or surface EAGAIN carrying the deadline when asked not to wait. *)
val admission : t -> group:int -> now:float -> float option

(* Current token balance (after refill); negative means overdrawn. *)
val balance : t -> group:int -> now:float -> float

(* Record that the tenant was actually throttled for [ns]. *)
val note_throttled : t -> group:int -> now:float -> ns:float -> unit

type tenant_stats = {
  ts_group : int;
  ts_share : float option;
  ts_balance : float;
  ts_syscalls : int;
  ts_ring_slots : int;
  ts_verifies : int;
  ts_page_draws : int;
  ts_throttles : int;
  ts_throttle_ns : float;
}

val stats : t -> now:float -> tenant_stats list

val pp_stats : Format.formatter -> tenant_stats list -> unit
