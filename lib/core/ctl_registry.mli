(** Process registry and the process-failure plane: heartbeats,
    watchdog, abnormal teardown, orphan-page GC.  Internal to
    [lib/core] — external code goes through {!Controller}. *)

val register_process :
  Ctl_state.t ->
  proc:int ->
  cred:Fs_types.cred ->
  ?group:int ->
  ?qos_share:float ->
  ?fix:(int -> bool) ->
  ?recovery:(unit -> unit) ->
  unit ->
  unit
(** [?qos_share] configures the process' trust group's QoS weight and
    turns admission enforcement on for that group (DESIGN.md §4.17);
    omitted, the group is charged for observability but never
    throttled. *)

val heartbeat : Ctl_state.t -> proc:int -> unit
val last_heartbeat : Ctl_state.t -> proc:int -> float
val process_dead : Ctl_state.t -> proc:int -> bool
val processes : Ctl_state.t -> (int * bool * float) list

val reap_dead : Ctl_state.t -> int -> int
(** Release a dead process' inode numbers; returns how many. *)

type watchdog_report = {
  mutable wd_scanned : int;
  mutable wd_escalated : int list;
  mutable wd_unverified : int;
  mutable wd_revoked : int;
}

val make_watchdog_report : unit -> watchdog_report
val pp_watchdog_report : Format.formatter -> watchdog_report -> unit
val abnormal_teardown : ?report:watchdog_report -> Ctl_state.t -> proc:int -> unit
val watchdog_once : ?report:watchdog_report -> Ctl_state.t -> timeout_ns:float -> int list

val run_watchdog :
  ?report:watchdog_report ->
  Ctl_state.t ->
  timeout_ns:float ->
  interval_ns:float ->
  rounds:int ->
  unit

val crash_test_skip_gc : bool ref
val set_crash_test_skip_gc : bool -> unit

type gc_report = {
  gc_total : int;
  gc_free : int;
  gc_pooled : int;
  gc_snap_pinned : int;
  gc_reachable : int;
  gc_cached : int;
  gc_badblocks : int;
  gc_reclaimed_pages : int;
  gc_reclaimed_inos : int;
  gc_leaked : int;
  gc_invariant_ok : bool;
}

val pp_gc_report : Format.formatter -> gc_report -> unit
val reachable_files : Ctl_state.t -> (int, bool) Hashtbl.t
val gc_once : Ctl_state.t -> gc_report
