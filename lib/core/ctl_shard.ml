(* Shard topology of the controller (DESIGN.md §4.14).

   The controller's hot planes — page pools, the ino/file registry, the
   verification queues — are split into one shard per NUMA socket.
   Pages shard by address (the node that owns the backing media); inos
   shard by a deterministic multiplicative hash, so the owning shard of
   any ino can be computed by every entity without coordination.

   The lock plane below is the simulated stand-in for the per-shard
   spinlocks a real multi-core controller would take.  The simulation
   is cooperative — controller sections are shielded and never yield
   while a shard is held — so the locks can never block; what still
   matters, and what this module enforces, is the *acquisition
   discipline*: shards are always taken in ascending id order, the
   classic total-order protocol that makes the cross-shard operations
   (rename across directories, reap of a dead process' inos) deadlock
   free on real hardware.  Violations raise immediately, so every
   `make check` campaign doubles as a lock-order model check. *)

(* Fibonacci-style multiplicative hash: cheap, deterministic, and
   spreads the controller's sequentially allocated ino space evenly
   across shards (consecutive inos land on different shards, so one
   hot directory of fresh files does not pin a single shard). *)
let shard_of_ino ~shards ino =
  if shards <= 1 then 0 else ino * 0x9E3779B1 land max_int mod shards

type plane = {
  mutable held : int list; (* shard ids currently held, innermost first *)
  mutable acquisitions : int;
  mutable cross_shard : int; (* acquisitions nested inside another shard *)
  mutable order_violations : int; (* fatal unless [check_order] is off *)
  mutable check_order : bool;
}

let create_plane () =
  { held = []; acquisitions = 0; cross_shard = 0; order_violations = 0; check_order = true }

let acquisitions p = p.acquisitions
let cross_shard_ops p = p.cross_shard

(* Run [f] with [shard] held.  Reentrant (re-acquiring a held shard is
   fine); acquiring a shard with a *higher*-id shard already held is an
   ordering violation. *)
let with_lock p ~shard f =
  (match p.held with
  | h :: _ when shard < h ->
    p.order_violations <- p.order_violations + 1;
    if p.check_order then
      failwith
        (Printf.sprintf "Ctl_shard: shard %d acquired while holding shard %d (order violation)"
           shard h)
  | _ -> ());
  p.acquisitions <- p.acquisitions + 1;
  if p.held <> [] then p.cross_shard <- p.cross_shard + 1;
  p.held <- shard :: p.held;
  Fun.protect ~finally:(fun () -> p.held <- List.tl p.held) f

(* The two-shard protocol: order by id, lowest first. *)
let with_pair p ~a ~b f =
  let lo = min a b and hi = max a b in
  if lo = hi then with_lock p ~shard:lo f
  else with_lock p ~shard:lo (fun () -> with_lock p ~shard:hi f)

(* Generalized form for reap_dead and GC sweeps: any shard set, taken
   in ascending order. *)
let with_all p ~shards f =
  let sorted = List.sort_uniq compare shards in
  let rec nest = function
    | [] -> f ()
    | s :: rest -> with_lock p ~shard:s (fun () -> nest rest)
  in
  nest sorted
