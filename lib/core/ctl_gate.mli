(** The verification gate: map/unmap, the background verification
    pipeline, commit, the dead-writer gate, namespace operations.
    Internal to [lib/core] — external code goes through {!Controller}. *)

val check_file_now : Ctl_state.t -> proc:int -> ino:int -> dentry_addr:int -> Verifier.report
(** One instrumented verification: full or incremental per the global
    mode, feeding the per-invariant stats and the observability hook. *)

val verify_file : Ctl_state.t -> proc:int -> f:Ctl_state.file_info -> bool
val ensure_verified : Ctl_state.t -> f:Ctl_state.file_info -> (unit, Fs_types.errno) result
val drain_unverified : Ctl_state.t -> int

val settle : Ctl_state.t -> Ctl_state.file_info -> unit
(** Wait until the file has no queued or in-flight verification. *)

val drain_verification : Ctl_state.t -> unit
(** Run every queued verification inline; wait out in-flight ones.
    A no-op outside fibers (the pipeline is always empty there). *)

val start : Ctl_state.t -> unit
(** Spawn the background verifier fibers. *)

val map_file : Ctl_state.t -> proc:int -> ino:int -> write:bool -> (unit, Fs_types.errno) result
val unmap_file : Ctl_state.t -> proc:int -> ino:int -> (unit, Fs_types.errno) result
val commit : Ctl_state.t -> proc:int -> ino:int -> (unit, Fs_types.errno) result
val unmap_all : Ctl_state.t -> proc:int -> unit
val chmod : Ctl_state.t -> proc:int -> ino:int -> mode:int -> (unit, Fs_types.errno) result

val chown :
  Ctl_state.t -> proc:int -> ino:int -> uid:int -> gid:int -> (unit, Fs_types.errno) result

val write_mapped_inos : Ctl_state.t -> proc:int -> (int * int * Fs_types.ftype) list
val dentry_addr_of : Ctl_state.t -> int -> int option
val crash_recover : Ctl_state.t -> unit

(** {2 The ring drain plane (DESIGN.md §4.15)} *)

val ring_batch_limit : int

val ring_setup : Ctl_state.t -> proc:int -> depth:int -> Ctl_ring.t
(** Create [proc]'s submission/completion ring and spawn its drain
    fiber on the servicing shard ([proc mod shards]). *)

val ring_of : Ctl_state.t -> int -> Ctl_ring.t option

val set_ring_paused : Ctl_state.t -> bool -> unit
(** Test hook: paused drain fibers park instead of consuming;
    unpausing wakes them all. *)

val map_file_body :
  Ctl_state.t -> proc:int -> ino:int -> write:bool -> (unit, Fs_types.errno) result
(** The op body without the shield/syscall/heartbeat preamble — what
    the drain plane amortizes over a batch.  Exposed for the
    batch-drain equivalence tests. *)

val unmap_file_body : Ctl_state.t -> proc:int -> ino:int -> (unit, Fs_types.errno) result
