(* Checkpoint store: verified-metadata snapshots, rollback, and the
   delta lookup behind incremental verification.

   A checkpoint holds the last *verified* bytes of a file's metadata
   pages together with the MMU write-set mark current when they were
   read.  While a page has no recorded content mutation past that mark,
   the snapshot bytes equal the device bytes bit for bit — so they can
   be (a) reused when the next checkpoint is taken and (b) served to
   the verifier in incremental mode (see {!Verifier}).  Any doubt —
   write-set overflow, no checkpoint, dirty page — falls back to the
   device read, never the other way around. *)

module Pmem = Trio_nvm.Pmem
module Crc32 = Trio_util.Crc32
open Ctl_state

let page_size = Layout.page_size

(* Can snapshot bytes for [pg] taken at [ck.ck_mark] still stand in for
   the device?  Requires the write-set to have tracked every store since
   the mark (no overflow) and the page to be clean since then. *)
let snapshot_valid t ck pg =
  Mmu.writes_tracked_since t.mmu ~mark:ck.ck_mark ~page:pg
  && not (Mmu.dirty_since t.mmu ~mark:ck.ck_mark ~page:pg)

let take_checkpoint t (f : file_info) =
  let actor = Pmem.kernel_actor in
  (* Capture the mark before any read: stores racing the snapshot then
     land after the mark and invalidate what they touched. *)
  let mark = Mmu.write_mark t.mmu in
  let old_ck = f.f_checkpoint in
  let reuse pg =
    match old_ck with
    | Some ck when snapshot_valid t ck pg -> List.assoc_opt pg ck.ck_pages
    | _ -> None
  in
  let dentry = Pmem.read t.pmem ~actor ~addr:f.f_dentry_addr ~len:Layout.dentry_size in
  let meta_pages =
    match f.f_ftype with
    | Fs_types.Reg -> f.f_index_pages
    | Fs_types.Dir -> f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages
  in
  let ck_pages =
    List.map
      (fun pg ->
        match reuse pg with
        | Some b -> (pg, b)
        | None -> (pg, Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size))
      meta_pages
  in
  let children =
    if f.f_ftype = Fs_types.Dir then
      List.concat_map
        (fun pg ->
          (* the snapshot just built holds every dir data page *)
          let b = List.assoc pg ck_pages in
          List.filter_map
            (fun slot ->
              let ino = Layout.get_u64 b (slot * Layout.dentry_size) in
              if ino = 0 then None else Some ino)
            (List.init Layout.dentries_per_page Fun.id))
        f.f_data_pages
    else []
  in
  let inode =
    match Layout.decode_dentry dentry with
    | Some (Ok (inode, _)) -> inode
    | _ ->
      (* unreadable dentry: checkpoint what we can *)
      {
        Layout.ino = f.f_ino;
        ftype = f.f_ftype;
        mode = 0;
        uid = 0;
        gid = 0;
        size = 0;
        index_head = 0;
        mtime = 0;
        ctime = 0;
      }
  in
  f.f_checkpoint <-
    Some
      {
        ck_dentry = dentry;
        ck_pages;
        ck_children = children;
        ck_size = inode.Layout.size;
        ck_index_head = inode.Layout.index_head;
        ck_mark = mark;
      }

(* Restore a file's metadata to the given checkpoint: the
   corruption-recovery policy of §4.3.  Pages referenced now but not at
   checkpoint time fall back to the offending process' allocation pool.
   [ck] may be the file's live checkpoint or one decoded from a durable
   snapshot root (see {!Ctl_snapshot}); durable sources are CRC-gated
   before they reach here, so the bytes written are never torn. *)
let restore_checkpoint t f ck ~offender =
  begin
    let actor = Pmem.kernel_actor in
    Pmem.write t.pmem ~actor ~addr:f.f_dentry_addr ~src:ck.ck_dentry;
    Pmem.persist t.pmem ~addr:f.f_dentry_addr ~len:Layout.dentry_size;
    List.iter
      (fun (pg, snapshot) ->
        Pmem.write t.pmem ~actor ~addr:(pg * page_size) ~src:snapshot;
        Pmem.persist t.pmem ~addr:(pg * page_size) ~len:page_size)
      ck.ck_pages;
    (* Pages added since the checkpoint return to the offender. *)
    let ck_set = List.map fst ck.ck_pages in
    let offender_info = proc_info t offender in
    List.iter
      (fun pg ->
        if not (List.mem pg ck_set) then begin
          set_page_owner t pg (Allocated_to offender);
          Hashtbl.replace offender_info.p_pages pg ()
        end)
      (f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages);
    (* Recompute attribution by re-walking the restored metadata. *)
    (match walk_file t ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr with
    | Some (_inode, index_pages, data_pages, dindex_pages) ->
      f.f_index_pages <- index_pages;
      f.f_data_pages <- data_pages;
      f.f_dindex_pages <- dindex_pages;
      List.iter
        (fun pg ->
          set_page_owner t pg (In_file f.f_ino);
          Hashtbl.remove offender_info.p_pages pg)
        (index_pages @ data_pages @ dindex_pages)
    | None -> ())
  end

let rollback_to_checkpoint t f ~offender =
  match f.f_checkpoint with
  | None -> ()
  | Some ck -> restore_checkpoint t f ck ~offender

let checkpoint_page_bytes t ~ino ~page =
  match file_find t ino with
  | Some { f_checkpoint = Some ck; _ } -> List.assoc_opt page ck.ck_pages
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Delta lookup for incremental verification *)

(* Serve [pg] from its *owning* file's checkpoint when provably clean.
   The lookup is global, not per-verified-file: a directory walk reads
   pages of child files too, and each is covered by its own file's
   checkpoint.  Returning [None] is always safe (device read). *)
let page_snapshot t pg =
  match owner_of t pg with
  | In_file ino -> (
    match file_find t ino with
    | Some { f_checkpoint = Some ck; _ } when snapshot_valid t ck pg ->
      List.assoc_opt pg ck.ck_pages
    | _ -> None)
  | Free | Allocated_to _ -> None

let delta_of t =
  match !verify_mode with Full -> None | Incremental -> Some (fun pg -> page_snapshot t pg)

(* ------------------------------------------------------------------ *)
(* Durable encoding.  Checkpoints are DRAM soft state; serializing them
   (e.g. into a controller log so a warm restart can resume incremental
   verification) must round-trip exactly and detect torn records, hence
   the trailing CRC.  Layout, all integers u64-in-8-bytes little endian:

     magic "TRCK" | version | ck_mark | ck_size | ck_index_head
     | dentry len + bytes | npages | (page no + page bytes)*
     | nchildren | child ino* | crc32 of everything above *)

let magic = "TRCK"
let version = 1

let encode_checkpoint (ck : checkpoint) =
  let buf = Buffer.create (256 + (List.length ck.ck_pages * (page_size + 8))) in
  let u64 n =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int n);
    Buffer.add_bytes buf b
  in
  Buffer.add_string buf magic;
  u64 version;
  u64 ck.ck_mark;
  u64 ck.ck_size;
  u64 ck.ck_index_head;
  u64 (Bytes.length ck.ck_dentry);
  Buffer.add_bytes buf ck.ck_dentry;
  u64 (List.length ck.ck_pages);
  List.iter
    (fun (pg, b) ->
      u64 pg;
      u64 (Bytes.length b);
      Buffer.add_bytes buf b)
    ck.ck_pages;
  u64 (List.length ck.ck_children);
  List.iter u64 ck.ck_children;
  let body = Buffer.to_bytes buf in
  u64 (Crc32.of_bytes body);
  Buffer.to_bytes buf

let decode_checkpoint b =
  let fail msg = Error ("decode_checkpoint: " ^ msg) in
  let len = Bytes.length b in
  if len < String.length magic + 8 then fail "truncated"
  else begin
    let crc_off = len - 8 in
    let stored_crc = Int64.to_int (Bytes.get_int64_le b crc_off) in
    if Crc32.of_bytes ~pos:0 ~len:crc_off b <> stored_crc then fail "bad crc"
    else if Bytes.sub_string b 0 (String.length magic) <> magic then fail "bad magic"
    else begin
      let pos = ref (String.length magic) in
      let u64 () =
        if !pos + 8 > crc_off then failwith "truncated";
        let v = Int64.to_int (Bytes.get_int64_le b !pos) in
        pos := !pos + 8;
        v
      in
      let bytes n =
        if n < 0 || !pos + n > crc_off then failwith "truncated";
        let v = Bytes.sub b !pos n in
        pos := !pos + n;
        v
      in
      match
        let v = u64 () in
        if v <> version then failwith "bad version";
        let ck_mark = u64 () in
        let ck_size = u64 () in
        let ck_index_head = u64 () in
        let ck_dentry = bytes (u64 ()) in
        let npages = u64 () in
        let ck_pages =
          List.init npages (fun _ ->
              let pg = u64 () in
              let b = bytes (u64 ()) in
              (pg, b))
        in
        let nchildren = u64 () in
        let ck_children = List.init nchildren (fun _ -> u64 ()) in
        if !pos <> crc_off then failwith "trailing garbage";
        { ck_dentry; ck_pages; ck_children; ck_size; ck_index_head; ck_mark }
      with
      | ck -> Ok ck
      | exception Failure msg -> fail msg
    end
  end
