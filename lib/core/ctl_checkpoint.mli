(** Checkpoint store: verified-metadata snapshots, rollback, the delta
    lookup behind incremental verification, and a durable encoding.
    Internal to [lib/core] — external code goes through {!Controller}. *)

val take_checkpoint : Ctl_state.t -> Ctl_state.file_info -> unit
(** Snapshot the file's metadata pages.  Pages provably clean since the
    previous checkpoint reuse its bytes without a device read. *)

val rollback_to_checkpoint : Ctl_state.t -> Ctl_state.file_info -> offender:int -> unit

val restore_checkpoint :
  Ctl_state.t -> Ctl_state.file_info -> Ctl_state.checkpoint -> offender:int -> unit
(** Like [rollback_to_checkpoint] but with an explicit source — used by
    {!Ctl_snapshot} to restore a checkpoint decoded from a durable root
    (which is CRC-gated before it reaches here). *)

val checkpoint_page_bytes : Ctl_state.t -> ino:int -> page:int -> Bytes.t option

val page_snapshot : Ctl_state.t -> int -> Bytes.t option
(** Bytes of [page] from its owning file's checkpoint, when provably
    identical to the device content; [None] otherwise. *)

val delta_of : Ctl_state.t -> (int -> Bytes.t option) option
(** The delta lookup handed to {!Verifier.check_file}; [None] when the
    global mode is [Full]. *)

val encode_checkpoint : Ctl_state.checkpoint -> Bytes.t
val decode_checkpoint : Bytes.t -> (Ctl_state.checkpoint, string) result
