(* Layered VFS dispatch: the single point every file system operation
   flows through.

   [wrap] takes any {!Fs_intf.t} (ArckFS, FPFS, or a baseline model) and
   returns a handle whose {!ops} record routes each call through one
   instrumentation hook.  Every operation is tagged with a stable
   {!op_kind} and, on completion, records into {!Trio_sim.Stats}:

   - a per-op invocation counter and error counter,
   - a per-errno breakdown,
   - a virtual-time latency histogram (p50/p99/max via {!Stats.Hist}).

   An optional bounded ring buffer additionally traces the most recent
   operations (op, path/fd, start time, latency, errno) for dumping from
   [trioctl trace].

   Instrumentation is measurement only: it performs no [Sched.delay] or
   [Sched.cpu_work], so wrapping an fs changes neither its virtual-time
   results nor the determinism of a run.  The hot path allocates no
   buffers — counter keys are precomputed at [wrap] time and histograms
   update in place. *)

module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Pmem = Trio_nvm.Pmem
open Fs_types

type op_kind =
  | Op_create
  | Op_open
  | Op_close
  | Op_pread
  | Op_pwrite
  | Op_append
  | Op_truncate
  | Op_unlink
  | Op_mkdir
  | Op_rmdir
  | Op_readdir
  | Op_stat
  | Op_rename
  | Op_chmod
  | Op_fsync
  | Op_verify
      (* not a dispatched operation: one integrity verification performed
         by the controller's pipeline, surfaced here via
         {!attach_verify_trace} so verification shows up in the same
         counters, histograms and trace ring as the ops that caused it *)

let all_ops =
  [ Op_create; Op_open; Op_close; Op_pread; Op_pwrite; Op_append; Op_truncate; Op_unlink;
    Op_mkdir; Op_rmdir; Op_readdir; Op_stat; Op_rename; Op_chmod; Op_fsync; Op_verify ]

let op_count = 16

let op_index = function
  | Op_create -> 0
  | Op_open -> 1
  | Op_close -> 2
  | Op_pread -> 3
  | Op_pwrite -> 4
  | Op_append -> 5
  | Op_truncate -> 6
  | Op_unlink -> 7
  | Op_mkdir -> 8
  | Op_rmdir -> 9
  | Op_readdir -> 10
  | Op_stat -> 11
  | Op_rename -> 12
  | Op_chmod -> 13
  | Op_fsync -> 14
  | Op_verify -> 15

let op_name = function
  | Op_create -> "create"
  | Op_open -> "open"
  | Op_close -> "close"
  | Op_pread -> "pread"
  | Op_pwrite -> "pwrite"
  | Op_append -> "append"
  | Op_truncate -> "truncate"
  | Op_unlink -> "unlink"
  | Op_mkdir -> "mkdir"
  | Op_rmdir -> "rmdir"
  | Op_readdir -> "readdir"
  | Op_stat -> "stat"
  | Op_rename -> "rename"
  | Op_chmod -> "chmod"
  | Op_fsync -> "fsync"
  | Op_verify -> "verify"

(* ------------------------------------------------------------------ *)
(* Trace ring buffer *)

type trace_entry = {
  te_op : op_kind;
  te_path : string; (* "" for fd-based ops *)
  te_fd : int; (* -1 for path-based ops *)
  te_start : float; (* virtual ns at dispatch *)
  te_elapsed : float; (* virtual ns spent in the fs *)
  te_errno : errno option;
}

type ring = {
  entries : trace_entry option array;
  mutable next : int; (* total pushes; slot = next mod capacity *)
}

(* ------------------------------------------------------------------ *)
(* Per-op metrics *)

type metric = {
  hist : Stats.Hist.t;
  errnos : int array; (* by Fs_types.errno_index *)
  mutable errors : int;
  mutable faults : int; (* media-fault outcomes: EIO / EROFS results *)
}

type t = {
  inner : Fs_intf.t;
  sched : Sched.t;
  stats : Stats.t;
  metrics : metric array; (* by op_index *)
  count_keys : string array; (* "vfs.<op>.count", precomputed: no alloc per op *)
  error_keys : string array; (* "vfs.<op>.errors" *)
  fault_keys : string array; (* "vfs.<op>.faults" *)
  ring : ring option;
  mutable fops : Fs_intf.t; (* the instrumented record; built once in [wrap] *)
}

let record t kind ~path ~fd ~start err =
  let dt = Sched.now t.sched -. start in
  let i = op_index kind in
  let m = t.metrics.(i) in
  Stats.Hist.observe m.hist dt;
  Stats.incr t.stats t.count_keys.(i);
  (match err with
  | None -> ()
  | Some e ->
    m.errors <- m.errors + 1;
    m.errnos.(errno_index e) <- m.errnos.(errno_index e) + 1;
    Stats.incr t.stats t.error_keys.(i);
    (* EIO / EROFS at this boundary mean the media degraded underneath
       the operation (retries exhausted, quarantined page, read-only
       degradation) — tracked separately so fault-injection runs can be
       audited from the stats alone. *)
    match e with
    | EIO | EROFS ->
      m.faults <- m.faults + 1;
      Stats.incr t.stats t.fault_keys.(i)
    | _ -> ());
  match t.ring with
  | None -> ()
  | Some r ->
    r.entries.(r.next mod Array.length r.entries) <-
      Some { te_op = kind; te_path = path; te_fd = fd; te_start = start; te_elapsed = dt; te_errno = err };
    r.next <- r.next + 1

(* The instrumentation hook every operation flows through.

   Last line of defense: no NVM exception may escape the VFS boundary.
   The LibFS retry wrapper already converts media faults to errnos on
   its own paths, but a custom LibFS (or a future path that forgets the
   wrapper) must still degrade to a clean errno here rather than
   unwinding the application. *)
let call t kind ~path ~fd f =
  let start = Sched.now t.sched in
  let result =
    try f () with
    | Pmem.Media_fault _ -> Error EIO
    | Pmem.Bounds _ -> Error EINVAL
    | Pmem.Mmu_fault _ -> Error EAGAIN
  in
  record t kind ~path ~fd ~start (match result with Ok _ -> None | Error e -> Some e);
  result

let instrument t =
  let f = t.inner in
  {
    Fs_intf.fs_name = f.Fs_intf.fs_name;
    create = (fun path mode -> call t Op_create ~path ~fd:(-1) (fun () -> f.create path mode));
    open_ = (fun path flags -> call t Op_open ~path ~fd:(-1) (fun () -> f.open_ path flags));
    close = (fun fd -> call t Op_close ~path:"" ~fd (fun () -> f.close fd));
    pread = (fun fd buf off -> call t Op_pread ~path:"" ~fd (fun () -> f.pread fd buf off));
    pwrite = (fun fd buf off -> call t Op_pwrite ~path:"" ~fd (fun () -> f.pwrite fd buf off));
    append = (fun fd buf -> call t Op_append ~path:"" ~fd (fun () -> f.append fd buf));
    truncate = (fun path len -> call t Op_truncate ~path ~fd:(-1) (fun () -> f.truncate path len));
    unlink = (fun path -> call t Op_unlink ~path ~fd:(-1) (fun () -> f.unlink path));
    mkdir = (fun path mode -> call t Op_mkdir ~path ~fd:(-1) (fun () -> f.mkdir path mode));
    rmdir = (fun path -> call t Op_rmdir ~path ~fd:(-1) (fun () -> f.rmdir path));
    readdir = (fun path -> call t Op_readdir ~path ~fd:(-1) (fun () -> f.readdir path));
    stat = (fun path -> call t Op_stat ~path ~fd:(-1) (fun () -> f.stat path));
    rename = (fun src dst -> call t Op_rename ~path:src ~fd:(-1) (fun () -> f.rename src dst));
    chmod = (fun path mode -> call t Op_chmod ~path ~fd:(-1) (fun () -> f.chmod path mode));
    fsync = (fun fd -> call t Op_fsync ~path:"" ~fd (fun () -> f.fsync fd));
  }

let wrap ~sched ?stats ?trace_capacity fs =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let ring =
    match trace_capacity with
    | None -> None
    | Some c ->
      if c <= 0 then invalid_arg "Vfs.wrap: trace_capacity must be positive";
      Some { entries = Array.make c None; next = 0 }
  in
  let t =
    {
      inner = fs;
      sched;
      stats;
      metrics =
        Array.init op_count (fun _ ->
            { hist = Stats.Hist.create (); errnos = Array.make errno_count 0; errors = 0; faults = 0 });
      count_keys = Array.of_list (List.map (fun k -> "vfs." ^ op_name k ^ ".count") all_ops);
      error_keys = Array.of_list (List.map (fun k -> "vfs." ^ op_name k ^ ".errors") all_ops);
      fault_keys = Array.of_list (List.map (fun k -> "vfs." ^ op_name k ^ ".faults") all_ops);
      ring;
      fops = fs;
    }
  in
  t.fops <- instrument t;
  t

let ops t = t.fops
let inner t = t.inner
let name t = t.inner.Fs_intf.fs_name
let stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Verification-plane observability *)

(* Route the controller's verification hook into this handle: every
   incremental or full check the pipeline performs lands in the
   [Op_verify] counters/histogram and (when tracing) the ring, tagged
   with its mode and inode.  One hook per controller — attaching a
   second handle supersedes the first. *)
let attach_verify_trace t ctl =
  Controller.set_verify_hook ctl (fun ~ino ~incremental ~dur ~ok ->
      let i = op_index Op_verify in
      let m = t.metrics.(i) in
      Stats.Hist.observe m.hist dur;
      Stats.incr t.stats t.count_keys.(i);
      if not ok then begin
        m.errors <- m.errors + 1;
        m.errnos.(errno_index EIO) <- m.errnos.(errno_index EIO) + 1;
        Stats.incr t.stats t.error_keys.(i)
      end;
      match t.ring with
      | None -> ()
      | Some r ->
        r.entries.(r.next mod Array.length r.entries) <-
          Some
            {
              te_op = Op_verify;
              te_path =
                Printf.sprintf "%s ino=%d" (if incremental then "incremental" else "full") ino;
              te_fd = -1;
              te_start = Sched.now t.sched -. dur;
              te_elapsed = dur;
              te_errno = (if ok then None else Some EIO);
            };
        r.next <- r.next + 1)

(* Mirror the controller's ring drain plane into the stats table: how
   many batches each drain pass took, how many ops they amortized, and
   the deepest batch/ring observed.  One hook per controller. *)
let attach_ring_trace t ctl =
  Controller.set_ring_hook ctl (fun ~shard:_ ~batch ~depth ->
      Stats.incr t.stats "ring.batches";
      Stats.add t.stats "ring.ops" (float_of_int batch);
      let b = float_of_int batch in
      if b > Stats.get t.stats "ring.batch.max" then begin
        let cur = Stats.get t.stats "ring.batch.max" in
        Stats.add t.stats "ring.batch.max" (b -. cur)
      end;
      let d = float_of_int depth in
      if d > Stats.get t.stats "ring.depth.max" then begin
        let cur = Stats.get t.stats "ring.depth.max" in
        Stats.add t.stats "ring.depth.max" (d -. cur)
      end)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type op_stats = {
  op : op_kind;
  count : int;
  errors : int;
  faults : int; (* of [errors], how many were media-fault outcomes *)
  errnos : (errno * int) list; (* only non-zero entries *)
  p50 : float;
  p99 : float;
  max : float;
  mean : float;
}

let op_stats t kind =
  let m = t.metrics.(op_index kind) in
  {
    op = kind;
    count = Stats.Hist.count m.hist;
    errors = m.errors;
    faults = m.faults;
    errnos =
      List.filter_map
        (fun e ->
          let n = m.errnos.(errno_index e) in
          if n = 0 then None else Some (e, n))
        all_errnos;
    p50 = Stats.Hist.percentile m.hist 50.0;
    p99 = Stats.Hist.percentile m.hist 99.0;
    max = Stats.Hist.max_value m.hist;
    mean = Stats.Hist.mean m.hist;
  }

(* Per-op stats for every operation that was invoked at least once. *)
let snapshot t =
  List.filter_map
    (fun k ->
      let s = op_stats t k in
      if s.count = 0 then None else Some s)
    all_ops

let total_ops t =
  Array.fold_left (fun acc m -> acc + Stats.Hist.count m.hist) 0 t.metrics

let reset t =
  Stats.reset t.stats;
  Array.iter
    (fun m ->
      Stats.Hist.reset m.hist;
      Array.fill m.errnos 0 (Array.length m.errnos) 0;
      m.errors <- 0;
      m.faults <- 0)
    t.metrics;
  match t.ring with
  | None -> ()
  | Some r ->
    Array.fill r.entries 0 (Array.length r.entries) None;
    r.next <- 0

let pp_op_stats ppf s =
  Fmt.pf ppf "%-9s n=%-7d p50=%8.0fns  p99=%8.0fns  max=%8.0fns" (op_name s.op) s.count s.p50
    s.p99 s.max;
  if s.errors > 0 then begin
    Fmt.pf ppf "  err=%d (" s.errors;
    List.iteri
      (fun i (e, n) -> Fmt.pf ppf "%s%s:%d" (if i > 0 then " " else "") (errno_to_string e) n)
      s.errnos;
    Fmt.pf ppf ")"
  end;
  if s.faults > 0 then Fmt.pf ppf "  media-faults=%d" s.faults

let pp_breakdown ppf t =
  match snapshot t with
  | [] -> Fmt.pf ppf "  (no operations recorded)@."
  | per_op -> List.iter (fun s -> Fmt.pf ppf "  %a@." pp_op_stats s) per_op

(* ------------------------------------------------------------------ *)
(* Trace access *)

(* Entries oldest-first; at most [trace_capacity] of them. *)
let trace t =
  match t.ring with
  | None -> []
  | Some r ->
    let cap = Array.length r.entries in
    let first = if r.next <= cap then 0 else r.next - cap in
    List.filter_map
      (fun i -> r.entries.(i mod cap))
      (List.init (r.next - first) (fun k -> first + k))

let trace_dropped t = match t.ring with None -> 0 | Some r -> max 0 (r.next - Array.length r.entries)

let pp_trace_entry ppf e =
  let target = if e.te_fd >= 0 then Printf.sprintf "fd=%d" e.te_fd else e.te_path in
  Fmt.pf ppf "%12.0fns %-9s %-28s %8.0fns %s" e.te_start (op_name e.te_op) target e.te_elapsed
    (match e.te_errno with None -> "ok" | Some err -> errno_to_string err)

let pp_trace ppf t =
  match trace t with
  | [] -> Fmt.pf ppf "  (trace empty)@."
  | entries ->
    if trace_dropped t > 0 then Fmt.pf ppf "  ... %d older entries dropped@." (trace_dropped t);
    List.iter (fun e -> Fmt.pf ppf "  %a@." pp_trace_entry e) entries
