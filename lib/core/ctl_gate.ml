(* The verification gate: everything between a LibFS unmapping a file
   and the kernel trusting its metadata again.

   Verification is *pipelined* (paper §4.3/§6): a voluntary unmap of a
   write mapping only enqueues the file on a work queue drained by
   background verifier fibers, so application work overlaps
   verification instead of serializing behind it.  The synchronization
   points are:

   - [map_file] waits (settles) when the requested file or an ancestor
     directory still has a queued or in-flight verification — an
     ancestor's verification may re-ingest this file's record;
   - lease-expiry force-revoke settles inline, charged to the waiter,
     exactly like the old synchronous handoff;
   - the read-side accessors that expose verification *results*
     (corruption events, quarantine list) drain the queue first.

   Each check runs through {!check_file_now}, which picks full or
   incremental mode ({!Ctl_checkpoint.delta_of}), feeds the
   per-invariant stats, and fires the observability hook. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
open Fs_types
open Ctl_state

(* Preserve the offender's corrupted bytes as a private quarantine file so
   no data is silently lost (§4.3). *)
let quarantine_copy t f ~offender =
  let actor = Pmem.kernel_actor in
  let pages = f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages in
  let qino = List.hd (Ctl_alloc.alloc_inos t ~proc:offender ~count:1) in
  (* Copy every current page into fresh pages owned by the offender. *)
  List.iter
    (fun pg ->
      let node = node_of_page t pg in
      match
        Ctl_alloc.alloc_pages t ~proc:offender ~node ~count:1 ~kind:(Pmem.kind_of t.pmem pg)
      with
      | Ok [ dst ] ->
        let b = Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size in
        Pmem.write t.pmem ~actor ~addr:(dst * page_size) ~src:b;
        Pmem.persist t.pmem ~addr:(dst * page_size) ~len:page_size
      | _ -> ())
    pages;
  t.quarantine <- (offender, qino) :: t.quarantine

(* ------------------------------------------------------------------ *)
(* One verification, instrumented *)

(* Run the verifier on one file: incremental when the global mode allows
   (clean pages served from delta checkpoints), full otherwise.  Also
   the single place the mode counters and the observability hook fire. *)
let check_file_now t ~proc ~ino ~dentry_addr =
  let delta = Ctl_checkpoint.delta_of t in
  let hits0 = Stats.get t.stats "verify.dirty.hits" in
  let t0 = Sched.now t.sched in
  let report = Verifier.check_file ?delta ~stats:t.stats (view t) ~proc ~ino ~dentry_addr in
  (* Label by what the check actually did, not the global mode: write-set
     overflow or a missing/stale checkpoint forces every page to a device
     read, and such a walk is full no matter what mode is configured. *)
  let incremental = Option.is_some delta && Stats.get t.stats "verify.dirty.hits" > hits0 in
  Stats.incr t.stats (if incremental then "verify.incremental" else "verify.full");
  (match t.verify_hook with
  | Some hook -> hook ~ino ~incremental ~dur:(Sched.now t.sched -. t0) ~ok:report.Verifier.ok
  | None -> ());
  report

(* ------------------------------------------------------------------ *)
(* Deferred reclamation of deleted children.

   From the source side, an in-flight cross-directory rename is
   indistinguishable from a delete: the dentry is simply gone.  While
   the pipeline is hot (any verification queued, running, or parked at
   the unverified gate), the destination directory's verification may
   still re-parent the child, so children reported deleted are only
   *recorded* here, and reclaimed once the pipeline idles.  A child
   still owned by its old parent at that point really was deleted; one
   whose ownership moved is skipped. *)

let reclaim_deleted t ~proc ~parent ~dino =
  match ino_owner_of t dino with
  | Ino_in_dir p when p = parent -> (
    match file_find t dino with
    | Some df when df.f_writer <> None || Hashtbl.length df.f_readers > 0 ->
      (* re-mapped in the window between verification and this flush:
         not safe to free under someone's feet — try again at the next
         pipeline idle *)
      t.deferred_deletes <- (proc, parent, dino) :: t.deferred_deletes
    | Some df ->
      List.iter (fun pg -> Ctl_alloc.release_page t pg)
        (df.f_index_pages @ df.f_data_pages @ df.f_dindex_pages);
      drop_unverified t df;
      with_ino_shard t dino (fun () ->
          remove_file t dino;
          remove_shadow t dino;
          clear_ino_owner t dino)
    | None ->
      with_ino_shard t dino (fun () ->
          remove_shadow t dino;
          clear_ino_owner t dino))
  | _ -> () (* moved elsewhere: nothing to reclaim *)

let reclaim_deferred t =
  if (not (pipeline_hot t)) && t.deferred_deletes <> [] then begin
    let ds = t.deferred_deletes in
    t.deferred_deletes <- [];
    List.iter (fun (proc, parent, dino) -> reclaim_deleted t ~proc ~parent ~dino) ds
  end

(* ------------------------------------------------------------------ *)
(* Ingestion: after a successful verification, reconcile global info *)

let rec ingest_verified t ~proc ~(f : file_info) (report : Verifier.report) =
  let pinfo = proc_info t proc in
  (* Page attribution: everything the walk saw becomes In_file; pages that
     left the file (truncate without free) return to the proc. *)
  let new_pages =
    report.Verifier.index_pages @ report.Verifier.data_pages @ report.Verifier.dindex_pages
  in
  let old_pages = f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages in
  List.iter
    (fun pg ->
      if not (List.mem pg new_pages) then begin
        set_page_owner t pg (Allocated_to proc);
        Hashtbl.replace pinfo.p_pages pg ()
      end)
    old_pages;
  List.iter
    (fun pg ->
      set_page_owner t pg (In_file f.f_ino);
      Hashtbl.remove pinfo.p_pages pg)
    new_pages;
  f.f_index_pages <- report.Verifier.index_pages;
  f.f_data_pages <- report.Verifier.data_pages;
  f.f_dindex_pages <- report.Verifier.dindex_pages;
  (* Once pages belong to a file the creator no longer holds write-mapped,
     its allocation-time grants must go: otherwise it would retain access
     after the handoff, defeating the exclusive-write policy. *)
  if f.f_writer <> Some proc then
    Mmu.revoke_free t.mmu ~actor:proc ~pages:new_pages ~perm:Mmu.P_readwrite;
  (* Children: ingest newly created files, update moved dentries. *)
  List.iter
    (fun (c : Verifier.child) ->
      match ino_owner_of t c.Verifier.c_ino with
      | Ino_allocated_to p when p = proc ->
        (* Fresh file: establish the shadow inode with the creator's
           credentials as ground truth. *)
        let cred = cred_of_proc t proc in
        let mode =
          match
            Layout.read_dentry t.pmem ~actor:Pmem.kernel_actor ~addr:c.Verifier.c_dentry_addr
          with
          | Some (Ok (inode, _)) -> inode.Layout.mode land 0o7777
          | _ -> 0o644
        in
        let child_file =
          new_file ~ino:c.Verifier.c_ino ~dentry_addr:c.Verifier.c_dentry_addr ~parent:f.f_ino
            ~ftype:c.Verifier.c_ftype ()
        in
        (* Registering the child touches only its own shard's tables;
           the recursive verification below runs outside the lock. *)
        with_ino_shard t c.Verifier.c_ino (fun () ->
            set_shadow t c.Verifier.c_ino
              {
                Verifier.s_ftype = c.Verifier.c_ftype;
                s_mode = mode;
                s_uid = cred.uid;
                s_gid = cred.gid;
              };
            set_ino_owner t c.Verifier.c_ino (Ino_in_dir f.f_ino);
            Hashtbl.remove pinfo.p_inos c.Verifier.c_ino;
            set_file t c.Verifier.c_ino child_file);
        (* Recursively verify and ingest the fresh subtree. *)
        let child_report =
          check_file_now t ~proc ~ino:c.Verifier.c_ino ~dentry_addr:c.Verifier.c_dentry_addr
        in
        if child_report.Verifier.ok then ingest_verified t ~proc ~f:child_file child_report
        else begin
          t.corruption_events <-
            (proc, c.Verifier.c_ino, child_report.Verifier.violations) :: t.corruption_events;
          (* A fresh file that fails verification is simply not ingested:
             remove its dentry so the namespace stays consistent.  The
             parent's walk already counted this child, so the namespace
             repair must reach everything derived from the dentry: the
             parent's size field drops by one and the child's key leaves
             the B-link index (a tree that refuses the delete is rebuilt
             from the surviving dentries).  Otherwise the checkpoint
             refreshed at the end of this ingestion would enshrine a
             stale size and a dangling index entry — a state Full
             verification rejects forever after (I1/I5). *)
          Layout.clear_dentry_atomic t.pmem ~actor:Pmem.kernel_actor
            ~addr:c.Verifier.c_dentry_addr;
          (match Layout.read_dentry t.pmem ~actor:Pmem.kernel_actor ~addr:f.f_dentry_addr with
          | Some (Ok (pinode, _)) when pinode.Layout.size > 0 ->
            Layout.write_size t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
              (pinode.Layout.size - 1)
          | _ -> ());
          let dindex_root =
            Layout.read_dindex_root t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
          in
          (if dindex_root <> 0 then
             match
               Dirindex.delete t.pmem ~actor:Pmem.kernel_actor ~root:dindex_root
                 ~hash:(Dirindex.hash_name c.Verifier.c_name) ~addr:c.Verifier.c_dentry_addr
             with
             | Ok () -> ()
             | Error _ -> ignore (Ctl_media.rebuild_dindex t ~ino:f.f_ino : (int, _) result));
          with_ino_shard t c.Verifier.c_ino (fun () ->
              remove_file t c.Verifier.c_ino;
              remove_shadow t c.Verifier.c_ino;
              set_ino_owner t c.Verifier.c_ino (Ino_allocated_to proc))
        end
      | Ino_in_dir parent when parent = f.f_ino -> (
        (* Existing child: its dentry may have moved within the dir. *)
        match file_find t c.Verifier.c_ino with
        | Some cf -> cf.f_dentry_addr <- c.Verifier.c_dentry_addr
        | None -> ())
      | Ino_in_dir _other ->
        (* Cross-directory move (rename): accept, since the verifier
           only lets this through when the source is write-mapped by
           the same process.  The child may live on a different shard
           than the destination directory — take both shard locks in
           canonical order for the ownership flip. *)
        with_ino_pair t f.f_ino c.Verifier.c_ino (fun () ->
            set_ino_owner t c.Verifier.c_ino (Ino_in_dir f.f_ino);
            match file_find t c.Verifier.c_ino with
            | Some cf ->
              cf.f_dentry_addr <- c.Verifier.c_dentry_addr;
              cf.f_parent <- f.f_ino
            | None -> ())
      | Ino_allocated_to _ | Ino_free -> ())
    report.Verifier.children;
  (* Deleted children: record for pipeline-idle reclaim (see
     [reclaim_deferred] — a sibling's pending verification may yet
     reveal the "delete" to be a cross-directory move). *)
  List.iter
    (fun dino ->
      match ino_owner_of t dino with
      | Ino_in_dir parent when parent = f.f_ino ->
        t.deferred_deletes <- (proc, f.f_ino, dino) :: t.deferred_deletes
      | _ -> () (* moved elsewhere: nothing to reclaim *))
    report.Verifier.deleted_children;
  (* Refresh the checkpoint so it always holds the latest *verified*
     state — including for freshly ingested children, via the recursion
     above.  This is what the patrol scrubber repairs media-damaged
     metadata lines from (see {!Scrub}). *)
  Ctl_checkpoint.take_checkpoint t f

(* ------------------------------------------------------------------ *)
(* Verification driver *)

let verify_file t ~proc ~(f : file_info) =
  let report =
    Stats.timed t.stats t.sched "verify" (fun () ->
        check_file_now t ~proc ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr)
  in
  if report.Verifier.ok then begin
    (* ingestion recursively verifies freshly created children, so its
       time also counts as verification *)
    Stats.timed t.stats t.sched "verify" (fun () -> ingest_verified t ~proc ~f report);
    true
  end
  else begin
    t.corruption_events <- (proc, f.f_ino, report.Verifier.violations) :: t.corruption_events;
    (* Give the LibFS a chance to fix its own corruption (with the fix
       budget modeled by the callback's own virtual time), then re-check. *)
    let fixed =
      match (proc_info t proc).p_fix with
      | Some fix_fn -> (
        match fix_fn f.f_ino with
        | true ->
          let retry = check_file_now t ~proc ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr in
          if retry.Verifier.ok then begin
            ingest_verified t ~proc ~f retry;
            true
          end
          else false
        | false -> false
        | exception _ -> false)
      | None -> false
    in
    if not fixed then begin
      (* Preserve the offender's bytes, then roll the file back. *)
      quarantine_copy t f ~offender:proc;
      Ctl_checkpoint.rollback_to_checkpoint t f ~offender:proc;
      f.f_quarantined_for <- None
    end;
    fixed
  end

(* ------------------------------------------------------------------ *)
(* The background pipeline *)

let verifier_fiber_count = 2

(* Claim and run one queued verification.  Shielded: the verifier is a
   trusted kernel-side entity, not a killable LibFS fiber. *)
let run_pending t (f : file_info) =
  match f.f_pending with
  | None -> ()
  | Some proc ->
    f.f_pending <- None;
    f.f_verifying <- true;
    Sched.shield (fun () -> ignore (verify_file t ~proc ~f));
    f.f_verifying <- false;
    wake_all f;
    t.pending_verifications <- t.pending_verifications - 1;
    reclaim_deferred t

(* Wait until [f] has no queued or in-flight verification.  A queued one
   is run inline (charged to the caller — the file is being demanded
   right now); an in-flight one is waited out on the file's waiter
   queue.  Callers outside a fiber are safe: there the queue is always
   empty and nothing is in flight, so neither branch is taken. *)
let rec settle t (f : file_info) =
  if f.f_pending <> None then begin
    run_pending t f;
    settle t f
  end
  else if f.f_verifying then begin
    Sched.park (fun waker -> Queue.push waker f.f_waiters);
    settle t f
  end

(* Settle [f] and its ancestor chain, root first: a pending parent
   verification may re-ingest (or refuse) this very file. *)
let settle_chain t (f : file_info) =
  let rec up f depth acc =
    let acc = f :: acc in
    if f.f_ino = f.f_parent || depth > 64 then acc
    else
      match file_find t f.f_parent with
      | Some p -> up p (depth + 1) acc
      | None -> acc
  in
  List.iter (fun f -> settle t f) (up f 0 [])

(* Drain the whole pipeline: run every queued verification inline and
   wait out every in-flight one.  Used by the read-side accessors that
   must observe final verdicts, and by crash recovery. *)
let drain_verification t =
  let rec drain_queue (sh : shard) =
    match Queue.take_opt sh.sh_verify_q with
    | None -> ()
    | Some ino ->
      (match file_find t ino with
      | Some f when f.f_pending <> None -> run_pending t f
      | _ -> () (* stale entry: already claimed, re-mapped or deleted *));
      drain_queue sh
  in
  Array.iter drain_queue t.shards;
  let in_flight =
    fold_files t (fun _ f acc -> if f.f_verifying || f.f_pending <> None then f :: acc else acc) []
  in
  List.iter (fun f -> settle t f) in_flight;
  reclaim_deferred t

(* Handoff enqueues onto the queue of the socket that *holds the file's
   pages*: verification is read-dominated, so running it on the home
   socket keeps its device reads local and inside that socket's
   bandwidth domain.  (Registry tables stay ino-hashed — the two
   assignments are independent; the table updates below still go
   through the ino shard's lock.) *)
let home_shard t (f : file_info) =
  let pg =
    match (f.f_data_pages, f.f_index_pages) with
    | pg :: _, _ | [], pg :: _ -> pg
    | [], [] -> f.f_dentry_addr / Trio_nvm.Pmem.page_size
  in
  t.shards.(node_of_page t pg mod Array.length t.shards)

let enqueue_verify t ~proc ~(f : file_info) =
  (* Verification is the most precious shared resource: whoever loads
     the pipeline pays for it, whether the enqueue came from its unmap,
     its ring batch, or a revocation it forced. *)
  qos_charge t proc Ctl_qos.Verify;
  let sh = home_shard t f in
  with_ino_shard t f.f_ino (fun () ->
      f.f_pending <- Some proc;
      t.pending_verifications <- t.pending_verifications + 1;
      Queue.push f.f_ino sh.sh_verify_q;
      sh.sh_enqueued <- sh.sh_enqueued + 1);
  Stats.incr t.stats "verify.queue.enqueued";
  let d =
    float_of_int (Array.fold_left (fun acc s -> acc + Queue.length s.sh_verify_q) 0 t.shards)
  in
  if d > Stats.get t.stats "verify.queue.depth.max" then begin
    let cur = Stats.get t.stats "verify.queue.depth.max" in
    Stats.add t.stats "verify.queue.depth.max" (d -. cur)
  end;
  match Queue.take_opt sh.sh_vq_idle with Some wake -> wake () | None -> ()

(* Body of a background verifier fiber: drain its shard's queue, then
   park until the next enqueue on that shard.  Parked fibers hold no
   scheduled event, so an idle pipeline never keeps the simulation
   alive. *)
let rec service t (sh : shard) =
  match Queue.take_opt sh.sh_verify_q with
  | Some ino ->
    (match file_find t ino with
    | Some f when f.f_pending <> None -> run_pending t f
    | _ -> ());
    service t sh
  | None ->
    Sched.park (fun waker -> Queue.push waker sh.sh_vq_idle);
    service t sh

(* Each shard gets its own verifier fibers, pinned to CPUs of the
   matching NUMA node so their device reads charge that socket's
   bandwidth domain. *)
let start t =
  Array.iter
    (fun (sh : shard) ->
      for i = 0 to verifier_fiber_count - 1 do
        let cpu = Numa.cpu_of_node_local t.topo ~node:sh.sh_id ~local:i in
        Sched.spawn ~cpu t.sched (fun () -> service t sh)
      done)
    t.shards

(* ------------------------------------------------------------------ *)
(* Verifier gate for files whose last writer died or wedged (§4.4 of the
   paper: crash consistency of the handoff).  The watchdog only marks
   such files unverified — it cannot run the dead process' fix callback,
   and charging verification to the next accessor keeps the failure
   plane pay-as-you-go.  Repair policy: accept the dead writer's state
   if it verifies as-is; otherwise roll back to the last verified
   checkpoint and re-check; if that fails too (or there is no DRAM
   checkpoint at all), descend one more rung and restore the file from
   the durable snapshot root; only when even the snapshot state cannot
   be certified does the file degrade to Failed and the mapping get
   refused with EIO.  Rung order matters: the DRAM checkpoint is newer
   than the snapshot, so it is always tried first. *)
let ensure_verified t ~(f : file_info) =
  match f.f_unverified with
  | None -> Ok ()
  | Some dead ->
    drop_unverified t f;
    let check () =
      Stats.timed t.stats t.sched "verify" (fun () ->
          check_file_now t ~proc:dead ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr)
    in
    (* Deepest rung: the durable snapshot root.  Restoration itself can
       fail (file absent from the root, payload poisoned — never written
       back blindly), and a restored state must still earn its verdict. *)
    let try_snapshot () =
      match Ctl_snapshot.restore_file t f ~offender:dead with
      | Error _ -> false
      | Ok () ->
        let r = check () in
        if r.Verifier.ok then ingest_verified t ~proc:dead ~f r;
        r.Verifier.ok
    in
    let report = check () in
    let outcome =
      if report.Verifier.ok then begin
        ingest_verified t ~proc:dead ~f report;
        Ok ()
      end
      else begin
        t.corruption_events <- (dead, f.f_ino, report.Verifier.violations) :: t.corruption_events;
        match f.f_checkpoint with
        | None ->
          if try_snapshot () then Ok ()
          else begin
            f.f_degraded <- Failed;
            Error EIO
          end
        | Some _ ->
          Ctl_checkpoint.rollback_to_checkpoint t f ~offender:dead;
          let retry = check () in
          if retry.Verifier.ok then begin
            ingest_verified t ~proc:dead ~f retry;
            Ok ()
          end
          else if try_snapshot () then Ok ()
          else begin
            f.f_degraded <- Failed;
            Error EIO
          end
      end
    in
    (* Ingestion/rollback may have returned stray pages to the dead
       process' pool; release its inode numbers now and leave the pages
       for the orphan GC to sweep. *)
    ignore (Ctl_registry.reap_dead t dead);
    reclaim_deferred t;
    outcome

(* Force the verifier gate for every file still pending (fsck/admin
   path).  Afterwards the GC owes nothing to the gate and may reclaim
   every stray page of the dead processes.  Returns how many files were
   drained. *)
let drain_unverified t =
  drain_verification t;
  let pending =
    fold_files t (fun _ f acc -> if f.f_unverified <> None then f :: acc else acc) []
  in
  List.iter (fun f -> ignore (ensure_verified t ~f)) pending;
  List.length pending

(* ------------------------------------------------------------------ *)
(* Map / unmap *)

let revoke_mapping t ~proc ~(f : file_info) ~was_writer =
  let pages = file_pages f in
  let perm = if was_writer then Mmu.P_readwrite else Mmu.P_read in
  Stats.timed t.stats t.sched "unmap" (fun () -> Mmu.revoke t.mmu ~actor:proc ~pages ~perm);
  Hashtbl.remove (proc_info t proc).p_mapped f.f_ino;
  if was_writer then begin
    f.f_writer <- None;
    (* The pipelining win: the write handoff only queues verification;
       a background fiber picks it up while the LibFS moves on. *)
    enqueue_verify t ~proc ~f
  end
  else Hashtbl.remove f.f_readers proc;
  wake_all f

(* The op body, shared by the synchronous syscall below and the ring
   drain plane (which pays the kernel-crossing cost once per batch). *)
let unmap_file_body t ~proc ~ino =
  match file_find t ino with
  | None -> Error ENOENT
  | Some f ->
    if f.f_writer = Some proc then begin
      revoke_mapping t ~proc ~f ~was_writer:true;
      Ok ()
    end
    else if Hashtbl.mem f.f_readers proc then begin
      revoke_mapping t ~proc ~f ~was_writer:false;
      Ok ()
    end
    else Error EBADF

let unmap_file t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  (* Release path: charged but never delayed — stalling a throttled
     tenant's unmap would block honest waiters on the lease it holds. *)
  qos_charge t proc Ctl_qos.Syscall;
  unmap_file_body t ~proc ~ino

(* Force-unmap the current holder(s) after lease expiry; charged to the
   fiber that requests the conflicting access — including the
   verification of the revoked writer's state, which is settled inline
   rather than left to the background fibers (the waiter needs the
   verdict before it can be granted anything). *)
let force_unmap_holders t ~(f : file_info) ~for_writer =
  (match f.f_writer with
  | Some holder -> revoke_mapping t ~proc:holder ~f ~was_writer:true
  | None -> ());
  settle t f;
  if for_writer then
    Hashtbl.iter
      (fun r () -> revoke_mapping t ~proc:r ~f ~was_writer:false)
      (Hashtbl.copy f.f_readers)

let conflicts t ~proc ~(f : file_info) ~write =
  let my_group = group_of t proc in
  let writer_conflict =
    match f.f_writer with None -> false | Some w -> w <> proc && group_of t w <> my_group
  in
  if write then
    writer_conflict
    || Hashtbl.fold
         (fun r () acc -> acc || (r <> proc && group_of t r <> my_group))
         f.f_readers false
  else writer_conflict

let rec wait_for_access t ~proc ~(f : file_info) ~write =
  if conflicts t ~proc ~f ~write then begin
    (* Readers are revoked immediately for a writer: a read mapping
       needs no verification on teardown, and the reader transparently
       re-maps on its next access.  Leases only protect writers, whose
       handoff requires verification. *)
    let my_group = group_of t proc in
    let writer_conflict =
      match f.f_writer with None -> false | Some w -> w <> proc && group_of t w <> my_group
    in
    if write && not writer_conflict then force_unmap_holders t ~f ~for_writer:true
    else begin
      let expire = f.f_lease_expire in
      let now = Sched.now t.sched in
      if now >= expire then force_unmap_holders t ~f ~for_writer:write
      else begin
        (* Sleep until the lease expires or the holder unmaps. *)
        Sched.park (fun waker ->
            Queue.push waker f.f_waiters;
            Sched.schedule t.sched expire waker);
        if conflicts t ~proc ~f ~write && Sched.now t.sched >= f.f_lease_expire then
          force_unmap_holders t ~f ~for_writer:write
      end
    end;
    wait_for_access t ~proc ~f ~write
  end

(* Acquire: wait out conflicting holders, then settle any verification
   their unmap queued (charged to us — we demanded the file).  Settling
   parks, so a rival may slip in; re-check until both conditions hold
   at once. *)
let rec acquire t ~proc ~(f : file_info) ~write =
  wait_for_access t ~proc ~f ~write;
  settle t f;
  if conflicts t ~proc ~f ~write then acquire t ~proc ~f ~write

(* Cheap health checks that precede even the permission check — a
   quarantined or media-degraded file reports its own condition no
   matter who asks. *)
let media_checks ~proc ~(f : file_info) ~write =
  match f.f_quarantined_for with
  | Some p when p <> proc -> Error EIO
  | _ -> (
    (* Media-degraded files: Failed rejects everything, Degraded_ro
       rejects write mappings (graceful degradation, not a panic). *)
    match f.f_degraded with
    | Failed -> Error EIO
    | Degraded_ro when write -> Error EROFS
    | _ -> Ok ())

(* Health + shadow-permission gate for a mapping request.  Runs twice in
   [map_file]: once on pre-settle state so a request that is going to be
   refused triggers no verification or checkpoint work at all, and again
   after settling, because a settled verification may have changed what
   these checks observe (quarantine set or cleared by rollback, shadow
   inode of a refused fresh child removed, I4 repairs applied). *)
let gate_checks t ~proc ~(f : file_info) ~write =
  match media_checks ~proc ~f ~write with
  | Error e -> Error e
  | Ok () -> (
    let cred = cred_of_proc t proc in
    match shadow_find t f.f_ino with
    | None -> Error ENOENT
    | Some s ->
      if
        Fs_types.permits ~cred ~uid:s.Verifier.s_uid ~gid:s.Verifier.s_gid
          ~mode:s.Verifier.s_mode ~want_read:true ~want_write:write
      then Ok ()
      else Error EACCES)

(* Is [f] still the live record for its ino?  Settling — and any park
   inside [acquire] — can run the parent directory's pending
   verification, whose deleted-children handling removes the file from
   [t.files] and frees its pages back to the allocator.  Continuing with
   the stale record would grant access to freed (possibly reused) pages,
   so every settle/park on the map path is followed by this re-check. *)
let still_current t (f : file_info) =
  match file_find t f.f_ino with Some f' -> f' == f | None -> false

(* Could a verification still in the pipeline make [ino] appear in
   [t.files]?  Only a fresh, not-yet-ingested file qualifies, and such
   an ino is still [Ino_allocated_to] its creator — ingestion is what
   moves it to [Ino_in_dir].  Any other owner state means the miss is a
   genuine ENOENT, and a stream of probes on bad inos must not turn the
   lookup path into a global pipeline quiesce point.  Every shard's
   queue must be consulted: a fresh file is ingested by its *parent
   directory's* verification, and the parent may hash anywhere. *)
let may_be_in_pipeline t ino =
  Array.exists (fun (sh : shard) -> not (Queue.is_empty sh.sh_verify_q)) t.shards
  && match ino_owner_of t ino with Ino_allocated_to _ -> true | Ino_free | Ino_in_dir _ -> false

(* Look a file up, giving the background pipeline a chance to ingest it
   first: a freshly created file only becomes known to the kernel when
   its parent directory's verification lands. *)
let find_file t ino =
  match file_find t ino with
  | Some f -> Some f
  | None ->
    if not (may_be_in_pipeline t ino) then None
    else begin
      drain_verification t;
      file_find t ino
    end

let map_file_body t ~proc ~ino ~write =
  match find_file t ino with
  | None -> Error ENOENT
  | Some f -> (
    (* Permission/health checks against pre-settle state run before any
       verification or checkpoint work: a mapping that is going to fail
       with EACCES must trigger neither. *)
    match gate_checks t ~proc ~f ~write with
    | Error e -> Error e
    | Ok ()
      when (write && f.f_writer = Some proc)
           || ((not write) && (f.f_writer = Some proc || Hashtbl.mem f.f_readers proc)) ->
      (* Idempotent re-map: the process already holds a sufficient
         mapping, so there is nothing to hand off, verify, walk or
         grant — renew the lease and return.  The synchronous path
         rarely hits this (a LibFS tracks its mappings and does not
         re-map); it is load-bearing for the ring drain plane, where a
         fused unmap+remap leaves the original mapping standing and
         every later re-map is exactly this renewal. *)
      f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
      Ok ()
    | Ok () ->
      (* Block only while this file — or an ancestor directory whose
         verification may re-ingest it — is still in the pipeline. *)
      settle_chain t f;
      (* The settled verifications may have deleted the file outright
         (stale record — the old synchronous controller said ENOENT
         here) or changed what the gate checks observe; redo both
         against the settled state before trusting the record. *)
      if not (still_current t f) then Error ENOENT
      else (
        match gate_checks t ~proc ~f ~write with
        | Error e -> Error e
        | Ok () -> (
          match ensure_verified t ~f with
          | Error e -> Error e
          | Ok () ->
          acquire t ~proc ~f ~write;
          (* Acquire parks, and fibers that ran meanwhile may have
             verified this file's parent away — re-check liveness. *)
          if not (still_current t f) then Error ENOENT
          else begin
          (* Claim the mapping before the (slow) walk/checkpoint/grant so
             no other fiber slips in during those delays. *)
          if write then begin
            f.f_writer <- Some proc;
            (* read-to-write upgrade: the earlier read grants must go,
               or revoking the write mapping later would leave access *)
            if Hashtbl.mem f.f_readers proc then begin
              Hashtbl.remove f.f_readers proc;
              Mmu.revoke_free t.mmu ~actor:proc ~pages:(file_pages f) ~perm:Mmu.P_read
            end
          end
          else Hashtbl.replace f.f_readers proc ();
          f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
          (* Walk the file to find the page set. *)
          (match walk_file t ~ino ~dentry_addr:f.f_dentry_addr with
          | Some (_, index_pages, data_pages, dindex_pages) ->
            f.f_index_pages <- index_pages;
            f.f_data_pages <- data_pages;
            f.f_dindex_pages <- dindex_pages
          | None -> ());
          if write then Ctl_checkpoint.take_checkpoint t f;
          let pages = file_pages f in
          Stats.timed t.stats t.sched "map" (fun () ->
              Mmu.grant t.mmu ~actor:proc ~pages
                ~perm:(if write then Mmu.P_readwrite else Mmu.P_read));
          f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
          Hashtbl.replace (proc_info t proc).p_mapped ino ();
          Ok ()
          end)))

let map_file t ~proc ~ino ~write =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  charge_syscall t proc;
  map_file_body t ~proc ~ino ~write

(* Commit: re-verify now and, on success, replace the checkpoint so a
   later rollback cannot lose the committed changes (§4.3).  Stays
   synchronous — the caller asked for the verdict. *)
let commit t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  charge_syscall t proc;
  match file_find t ino with
  | None -> Error ENOENT
  | Some f ->
    if f.f_writer <> Some proc then Error EBADF
    else begin
      let report =
        Stats.timed t.stats t.sched "verify" (fun () ->
            check_file_now t ~proc ~ino ~dentry_addr:f.f_dentry_addr)
      in
      if report.Verifier.ok then begin
        ingest_verified t ~proc ~f report;
        Ctl_checkpoint.take_checkpoint t f;
        reclaim_deferred t;
        Ok ()
      end
      else Error EIO
    end

(* Release everything a process has mapped (process teardown). *)
let unmap_all t ~proc =
  let p = proc_info t proc in
  let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) p.p_mapped [] in
  List.iter (fun ino -> ignore (unmap_file t ~proc ~ino)) inos

(* ------------------------------------------------------------------ *)
(* Namespace / permission operations *)

(* Permission changes go through the kernel: the shadow inode is the
   ground truth (I4). *)
let chmod t ~proc ~ino ~mode =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  charge_syscall t proc;
  match (shadow_find t ino, file_find t ino) with
  | Some s, Some f ->
    let cred = cred_of_proc t proc in
    if cred.uid <> 0 && cred.uid <> s.Verifier.s_uid then Error EACCES
    else begin
      let s' = { s with Verifier.s_mode = mode land 0o7777 } in
      set_shadow t ino s';
      Layout.write_perms t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
        ~mode:s'.Verifier.s_mode ~uid:s'.Verifier.s_uid ~gid:s'.Verifier.s_gid;
      Ok ()
    end
  | _ -> Error ENOENT

let chown t ~proc ~ino ~uid ~gid =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  charge_syscall t proc;
  match (shadow_find t ino, file_find t ino) with
  | Some s, Some f ->
    let cred = cred_of_proc t proc in
    if cred.uid <> 0 then Error EACCES
    else begin
      let s' = { s with Verifier.s_uid = uid; s_gid = gid } in
      set_shadow t ino s';
      Layout.write_perms t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
        ~mode:s'.Verifier.s_mode ~uid ~gid;
      Ok ()
    end
  | _ -> Error ENOENT

(* Files currently write-mapped by [proc]; a LibFS recovery program uses
   this to know what it must repair after a crash. *)
let write_mapped_inos t ~proc =
  fold_files t
    (fun ino (f : file_info) acc ->
      if f.f_writer = Some proc then (ino, f.f_dentry_addr, f.f_ftype) :: acc else acc)
    []

let dentry_addr_of t ino =
  match file_find t ino with
  | Some f -> Some f.f_dentry_addr
  | None ->
    (* A file created moments ago may still be riding the pipeline
       inside its parent's queued verification. *)
    if not (may_be_in_pipeline t ino) then None
    else begin
      drain_verification t;
      Option.map (fun (f : file_info) -> f.f_dentry_addr) (file_find t ino)
    end

(* After a crash: any verification still in the pipeline runs against
   the post-crash state first, then every LibFS-registered recovery
   program runs (undo journals etc.), then every file that was
   write-mapped at crash time is verified (§4.4). *)
let crash_recover t =
  drain_verification t;
  Hashtbl.iter
    (fun _ p -> match p.p_recovery with Some recovery -> recovery () | None -> ())
    t.procs;
  iter_files_snapshot t (fun _ (f : file_info) ->
      match f.f_writer with
      | Some proc ->
        ignore (verify_file t ~proc ~f);
        let pages = file_pages f in
        Mmu.revoke_free t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
        Hashtbl.remove (proc_info t proc).p_mapped f.f_ino;
        f.f_writer <- None;
        wake_all f
      | None -> ());
  reclaim_deferred t

(* ------------------------------------------------------------------ *)
(* The ring drain plane (DESIGN.md §4.15).

   Each registered ring gets one drain fiber, pinned to a CPU of the
   shard ([proc mod shards]) that services it — but the fibers of a
   shard pull from a *shared* work queue of rings-with-pending-entries,
   so any fiber can drain any of its shard's rings and a ring whose
   fiber is stuck behind a lease wait does not stall its neighbors.
   FIFO per ring is preserved by the [busy] guard: only one fiber runs
   a given ring's batch at a time, so a producer's unmap-then-remap of
   the same directory executes in program order.

   The batch is the unit of cost: one kernel crossing and one heartbeat
   cover up to [ring_batch_limit] operations, which is the protocol's
   entire point. *)

let ring_batch_limit = 64

(* Log-bucket index for the drained-batch histogram:
   1, 2, <=4, <=8, <=16, <=32, <=64, >64. *)
let hist_bucket n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 4 then 2
  else if n <= 8 then 3
  else if n <= 16 then 4
  else if n <= 32 then 5
  else if n <= 64 then 6
  else 7

let run_ring_op t ~proc = function
  | Ctl_ring.Op_map { ino; write } -> map_file_body t ~proc ~ino ~write
  | Ctl_ring.Op_unmap { ino } -> unmap_file_body t ~proc ~ino
  | Ctl_ring.Op_lease -> Ok () (* the batch's touch below is the point *)

(* Batch fusion: an unmap chased by a re-map of the same file by the
   same process, both visible in one batch, annihilate — the mapping
   was never torn down, so there is no handoff, hence no revoke, no
   verification, no walk, no re-grant.  Sound because the pair
   executes atomically with respect to the file: nobody observed the
   unmapped state, so the result is indistinguishable from the process
   simply not unmapping (which it is always free to do).  A read
   re-map fuses against a standing write mapping — the writer keeps
   its (strictly stronger) grant and the controller's bookkeeping is
   unchanged.  Fuse only while the holder is unchallenged and the
   re-map could not have failed — a parked waiter, a pending
   verification, degraded media or a failed permission gate all force
   the real unmap/map pair, i.e. a genuine handoff with its full
   verification.  This is the batched plane's structural advantage:
   the synchronous path must execute an unmap before it can know that
   a re-map follows. *)
let try_fuse_remap t ~proc ~ino ~write =
  match file_find t ino with
  | Some f
    when Queue.is_empty f.f_waiters
         && f.f_unverified = None
         && f.f_degraded = Healthy
         && f.f_quarantined_for = None
         && (match f.f_writer with
            | Some w -> w = proc (* a write grant satisfies either mode *)
            | None -> (not write) && Hashtbl.mem f.f_readers proc)
         && gate_checks t ~proc ~f ~write = Ok () ->
    f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
    true
  | _ -> false

(* Pair up fusable entries: for each [Op_unmap ino], the next entry
   touching [ino] — if it is an [Op_map], defer the unmap to the map's
   position and let [try_fuse_remap] decide there.  Same-ino program
   order is preserved; a deferred fire-and-forget unmap may slip past
   later entries for *other* inos, which io_uring-style unlinked
   entries do not promise anyway. *)
let plan_fusion batch =
  let arr = Array.of_list batch in
  let n = Array.length arr in
  let partner = Array.make n (-1) in
  let deferred = Array.make n false in
  for i = 0 to n - 1 do
    match arr.(i) with
    | _, Ctl_ring.Op_unmap { ino } when not deferred.(i) ->
      let rec scan j =
        if j < n then
          match arr.(j) with
          | _, Ctl_ring.Op_map { ino = ino'; _ } when ino' = ino ->
            if partner.(j) = -1 then begin
              partner.(j) <- i;
              deferred.(i) <- true
            end
          | _, Ctl_ring.Op_unmap { ino = ino' } when ino' = ino -> ()
          | _ -> scan (j + 1)
      in
      scan (i + 1)
    | _ -> ()
  done;
  (arr, partner, deferred)

let drain_one_ring t (sh : shard) ring =
  let proc = Ctl_ring.proc ring in
  match Ctl_ring.take_batch ring ~max:ring_batch_limit with
  | [] -> ()
  | batch ->
    let n = List.length batch in
    sh.sh_ring_batches <- sh.sh_ring_batches + 1;
    sh.sh_ring_ops <- sh.sh_ring_ops + n;
    sh.sh_ring_hist.(hist_bucket n) <- sh.sh_ring_hist.(hist_bucket n) + 1;
    (match t.ring_hook with
    | Some hook -> hook ~shard:sh.sh_id ~batch:n ~depth:(Ctl_ring.depth ring)
    | None -> ());
    let arr, partner, deferred = plan_fusion batch in
    Sched.shield (fun () ->
        Sched.cpu_work Perf.Cpu.syscall;
        touch t proc;
        (* Ring slots are charged at batch granularity when drained —
           never delayed here: a drain fiber serves every tenant on this
           shard, so it must not stall on one tenant's debt.  The debt
           instead gates the debtor's next submit at the ring mouth. *)
        qos_charge t proc ~n Ctl_qos.Ring_slot;
        Array.iteri
          (fun idx (seq, op) ->
            (* Re-check liveness per op: the watchdog may tear the
               producer down while an earlier op of this very batch is
               settling a verification. *)
            let dead () = Ctl_ring.is_closed ring || (proc_info t proc).p_dead in
            if deferred.(idx) then () (* settled at its partner map *)
            else if partner.(idx) >= 0 then begin
              let useq, uop = arr.(partner.(idx)) in
              if dead () then begin
                Ctl_ring.post ring ~seq:useq (Error EIO);
                Ctl_ring.post ring ~seq (Error EIO)
              end
              else if
                match op with
                | Ctl_ring.Op_map { ino; write } -> try_fuse_remap t ~proc ~ino ~write
                | _ -> false
              then begin
                sh.sh_ring_fused <- sh.sh_ring_fused + 1;
                Ctl_ring.post ring ~seq:useq (Ok ());
                Ctl_ring.post ring ~seq (Ok ())
              end
              else begin
                (* Real handoff: run the deferred unmap, then the map. *)
                Ctl_ring.post ring ~seq:useq (run_ring_op t ~proc uop);
                let result = if dead () then Error EIO else run_ring_op t ~proc op in
                Ctl_ring.post ring ~seq result
              end
            end
            else begin
              let result = if dead () then Error EIO else run_ring_op t ~proc op in
              Ctl_ring.post ring ~seq result
            end)
          arr)

(* Weighted round-robin across tenants: with QoS active, serve the
   queued proc whose trust group has the highest token balance (the most
   under-served tenant) instead of strict FIFO, so one tenant's 64-op
   batches cannot starve others out of the drain plane.  Safe to
   reorder: each proc appears at most once in the queue (is_queued
   dedup) and its own ring still drains in submission order.  Without
   any enforced tenant this is exact FIFO, preserving the ring plane's
   existing behavior. *)
let pick_ring_proc t (sh : shard) =
  if (not (Ctl_qos.enforced (qos t))) || Queue.length sh.sh_ring_q < 2 then
    Queue.take_opt sh.sh_ring_q
  else begin
    let now = Sched.now t.sched in
    let procs = List.of_seq (Queue.to_seq sh.sh_ring_q) in
    let balance p =
      match Hashtbl.find_opt t.procs p with
      | Some pi -> Ctl_qos.balance (qos t) ~group:pi.p_group ~now
      | None -> neg_infinity
    in
    let best =
      List.fold_left
        (fun acc p ->
          match acc with
          | Some (_, b) when b >= balance p -> acc
          | _ -> Some (p, balance p))
        None procs
    in
    match best with
    | None -> None
    | Some (p, _) ->
      Queue.clear sh.sh_ring_q;
      List.iter (fun q -> if q <> p then Queue.push q sh.sh_ring_q) procs;
      Some p
  end

let rec ring_service t (sh : shard) =
  if t.ring_paused then begin
    Sched.park (fun waker -> Queue.push waker sh.sh_rq_idle);
    ring_service t sh
  end
  else
    match pick_ring_proc t sh with
    | Some proc ->
      (match ring_find t proc with
      | Some ring when not (Ctl_ring.is_busy ring) ->
        Ctl_ring.set_queued ring false;
        Ctl_ring.set_busy ring true;
        drain_one_ring t sh ring;
        Ctl_ring.set_busy ring false;
        (* Entries that arrived mid-batch saw [queued = false] only if
           their doorbell fired before we cleared it — re-check. *)
        if Ctl_ring.depth ring > 0 && not (Ctl_ring.is_queued ring) then begin
          Ctl_ring.set_queued ring true;
          Queue.push proc sh.sh_ring_q
        end
      | Some ring ->
        (* Another fiber is mid-batch on this ring; it re-checks depth
           when it finishes, so dropping the queue entry loses nothing. *)
        Ctl_ring.set_queued ring false
      | None -> ());
      ring_service t sh
    | None ->
      Sched.park (fun waker -> Queue.push waker sh.sh_rq_idle);
      ring_service t sh

let ring_setup t ~proc ~depth =
  if Hashtbl.mem t.rings proc then invalid_arg "Controller.ring_setup: ring exists";
  let sh = ring_shard t proc in
  let ring = Ctl_ring.create ~proc ~capacity:depth in
  Ctl_ring.set_notify ring (fun () ->
      if not (Ctl_ring.is_queued ring) then begin
        Ctl_ring.set_queued ring true;
        Queue.push proc sh.sh_ring_q;
        sh.sh_ring_wakes <- sh.sh_ring_wakes + 1;
        match Queue.take_opt sh.sh_rq_idle with Some wake -> wake () | None -> ()
      end);
  Ctl_ring.set_clock ring (fun () -> Sched.now t.sched);
  Ctl_ring.set_qos ring
    ~gate:(fun () -> qos_admission t proc)
    ~sleep_until:(fun deadline ->
      Sched.park (fun waker -> Sched.schedule t.sched deadline waker))
    ~note:(fun ns ->
      match Hashtbl.find_opt t.procs proc with
      | Some pi ->
        Ctl_qos.note_throttled (qos t) ~group:pi.p_group ~now:(Sched.now t.sched) ~ns
      | None -> ());
  Hashtbl.replace t.rings proc ring;
  let local = sh.sh_ring_fibers in
  sh.sh_ring_fibers <- local + 1;
  let cpu = Trio_nvm.Numa.cpu_of_node_local t.topo ~node:sh.sh_id ~local in
  Sched.spawn ~cpu t.sched (fun () -> ring_service t sh);
  ring

let ring_of t proc = ring_find t proc

(* Test hook: a paused drain plane parks instead of consuming — the
   staging ground for the dead-consumer/full-ring failure scenario. *)
let set_ring_paused t b =
  t.ring_paused <- b;
  if not b then
    Array.iter
      (fun (sh : shard) ->
        while not (Queue.is_empty sh.sh_rq_idle) do
          (Queue.pop sh.sh_rq_idle) ()
        done)
      t.shards
