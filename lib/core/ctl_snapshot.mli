(** Whole-FS copy-on-write snapshots: transactional root publication
    over the per-file checkpoints, verifier-gated rollback, and
    mount-the-newest-intact-root crash recovery (DESIGN.md §4.16).
    Internal to [lib/core] — external code goes through {!Controller}. *)

type entry = {
  e_ino : int;
  e_dentry_addr : int;
  e_parent : int;
  e_blob : Bytes.t;  (** serialized checkpoint, self-CRC'd *)
}

val entry_checkpoint : entry -> (Ctl_state.checkpoint, string) result

val publish : Ctl_state.t -> (int, Fs_types.errno) result
(** Commit a new snapshot root covering every file with a verified
    checkpoint (taking one on the spot for idle checkpoint-less files).
    Returns the new epoch.  Unshielded by design — crash exploration
    kills it at every Delay boundary.  The caller is responsible for
    draining the verification pipeline first if it wants the snapshot
    to cover in-flight work. *)

val entries : Ctl_state.t -> (int * entry list, string) result
(** [(epoch, entries)] of the current durable root. *)

val entry_for : Ctl_state.t -> int -> (entry * Ctl_state.checkpoint, string) result

val snapshot_page_bytes : Ctl_state.t -> ino:int -> page:int -> Bytes.t option
(** Last-verified bytes of [page] from the durable root, if the root
    holds that file and page.  All reads ECC/CRC-gated. *)

val restore_file :
  Ctl_state.t -> Ctl_state.file_info -> offender:int -> (unit, string) result
(** Roll one file back to its state in the durable root.  A poisoned or
    torn snapshot source is detected (ECC read + stream/blob CRCs) and
    reported as [Error] — never blindly written over the device. *)

val root_status : Trio_nvm.Pmem.t -> slot:int -> int option
(** [Some epoch] iff the slot holds a fully valid root: slot CRC,
    payload chain readable through ECC, stream CRC, header consistent. *)

val valid_roots :
  Trio_nvm.Pmem.t -> (int * Layout.snap_root * Bytes.t * int list) list
(** All fully valid roots as [(slot, root, stream, chain pages)],
    newest epoch first. *)

val mount_root :
  sched:Trio_sim.Sched.t ->
  pmem:Trio_nvm.Pmem.t ->
  mmu:Mmu.t ->
  ?lease_ns:float ->
  unit ->
  (Ctl_state.t * int, string) result
(** Crash recovery, fast path: validate both slots and rebuild full
    controller state from the newest intact root (rolling the device
    back to that snapshot).  [Error] demotes the caller to the fsck
    walk ({!Ctl_state.cold_start}). *)

val adopt_root : Ctl_state.t -> unit
(** After an fsck-walk mount, re-pin the newest valid root's payload
    chain into [snap_pinned] so rollback sources survive reallocation. *)

val set_torn_commit : bool -> unit
(** Sabotage hook for the snapcheck self-test: publish the root record
    before the payload, into the live slot.  Crash exploration must
    catch the zero-valid-root window this opens. *)
