(** Shared state of the kernel access controller: record types,
    construction, the verifier view, cold start.  The hot tables are
    sharded per NUMA socket (see {!Ctl_shard} and DESIGN.md §4.14);
    submodules access them only through the routing accessors below.
    Internal to [lib/core] — external code goes through the
    {!Controller} facade. *)

module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Extent_alloc = Trio_util.Extent_alloc

type page_owner = Verifier.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Verifier.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = {
  ck_dentry : Bytes.t;
  ck_pages : (int * Bytes.t) list;
  ck_children : int list;
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;  (** MMU write-set mark at snapshot time *)
}

type degradation = Healthy | Degraded_ro | Failed

type file_info = {
  f_ino : int;
  mutable f_dentry_addr : int;
  mutable f_parent : int;
  mutable f_ftype : Fs_types.ftype;
  mutable f_index_pages : int list;
  mutable f_data_pages : int list;
  mutable f_dindex_pages : int list;  (** dir only: B-link index nodes (§4.18) *)
  mutable f_readers : (int, unit) Hashtbl.t;
  mutable f_writer : int option;
  mutable f_lease_expire : float;
  mutable f_checkpoint : checkpoint option;
  mutable f_waiters : Sched.waker Queue.t;
  mutable f_quarantined_for : int option;
  mutable f_degraded : degradation;
  mutable f_unverified : int option;
  mutable f_pending : int option;
  mutable f_verifying : bool;
}

type proc_info = {
  p_id : int;
  p_cred : Fs_types.cred;
  p_group : int;
  mutable p_fix : (int -> bool) option;
  mutable p_recovery : (unit -> unit) option;
  mutable p_pages : (int, unit) Hashtbl.t;
  mutable p_inos : (int, unit) Hashtbl.t;
  mutable p_mapped : (int, unit) Hashtbl.t;
  mutable p_last_heartbeat : float;
  mutable p_dead : bool;
}

type shard = {
  sh_id : int;
  sh_page_owner : (int, page_owner) Hashtbl.t;
  sh_ino_owner : (int, ino_owner) Hashtbl.t;
  sh_shadow : (int, Verifier.shadow) Hashtbl.t;
  sh_files : (int, file_info) Hashtbl.t;
  sh_verify_q : int Queue.t;
  sh_vq_idle : Sched.waker Queue.t;
  mutable sh_enqueued : int;
  sh_ring_q : int Queue.t;  (** procs whose ring has pending entries *)
  sh_rq_idle : Sched.waker Queue.t;  (** parked ring-drain fibers *)
  mutable sh_ring_fibers : int;
  mutable sh_ring_batches : int;
  mutable sh_ring_ops : int;
  mutable sh_ring_fused : int;  (** unmap+remap pairs annihilated in-batch *)
  sh_ring_hist : int array;  (** drained-batch sizes, 8 log buckets *)
  mutable sh_ring_wakes : int;
}

type page_pool = {
  pp_node : int;
  mutable pp_pages : int list;
  mutable pp_len : int;
  mutable pp_refills : int;
  mutable pp_drains : int;
  mutable pp_jitter : int;
      (** LCG state desynchronizing refill backoff across sockets *)
}

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  topo : Numa.t;
  lease_ns : float;
  node_allocs : Extent_alloc.t array;
  pools : page_pool array;
  shards : shard array;
  locks : Ctl_shard.plane;
  pages_per_node : int;
  mutable pool_refill_batch : int;
  mutable pool_high_water : int;
  mutable next_ino : int;
  mutable pending_verifications : int;
  mutable unverified_files : int;
  mutable deferred_deletes : (int * int * int) list;
      (** (proc, parent ino, child ino) awaiting pipeline-idle reclaim *)
  procs : (int, proc_info) Hashtbl.t;
  stats : Stats.t;
  mutable corruption_events : (int * int * Verifier.violation list) list;
  mutable quarantine : (int * int) list;
  mutable badblocks : int list;
  mutable verify_hook : (ino:int -> incremental:bool -> dur:float -> ok:bool -> unit) option;
  rings : (int, Ctl_ring.t) Hashtbl.t;
  mutable ring_paused : bool;
      (** test hook: a paused drain plane parks instead of consuming *)
  mutable ring_hook : (shard:int -> batch:int -> depth:int -> unit) option;
  snap_pinned : (int, unit) Hashtbl.t;
      (** payload pages of the current durable snapshot root, pinned
          against reuse (DESIGN.md §4.16) *)
  mutable snap_epoch : int;
  mutable snap_slot : int;
  mutable snap_pages : int list;
  snap_restored : (int, unit) Hashtbl.t;
      (** inos rolled back to the durable root since mount *)
  qos : Ctl_qos.t;
      (** per-trust-group token buckets (DESIGN.md §4.17) *)
}

type vmode = Full | Incremental

val verify_mode : vmode ref
val set_verify_mode : vmode -> unit
val current_verify_mode : unit -> vmode
val page_size : int

(** {2 Shard routing} *)

val shard_count : t -> int
val shard_of_ino : t -> int -> int
val ino_shard : t -> int -> shard
val node_of_page : t -> int -> int
val page_shard : t -> int -> shard
val with_ino_shard : t -> int -> (unit -> 'a) -> 'a

val ring_shard : t -> int -> shard
(** The shard whose drain plane services this process' ring. *)

val ring_find : t -> int -> Ctl_ring.t option
val with_ino_pair : t -> int -> int -> (unit -> 'a) -> 'a
val with_shards_of_inos : t -> int list -> (unit -> 'a) -> 'a

val owner_of : t -> int -> page_owner
val set_page_owner : t -> int -> page_owner -> unit
val clear_page_owner : t -> int -> unit
val ino_owner_of : t -> int -> ino_owner
val set_ino_owner : t -> int -> ino_owner -> unit
val clear_ino_owner : t -> int -> unit
val fold_ino_owner : t -> (int -> ino_owner -> 'a -> 'a) -> 'a -> 'a
val file_find : t -> int -> file_info option
val set_file : t -> int -> file_info -> unit
val remove_file : t -> int -> unit
val iter_files : t -> (int -> file_info -> unit) -> unit
val fold_files : t -> (int -> file_info -> 'a -> 'a) -> 'a -> 'a
val iter_files_snapshot : t -> (int -> file_info -> unit) -> unit
val file_table_size : t -> int
val shadow_find : t -> int -> Verifier.shadow option
val shadow_mem : t -> int -> bool
val set_shadow : t -> int -> Verifier.shadow -> unit
val remove_shadow : t -> int -> unit

(** {2 Per-node page pools} *)

val pool_refill : t -> node:int -> want:int -> int
val pool_take : t -> node:int -> count:int -> int list option
val pool_put : t -> int -> unit
val pooled_pages : t -> int
val set_pool_limits : t -> refill_batch:int -> high_water:int -> unit

(** {2 Snapshot-plane bookkeeping (see {!Ctl_snapshot})} *)

val snap_pinned_mem : t -> int -> bool
val snap_pinned_count : t -> int
val snapshot_epoch : t -> int
val mark_snapshot_restored : t -> int -> unit
val was_snapshot_restored : t -> int -> bool

(** {2 Construction and shared helpers} *)

val new_file :
  ino:int ->
  dentry_addr:int ->
  parent:int ->
  ftype:Fs_types.ftype ->
  ?index_pages:int list ->
  ?data_pages:int list ->
  ?dindex_pages:int list ->
  unit ->
  file_info

val make : sched:Sched.t -> pmem:Pmem.t -> mmu:Mmu.t -> lease_ns:float -> t
(** Bare state with no on-NVM side effects — the shared base of
    [create], [cold_start] and {!Ctl_snapshot.mount_root}. *)

val create : sched:Sched.t -> pmem:Pmem.t -> mmu:Mmu.t -> ?lease_ns:float -> unit -> t
val proc_info : t -> int -> proc_info
val touch : t -> int -> unit
val group_of : t -> int -> int
val cred_of_proc : t -> int -> Fs_types.cred

(** {2 QoS plane (DESIGN.md §4.17)} *)

val qos : t -> Ctl_qos.t

val qos_max_penalty_ns : float
(** Cap on any single throttle delay/park, so deep deficits are paid in
    instalments instead of wedging a fiber. *)

val qos_charge : t -> int -> ?n:int -> Ctl_qos.kind -> unit
(** Charge [proc]'s trust group; no-op for unregistered processes. *)

val qos_admission : t -> int -> float option
(** [Some deadline] while [proc]'s group is overdrawn (deadline capped
    [qos_max_penalty_ns] ahead of now). *)

val qos_admit : t -> int -> unit
(** Synchronous-plane enforcement: delay until the balance recovers.
    Acquisition paths only — never called on release paths. *)

val charge_syscall : t -> int -> unit
(** [qos_charge Syscall] + [qos_admit]: the acquisition-syscall
    preamble. *)

val file_info : t -> int -> file_info option
val shadow_of : t -> int -> Verifier.shadow option

(** Pipeline temperature: true while any verification verdict is still
    outstanding (queued, running, or parked at the unverified gate).
    The unverified marker must be set/cleared through the two helpers
    so the O(1) count stays exact. *)

val pipeline_hot : t -> bool
val mark_unverified : t -> file_info -> int -> unit
val drop_unverified : t -> file_info -> unit
val view : t -> Verifier.view
val file_pages : file_info -> int list
(* (inode, index pages, data pages, directory-index pages) *)
val walk_file :
  t -> ino:int -> dentry_addr:int -> (Layout.inode * int list * int list * int list) option
val dir_page_is_empty : t -> int -> bool
val wake_all : file_info -> unit

val cold_start :
  sched:Sched.t -> pmem:Pmem.t -> mmu:Mmu.t -> ?lease_ns:float -> unit -> (t, string) result
