(** Shared state of the kernel access controller: record types,
    construction, the verifier view, cold start.  Internal to
    [lib/core] — external code goes through the {!Controller} facade. *)

module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Extent_alloc = Trio_util.Extent_alloc

type page_owner = Verifier.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Verifier.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = {
  ck_dentry : Bytes.t;
  ck_pages : (int * Bytes.t) list;
  ck_children : int list;
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;  (** MMU write-set mark at snapshot time *)
}

type degradation = Healthy | Degraded_ro | Failed

type file_info = {
  f_ino : int;
  mutable f_dentry_addr : int;
  mutable f_parent : int;
  mutable f_ftype : Fs_types.ftype;
  mutable f_index_pages : int list;
  mutable f_data_pages : int list;
  mutable f_readers : (int, unit) Hashtbl.t;
  mutable f_writer : int option;
  mutable f_lease_expire : float;
  mutable f_checkpoint : checkpoint option;
  mutable f_waiters : Sched.waker Queue.t;
  mutable f_quarantined_for : int option;
  mutable f_degraded : degradation;
  mutable f_unverified : int option;
  mutable f_pending : int option;
  mutable f_verifying : bool;
}

type proc_info = {
  p_id : int;
  p_cred : Fs_types.cred;
  p_group : int;
  mutable p_fix : (int -> bool) option;
  mutable p_recovery : (unit -> unit) option;
  mutable p_pages : (int, unit) Hashtbl.t;
  mutable p_inos : (int, unit) Hashtbl.t;
  mutable p_mapped : (int, unit) Hashtbl.t;
  mutable p_last_heartbeat : float;
  mutable p_dead : bool;
}

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  topo : Numa.t;
  lease_ns : float;
  node_allocs : Extent_alloc.t array;
  mutable next_ino : int;
  page_owner : (int, page_owner) Hashtbl.t;
  ino_owner : (int, ino_owner) Hashtbl.t;
  shadow : (int, Verifier.shadow) Hashtbl.t;
  files : (int, file_info) Hashtbl.t;
  procs : (int, proc_info) Hashtbl.t;
  stats : Stats.t;
  mutable corruption_events : (int * int * Verifier.violation list) list;
  mutable quarantine : (int * int) list;
  mutable badblocks : int list;
  verify_q : int Queue.t;
  vq_idle : Sched.waker Queue.t;
  mutable verify_hook : (ino:int -> incremental:bool -> dur:float -> ok:bool -> unit) option;
}

type vmode = Full | Incremental

val verify_mode : vmode ref
val set_verify_mode : vmode -> unit
val current_verify_mode : unit -> vmode
val page_size : int
val owner_of : t -> int -> page_owner
val ino_owner_of : t -> int -> ino_owner

val new_file :
  ino:int ->
  dentry_addr:int ->
  parent:int ->
  ftype:Fs_types.ftype ->
  ?index_pages:int list ->
  ?data_pages:int list ->
  unit ->
  file_info

val create : sched:Sched.t -> pmem:Pmem.t -> mmu:Mmu.t -> ?lease_ns:float -> unit -> t
val proc_info : t -> int -> proc_info
val touch : t -> int -> unit
val group_of : t -> int -> int
val cred_of_proc : t -> int -> Fs_types.cred
val file_info : t -> int -> file_info option
val shadow_of : t -> int -> Verifier.shadow option
val view : t -> Verifier.view
val file_pages : file_info -> int list
val walk_file : t -> ino:int -> dentry_addr:int -> (Layout.inode * int list * int list) option
val dir_page_is_empty : t -> int -> bool
val wake_all : file_info -> unit

val cold_start :
  sched:Sched.t -> pmem:Pmem.t -> mmu:Mmu.t -> ?lease_ns:float -> unit -> (t, string) result
