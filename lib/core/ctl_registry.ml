(* Process registry and the process-failure plane: heartbeats, watchdog,
   abnormal teardown, orphan-page GC.

   A LibFS that dies or wedges mid-operation never unmaps cleanly: its
   write-mapped files hold torn intermediate state and its allocation
   cache holds pages nobody will ever link.  The watchdog notices the
   silence (no syscalls = no heartbeats), waits out any running write
   lease, then escalates: force-revoke every mapping, mark each file the
   process could write as unverified (the map_file gate verifies before
   the next grant), and tear the address space down.  Orphaned pages are
   reclaimed by {!gc_once}. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Extent_alloc = Trio_util.Extent_alloc
open Ctl_state

let register_process t ~proc ~cred ?group ?qos_share ?fix ?recovery () =
  if proc = Pmem.kernel_actor then invalid_arg "Controller.register_process: reserved id";
  let info =
    {
      p_id = proc;
      p_cred = cred;
      p_group = Option.value group ~default:proc;
      p_fix = fix;
      p_recovery = recovery;
      p_pages = Hashtbl.create 64;
      p_inos = Hashtbl.create 64;
      p_mapped = Hashtbl.create 16;
      p_last_heartbeat = Sched.now t.sched;
      p_dead = false;
    }
  in
  Hashtbl.replace t.procs proc info;
  (* Configuring a share turns QoS enforcement on for this process'
     whole trust group; without it the group is charged (observability)
     but never throttled. *)
  (match qos_share with
  | Some share ->
    Ctl_qos.set_share (Ctl_state.qos t) ~group:info.p_group ~now:(Sched.now t.sched) share
  | None -> ());
  (* Every process can read the superblock and the root dentry page. *)
  Mmu.grant_free t.mmu ~actor:proc ~pages:[ 0; Layout.root_dentry_page ] ~perm:Mmu.P_read

let heartbeat t ~proc =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  charge_syscall t proc;
  touch t proc

let last_heartbeat t ~proc = (proc_info t proc).p_last_heartbeat

let process_dead t ~proc =
  match Hashtbl.find_opt t.procs proc with Some p -> p.p_dead | None -> false

let processes t =
  Hashtbl.fold (fun id (p : proc_info) -> List.cons (id, p.p_dead, p.p_last_heartbeat)) t.procs []
  |> List.sort compare

(* Release the inode numbers a dead process still holds.  Its cached
   *pages* are deliberately left attributed (Allocated_to) for the
   orphan GC: routing all page reclamation through {!gc_once} keeps it
   observable in the accounting invariant, which is how the skip-GC
   mutation stays provably catchable.  Effect-free.

   The inos spread over every registry shard, so this is the
   generalized form of the two-shard protocol: all touched shards are
   held at once, taken in ascending id order (see {!Ctl_shard}). *)
let reap_dead t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p when p.p_dead ->
    let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) p.p_inos [] in
    with_shards_of_inos t inos (fun () ->
        List.iter
          (fun ino ->
            clear_ino_owner t ino;
            Hashtbl.remove p.p_inos ino)
          inos);
    List.length inos
  | _ -> 0

type watchdog_report = {
  mutable wd_scanned : int; (* live processes examined *)
  mutable wd_escalated : int list; (* processes abnormally torn down *)
  mutable wd_unverified : int; (* files marked for the verifier gate *)
  mutable wd_revoked : int; (* mappings force-revoked *)
}

let make_watchdog_report () =
  { wd_scanned = 0; wd_escalated = []; wd_unverified = 0; wd_revoked = 0 }

let pp_watchdog_report ppf r =
  Format.fprintf ppf "scanned %d, escalated [%s], %d file(s) unverified, %d mapping(s) revoked"
    r.wd_scanned
    (String.concat "; " (List.map string_of_int (List.rev r.wd_escalated)))
    r.wd_unverified r.wd_revoked

(* The ladder's last rung.  Unlike unmap_file this never verifies
   inline: the process is gone, so the kernel neither trusts nor runs
   its callbacks — files are only marked unverified and verification is
   charged to whoever maps them next.  MMU teardown is wholesale. *)
let abnormal_teardown ?report t ~proc =
  let p = proc_info t proc in
  if not p.p_dead then begin
    let bump g = match report with Some r -> g r | None -> () in
    (* Close the ring first: unconsumed submissions and unreaped
       completions drop, parked producer fibers wake with EIO, and any
       batch a drain fiber already took completes as no-ops.  The ring
       holds no pages — the mappings its executed ops created are
       revoked right below, the rest never existed — so the accounting
       invariant owes it nothing. *)
    (match ring_find t proc with Some r -> Ctl_ring.close r | None -> ());
    Hashtbl.iter
      (fun ino () ->
        match file_find t ino with
        | None -> ()
        | Some f ->
          bump (fun r -> r.wd_revoked <- r.wd_revoked + 1);
          if f.f_writer = Some proc then begin
            f.f_writer <- None;
            mark_unverified t f proc;
            bump (fun r -> r.wd_unverified <- r.wd_unverified + 1)
          end
          else Hashtbl.remove f.f_readers proc;
          wake_all f)
      (Hashtbl.copy p.p_mapped);
    (* A verification the dead process queued but no verifier fiber
       claimed yet cannot run its fix callback any more: demote it to
       the unverified gate (the stale queue entry is skipped when a
       fiber finds f_pending cleared). *)
    iter_files t (fun _ f ->
        if f.f_pending = Some proc then begin
          f.f_pending <- None;
          t.pending_verifications <- t.pending_verifications - 1;
          mark_unverified t f proc;
          bump (fun r -> r.wd_unverified <- r.wd_unverified + 1)
        end);
    Hashtbl.reset p.p_mapped;
    p.p_fix <- None;
    p.p_recovery <- None;
    p.p_dead <- true;
    Mmu.revoke_actor t.mmu ~actor:proc;
    bump (fun r -> r.wd_escalated <- proc :: r.wd_escalated)
  end

(* One watchdog scan.  A process is escalated when it has been silent
   longer than [timeout_ns] while still holding resources — except that
   a silent writer whose lease is still running gets the benefit of the
   doubt until the lease expires (rung 1 of the ladder: lease-expiry
   force-revoke, same policy as force_unmap_holders). *)
let watchdog_once ?report t ~timeout_ns =
  let now = Sched.now t.sched in
  let escalated = ref [] in
  Hashtbl.iter
    (fun proc (p : proc_info) ->
      if not p.p_dead then begin
        (match report with Some r -> r.wd_scanned <- r.wd_scanned + 1 | None -> ());
        let stale = now -. p.p_last_heartbeat > timeout_ns in
        let holds =
          Hashtbl.length p.p_mapped > 0
          || Hashtbl.length p.p_pages > 0
          || Hashtbl.length p.p_inos > 0
          (* Ring entries nobody will ever drain (dead consumer, or a
             producer that died mid-protocol) also pin kernel-side
             work: escalation is what closes the ring and reaps them. *)
          || (match ring_find t proc with
             | Some r -> Ctl_ring.outstanding r > 0
             | None -> false)
        in
        let lease_running =
          Hashtbl.fold
            (fun ino () acc ->
              acc
              ||
              match file_find t ino with
              | Some f -> f.f_writer = Some proc && now < f.f_lease_expire
              | None -> false)
            p.p_mapped false
        in
        if stale && holds && not lease_running then begin
          abnormal_teardown ?report t ~proc;
          escalated := proc :: !escalated
        end
      end)
    (Hashtbl.copy t.procs);
  List.rev !escalated

(* Periodic watchdog fiber, bounded like {!Scrub.run_patrol} so the
   event heap always drains. *)
let run_watchdog ?report t ~timeout_ns ~interval_ns ~rounds =
  Sched.spawn t.sched (fun () ->
      for _ = 1 to rounds do
        Sched.delay interval_ns;
        ignore (watchdog_once ?report t ~timeout_ns)
      done)

(* ------------------------------------------------------------------ *)
(* Orphan-page GC and the page-accounting invariant.

   Mark: a file is reachable when its parent chain ends at the root and
   the shadow inode table (ground truth) still knows it.  Sweep: every
   device page is either free (per the extent allocators), attributed to
   a reachable file, cached by a live process (allocation caches,
   journals), or a retired badblock — anything else is an orphan left by
   a dead process and is reclaimed.  With the per-node pools in front
   of the reserve, "free" splits into two terms — reserve-free and
   pooled — and the invariant, summed over every shard, becomes
       free + pooled + reachable + cached + badblocks = device pages
   computed from scratch each run and exposed in the report.

   Ordering against the verifier gate: while a dead process still has
   files awaiting gate verification, pages it holds may in fact be
   linked — a freshly created file lives in Allocated_to pages until its
   first verification attributes them In_file.  The GC therefore defers
   (counts as cached) a dead process' pages until its unverified set
   drains — via the next map_file or drain_unverified — and only then
   treats the leftovers as orphans. *)

(* Deliberate mutation hook for the self-test of the leak invariant: a
   GC that never reclaims must be *provably* caught by the report. *)
let crash_test_skip_gc = ref false

let set_crash_test_skip_gc b = crash_test_skip_gc := b

type gc_report = {
  gc_total : int; (* device pages *)
  gc_free : int; (* per the reserve extent allocators *)
  gc_pooled : int; (* staged in the per-node page pools *)
  gc_snap_pinned : int; (* payload chain of the durable snapshot root *)
  gc_reachable : int; (* In_file pages of root-reachable files *)
  gc_cached : int; (* Allocated_to a live process *)
  gc_badblocks : int; (* retired by the scrubber *)
  gc_reclaimed_pages : int; (* orphans swept this run *)
  gc_reclaimed_inos : int;
  gc_leaked : int; (* orphans still present after the sweep *)
  gc_invariant_ok : bool;
      (* free + pooled + snap_pinned + reachable + cached + badblocks
         = total, summed over every shard *)
}

let pp_gc_report ppf r =
  Format.fprintf ppf
    "total %d = free %d + pooled %d + snap_pinned %d + reachable %d + cached %d + badblocks \
     %d%s; reclaimed %d page(s) %d ino(s), leaked %d [%s]"
    r.gc_total r.gc_free r.gc_pooled r.gc_snap_pinned r.gc_reachable r.gc_cached r.gc_badblocks
    (if r.gc_invariant_ok then "" else " (MISMATCH)")
    r.gc_reclaimed_pages r.gc_reclaimed_inos r.gc_leaked
    (if r.gc_invariant_ok && r.gc_leaked = 0 then "ok" else "LEAK")

let reachable_files t =
  let memo = Hashtbl.create (max 16 (file_table_size t)) in
  let rec reach ino seen =
    match Hashtbl.find_opt memo ino with
    | Some v -> v
    | None ->
      let v =
        if ino = Layout.root_ino then shadow_mem t ino
        else if List.mem ino seen then false
        else
          shadow_mem t ino
          &&
          match file_find t ino with
          | None -> false
          | Some f -> reach f.f_parent (ino :: seen)
      in
      Hashtbl.replace memo ino v;
      v
  in
  iter_files t (fun ino _ -> ignore (reach ino []));
  memo

(* Effect-free (no virtual-time cost, kernel-only reads of soft state)
   so tests can also run it after the simulation drains. *)
let gc_once t =
  let reach = reachable_files t in
  let live proc =
    match Hashtbl.find_opt t.procs proc with Some p -> not p.p_dead | None -> false
  in
  (* Dead processes with files still awaiting the verifier gate — or a
     queued background verification — keep their pages deferred, not
     orphaned (see the section comment). *)
  let pending = Hashtbl.create 8 in
  iter_files t (fun _ f ->
      (match f.f_unverified with Some p -> Hashtbl.replace pending p () | None -> ());
      match f.f_pending with Some p -> Hashtbl.replace pending p () | None -> ());
  let total = Pmem.total_pages t.pmem in
  let reachable = ref 0 and cached = ref 0 in
  let orphans = ref [] in
  for pg = 0 to total - 1 do
    match owner_of t pg with
    | Free -> ()
    | In_file ino ->
      if Option.value (Hashtbl.find_opt reach ino) ~default:false then incr reachable
      else orphans := pg :: !orphans
    | Allocated_to p ->
      if live p || Hashtbl.mem pending p then incr cached else orphans := pg :: !orphans
  done;
  let reclaimed_pages = ref 0 and leaked = ref 0 in
  if !crash_test_skip_gc then leaked := List.length !orphans
  else begin
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | Allocated_to p -> (
          match Hashtbl.find_opt t.procs p with
          | Some pi -> Hashtbl.remove pi.p_pages pg
          | None -> ())
        | _ -> ());
        clear_page_owner t pg;
        Pmem.discard_page t.pmem pg;
        pool_put t pg;
        incr reclaimed_pages)
      !orphans;
    Mmu.revoke_everyone_on_pages t.mmu ~pages:!orphans
  end;
  (* Orphan inode numbers: allocated to a process that no longer exists
     (or is dead) and never linked into a directory. *)
  let reclaimed_inos = ref 0 in
  if not !crash_test_skip_gc then
    fold_ino_owner t
      (fun ino owner () ->
        match owner with
        | Ino_allocated_to p when (not (live p)) && not (Hashtbl.mem pending p) ->
          with_ino_shard t ino (fun () -> clear_ino_owner t ino);
          (match Hashtbl.find_opt t.procs p with
          | Some pi -> Hashtbl.remove pi.p_inos ino
          | None -> ());
          incr reclaimed_inos
        | _ -> ())
      ();
  let free = Array.fold_left (fun acc a -> acc + Extent_alloc.free_units a) 0 t.node_allocs in
  let pooled = pooled_pages t in
  let snap_pinned = snap_pinned_count t in
  let badblocks = List.length t.badblocks in
  {
    gc_total = total;
    gc_free = free;
    gc_pooled = pooled;
    gc_snap_pinned = snap_pinned;
    gc_reachable = !reachable;
    gc_cached = !cached;
    gc_badblocks = badblocks;
    gc_reclaimed_pages = !reclaimed_pages;
    gc_reclaimed_inos = !reclaimed_inos;
    gc_leaked = !leaked;
    gc_invariant_ok = free + pooled + snap_pinned + !reachable + !cached + badblocks = total;
  }
