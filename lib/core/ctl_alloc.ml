(* Resource allocation: batched page/inode allocation, free, recycle.

   These are the controller's "give the LibFS raw material" syscalls —
   everything here manipulates the extent allocators, the ownership
   maps and the MMU, but never the verification plane. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Extent_alloc = Trio_util.Extent_alloc
open Fs_types
open Ctl_state

let alloc_pages t ~proc ~node ~count ~kind =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let claim start =
    let pages = List.init count (fun i -> start + i) in
    List.iter
      (fun pg ->
        Hashtbl.replace t.page_owner pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ();
        Pmem.set_kind t.pmem pg kind)
      pages;
    Mmu.grant_extent t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
    Ok pages
  in
  match Extent_alloc.alloc t.node_allocs.(node) count with
  | exception Extent_alloc.Out_of_space -> (
    (* fall back to any node with space *)
    let rec try_nodes n =
      if n >= Array.length t.node_allocs then Error ENOSPC
      else
        match Extent_alloc.alloc t.node_allocs.(n) count with
        | exception Extent_alloc.Out_of_space -> try_nodes (n + 1)
        | start -> Ok start
    in
    match try_nodes 0 with Error e -> Error e | Ok start -> claim start)
  | start -> claim start

let free_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> Ok ()
    | In_file ino -> (
      match Hashtbl.find_opt t.files ino with
      | Some f
        when f.f_writer = Some proc
             || (Option.is_some f.f_writer && group_of t (Option.get f.f_writer) = group_of t proc)
        ->
        (* Freeing a directory data page requires it to be empty. *)
        if f.f_ftype = Dir && List.mem pg f.f_data_pages && not (dir_page_is_empty t pg) then
          Error EACCES
        else Ok ()
      | _ -> Error EACCES)
    | Allocated_to _ | Free -> Error EACCES
  in
  let rec validate = function
    | [] -> Ok ()
    | pg :: rest -> ( match check pg with Ok () -> validate rest | Error e -> Error e)
  in
  match validate pages with
  | Error e -> Error e
  | Ok () ->
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match Hashtbl.find_opt t.files ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages
          | None -> ())
        | _ -> ());
        Hashtbl.remove t.page_owner pg;
        Hashtbl.remove p.p_pages pg;
        Pmem.discard_page t.pmem pg;
        let node = pg / Pmem.pages_per_node t.pmem in
        Extent_alloc.free t.node_allocs.(node) pg 1)
      pages;
    Sched.delay (Perf.Cpu.page_table_op *. float_of_int (List.length pages));
    Mmu.revoke_everyone_on_pages t.mmu ~pages;
    Ok ()

(* Return pages of a write-mapped file to the calling process'
   allocation pool *without* touching the MMU: the LibFS keeps its
   existing access and reuses the pages directly (the fast truncate /
   rewrite path; the ownership change is what keeps check I2 sound). *)
let recycle_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let my_group = group_of t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> true
    | In_file ino -> (
      match Hashtbl.find_opt t.files ino with
      | Some f -> (
        match f.f_writer with
        | Some w ->
          (w = proc || group_of t w = my_group)
          && not (f.f_ftype = Dir && List.mem pg f.f_data_pages)
        | None -> false)
      | None -> false)
    | Allocated_to _ | Free -> false
  in
  if not (List.for_all check pages) then Error EACCES
  else begin
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match Hashtbl.find_opt t.files ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages
          | None -> ())
        | _ -> ());
        Hashtbl.replace t.page_owner pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ())
      pages;
    Ok ()
  end

let alloc_inos t ~proc ~count =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let inos = List.init count (fun i -> t.next_ino + i) in
  t.next_ino <- t.next_ino + count;
  List.iter
    (fun ino ->
      Hashtbl.replace t.ino_owner ino (Ino_allocated_to proc);
      Hashtbl.replace p.p_inos ino ())
    inos;
  inos

(* Single-page allocation that may land on any node (scrub migration). *)
let alloc_page_any_node t ~preferred =
  let n_nodes = Array.length t.node_allocs in
  let rec go i =
    if i >= n_nodes then None
    else begin
      let node = (preferred + i) mod n_nodes in
      match Extent_alloc.alloc t.node_allocs.(node) 1 with
      | exception Extent_alloc.Out_of_space -> go (i + 1)
      | start -> Some start
    end
  in
  go 0

(* Free every page of a (just-unlinked) file and drop its records.  The
   caller must hold a write mapping on the file's parent directory —
   that is the permission unlink itself required. *)
let free_file_tree t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f -> (
    match Hashtbl.find_opt t.files f.f_parent with
    | Some parent
      when (match parent.f_writer with
           | Some w -> w = proc || group_of t w = group_of t proc
           | None -> false) ->
      if f.f_ftype = Dir && not (List.for_all (dir_page_is_empty t) f.f_data_pages) then
        Error ENOTEMPTY
      else begin
        let pages = f.f_index_pages @ f.f_data_pages in
        List.iter
          (fun pg ->
            Hashtbl.remove t.page_owner pg;
            Pmem.discard_page t.pmem pg;
            let node = pg / Pmem.pages_per_node t.pmem in
            Extent_alloc.free t.node_allocs.(node) pg 1)
          pages;
        Mmu.revoke_everyone_on_pages t.mmu ~pages;
        Hashtbl.remove t.files ino;
        Hashtbl.remove t.shadow ino;
        Hashtbl.remove t.ino_owner ino;
        Ok ()
      end
    | _ -> Error EACCES)
