(* Resource allocation: batched page/inode allocation, free, recycle.

   These are the controller's "give the LibFS raw material" syscalls —
   everything here manipulates the per-node page pools, the ownership
   maps and the MMU, but never the verification plane.

   Allocation is layered (DESIGN.md §4.14): each NUMA node has a page
   pool that hands out pages without touching the global reserve; the
   pool batch-refills from its node's extent allocator when dry and
   batch-drains back above a high-water mark.  Only when a node's pool
   *and* reserve are both empty does allocation spill to other nodes. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Extent_alloc = Trio_util.Extent_alloc
open Fs_types
open Ctl_state

(* Take [count] pages near [node]: its pool first (refilling from the
   reserve in batches), then the other nodes' pools round-robin. *)
let take_pages t ~node ~count =
  match pool_take t ~node ~count with
  | Some pages -> Some pages
  | None ->
    let n_nodes = Array.length t.pools in
    let rec spill i =
      if i >= n_nodes then None
      else
        match pool_take t ~node:((node + i) mod n_nodes) ~count with
        | Some pages -> Some pages
        | None -> spill (i + 1)
    in
    spill 1

let alloc_pages t ~proc ~node ~count ~kind =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  (* Pool draw is charged to the drawing tenant — including the batched
     reserve refill its allocation may force below (the refill batch is
     work this tenant triggered, not ambient kernel cost). *)
  let pooled_before = pooled_pages t in
  qos_charge t proc Ctl_qos.Syscall;
  qos_charge t proc ~n:count Ctl_qos.Page_draw;
  qos_admit t proc;
  let p = proc_info t proc in
  match take_pages t ~node ~count with
  | None -> Error ENOSPC
  | Some pages ->
    (* The reserve pages the batched refill staged beyond this draw:
       pooled went from [pooled_before] to [now + taken - refilled]. *)
    let refilled = pooled_pages t - pooled_before + List.length pages in
    if refilled > 0 then qos_charge t proc ~n:refilled Ctl_qos.Page_draw;
    List.iter
      (fun pg ->
        set_page_owner t pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ();
        Pmem.set_kind t.pmem pg kind)
      pages;
    Mmu.grant_extent t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
    Ok pages

(* Free a page back to its node's pool, dropping ownership.  A page
   pinned by the snapshot plane never reaches here through a sound
   path (pinned pages are owned by no file and no process), but the
   guard makes reuse structurally impossible: the current durable root
   must stay readable until the next root supersedes it. *)
let release_page t pg =
  if not (snap_pinned_mem t pg) then begin
    clear_page_owner t pg;
    Pmem.discard_page t.pmem pg;
    pool_put t pg
  end

(* ------------------------------------------------------------------ *)
(* Snapshot payload pages (DESIGN.md §4.16).

   Taken from the pools like any allocation, but owned by the snapshot
   plane: the page-owner entry stays [Free] (the GC sweep skips them by
   construction) and the page is tracked in [t.snap_pinned], which is
   its own term of the accounting invariant:

       free + pooled + snap_pinned + reachable + cached + badblocks
         = device pages *)

let alloc_snapshot_pages t ~count =
  match
    (match pool_take t ~node:0 ~count with
    | Some pages -> Some pages
    | None ->
      let n_nodes = Array.length t.pools in
      let rec spill i =
        if i >= n_nodes then None
        else
          match pool_take t ~node:i ~count with
          | Some pages -> Some pages
          | None -> spill (i + 1)
      in
      spill 1)
  with
  | None -> None
  | Some pages ->
    List.iter (fun pg -> Hashtbl.replace t.snap_pinned pg ()) pages;
    Some pages

(* Unpin the payload chain of a superseded root and return its pages to
   the pools. *)
let release_snapshot_pages t pages =
  List.iter
    (fun pg ->
      if snap_pinned_mem t pg then begin
        Hashtbl.remove t.snap_pinned pg;
        Pmem.discard_page t.pmem pg;
        pool_put t pg
      end)
    pages

(* Claim a specific (currently free) page for the snapshot plane while
   rebuilding state from NVM — the mount-time dual of
   [alloc_snapshot_pages].  False when the page is already spoken for,
   which fails the root candidate. *)
let pin_snapshot_page t pg =
  if pg <= Layout.root_dentry_page || pg >= Pmem.total_pages t.pmem then false
  else if owner_of t pg <> Free || snap_pinned_mem t pg then false
  else
    match Extent_alloc.alloc_at t.node_allocs.(node_of_page t pg) pg 1 with
    | () ->
      Hashtbl.replace t.snap_pinned pg ();
      true
    | exception Extent_alloc.Out_of_space -> false

let free_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  (* Release path: charged, never delayed (see Ctl_state.qos_admit). *)
  qos_charge t proc Ctl_qos.Syscall;
  let p = proc_info t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> Ok ()
    | In_file ino -> (
      match file_find t ino with
      | Some f
        when f.f_writer = Some proc
             || (Option.is_some f.f_writer && group_of t (Option.get f.f_writer) = group_of t proc)
        ->
        (* Freeing a directory data page requires it to be empty. *)
        if f.f_ftype = Dir && List.mem pg f.f_data_pages && not (dir_page_is_empty t pg) then
          Error EACCES
        else Ok ()
      | _ -> Error EACCES)
    | Allocated_to _ | Free -> Error EACCES
  in
  let rec validate = function
    | [] -> Ok ()
    | pg :: rest -> ( match check pg with Ok () -> validate rest | Error e -> Error e)
  in
  match validate pages with
  | Error e -> Error e
  | Ok () ->
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match file_find t ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages;
            f.f_dindex_pages <- List.filter (fun q -> q <> pg) f.f_dindex_pages
          | None -> ())
        | _ -> ());
        Hashtbl.remove p.p_pages pg;
        release_page t pg)
      pages;
    Sched.delay (Perf.Cpu.page_table_op *. float_of_int (List.length pages));
    Mmu.revoke_everyone_on_pages t.mmu ~pages;
    Ok ()

(* Return pages of a write-mapped file to the calling process'
   allocation pool *without* touching the MMU: the LibFS keeps its
   existing access and reuses the pages directly (the fast truncate /
   rewrite path; the ownership change is what keeps check I2 sound). *)
let recycle_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  qos_charge t proc Ctl_qos.Syscall;
  let p = proc_info t proc in
  let my_group = group_of t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> true
    | In_file ino -> (
      match file_find t ino with
      | Some f -> (
        match f.f_writer with
        | Some w ->
          (w = proc || group_of t w = my_group)
          && not (f.f_ftype = Dir && List.mem pg f.f_data_pages)
        | None -> false)
      | None -> false)
    | Allocated_to _ | Free -> false
  in
  if not (List.for_all check pages) then Error EACCES
  else begin
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match file_find t ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages;
            f.f_dindex_pages <- List.filter (fun q -> q <> pg) f.f_dindex_pages
          | None -> ())
        | _ -> ());
        set_page_owner t pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ())
      pages;
    Ok ()
  end

let alloc_inos t ~proc ~count =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  charge_syscall t proc;
  let p = proc_info t proc in
  let inos = List.init count (fun i -> t.next_ino + i) in
  t.next_ino <- t.next_ino + count;
  List.iter
    (fun ino ->
      with_ino_shard t ino (fun () -> set_ino_owner t ino (Ino_allocated_to proc));
      Hashtbl.replace p.p_inos ino ())
    inos;
  inos

(* Single-page allocation that may land on any node (scrub migration). *)
let alloc_page_any_node t ~preferred =
  match take_pages t ~node:preferred ~count:1 with Some [ pg ] -> Some pg | _ -> None

(* Free every page of a (just-unlinked) file and drop its records.  The
   caller must hold a write mapping on the file's parent directory —
   that is the permission unlink itself required. *)
let free_file_tree t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  qos_charge t proc Ctl_qos.Syscall;
  match file_find t ino with
  | None -> Error ENOENT
  | Some f -> (
    match file_find t f.f_parent with
    | Some parent
      when (match parent.f_writer with
           | Some w -> w = proc || group_of t w = group_of t proc
           | None -> false) ->
      if f.f_ftype = Dir && not (List.for_all (dir_page_is_empty t) f.f_data_pages) then
        Error ENOTEMPTY
      else begin
        let pages = f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages in
        List.iter (fun pg -> release_page t pg) pages;
        Mmu.revoke_everyone_on_pages t.mmu ~pages;
        drop_unverified t f;
        with_ino_shard t ino (fun () ->
            remove_file t ino;
            remove_shadow t ino;
            clear_ino_owner t ino);
        Ok ()
      end
    | _ -> Error EACCES)
