(** Shard topology of the controller: the deterministic shard-of-ino
    function and the ordered shard-lock plane (DESIGN.md §4.14).
    Internal to [lib/core] — external code goes through {!Controller}. *)

val shard_of_ino : shards:int -> int -> int
(** Deterministic multiplicative-hash shard of an ino; identity when
    [shards <= 1].  Every entity (controller submodules, tests, tools)
    must route inos through this one function. *)

type plane

val create_plane : unit -> plane
val acquisitions : plane -> int
val cross_shard_ops : plane -> int

val with_lock : plane -> shard:int -> (unit -> 'a) -> 'a
(** Hold one shard for the duration of [f].  Reentrant.  Raises on an
    out-of-order acquisition (a higher-id shard is already held). *)

val with_pair : plane -> a:int -> b:int -> (unit -> 'a) -> 'a
(** The two-shard protocol (cross-shard rename, lease transfer): both
    shards held, taken in ascending id order. *)

val with_all : plane -> shards:int list -> (unit -> 'a) -> 'a
(** Every listed shard held, taken in ascending id order (reap_dead,
    cross-shard GC sweeps). *)
