(* Persistent B-link-style directory index (DESIGN.md §4.18).

   An ordered tree over (name hash, dentry address) keys whose nodes are
   single core-state NVM pages ({!Layout.dnode}).  The dentry pages stay
   the source of truth: the tree is an *accelerator* — every mutation
   persists the dentry first, then updates the tree, and any torn or
   damaged node degrades to the linear dentry-page scan plus a rebuild
   from the leaves.

   Crash discipline (single writer per directory; readers are lock-free
   thanks to the B-link right-sibling pointers):

   - leaf/internal insert without overflow: one full-node rewrite whose
     trailing CRC makes a torn write detectable (reader falls back);
   - split: the new right sibling is written first (unreachable until
     linked), then the left node is rewritten with halved keys, the
     right link and the new high key — the tree is consistent before
     and after that single page write — and only then is the parent
     updated.  A crash between the last two steps leaves the right node
     reachable through the right link;
   - root split: the new root is written to a fresh page and the
     directory dentry's [dindex_root] field is swung with one atomic
     persisted 8-byte store.

   All page allocation for an insert is done up front (worst case: one
   new node per level plus a new root), so running out of space never
   leaves a half-split tree. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats

let page_size = Layout.page_size

(* ------------------------------------------------------------------ *)
(* Test hooks *)

(* Mask the name hash down to [bits] bits to force collisions. *)
let collision_bits = ref None
let set_collision_bits b = collision_bits := b

(* Shrink the node fanout so unit tests and crash exploration reach
   splits (and root splits) with a handful of entries instead of 170. *)
let test_capacity = ref None
let set_test_capacity c = test_capacity := c

let capacity () =
  match !test_capacity with
  | Some c -> max 2 (min c Layout.dnode_capacity)
  | None -> Layout.dnode_capacity

let hash_name name =
  let h = Trio_util.Htbl.string_hash name in
  match !collision_bits with None -> h | Some bits -> h land ((1 lsl bits) - 1)

let max_key = (max_int, max_int)

(* ------------------------------------------------------------------ *)
(* Node I/O *)

(* Reading a node costs one in-node probe's worth of CPU on top of the
   media access the Pmem layer charges.  Userspace actors read through
   ECC: a poisoned node is indistinguishable from a torn one — both
   degrade to the scan fallback.  [fetch] may serve the page from a DRAM
   snapshot (the incremental verifier's delta checkpoint). *)
let read_node ?fetch pm ~actor page =
  Sched.cpu_work Perf.Cpu.hash_lookup;
  if page <= Layout.root_dentry_page || page >= Pmem.total_pages pm then
    Error (Printf.sprintf "index node %d outside the volume" page)
  else begin
    let from_device () =
      if actor = Pmem.kernel_actor then
        Ok (Pmem.read pm ~actor ~addr:(page * page_size) ~len:page_size)
      else
        match Pmem.read_ecc pm ~actor ~addr:(page * page_size) ~len:page_size with
        | Pmem.Ecc.Ok b -> Ok b
        | Pmem.Ecc.Poisoned _ -> Error (Printf.sprintf "index node %d poisoned" page)
    in
    let bytes =
      match fetch with
      | Some f -> ( match f page with Some b -> Ok b | None -> from_device ())
      | None -> from_device ()
    in
    match bytes with
    | Error _ as e -> e
    | Ok b -> (
      match Layout.decode_dnode b with
      | Ok n -> Ok n
      | Error e -> Error (Printf.sprintf "index node %d: %s" page e))
  end

let write_node pm ~actor page (n : Layout.dnode) =
  Pmem.write pm ~actor ~addr:(page * page_size) ~src:(Layout.encode_dnode n);
  Pmem.persist pm ~addr:(page * page_size) ~len:page_size

let high_of (n : Layout.dnode) = (n.Layout.dn_high_hash, n.Layout.dn_high_addr)

(* Index of the child covering [key] in internal node [n]: the first
   entry whose separator is strictly above the key.  The caller has
   already ruled out [key >= high] (move right), and the last separator
   equals the high key, so a hit is guaranteed on a well-formed node. *)
let route (n : Layout.dnode) key =
  let len = Array.length n.Layout.dn_entries in
  let rec go i =
    if i >= len then None
    else
      let h, a, child = n.Layout.dn_entries.(i) in
      if key < (h, a) then Some child else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Lookup *)

(* All dentry addresses indexed under [hash], in key order.  Equal-hash
   entries are adjacent; they may continue into right siblings when the
   hash sits at a node boundary. *)
let lookup ?fetch ?stats pm ~actor ~root ~hash =
  (match stats with Some s -> Stats.incr s "verify.dindex.descents" | None -> ());
  if root = 0 then Ok []
  else begin
    let bound = Pmem.total_pages pm in
    let rec collect page acc steps =
      if steps > bound then Error "index chain too long (cycle?)"
      else
        match read_node ?fetch pm ~actor page with
        | Error _ as e -> e
        | Ok n ->
          let acc =
            Array.fold_left
              (fun acc (h, a, _) -> if h = hash then a :: acc else acc)
              acc n.Layout.dn_entries
          in
          if n.Layout.dn_right <> 0 && n.Layout.dn_high_hash <= hash then
            collect n.Layout.dn_right acc (steps + 1)
          else Ok (List.rev acc)
    in
    let rec descend page steps =
      if steps > bound then Error "index descent too deep (cycle?)"
      else
        match read_node ?fetch pm ~actor page with
        | Error _ as e -> e
        | Ok n ->
          if (hash, 0) >= high_of n && n.Layout.dn_right <> 0 then
            descend n.Layout.dn_right (steps + 1)
          else if n.Layout.dn_level = 0 then collect page [] steps
          else (
            match route n (hash, 0) with
            | Some child -> descend child (steps + 1)
            | None -> Error "index node has no covering child")
    in
    descend root 0
  end

(* ------------------------------------------------------------------ *)
(* Insert *)

let sorted_insert entries entry =
  let key_of (h, a, _) = (h, a) in
  let key = key_of entry in
  let len = Array.length entries in
  let rec pos i = if i >= len then i else if key < key_of entries.(i) then i else pos (i + 1) in
  let i = pos 0 in
  if i < len && key_of entries.(i) = key then None (* already present *)
  else begin
    let out = Array.make (len + 1) entry in
    Array.blit entries 0 out 0 i;
    Array.blit entries i out (i + 1) (len - i);
    Some out
  end

(* Find the node at [start] (following right links) holding a child
   entry for [child_page]; defensive against a reader racing a split. *)
let find_parent pm ~actor ~start ~child_page =
  let bound = Pmem.total_pages pm in
  let rec go page steps =
    if page = 0 || steps > bound then Error "index parent not found"
    else
      match read_node pm ~actor page with
      | Error _ as e -> e
      | Ok n ->
        if Array.exists (fun (_, _, c) -> c = child_page) n.Layout.dn_entries then Ok (page, n)
        else go n.Layout.dn_right (steps + 1)
  in
  go start 0

let insert ?stats pm ~actor ~alloc ~free ~root ~hash ~addr =
  (match stats with Some s -> Stats.incr s "verify.dindex.descents" | None -> ());
  let cap = capacity () in
  if root = 0 then
    match alloc () with
    | None -> Error `Nospace
    | Some pg ->
      write_node pm ~actor pg
        {
          Layout.dn_level = 0;
          dn_right = 0;
          dn_high_hash = fst max_key;
          dn_high_addr = snd max_key;
          dn_entries = [| (hash, addr, 0) |];
        };
      Ok (pg, [ pg ])
  else begin
    let bound = Pmem.total_pages pm in
    let key = (hash, addr) in
    (* Descend, recording the path of internal pages. *)
    let rec descend page path steps =
      if steps > bound then Error (`Damaged "index descent too deep (cycle?)")
      else
        match read_node pm ~actor page with
        | Error e -> Error (`Damaged e)
        | Ok n ->
          if key >= high_of n && n.Layout.dn_right <> 0 then
            descend n.Layout.dn_right path (steps + 1)
          else if n.Layout.dn_level = 0 then Ok (page, n, path)
          else (
            match route n key with
            | Some child -> descend child (page :: path) (steps + 1)
            | None -> Error (`Damaged "index node has no covering child"))
    in
    match descend root [] 0 with
    | Error _ as e -> e
    | Ok (leaf_page, leaf, path) -> (
      match sorted_insert leaf.Layout.dn_entries (hash, addr, 0) with
      | None -> Ok (root, []) (* exact (hash, addr) already indexed *)
      | Some entries when Array.length entries <= cap ->
        write_node pm ~actor leaf_page { leaf with Layout.dn_entries = entries };
        Ok (root, [])
      | Some entries ->
        (* Overflow: pre-allocate every page the worst case needs (one
           per level plus a new root) so a full device fails cleanly
           before any write. *)
        let want = List.length path + 2 in
        let fresh = ref [] in
        let ok = ref true in
        for _ = 1 to want do
          if !ok then
            match alloc () with
            | Some pg -> fresh := pg :: !fresh
            | None -> ok := false
        done;
        if not !ok then begin
          List.iter free !fresh;
          Error `Nospace
        end
        else begin
          (match stats with Some s -> Stats.incr s "verify.dindex.splits" | None -> ());
          let pool = ref !fresh in
          let take () =
            match !pool with
            | pg :: rest ->
              pool := rest;
              pg
            | [] -> assert false
          in
          (* Split [node] (already holding its overflowing entry set):
             write the right half to a fresh page, rewrite the node,
             return the separator to push up. *)
          let split node_page (node : Layout.dnode) entries =
            let len = Array.length entries in
            let k = len / 2 in
            let left_entries = Array.sub entries 0 k in
            let right_entries = Array.sub entries k (len - k) in
            let sep =
              if node.Layout.dn_level = 0 then
                let h, a, _ = right_entries.(0) in
                (h, a)
              else
                let h, a, _ = left_entries.(k - 1) in
                (h, a)
            in
            let right_page = take () in
            write_node pm ~actor right_page
              {
                node with
                Layout.dn_right = node.Layout.dn_right;
                dn_high_hash = node.Layout.dn_high_hash;
                dn_high_addr = node.Layout.dn_high_addr;
                dn_entries = right_entries;
              };
            write_node pm ~actor node_page
              {
                node with
                Layout.dn_right = right_page;
                dn_high_hash = fst sep;
                dn_high_addr = snd sep;
                dn_entries = left_entries;
              };
            (sep, right_page)
          in
          (* Propagate the split up the recorded path. *)
          let rec propagate child_page (sep, right_page) path level =
            match path with
            | [] ->
              (* root split: fresh root referencing both halves *)
              let new_root = take () in
              write_node pm ~actor new_root
                {
                  Layout.dn_level = level + 1;
                  dn_right = 0;
                  dn_high_hash = fst max_key;
                  dn_high_addr = snd max_key;
                  dn_entries =
                    [| (fst sep, snd sep, child_page); (fst max_key, snd max_key, right_page) |];
                };
              Ok new_root
            | parent_start :: rest -> (
              match find_parent pm ~actor ~start:parent_start ~child_page with
              | Error e -> Error (`Damaged e)
              | Ok (parent_page, parent) ->
                (* the child's old entry now names the right half; a new
                   entry at the separator keeps naming the left half *)
                let updated =
                  Array.map
                    (fun (h, a, c) -> if c = child_page then (h, a, right_page) else (h, a, c))
                    parent.Layout.dn_entries
                in
                let entries =
                  match sorted_insert updated (fst sep, snd sep, child_page) with
                  | Some e -> e
                  | None -> updated (* separator collides: tree is damaged *)
                in
                if Array.length entries <= cap then begin
                  write_node pm ~actor parent_page { parent with Layout.dn_entries = entries };
                  Ok root
                end
                else
                  let psep = split parent_page parent entries in
                  propagate parent_page psep rest (parent.Layout.dn_level))
          in
          let leaf_sep = split leaf_page leaf entries in
          match propagate leaf_page leaf_sep path 0 with
          | Error _ as e -> e
          | Ok new_root ->
            let unused = !pool in
            List.iter free unused;
            let used = List.filter (fun pg -> not (List.mem pg unused)) !fresh in
            Ok (new_root, used)
        end)
  end

(* ------------------------------------------------------------------ *)
(* Delete *)

(* Remove the exact (hash, addr) entry.  No node merging: an underfull
   (even empty) leaf is tolerated — rebuilds re-pack the tree.  Absent
   entries are fine (idempotent, used by crash reconciliation). *)
let delete pm ~actor ~root ~hash ~addr =
  if root = 0 then Ok ()
  else begin
    let bound = Pmem.total_pages pm in
    let key = (hash, addr) in
    let rec descend page steps =
      if steps > bound then Error "index descent too deep (cycle?)"
      else
        match read_node pm ~actor page with
        | Error _ as e -> e
        | Ok n ->
          if key >= high_of n && n.Layout.dn_right <> 0 then descend n.Layout.dn_right (steps + 1)
          else if n.Layout.dn_level = 0 then begin
            let keep = Array.exists (fun (h, a, _) -> (h, a) = key) n.Layout.dn_entries in
            if keep then
              write_node pm ~actor page
                {
                  n with
                  Layout.dn_entries =
                    Array.of_list
                      (List.filter
                         (fun (h, a, _) -> (h, a) <> key)
                         (Array.to_list n.Layout.dn_entries));
                };
            Ok ()
          end
          else (
            match route n key with
            | Some child -> descend child (steps + 1)
            | None -> Error "index node has no covering child")
    in
    descend root 0
  end

(* ------------------------------------------------------------------ *)
(* Ordered range scan *)

(* Fold [f] over every leaf entry in (hash, addr) key order — the
   documented stable readdir order.  Cost is one node read per leaf,
   not one dentry probe per entry. *)
let fold ?fetch ?stats pm ~actor ~root ~init ~f =
  (match stats with Some s -> Stats.incr s "verify.dindex.range_scans" | None -> ());
  if root = 0 then Ok init
  else begin
    let bound = Pmem.total_pages pm in
    let rec leftmost page steps =
      if steps > bound then Error "index descent too deep (cycle?)"
      else
        match read_node ?fetch pm ~actor page with
        | Error _ as e -> e
        | Ok n ->
          if n.Layout.dn_level = 0 then Ok page
          else (
            match n.Layout.dn_entries with
            | [||] -> Error "index node has no covering child"
            | es ->
              let _, _, child = es.(0) in
              leftmost child (steps + 1))
    in
    let rec scan page acc steps =
      if page = 0 then Ok acc
      else if steps > bound then Error "index chain too long (cycle?)"
      else
        match read_node ?fetch pm ~actor page with
        | Error _ as e -> e
        | Ok n ->
          let acc =
            Array.fold_left (fun acc (h, a, _) -> f acc ~hash:h ~addr:a) acc n.Layout.dn_entries
          in
          scan n.Layout.dn_right acc (steps + 1)
    in
    match leftmost root 0 with Error _ as e -> e | Ok leaf -> scan leaf init 0
  end

(* ------------------------------------------------------------------ *)
(* Whole-tree page collection *)

(* Every page reachable from [root] (children and right siblings),
   cycle-safe and total: damaged nodes contribute their own page (it is
   still attributed to the directory) but no children.  This is what
   the controller uses for page attribution, checkpointing and frees. *)
let pages ?fetch pm ~actor ~root =
  if root = 0 then []
  else begin
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let rec visit page =
      if
        page <> 0
        && page > Layout.root_dentry_page
        && page < Pmem.total_pages pm
        && not (Hashtbl.mem seen page)
      then begin
        Hashtbl.replace seen page ();
        acc := page :: !acc;
        match read_node ?fetch pm ~actor page with
        | Error _ -> ()
        | Ok n ->
          if n.Layout.dn_level > 0 then
            Array.iter (fun (_, _, child) -> visit child) n.Layout.dn_entries;
          visit n.Layout.dn_right
      end
    in
    visit root;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* Bulk build / rebuild *)

(* Build a fresh tree over [entries] (any order, duplicates collapsed).
   Used by mount-time recovery, the scan fallback and the kernel
   scrubber's rebuild — the tree an index rebuild produces is always
   structurally perfect.  Returns (root, pages used); an empty entry
   set builds no tree (root 0). *)
let build ?stats pm ~actor ~alloc ~free ~entries =
  ignore stats;
  let cap = capacity () in
  let entries =
    List.sort_uniq compare (List.map (fun (h, a) -> (h, a)) entries)
  in
  if entries = [] then Ok (0, [])
  else begin
    let used = ref [] in
    let failed = ref false in
    let take () =
      if !failed then None
      else
        match alloc () with
        | Some pg ->
          used := pg :: !used;
          Some pg
        | None ->
          failed := true;
          None
    in
    (* chunk [xs] into groups of at most [cap] *)
    let chunk xs =
      let rec go acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | x :: rest ->
          if n = cap then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (n + 1) rest
      in
      go [] [] 0 xs
    in
    (* leaves: high key = first key of the next leaf *)
    let leaf_groups = chunk entries in
    let rec mk_leaves groups =
      match groups with
      | [] -> Some []
      | g :: rest -> (
        match take () with
        | None -> None
        | Some pg -> (
          match mk_leaves rest with
          | None -> None
          | Some tail ->
            let high = match tail with (_, first_key, _) :: _ -> first_key | [] -> max_key in
            let right = match tail with (rpg, _, _) :: _ -> rpg | [] -> 0 in
            let first_key = match g with k :: _ -> k | [] -> max_key in
            write_node pm ~actor pg
              {
                Layout.dn_level = 0;
                dn_right = right;
                dn_high_hash = fst high;
                dn_high_addr = snd high;
                dn_entries = Array.of_list (List.map (fun (h, a) -> (h, a, 0)) g);
              };
            Some ((pg, first_key, high) :: tail)))
    in
    (* internal levels: entry = (child high, child page) *)
    let rec mk_level level nodes =
      (* nodes: (page, first_key, high) in order *)
      match nodes with
      | None -> None
      | Some [ (pg, _, _) ] -> Some pg
      | Some ns -> (
        let groups = chunk ns in
        let rec mk_parents groups =
          match groups with
          | [] -> Some []
          | g :: rest -> (
            match take () with
            | None -> None
            | Some pg -> (
              match mk_parents rest with
              | None -> None
              | Some tail ->
                let right = match tail with (rpg, _, _) :: _ -> rpg | [] -> 0 in
                let entries =
                  Array.of_list (List.map (fun (cpg, _, (hh, ha)) -> (hh, ha, cpg)) g)
                in
                let high =
                  match g with
                  | [] -> max_key
                  | _ ->
                    let _, _, h = List.nth g (List.length g - 1) in
                    h
                in
                let first_key =
                  match g with (_, fk, _) :: _ -> fk | [] -> max_key
                in
                write_node pm ~actor pg
                  {
                    Layout.dn_level = level;
                    dn_right = right;
                    dn_high_hash = fst high;
                    dn_high_addr = snd high;
                    dn_entries = entries;
                  };
                Some ((pg, first_key, high) :: tail)))
        in
        match mk_parents groups with None -> None | Some parents -> mk_level (level + 1) (Some parents))
    in
    match mk_level 1 (Some (Option.value (mk_leaves leaf_groups) ~default:[])) with
    | Some root when not !failed -> Ok (root, List.rev !used)
    | _ ->
      List.iter free !used;
      Error `Nospace
  end

(* ------------------------------------------------------------------ *)
(* Structural audit (verifier invariant I5) *)

type audit = {
  au_pages : int list; (* every page visited, in walk order *)
  au_entries : (int * int) list; (* leaf (hash, addr) keys, in key order *)
  au_violations : string list;
}

(* Walk the whole tree, checking every structural invariant: node CRCs
   decode, entries strictly ascending, keys below the high key, an
   internal node's high equals its last separator, each separator
   equals its child's high key, sibling chains at every level agree
   with the parents' child sequences, levels decrease by one, and the
   root is rightmost-complete (no right sibling, high = top).  Returns
   the leaf entries for the agreement check against the dentry truth.

   Total and cycle-safe: damaged or revisited nodes become violations,
   never exceptions. *)
let audit ?fetch pm ~actor ~root =
  if root = 0 then { au_pages = []; au_entries = []; au_violations = [] }
  else begin
    let violations = ref [] in
    let pages = ref [] in
    let entries = ref [] in
    let seen = Hashtbl.create 16 in
    let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let read page =
      if Hashtbl.mem seen page then begin
        add "index node %d revisited (cycle)" page;
        None
      end
      else begin
        Hashtbl.replace seen page ();
        pages := page :: !pages;
        match read_node ?fetch pm ~actor page with
        | Error e ->
          add "%s" e;
          None
        | Ok n -> Some n
      end
    in
    (* read one level's sibling chain *)
    let chain start =
      let bound = Pmem.total_pages pm in
      let rec go acc page steps =
        if page = 0 then List.rev acc
        else if steps > bound then begin
          add "index sibling chain too long (cycle?)";
          List.rev acc
        end
        else
          match read page with
          | None -> List.rev acc
          | Some n -> go ((page, n) :: acc) n.Layout.dn_right (steps + 1)
      in
      go [] start 0
    in
    let check_node expected_level (page, (n : Layout.dnode)) =
      if n.Layout.dn_level <> expected_level then
        add "index node %d: level %d, expected %d" page n.Layout.dn_level expected_level;
      let len = Array.length n.Layout.dn_entries in
      let high = high_of n in
      for i = 0 to len - 1 do
        let h, a, _ = n.Layout.dn_entries.(i) in
        if i > 0 then begin
          let ph, pa, _ = n.Layout.dn_entries.(i - 1) in
          if (ph, pa) >= (h, a) then add "index node %d: entries out of order at %d" page i
        end;
        if (h, a) >= high && not (expected_level > 0 && i = len - 1) then
          add "index node %d: key (%d, %d) above the high key" page h a
      done;
      if expected_level > 0 then begin
        if len = 0 then add "index node %d: empty internal node" page
        else begin
          let h, a, _ = n.Layout.dn_entries.(len - 1) in
          if (h, a) <> high then add "index node %d: high key is not the last separator" page
        end
      end
    in
    let rec down start expected_level =
      (* returns the chain's pages in order, for the parent check *)
      let nodes = chain start in
      List.iter (check_node expected_level) nodes;
      (* sibling highs strictly ascend; the rightmost high is the top *)
      let rec seams = function
        | (pga, na) :: ((_, nb) :: _ as rest) ->
          if high_of na > high_of nb then add "index node %d: high key above its right sibling's" pga;
          (match nb.Layout.dn_entries with
          | [||] -> ()
          | es ->
            let h, a, _ = es.(0) in
            if (h, a) < high_of na then add "index node %d: right sibling starts below the seam" pga);
          seams rest
        | [ (pg, n) ] -> if high_of n <> max_key then add "index node %d: rightmost high key is not the top" pg
        | [] -> ()
      in
      seams nodes;
      if expected_level = 0 then
        List.iter
          (fun (_, n) ->
            Array.iter (fun (h, a, _) -> entries := (h, a) :: !entries) n.Layout.dn_entries)
          nodes
      else begin
        (* each separator must equal its child's high key; the child
           chain of the next level must be exactly the concatenated
           child pointers *)
        let children =
          List.concat_map
            (fun (_, n) ->
              Array.to_list n.Layout.dn_entries |> List.map (fun (h, a, c) -> ((h, a), c)))
            nodes
        in
        match children with
        | [] -> ()
        | (_, first) :: _ ->
          let child_chain = down first (expected_level - 1) in
          if child_chain <> List.map snd children then
            add "index level %d sibling chain disagrees with its parents" (expected_level - 1)
      end;
      List.map fst nodes
    in
    (match read root with
    | None -> ()
    | Some rn ->
      if rn.Layout.dn_right <> 0 then add "index root %d has a right sibling" root;
      if high_of rn <> max_key then add "index root %d: high key is not the top" root;
      Hashtbl.remove seen root;
      pages := [];
      ignore (down root rn.Layout.dn_level));
    { au_pages = List.rev !pages; au_entries = List.rev !entries; au_violations = List.rev !violations }
  end
