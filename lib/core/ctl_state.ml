(* Shared state of the kernel access controller.

   The controller was decomposed into focused submodules (allocation,
   checkpointing, process registry, media repair, verification gate);
   this module owns what every one of them needs: the record types, the
   constructor, the verifier view, and the cold-start rebuild.  The
   public API is re-exported by the {!Controller} facade — nothing
   outside [lib/core] links against [Ctl_*] directly. *)

module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Extent_alloc = Trio_util.Extent_alloc
open Fs_types

type page_owner = Verifier.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Verifier.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = {
  ck_dentry : Bytes.t; (* snapshot of the file's dentry block *)
  ck_pages : (int * Bytes.t) list; (* metadata pages: index (+ data for dirs) *)
  ck_children : int list; (* dir only: live child inos *)
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;
      (* MMU write-set mark at snapshot time: a page unchanged since
         this mark still matches its snapshot bytes bit for bit, which
         is what lets incremental verification serve it from DRAM *)
}

(* Health of a file after media damage (see {!Scrub}): [Degraded_ro]
   files reject writes with EROFS but stay readable where the media
   allows; [Failed] files reject all mapping with EIO. *)
type degradation = Healthy | Degraded_ro | Failed

type file_info = {
  f_ino : int;
  mutable f_dentry_addr : int;
  mutable f_parent : int; (* parent directory ino; root points to itself *)
  mutable f_ftype : ftype;
  mutable f_index_pages : int list;
  mutable f_data_pages : int list;
  mutable f_readers : (int, unit) Hashtbl.t; (* proc -> () *)
  mutable f_writer : int option;
  mutable f_lease_expire : float;
  mutable f_checkpoint : checkpoint option;
  mutable f_waiters : Sched.waker Queue.t;
  mutable f_quarantined_for : int option; (* corrupt: only this proc may map *)
  mutable f_degraded : degradation;
  mutable f_unverified : int option;
      (* last writer died/wedged before verification: the next map_file
         must pass the verifier gate (as this proc) before any grant *)
  mutable f_pending : int option;
      (* queued for background verification on behalf of this proc
         (set by unmap, cleared when a verifier fiber claims the file) *)
  mutable f_verifying : bool; (* a verifier fiber is checking it right now *)
}

type proc_info = {
  p_id : int;
  p_cred : cred;
  p_group : int;
  mutable p_fix : (int -> bool) option; (* LibFS corruption-fix callback *)
  mutable p_recovery : (unit -> unit) option; (* LibFS crash-recovery program *)
  mutable p_pages : (int, unit) Hashtbl.t; (* pages Allocated_to this proc *)
  mutable p_inos : (int, unit) Hashtbl.t; (* inos Ino_allocated_to this proc *)
  mutable p_mapped : (int, unit) Hashtbl.t; (* inos this proc has mapped *)
  mutable p_last_heartbeat : float; (* virtual time of the last syscall *)
  mutable p_dead : bool; (* abnormally torn down by the watchdog *)
}

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  topo : Numa.t;
  lease_ns : float;
  node_allocs : Extent_alloc.t array;
  mutable next_ino : int;
  page_owner : (int, page_owner) Hashtbl.t; (* absent = Free *)
  ino_owner : (int, ino_owner) Hashtbl.t;
  shadow : (int, Verifier.shadow) Hashtbl.t;
  files : (int, file_info) Hashtbl.t;
  procs : (int, proc_info) Hashtbl.t;
  stats : Stats.t;
  mutable corruption_events : (int * int * Verifier.violation list) list;
      (* (proc, ino, violations) log, most recent first *)
  mutable quarantine : (int * int) list; (* (proc, quarantine ino) *)
  mutable badblocks : int list;
      (* pages retired by the scrubber: never returned to the allocator.
         Soft state — lost on cold_start (a real deployment would log
         them durably; see DESIGN.md §4.11). *)
  verify_q : int Queue.t; (* inos awaiting background verification *)
  vq_idle : Sched.waker Queue.t; (* parked verifier fibers *)
  mutable verify_hook : (ino:int -> incremental:bool -> dur:float -> ok:bool -> unit) option;
      (* observability tap (Vfs trace ring): fired after each check *)
}

(* Global verification-mode switch (differential testing flips it):
   [Incremental] serves provably clean pages from delta checkpoints,
   [Full] always walks the device. *)
type vmode = Full | Incremental

let verify_mode = ref Incremental
let set_verify_mode m = verify_mode := m
let current_verify_mode () = !verify_mode

let page_size = Layout.page_size

let owner_of t page = Option.value (Hashtbl.find_opt t.page_owner page) ~default:Free

let ino_owner_of t ino = Option.value (Hashtbl.find_opt t.ino_owner ino) ~default:Ino_free

(* The one place file_info records are built: four call sites used to
   repeat this literal and two of them missed field updates over time. *)
let new_file ~ino ~dentry_addr ~parent ~ftype ?(index_pages = []) ?(data_pages = []) () =
  {
    f_ino = ino;
    f_dentry_addr = dentry_addr;
    f_parent = parent;
    f_ftype = ftype;
    f_index_pages = index_pages;
    f_data_pages = data_pages;
    f_readers = Hashtbl.create 4;
    f_writer = None;
    f_lease_expire = 0.0;
    f_checkpoint = None;
    f_waiters = Queue.create ();
    f_quarantined_for = None;
    f_degraded = Healthy;
    f_unverified = None;
    f_pending = None;
    f_verifying = false;
  }

let make_node_allocs topo ~pages_per_node =
  Array.init (Numa.nodes topo) (fun n ->
      (* Node 0 loses its first pages to the superblock and the root
         dentry page. *)
      if n = 0 then Extent_alloc.create ~start:2 ~len:(pages_per_node - 2)
      else Extent_alloc.create ~start:(n * pages_per_node) ~len:pages_per_node)

let make ~sched ~pmem ~mmu ~lease_ns =
  let topo = Pmem.topo pmem in
  {
    sched;
    pmem;
    mmu;
    topo;
    lease_ns;
    node_allocs = make_node_allocs topo ~pages_per_node:(Pmem.pages_per_node pmem);
    next_ino = Layout.root_ino + 1;
    page_owner = Hashtbl.create 4096;
    ino_owner = Hashtbl.create 1024;
    shadow = Hashtbl.create 1024;
    files = Hashtbl.create 1024;
    procs = Hashtbl.create 16;
    stats = Stats.create ();
    corruption_events = [];
    quarantine = [];
    badblocks = [];
    verify_q = Queue.create ();
    vq_idle = Queue.create ();
    verify_hook = None;
  }

let create ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  let t = make ~sched ~pmem ~mmu ~lease_ns in
  Layout.mkfs pmem ~total_pages:(Pmem.total_pages pmem);
  Hashtbl.replace t.page_owner 0 (In_file Layout.root_ino);
  Hashtbl.replace t.page_owner Layout.root_dentry_page (In_file Layout.root_ino);
  Hashtbl.replace t.ino_owner Layout.root_ino (Ino_in_dir Layout.root_ino);
  Hashtbl.replace t.shadow Layout.root_ino
    { Verifier.s_ftype = Dir; s_mode = 0o777; s_uid = 0; s_gid = 0 };
  Hashtbl.replace t.files Layout.root_ino
    (new_file ~ino:Layout.root_ino ~dentry_addr:Layout.root_dentry_addr ~parent:Layout.root_ino
       ~ftype:Dir ());
  t

let proc_info t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Controller: unregistered process %d" proc)

(* Every syscall doubles as a heartbeat: a process that stops making
   kernel calls is indistinguishable from one that died, which is
   exactly the signal the watchdog escalates on. *)
let touch t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p.p_last_heartbeat <- Sched.now t.sched
  | None -> ()

let group_of t proc = (proc_info t proc).p_group
let cred_of_proc t proc = (proc_info t proc).p_cred
let file_info t ino = Hashtbl.find_opt t.files ino
let shadow_of t ino = Hashtbl.find_opt t.shadow ino

(* ------------------------------------------------------------------ *)
(* Verifier view *)

let view t =
  {
    Verifier.pmem = t.pmem;
    total_pages = Pmem.total_pages t.pmem;
    page_owner = (fun pg -> owner_of t pg);
    ino_owner = (fun ino -> ino_owner_of t ino);
    shadow = (fun ino -> Hashtbl.find_opt t.shadow ino);
    checkpoint_children =
      (fun ino ->
        match Hashtbl.find_opt t.files ino with
        | Some { f_checkpoint = Some ck; _ } -> Some ck.ck_children
        | _ -> None);
    is_mapped_elsewhere =
      (fun ~ino ~proc ->
        match Hashtbl.find_opt t.files ino with
        | None -> false
        | Some f ->
          (match f.f_writer with Some w when w <> proc -> true | _ -> false)
          || Hashtbl.fold (fun r () acc -> acc || r <> proc) f.f_readers false);
    write_mapped_by_other =
      (fun ~ino ~proc ->
        match Hashtbl.find_opt t.files ino with
        | Some { f_writer = Some w; _ } -> w <> proc
        | _ -> false);
    pages_attributed_to =
      (fun ino ->
        match Hashtbl.find_opt t.files ino with
        | None -> []
        | Some f -> f.f_index_pages @ f.f_data_pages);
    dir_write_mapped_by =
      (fun ~dir ~proc ->
        match Hashtbl.find_opt t.files dir with
        | Some { f_writer = Some w; _ } -> w = proc
        | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let file_pages f = (f.f_dentry_addr / page_size) :: (f.f_index_pages @ f.f_data_pages)

(* Walk a file's on-NVM page tree with kernel reads.  Used at map time to
   find what to grant and at ingestion to attribute pages. *)
let walk_file t ~ino:_ ~dentry_addr =
  let actor = Pmem.kernel_actor in
  match Layout.read_dentry t.pmem ~actor ~addr:dentry_addr with
  | None | Some (Error _) -> None
  | Some (Ok (inode, _name)) ->
    let index_pages = ref [] and data_pages = ref [] in
    let result =
      Layout.walk_index_chain t.pmem ~actor ~head:inode.Layout.index_head
        ~max_pages:(Pmem.total_pages t.pmem) (fun ~index_page ~entries ~next:_ ->
          index_pages := index_page :: !index_pages;
          Array.iter (fun e -> if e <> 0 then data_pages := e :: !data_pages) entries)
    in
    (match result with Ok () -> () | Error _ -> ());
    Some (inode, List.rev !index_pages, List.rev !data_pages)

(* Scan a directory data page for live entries; the controller refuses to
   free non-empty directory pages, which is what lets the verifier's I3
   deleted-directory check work (see DESIGN.md §4.4). *)
let dir_page_is_empty t pg =
  let b = Pmem.read t.pmem ~actor:Pmem.kernel_actor ~addr:(pg * page_size) ~len:page_size in
  let live = ref false in
  for slot = 0 to Layout.dentries_per_page - 1 do
    if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then live := true
  done;
  not !live

let wake_all f =
  while not (Queue.is_empty f.f_waiters) do
    (Queue.pop f.f_waiters) ()
  done

(* ------------------------------------------------------------------ *)
(* Cold start: rebuild the controller's global file system information
   — page/inode ownership, shadow inodes, file records, free-space
   allocators — purely from the core state on NVM.  This is the deepest
   consequence of the paper's state-separation insight: everything the
   trusted entities keep in DRAM is soft state (§3.2).

   Walks the whole tree from the root (an offline fsck-style pass) and
   returns [Error] on structural corruption. *)

let cold_start ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  match Layout.read_superblock pmem ~actor:Pmem.kernel_actor with
  | Error e -> Error ("cold_start: " ^ e)
  | Ok (total_pages, page_size', root_ino', root_addr) ->
    if total_pages <> Pmem.total_pages pmem || page_size' <> page_size then
      Error "cold_start: superblock geometry mismatch"
    else if root_ino' <> Layout.root_ino || root_addr <> Layout.root_dentry_addr then
      Error "cold_start: unexpected root location"
    else begin
      let t = make ~sched ~pmem ~mmu ~lease_ns in
      let pages_per_node = Pmem.pages_per_node pmem in
      Hashtbl.replace t.page_owner 0 (In_file Layout.root_ino);
      Hashtbl.replace t.page_owner Layout.root_dentry_page (In_file Layout.root_ino);
      let claim_page pg owner =
        if pg <= Layout.root_dentry_page || pg >= total_pages then
          failwith (Printf.sprintf "cold_start: page %d out of range" pg)
        else if Hashtbl.mem t.page_owner pg then
          failwith (Printf.sprintf "cold_start: page %d doubly referenced" pg)
        else begin
          Hashtbl.replace t.page_owner pg owner;
          let node = pg / pages_per_node in
          Extent_alloc.alloc_at t.node_allocs.(node) pg 1
        end
      in
      let actor = Pmem.kernel_actor in
      (* Walk one file: claim its pages, register records, recurse into
         child directories. *)
      let rec ingest ~parent ~dentry_addr =
        match Layout.read_dentry pmem ~actor ~addr:dentry_addr with
        | None -> ()
        | Some (Error e) -> failwith ("cold_start: undecodable dentry: " ^ e)
        | Some (Ok (inode, _name)) ->
          let ino = inode.Layout.ino in
          if Hashtbl.mem t.ino_owner ino then
            failwith (Printf.sprintf "cold_start: inode %d appears twice" ino);
          Hashtbl.replace t.ino_owner ino (Ino_in_dir parent);
          Hashtbl.replace t.shadow ino
            {
              Verifier.s_ftype = inode.Layout.ftype;
              s_mode = inode.Layout.mode land 0o7777;
              s_uid = inode.Layout.uid;
              s_gid = inode.Layout.gid;
            };
          if ino >= t.next_ino then t.next_ino <- ino + 1;
          let index_pages = ref [] and data_pages = ref [] in
          (match
             Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
               ~max_pages:total_pages (fun ~index_page ~entries ~next:_ ->
                 claim_page index_page (In_file ino);
                 index_pages := index_page :: !index_pages;
                 Array.iter
                   (fun e ->
                     if e <> 0 then begin
                       claim_page e (In_file ino);
                       data_pages := e :: !data_pages
                     end)
                   entries)
           with
          | Ok () -> ()
          | Error e -> failwith ("cold_start: " ^ e));
          Hashtbl.replace t.files ino
            (new_file ~ino ~dentry_addr ~parent ~ftype:inode.Layout.ftype
               ~index_pages:(List.rev !index_pages) ~data_pages:(List.rev !data_pages) ());
          if inode.Layout.ftype = Dir then
            List.iter
              (fun pg ->
                let b = Pmem.read pmem ~actor ~addr:(pg * page_size) ~len:page_size in
                for slot = 0 to Layout.dentries_per_page - 1 do
                  if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then
                    ingest ~parent:ino ~dentry_addr:(Layout.dentry_slot_addr pg slot)
                done)
              (List.rev !data_pages)
      in
      match ingest ~parent:Layout.root_ino ~dentry_addr:Layout.root_dentry_addr with
      | () -> Ok t
      | exception Failure msg -> Error msg
    end
