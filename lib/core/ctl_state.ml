(* Shared state of the kernel access controller.

   The controller was decomposed into focused submodules (allocation,
   checkpointing, process registry, media repair, verification gate);
   this module owns what every one of them needs: the record types, the
   constructor, the verifier view, and the cold-start rebuild.  The
   public API is re-exported by the {!Controller} facade — nothing
   outside [lib/core] links against [Ctl_*] directly. *)

module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Extent_alloc = Trio_util.Extent_alloc
open Fs_types

type page_owner = Verifier.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Verifier.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = {
  ck_dentry : Bytes.t; (* snapshot of the file's dentry block *)
  ck_pages : (int * Bytes.t) list; (* metadata pages: index (+ data for dirs) *)
  ck_children : int list; (* dir only: live child inos *)
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;
      (* MMU write-set mark at snapshot time: a page unchanged since
         this mark still matches its snapshot bytes bit for bit, which
         is what lets incremental verification serve it from DRAM *)
}

(* Health of a file after media damage (see {!Scrub}): [Degraded_ro]
   files reject writes with EROFS but stay readable where the media
   allows; [Failed] files reject all mapping with EIO. *)
type degradation = Healthy | Degraded_ro | Failed

type file_info = {
  f_ino : int;
  mutable f_dentry_addr : int;
  mutable f_parent : int; (* parent directory ino; root points to itself *)
  mutable f_ftype : ftype;
  mutable f_index_pages : int list;
  mutable f_data_pages : int list;
  mutable f_dindex_pages : int list; (* dir only: B-link index nodes (§4.18) *)
  mutable f_readers : (int, unit) Hashtbl.t; (* proc -> () *)
  mutable f_writer : int option;
  mutable f_lease_expire : float;
  mutable f_checkpoint : checkpoint option;
  mutable f_waiters : Sched.waker Queue.t;
  mutable f_quarantined_for : int option; (* corrupt: only this proc may map *)
  mutable f_degraded : degradation;
  mutable f_unverified : int option;
      (* last writer died/wedged before verification: the next map_file
         must pass the verifier gate (as this proc) before any grant *)
  mutable f_pending : int option;
      (* queued for background verification on behalf of this proc
         (set by unmap, cleared when a verifier fiber claims the file) *)
  mutable f_verifying : bool; (* a verifier fiber is checking it right now *)
}

type proc_info = {
  p_id : int;
  p_cred : cred;
  p_group : int;
  mutable p_fix : (int -> bool) option; (* LibFS corruption-fix callback *)
  mutable p_recovery : (unit -> unit) option; (* LibFS crash-recovery program *)
  mutable p_pages : (int, unit) Hashtbl.t; (* pages Allocated_to this proc *)
  mutable p_inos : (int, unit) Hashtbl.t; (* inos Ino_allocated_to this proc *)
  mutable p_mapped : (int, unit) Hashtbl.t; (* inos this proc has mapped *)
  mutable p_last_heartbeat : float; (* virtual time of the last syscall *)
  mutable p_dead : bool; (* abnormally torn down by the watchdog *)
}

(* One controller shard: one NUMA socket's slice of every hot table
   (DESIGN.md §4.14).  Pages live on the shard of their backing node;
   inos on the shard [Ctl_shard.shard_of_ino] maps them to.  Each shard
   also runs its own verifier fibers against its own queue, so a busy
   socket's verification backlog never stalls another socket's. *)
type shard = {
  sh_id : int;
  sh_page_owner : (int, page_owner) Hashtbl.t; (* absent = Free *)
  sh_ino_owner : (int, ino_owner) Hashtbl.t;
  sh_shadow : (int, Verifier.shadow) Hashtbl.t;
  sh_files : (int, file_info) Hashtbl.t;
  sh_verify_q : int Queue.t; (* inos awaiting background verification *)
  sh_vq_idle : Sched.waker Queue.t; (* parked verifier fibers of this shard *)
  mutable sh_enqueued : int; (* verifications ever queued here *)
  sh_ring_q : int Queue.t; (* procs whose ring has pending entries *)
  sh_rq_idle : Sched.waker Queue.t; (* parked ring-drain fibers *)
  mutable sh_ring_fibers : int; (* drain fibers spawned on this shard *)
  mutable sh_ring_batches : int; (* batches drained here *)
  mutable sh_ring_ops : int; (* ring ops executed here *)
  mutable sh_ring_fused : int; (* unmap+remap pairs annihilated in-batch *)
  sh_ring_hist : int array;
      (* drained-batch size histogram, log buckets:
         1, 2, <=4, <=8, <=16, <=32, <=64, >64 *)
  mutable sh_ring_wakes : int; (* doorbell wakes into this shard *)
}

(* Per-node page pool layered over the global reserve ({!Extent_alloc}):
   allocation takes from the pool and batch-refills from the reserve;
   frees return to the pool and batch-drain above the high-water mark.
   The pool holds *unowned* pages — they are free space, just staged
   close to the socket that will hand them out next. *)
type page_pool = {
  pp_node : int;
  mutable pp_pages : int list;
  mutable pp_len : int;
  mutable pp_refills : int; (* batched refills from the reserve *)
  mutable pp_drains : int; (* batched drains back to the reserve *)
  mutable pp_jitter : int;
      (* LCG state desynchronizing the refill backoff across sockets:
         without it, shards probing a fragmented reserve halve their
         asks in lockstep and stampede the same extent sizes *)
}

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  topo : Numa.t;
  lease_ns : float;
  node_allocs : Extent_alloc.t array;
      (* the global reserve: one extent allocator per node, refilling
         and draining the per-node pools in batches *)
  pools : page_pool array; (* one per node, same indexing as node_allocs *)
  shards : shard array; (* one per NUMA socket *)
  locks : Ctl_shard.plane;
  pages_per_node : int;
  mutable pool_refill_batch : int; (* pages pulled per reserve refill *)
  mutable pool_high_water : int; (* pool length that triggers a drain *)
  mutable next_ino : int;
  mutable pending_verifications : int;
      (* handoffs enqueued or in flight in the verification pipeline *)
  mutable unverified_files : int; (* files parked at the verifier gate *)
  mutable deferred_deletes : (int * int * int) list;
      (* (proc, parent ino, child ino): children whose dentries vanished
         from a verified directory while the pipeline was still hot.  An
         in-flight cross-directory rename looks exactly like a delete
         from the source side, so reclamation waits for pipeline idle;
         see Ctl_gate.reclaim_deferred *)
  procs : (int, proc_info) Hashtbl.t;
  stats : Stats.t;
  mutable corruption_events : (int * int * Verifier.violation list) list;
      (* (proc, ino, violations) log, most recent first *)
  mutable quarantine : (int * int) list; (* (proc, quarantine ino) *)
  mutable badblocks : int list;
      (* pages retired by the scrubber: never returned to the allocator.
         Soft state — lost on cold_start (a real deployment would log
         them durably; see DESIGN.md §4.11). *)
  mutable verify_hook : (ino:int -> incremental:bool -> dur:float -> ok:bool -> unit) option;
      (* observability tap (Vfs trace ring): fired after each check *)
  rings : (int, Ctl_ring.t) Hashtbl.t;
      (* proc -> its submission/completion ring; closed rings stay in
         the table so late posts and stats still resolve *)
  mutable ring_paused : bool;
      (* test hook: a paused drain plane parks instead of consuming,
         which is how the dead-consumer/full-ring scenario is staged *)
  mutable ring_hook : (shard:int -> batch:int -> depth:int -> unit) option;
      (* observability tap (Vfs counters): fired per drained batch *)
  snap_pinned : (int, unit) Hashtbl.t;
      (* payload-chain pages of the current durable snapshot root:
         taken from the pools but owned by the snapshot plane (owner
         stays Free, invisible to the GC sweep), pinned against reuse
         until the next root supersedes them.  The accounting invariant
         carries them as the snap_pinned term (DESIGN.md §4.16). *)
  mutable snap_epoch : int; (* newest published/adopted root; 0 = none *)
  mutable snap_slot : int; (* slot holding it (meaningful when epoch > 0) *)
  mutable snap_pages : int list; (* payload chain of the current root *)
  snap_restored : (int, unit) Hashtbl.t;
      (* inos rolled back to the durable root since mount: a LibFS
         recovery program must not replay journal records over them —
         that would resurrect the very state the verifier rejected *)
  qos : Ctl_qos.t;
      (* per-trust-group token buckets: admission control over
         syscalls, ring slots, verification and page draw
         (DESIGN.md §4.17) *)
}

(* Global verification-mode switch (differential testing flips it):
   [Incremental] serves provably clean pages from delta checkpoints,
   [Full] always walks the device. *)
type vmode = Full | Incremental

let verify_mode = ref Incremental
let set_verify_mode m = verify_mode := m
let current_verify_mode () = !verify_mode

let page_size = Layout.page_size

(* ------------------------------------------------------------------ *)
(* Shard routing.  Every access to the sharded tables goes through the
   accessors below; no submodule touches a shard's hashtable directly,
   which is what keeps the routing (and the lock discipline around it)
   in one place. *)

let shard_count t = Array.length t.shards
let shard_of_ino t ino = Ctl_shard.shard_of_ino ~shards:(shard_count t) ino
let ino_shard t ino = t.shards.(shard_of_ino t ino)
let node_of_page t pg = pg / t.pages_per_node mod shard_count t
let page_shard t pg = t.shards.(node_of_page t pg)
let with_ino_shard t ino f = Ctl_shard.with_lock t.locks ~shard:(shard_of_ino t ino) f

(* Ring drain routing: a process' ring is serviced by one socket's drain
   plane for its whole lifetime, so batch/park/wake counters attribute
   stably.  Process ids have no page locality, so a plain mod spreads
   them. *)
let ring_shard t proc = t.shards.(proc mod shard_count t)
let ring_find t proc = Hashtbl.find_opt t.rings proc

let with_ino_pair t ino1 ino2 f =
  Ctl_shard.with_pair t.locks ~a:(shard_of_ino t ino1) ~b:(shard_of_ino t ino2) f

let with_shards_of_inos t inos f =
  Ctl_shard.with_all t.locks ~shards:(List.map (shard_of_ino t) inos) f

let owner_of t page =
  Option.value (Hashtbl.find_opt (page_shard t page).sh_page_owner page) ~default:Free

let set_page_owner t page owner = Hashtbl.replace (page_shard t page).sh_page_owner page owner
let clear_page_owner t page = Hashtbl.remove (page_shard t page).sh_page_owner page

let ino_owner_of t ino =
  Option.value (Hashtbl.find_opt (ino_shard t ino).sh_ino_owner ino) ~default:Ino_free

let set_ino_owner t ino owner = Hashtbl.replace (ino_shard t ino).sh_ino_owner ino owner
let clear_ino_owner t ino = Hashtbl.remove (ino_shard t ino).sh_ino_owner ino

(* Snapshot fold over every shard's ino-owner table (GC sweep). *)
let fold_ino_owner t f acc =
  Array.fold_left
    (fun acc sh -> Hashtbl.fold f (Hashtbl.copy sh.sh_ino_owner) acc)
    acc t.shards

let file_find t ino = Hashtbl.find_opt (ino_shard t ino).sh_files ino
let set_file t ino f = Hashtbl.replace (ino_shard t ino).sh_files ino f
let remove_file t ino = Hashtbl.remove (ino_shard t ino).sh_files ino
let iter_files t f = Array.iter (fun sh -> Hashtbl.iter f sh.sh_files) t.shards

let fold_files t f acc =
  Array.fold_left (fun acc sh -> Hashtbl.fold f sh.sh_files acc) acc t.shards

(* Snapshot iteration: safe against concurrent removals by the body. *)
let iter_files_snapshot t f =
  Array.iter (fun sh -> Hashtbl.iter f (Hashtbl.copy sh.sh_files)) t.shards

let file_table_size t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_files) 0 t.shards

let shadow_find t ino = Hashtbl.find_opt (ino_shard t ino).sh_shadow ino
let shadow_mem t ino = Hashtbl.mem (ino_shard t ino).sh_shadow ino
let set_shadow t ino s = Hashtbl.replace (ino_shard t ino).sh_shadow ino s
let remove_shadow t ino = Hashtbl.remove (ino_shard t ino).sh_shadow ino

(* ------------------------------------------------------------------ *)
(* Per-node page pools *)

(* Pull up to [want] pages from the node's reserve into its pool,
   preferring one large extent and degrading geometrically under
   fragmentation.  Returns how many pages actually arrived. *)
let pool_refill t ~node ~want =
  let reserve = t.node_allocs.(node) in
  let pool = t.pools.(node) in
  let got = ref 0 in
  let ask = ref want in
  while !got < want && !ask > 0 do
    (match Extent_alloc.alloc reserve !ask with
    | start ->
      pool.pp_pages <- List.rev_append (List.init !ask (fun i -> start + i)) pool.pp_pages;
      pool.pp_len <- pool.pp_len + !ask;
      got := !got + !ask
    | exception Extent_alloc.Out_of_space ->
      (* Jittered geometric backoff: nudge the halved ask by -1/0/+1
         from the pool's LCG so shards probing the same fragmented
         reserve don't converge on identical extent sizes in lockstep.
         Strictly decreasing (<= ask - 1), so termination holds. *)
      pool.pp_jitter <- ((pool.pp_jitter * 1103515245) + 12345) land 0x3FFFFFFF;
      let j = ((pool.pp_jitter lsr 16) mod 3) - 1 in
      ask := max 0 (min (!ask - 1) ((!ask / 2) + j)));
    ask := min !ask (want - !got)
  done;
  if !got > 0 then pool.pp_refills <- pool.pp_refills + 1;
  !got

(* Take [count] pages from [node]'s pool, batch-refilling from the
   reserve when short.  [None] means pool and reserve are both dry —
   the caller decides about cross-node fallback. *)
let pool_take t ~node ~count =
  let pool = t.pools.(node) in
  if pool.pp_len < count then
    ignore (pool_refill t ~node ~want:(max (count - pool.pp_len) t.pool_refill_batch));
  if pool.pp_len < count then None
  else begin
    let rec take n acc =
      if n = 0 then acc
      else
        match pool.pp_pages with
        | pg :: rest ->
          pool.pp_pages <- rest;
          take (n - 1) (pg :: acc)
        | [] -> assert false
    in
    let pages = take count [] in
    pool.pp_len <- pool.pp_len - count;
    Some pages
  end

(* Batched drain: a pool past its high-water mark returns half to the
   reserve, so a free-heavy phase on one socket does not strand the
   whole device's free space in that socket's pool. *)
let pool_drain_excess t pool =
  if pool.pp_len > t.pool_high_water then begin
    let target = t.pool_high_water / 2 in
    while pool.pp_len > target do
      match pool.pp_pages with
      | pg :: rest ->
        pool.pp_pages <- rest;
        pool.pp_len <- pool.pp_len - 1;
        Extent_alloc.free t.node_allocs.(pool.pp_node) pg 1
      | [] -> assert false
    done;
    pool.pp_drains <- pool.pp_drains + 1
  end

(* Return a freed page to its node's pool. *)
let pool_put t pg =
  let pool = t.pools.(node_of_page t pg) in
  pool.pp_pages <- pg :: pool.pp_pages;
  pool.pp_len <- pool.pp_len + 1;
  pool_drain_excess t pool

let pooled_pages t = Array.fold_left (fun acc p -> acc + p.pp_len) 0 t.pools

(* Snapshot-plane bookkeeping (see {!Ctl_snapshot}). *)
let snap_pinned_mem t pg = Hashtbl.mem t.snap_pinned pg
let snap_pinned_count t = Hashtbl.length t.snap_pinned
let snapshot_epoch t = t.snap_epoch
let mark_snapshot_restored t ino = Hashtbl.replace t.snap_restored ino ()
let was_snapshot_restored t ino = Hashtbl.mem t.snap_restored ino

(* The one place file_info records are built: four call sites used to
   repeat this literal and two of them missed field updates over time. *)
let new_file ~ino ~dentry_addr ~parent ~ftype ?(index_pages = []) ?(data_pages = [])
    ?(dindex_pages = []) () =
  {
    f_ino = ino;
    f_dentry_addr = dentry_addr;
    f_parent = parent;
    f_ftype = ftype;
    f_index_pages = index_pages;
    f_data_pages = data_pages;
    f_dindex_pages = dindex_pages;
    f_readers = Hashtbl.create 4;
    f_writer = None;
    f_lease_expire = 0.0;
    f_checkpoint = None;
    f_waiters = Queue.create ();
    f_quarantined_for = None;
    f_degraded = Healthy;
    f_unverified = None;
    f_pending = None;
    f_verifying = false;
  }

let make_node_allocs topo ~pages_per_node =
  Array.init (Numa.nodes topo) (fun n ->
      (* Node 0 loses its first pages to the superblock and the root
         dentry page. *)
      if n = 0 then Extent_alloc.create ~start:2 ~len:(pages_per_node - 2)
      else Extent_alloc.create ~start:(n * pages_per_node) ~len:pages_per_node)

let make_shard id =
  {
    sh_id = id;
    sh_page_owner = Hashtbl.create 4096;
    sh_ino_owner = Hashtbl.create 1024;
    sh_shadow = Hashtbl.create 1024;
    sh_files = Hashtbl.create 1024;
    sh_verify_q = Queue.create ();
    sh_vq_idle = Queue.create ();
    sh_enqueued = 0;
    sh_ring_q = Queue.create ();
    sh_rq_idle = Queue.create ();
    sh_ring_fibers = 0;
    sh_ring_batches = 0;
    sh_ring_ops = 0;
    sh_ring_fused = 0;
    sh_ring_hist = Array.make 8 0;
    sh_ring_wakes = 0;
  }

let make ~sched ~pmem ~mmu ~lease_ns =
  let topo = Pmem.topo pmem in
  let nodes = Numa.nodes topo in
  {
    sched;
    pmem;
    mmu;
    topo;
    lease_ns;
    node_allocs = make_node_allocs topo ~pages_per_node:(Pmem.pages_per_node pmem);
    pools =
      Array.init nodes (fun n ->
          { pp_node = n; pp_pages = []; pp_len = 0; pp_refills = 0; pp_drains = 0;
            pp_jitter = ((n + 1) * 0x9E3779B9) land 0x3FFFFFFF });
    shards = Array.init nodes make_shard;
    locks = Ctl_shard.create_plane ();
    pages_per_node = Pmem.pages_per_node pmem;
    pool_refill_batch = 64;
    pool_high_water = 256;
    next_ino = Layout.root_ino + 1;
    pending_verifications = 0;
    unverified_files = 0;
    deferred_deletes = [];
    procs = Hashtbl.create 16;
    stats = Stats.create ();
    corruption_events = [];
    quarantine = [];
    badblocks = [];
    verify_hook = None;
    rings = Hashtbl.create 16;
    ring_paused = false;
    ring_hook = None;
    snap_pinned = Hashtbl.create 16;
    snap_epoch = 0;
    snap_slot = 0;
    snap_pages = [];
    snap_restored = Hashtbl.create 16;
    qos = Ctl_qos.create ();
  }

(* Test hook: shrink the batch/high-water so pool-pressure scenarios
   exercise refill and drain without filling a whole device. *)
let set_pool_limits t ~refill_batch ~high_water =
  if refill_batch < 1 || high_water < 0 then invalid_arg "set_pool_limits";
  t.pool_refill_batch <- refill_batch;
  t.pool_high_water <- high_water;
  Array.iter (fun p -> pool_drain_excess t p) t.pools

let create ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  let t = make ~sched ~pmem ~mmu ~lease_ns in
  Layout.mkfs pmem ~total_pages:(Pmem.total_pages pmem);
  set_page_owner t 0 (In_file Layout.root_ino);
  set_page_owner t Layout.root_dentry_page (In_file Layout.root_ino);
  set_ino_owner t Layout.root_ino (Ino_in_dir Layout.root_ino);
  set_shadow t Layout.root_ino { Verifier.s_ftype = Dir; s_mode = 0o777; s_uid = 0; s_gid = 0 };
  set_file t Layout.root_ino
    (new_file ~ino:Layout.root_ino ~dentry_addr:Layout.root_dentry_addr ~parent:Layout.root_ino
       ~ftype:Dir ());
  t

let proc_info t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Controller: unregistered process %d" proc)

(* Every syscall doubles as a heartbeat: a process that stops making
   kernel calls is indistinguishable from one that died, which is
   exactly the signal the watchdog escalates on. *)
let touch t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p.p_last_heartbeat <- Sched.now t.sched
  | None -> ()

let group_of t proc = (proc_info t proc).p_group
let cred_of_proc t proc = (proc_info t proc).p_cred
let file_info = file_find
let shadow_of = shadow_find

(* ------------------------------------------------------------------ *)
(* QoS plane (DESIGN.md §4.17).  Charges attribute to the process'
   trust group; unregistered processes (early mount, kernel fibers)
   charge nothing. *)

let qos t = t.qos

(* Longest single throttle delay/park: bounds the stall any one charge
   can cause, so a deeply overdrawn tenant pays in instalments rather
   than wedging a fiber (and a kill landing in the gap is observable
   sooner in the explorers). *)
let qos_max_penalty_ns = 2.0e6

let qos_charge t proc ?n kind =
  match Hashtbl.find_opt t.procs proc with
  | None -> ()
  | Some p -> Ctl_qos.charge t.qos ~group:p.p_group ~now:(Sched.now t.sched) ?n kind

(* Admission verdict for [proc]'s group: [Some deadline] when it is
   overdrawn (capped at [qos_max_penalty_ns] ahead). *)
let qos_admission t proc =
  match Hashtbl.find_opt t.procs proc with
  | None -> None
  | Some p ->
    let now = Sched.now t.sched in
    (match Ctl_qos.admission t.qos ~group:p.p_group ~now with
    | None -> None
    | Some deadline -> Some (Float.min deadline (now +. qos_max_penalty_ns)))

(* Synchronous-plane enforcement: delay (inside the caller's shield)
   until the tenant's balance recovers.  Only acquisition paths call
   this — release paths (unmap, free) are never delayed, since stalling
   a throttled tenant's releases would block honest waiters on whatever
   it still holds. *)
let qos_admit t proc =
  match qos_admission t proc with
  | None -> ()
  | Some deadline ->
    let now = Sched.now t.sched in
    let d = deadline -. now in
    if d > 0.0 then begin
      (match Hashtbl.find_opt t.procs proc with
      | Some p -> Ctl_qos.note_throttled t.qos ~group:p.p_group ~now ~ns:d
      | None -> ());
      Sched.delay d
    end

(* The standard acquisition-syscall preamble charge: one syscall unit,
   then admission. *)
let charge_syscall t proc =
  qos_charge t proc Ctl_qos.Syscall;
  qos_admit t proc

(* ------------------------------------------------------------------ *)
(* Pipeline temperature.  "Hot" means some verification verdict is still
   outstanding — queued, running, or parked at the unverified gate — so
   global conclusions ("this child was deleted, not moved") cannot be
   drawn yet.  The unverified marker is counted through these two
   helpers so the temperature check stays O(1). *)

let pipeline_hot t = t.pending_verifications > 0 || t.unverified_files > 0

let mark_unverified t (f : file_info) proc =
  if f.f_unverified = None then t.unverified_files <- t.unverified_files + 1;
  f.f_unverified <- Some proc

let drop_unverified t (f : file_info) =
  if f.f_unverified <> None then begin
    f.f_unverified <- None;
    t.unverified_files <- t.unverified_files - 1
  end

(* ------------------------------------------------------------------ *)
(* Verifier view *)

let view t =
  {
    Verifier.pmem = t.pmem;
    total_pages = Pmem.total_pages t.pmem;
    page_owner = (fun pg -> owner_of t pg);
    ino_owner = (fun ino -> ino_owner_of t ino);
    shadow = (fun ino -> shadow_find t ino);
    checkpoint_children =
      (fun ino ->
        match file_find t ino with
        | Some { f_checkpoint = Some ck; _ } -> Some ck.ck_children
        | _ -> None);
    is_mapped_elsewhere =
      (fun ~ino ~proc ->
        match file_find t ino with
        | None -> false
        | Some f ->
          (match f.f_writer with Some w when w <> proc -> true | _ -> false)
          || Hashtbl.fold (fun r () acc -> acc || r <> proc) f.f_readers false);
    write_mapped_by_other =
      (fun ~ino ~proc ->
        match file_find t ino with
        | Some { f_writer = Some w; _ } -> w <> proc
        | _ -> false);
    pages_attributed_to =
      (fun ino ->
        match file_find t ino with
        | None -> []
        | Some f -> f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages);
    rename_source_ok =
      (fun ~src ~ino ~proc ->
        (match file_find t src with
        | Some { f_writer = Some w; _ } when w = proc -> true
        | Some { f_pending = Some p; _ } when p = proc -> true
        | Some { f_verifying = true; _ } -> true
        | _ -> false)
        || List.exists
             (fun (p, parent, child) -> p = proc && parent = src && child = ino)
             t.deferred_deletes);
  }

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let file_pages f =
  (f.f_dentry_addr / page_size) :: (f.f_index_pages @ f.f_data_pages @ f.f_dindex_pages)

(* Walk a file's on-NVM page tree with kernel reads.  Used at map time to
   find what to grant and at ingestion to attribute pages. *)
let walk_file t ~ino:_ ~dentry_addr =
  let actor = Pmem.kernel_actor in
  match Layout.read_dentry t.pmem ~actor ~addr:dentry_addr with
  | None | Some (Error _) -> None
  | Some (Ok (inode, _name)) ->
    let index_pages = ref [] and data_pages = ref [] in
    let result =
      Layout.walk_index_chain t.pmem ~actor ~head:inode.Layout.index_head
        ~max_pages:(Pmem.total_pages t.pmem) (fun ~index_page ~entries ~next:_ ->
          index_pages := index_page :: !index_pages;
          Array.iter (fun e -> if e <> 0 then data_pages := e :: !data_pages) entries)
    in
    (match result with Ok () -> () | Error _ -> ());
    (* Directory B-link index: reachable from the root page stored in
       the dentry tail word.  [Dirindex.pages] is total, so a damaged
       tree still yields its reachable nodes for attribution. *)
    let dindex_pages =
      if inode.Layout.ftype = Dir then
        let root = Layout.read_dindex_root t.pmem ~actor ~dentry_addr in
        Dirindex.pages t.pmem ~actor ~root
      else []
    in
    Some (inode, List.rev !index_pages, List.rev !data_pages, dindex_pages)

(* Scan a directory data page for live entries; the controller refuses to
   free non-empty directory pages, which is what lets the verifier's I3
   deleted-directory check work (see DESIGN.md §4.4). *)
let dir_page_is_empty t pg =
  let b = Pmem.read t.pmem ~actor:Pmem.kernel_actor ~addr:(pg * page_size) ~len:page_size in
  let live = ref false in
  for slot = 0 to Layout.dentries_per_page - 1 do
    if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then live := true
  done;
  not !live

let wake_all f =
  while not (Queue.is_empty f.f_waiters) do
    (Queue.pop f.f_waiters) ()
  done

(* ------------------------------------------------------------------ *)
(* Cold start: rebuild the controller's global file system information
   — page/inode ownership, shadow inodes, file records, free-space
   allocators — purely from the core state on NVM.  This is the deepest
   consequence of the paper's state-separation insight: everything the
   trusted entities keep in DRAM is soft state (§3.2).

   Walks the whole tree from the root (an offline fsck-style pass) and
   returns [Error] on structural corruption. *)

let cold_start ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  match Layout.read_superblock pmem ~actor:Pmem.kernel_actor with
  | Error e -> Error ("cold_start: " ^ e)
  | Ok (total_pages, page_size', root_ino', root_addr) ->
    if total_pages <> Pmem.total_pages pmem || page_size' <> page_size then
      Error "cold_start: superblock geometry mismatch"
    else if root_ino' <> Layout.root_ino || root_addr <> Layout.root_dentry_addr then
      Error "cold_start: unexpected root location"
    else begin
      let t = make ~sched ~pmem ~mmu ~lease_ns in
      set_page_owner t 0 (In_file Layout.root_ino);
      set_page_owner t Layout.root_dentry_page (In_file Layout.root_ino);
      let claim_page pg owner =
        if pg <= Layout.root_dentry_page || pg >= total_pages then
          failwith (Printf.sprintf "cold_start: page %d out of range" pg)
        else if Hashtbl.mem (page_shard t pg).sh_page_owner pg then
          failwith (Printf.sprintf "cold_start: page %d doubly referenced" pg)
        else begin
          set_page_owner t pg owner;
          Extent_alloc.alloc_at t.node_allocs.(node_of_page t pg) pg 1
        end
      in
      let actor = Pmem.kernel_actor in
      (* Walk one file: claim its pages, register records, recurse into
         child directories. *)
      let rec ingest ~parent ~dentry_addr =
        match Layout.read_dentry pmem ~actor ~addr:dentry_addr with
        | None -> ()
        | Some (Error e) -> failwith ("cold_start: undecodable dentry: " ^ e)
        | Some (Ok (inode, _name)) ->
          let ino = inode.Layout.ino in
          if ino_owner_of t ino <> Ino_free then
            failwith (Printf.sprintf "cold_start: inode %d appears twice" ino);
          set_ino_owner t ino (Ino_in_dir parent);
          set_shadow t ino
            {
              Verifier.s_ftype = inode.Layout.ftype;
              s_mode = inode.Layout.mode land 0o7777;
              s_uid = inode.Layout.uid;
              s_gid = inode.Layout.gid;
            };
          if ino >= t.next_ino then t.next_ino <- ino + 1;
          let index_pages = ref [] and data_pages = ref [] in
          (match
             Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
               ~max_pages:total_pages (fun ~index_page ~entries ~next:_ ->
                 claim_page index_page (In_file ino);
                 index_pages := index_page :: !index_pages;
                 Array.iter
                   (fun e ->
                     if e <> 0 then begin
                       claim_page e (In_file ino);
                       data_pages := e :: !data_pages
                     end)
                   entries)
           with
          | Ok () -> ()
          | Error e -> failwith ("cold_start: " ^ e));
          let dindex_pages =
            if inode.Layout.ftype = Dir then begin
              let root = Layout.read_dindex_root pmem ~actor ~dentry_addr in
              let pgs = Dirindex.pages pmem ~actor ~root in
              List.iter (fun pg -> claim_page pg (In_file ino)) pgs;
              pgs
            end
            else []
          in
          set_file t ino
            (new_file ~ino ~dentry_addr ~parent ~ftype:inode.Layout.ftype
               ~index_pages:(List.rev !index_pages) ~data_pages:(List.rev !data_pages)
               ~dindex_pages ());
          if inode.Layout.ftype = Dir then
            List.iter
              (fun pg ->
                let b = Pmem.read pmem ~actor ~addr:(pg * page_size) ~len:page_size in
                for slot = 0 to Layout.dentries_per_page - 1 do
                  if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then
                    ingest ~parent:ino ~dentry_addr:(Layout.dentry_slot_addr pg slot)
                done)
              (List.rev !data_pages)
      in
      match ingest ~parent:Layout.root_ino ~dentry_addr:Layout.root_dentry_addr with
      | () -> Ok t
      | exception Failure msg -> Error msg
    end
