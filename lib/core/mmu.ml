(* Simulated MMU: per-process page permissions, enforced on the NVM data
   path.

   The kernel controller is the only component that programs the MMU
   (grant/revoke); LibFSes hit it implicitly on every load/store.  This
   is the hardware mechanism that lets Trio avoid metadata-update
   mediation: the trusted entity controls *which pages* a LibFS can
   touch, not *what* it writes there.

   Grants are reference-counted per (process, page, kind): mappings
   overlap (a dentry page belongs to both the file's mapping and the
   parent directory's), so a revoke must only undo its own grant. *)

module Pmem = Trio_nvm.Pmem
module Sched = Trio_sim.Sched
module Perf = Trio_nvm.Perf

type perm = P_read | P_readwrite

type entry = { mutable readers : int; mutable writers : int }

(* One NUMA node's slice of the dirty-page write-set.  An overflow
   resets only this slice, so checkpoints of files living on other
   sockets keep their incremental-verification fast path. *)
type wpart = {
  wp_set : (int, int) Hashtbl.t; (* page -> mark of its last mutation *)
  mutable wp_capacity : int;
  mutable wp_overflow_mark : int;
}

type t = {
  pmem : Pmem.t;
  (* actor -> page -> grant counts *)
  tables : (int, (int, entry) Hashtbl.t) Hashtbl.t;
  mutable pte_ops : int;
  (* --- dirty-page write-set (incremental verification, §4.3/§6) ---
     [wmark] is a monotonic device-wide store counter; the page->mark
     table is partitioned per NUMA node ([wp_set] of the node owning
     the page, fed by {!Pmem.set_store_hook}, so poison, crash reverts
     and page discards count as writes too).  When a partition outgrows
     [wp_capacity] it is reset and [wp_overflow_mark] records the loss:
     any checkpoint taken before that mark can no longer prove a page
     *of that node* clean and must fall back to a full verification
     walk — pages of other nodes are untouched. *)
  parts : wpart array;
  pages_per_node : int;
  mutable wmark : int;
}

(* Mutation hook for the differential self-test of the verification
   plane: while set, content mutations stop being recorded, so
   incremental verification silently trusts stale snapshots — the
   vdiff gate must provably catch the resulting verdict divergence. *)
let crash_test_drop_writes = ref false

let set_crash_test_drop_writes b = crash_test_drop_writes := b

let part_of t pg = t.parts.(pg / t.pages_per_node mod Array.length t.parts)

let record_store t pg =
  if not !crash_test_drop_writes then begin
    t.wmark <- t.wmark + 1;
    let p = part_of t pg in
    Hashtbl.replace p.wp_set pg t.wmark;
    if Hashtbl.length p.wp_set > p.wp_capacity then begin
      Hashtbl.reset p.wp_set;
      p.wp_overflow_mark <- t.wmark
    end
  end

let write_mark t = t.wmark

(* Has every store to [page]'s node since [mark] been kept? *)
let writes_tracked_since t ~mark ~page = mark >= (part_of t page).wp_overflow_mark

(* Sound only when [writes_tracked_since ~mark ~page] holds: an absent
   entry then means the page was not touched since the overflow, and
   the overflow itself predates [mark]. *)
let dirty_since t ~mark ~page =
  let p = part_of t page in
  match Hashtbl.find_opt p.wp_set page with
  | Some m -> m > mark
  | None -> mark < p.wp_overflow_mark

let set_write_set_capacity t n =
  if n < 1 then invalid_arg "Mmu.set_write_set_capacity";
  Array.iter
    (fun p ->
      p.wp_capacity <- n;
      if Hashtbl.length p.wp_set > n then begin
        Hashtbl.reset p.wp_set;
        p.wp_overflow_mark <- t.wmark
      end)
    t.parts

let write_set_size t = Array.fold_left (fun acc p -> acc + Hashtbl.length p.wp_set) 0 t.parts

let create pmem =
  let nodes = Trio_nvm.Numa.nodes (Pmem.topo pmem) in
  let t =
    {
      pmem;
      tables = Hashtbl.create 16;
      pte_ops = 0;
      parts =
        Array.init nodes (fun _ ->
            { wp_set = Hashtbl.create 4096; wp_capacity = 1 lsl 16; wp_overflow_mark = 0 });
      pages_per_node = Pmem.pages_per_node pmem;
      wmark = 0;
    }
  in
  Pmem.set_perm_check pmem (fun ~actor ~page ~write ->
      match Hashtbl.find_opt t.tables actor with
      | None -> false
      | Some table -> (
        match Hashtbl.find_opt table page with
        | Some e -> if write then e.writers > 0 else e.writers > 0 || e.readers > 0
        | None -> false));
  Pmem.set_store_hook pmem (fun pg -> record_store t pg);
  t

let table_of t actor =
  match Hashtbl.find_opt t.tables actor with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 256 in
    Hashtbl.add t.tables actor table;
    table

let grant_one table page perm =
  let e =
    match Hashtbl.find_opt table page with
    | Some e -> e
    | None ->
      let e = { readers = 0; writers = 0 } in
      Hashtbl.add table page e;
      e
  in
  match perm with
  | P_read -> e.readers <- e.readers + 1
  | P_readwrite -> e.writers <- e.writers + 1

let revoke_one table page perm =
  match Hashtbl.find_opt table page with
  | None -> ()
  | Some e ->
    (match perm with
    | P_read -> if e.readers > 0 then e.readers <- e.readers - 1
    | P_readwrite -> if e.writers > 0 then e.writers <- e.writers - 1);
    if e.readers = 0 && e.writers = 0 then Hashtbl.remove table page

(* Mapping a freshly allocated *contiguous* extent is one VMA insert
   plus a linear populate — far cheaper per page than mapping the
   scattered pages of an existing file. *)
let grant_extent t ~actor ~pages ~perm =
  let table = table_of t actor in
  let n = List.length pages in
  t.pte_ops <- t.pte_ops + n;
  Sched.delay (600.0 +. (Perf.Cpu.page_table_bulk *. float_of_int n));
  List.iter (fun page -> grant_one table page perm) pages

(* Grant permission on a set of (scattered) pages.  Charges the
   page-table programming cost to the calling fiber — the dominant term
   of the file-sharing cost for large files (Fig. 8). *)
let grant t ~actor ~pages ~perm =
  let table = table_of t actor in
  let n = List.length pages in
  t.pte_ops <- t.pte_ops + n;
  Sched.delay (Perf.Cpu.page_table_op *. float_of_int n);
  List.iter (fun page -> grant_one table page perm) pages

let revoke t ~actor ~pages ~perm =
  match Hashtbl.find_opt t.tables actor with
  | None -> ()
  | Some table ->
    let n = List.length pages in
    t.pte_ops <- t.pte_ops + n;
    Sched.delay (Perf.Cpu.page_table_op *. float_of_int n);
    List.iter (fun page -> revoke_one table page perm) pages

(* Zero-cost variants for setup paths (mkfs, registration, reconcile). *)
let grant_free t ~actor ~pages ~perm =
  let table = table_of t actor in
  List.iter (fun page -> grant_one table page perm) pages

let revoke_free t ~actor ~pages ~perm =
  match Hashtbl.find_opt t.tables actor with
  | None -> ()
  | Some table -> List.iter (fun page -> revoke_one table page perm) pages

(* Drop every grant a process holds on a page (quarantine/teardown). *)
let revoke_all_on_page t ~actor ~page =
  match Hashtbl.find_opt t.tables actor with
  | None -> ()
  | Some table -> Hashtbl.remove table page

(* Tear down a process' whole address space (abnormal process death):
   every grant it holds disappears at once, refcounts and all.  Free —
   the kernel reclaims a dead process' page tables wholesale. *)
let revoke_actor t ~actor = Hashtbl.remove t.tables actor

(* A page returning to the free pool must not be accessible to anyone. *)
let revoke_everyone_on_pages t ~pages =
  Hashtbl.iter
    (fun _actor table -> List.iter (fun page -> Hashtbl.remove table page) pages)
    t.tables

let has_perm t ~actor ~page ~write =
  match Hashtbl.find_opt t.tables actor with
  | None -> false
  | Some table -> (
    match Hashtbl.find_opt table page with
    | Some e -> if write then e.writers > 0 else e.writers > 0 || e.readers > 0
    | None -> false)

let pte_ops t = t.pte_ops
