(* Per-tenant QoS: token-bucket admission control over the shared
   controller planes.

   Every process belongs to a trust group (Ctl_state.group_of); the QoS
   plane keeps one token bucket per group and charges it for the four
   ways a tenant can load the shared substrate: synchronous syscalls,
   ring-batch slots drained on its behalf, verification work it
   enqueues, and page-pool draw (including the global-pool refill its
   allocation forced).  Buckets refill continuously at a rate derived
   from the tenant's weighted fair share of device write bandwidth
   (Perf.fair_share), so shares configured at [register_process] time
   translate into slices of the same bandwidth curves the rest of the
   simulator charges against.

   Enforcement is opt-in: a bucket only gates admission once a share
   has been configured explicitly (register_process ?qos_share or
   set_share).  Unconfigured tenants are charged — the counters feed
   trioctl qos — but always admitted, so single-tenant setups and the
   existing suites behave exactly as before.

   This module is deliberately free of Sched and Ctl_state
   dependencies: callers pass virtual time in and perform their own
   parking/delaying, which keeps the accounting pure and testable. *)

module Perf = Trio_nvm.Perf

type kind = Syscall | Ring_slot | Verify | Page_draw

(* Token cost per charged unit.  Syscalls are the expensive kernel
   crossing; ring slots are amortized (that is the whole point of the
   ring plane); verification is the most precious shared resource. *)
let cost_of = function
  | Syscall -> 6.0
  | Ring_slot -> 1.0
  | Verify -> 10.0
  | Page_draw -> 0.5

let kind_to_string = function
  | Syscall -> "syscall"
  | Ring_slot -> "ring_slot"
  | Verify -> "verify"
  | Page_draw -> "page_draw"

(* Mutation hook for the isolation gate's self-test: when set, charges
   debit zero tokens (the "tenant charged zero" sabotage).  The bench
   must detect the resulting loss of isolation. *)
let bypass = ref false

type bucket = {
  bk_group : int;
  mutable bk_share : float; (* weight; meaningful once bk_enforce *)
  mutable bk_enforce : bool; (* share explicitly configured? *)
  mutable bk_tokens : float; (* may go negative: deficit *)
  mutable bk_last : float; (* virtual ns of last refill *)
  mutable bk_syscalls : int;
  mutable bk_ring_slots : int;
  mutable bk_verifies : int;
  mutable bk_page_draws : int;
  mutable bk_throttles : int; (* admission rejections acted upon *)
  mutable bk_throttle_ns : float; (* total parked/delayed ns *)
}

type t = {
  q_profile : Perf.profile;
  q_buckets : (int, bucket) Hashtbl.t;
  mutable q_total_shares : float; (* sum of configured shares *)
  mutable q_enforced : int; (* number of enforced buckets *)
}

let create ?(profile = Perf.optane) () =
  { q_profile = profile; q_buckets = Hashtbl.create 32; q_total_shares = 0.0;
    q_enforced = 0 }

let enforced t = t.q_enforced > 0

(* Tokens/ns the bucket refills at: the tenant's fair slice of peak
   write bandwidth (bytes/ns), scaled into token units.  A sole tenant
   with share 1.0 sustains ~0.05 tokens/ns — comfortably above what a
   well-behaved LibFS generates, so enforcement only bites tenants
   hammering the controller. *)
let rate_per_bw = 0.004

let refill_rate t b =
  let share = if b.bk_enforce then b.bk_share else 1.0 in
  let total = Float.max 1.0 t.q_total_shares in
  Float.max 1e-9 (Perf.fair_share t.q_profile ~share ~total *. rate_per_bw)

(* Burst capacity: how far ahead of its rate a tenant may run.  Scaled
   by share so a small-share tenant cannot bank a big burst. *)
let burst_of b =
  let share = if b.bk_enforce then b.bk_share else 1.0 in
  Float.max 60.0 (600.0 *. Float.min 1.0 share)

let bucket t ~group ~now =
  match Hashtbl.find_opt t.q_buckets group with
  | Some b -> b
  | None ->
    let b =
      { bk_group = group; bk_share = 1.0; bk_enforce = false; bk_tokens = 0.0;
        bk_last = now; bk_syscalls = 0; bk_ring_slots = 0; bk_verifies = 0;
        bk_page_draws = 0; bk_throttles = 0; bk_throttle_ns = 0.0 }
    in
    b.bk_tokens <- burst_of b;
    Hashtbl.replace t.q_buckets group b;
    b

let refill t b ~now =
  let dt = now -. b.bk_last in
  if dt > 0.0 then begin
    b.bk_tokens <- Float.min (burst_of b) (b.bk_tokens +. (refill_rate t b *. dt));
    b.bk_last <- now
  end

let set_share t ~group ~now share =
  let b = bucket t ~group ~now in
  refill t b ~now;
  if b.bk_enforce then t.q_total_shares <- t.q_total_shares -. b.bk_share
  else t.q_enforced <- t.q_enforced + 1;
  b.bk_share <- Float.max 1e-3 share;
  b.bk_enforce <- true;
  t.q_total_shares <- t.q_total_shares +. b.bk_share;
  (* Clamp banked tokens to the (possibly smaller) new burst. *)
  b.bk_tokens <- Float.min b.bk_tokens (burst_of b)

let share_of t ~group =
  match Hashtbl.find_opt t.q_buckets group with
  | Some b when b.bk_enforce -> Some b.bk_share
  | _ -> None

let charge t ~group ~now ?(n = 1) kind =
  let b = bucket t ~group ~now in
  refill t b ~now;
  (match kind with
  | Syscall -> b.bk_syscalls <- b.bk_syscalls + n
  | Ring_slot -> b.bk_ring_slots <- b.bk_ring_slots + n
  | Verify -> b.bk_verifies <- b.bk_verifies + n
  | Page_draw -> b.bk_page_draws <- b.bk_page_draws + n);
  if not !bypass then
    b.bk_tokens <- b.bk_tokens -. (cost_of kind *. float_of_int n)

(* [admission] returns [None] when the tenant may proceed now, or
   [Some deadline] — the virtual time its balance returns to zero — when
   it is overdrawn.  Callers park or delay until the deadline (ring
   submit parks; the sync syscall preamble delays inside its shield) or
   surface EAGAIN with the deadline when asked not to wait. *)
let admission t ~group ~now =
  if !bypass then None
  else begin
    let b = bucket t ~group ~now in
    refill t b ~now;
    (* The epsilon matters: instalment repayments leave a tiny negative
       float residue, and a deadline of [now + residue/rate] can round
       to [now] itself — a parked producer would then wake, re-check and
       re-park at the same virtual instant forever.  Sub-epsilon debt is
       admitted; real debt always pays at least a whole nanosecond. *)
    if (not b.bk_enforce) || b.bk_tokens >= -1e-6 then None
    else Some (now +. Float.max 1.0 (-.b.bk_tokens /. refill_rate t b))
  end

let balance t ~group ~now =
  let b = bucket t ~group ~now in
  refill t b ~now;
  b.bk_tokens

let note_throttled t ~group ~now ~ns =
  let b = bucket t ~group ~now in
  b.bk_throttles <- b.bk_throttles + 1;
  b.bk_throttle_ns <- b.bk_throttle_ns +. ns

type tenant_stats = {
  ts_group : int;
  ts_share : float option; (* None: unenforced *)
  ts_balance : float;
  ts_syscalls : int;
  ts_ring_slots : int;
  ts_verifies : int;
  ts_page_draws : int;
  ts_throttles : int;
  ts_throttle_ns : float;
}

let stats t ~now =
  Hashtbl.fold (fun _ b acc -> (b, ()) :: acc) t.q_buckets []
  |> List.map fst
  |> List.sort (fun a b -> compare a.bk_group b.bk_group)
  |> List.map (fun b ->
         refill t b ~now;
         {
           ts_group = b.bk_group;
           ts_share = (if b.bk_enforce then Some b.bk_share else None);
           ts_balance = b.bk_tokens;
           ts_syscalls = b.bk_syscalls;
           ts_ring_slots = b.bk_ring_slots;
           ts_verifies = b.bk_verifies;
           ts_page_draws = b.bk_page_draws;
           ts_throttles = b.bk_throttles;
           ts_throttle_ns = b.bk_throttle_ns;
         })

let pp_stats ppf rows =
  Fmt.pf ppf "%6s %9s %10s %9s %9s %9s %9s %9s %12s@."
    "group" "share" "balance" "syscalls" "ringslot" "verify" "pages"
    "throttles" "throttle_us";
  List.iter
    (fun r ->
      Fmt.pf ppf "%6d %9s %10.1f %9d %9d %9d %9d %9d %12.1f@."
        r.ts_group
        (match r.ts_share with None -> "-" | Some s -> Printf.sprintf "%.3f" s)
        r.ts_balance r.ts_syscalls r.ts_ring_slots r.ts_verifies r.ts_page_draws
        r.ts_throttles (r.ts_throttle_ns /. 1e3))
    rows
