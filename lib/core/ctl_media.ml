(* Scrubber support (the patrol loop itself lives in {!Scrub}).

   The controller owns every piece of state the scrubber repairs from —
   checkpoints of verified metadata, the shadow inode table, the page
   attribution map — so the primitives live here and {!Scrub} is pure
   policy. *)

module Pmem = Trio_nvm.Pmem
module Extent_alloc = Trio_util.Extent_alloc
module Stats = Trio_sim.Stats
open Ctl_state

let page_size = Layout.page_size
let badblocks t = t.badblocks
let degradation_of t ino = Option.map (fun f -> f.f_degraded) (file_find t ino)
let writer_of t ino = Option.bind (file_find t ino) (fun f -> f.f_writer)

let record_media_event t ~ino ~detail =
  t.corruption_events <-
    (Pmem.kernel_actor, ino, [ { Verifier.check = `Media; detail } ]) :: t.corruption_events

(* Degradation is monotonic: a file never silently recovers to a better
   level (an operator decision, not a scrubber one). *)
let degrade_file t ~ino level ~detail =
  match file_find t ino with
  | None -> ()
  | Some f ->
    let worse =
      match (f.f_degraded, level) with
      | Healthy, (Degraded_ro | Failed) | Degraded_ro, Failed -> true
      | _ -> false
    in
    if worse then begin
      f.f_degraded <- level;
      record_media_event t ~ino ~detail
    end

(* Permanently retire [pg]: off the owner map, never back into the
   extent allocators, onto the badblock list.  Content and poison are
   left in place — the media there is unreliable by definition. *)
let retire_page_raw t pg =
  clear_page_owner t pg;
  if not (List.mem pg t.badblocks) then t.badblocks <- pg :: t.badblocks;
  Mmu.revoke_everyone_on_pages t.mmu ~pages:[ pg ]

(* Retire a page that could not be migrated, dropping it from its
   owner's page lists (the file is expected to be degraded too). *)
let quarantine_page t ~ino pg =
  retire_page_raw t pg;
  match file_find t ino with
  | None -> ()
  | Some f ->
    f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
    f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages;
    f.f_dindex_pages <- List.filter (fun q -> q <> pg) f.f_dindex_pages

(* Migrate the salvageable bytes of media-damaged page [bad] (owned by
   file [ino]) to a freshly allocated page: patch the single on-NVM
   reference to it (the dentry's index head, an index entry, or an
   index page's next link), copy the content with the damaged
   [zero_lines] zeroed, retire [bad] and re-attribute everything.
   Returns the replacement page number. *)
let replace_page t ~ino ~bad ~zero_lines =
  let actor = Pmem.kernel_actor in
  match file_find t ino with
  | None -> Error Fs_types.ENOENT
  | Some f -> (
    match Ctl_alloc.alloc_page_any_node t ~preferred:(bad / Pmem.pages_per_node t.pmem) with
    | None -> Error Fs_types.ENOSPC
    | Some fresh ->
      let patched =
        match Layout.read_dentry t.pmem ~actor ~addr:f.f_dentry_addr with
        | Some (Ok (inode, _)) when inode.Layout.index_head = bad ->
          Layout.write_index_head t.pmem ~actor ~dentry_addr:f.f_dentry_addr fresh;
          true
        | Some (Ok (inode, _)) ->
          (* walk the chain for an entry or next-link equal to [bad];
             cycle-bounded like Layout.walk_index_chain *)
          let found = ref false in
          let max_pages = Pmem.total_pages t.pmem in
          let rec go page seen =
            if page <> 0 && page > Layout.root_dentry_page && page < max_pages && seen <= max_pages
            then begin
              let entries, next = Layout.read_index_page t.pmem ~actor ~page in
              Array.iteri
                (fun i e ->
                  if (not !found) && e = bad then begin
                    Layout.write_index_entry t.pmem ~actor ~page i fresh;
                    found := true
                  end)
                entries;
              if not !found then
                if next = bad then begin
                  Layout.write_index_next t.pmem ~actor ~page fresh;
                  found := true
                end
                else go next (seen + 1)
            end
          in
          go inode.Layout.index_head 0;
          !found
        | _ -> false
      in
      if not patched then begin
        pool_put t fresh;
        Error Fs_types.EIO
      end
      else begin
        Pmem.set_kind t.pmem fresh (Pmem.kind_of t.pmem bad);
        let b = Pmem.read t.pmem ~actor ~addr:(bad * page_size) ~len:page_size in
        List.iter
          (fun line -> Bytes.fill b (line * Pmem.line_size) Pmem.line_size '\000')
          zero_lines;
        Pmem.write t.pmem ~actor ~addr:(fresh * page_size) ~src:b;
        Pmem.persist t.pmem ~addr:(fresh * page_size) ~len:page_size;
        set_page_owner t fresh (In_file ino);
        (* dentries living on a migrated directory page move with it *)
        iter_files t (fun _ (cf : file_info) ->
            if cf.f_dentry_addr / page_size = bad then
              cf.f_dentry_addr <- (fresh * page_size) + (cf.f_dentry_addr mod page_size));
        let remap q = if q = bad then fresh else q in
        f.f_index_pages <- List.map remap f.f_index_pages;
        f.f_data_pages <- List.map remap f.f_data_pages;
        f.f_dindex_pages <- List.map remap f.f_dindex_pages;
        (match f.f_checkpoint with
        | Some ck ->
          f.f_checkpoint <-
            Some { ck with ck_pages = List.map (fun (p, b) -> (remap p, b)) ck.ck_pages }
        | None -> ());
        retire_page_raw t bad;
        Ok fresh
      end)

(* The root dentry lives at a fixed address (no parent directory to
   checkpoint it): rebuild it from the controller's soft state — shadow
   permissions, attributed pages, recounted live entries. *)
let rebuild_root_dentry t =
  let actor = Pmem.kernel_actor in
  match (file_find t Layout.root_ino, shadow_find t Layout.root_ino) with
  | Some f, Some s ->
    let size =
      List.fold_left
        (fun acc pg ->
          let b = Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size in
          let live = ref 0 in
          for slot = 0 to Layout.dentries_per_page - 1 do
            if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then incr live
          done;
          acc + !live)
        0 f.f_data_pages
    in
    let index_head = match f.f_index_pages with pg :: _ -> pg | [] -> 0 in
    let inode =
      {
        Layout.ino = Layout.root_ino;
        ftype = Fs_types.Dir;
        mode = s.Verifier.s_mode;
        uid = s.Verifier.s_uid;
        gid = s.Verifier.s_gid;
        size;
        index_head;
        mtime = 0;
        ctime = 0;
      }
    in
    (* Preserve the directory-index root when the old value still points
       at a page attributed to the root directory's index; anything else
       (torn byte range, stale value) resets to 0 — an unindexed
       directory is legal and the index is rebuildable from the leaves. *)
    let old_root = Layout.read_dindex_root t.pmem ~actor ~dentry_addr:Layout.root_dentry_addr in
    let dindex_root = if List.mem old_root f.f_dindex_pages then old_root else 0 in
    let b = Layout.encode_dentry ~dindex_root ~inode ~name:"/" () in
    Pmem.write t.pmem ~actor ~addr:Layout.root_dentry_addr ~src:b;
    Pmem.persist t.pmem ~addr:Layout.root_dentry_addr ~len:Layout.dentry_size;
    if dindex_root = 0 && f.f_dindex_pages <> [] then begin
      let stale = f.f_dindex_pages in
      f.f_dindex_pages <- [];
      List.iter (fun pg -> Ctl_alloc.release_page t pg) stale;
      Mmu.revoke_everyone_on_pages t.mmu ~pages:stale
    end
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Directory-index rebuild (DESIGN.md §4.18).

   The B-link index over a directory's name hashes is a rebuildable
   accelerator: the dentry pages are the source of truth.  When patrol
   scrub finds an uncorrectable index node — or anyone finds the tree
   structurally damaged — we do not try to patch pointers inside the
   tree; we drop the whole tree and rebuild it bottom-up from the live
   dentries.  Crash discipline: the dentry's root word is zeroed
   (persisted) before any old page is freed and only swung to the new
   root after the new tree is fully persisted, so a kill at any point
   leaves either the old tree, an unindexed directory, or the new
   tree — never a dangling root. *)

let rebuild_dindex t ~ino =
  let actor = Pmem.kernel_actor in
  match file_find t ino with
  | None -> Error Fs_types.ENOENT
  | Some f when f.f_ftype <> Fs_types.Dir -> Error Fs_types.ENOTDIR
  | Some f ->
    (* Detach: unindexed is always a safe intermediate state. *)
    Layout.write_dindex_root t.pmem ~actor ~dentry_addr:f.f_dentry_addr 0;
    let stale = f.f_dindex_pages in
    f.f_dindex_pages <- [];
    List.iter (fun pg -> Ctl_alloc.release_page t pg) stale;
    Mmu.revoke_everyone_on_pages t.mmu ~pages:stale;
    (* Collect live (hash, slot address) pairs from the dentry pages.
       Poisoned dentry blocks contribute nothing — their entries come
       back once the data page itself is repaired. *)
    let entries = ref [] in
    List.iter
      (fun pg ->
        for slot = 0 to Layout.dentries_per_page - 1 do
          let addr = Layout.dentry_slot_addr pg slot in
          match Layout.read_dentry t.pmem ~actor ~addr with
          | Some (Ok (_inode, name)) ->
            entries := (Dirindex.hash_name name, addr) :: !entries
          | Some (Error _) | None -> ()
        done)
      f.f_data_pages;
    let alloc () =
      Ctl_alloc.alloc_page_any_node t
        ~preferred:(f.f_dentry_addr / page_size / Pmem.pages_per_node t.pmem)
    in
    let free pg = pool_put t pg in
    (match Dirindex.build ~stats:t.stats t.pmem ~actor ~alloc ~free ~entries:!entries with
    | Error `Nospace ->
      (* No room for an index: the directory stays unindexed (legal
         under I5) and every lookup falls back to the linear scan. *)
      Ok 0
    | Ok (root, pages) ->
      List.iter
        (fun pg ->
          set_page_owner t pg (In_file ino);
          Pmem.set_kind t.pmem pg Pmem.Meta)
        pages;
      f.f_dindex_pages <- pages;
      Layout.write_dindex_root t.pmem ~actor ~dentry_addr:f.f_dentry_addr root;
      Stats.incr t.stats "verify.dindex.rebuilds";
      Ok root)

(* Is [pg] attributed to [ino]'s directory index?  The scrubber asks
   this to pick the rebuild rung over page migration. *)
let dindex_member t ~ino pg =
  match file_find t ino with Some f -> List.mem pg f.f_dindex_pages | None -> false
