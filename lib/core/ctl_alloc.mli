(** Resource allocation: batched page/inode allocation, free, recycle.
    Internal to [lib/core] — external code goes through {!Controller}. *)

val alloc_pages :
  Ctl_state.t ->
  proc:int ->
  node:int ->
  count:int ->
  kind:Trio_nvm.Pmem.kind ->
  (int list, Fs_types.errno) result

val release_page : Ctl_state.t -> int -> unit
(** Drop ownership, discard content, return the page to its node's pool. *)

val free_pages : Ctl_state.t -> proc:int -> pages:int list -> (unit, Fs_types.errno) result
val recycle_pages : Ctl_state.t -> proc:int -> pages:int list -> (unit, Fs_types.errno) result
val alloc_inos : Ctl_state.t -> proc:int -> count:int -> int list
val alloc_page_any_node : Ctl_state.t -> preferred:int -> int option
val free_file_tree : Ctl_state.t -> proc:int -> ino:int -> (unit, Fs_types.errno) result
