(** Resource allocation: batched page/inode allocation, free, recycle.
    Internal to [lib/core] — external code goes through {!Controller}. *)

val alloc_pages :
  Ctl_state.t ->
  proc:int ->
  node:int ->
  count:int ->
  kind:Trio_nvm.Pmem.kind ->
  (int list, Fs_types.errno) result

val release_page : Ctl_state.t -> int -> unit
(** Drop ownership, discard content, return the page to its node's pool.
    No-op on pages pinned by the snapshot plane. *)

val alloc_snapshot_pages : Ctl_state.t -> count:int -> int list option
(** Take [count] pages from the pools for a snapshot payload chain and
    pin them ([snap_pinned]); their page-owner entries stay [Free]. *)

val release_snapshot_pages : Ctl_state.t -> int list -> unit
(** Unpin and return a superseded root's payload pages to the pools. *)

val pin_snapshot_page : Ctl_state.t -> int -> bool
(** Mount-time dual of [alloc_snapshot_pages]: claim one specific free
    page for the snapshot plane.  False if the page is already owned,
    pooled out, or out of range — the root candidate is then rejected. *)

val free_pages : Ctl_state.t -> proc:int -> pages:int list -> (unit, Fs_types.errno) result
val recycle_pages : Ctl_state.t -> proc:int -> pages:int list -> (unit, Fs_types.errno) result
val alloc_inos : Ctl_state.t -> proc:int -> count:int -> int list
val alloc_page_any_node : Ctl_state.t -> preferred:int -> int option
val free_file_tree : Ctl_state.t -> proc:int -> ino:int -> (unit, Fs_types.errno) result
