(* The in-kernel access controller (paper §3.2, §4.3).

   The controller is the only component that:
   - allocates/frees NVM pages and inode numbers (in batches, so the
     LibFS fast path stays in userspace);
   - programs the MMU (map/unmap of a file's core-state pages);
   - maintains the global file system information used by check I2
     (which pages/inodes are in files, which are allocated to which
     LibFS);
   - maintains the shadow inode table (ground-truth permissions, I4);
   - checkpoints a file's metadata before granting write access and
     rolls back to it when verification fails (§4.3);
   - enforces leases so a LibFS cannot hold a file forever.

   It never performs metadata updates on behalf of a LibFS: LibFSes
   write dentries/index pages directly, and new files are discovered
   and ingested when the enclosing directory is verified.

   This module is a facade: the implementation lives in focused
   submodules, one per concern, each behind its own interface —

   - {!Ctl_state}       shared record types, construction, cold start
   - {!Ctl_alloc}       page/inode allocation, free, recycle
   - {!Ctl_checkpoint}  verified-metadata snapshots, rollback, the
                        incremental-verification delta lookup
   - {!Ctl_registry}    process registry, watchdog, orphan GC
   - {!Ctl_snapshot}    whole-FS CoW snapshots: root publication,
                        rollback, mount-newest-root crash recovery
   - {!Ctl_media}       scrubber repair primitives
   - {!Ctl_gate}        map/unmap, the background verification
                        pipeline, commit, namespace operations

   Everything outside [lib/core] links against this module only. *)

module Numa = Trio_nvm.Numa

(* ------------------------------------------------------------------ *)
(* Types (re-exported so existing pattern matches keep compiling) *)

type page_owner = Ctl_state.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Ctl_state.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = Ctl_state.checkpoint = {
  ck_dentry : Bytes.t;
  ck_pages : (int * Bytes.t) list;
  ck_children : int list;
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;
}

type degradation = Ctl_state.degradation = Healthy | Degraded_ro | Failed

type file_info = Ctl_state.file_info
type proc_info = Ctl_state.proc_info
type t = Ctl_state.t

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ~sched ~pmem ~mmu ?lease_ns () =
  let t = Ctl_state.create ~sched ~pmem ~mmu ?lease_ns () in
  Ctl_gate.start t;
  (* Epoch-1 root over the empty FS: the ≥1-valid-root property holds
     from the very first store.  Tiny devices may lack the page — then
     the first explicit snapshot publishes it. *)
  ignore (Ctl_snapshot.publish t);
  t

let cold_start ~sched ~pmem ~mmu ?lease_ns () =
  match Ctl_state.cold_start ~sched ~pmem ~mmu ?lease_ns () with
  | Error _ as e -> e
  | Ok t ->
    Ctl_snapshot.adopt_root t;
    Ctl_gate.start t;
    Ok t

(* ------------------------------------------------------------------ *)
(* Accessors *)

let stats (t : t) = t.Ctl_state.stats
let sched (t : t) = t.Ctl_state.sched
let pmem (t : t) = t.Ctl_state.pmem
let root_ino = Layout.root_ino
let root_dentry_addr = Layout.root_dentry_addr

(* The corruption log and quarantine list are verification *results*:
   drain the pipeline before exposing them, so a reader never misses a
   verdict that was still queued. *)
let corruption_events (t : t) =
  Ctl_gate.drain_verification t;
  t.Ctl_state.corruption_events

let quarantined_files (t : t) =
  Ctl_gate.drain_verification t;
  t.Ctl_state.quarantine

let proc_info = Ctl_state.proc_info
let touch = Ctl_state.touch
let group_of = Ctl_state.group_of
let file_info = Ctl_state.file_info
let shadow_of = Ctl_state.shadow_of
let view = Ctl_state.view
let file_pages = Ctl_state.file_pages
let walk_file = Ctl_state.walk_file
let dir_page_is_empty = Ctl_state.dir_page_is_empty
let owner_of = Ctl_state.owner_of
let ino_owner_of = Ctl_state.ino_owner_of
let page_owner_of = Ctl_state.owner_of
let node_of_cpu (t : t) cpu = Numa.node_of_cpu t.Ctl_state.topo cpu

(* ------------------------------------------------------------------ *)
(* Verification mode and observability *)

type vmode = Ctl_state.vmode = Full | Incremental

let set_verify_mode = Ctl_state.set_verify_mode
let current_verify_mode = Ctl_state.current_verify_mode
let set_verify_hook (t : t) hook = t.Ctl_state.verify_hook <- Some hook
let clear_verify_hook (t : t) = t.Ctl_state.verify_hook <- None
let verify_queue_depth (t : t) =
  Array.fold_left
    (fun acc (sh : Ctl_state.shard) -> acc + Queue.length sh.Ctl_state.sh_verify_q)
    0 t.Ctl_state.shards

(* ------------------------------------------------------------------ *)
(* Resource allocation *)

let alloc_pages = Ctl_alloc.alloc_pages
let free_pages = Ctl_alloc.free_pages
let recycle_pages = Ctl_alloc.recycle_pages
let alloc_inos = Ctl_alloc.alloc_inos
let alloc_page_any_node = Ctl_alloc.alloc_page_any_node
let free_file_tree = Ctl_alloc.free_file_tree

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

let take_checkpoint = Ctl_checkpoint.take_checkpoint
let rollback_to_checkpoint = Ctl_checkpoint.rollback_to_checkpoint
let checkpoint_page_bytes = Ctl_checkpoint.checkpoint_page_bytes
let page_snapshot = Ctl_checkpoint.page_snapshot
let encode_checkpoint = Ctl_checkpoint.encode_checkpoint
let decode_checkpoint = Ctl_checkpoint.decode_checkpoint

(* ------------------------------------------------------------------ *)
(* Whole-FS snapshots (DESIGN.md Â§4.16) *)

type snap_entry = Ctl_snapshot.entry = {
  e_ino : int;
  e_dentry_addr : int;
  e_parent : int;
  e_blob : Bytes.t;
}

(* Publish with a quiesced pipeline, so the root covers every verdict
   already in flight. *)
let snapshot_take t =
  Ctl_gate.drain_verification t;
  Ctl_snapshot.publish t

let snapshot_entries = Ctl_snapshot.entries
let snapshot_entry_checkpoint = Ctl_snapshot.entry_checkpoint
let snapshot_page_bytes = Ctl_snapshot.snapshot_page_bytes
let snapshot_restore_file = Ctl_snapshot.restore_file
let snapshot_epoch = Ctl_state.snapshot_epoch
let snap_pinned_count = Ctl_state.snap_pinned_count
let snap_pinned_mem = Ctl_state.snap_pinned_mem
let was_snapshot_restored = Ctl_state.was_snapshot_restored
let snapshot_root_status = Ctl_snapshot.root_status
let set_snap_torn_commit = Ctl_snapshot.set_torn_commit

(* Administrative rollback of one file to the durable root (trioctl
   snap rollback): restore, then force a fresh verification verdict. *)
let snapshot_rollback_file t ~proc ~ino =
  match Ctl_state.file_find t ino with
  | None -> Error "no such file"
  | Some f -> (
    match Ctl_snapshot.restore_file t f ~offender:proc with
    | Error _ as e -> e
    | Ok () ->
      if Ctl_gate.verify_file t ~proc ~f then Ok ()
      else Error "rolled-back state failed verification")

type recovery_mode = Mounted_root of int | Fsck_fallback

(* Crash recovery ladder: newest intact snapshot root first (O(root)
   validation + in-DRAM rebuild), full fsck walk as the fallback when
   both slots are damaged. *)
let recover ~sched ~pmem ~mmu ?lease_ns () =
  match Ctl_snapshot.mount_root ~sched ~pmem ~mmu ?lease_ns () with
  | Ok (t, epoch) ->
    Ctl_gate.start t;
    Ok (t, Mounted_root epoch)
  | Error _ -> (
    match cold_start ~sched ~pmem ~mmu ?lease_ns () with
    | Ok t -> Ok (t, Fsck_fallback)
    | Error _ as e -> (match e with Error m -> Error m | Ok _ -> assert false))

(* Full-mode verification sweep over every file record — the
   certification pass of the fsck fallback, and the honest baseline
   the snaprecover bench compares root mounts against.  Returns
   (files checked, files failing). *)
let audit_all (t : t) =
  let saved = Ctl_state.current_verify_mode () in
  Ctl_state.set_verify_mode Ctl_state.Full;
  let n = ref 0 and bad = ref 0 in
  Ctl_state.iter_files_snapshot t (fun ino (f : Ctl_state.file_info) ->
      incr n;
      let report =
        Ctl_gate.check_file_now t ~proc:Trio_nvm.Pmem.kernel_actor ~ino
          ~dentry_addr:f.Ctl_state.f_dentry_addr
      in
      if not report.Verifier.ok then incr bad);
  Ctl_state.set_verify_mode saved;
  (!n, !bad)

(* Like {!audit_all}, but names the failures: each failing file's ino
   with its violation list, so counterexamples can say which invariant
   broke instead of just counting. *)
let audit_failures (t : t) =
  let saved = Ctl_state.current_verify_mode () in
  Ctl_state.set_verify_mode Ctl_state.Full;
  let bad = ref [] in
  Ctl_state.iter_files_snapshot t (fun ino (f : Ctl_state.file_info) ->
      let report =
        Ctl_gate.check_file_now t ~proc:Trio_nvm.Pmem.kernel_actor ~ino
          ~dentry_addr:f.Ctl_state.f_dentry_addr
      in
      if not report.Verifier.ok then bad := (ino, report.Verifier.violations) :: !bad);
  Ctl_state.set_verify_mode saved;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Verification gate and mapping *)

let verify_file = Ctl_gate.verify_file
let ensure_verified = Ctl_gate.ensure_verified
let drain_unverified = Ctl_gate.drain_unverified
let drain_verification = Ctl_gate.drain_verification
let map_file = Ctl_gate.map_file
let unmap_file = Ctl_gate.unmap_file
let commit = Ctl_gate.commit
let unmap_all = Ctl_gate.unmap_all
let chmod = Ctl_gate.chmod
let chown = Ctl_gate.chown
let write_mapped_inos = Ctl_gate.write_mapped_inos
let dentry_addr_of = Ctl_gate.dentry_addr_of
let crash_recover = Ctl_gate.crash_recover

(* ------------------------------------------------------------------ *)
(* The submission/completion ring plane (DESIGN.md §4.15) *)

module Ring = Ctl_ring
(* Exposed whole: the protocol tests drive submit/take_batch/post/await
   directly, below the drain plane. *)

type ring = Ctl_ring.t

let ring_batch_limit = Ctl_gate.ring_batch_limit
let ring_setup = Ctl_gate.ring_setup
let ring_of = Ctl_gate.ring_of
let set_ring_paused = Ctl_gate.set_ring_paused
let map_file_body = Ctl_gate.map_file_body
let unmap_file_body = Ctl_gate.unmap_file_body
let set_ring_hook (t : t) hook = t.Ctl_state.ring_hook <- Some hook
let clear_ring_hook (t : t) = t.Ctl_state.ring_hook <- None

(* Producer-side ops over an established ring.  [ring_map] is the
   batched map_file: submit, then park on the CQ.  [ring_unmap] is
   fire-and-forget — the entry feeds the verification pipeline when the
   drain fiber executes it, and the producer never looks back.
   [ring_lease] submits a no-op whose batch heartbeat is the point. *)

let ring_map r ~ino ~write =
  match Ctl_ring.submit r (Ctl_ring.Op_map { ino; write }) with
  | Error e -> Error e
  | Ok seq -> Ctl_ring.await r ~seq

let ring_unmap r ~ino = ignore (Ctl_ring.submit ~forget:true r (Ctl_ring.Op_unmap { ino }))

let ring_lease r =
  match Ctl_ring.submit r Ctl_ring.Op_lease with
  | Error e -> Error e
  | Ok seq -> Ctl_ring.await r ~seq

let ring_drain = Ctl_ring.drain

(* ------------------------------------------------------------------ *)
(* Process registry, watchdog, GC *)

let register_process = Ctl_registry.register_process
let heartbeat = Ctl_registry.heartbeat
let last_heartbeat = Ctl_registry.last_heartbeat
let process_dead = Ctl_registry.process_dead
let processes = Ctl_registry.processes
let reap_dead = Ctl_registry.reap_dead

type watchdog_report = Ctl_registry.watchdog_report = {
  mutable wd_scanned : int;
  mutable wd_escalated : int list;
  mutable wd_unverified : int;
  mutable wd_revoked : int;
}

let make_watchdog_report = Ctl_registry.make_watchdog_report
let pp_watchdog_report = Ctl_registry.pp_watchdog_report
let abnormal_teardown = Ctl_registry.abnormal_teardown
let watchdog_once = Ctl_registry.watchdog_once
let run_watchdog = Ctl_registry.run_watchdog
let set_crash_test_skip_gc = Ctl_registry.set_crash_test_skip_gc

type gc_report = Ctl_registry.gc_report = {
  gc_total : int;
  gc_free : int;
  gc_pooled : int;
  gc_snap_pinned : int;
  gc_reachable : int;
  gc_cached : int;
  gc_badblocks : int;
  gc_reclaimed_pages : int;
  gc_reclaimed_inos : int;
  gc_leaked : int;
  gc_invariant_ok : bool;
}

let pp_gc_report = Ctl_registry.pp_gc_report
let reachable_files = Ctl_registry.reachable_files
let gc_once = Ctl_registry.gc_once

(* ------------------------------------------------------------------ *)
(* NUMA sharding: topology routing and per-socket observability *)

let shard_count = Ctl_state.shard_count
let shard_of_ino = Ctl_state.shard_of_ino
let node_of_page = Ctl_state.node_of_page
let pooled_pages = Ctl_state.pooled_pages
let set_pool_limits = Ctl_state.set_pool_limits

type shard_stat = {
  ss_id : int;
  ss_pool_free : int;  (** pages staged in the node's pool *)
  ss_pool_refills : int;
  ss_pool_drains : int;
  ss_reserve_free : int;  (** pages left in the node's global reserve *)
  ss_files : int;  (** file records homed on this shard *)
  ss_inos : int;  (** ino-owner records homed on this shard *)
  ss_queue_depth : int;  (** verifications waiting on this shard *)
  ss_enqueued : int;  (** lifetime handoffs routed to this shard *)
}

let shard_stats (t : t) =
  let open Ctl_state in
  Array.to_list
    (Array.mapi
       (fun i (sh : shard) ->
         {
           ss_id = i;
           ss_pool_free = t.pools.(i).pp_len;
           ss_pool_refills = t.pools.(i).pp_refills;
           ss_pool_drains = t.pools.(i).pp_drains;
           ss_reserve_free = Trio_util.Extent_alloc.free_units t.node_allocs.(i);
           ss_files = Hashtbl.length sh.sh_files;
           ss_inos = Hashtbl.length sh.sh_ino_owner;
           ss_queue_depth = Queue.length sh.sh_verify_q;
           ss_enqueued = sh.sh_enqueued;
         })
       t.shards)

(* Lock-plane counters: total shard-lock acquisitions and how many were
   two-shard (cross-socket) critical sections. *)
let lock_stats (t : t) =
  (Ctl_shard.acquisitions t.Ctl_state.locks, Ctl_shard.cross_shard_ops t.Ctl_state.locks)

let pp_shard_stat ppf s =
  Format.fprintf ppf
    "shard %d: pool %d free (%d refills, %d drains), reserve %d, %d files, %d inos, verify \
     queue %d (%d enqueued)"
    s.ss_id s.ss_pool_free s.ss_pool_refills s.ss_pool_drains s.ss_reserve_free s.ss_files
    s.ss_inos s.ss_queue_depth s.ss_enqueued

let pp_shard_stats ppf stats =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_shard_stat ppf stats

(* Per-shard view of the ring plane: drain-side counters live on the
   shard, producer-side park/wake counters are summed over the rings the
   shard services.  This is the `trioctl stats` gate-queue-pressure
   view: before the ring plane there was no way to see queueing into the
   gate from outside ctl_gate. *)
type ring_stat = {
  rg_shard : int;
  rg_rings : int;  (** rings serviced by this shard (closed ones included) *)
  rg_depth : int;  (** submissions not yet taken by a drain fiber *)
  rg_outstanding : int;  (** submissions not yet reaped by producers *)
  rg_batches : int;  (** batches drained here, lifetime *)
  rg_ops : int;  (** ring ops executed here, lifetime *)
  rg_fused : int;  (** unmap+remap pairs annihilated in-batch *)
  rg_hist : int array;  (** drained-batch sizes: 1,2,<=4,...,<=64,>64 *)
  rg_sq_parks : int;  (** producer parks on a full SQ *)
  rg_sq_park_ns : float;  (** producer time parked on a full SQ, virtual ns *)
  rg_cq_parks : int;  (** producer parks awaiting a completion *)
  rg_wakes : int;  (** doorbell wakes into this shard's drain fibers *)
  rg_throttle_parks : int;  (** producer parks at the QoS admission gate *)
  rg_throttle_ns : float;  (** producer time parked there, virtual ns *)
}

let ring_stats (t : t) =
  let open Ctl_state in
  let shards = shard_count t in
  Array.to_list
    (Array.mapi
       (fun i (sh : shard) ->
         let rings = ref 0 and depth = ref 0 and out = ref 0 in
         let sqp = ref 0 and cqp = ref 0 in
         let sqp_ns = ref 0.0 and thp = ref 0 and th_ns = ref 0.0 in
         Hashtbl.iter
           (fun proc r ->
             if proc mod shards = i then begin
               incr rings;
               depth := !depth + Ctl_ring.depth r;
               out := !out + Ctl_ring.outstanding r;
               sqp := !sqp + Ctl_ring.sq_parks r;
               cqp := !cqp + Ctl_ring.cq_parks r;
               sqp_ns := !sqp_ns +. Ctl_ring.sq_park_ns r;
               thp := !thp + Ctl_ring.throttle_parks r;
               th_ns := !th_ns +. Ctl_ring.throttle_ns r
             end)
           t.rings;
         {
           rg_shard = i;
           rg_rings = !rings;
           rg_depth = !depth;
           rg_outstanding = !out;
           rg_batches = sh.sh_ring_batches;
           rg_ops = sh.sh_ring_ops;
           rg_fused = sh.sh_ring_fused;
           rg_hist = Array.copy sh.sh_ring_hist;
           rg_sq_parks = !sqp;
           rg_sq_park_ns = !sqp_ns;
           rg_cq_parks = !cqp;
           rg_wakes = sh.sh_ring_wakes;
           rg_throttle_parks = !thp;
           rg_throttle_ns = !th_ns;
         })
       t.Ctl_state.shards)

let pp_ring_stat ppf s =
  let hist =
    String.concat "/" (List.map string_of_int (Array.to_list s.rg_hist))
  in
  Format.fprintf ppf
    "shard %d: %d ring(s), depth %d, outstanding %d, %d batch(es) / %d op(s) drained (%d \
     fused), sizes [%s], %d sq-park(s) %.1fus parked, %d cq-park(s), %d wake(s), %d \
     throttle-park(s) %.1fus throttled"
    s.rg_shard s.rg_rings s.rg_depth s.rg_outstanding s.rg_batches s.rg_ops s.rg_fused hist
    s.rg_sq_parks (s.rg_sq_park_ns /. 1e3) s.rg_cq_parks s.rg_wakes s.rg_throttle_parks
    (s.rg_throttle_ns /. 1e3)

let pp_ring_stats ppf stats =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_ring_stat ppf stats

(* ------------------------------------------------------------------ *)
(* QoS plane: per-tenant token buckets (DESIGN.md §4.17) *)

type qos_kind = Ctl_qos.kind = Syscall | Ring_slot | Verify | Page_draw

type qos_tenant_stats = Ctl_qos.tenant_stats = {
  ts_group : int;
  ts_share : float option;  (** [None]: charged but unenforced *)
  ts_balance : float;
  ts_syscalls : int;
  ts_ring_slots : int;
  ts_verifies : int;
  ts_page_draws : int;
  ts_throttles : int;
  ts_throttle_ns : float;
}

(* Configure a tenant's share after registration (register_process
   [?qos_share] is the usual path). *)
let set_qos_share (t : t) ~group share =
  Ctl_qos.set_share (Ctl_state.qos t) ~group ~now:(Trio_sim.Sched.now t.Ctl_state.sched) share

let qos_share_of (t : t) ~group = Ctl_qos.share_of (Ctl_state.qos t) ~group
let qos_enforced (t : t) = Ctl_qos.enforced (Ctl_state.qos t)

let qos_balance (t : t) ~group =
  Ctl_qos.balance (Ctl_state.qos t) ~group ~now:(Trio_sim.Sched.now t.Ctl_state.sched)

let qos_stats (t : t) =
  Ctl_qos.stats (Ctl_state.qos t) ~now:(Trio_sim.Sched.now t.Ctl_state.sched)

let pp_qos_stats = Ctl_qos.pp_stats
let qos_cost_of = Ctl_qos.cost_of

(* Mutation hook (isolation-gate self-test): charges debit zero. *)
let set_qos_bypass b = Ctl_qos.bypass := b

(* ------------------------------------------------------------------ *)
(* Scrubber support *)

let badblocks = Ctl_media.badblocks
let degradation_of = Ctl_media.degradation_of
let writer_of = Ctl_media.writer_of
let record_media_event = Ctl_media.record_media_event
let degrade_file = Ctl_media.degrade_file
let retire_page_raw = Ctl_media.retire_page_raw
let quarantine_page = Ctl_media.quarantine_page
let replace_page = Ctl_media.replace_page
let rebuild_root_dentry = Ctl_media.rebuild_root_dentry
let rebuild_dindex = Ctl_media.rebuild_dindex
let dindex_member = Ctl_media.dindex_member
