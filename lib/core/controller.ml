(* The in-kernel access controller (paper §3.2, §4.3).

   The controller is the only component that:
   - allocates/frees NVM pages and inode numbers (in batches, so the
     LibFS fast path stays in userspace);
   - programs the MMU (map/unmap of a file's core-state pages);
   - maintains the global file system information used by check I2
     (which pages/inodes are in files, which are allocated to which
     LibFS);
   - maintains the shadow inode table (ground-truth permissions, I4);
   - checkpoints a file's metadata before granting write access and
     rolls back to it when verification fails (§4.3);
   - enforces leases so a LibFS cannot hold a file forever.

   It never performs metadata updates on behalf of a LibFS: LibFSes
   write dentries/index pages directly, and new files are discovered
   and ingested when the enclosing directory is verified. *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Numa = Trio_nvm.Numa
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats
module Extent_alloc = Trio_util.Extent_alloc
open Fs_types

type page_owner = Verifier.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Verifier.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = {
  ck_dentry : Bytes.t; (* snapshot of the file's dentry block *)
  ck_pages : (int * Bytes.t) list; (* metadata pages: index (+ data for dirs) *)
  ck_children : int list; (* dir only: live child inos *)
  ck_size : int;
  ck_index_head : int;
}

(* Health of a file after media damage (see {!Scrub}): [Degraded_ro]
   files reject writes with EROFS but stay readable where the media
   allows; [Failed] files reject all mapping with EIO. *)
type degradation = Healthy | Degraded_ro | Failed

type file_info = {
  f_ino : int;
  mutable f_dentry_addr : int;
  mutable f_parent : int; (* parent directory ino; root points to itself *)
  mutable f_ftype : ftype;
  mutable f_index_pages : int list;
  mutable f_data_pages : int list;
  mutable f_readers : (int, unit) Hashtbl.t; (* proc -> () *)
  mutable f_writer : int option;
  mutable f_lease_expire : float;
  mutable f_checkpoint : checkpoint option;
  mutable f_waiters : Sched.waker Queue.t;
  mutable f_quarantined_for : int option; (* corrupt: only this proc may map *)
  mutable f_degraded : degradation;
  mutable f_unverified : int option;
      (* last writer died/wedged before verification: the next map_file
         must pass the verifier gate (as this proc) before any grant *)
}

type proc_info = {
  p_id : int;
  p_cred : cred;
  p_group : int;
  mutable p_fix : (int -> bool) option; (* LibFS corruption-fix callback *)
  mutable p_recovery : (unit -> unit) option; (* LibFS crash-recovery program *)
  mutable p_pages : (int, unit) Hashtbl.t; (* pages Allocated_to this proc *)
  mutable p_inos : (int, unit) Hashtbl.t; (* inos Ino_allocated_to this proc *)
  mutable p_mapped : (int, unit) Hashtbl.t; (* inos this proc has mapped *)
  mutable p_last_heartbeat : float; (* virtual time of the last syscall *)
  mutable p_dead : bool; (* abnormally torn down by the watchdog *)
}

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  topo : Numa.t;
  lease_ns : float;
  node_allocs : Extent_alloc.t array;
  mutable next_ino : int;
  page_owner : (int, page_owner) Hashtbl.t; (* absent = Free *)
  ino_owner : (int, ino_owner) Hashtbl.t;
  shadow : (int, Verifier.shadow) Hashtbl.t;
  files : (int, file_info) Hashtbl.t;
  procs : (int, proc_info) Hashtbl.t;
  stats : Stats.t;
  mutable corruption_events : (int * int * Verifier.violation list) list;
      (* (proc, ino, violations) log, most recent first *)
  mutable quarantine : (int * int) list; (* (proc, quarantine ino) *)
  mutable badblocks : int list;
      (* pages retired by the scrubber: never returned to the allocator.
         Soft state — lost on cold_start (a real deployment would log
         them durably; see DESIGN.md §4.11). *)
}

let page_size = Layout.page_size

(* ------------------------------------------------------------------ *)
(* Construction *)

let owner_of t page = Option.value (Hashtbl.find_opt t.page_owner page) ~default:Free

let ino_owner_of t ino = Option.value (Hashtbl.find_opt t.ino_owner ino) ~default:Ino_free

let create ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  let topo = Pmem.topo pmem in
  let pages_per_node = Pmem.pages_per_node pmem in
  let node_allocs =
    Array.init (Numa.nodes topo) (fun n ->
        (* Node 0 loses its first pages to the superblock and the root
           dentry page. *)
        if n = 0 then Extent_alloc.create ~start:2 ~len:(pages_per_node - 2)
        else Extent_alloc.create ~start:(n * pages_per_node) ~len:pages_per_node)
  in
  let t =
    {
      sched;
      pmem;
      mmu;
      topo;
      lease_ns;
      node_allocs;
      next_ino = Layout.root_ino + 1;
      page_owner = Hashtbl.create 4096;
      ino_owner = Hashtbl.create 1024;
      shadow = Hashtbl.create 1024;
      files = Hashtbl.create 1024;
      procs = Hashtbl.create 16;
      stats = Stats.create ();
      corruption_events = [];
      quarantine = [];
      badblocks = [];
    }
  in
  Layout.mkfs pmem ~total_pages:(Pmem.total_pages pmem);
  Hashtbl.replace t.page_owner 0 (In_file Layout.root_ino);
  Hashtbl.replace t.page_owner Layout.root_dentry_page (In_file Layout.root_ino);
  Hashtbl.replace t.ino_owner Layout.root_ino (Ino_in_dir Layout.root_ino);
  Hashtbl.replace t.shadow Layout.root_ino
    { Verifier.s_ftype = Dir; s_mode = 0o777; s_uid = 0; s_gid = 0 };
  let root =
    {
      f_ino = Layout.root_ino;
      f_dentry_addr = Layout.root_dentry_addr;
      f_parent = Layout.root_ino;
      f_ftype = Dir;
      f_index_pages = [];
      f_data_pages = [];
      f_readers = Hashtbl.create 8;
      f_writer = None;
      f_lease_expire = 0.0;
      f_checkpoint = None;
      f_waiters = Queue.create ();
      f_quarantined_for = None;
      f_degraded = Healthy;
      f_unverified = None;
    }
  in
  Hashtbl.replace t.files Layout.root_ino root;
  t

let stats t = t.stats
let sched t = t.sched
let pmem t = t.pmem
let root_ino = Layout.root_ino
let root_dentry_addr = Layout.root_dentry_addr
let corruption_events t = t.corruption_events
let quarantined_files t = t.quarantine

let register_process t ~proc ~cred ?group ?fix ?recovery () =
  if proc = Pmem.kernel_actor then invalid_arg "Controller.register_process: reserved id";
  let info =
    {
      p_id = proc;
      p_cred = cred;
      p_group = Option.value group ~default:proc;
      p_fix = fix;
      p_recovery = recovery;
      p_pages = Hashtbl.create 64;
      p_inos = Hashtbl.create 64;
      p_mapped = Hashtbl.create 16;
      p_last_heartbeat = Sched.now t.sched;
      p_dead = false;
    }
  in
  Hashtbl.replace t.procs proc info;
  (* Every process can read the superblock and the root dentry page. *)
  Mmu.grant_free t.mmu ~actor:proc ~pages:[ 0; Layout.root_dentry_page ] ~perm:Mmu.P_read

let proc_info t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Controller: unregistered process %d" proc)

(* Every syscall doubles as a heartbeat: a process that stops making
   kernel calls is indistinguishable from one that died, which is
   exactly the signal the watchdog escalates on. *)
let touch t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p -> p.p_last_heartbeat <- Sched.now t.sched
  | None -> ()

let group_of t proc = (proc_info t proc).p_group

let file_info t ino = Hashtbl.find_opt t.files ino

(* ------------------------------------------------------------------ *)
(* Resource allocation (batched kernel calls) *)

let node_of_cpu t cpu = Numa.node_of_cpu t.topo cpu

let alloc_pages t ~proc ~node ~count ~kind =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  match Extent_alloc.alloc t.node_allocs.(node) count with
  | exception Extent_alloc.Out_of_space -> (
    (* fall back to any node with space *)
    let rec try_nodes n =
      if n >= Array.length t.node_allocs then Error ENOSPC
      else
        match Extent_alloc.alloc t.node_allocs.(n) count with
        | exception Extent_alloc.Out_of_space -> try_nodes (n + 1)
        | start -> Ok start
    in
    match try_nodes 0 with
    | Error e -> Error e
    | Ok start ->
      let pages = List.init count (fun i -> start + i) in
      List.iter
        (fun pg ->
          Hashtbl.replace t.page_owner pg (Allocated_to proc);
          Hashtbl.replace p.p_pages pg ();
          Pmem.set_kind t.pmem pg kind)
        pages;
      Mmu.grant_extent t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
      Ok pages)
  | start ->
    let pages = List.init count (fun i -> start + i) in
    List.iter
      (fun pg ->
        Hashtbl.replace t.page_owner pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ();
        Pmem.set_kind t.pmem pg kind)
      pages;
    Mmu.grant_extent t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
    Ok pages

(* Scan a directory data page for live entries; the controller refuses to
   free non-empty directory pages, which is what lets the verifier's I3
   deleted-directory check work (see DESIGN.md §4.4). *)
let dir_page_is_empty t pg =
  let b = Pmem.read t.pmem ~actor:Pmem.kernel_actor ~addr:(pg * page_size) ~len:page_size in
  let live = ref false in
  for slot = 0 to Layout.dentries_per_page - 1 do
    if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then live := true
  done;
  not !live

let free_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> Ok ()
    | In_file ino -> (
      match Hashtbl.find_opt t.files ino with
      | Some f when f.f_writer = Some proc || (Option.is_some f.f_writer && group_of t (Option.get f.f_writer) = group_of t proc) ->
        (* Freeing a directory data page requires it to be empty. *)
        if
          f.f_ftype = Dir
          && List.mem pg f.f_data_pages
          && not (dir_page_is_empty t pg)
        then Error EACCES
        else Ok ()
      | _ -> Error EACCES)
    | Allocated_to _ | Free -> Error EACCES
  in
  let rec validate = function
    | [] -> Ok ()
    | pg :: rest -> ( match check pg with Ok () -> validate rest | Error e -> Error e)
  in
  match validate pages with
  | Error e -> Error e
  | Ok () ->
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match Hashtbl.find_opt t.files ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages
          | None -> ())
        | _ -> ());
        Hashtbl.remove t.page_owner pg;
        Hashtbl.remove p.p_pages pg;
        Pmem.discard_page t.pmem pg;
        let node = pg / Pmem.pages_per_node t.pmem in
        Extent_alloc.free t.node_allocs.(node) pg 1)
      pages;
    Sched.delay (Perf.Cpu.page_table_op *. float_of_int (List.length pages));
    Mmu.revoke_everyone_on_pages t.mmu ~pages;
    Ok ()

(* Return pages of a write-mapped file to the calling process'
   allocation pool *without* touching the MMU: the LibFS keeps its
   existing access and reuses the pages directly (the fast truncate /
   rewrite path; the ownership change is what keeps check I2 sound). *)
let recycle_pages t ~proc ~pages =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let my_group = group_of t proc in
  let check pg =
    match owner_of t pg with
    | Allocated_to q when q = proc -> true
    | In_file ino -> (
      match Hashtbl.find_opt t.files ino with
      | Some f -> (
        match f.f_writer with
        | Some w -> (w = proc || group_of t w = my_group)
                    && not (f.f_ftype = Dir && List.mem pg f.f_data_pages)
        | None -> false)
      | None -> false)
    | Allocated_to _ | Free -> false
  in
  if not (List.for_all check pages) then Error EACCES
  else begin
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | In_file ino -> (
          match Hashtbl.find_opt t.files ino with
          | Some f ->
            f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
            f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages
          | None -> ())
        | _ -> ());
        Hashtbl.replace t.page_owner pg (Allocated_to proc);
        Hashtbl.replace p.p_pages pg ())
      pages;
    Ok ()
  end

let alloc_inos t ~proc ~count =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  let p = proc_info t proc in
  let inos = List.init count (fun i -> t.next_ino + i) in
  t.next_ino <- t.next_ino + count;
  List.iter
    (fun ino ->
      Hashtbl.replace t.ino_owner ino (Ino_allocated_to proc);
      Hashtbl.replace p.p_inos ino ())
    inos;
  inos

(* ------------------------------------------------------------------ *)
(* Verifier view *)

let view t =
  {
    Verifier.pmem = t.pmem;
    total_pages = Pmem.total_pages t.pmem;
    page_owner = (fun pg -> owner_of t pg);
    ino_owner = (fun ino -> ino_owner_of t ino);
    shadow = (fun ino -> Hashtbl.find_opt t.shadow ino);
    checkpoint_children =
      (fun ino ->
        match Hashtbl.find_opt t.files ino with
        | Some { f_checkpoint = Some ck; _ } -> Some ck.ck_children
        | _ -> None);
    is_mapped_elsewhere =
      (fun ~ino ~proc ->
        match Hashtbl.find_opt t.files ino with
        | None -> false
        | Some f ->
          (match f.f_writer with Some w when w <> proc -> true | _ -> false)
          || Hashtbl.fold (fun r () acc -> acc || r <> proc) f.f_readers false);
    write_mapped_by_other =
      (fun ~ino ~proc ->
        match Hashtbl.find_opt t.files ino with
        | Some { f_writer = Some w; _ } -> w <> proc
        | _ -> false);
    pages_attributed_to =
      (fun ino ->
        match Hashtbl.find_opt t.files ino with
        | None -> []
        | Some f -> f.f_index_pages @ f.f_data_pages);
    dir_write_mapped_by =
      (fun ~dir ~proc ->
        match Hashtbl.find_opt t.files dir with
        | Some { f_writer = Some w; _ } -> w = proc
        | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Mapping bookkeeping helpers *)

let file_pages f = (f.f_dentry_addr / page_size) :: (f.f_index_pages @ f.f_data_pages)

(* Walk a file's on-NVM page tree with kernel reads.  Used at map time to
   find what to grant and at ingestion to attribute pages. *)
let walk_file t ~ino:_ ~dentry_addr =
  let actor = Pmem.kernel_actor in
  match Layout.read_dentry t.pmem ~actor ~addr:dentry_addr with
  | None | Some (Error _) -> None
  | Some (Ok (inode, _name)) ->
    let index_pages = ref [] and data_pages = ref [] in
    let result =
      Layout.walk_index_chain t.pmem ~actor ~head:inode.Layout.index_head
        ~max_pages:(Pmem.total_pages t.pmem) (fun ~index_page ~entries ~next:_ ->
          index_pages := index_page :: !index_pages;
          Array.iter (fun e -> if e <> 0 then data_pages := e :: !data_pages) entries)
    in
    (match result with Ok () -> () | Error _ -> ());
    Some (inode, List.rev !index_pages, List.rev !data_pages)

let take_checkpoint t f =
  let actor = Pmem.kernel_actor in
  let dentry = Pmem.read t.pmem ~actor ~addr:f.f_dentry_addr ~len:Layout.dentry_size in
  let meta_pages =
    match f.f_ftype with
    | Reg -> f.f_index_pages
    | Dir -> f.f_index_pages @ f.f_data_pages
  in
  let ck_pages =
    List.map
      (fun pg -> (pg, Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size))
      meta_pages
  in
  let children =
    if f.f_ftype = Dir then
      List.concat_map
        (fun pg ->
          let b = Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size in
          List.filter_map
            (fun slot ->
              let ino = Layout.get_u64 b (slot * Layout.dentry_size) in
              if ino = 0 then None else Some ino)
            (List.init Layout.dentries_per_page Fun.id))
        f.f_data_pages
    else []
  in
  let inode =
    match Layout.decode_dentry dentry with
    | Some (Ok (inode, _)) -> inode
    | _ -> (* unreadable dentry: checkpoint what we can *)
      {
        Layout.ino = f.f_ino;
        ftype = f.f_ftype;
        mode = 0;
        uid = 0;
        gid = 0;
        size = 0;
        index_head = 0;
        mtime = 0;
        ctime = 0;
      }
  in
  f.f_checkpoint <-
    Some
      {
        ck_dentry = dentry;
        ck_pages;
        ck_children = children;
        ck_size = inode.Layout.size;
        ck_index_head = inode.Layout.index_head;
      }

(* Restore a file's metadata to its checkpoint: the corruption-recovery
   policy of §4.3.  Pages referenced now but not at checkpoint time fall
   back to the offending process' allocation pool. *)
let rollback_to_checkpoint t f ~offender =
  match f.f_checkpoint with
  | None -> ()
  | Some ck ->
    let actor = Pmem.kernel_actor in
    Pmem.write t.pmem ~actor ~addr:f.f_dentry_addr ~src:ck.ck_dentry;
    Pmem.persist t.pmem ~addr:f.f_dentry_addr ~len:Layout.dentry_size;
    List.iter
      (fun (pg, snapshot) ->
        Pmem.write t.pmem ~actor ~addr:(pg * page_size) ~src:snapshot;
        Pmem.persist t.pmem ~addr:(pg * page_size) ~len:page_size)
      ck.ck_pages;
    (* Pages added since the checkpoint return to the offender. *)
    let ck_set = List.map fst ck.ck_pages in
    let offender_info = proc_info t offender in
    List.iter
      (fun pg ->
        if not (List.mem pg ck_set) then begin
          Hashtbl.replace t.page_owner pg (Allocated_to offender);
          Hashtbl.replace offender_info.p_pages pg ()
        end)
      (f.f_index_pages @ f.f_data_pages);
    (* Recompute attribution by re-walking the restored metadata. *)
    (match walk_file t ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr with
    | Some (_inode, index_pages, data_pages) ->
      f.f_index_pages <- index_pages;
      f.f_data_pages <- data_pages;
      List.iter
        (fun pg ->
          Hashtbl.replace t.page_owner pg (In_file f.f_ino);
          Hashtbl.remove offender_info.p_pages pg)
        (index_pages @ data_pages)
    | None -> ())

(* Preserve the offender's corrupted bytes as a private quarantine file so
   no data is silently lost (§4.3). *)
let quarantine_copy t f ~offender =
  let actor = Pmem.kernel_actor in
  let pages = f.f_index_pages @ f.f_data_pages in
  let qino = List.hd (alloc_inos t ~proc:offender ~count:1) in
  (* Copy every current page into fresh pages owned by the offender. *)
  List.iter
    (fun pg ->
      let node = pg / Pmem.pages_per_node t.pmem in
      match alloc_pages t ~proc:offender ~node ~count:1 ~kind:(Pmem.kind_of t.pmem pg) with
      | Ok [ dst ] ->
        let b = Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size in
        Pmem.write t.pmem ~actor ~addr:(dst * page_size) ~src:b;
        Pmem.persist t.pmem ~addr:(dst * page_size) ~len:page_size
      | _ -> ())
    pages;
  t.quarantine <- (offender, qino) :: t.quarantine

(* ------------------------------------------------------------------ *)
(* Ingestion: after a successful verification, reconcile global info *)

let cred_of_proc t proc = (proc_info t proc).p_cred

let rec ingest_verified t ~proc ~(f : file_info) (report : Verifier.report) =
  let pinfo = proc_info t proc in
  (* Page attribution: everything the walk saw becomes In_file; pages that
     left the file (truncate without free) return to the proc. *)
  let new_pages = report.Verifier.index_pages @ report.Verifier.data_pages in
  let old_pages = f.f_index_pages @ f.f_data_pages in
  List.iter
    (fun pg ->
      if not (List.mem pg new_pages) then begin
        Hashtbl.replace t.page_owner pg (Allocated_to proc);
        Hashtbl.replace pinfo.p_pages pg ()
      end)
    old_pages;
  List.iter
    (fun pg ->
      Hashtbl.replace t.page_owner pg (In_file f.f_ino);
      Hashtbl.remove pinfo.p_pages pg)
    new_pages;
  f.f_index_pages <- report.Verifier.index_pages;
  f.f_data_pages <- report.Verifier.data_pages;
  (* Once pages belong to a file the creator no longer holds write-mapped,
     its allocation-time grants must go: otherwise it would retain access
     after the handoff, defeating the exclusive-write policy. *)
  if f.f_writer <> Some proc then
    Mmu.revoke_free t.mmu ~actor:proc ~pages:new_pages ~perm:Mmu.P_readwrite;
  (* Children: ingest newly created files, update moved dentries. *)
  List.iter
    (fun (c : Verifier.child) ->
      match ino_owner_of t c.Verifier.c_ino with
      | Ino_allocated_to p when p = proc ->
        (* Fresh file: establish the shadow inode with the creator's
           credentials as ground truth. *)
        let cred = cred_of_proc t proc in
        let mode =
          match Layout.read_dentry t.pmem ~actor:Pmem.kernel_actor ~addr:c.Verifier.c_dentry_addr with
          | Some (Ok (inode, _)) -> inode.Layout.mode land 0o7777
          | _ -> 0o644
        in
        Hashtbl.replace t.shadow c.Verifier.c_ino
          { Verifier.s_ftype = c.Verifier.c_ftype; s_mode = mode; s_uid = cred.uid; s_gid = cred.gid };
        Hashtbl.replace t.ino_owner c.Verifier.c_ino (Ino_in_dir f.f_ino);
        Hashtbl.remove pinfo.p_inos c.Verifier.c_ino;
        let child_file =
          {
            f_ino = c.Verifier.c_ino;
            f_dentry_addr = c.Verifier.c_dentry_addr;
            f_parent = f.f_ino;
            f_ftype = c.Verifier.c_ftype;
            f_index_pages = [];
            f_data_pages = [];
            f_readers = Hashtbl.create 4;
            f_writer = None;
            f_lease_expire = 0.0;
            f_checkpoint = None;
            f_waiters = Queue.create ();
            f_quarantined_for = None;
            f_degraded = Healthy;
      f_unverified = None;
          }
        in
        Hashtbl.replace t.files c.Verifier.c_ino child_file;
        (* Recursively verify and ingest the fresh subtree. *)
        let child_report =
          Verifier.check_file (view t) ~proc ~ino:c.Verifier.c_ino
            ~dentry_addr:c.Verifier.c_dentry_addr
        in
        if child_report.Verifier.ok then ingest_verified t ~proc ~f:child_file child_report
        else begin
          t.corruption_events <-
            (proc, c.Verifier.c_ino, child_report.Verifier.violations) :: t.corruption_events;
          (* A fresh file that fails verification is simply not ingested:
             remove its dentry so the namespace stays consistent. *)
          Layout.clear_dentry_atomic t.pmem ~actor:Pmem.kernel_actor
            ~addr:c.Verifier.c_dentry_addr;
          Hashtbl.remove t.files c.Verifier.c_ino;
          Hashtbl.remove t.shadow c.Verifier.c_ino;
          Hashtbl.replace t.ino_owner c.Verifier.c_ino (Ino_allocated_to proc)
        end
      | Ino_in_dir parent when parent = f.f_ino -> (
        (* Existing child: its dentry may have moved within the dir. *)
        match Hashtbl.find_opt t.files c.Verifier.c_ino with
        | Some cf -> cf.f_dentry_addr <- c.Verifier.c_dentry_addr
        | None -> ())
      | Ino_in_dir _other -> (
        (* Cross-directory move (rename): accept, since the verifier
           only lets this through when the source is write-mapped by
           the same process. *)
        Hashtbl.replace t.ino_owner c.Verifier.c_ino (Ino_in_dir f.f_ino);
        match Hashtbl.find_opt t.files c.Verifier.c_ino with
        | Some cf ->
          cf.f_dentry_addr <- c.Verifier.c_dentry_addr;
          cf.f_parent <- f.f_ino
        | None -> ())
      | Ino_allocated_to _ | Ino_free -> ())
    report.Verifier.children;
  (* Deleted children: reclaim regular-file pages, drop records. *)
  List.iter
    (fun dino ->
      match ino_owner_of t dino with
      | Ino_in_dir parent when parent = f.f_ino -> (
        match Hashtbl.find_opt t.files dino with
        | Some df ->
          List.iter
            (fun pg ->
              Hashtbl.remove t.page_owner pg;
              Pmem.discard_page t.pmem pg;
              let node = pg / Pmem.pages_per_node t.pmem in
              Extent_alloc.free t.node_allocs.(node) pg 1)
            (df.f_index_pages @ df.f_data_pages);
          Hashtbl.remove t.files dino;
          Hashtbl.remove t.shadow dino;
          Hashtbl.remove t.ino_owner dino
        | None ->
          Hashtbl.remove t.shadow dino;
          Hashtbl.remove t.ino_owner dino)
      | _ -> () (* moved elsewhere: nothing to reclaim *))
    report.Verifier.deleted_children;
  (* Refresh the checkpoint so it always holds the latest *verified*
     state — including for freshly ingested children, via the recursion
     above.  This is what the patrol scrubber repairs media-damaged
     metadata lines from (see {!Scrub}). *)
  take_checkpoint t f

(* ------------------------------------------------------------------ *)
(* Verification driver (runs on unmap of a write mapping) *)

let verify_file t ~proc ~(f : file_info) =
  let report =
    Stats.timed t.stats t.sched "verify" (fun () ->
        Verifier.check_file (view t) ~proc ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr)
  in
  if report.Verifier.ok then begin
    (* ingestion recursively verifies freshly created children, so its
       time also counts as verification *)
    Stats.timed t.stats t.sched "verify" (fun () -> ingest_verified t ~proc ~f report);
    true
  end
  else begin
    t.corruption_events <- (proc, f.f_ino, report.Verifier.violations) :: t.corruption_events;
    (* Give the LibFS a chance to fix its own corruption (with the fix
       budget modeled by the callback's own virtual time), then re-check. *)
    let fixed =
      match (proc_info t proc).p_fix with
      | Some fix_fn -> (
        match fix_fn f.f_ino with
        | true ->
          let retry =
            Verifier.check_file (view t) ~proc ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr
          in
          if retry.Verifier.ok then begin
            ingest_verified t ~proc ~f retry;
            true
          end
          else false
        | false -> false
        | exception _ -> false)
      | None -> false
    in
    if not fixed then begin
      (* Preserve the offender's bytes, then roll the file back. *)
      quarantine_copy t f ~offender:proc;
      rollback_to_checkpoint t f ~offender:proc;
      f.f_quarantined_for <- None
    end;
    fixed
  end

(* Release the inode numbers a dead process still holds.  Its cached
   *pages* are deliberately left attributed (Allocated_to) for the
   orphan GC: routing all page reclamation through {!gc_once} keeps it
   observable in the accounting invariant, which is how the skip-GC
   mutation stays provably catchable.  Effect-free. *)
let reap_dead t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some p when p.p_dead ->
    let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) p.p_inos [] in
    List.iter
      (fun ino ->
        Hashtbl.remove t.ino_owner ino;
        Hashtbl.remove p.p_inos ino)
      inos;
    List.length inos
  | _ -> 0

(* Verifier gate for files whose last writer died or wedged (§4.4 of the
   paper: crash consistency of the handoff).  The watchdog only marks
   such files unverified — it cannot run the dead process' fix callback,
   and charging verification to the next accessor keeps the failure
   plane pay-as-you-go.  Repair policy: accept the dead writer's state
   if it verifies as-is; otherwise roll back to the last verified
   checkpoint and re-check; if even the rollback does not verify, the
   file degrades to Failed and the mapping is refused with EIO. *)
let ensure_verified t ~(f : file_info) =
  match f.f_unverified with
  | None -> Ok ()
  | Some dead ->
    f.f_unverified <- None;
    let check () =
      Stats.timed t.stats t.sched "verify" (fun () ->
          Verifier.check_file (view t) ~proc:dead ~ino:f.f_ino ~dentry_addr:f.f_dentry_addr)
    in
    let report = check () in
    let outcome =
      if report.Verifier.ok then begin
        ingest_verified t ~proc:dead ~f report;
        Ok ()
      end
      else begin
        t.corruption_events <- (dead, f.f_ino, report.Verifier.violations) :: t.corruption_events;
        match f.f_checkpoint with
        | None ->
          f.f_degraded <- Failed;
          Error EIO
        | Some _ ->
          rollback_to_checkpoint t f ~offender:dead;
          let retry = check () in
          if retry.Verifier.ok then begin
            ingest_verified t ~proc:dead ~f retry;
            Ok ()
          end
          else begin
            f.f_degraded <- Failed;
            Error EIO
          end
      end
    in
    (* Ingestion/rollback may have returned stray pages to the dead
       process' pool; release its inode numbers now and leave the pages
       for the orphan GC to sweep. *)
    ignore (reap_dead t dead);
    outcome

(* Force the verifier gate for every file still pending (fsck/admin
   path).  Afterwards the GC owes nothing to the gate and may reclaim
   every stray page of the dead processes.  Returns how many files were
   drained. *)
let drain_unverified t =
  let pending =
    Hashtbl.fold (fun _ f acc -> if f.f_unverified <> None then f :: acc else acc) t.files []
  in
  List.iter (fun f -> ignore (ensure_verified t ~f)) pending;
  List.length pending

(* ------------------------------------------------------------------ *)
(* Map / unmap *)

let wake_all f =
  while not (Queue.is_empty f.f_waiters) do
    (Queue.pop f.f_waiters) ()
  done

let revoke_mapping t ~proc ~(f : file_info) ~was_writer =
  let pages = file_pages f in
  let perm = if was_writer then Mmu.P_readwrite else Mmu.P_read in
  Stats.timed t.stats t.sched "unmap" (fun () -> Mmu.revoke t.mmu ~actor:proc ~pages ~perm);
  Hashtbl.remove (proc_info t proc).p_mapped f.f_ino;
  if was_writer then begin
    f.f_writer <- None;
    ignore (verify_file t ~proc ~f)
  end
  else Hashtbl.remove f.f_readers proc;
  wake_all f

let unmap_file t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f ->
    if f.f_writer = Some proc then begin
      revoke_mapping t ~proc ~f ~was_writer:true;
      Ok ()
    end
    else if Hashtbl.mem f.f_readers proc then begin
      revoke_mapping t ~proc ~f ~was_writer:false;
      Ok ()
    end
    else Error EBADF

(* Force-unmap the current holder(s) after lease expiry; charged to the
   fiber that requests the conflicting access. *)
let force_unmap_holders t ~(f : file_info) ~for_writer =
  (match f.f_writer with
  | Some holder -> revoke_mapping t ~proc:holder ~f ~was_writer:true
  | None -> ());
  if for_writer then
    Hashtbl.iter (fun r () -> revoke_mapping t ~proc:r ~f ~was_writer:false)
      (Hashtbl.copy f.f_readers)

let conflicts t ~proc ~(f : file_info) ~write =
  let my_group = group_of t proc in
  let writer_conflict =
    match f.f_writer with
    | None -> false
    | Some w -> w <> proc && group_of t w <> my_group
  in
  if write then
    writer_conflict
    || Hashtbl.fold
         (fun r () acc -> acc || (r <> proc && group_of t r <> my_group))
         f.f_readers false
  else writer_conflict

let rec wait_for_access t ~proc ~(f : file_info) ~write =
  if conflicts t ~proc ~f ~write then begin
    (* Readers are revoked immediately for a writer: a read mapping
       needs no verification on teardown, and the reader transparently
       re-maps on its next access.  Leases only protect writers, whose
       handoff requires verification. *)
    let my_group = group_of t proc in
    let writer_conflict =
      match f.f_writer with
      | None -> false
      | Some w -> w <> proc && group_of t w <> my_group
    in
    if write && not writer_conflict then force_unmap_holders t ~f ~for_writer:true
    else begin
    let expire = f.f_lease_expire in
    let now = Sched.now t.sched in
    if now >= expire then force_unmap_holders t ~f ~for_writer:write
    else begin
      (* Sleep until the lease expires or the holder unmaps. *)
      Sched.park (fun waker ->
          Queue.push waker f.f_waiters;
          Sched.schedule t.sched expire waker);
      if conflicts t ~proc ~f ~write && Sched.now t.sched >= f.f_lease_expire then
        force_unmap_holders t ~f ~for_writer:write
    end
    end;
    wait_for_access t ~proc ~f ~write
  end

let map_file t ~proc ~ino ~write =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f -> (
    (* Unverified handoff from a dead/wedged writer: verify (and repair
       from the checkpoint where possible) before any grant. *)
    (match ensure_verified t ~f with
    | Error e -> Error e
    | Ok () -> (
      match f.f_quarantined_for with
      | Some p when p <> proc -> Error EIO
      | _ -> (
        (* Media-degraded files: Failed rejects everything, Degraded_ro
           rejects write mappings (graceful degradation, not a panic). *)
        match f.f_degraded with
        | Failed -> Error EIO
        | Degraded_ro when write -> Error EROFS
        | _ -> Ok ())))
    |> function
    | Error e -> Error e
    | Ok () -> (
      (* Permission check against the shadow inode (ground truth). *)
      let cred = cred_of_proc t proc in
      match Hashtbl.find_opt t.shadow ino with
      | None -> Error ENOENT
      | Some s ->
        if
          not
            (Fs_types.permits ~cred ~uid:s.Verifier.s_uid ~gid:s.Verifier.s_gid
               ~mode:s.Verifier.s_mode ~want_read:true ~want_write:write)
        then Error EACCES
        else begin
          wait_for_access t ~proc ~f ~write;
          (* Claim the mapping before the (slow) walk/checkpoint/grant so
             no other fiber slips in during those delays. *)
          if write then begin
            f.f_writer <- Some proc;
            (* read-to-write upgrade: the earlier read grants must go,
               or revoking the write mapping later would leave access *)
            if Hashtbl.mem f.f_readers proc then begin
              Hashtbl.remove f.f_readers proc;
              Mmu.revoke_free t.mmu ~actor:proc ~pages:(file_pages f) ~perm:Mmu.P_read
            end
          end
          else Hashtbl.replace f.f_readers proc ();
          f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
          (* Walk the file to find the page set. *)
          (match walk_file t ~ino ~dentry_addr:f.f_dentry_addr with
          | Some (_, index_pages, data_pages) ->
            f.f_index_pages <- index_pages;
            f.f_data_pages <- data_pages
          | None -> ());
          if write then take_checkpoint t f;
          let pages = file_pages f in
          Stats.timed t.stats t.sched "map" (fun () ->
              Mmu.grant t.mmu ~actor:proc ~pages
                ~perm:(if write then Mmu.P_readwrite else Mmu.P_read));
          f.f_lease_expire <- Sched.now t.sched +. t.lease_ns;
          Hashtbl.replace (proc_info t proc).p_mapped ino ();
          Ok ()
        end))

(* Commit: re-verify now and, on success, replace the checkpoint so a
   later rollback cannot lose the committed changes (§4.3). *)
let commit t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f ->
    if f.f_writer <> Some proc then Error EBADF
    else begin
      let report =
        Stats.timed t.stats t.sched "verify" (fun () ->
            Verifier.check_file (view t) ~proc ~ino ~dentry_addr:f.f_dentry_addr)
      in
      if report.Verifier.ok then begin
        ingest_verified t ~proc ~f report;
        take_checkpoint t f;
        Ok ()
      end
      else Error EIO
    end

(* Permission changes go through the kernel: the shadow inode is the
   ground truth (I4). *)
let chmod t ~proc ~ino ~mode =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match (Hashtbl.find_opt t.shadow ino, Hashtbl.find_opt t.files ino) with
  | Some s, Some f ->
    let cred = cred_of_proc t proc in
    if cred.uid <> 0 && cred.uid <> s.Verifier.s_uid then Error EACCES
    else begin
      let s' = { s with Verifier.s_mode = mode land 0o7777 } in
      Hashtbl.replace t.shadow ino s';
      Layout.write_perms t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
        ~mode:s'.Verifier.s_mode ~uid:s'.Verifier.s_uid ~gid:s'.Verifier.s_gid;
      Ok ()
    end
  | _ -> Error ENOENT

let chown t ~proc ~ino ~uid ~gid =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match (Hashtbl.find_opt t.shadow ino, Hashtbl.find_opt t.files ino) with
  | Some s, Some f ->
    let cred = cred_of_proc t proc in
    if cred.uid <> 0 then Error EACCES
    else begin
      let s' = { s with Verifier.s_uid = uid; s_gid = gid } in
      Hashtbl.replace t.shadow ino s';
      Layout.write_perms t.pmem ~actor:Pmem.kernel_actor ~dentry_addr:f.f_dentry_addr
        ~mode:s'.Verifier.s_mode ~uid ~gid;
      Ok ()
    end
  | _ -> Error ENOENT

let shadow_of t ino = Hashtbl.find_opt t.shadow ino

(* Files currently write-mapped by [proc]; a LibFS recovery program uses
   this to know what it must repair after a crash. *)
let write_mapped_inos t ~proc =
  Hashtbl.fold
    (fun ino (f : file_info) acc ->
      if f.f_writer = Some proc then (ino, f.f_dentry_addr, f.f_ftype) :: acc else acc)
    t.files []

let dentry_addr_of t ino =
  match Hashtbl.find_opt t.files ino with Some f -> Some f.f_dentry_addr | None -> None

let page_owner_of t page = owner_of t page

(* Free every page of a (just-unlinked) file and drop its records.  The
   caller must hold a write mapping on the file's parent directory —
   that is the permission unlink itself required. *)
let free_file_tree t ~proc ~ino =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc;
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f -> (
    match Hashtbl.find_opt t.files f.f_parent with
    | Some parent
      when (match parent.f_writer with
           | Some w -> w = proc || group_of t w = group_of t proc
           | None -> false) ->
      if f.f_ftype = Dir && not (List.for_all (dir_page_is_empty t) f.f_data_pages) then
        Error ENOTEMPTY
      else begin
        let pages = f.f_index_pages @ f.f_data_pages in
        List.iter
          (fun pg ->
            Hashtbl.remove t.page_owner pg;
            Pmem.discard_page t.pmem pg;
            let node = pg / Pmem.pages_per_node t.pmem in
            Extent_alloc.free t.node_allocs.(node) pg 1)
          pages;
        Mmu.revoke_everyone_on_pages t.mmu ~pages;
        Hashtbl.remove t.files ino;
        Hashtbl.remove t.shadow ino;
        Hashtbl.remove t.ino_owner ino;
        Ok ()
      end
    | _ -> Error EACCES)

(* Release everything a process has mapped (process teardown). *)
let unmap_all t ~proc =
  let p = proc_info t proc in
  let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) p.p_mapped [] in
  List.iter (fun ino -> ignore (unmap_file t ~proc ~ino)) inos

(* ------------------------------------------------------------------ *)
(* Process-failure plane: heartbeats, watchdog, abnormal teardown.

   A LibFS that dies or wedges mid-operation never unmaps cleanly: its
   write-mapped files hold torn intermediate state and its allocation
   cache holds pages nobody will ever link.  The watchdog notices the
   silence (no syscalls = no heartbeats), waits out any running write
   lease, then escalates: force-revoke every mapping, mark each file the
   process could write as unverified (the map_file gate verifies before
   the next grant), and tear the address space down.  Orphaned pages are
   reclaimed by {!gc_once}. *)

let heartbeat t ~proc =
  Sched.shield @@ fun () ->
  Sched.cpu_work Perf.Cpu.syscall;
  touch t proc

let last_heartbeat t ~proc = (proc_info t proc).p_last_heartbeat

let process_dead t ~proc =
  match Hashtbl.find_opt t.procs proc with Some p -> p.p_dead | None -> false

let processes t =
  Hashtbl.fold (fun id (p : proc_info) -> List.cons (id, p.p_dead, p.p_last_heartbeat)) t.procs []
  |> List.sort compare

type watchdog_report = {
  mutable wd_scanned : int; (* live processes examined *)
  mutable wd_escalated : int list; (* processes abnormally torn down *)
  mutable wd_unverified : int; (* files marked for the verifier gate *)
  mutable wd_revoked : int; (* mappings force-revoked *)
}

let make_watchdog_report () =
  { wd_scanned = 0; wd_escalated = []; wd_unverified = 0; wd_revoked = 0 }

let pp_watchdog_report ppf r =
  Format.fprintf ppf "scanned %d, escalated [%s], %d file(s) unverified, %d mapping(s) revoked"
    r.wd_scanned
    (String.concat "; " (List.map string_of_int (List.rev r.wd_escalated)))
    r.wd_unverified r.wd_revoked

(* The ladder's last rung.  Unlike unmap_file this never verifies
   inline: the process is gone, so the kernel neither trusts nor runs
   its callbacks — files are only marked unverified and verification is
   charged to whoever maps them next.  MMU teardown is wholesale. *)
let abnormal_teardown ?report t ~proc =
  let p = proc_info t proc in
  if not p.p_dead then begin
    let bump g = match report with Some r -> g r | None -> () in
    Hashtbl.iter
      (fun ino () ->
        match Hashtbl.find_opt t.files ino with
        | None -> ()
        | Some f ->
          bump (fun r -> r.wd_revoked <- r.wd_revoked + 1);
          if f.f_writer = Some proc then begin
            f.f_writer <- None;
            f.f_unverified <- Some proc;
            bump (fun r -> r.wd_unverified <- r.wd_unverified + 1)
          end
          else Hashtbl.remove f.f_readers proc;
          wake_all f)
      (Hashtbl.copy p.p_mapped);
    Hashtbl.reset p.p_mapped;
    p.p_fix <- None;
    p.p_recovery <- None;
    p.p_dead <- true;
    Mmu.revoke_actor t.mmu ~actor:proc;
    bump (fun r -> r.wd_escalated <- proc :: r.wd_escalated)
  end

(* One watchdog scan.  A process is escalated when it has been silent
   longer than [timeout_ns] while still holding resources — except that
   a silent writer whose lease is still running gets the benefit of the
   doubt until the lease expires (rung 1 of the ladder: lease-expiry
   force-revoke, same policy as {!force_unmap_holders}). *)
let watchdog_once ?report t ~timeout_ns =
  let now = Sched.now t.sched in
  let escalated = ref [] in
  Hashtbl.iter
    (fun proc (p : proc_info) ->
      if not p.p_dead then begin
        (match report with Some r -> r.wd_scanned <- r.wd_scanned + 1 | None -> ());
        let stale = now -. p.p_last_heartbeat > timeout_ns in
        let holds =
          Hashtbl.length p.p_mapped > 0
          || Hashtbl.length p.p_pages > 0
          || Hashtbl.length p.p_inos > 0
        in
        let lease_running =
          Hashtbl.fold
            (fun ino () acc ->
              acc
              ||
              match Hashtbl.find_opt t.files ino with
              | Some f -> f.f_writer = Some proc && now < f.f_lease_expire
              | None -> false)
            p.p_mapped false
        in
        if stale && holds && not lease_running then begin
          abnormal_teardown ?report t ~proc;
          escalated := proc :: !escalated
        end
      end)
    (Hashtbl.copy t.procs);
  List.rev !escalated

(* Periodic watchdog fiber, bounded like {!Scrub.run_patrol} so the
   event heap always drains. *)
let run_watchdog ?report t ~timeout_ns ~interval_ns ~rounds =
  Sched.spawn t.sched (fun () ->
      for _ = 1 to rounds do
        Sched.delay interval_ns;
        ignore (watchdog_once ?report t ~timeout_ns)
      done)

(* ------------------------------------------------------------------ *)
(* Orphan-page GC and the page-accounting invariant.

   Mark: a file is reachable when its parent chain ends at the root and
   the shadow inode table (ground truth) still knows it.  Sweep: every
   device page is either free (per the extent allocators), attributed to
   a reachable file, cached by a live process (allocation caches,
   journals), or a retired badblock — anything else is an orphan left by
   a dead process and is reclaimed.  The invariant
       free + reachable + cached + badblocks = device pages
   is computed from scratch each run and exposed in the report.

   Ordering against the verifier gate: while a dead process still has
   files awaiting gate verification, pages it holds may in fact be
   linked — a freshly created file lives in Allocated_to pages until its
   first verification attributes them In_file.  The GC therefore defers
   (counts as cached) a dead process' pages until its unverified set
   drains — via the next map_file or {!drain_unverified} — and only then
   treats the leftovers as orphans. *)

(* Deliberate mutation hook for the self-test of the leak invariant: a
   GC that never reclaims must be *provably* caught by the report. *)
let crash_test_skip_gc = ref false

let set_crash_test_skip_gc b = crash_test_skip_gc := b

type gc_report = {
  gc_total : int; (* device pages *)
  gc_free : int; (* per the extent allocators *)
  gc_reachable : int; (* In_file pages of root-reachable files *)
  gc_cached : int; (* Allocated_to a live process *)
  gc_badblocks : int; (* retired by the scrubber *)
  gc_reclaimed_pages : int; (* orphans swept this run *)
  gc_reclaimed_inos : int;
  gc_leaked : int; (* orphans still present after the sweep *)
  gc_invariant_ok : bool; (* free + reachable + cached + badblocks = total *)
}

let pp_gc_report ppf r =
  Format.fprintf ppf
    "total %d = free %d + reachable %d + cached %d + badblocks %d%s; reclaimed %d page(s) %d \
     ino(s), leaked %d [%s]"
    r.gc_total r.gc_free r.gc_reachable r.gc_cached r.gc_badblocks
    (if r.gc_invariant_ok then "" else " (MISMATCH)")
    r.gc_reclaimed_pages r.gc_reclaimed_inos r.gc_leaked
    (if r.gc_invariant_ok && r.gc_leaked = 0 then "ok" else "LEAK")

let reachable_files t =
  let memo = Hashtbl.create (Hashtbl.length t.files) in
  let rec reach ino seen =
    match Hashtbl.find_opt memo ino with
    | Some v -> v
    | None ->
      let v =
        if ino = Layout.root_ino then Hashtbl.mem t.shadow ino
        else if List.mem ino seen then false
        else
          Hashtbl.mem t.shadow ino
          &&
          match Hashtbl.find_opt t.files ino with
          | None -> false
          | Some f -> reach f.f_parent (ino :: seen)
      in
      Hashtbl.replace memo ino v;
      v
  in
  Hashtbl.iter (fun ino _ -> ignore (reach ino [])) t.files;
  memo

(* Effect-free (no virtual-time cost, kernel-only reads of soft state)
   so tests can also run it after the simulation drains. *)
let gc_once t =
  let reach = reachable_files t in
  let live proc =
    match Hashtbl.find_opt t.procs proc with Some p -> not p.p_dead | None -> false
  in
  (* Dead processes with files still awaiting the verifier gate: their
     pages are deferred, not orphaned (see the section comment). *)
  let pending = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ f -> match f.f_unverified with Some p -> Hashtbl.replace pending p () | None -> ())
    t.files;
  let total = Pmem.total_pages t.pmem in
  let reachable = ref 0 and cached = ref 0 in
  let orphans = ref [] in
  for pg = 0 to total - 1 do
    match owner_of t pg with
    | Free -> ()
    | In_file ino ->
      if Option.value (Hashtbl.find_opt reach ino) ~default:false then incr reachable
      else orphans := pg :: !orphans
    | Allocated_to p ->
      if live p || Hashtbl.mem pending p then incr cached else orphans := pg :: !orphans
  done;
  let reclaimed_pages = ref 0 and leaked = ref 0 in
  if !crash_test_skip_gc then leaked := List.length !orphans
  else begin
    List.iter
      (fun pg ->
        (match owner_of t pg with
        | Allocated_to p -> (
          match Hashtbl.find_opt t.procs p with
          | Some pi -> Hashtbl.remove pi.p_pages pg
          | None -> ())
        | _ -> ());
        Hashtbl.remove t.page_owner pg;
        Pmem.discard_page t.pmem pg;
        Extent_alloc.free t.node_allocs.(pg / Pmem.pages_per_node t.pmem) pg 1;
        incr reclaimed_pages)
      !orphans;
    Mmu.revoke_everyone_on_pages t.mmu ~pages:!orphans
  end;
  (* Orphan inode numbers: allocated to a process that no longer exists
     (or is dead) and never linked into a directory. *)
  let reclaimed_inos = ref 0 in
  if not !crash_test_skip_gc then
    Hashtbl.iter
      (fun ino owner ->
        match owner with
        | Ino_allocated_to p when (not (live p)) && not (Hashtbl.mem pending p) ->
          Hashtbl.remove t.ino_owner ino;
          (match Hashtbl.find_opt t.procs p with
          | Some pi -> Hashtbl.remove pi.p_inos ino
          | None -> ());
          incr reclaimed_inos
        | _ -> ())
      (Hashtbl.copy t.ino_owner);
  let free = Array.fold_left (fun acc a -> acc + Extent_alloc.free_units a) 0 t.node_allocs in
  let badblocks = List.length t.badblocks in
  {
    gc_total = total;
    gc_free = free;
    gc_reachable = !reachable;
    gc_cached = !cached;
    gc_badblocks = badblocks;
    gc_reclaimed_pages = !reclaimed_pages;
    gc_reclaimed_inos = !reclaimed_inos;
    gc_leaked = !leaked;
    gc_invariant_ok = free + !reachable + !cached + badblocks = total;
  }

(* ------------------------------------------------------------------ *)
(* Scrubber support (the patrol loop itself lives in {!Scrub})

   The controller owns every piece of state the scrubber repairs from —
   checkpoints of verified metadata, the shadow inode table, the page
   attribution map — so the primitives live here and {!Scrub} is pure
   policy. *)

let badblocks t = t.badblocks
let degradation_of t ino = Option.map (fun f -> f.f_degraded) (Hashtbl.find_opt t.files ino)
let writer_of t ino = Option.bind (Hashtbl.find_opt t.files ino) (fun f -> f.f_writer)

let record_media_event t ~ino ~detail =
  t.corruption_events <-
    (Pmem.kernel_actor, ino, [ { Verifier.check = `Media; detail } ]) :: t.corruption_events

(* Degradation is monotonic: a file never silently recovers to a better
   level (an operator decision, not a scrubber one). *)
let degrade_file t ~ino level ~detail =
  match Hashtbl.find_opt t.files ino with
  | None -> ()
  | Some f ->
    let worse =
      match (f.f_degraded, level) with
      | Healthy, (Degraded_ro | Failed) | Degraded_ro, Failed -> true
      | _ -> false
    in
    if worse then begin
      f.f_degraded <- level;
      record_media_event t ~ino ~detail
    end

let checkpoint_page_bytes t ~ino ~page =
  match Hashtbl.find_opt t.files ino with
  | Some { f_checkpoint = Some ck; _ } -> List.assoc_opt page ck.ck_pages
  | _ -> None

(* Permanently retire [pg]: off the owner map, never back into the
   extent allocators, onto the badblock list.  Content and poison are
   left in place — the media there is unreliable by definition. *)
let retire_page_raw t pg =
  Hashtbl.remove t.page_owner pg;
  if not (List.mem pg t.badblocks) then t.badblocks <- pg :: t.badblocks;
  Mmu.revoke_everyone_on_pages t.mmu ~pages:[ pg ]

(* Retire a page that could not be migrated, dropping it from its
   owner's page lists (the file is expected to be degraded too). *)
let quarantine_page t ~ino pg =
  retire_page_raw t pg;
  match Hashtbl.find_opt t.files ino with
  | None -> ()
  | Some f ->
    f.f_index_pages <- List.filter (fun q -> q <> pg) f.f_index_pages;
    f.f_data_pages <- List.filter (fun q -> q <> pg) f.f_data_pages

let alloc_page_any_node t ~preferred =
  let n_nodes = Array.length t.node_allocs in
  let rec go i =
    if i >= n_nodes then None
    else begin
      let node = (preferred + i) mod n_nodes in
      match Extent_alloc.alloc t.node_allocs.(node) 1 with
      | exception Extent_alloc.Out_of_space -> go (i + 1)
      | start -> Some start
    end
  in
  go 0

(* Migrate the salvageable bytes of media-damaged page [bad] (owned by
   file [ino]) to a freshly allocated page: patch the single on-NVM
   reference to it (the dentry's index head, an index entry, or an
   index page's next link), copy the content with the damaged
   [zero_lines] zeroed, retire [bad] and re-attribute everything.
   Returns the replacement page number. *)
let replace_page t ~ino ~bad ~zero_lines =
  let actor = Pmem.kernel_actor in
  match Hashtbl.find_opt t.files ino with
  | None -> Error ENOENT
  | Some f -> (
    match alloc_page_any_node t ~preferred:(bad / Pmem.pages_per_node t.pmem) with
    | None -> Error ENOSPC
    | Some fresh ->
      let patched =
        match Layout.read_dentry t.pmem ~actor ~addr:f.f_dentry_addr with
        | Some (Ok (inode, _)) when inode.Layout.index_head = bad ->
          Layout.write_index_head t.pmem ~actor ~dentry_addr:f.f_dentry_addr fresh;
          true
        | Some (Ok (inode, _)) ->
          (* walk the chain for an entry or next-link equal to [bad];
             cycle-bounded like Layout.walk_index_chain *)
          let found = ref false in
          let max_pages = Pmem.total_pages t.pmem in
          let rec go page seen =
            if page <> 0 && page > Layout.root_dentry_page && page < max_pages && seen <= max_pages
            then begin
              let entries, next = Layout.read_index_page t.pmem ~actor ~page in
              Array.iteri
                (fun i e ->
                  if (not !found) && e = bad then begin
                    Layout.write_index_entry t.pmem ~actor ~page i fresh;
                    found := true
                  end)
                entries;
              if not !found then
                if next = bad then begin
                  Layout.write_index_next t.pmem ~actor ~page fresh;
                  found := true
                end
                else go next (seen + 1)
            end
          in
          go inode.Layout.index_head 0;
          !found
        | _ -> false
      in
      if not patched then begin
        Extent_alloc.free t.node_allocs.(fresh / Pmem.pages_per_node t.pmem) fresh 1;
        Error EIO
      end
      else begin
        Pmem.set_kind t.pmem fresh (Pmem.kind_of t.pmem bad);
        let b = Pmem.read t.pmem ~actor ~addr:(bad * page_size) ~len:page_size in
        List.iter
          (fun line -> Bytes.fill b (line * Pmem.line_size) Pmem.line_size '\000')
          zero_lines;
        Pmem.write t.pmem ~actor ~addr:(fresh * page_size) ~src:b;
        Pmem.persist t.pmem ~addr:(fresh * page_size) ~len:page_size;
        Hashtbl.replace t.page_owner fresh (In_file ino);
        (* dentries living on a migrated directory page move with it *)
        Hashtbl.iter
          (fun _ (cf : file_info) ->
            if cf.f_dentry_addr / page_size = bad then
              cf.f_dentry_addr <- (fresh * page_size) + (cf.f_dentry_addr mod page_size))
          t.files;
        let remap q = if q = bad then fresh else q in
        f.f_index_pages <- List.map remap f.f_index_pages;
        f.f_data_pages <- List.map remap f.f_data_pages;
        (match f.f_checkpoint with
        | Some ck ->
          f.f_checkpoint <-
            Some { ck with ck_pages = List.map (fun (p, b) -> (remap p, b)) ck.ck_pages }
        | None -> ());
        retire_page_raw t bad;
        Ok fresh
      end)

(* The root dentry lives at a fixed address (no parent directory to
   checkpoint it): rebuild it from the controller's soft state — shadow
   permissions, attributed pages, recounted live entries. *)
let rebuild_root_dentry t =
  let actor = Pmem.kernel_actor in
  match (Hashtbl.find_opt t.files Layout.root_ino, Hashtbl.find_opt t.shadow Layout.root_ino) with
  | Some f, Some s ->
    let size =
      List.fold_left
        (fun acc pg ->
          let b = Pmem.read t.pmem ~actor ~addr:(pg * page_size) ~len:page_size in
          let live = ref 0 in
          for slot = 0 to Layout.dentries_per_page - 1 do
            if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then incr live
          done;
          acc + !live)
        0 f.f_data_pages
    in
    let index_head = match f.f_index_pages with pg :: _ -> pg | [] -> 0 in
    let inode =
      {
        Layout.ino = Layout.root_ino;
        ftype = Fs_types.Dir;
        mode = s.Verifier.s_mode;
        uid = s.Verifier.s_uid;
        gid = s.Verifier.s_gid;
        size;
        index_head;
        mtime = 0;
        ctime = 0;
      }
    in
    let b = Layout.encode_dentry ~inode ~name:"/" in
    Pmem.write t.pmem ~actor ~addr:Layout.root_dentry_addr ~src:b;
    Pmem.persist t.pmem ~addr:Layout.root_dentry_addr ~len:Layout.dentry_size
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

(* Cold start: rebuild the controller's global file system information
   — page/inode ownership, shadow inodes, file records, free-space
   allocators — purely from the core state on NVM.  This is the deepest
   consequence of the paper's state-separation insight: everything the
   trusted entities keep in DRAM is soft state (§3.2).

   Walks the whole tree from the root (an offline fsck-style pass) and
   returns [Error] on structural corruption. *)
let cold_start ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  match Layout.read_superblock pmem ~actor:Pmem.kernel_actor with
  | Error e -> Error ("cold_start: " ^ e)
  | Ok (total_pages, page_size', root_ino', root_addr) ->
    if total_pages <> Pmem.total_pages pmem || page_size' <> page_size then
      Error "cold_start: superblock geometry mismatch"
    else if root_ino' <> Layout.root_ino || root_addr <> Layout.root_dentry_addr then
      Error "cold_start: unexpected root location"
    else begin
      let topo = Pmem.topo pmem in
      let pages_per_node = Pmem.pages_per_node pmem in
      let node_allocs =
        Array.init (Numa.nodes topo) (fun n ->
            if n = 0 then Extent_alloc.create ~start:2 ~len:(pages_per_node - 2)
            else Extent_alloc.create ~start:(n * pages_per_node) ~len:pages_per_node)
      in
      let t =
        {
          sched;
          pmem;
          mmu;
          topo;
          lease_ns;
          node_allocs;
          next_ino = Layout.root_ino + 1;
          page_owner = Hashtbl.create 4096;
          ino_owner = Hashtbl.create 1024;
          shadow = Hashtbl.create 1024;
          files = Hashtbl.create 1024;
          procs = Hashtbl.create 16;
          stats = Stats.create ();
          corruption_events = [];
          quarantine = [];
          badblocks = [];
        }
      in
      Hashtbl.replace t.page_owner 0 (In_file Layout.root_ino);
      Hashtbl.replace t.page_owner Layout.root_dentry_page (In_file Layout.root_ino);
      let claim_page pg owner =
        if pg <= Layout.root_dentry_page || pg >= total_pages then
          failwith (Printf.sprintf "cold_start: page %d out of range" pg)
        else if Hashtbl.mem t.page_owner pg then
          failwith (Printf.sprintf "cold_start: page %d doubly referenced" pg)
        else begin
          Hashtbl.replace t.page_owner pg owner;
          let node = pg / pages_per_node in
          Extent_alloc.alloc_at t.node_allocs.(node) pg 1
        end
      in
      let actor = Pmem.kernel_actor in
      (* Walk one file: claim its pages, register records, recurse into
         child directories. *)
      let rec ingest ~parent ~dentry_addr =
        match Layout.read_dentry pmem ~actor ~addr:dentry_addr with
        | None -> ()
        | Some (Error e) -> failwith ("cold_start: undecodable dentry: " ^ e)
        | Some (Ok (inode, _name)) ->
          let ino = inode.Layout.ino in
          if Hashtbl.mem t.ino_owner ino then
            failwith (Printf.sprintf "cold_start: inode %d appears twice" ino);
          Hashtbl.replace t.ino_owner ino (Ino_in_dir parent);
          Hashtbl.replace t.shadow ino
            {
              Verifier.s_ftype = inode.Layout.ftype;
              s_mode = inode.Layout.mode land 0o7777;
              s_uid = inode.Layout.uid;
              s_gid = inode.Layout.gid;
            };
          if ino >= t.next_ino then t.next_ino <- ino + 1;
          let index_pages = ref [] and data_pages = ref [] in
          (match
             Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
               ~max_pages:total_pages (fun ~index_page ~entries ~next:_ ->
                 claim_page index_page (In_file ino);
                 index_pages := index_page :: !index_pages;
                 Array.iter
                   (fun e ->
                     if e <> 0 then begin
                       claim_page e (In_file ino);
                       data_pages := e :: !data_pages
                     end)
                   entries)
           with
          | Ok () -> ()
          | Error e -> failwith ("cold_start: " ^ e));
          Hashtbl.replace t.files ino
            {
              f_ino = ino;
              f_dentry_addr = dentry_addr;
              f_parent = parent;
              f_ftype = inode.Layout.ftype;
              f_index_pages = List.rev !index_pages;
              f_data_pages = List.rev !data_pages;
              f_readers = Hashtbl.create 4;
              f_writer = None;
              f_lease_expire = 0.0;
              f_checkpoint = None;
              f_waiters = Queue.create ();
              f_quarantined_for = None;
      f_degraded = Healthy;
      f_unverified = None;
            };
          if inode.Layout.ftype = Dir then
            List.iter
              (fun pg ->
                let b = Pmem.read pmem ~actor ~addr:(pg * page_size) ~len:page_size in
                for slot = 0 to Layout.dentries_per_page - 1 do
                  if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then
                    ingest ~parent:ino ~dentry_addr:(Layout.dentry_slot_addr pg slot)
                done)
              (List.rev !data_pages)
      in
      match ingest ~parent:Layout.root_ino ~dentry_addr:Layout.root_dentry_addr with
      | () -> Ok t
      | exception Failure msg -> Error msg
    end

(* After a crash: every LibFS-registered recovery program runs first
   (undo journals etc.), then every file that was write-mapped at crash
   time is verified (§4.4). *)
let crash_recover t =
  Hashtbl.iter
    (fun _ p -> match p.p_recovery with Some recovery -> recovery () | None -> ())
    t.procs;
  Hashtbl.iter
    (fun _ (f : file_info) ->
      match f.f_writer with
      | Some proc ->
        ignore (verify_file t ~proc ~f);
        let pages = file_pages f in
        Mmu.revoke_free t.mmu ~actor:proc ~pages ~perm:Mmu.P_readwrite;
        Hashtbl.remove (proc_info t proc).p_mapped f.f_ino;
        f.f_writer <- None;
        wake_all f
      | None -> ())
    (Hashtbl.copy t.files)
