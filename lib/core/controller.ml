(* The in-kernel access controller (paper §3.2, §4.3).

   The controller is the only component that:
   - allocates/frees NVM pages and inode numbers (in batches, so the
     LibFS fast path stays in userspace);
   - programs the MMU (map/unmap of a file's core-state pages);
   - maintains the global file system information used by check I2
     (which pages/inodes are in files, which are allocated to which
     LibFS);
   - maintains the shadow inode table (ground-truth permissions, I4);
   - checkpoints a file's metadata before granting write access and
     rolls back to it when verification fails (§4.3);
   - enforces leases so a LibFS cannot hold a file forever.

   It never performs metadata updates on behalf of a LibFS: LibFSes
   write dentries/index pages directly, and new files are discovered
   and ingested when the enclosing directory is verified.

   This module is a facade: the implementation lives in focused
   submodules, one per concern, each behind its own interface —

   - {!Ctl_state}       shared record types, construction, cold start
   - {!Ctl_alloc}       page/inode allocation, free, recycle
   - {!Ctl_checkpoint}  verified-metadata snapshots, rollback, the
                        incremental-verification delta lookup
   - {!Ctl_registry}    process registry, watchdog, orphan GC
   - {!Ctl_media}       scrubber repair primitives
   - {!Ctl_gate}        map/unmap, the background verification
                        pipeline, commit, namespace operations

   Everything outside [lib/core] links against this module only. *)

module Numa = Trio_nvm.Numa

(* ------------------------------------------------------------------ *)
(* Types (re-exported so existing pattern matches keep compiling) *)

type page_owner = Ctl_state.page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Ctl_state.ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

type checkpoint = Ctl_state.checkpoint = {
  ck_dentry : Bytes.t;
  ck_pages : (int * Bytes.t) list;
  ck_children : int list;
  ck_size : int;
  ck_index_head : int;
  ck_mark : int;
}

type degradation = Ctl_state.degradation = Healthy | Degraded_ro | Failed

type file_info = Ctl_state.file_info
type proc_info = Ctl_state.proc_info
type t = Ctl_state.t

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ~sched ~pmem ~mmu ?lease_ns () =
  let t = Ctl_state.create ~sched ~pmem ~mmu ?lease_ns () in
  Ctl_gate.start t;
  t

let cold_start ~sched ~pmem ~mmu ?lease_ns () =
  match Ctl_state.cold_start ~sched ~pmem ~mmu ?lease_ns () with
  | Error _ as e -> e
  | Ok t ->
    Ctl_gate.start t;
    Ok t

(* ------------------------------------------------------------------ *)
(* Accessors *)

let stats (t : t) = t.Ctl_state.stats
let sched (t : t) = t.Ctl_state.sched
let pmem (t : t) = t.Ctl_state.pmem
let root_ino = Layout.root_ino
let root_dentry_addr = Layout.root_dentry_addr

(* The corruption log and quarantine list are verification *results*:
   drain the pipeline before exposing them, so a reader never misses a
   verdict that was still queued. *)
let corruption_events (t : t) =
  Ctl_gate.drain_verification t;
  t.Ctl_state.corruption_events

let quarantined_files (t : t) =
  Ctl_gate.drain_verification t;
  t.Ctl_state.quarantine

let proc_info = Ctl_state.proc_info
let touch = Ctl_state.touch
let group_of = Ctl_state.group_of
let file_info = Ctl_state.file_info
let shadow_of = Ctl_state.shadow_of
let view = Ctl_state.view
let file_pages = Ctl_state.file_pages
let walk_file = Ctl_state.walk_file
let dir_page_is_empty = Ctl_state.dir_page_is_empty
let owner_of = Ctl_state.owner_of
let ino_owner_of = Ctl_state.ino_owner_of
let page_owner_of = Ctl_state.owner_of
let node_of_cpu (t : t) cpu = Numa.node_of_cpu t.Ctl_state.topo cpu

(* ------------------------------------------------------------------ *)
(* Verification mode and observability *)

type vmode = Ctl_state.vmode = Full | Incremental

let set_verify_mode = Ctl_state.set_verify_mode
let current_verify_mode = Ctl_state.current_verify_mode
let set_verify_hook (t : t) hook = t.Ctl_state.verify_hook <- Some hook
let clear_verify_hook (t : t) = t.Ctl_state.verify_hook <- None
let verify_queue_depth (t : t) =
  Array.fold_left
    (fun acc (sh : Ctl_state.shard) -> acc + Queue.length sh.Ctl_state.sh_verify_q)
    0 t.Ctl_state.shards

(* ------------------------------------------------------------------ *)
(* Resource allocation *)

let alloc_pages = Ctl_alloc.alloc_pages
let free_pages = Ctl_alloc.free_pages
let recycle_pages = Ctl_alloc.recycle_pages
let alloc_inos = Ctl_alloc.alloc_inos
let alloc_page_any_node = Ctl_alloc.alloc_page_any_node
let free_file_tree = Ctl_alloc.free_file_tree

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

let take_checkpoint = Ctl_checkpoint.take_checkpoint
let rollback_to_checkpoint = Ctl_checkpoint.rollback_to_checkpoint
let checkpoint_page_bytes = Ctl_checkpoint.checkpoint_page_bytes
let page_snapshot = Ctl_checkpoint.page_snapshot
let encode_checkpoint = Ctl_checkpoint.encode_checkpoint
let decode_checkpoint = Ctl_checkpoint.decode_checkpoint

(* ------------------------------------------------------------------ *)
(* Verification gate and mapping *)

let verify_file = Ctl_gate.verify_file
let ensure_verified = Ctl_gate.ensure_verified
let drain_unverified = Ctl_gate.drain_unverified
let drain_verification = Ctl_gate.drain_verification
let map_file = Ctl_gate.map_file
let unmap_file = Ctl_gate.unmap_file
let commit = Ctl_gate.commit
let unmap_all = Ctl_gate.unmap_all
let chmod = Ctl_gate.chmod
let chown = Ctl_gate.chown
let write_mapped_inos = Ctl_gate.write_mapped_inos
let dentry_addr_of = Ctl_gate.dentry_addr_of
let crash_recover = Ctl_gate.crash_recover

(* ------------------------------------------------------------------ *)
(* Process registry, watchdog, GC *)

let register_process = Ctl_registry.register_process
let heartbeat = Ctl_registry.heartbeat
let last_heartbeat = Ctl_registry.last_heartbeat
let process_dead = Ctl_registry.process_dead
let processes = Ctl_registry.processes
let reap_dead = Ctl_registry.reap_dead

type watchdog_report = Ctl_registry.watchdog_report = {
  mutable wd_scanned : int;
  mutable wd_escalated : int list;
  mutable wd_unverified : int;
  mutable wd_revoked : int;
}

let make_watchdog_report = Ctl_registry.make_watchdog_report
let pp_watchdog_report = Ctl_registry.pp_watchdog_report
let abnormal_teardown = Ctl_registry.abnormal_teardown
let watchdog_once = Ctl_registry.watchdog_once
let run_watchdog = Ctl_registry.run_watchdog
let set_crash_test_skip_gc = Ctl_registry.set_crash_test_skip_gc

type gc_report = Ctl_registry.gc_report = {
  gc_total : int;
  gc_free : int;
  gc_pooled : int;
  gc_reachable : int;
  gc_cached : int;
  gc_badblocks : int;
  gc_reclaimed_pages : int;
  gc_reclaimed_inos : int;
  gc_leaked : int;
  gc_invariant_ok : bool;
}

let pp_gc_report = Ctl_registry.pp_gc_report
let reachable_files = Ctl_registry.reachable_files
let gc_once = Ctl_registry.gc_once

(* ------------------------------------------------------------------ *)
(* NUMA sharding: topology routing and per-socket observability *)

let shard_count = Ctl_state.shard_count
let shard_of_ino = Ctl_state.shard_of_ino
let node_of_page = Ctl_state.node_of_page
let pooled_pages = Ctl_state.pooled_pages
let set_pool_limits = Ctl_state.set_pool_limits

type shard_stat = {
  ss_id : int;
  ss_pool_free : int;  (** pages staged in the node's pool *)
  ss_pool_refills : int;
  ss_pool_drains : int;
  ss_reserve_free : int;  (** pages left in the node's global reserve *)
  ss_files : int;  (** file records homed on this shard *)
  ss_inos : int;  (** ino-owner records homed on this shard *)
  ss_queue_depth : int;  (** verifications waiting on this shard *)
  ss_enqueued : int;  (** lifetime handoffs routed to this shard *)
}

let shard_stats (t : t) =
  let open Ctl_state in
  Array.to_list
    (Array.mapi
       (fun i (sh : shard) ->
         {
           ss_id = i;
           ss_pool_free = t.pools.(i).pp_len;
           ss_pool_refills = t.pools.(i).pp_refills;
           ss_pool_drains = t.pools.(i).pp_drains;
           ss_reserve_free = Trio_util.Extent_alloc.free_units t.node_allocs.(i);
           ss_files = Hashtbl.length sh.sh_files;
           ss_inos = Hashtbl.length sh.sh_ino_owner;
           ss_queue_depth = Queue.length sh.sh_verify_q;
           ss_enqueued = sh.sh_enqueued;
         })
       t.shards)

(* Lock-plane counters: total shard-lock acquisitions and how many were
   two-shard (cross-socket) critical sections. *)
let lock_stats (t : t) =
  (Ctl_shard.acquisitions t.Ctl_state.locks, Ctl_shard.cross_shard_ops t.Ctl_state.locks)

let pp_shard_stat ppf s =
  Format.fprintf ppf
    "shard %d: pool %d free (%d refills, %d drains), reserve %d, %d files, %d inos, verify \
     queue %d (%d enqueued)"
    s.ss_id s.ss_pool_free s.ss_pool_refills s.ss_pool_drains s.ss_reserve_free s.ss_files
    s.ss_inos s.ss_queue_depth s.ss_enqueued

let pp_shard_stats ppf stats =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_shard_stat ppf stats

(* ------------------------------------------------------------------ *)
(* Scrubber support *)

let badblocks = Ctl_media.badblocks
let degradation_of = Ctl_media.degradation_of
let writer_of = Ctl_media.writer_of
let record_media_event = Ctl_media.record_media_event
let degrade_file = Ctl_media.degrade_file
let retire_page_raw = Ctl_media.retire_page_raw
let quarantine_page = Ctl_media.quarantine_page
let replace_page = Ctl_media.replace_page
let rebuild_root_dentry = Ctl_media.rebuild_root_dentry
