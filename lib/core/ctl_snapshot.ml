(* Whole-FS copy-on-write snapshots (DESIGN.md §4.16).

   A snapshot is a durable root record naming a payload chain of pages
   that carries every file's last *verified* checkpoint (the per-file
   delta checkpoints of {!Ctl_checkpoint}, serialized with their own
   CRCs).  Publication is transactional: the payload is written first
   into freshly allocated pages, then a 64-byte root record — one
   cacheline, a single-line store under the crash model — commits the
   snapshot into the slot NOT holding the current root.  Until that
   store persists, the previous root is untouched, so a crash at any
   Delay boundary of publication leaves at least one intact root.

   Payload pages are pinned ([Ctl_state.snap_pinned]) until the next
   root supersedes them: their page-owner entries stay [Free] (the GC
   sweep never visits them) and they are their own term of the
   accounting invariant.

   Publication is deliberately NOT shielded: the crash-exploration
   campaigns kill it at every Delay boundary and assert the ≥1-valid-
   root property.  Callers wanting a quiesced pipeline drain it first
   (the {!Controller} facade does). *)

module Pmem = Trio_nvm.Pmem
module Sched = Trio_sim.Sched
module Crc32 = Trio_util.Crc32
module Extent_alloc = Trio_util.Extent_alloc
open Ctl_state

let page_size = Layout.page_size

(* Each payload page carries [page_size - 8] stream bytes; the last 8
   bytes hold the next chain page number (0 = end of chain). *)
let payload_per_page = page_size - 8
let stream_magic = "TRSP"

(* Sabotage hook for the torn-commit self-test: write the root slot
   BEFORE the payload, into the LIVE slot — the ordering bug the
   crash exploration must catch (a kill in the window leaves zero
   valid roots). *)
let snap_torn_commit = ref false
let set_torn_commit b = snap_torn_commit := b

type entry = {
  e_ino : int;
  e_dentry_addr : int;
  e_parent : int;
  e_blob : Bytes.t;  (** [Ctl_checkpoint.encode_checkpoint] output, self-CRC'd *)
}

let entry_checkpoint e = Ctl_checkpoint.decode_checkpoint e.e_blob

(* ------------------------------------------------------------------ *)
(* Stream encoding.  All integers u64-in-8-bytes little endian:

     magic "TRSP" | epoch | nfiles
     | (ino | dentry addr | parent | blob len | blob)*

   The root record carries a CRC32 of the whole stream; each blob
   additionally carries its own, so single-file damage is localized. *)

let parse_stream b =
  let fail msg = Error ("snapshot stream: " ^ msg) in
  let len = Bytes.length b in
  if len < String.length stream_magic + 16 then fail "truncated"
  else if Bytes.sub_string b 0 (String.length stream_magic) <> stream_magic then fail "bad magic"
  else begin
    let pos = ref (String.length stream_magic) in
    let u64 () =
      if !pos + 8 > len then failwith "truncated";
      let v = Int64.to_int (Bytes.get_int64_le b !pos) in
      pos := !pos + 8;
      v
    in
    let bytes n =
      if n < 0 || !pos + n > len then failwith "truncated";
      let v = Bytes.sub b !pos n in
      pos := !pos + n;
      v
    in
    match
      let epoch = u64 () in
      let nfiles = u64 () in
      if nfiles < 0 || nfiles > len then failwith "bad file count";
      let entries =
        List.init nfiles (fun _ ->
            let e_ino = u64 () in
            let e_dentry_addr = u64 () in
            let e_parent = u64 () in
            let e_blob = bytes (u64 ()) in
            { e_ino; e_dentry_addr; e_parent; e_blob })
      in
      if !pos <> len then failwith "trailing garbage";
      (epoch, entries)
    with
    | v -> Ok v
    | exception Failure msg -> fail msg
  end

(* ------------------------------------------------------------------ *)
(* Static root validation — pure functions of the device, usable by
   crash recovery and the exploration campaigns before any controller
   state exists.  Payload reads go through the ECC path: a poisoned
   chain page invalidates the root rather than feeding garbage (or a
   fault) into recovery. *)

let read_payload pm ~head ~npages ~len =
  let total = Pmem.total_pages pm in
  if npages <= 0 || len < 0 || len > npages * payload_per_page then
    Error "implausible payload geometry"
  else begin
    let buf = Bytes.create (npages * payload_per_page) in
    let rec go page i acc =
      if i = npages then
        if page = 0 then Ok (Bytes.sub buf 0 len, List.rev acc)
        else Error "payload chain longer than declared"
      else if page <= Layout.root_dentry_page || page >= total then
        Error "payload chain page outside the volume"
      else if List.mem page acc then Error "payload chain cycle"
      else
        match
          Pmem.read_ecc pm ~actor:Pmem.kernel_actor ~addr:(page * page_size) ~len:page_size
        with
        | Pmem.Ecc.Poisoned _ -> Error "payload page poisoned"
        | Pmem.Ecc.Ok b ->
          Bytes.blit b 0 buf (i * payload_per_page) payload_per_page;
          go (Layout.get_u64 b (page_size - 8)) (i + 1) (page :: acc)
    in
    go head 0 []
  end

(* A fully valid root: slot CRC, payload chain readable, stream CRC,
   stream header consistent with the slot.  Anything less and the slot
   does not exist as far as recovery is concerned. *)
let validate_slot pm ~slot =
  match Layout.read_snap_root pm ~slot with
  | None -> None
  | Some r -> (
    match read_payload pm ~head:r.Layout.sr_head ~npages:r.Layout.sr_npages ~len:r.Layout.sr_payload_len with
    | Error _ -> None
    | Ok (stream, pages) ->
      if Crc32.of_bytes stream <> r.Layout.sr_payload_crc then None
      else (
        match parse_stream stream with
        | Ok (epoch, _) when epoch = r.Layout.sr_epoch -> Some (r, stream, pages)
        | _ -> None))

let root_status pm ~slot =
  match validate_slot pm ~slot with Some (r, _, _) -> Some r.Layout.sr_epoch | None -> None

(* Valid roots, newest epoch first. *)
let valid_roots pm =
  List.filter_map
    (fun slot ->
      match validate_slot pm ~slot with
      | Some (r, stream, pages) -> Some (slot, r, stream, pages)
      | None -> None)
    (List.init Layout.snap_slots Fun.id)
  |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b.Layout.sr_epoch a.Layout.sr_epoch)

(* ------------------------------------------------------------------ *)
(* Publication *)

(* A published dir page must only name children the same snapshot
   carries, each at the slot the child's own entry claims — files the
   snapshot skipped (active writers with no checkpoint yet) and slots
   stale after a rename are tombstoned in the *emitted copy* (the
   device page is never touched).  This keeps every root
   self-consistent: mounting it can never surface a dentry whose inode
   the snapshot does not describe. *)
let ck_data_pages t ck =
  let data = ref [] in
  (match
     Layout.walk_index_chain
       ~fetch:(fun pg -> List.assoc_opt pg ck.ck_pages)
       t.pmem ~actor:Pmem.kernel_actor ~head:ck.ck_index_head
       ~max_pages:(Pmem.total_pages t.pmem)
       (fun ~index_page:_ ~entries ~next:_ ->
         Array.iter (fun e -> if e <> 0 then data := e :: !data) entries)
   with
  | Ok () -> ()
  | Error _ -> ());
  List.rev !data

let sanitize_dir_ck t ~emitted (f : file_info) ck =
  let dentry_pages = ck_data_pages t ck in
  let tombstoned = ref false in
  let ck_pages =
    List.map
      (fun (pg, b) ->
        if not (List.mem pg dentry_pages) then (pg, b)
        else begin
          let b = Bytes.copy b in
          for slot = 0 to Layout.dentries_per_page - 1 do
            let off = slot * Layout.dentry_size in
            let ino = Layout.get_u64 b off in
            if ino <> 0 then begin
              match Hashtbl.find_opt emitted ino with
              | Some da when da = Layout.dentry_slot_addr pg slot -> ()
              | _ ->
                Bytes.fill b off Layout.dentry_size '\000';
                tombstoned := true
            end
          done;
          (pg, b)
        end)
      ck.ck_pages
  in
  let ck_children = List.filter (Hashtbl.mem emitted) ck.ck_children in
  if not !tombstoned then { ck with ck_pages; ck_children }
  else begin
    (* Tombstoning made the emitted dentry pages disagree with the
       directory's B-link index (dangling entries — an I5 violation on
       restore).  Drop the index from the emitted copy instead:
       unindexed is legal, and a mount of this root rebuilds the tree
       lazily from the dentries it actually carries. *)
    let ck_dentry = Bytes.copy ck.ck_dentry in
    Layout.set_u64 ck_dentry Layout.off_dindex_root 0;
    let ck_pages =
      List.filter (fun (pg, _) -> not (List.mem pg f.f_dindex_pages)) ck_pages
    in
    { ck with ck_dentry; ck_pages; ck_children }
  end

(* Publish a new whole-FS snapshot root.  Incremental by construction:
   files whose checkpoint is current contribute their existing bytes
   (take_checkpoint reuses provably-clean pages without device reads);
   only files with no checkpoint and no active writer are checkpointed
   on the spot.  Files mid-write or failed are skipped — a snapshot
   carries verified states only. *)
let publish t =
  let files =
    fold_files t (fun ino f acc -> (ino, f) :: acc) []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (_, f) ->
      if
        f.f_checkpoint = None && f.f_writer = None && f.f_unverified = None
        && (not f.f_verifying) && f.f_degraded = Healthy
      then Ctl_checkpoint.take_checkpoint t f)
    files;
  let chosen =
    List.filter_map
      (fun (ino, f) ->
        match f.f_checkpoint with
        | Some ck when f.f_degraded <> Failed -> Some (ino, f, ck)
        | _ -> None)
      files
  in
  let emitted = Hashtbl.create (List.length chosen) in
  List.iter (fun (ino, f, _) -> Hashtbl.replace emitted ino f.f_dentry_addr) chosen;
  let epoch = t.snap_epoch + 1 in
  let buf = Buffer.create 4096 in
  let u64 n =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int n);
    Buffer.add_bytes buf b
  in
  Buffer.add_string buf stream_magic;
  u64 epoch;
  u64 (List.length chosen);
  List.iter
    (fun (ino, f, ck) ->
      let ck = if f.f_ftype = Fs_types.Dir then sanitize_dir_ck t ~emitted f ck else ck in
      let blob = Ctl_checkpoint.encode_checkpoint ck in
      u64 ino;
      u64 f.f_dentry_addr;
      u64 f.f_parent;
      u64 (Bytes.length blob);
      Buffer.add_bytes buf blob)
    chosen;
  let stream = Buffer.to_bytes buf in
  let len = Bytes.length stream in
  let npages = max 1 ((len + payload_per_page - 1) / payload_per_page) in
  match Ctl_alloc.alloc_snapshot_pages t ~count:npages with
  | None -> Error Fs_types.ENOSPC
  | Some pages ->
    let actor = Pmem.kernel_actor in
    let root =
      {
        Layout.sr_epoch = epoch;
        sr_head = List.hd pages;
        sr_npages = npages;
        sr_payload_len = len;
        sr_payload_crc = Crc32.of_bytes stream;
      }
    in
    let write_payload () =
      List.iteri
        (fun i pg ->
          let b = Bytes.make page_size '\000' in
          let off = i * payload_per_page in
          let chunk = max 0 (min payload_per_page (len - off)) in
          if chunk > 0 then Bytes.blit stream off b 0 chunk;
          Layout.set_u64 b (page_size - 8)
            (match List.nth_opt pages (i + 1) with Some p -> p | None -> 0);
          Pmem.write t.pmem ~actor ~addr:(pg * page_size) ~src:b;
          Pmem.persist t.pmem ~addr:(pg * page_size) ~len:page_size)
        pages
    in
    let slot =
      if !snap_torn_commit then t.snap_slot
      else if t.snap_epoch = 0 then 0
      else 1 - t.snap_slot
    in
    if !snap_torn_commit then begin
      (* BUG ON PURPOSE (gated): root first, payload second, live slot. *)
      Layout.write_snap_root t.pmem ~slot root;
      write_payload ()
    end
    else begin
      write_payload ();
      (* The commit point: one persisted cacheline store. *)
      Layout.write_snap_root t.pmem ~slot root
    end;
    let superseded = t.snap_pages in
    t.snap_pages <- pages;
    t.snap_epoch <- epoch;
    t.snap_slot <- slot;
    Ctl_alloc.release_snapshot_pages t superseded;
    Ok epoch

(* ------------------------------------------------------------------ *)
(* Lookup into the current durable root *)

let entries t =
  if t.snap_epoch = 0 then Error "no snapshot published"
  else
    match validate_slot t.pmem ~slot:t.snap_slot with
    | None -> Error "current snapshot root unreadable"
    | Some (r, stream, _) -> (
      match parse_stream stream with
      | Error e -> Error e
      | Ok (_, entries) -> Ok (r.Layout.sr_epoch, entries))

let entry_for t ino =
  match entries t with
  | Error e -> Error e
  | Ok (_, es) -> (
    match List.find_opt (fun e -> e.e_ino = ino) es with
    | None -> Error "file not in snapshot"
    | Some e -> (
      match entry_checkpoint e with
      | Error msg -> Error msg
      | Ok ck -> Ok (e, ck)))

(* Last-verified bytes of [page] from the durable root — the scrubber's
   deepest repair source when DRAM checkpoints are gone. *)
let snapshot_page_bytes t ~ino ~page =
  match entry_for t ino with
  | Error _ -> None
  | Ok (_, ck) -> List.assoc_opt page ck.ck_pages

(* Roll one file back to its state in the durable root — the rung
   below DRAM-checkpoint rollback on the recovery ladder.  Every byte
   comes through the ECC + CRC gauntlet (payload chain read_ecc, stream
   CRC, per-blob CRC): a poisoned or torn snapshot is *detected* and
   reported, never blindly written over the device. *)
let restore_file t f ~offender =
  match entry_for t f.f_ino with
  | Error e ->
    Ctl_media.record_media_event t ~ino:f.f_ino ~detail:("snapshot restore failed: " ^ e);
    Error e
  | Ok (e, ck) ->
    if e.e_dentry_addr <> f.f_dentry_addr then Error "file moved since snapshot"
    else begin
      Ctl_checkpoint.restore_checkpoint t f ck ~offender;
      (* The restored checkpoint becomes the file's live one; its mark
         predates the restore writes, so [snapshot_valid] stays false
         and every later read honestly hits the device. *)
      f.f_checkpoint <- Some ck;
      mark_snapshot_restored t f.f_ino;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Crash recovery: mount the newest intact root *)

(* Rebuild a full controller state from a validated root, with NO
   device reads besides the payload chain itself: page attribution
   comes from walking each entry's checkpointed index pages in DRAM.
   Claims happen before any device write, so a failed candidate leaves
   the device untouched for the next candidate / the fsck fallback. *)
let build_state ~sched ~pmem ~mmu ~lease_ns (slot, root, stream, chain) =
  match parse_stream stream with
  | Error e -> Error e
  | Ok (_, raw_entries) -> (
    let total_pages = Pmem.total_pages pmem in
    try
      let decoded =
        List.map
          (fun e ->
            match entry_checkpoint e with
            | Ok ck -> (e, ck)
            | Error msg -> failwith msg)
          raw_entries
      in
      let t = make ~sched ~pmem ~mmu ~lease_ns in
      set_page_owner t 0 (In_file Layout.root_ino);
      set_page_owner t Layout.root_dentry_page (In_file Layout.root_ino);
      List.iter
        (fun pg ->
          if not (Ctl_alloc.pin_snapshot_page t pg) then
            failwith (Printf.sprintf "payload page %d conflicts" pg))
        chain;
      let claim pg owner =
        if pg <= Layout.root_dentry_page || pg >= total_pages then
          failwith (Printf.sprintf "page %d out of range" pg)
        else if Hashtbl.mem (page_shard t pg).sh_page_owner pg || snap_pinned_mem t pg then
          failwith (Printf.sprintf "page %d doubly referenced" pg)
        else begin
          set_page_owner t pg owner;
          Extent_alloc.alloc_at t.node_allocs.(node_of_page t pg) pg 1
        end
      in
      (* Phase 1: claim pages and register records (device untouched). *)
      List.iter
        (fun (e, ck) ->
          let ino = e.e_ino in
          let inode =
            match Layout.decode_dentry ck.ck_dentry with
            | Some (Ok (inode, _)) -> inode
            | _ -> failwith (Printf.sprintf "undecodable snapshot dentry for inode %d" ino)
          in
          if inode.Layout.ino <> ino then failwith "dentry/entry inode mismatch";
          if ino_owner_of t ino <> Ino_free then
            failwith (Printf.sprintf "inode %d appears twice" ino);
          set_ino_owner t ino (Ino_in_dir e.e_parent);
          set_shadow t ino
            {
              Verifier.s_ftype = inode.Layout.ftype;
              s_mode = inode.Layout.mode land 0o7777;
              s_uid = inode.Layout.uid;
              s_gid = inode.Layout.gid;
            };
          if ino >= t.next_ino then t.next_ino <- ino + 1;
          let index_pages = ref [] and data_pages = ref [] in
          (match
             Layout.walk_index_chain
               ~fetch:(fun pg -> List.assoc_opt pg ck.ck_pages)
               pmem ~actor:Pmem.kernel_actor ~head:ck.ck_index_head ~max_pages:total_pages
               (fun ~index_page ~entries ~next:_ ->
                 claim index_page (In_file ino);
                 index_pages := index_page :: !index_pages;
                 Array.iter
                   (fun p ->
                     if p <> 0 then begin
                       claim p (In_file ino);
                       data_pages := p :: !data_pages
                     end)
                   entries)
           with
          | Ok () -> ()
          | Error msg -> failwith msg);
          (* a directory's B-link index pages ride the checkpoint too:
             claim them so the restored tree stays attributed (and the
             verifier's I5 audit can hold it to the dentries) *)
          let dindex_root = Layout.get_u64 ck.ck_dentry Layout.off_dindex_root in
          let dindex_pages =
            if inode.Layout.ftype = Fs_types.Dir && dindex_root <> 0 then
              Dirindex.pages
                ~fetch:(fun pg -> List.assoc_opt pg ck.ck_pages)
                pmem ~actor:Pmem.kernel_actor ~root:dindex_root
            else []
          in
          List.iter (fun pg -> claim pg (In_file ino)) dindex_pages;
          let f =
            new_file ~ino ~dentry_addr:e.e_dentry_addr ~parent:e.e_parent
              ~ftype:inode.Layout.ftype ~index_pages:(List.rev !index_pages)
              ~data_pages:(List.rev !data_pages) ~dindex_pages ()
          in
          f.f_checkpoint <- Some ck;
          set_file t ino f)
        decoded;
      if file_find t Layout.root_ino = None then failwith "snapshot carries no root directory";
      (* Phase 2: roll the device back to the snapshot — metadata pages
         first, then dentries (a child's own dentry, possibly newer
         than its parent's page copy, must win).  Kernel writes heal
         any poison on the way. *)
      let actor = Pmem.kernel_actor in
      let restore_bytes addr src =
        let len = Bytes.length src in
        let differs =
          match Pmem.read_ecc pmem ~actor ~addr ~len with
          | Pmem.Ecc.Ok b -> not (Bytes.equal b src)
          | Pmem.Ecc.Poisoned _ -> true
        in
        if differs then begin
          Pmem.write pmem ~actor ~addr ~src;
          Pmem.persist pmem ~addr ~len
        end
      in
      List.iter
        (fun (_, ck) ->
          List.iter (fun (pg, b) -> restore_bytes (pg * page_size) b) ck.ck_pages)
        decoded;
      List.iter (fun (e, ck) -> restore_bytes e.e_dentry_addr ck.ck_dentry) decoded;
      List.iter (fun (e, _) -> mark_snapshot_restored t e.e_ino) decoded;
      t.snap_epoch <- root.Layout.sr_epoch;
      t.snap_slot <- slot;
      t.snap_pages <- chain;
      Ok t
    with Failure msg -> Error ("mount_root: " ^ msg))

(* O(1)-ish crash mount: validate the two root slots, mount the newest
   one whose payload checks out end to end.  [Error] sends the caller
   down the ladder to the fsck walk ({!Ctl_state.cold_start}). *)
let mount_root ~sched ~pmem ~mmu ?(lease_ns = 100.0e6) () =
  match Layout.read_superblock pmem ~actor:Pmem.kernel_actor with
  | Error e -> Error ("mount_root: " ^ e)
  | Ok (total_pages, page_size', root_ino', root_addr) ->
    if total_pages <> Pmem.total_pages pmem || page_size' <> page_size then
      Error "mount_root: superblock geometry mismatch"
    else if root_ino' <> Layout.root_ino || root_addr <> Layout.root_dentry_addr then
      Error "mount_root: unexpected root location"
    else begin
      let rec try_all = function
        | [] -> Error "mount_root: no intact snapshot root"
        | ((_, root, _, _) as cand) :: rest -> (
          match build_state ~sched ~pmem ~mmu ~lease_ns cand with
          | Ok t -> Ok (t, root.Layout.sr_epoch)
          | Error _ when rest <> [] -> try_all rest
          | Error e -> Error e)
      in
      try_all (valid_roots pmem)
    end

(* After an fsck-walk mount ({!Ctl_state.cold_start}), re-pin the
   newest valid root's payload chain so its pages cannot be handed
   out — otherwise the first allocation storm would destroy the very
   state a later rollback needs.  A chain page the walk claimed for a
   file means the root is stale beyond use: adoption is skipped and
   the slots will be superseded by the next publish. *)
let adopt_root t =
  match valid_roots t.pmem with
  | [] -> ()
  | (slot, root, _, pages) :: _ ->
    let rec pin acc = function
      | [] -> Some (List.rev acc)
      | pg :: rest ->
        if Ctl_alloc.pin_snapshot_page t pg then pin (pg :: acc) rest
        else begin
          Ctl_alloc.release_snapshot_pages t acc;
          None
        end
    in
    (match pin [] pages with
    | None -> ()
    | Some pages ->
      t.snap_epoch <- root.Layout.sr_epoch;
      t.snap_slot <- slot;
      t.snap_pages <- pages)
