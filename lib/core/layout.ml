(* On-NVM layout of the Trio core state (paper §4.1).

   This layout is the "single core state" shared as common knowledge by
   every LibFS, the kernel controller and the integrity verifier.  It is
   deliberately minimal:

   - superblock (page 0): file system geometry;
   - a file's inode is co-located with its directory entry inside the
     parent directory's data pages (one 256-byte dentry block), so there
     are no "." / ".." entries and stat/create/delete need only the
     parent's pages;
   - index pages: 511 page pointers + a next-index-page link in the last
     slot; they index data pages for regular files and dentry pages for
     directories;
   - the root directory's dentry block lives at a fixed location
     (page 1, slot 0) since it has no parent.

   All multi-byte fields are little-endian.  The [ino] field of a dentry
   block is 8-byte-aligned so creation/deletion can use the 16-byte
   atomic-update discipline of §4.4: fully write and persist the block
   with [ino = 0], then atomically store the real inode number. *)

module Pmem = Trio_nvm.Pmem
module Crc32 = Trio_util.Crc32

let page_size = Pmem.page_size

(* Dentry blocks *)
let dentry_size = 256
let dentries_per_page = page_size / dentry_size (* 16 *)
let name_max = 180

(* Field offsets inside a dentry block. *)
let off_ino = 0
let off_ftype = 8
let off_mode = 9
let off_uid = 11
let off_gid = 15
let off_size = 19
let off_index_head = 27
let off_mtime = 35
let off_ctime = 43
let off_name_len = 64
let off_name = 66

(* Directory dentries keep the page number of the root node of their
   hash index (DESIGN.md §4.18) in the 8-aligned tail word of the block
   (the name field ends at 246, so 248..255 is spare).  0 = directory
   not indexed (empty, or the index is being rebuilt).  Like [off_ino],
   the field is only ever updated with a single atomic persisted
   store — swinging the root after a split is crash-atomic. *)
let off_dindex_root = 248

(* Index pages *)
let index_entries = (page_size / 8) - 1 (* 511 payload slots *)
let index_next_off = index_entries * 8 (* last slot links the next index page *)

(* Superblock (page 0) *)
let sb_magic = 0x545249_4F465331 (* "TRIOFS1" *)
let sb_off_magic = 0
let sb_off_total_pages = 8
let sb_off_page_size = 16
let sb_off_root_ino = 24
let sb_off_root_dentry = 32

let root_ino = 1
let root_dentry_page = 1
let root_dentry_addr = root_dentry_page * page_size

type inode = {
  ino : int;
  ftype : Fs_types.ftype;
  mode : int;
  uid : int;
  gid : int;
  size : int; (* bytes for regular files; live entry count for dirs *)
  index_head : int; (* page number of the first index page; 0 = none *)
  mtime : int;
  ctime : int;
}

(* ------------------------------------------------------------------ *)
(* Bytes-level encoding helpers *)

let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

(* Decode a dentry block already in DRAM.  Returns [None] for a free slot
   (ino = 0); [Error] for undecodable garbage (the verifier reports it as
   an I1 violation, regular readers treat it as corruption). *)
let decode_dentry (b : Bytes.t) : (inode * string, string) result option =
  let ino = get_u64 b off_ino in
  if ino = 0 then None
  else
    Some
      (let ftype_code = get_u8 b off_ftype in
       match Fs_types.ftype_of_code ftype_code with
       | None -> Error (Printf.sprintf "invalid file type %d" ftype_code)
       | Some ftype ->
         let name_len = get_u16 b off_name_len in
         if name_len = 0 || name_len > name_max then
           Error (Printf.sprintf "invalid name length %d" name_len)
         else begin
           let name = Bytes.sub_string b off_name name_len in
           let inode =
             {
               ino;
               ftype;
               mode = get_u16 b off_mode;
               uid = get_u32 b off_uid;
               gid = get_u32 b off_gid;
               size = get_u64 b off_size;
               index_head = get_u64 b off_index_head;
               mtime = get_u64 b off_mtime;
               ctime = get_u64 b off_ctime;
             }
           in
           Ok (inode, name)
         end)

let encode_dentry ?(dindex_root = 0) ~(inode : inode) ~name () : Bytes.t =
  if String.length name > name_max then invalid_arg "Layout.encode_dentry: name too long";
  let b = Bytes.make dentry_size '\000' in
  set_u64 b off_ino inode.ino;
  set_u64 b off_dindex_root dindex_root;
  set_u8 b off_ftype (Fs_types.ftype_code inode.ftype);
  set_u16 b off_mode inode.mode;
  set_u32 b off_uid inode.uid;
  set_u32 b off_gid inode.gid;
  set_u64 b off_size inode.size;
  set_u64 b off_index_head inode.index_head;
  set_u64 b off_mtime inode.mtime;
  set_u64 b off_ctime inode.ctime;
  set_u16 b off_name_len (String.length name);
  Bytes.blit_string name 0 b off_name (String.length name);
  b

(* ------------------------------------------------------------------ *)
(* NVM accessors.  [actor] is the accessing process: MMU-checked. *)

(* Metadata reads go through the ECC-checked path for userspace actors:
   an uncorrectable (poisoned) block degrades to a decode error instead
   of a machine-check-style exception — lookups fail with a clean errno
   and the patrol scrubber repairs or quarantines the page later.  The
   kernel keeps the raw path: the verifier audits scrambled content
   directly and must never have it masked. *)
let read_dentry pm ~actor ~addr =
  if actor = Pmem.kernel_actor then decode_dentry (Pmem.read pm ~actor ~addr ~len:dentry_size)
  else
    match Pmem.read_ecc pm ~actor ~addr ~len:dentry_size with
    | Pmem.Ecc.Ok b -> decode_dentry b
    | Pmem.Ecc.Poisoned _ -> Some (Error "dentry block poisoned (uncorrectable media error)")

(* Write a dentry block following the crash-consistent create protocol:
   persist everything with ino = 0, then persist the 8-byte ino store.
   [dindex_root] is written with the body: rename uses it to carry a
   directory's index root to the destination dentry. *)
let write_dentry_atomic ?dindex_root pm ~actor ~addr ~(inode : inode) ~name =
  let b = encode_dentry ?dindex_root ~inode ~name () in
  let ino = inode.ino in
  set_u64 b off_ino 0;
  Pmem.write pm ~actor ~addr ~src:b;
  Pmem.persist pm ~addr ~len:dentry_size;
  Pmem.write_u64 pm ~actor ~addr:(addr + off_ino) ino;
  Pmem.persist pm ~addr:(addr + off_ino) ~len:8

(* Tombstone a dentry (unlink/rmdir): a single atomic, persisted store. *)
let clear_dentry_atomic pm ~actor ~addr =
  Pmem.write_u64 pm ~actor ~addr:(addr + off_ino) 0;
  Pmem.persist pm ~addr:(addr + off_ino) ~len:8

(* Field-wise updates (each is a single atomic store + flush). *)
let write_size pm ~actor ~dentry_addr size =
  Pmem.write_u64 pm ~actor ~addr:(dentry_addr + off_size) size;
  Pmem.persist pm ~addr:(dentry_addr + off_size) ~len:8

let write_index_head pm ~actor ~dentry_addr page =
  Pmem.write_u64 pm ~actor ~addr:(dentry_addr + off_index_head) page;
  Pmem.persist pm ~addr:(dentry_addr + off_index_head) ~len:8

let write_mtime pm ~actor ~dentry_addr time =
  Pmem.write_u64 pm ~actor ~addr:(dentry_addr + off_mtime) time;
  Pmem.persist pm ~addr:(dentry_addr + off_mtime) ~len:8

let read_dindex_root pm ~actor ~dentry_addr =
  Pmem.read_u64 pm ~actor ~addr:(dentry_addr + off_dindex_root)

let write_dindex_root pm ~actor ~dentry_addr page =
  Pmem.write_u64 pm ~actor ~addr:(dentry_addr + off_dindex_root) page;
  Pmem.persist pm ~addr:(dentry_addr + off_dindex_root) ~len:8

let write_perms pm ~actor ~dentry_addr ~mode ~uid ~gid =
  let b = Bytes.make 10 '\000' in
  set_u16 b 0 mode;
  set_u32 b 2 uid;
  set_u32 b 6 gid;
  Pmem.write pm ~actor ~addr:(dentry_addr + off_mode) ~src:b;
  Pmem.persist pm ~addr:(dentry_addr + off_mode) ~len:10

(* ------------------------------------------------------------------ *)
(* Index pages *)

let index_entry_addr page i =
  if i < 0 || i >= index_entries then invalid_arg "Layout.index_entry_addr";
  (page * page_size) + (i * 8)

let read_index_entry pm ~actor ~page i = Pmem.read_u64 pm ~actor ~addr:(index_entry_addr page i)

let write_index_entry pm ~actor ~page i v =
  Pmem.write_u64 pm ~actor ~addr:(index_entry_addr page i) v;
  Pmem.persist pm ~addr:(index_entry_addr page i) ~len:8

let read_index_next pm ~actor ~page = Pmem.read_u64 pm ~actor ~addr:((page * page_size) + index_next_off)

let write_index_next pm ~actor ~page v =
  Pmem.write_u64 pm ~actor ~addr:((page * page_size) + index_next_off) v;
  Pmem.persist pm ~addr:((page * page_size) + index_next_off) ~len:8

(* Read a whole index page at once (one NVM access) and decode it.
   Userspace actors use the ECC path: a poisoned index page reads as
   empty with no successor — the file appears truncated (reads hit
   holes, clean EIO) until the scrubber restores the page from the
   controller checkpoint. *)
let read_index_page pm ~actor ~page =
  let decode b =
    let entries = Array.init index_entries (fun i -> get_u64 b (i * 8)) in
    let next = get_u64 b index_next_off in
    (entries, next)
  in
  if actor = Pmem.kernel_actor then
    decode (Pmem.read pm ~actor ~addr:(page * page_size) ~len:page_size)
  else
    match Pmem.read_ecc pm ~actor ~addr:(page * page_size) ~len:page_size with
    | Pmem.Ecc.Ok b -> decode b
    | Pmem.Ecc.Poisoned _ -> (Array.make index_entries 0, 0)

(* Walk the index-page chain of a file, calling [f ~index_page ~entries
   ~next] per page.  Cycle-safe: stops (returning [Error]) if a chain
   longer than the device could possibly hold is observed — this is how
   the verifier survives the "loop within index pages" attack. *)
let decode_index_page b =
  let entries = Array.init index_entries (fun i -> get_u64 b (i * 8)) in
  let next = get_u64 b index_next_off in
  (entries, next)

(* [fetch page] may supply the page's bytes from a DRAM snapshot (the
   incremental verifier's delta checkpoint); [None] reads the device. *)
let walk_index_chain ?fetch pm ~actor ~head ~max_pages f =
  (* Each page is read once per walk and memoized: the walk observes a
     point-in-time snapshot of every index page it visits.  A cycle
     (same page revisited until the bound trips) therefore yields the
     same verdict regardless of how concurrent repairs interleave with
     the walk — and costs one media read, not [max_pages]. *)
  let memo = Hashtbl.create 8 in
  let read page =
    match Hashtbl.find_opt memo page with
    | Some decoded -> decoded
    | None ->
      let decoded =
        match fetch with
        | Some fetch -> (
          match fetch page with
          | Some b -> decode_index_page b
          | None -> read_index_page pm ~actor ~page)
        | None -> read_index_page pm ~actor ~page
      in
      Hashtbl.add memo page decoded;
      decoded
  in
  let rec go page seen =
    if page = 0 then Ok ()
    else if page <= root_dentry_page || page >= max_pages then
      Error (Printf.sprintf "index page %d outside the volume" page)
    else if seen > max_pages then Error "index page chain too long (cycle?)"
    else begin
      let entries, next = read page in
      f ~index_page:page ~entries ~next;
      go next (seen + 1)
    end
  in
  go head 0

let dentry_slot_addr page slot =
  if slot < 0 || slot >= dentries_per_page then invalid_arg "Layout.dentry_slot_addr";
  (page * page_size) + (slot * dentry_size)

(* ------------------------------------------------------------------ *)
(* Directory-index nodes (DESIGN.md §4.18).

   One B-link-tree node per page.  Keys are (name hash, dentry address)
   pairs compared lexicographically: the address component makes every
   key unique, so hash collisions never straddle a split ambiguously —
   equal-hash entries are simply adjacent in key order.

     magic u32 | level u8 | nkeys u16 | right-sibling page u64
     | high hash u64 | high addr u64 | entries (24 bytes each)
     | ... zero fill ... | crc u64 (CRC32 of everything before it)

   A leaf entry is (hash, dentry addr, 0); an internal entry is
   (separator hash, separator addr, child page) where the child covers
   keys strictly below its separator and the node's high key equals the
   last separator.  The rightmost node at each level has high key
   (max_int, max_int) and no right sibling.

   The CRC covers the whole page body, so a torn node write decodes as
   an error — readers fall back to the dentry-page scan and the index
   is rebuilt from its leaves (the dentry pages stay the source of
   truth; the tree is an accelerator). *)

let dnode_magic = 0x44495831 (* "DIX1" *)
let dnode_hdr_size = 32
let dnode_entry_size = 24
let dnode_crc_off = page_size - 8
let dnode_capacity = (dnode_crc_off - dnode_hdr_size) / dnode_entry_size (* 169 *)

let dn_off_magic = 0
let dn_off_level = 4
let dn_off_nkeys = 6
let dn_off_right = 8
let dn_off_high_hash = 16
let dn_off_high_addr = 24

type dnode = {
  dn_level : int; (* 0 = leaf *)
  dn_right : int; (* right-sibling page; 0 = rightmost at this level *)
  dn_high_hash : int; (* exclusive upper bound of this node's key space *)
  dn_high_addr : int;
  dn_entries : (int * int * int) array;
}

let encode_dnode (n : dnode) : Bytes.t =
  let nkeys = Array.length n.dn_entries in
  if nkeys > dnode_capacity then invalid_arg "Layout.encode_dnode: too many entries";
  let b = Bytes.make page_size '\000' in
  set_u32 b dn_off_magic dnode_magic;
  set_u8 b dn_off_level n.dn_level;
  set_u16 b dn_off_nkeys nkeys;
  set_u64 b dn_off_right n.dn_right;
  set_u64 b dn_off_high_hash n.dn_high_hash;
  set_u64 b dn_off_high_addr n.dn_high_addr;
  Array.iteri
    (fun i (h, a, x) ->
      let off = dnode_hdr_size + (i * dnode_entry_size) in
      set_u64 b off h;
      set_u64 b (off + 8) a;
      set_u64 b (off + 16) x)
    n.dn_entries;
  set_u64 b dnode_crc_off (Crc32.of_bytes ~pos:0 ~len:dnode_crc_off b);
  b

let decode_dnode (b : Bytes.t) : (dnode, string) result =
  if Bytes.length b <> page_size then Error "index node: wrong page size"
  else if get_u32 b dn_off_magic <> dnode_magic then Error "index node: bad magic"
  else if get_u64 b dnode_crc_off <> Crc32.of_bytes ~pos:0 ~len:dnode_crc_off b then
    Error "index node: bad crc"
  else begin
    let nkeys = get_u16 b dn_off_nkeys in
    if nkeys > dnode_capacity then Error "index node: bad key count"
    else
      Ok
        {
          dn_level = get_u8 b dn_off_level;
          dn_right = get_u64 b dn_off_right;
          dn_high_hash = get_u64 b dn_off_high_hash;
          dn_high_addr = get_u64 b dn_off_high_addr;
          dn_entries =
            Array.init nkeys (fun i ->
                let off = dnode_hdr_size + (i * dnode_entry_size) in
                (get_u64 b off, get_u64 b (off + 8), get_u64 b (off + 16)));
        }
  end

(* ------------------------------------------------------------------ *)
(* Superblock / mkfs *)

let write_superblock pm ~total_pages =
  let actor = Pmem.kernel_actor in
  let b = Bytes.make 64 '\000' in
  set_u64 b sb_off_magic sb_magic;
  set_u64 b sb_off_total_pages total_pages;
  set_u32 b sb_off_page_size page_size;
  set_u64 b sb_off_root_ino root_ino;
  set_u64 b sb_off_root_dentry root_dentry_addr;
  Pmem.write pm ~actor ~addr:0 ~src:b;
  Pmem.persist pm ~addr:0 ~len:64

let read_superblock pm ~actor =
  let b = Pmem.read pm ~actor ~addr:0 ~len:64 in
  if get_u64 b sb_off_magic <> sb_magic then Error "bad superblock magic"
  else
    Ok
      ( get_u64 b sb_off_total_pages,
        get_u32 b sb_off_page_size,
        get_u64 b sb_off_root_ino,
        get_u64 b sb_off_root_dentry )

(* ------------------------------------------------------------------ *)
(* Snapshot root slots (DESIGN.md §4.16).

   Two 64-byte slots in page 0 — one cacheline each, so a slot update
   is a single-line store with respect to the crash model.  A whole-FS
   snapshot commits by writing its root record into the slot NOT
   holding the current root (alternating pair): until that store
   persists, the previous root stays untouched and fully valid, so a
   crash at any point of publication leaves at least one intact root.

   A slot is self-validating (trailing CRC over its own fields) and
   names a payload chain of pages whose stream CRC it also carries;
   torn or damaged roots fail one of the two checks and recovery falls
   back to the other slot, then to the fsck walk. *)

let snap_magic = 0x54524F53_4E503136 (* "TROSNP16" *)
let snap_slots = 2
let snap_slot_size = 64

let snap_slot_addr slot =
  if slot < 0 || slot >= snap_slots then invalid_arg "Layout.snap_slot_addr";
  256 + (slot * snap_slot_size)

type snap_root = {
  sr_epoch : int; (* monotone publication counter, 1-based *)
  sr_head : int; (* first payload page; 0 = empty payload *)
  sr_npages : int;
  sr_payload_len : int; (* stream bytes, excluding per-page next links *)
  sr_payload_crc : int; (* CRC32 of the payload stream *)
}

let sr_off_magic = 0
let sr_off_epoch = 8
let sr_off_head = 16
let sr_off_npages = 24
let sr_off_len = 32
let sr_off_crc = 40
let sr_off_slot_crc = 48

let encode_snap_root (r : snap_root) =
  let b = Bytes.make snap_slot_size '\000' in
  set_u64 b sr_off_magic snap_magic;
  set_u64 b sr_off_epoch r.sr_epoch;
  set_u64 b sr_off_head r.sr_head;
  set_u64 b sr_off_npages r.sr_npages;
  set_u64 b sr_off_len r.sr_payload_len;
  set_u64 b sr_off_crc r.sr_payload_crc;
  set_u64 b sr_off_slot_crc (Crc32.of_bytes ~pos:0 ~len:sr_off_slot_crc b);
  b

(* [None] for an empty, torn or garbage slot — a slot never decodes to
   an error, because an invalid slot is a normal state of the commit
   protocol (the fallback root is what matters). *)
let decode_snap_root (b : Bytes.t) : snap_root option =
  if Bytes.length b <> snap_slot_size then None
  else if get_u64 b sr_off_magic <> snap_magic then None
  else if get_u64 b sr_off_slot_crc <> Crc32.of_bytes ~pos:0 ~len:sr_off_slot_crc b then None
  else
    Some
      {
        sr_epoch = get_u64 b sr_off_epoch;
        sr_head = get_u64 b sr_off_head;
        sr_npages = get_u64 b sr_off_npages;
        sr_payload_len = get_u64 b sr_off_len;
        sr_payload_crc = get_u64 b sr_off_crc;
      }

let write_snap_root pm ~slot (r : snap_root) =
  let addr = snap_slot_addr slot in
  Pmem.write pm ~actor:Pmem.kernel_actor ~addr ~src:(encode_snap_root r);
  Pmem.persist pm ~addr ~len:snap_slot_size

(* Read through ECC even as the kernel: a poisoned slot must read as
   invalid, not mask the damage. *)
let read_snap_root pm ~slot =
  match
    Pmem.read_ecc pm ~actor:Pmem.kernel_actor ~addr:(snap_slot_addr slot) ~len:snap_slot_size
  with
  | Pmem.Ecc.Ok b -> decode_snap_root b
  | Pmem.Ecc.Poisoned _ -> None

(* Initialize an empty file system: superblock + root directory with no
   entries.  Called by the controller at format time. *)
let mkfs pm ~total_pages =
  let actor = Pmem.kernel_actor in
  write_superblock pm ~total_pages;
  let root =
    {
      ino = root_ino;
      ftype = Fs_types.Dir;
      mode = 0o777;
      uid = 0;
      gid = 0;
      size = 0;
      index_head = 0;
      mtime = 0;
      ctime = 0;
    }
  in
  write_dentry_atomic pm ~actor ~addr:root_dentry_addr ~inode:root ~name:"/"
