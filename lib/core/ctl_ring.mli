(** Per-process submission/completion ring between a LibFS and the
    controller (DESIGN.md §4.15): io_uring-shaped slot arrays indexed by
    sequence number modulo capacity, one bound ([outstanding <=
    capacity]) covering both queues.  This module only moves entries —
    the drain plane that executes them lives in {!Ctl_gate}.  Internal
    to [lib/core]; external code goes through the {!Controller}
    facade. *)

module Sched = Trio_sim.Sched

type op = Op_map of { ino : int; write : bool } | Op_unmap of { ino : int } | Op_lease

type completion = (unit, Fs_types.errno) result

type t

val create : proc:int -> capacity:int -> t

val set_notify : t -> (unit -> unit) -> unit
(** Install the doorbell fired after each successful submit. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual clock used to time producer parks (ring_setup
    does this; the default clock reads 0, so park time is simply not
    measured on unwired rings). *)

val set_qos :
  t ->
  gate:(unit -> float option) ->
  sleep_until:(float -> unit) ->
  note:(float -> unit) ->
  unit
(** Install the QoS hooks (ring_setup): [gate] returns [Some deadline]
    while this proc's tenant is overdrawn, [sleep_until] parks the
    producer until an absolute virtual time, [note] reports parked ns
    back to the QoS accounting. *)

(** {2 Producer side (LibFS)} *)

val submit : ?forget:bool -> ?nowait:bool -> t -> op -> (int, Fs_types.errno) result
(** Enqueue one request; parks while the ring is full.  Returns the
    sequence number to {!await} on, or [Error EIO] once closed.
    [~forget:true] marks the entry fire-and-forget: its completion
    auto-reaps and must not be awaited, and its doorbell is lazy — the
    entry lingers in the SQ until an awaited submit, a half-full SQ,
    {!drain} or backpressure announces it, which is what lets the drain
    plane see an unmap and its chasing re-map in one batch.  The
    [cpu_work] at the head of this function is the submit path's only
    kill point — a producer killed there has enqueued nothing.

    QoS backpressure: while the tenant is overdrawn the producer parks
    at the ring mouth until the admission deadline; with [~nowait:true]
    it gets [Error EAGAIN] immediately instead, with the deadline
    readable from {!last_throttle_deadline}. *)

val await : t -> seq:int -> completion
(** Park until [seq]'s completion is posted, then reap it.  [Error EIO]
    if the ring closes first. *)

val drain : t -> unit
(** Park until every submitted entry has been reaped (or the ring is
    closed): the producer's quiesce barrier before unmount. *)

(** {2 Consumer side (controller drain plane)} *)

val take_batch : t -> max:int -> (int * op) list
val post : t -> seq:int -> completion -> unit

val close : t -> unit
(** Tear down: drop unconsumed submissions and unreaped completions,
    wake every parked producer (they observe [Error EIO]).  In-flight
    entries release their slots when the drain fiber posts them. *)

(** {2 Accessors and counters} *)

val proc : t -> int
val capacity : t -> int

val depth : t -> int
(** Submissions not yet taken by the consumer. *)

val outstanding : t -> int
(** Submissions not yet reaped — the quantity bounded by [capacity]. *)

val submitted : t -> int
val completed : t -> int
val dropped : t -> int
val is_closed : t -> bool

val is_queued : t -> bool
(** On its shard's drain queue right now (dedup flag, owned by
    {!Ctl_gate}). *)

val set_queued : t -> bool -> unit

val is_busy : t -> bool
(** A drain fiber is mid-batch (FIFO guard, owned by {!Ctl_gate}). *)

val set_busy : t -> bool -> unit
val sq_parks : t -> int
val cq_parks : t -> int
val wakes : t -> int

val sq_park_ns : t -> float
(** Total producer time spent parked on a full SQ (virtual ns). *)

val throttle_parks : t -> int
val throttle_ns : t -> float

val last_throttle_deadline : t -> float
(** Admission deadline carried by the last EAGAIN a [~nowait] submit
    returned: the earliest virtual time a retry can be admitted. *)
