(* Per-process submission/completion ring between a LibFS and the
   controller (DESIGN.md §4.15).

   The shape is io_uring's: the untrusted side enqueues fixed-size
   request entries into a submission queue (SQ) and reaps results from a
   completion queue (CQ); the trusted side drains a whole SQ batch under
   one shield/heartbeat, so the per-request kernel-crossing cost is paid
   once per batch instead of once per call.  In the simulation both
   queues are slot arrays indexed by a monotonically increasing sequence
   number modulo the capacity — exactly the shared-memory layout the
   real protocol would mmap, which is what makes wrap-around and
   full-ring behavior faithful.

   One bound covers both queues: an entry occupies its slot from submit
   until its completion is reaped, so

       outstanding = r_sq_tail - r_reaped  <=  r_cap

   guarantees the CQ slot [seq mod cap] is free when the drain fiber
   posts to it — no separate CQ-overflow path exists, matching
   io_uring's CQ sizing discipline.

   Failure semantics: [close] (called by the watchdog's abnormal
   teardown) drops every unconsumed entry on the floor — a submission
   never taken by the consumer, or a completion never reaped by the
   producer, counts as [dropped] and releases its slot.  Entries already
   taken by a drain fiber but not yet posted complete as no-ops: [post]
   on a closed ring only releases the slot.  Either way [outstanding]
   reaches zero, which is what lets the watchdog's page accounting
   treat the ring as empty.  Producers parked on a full SQ or on a
   pending completion are woken and observe [Error EIO].

   This module only moves entries; it performs no controller work and
   takes no shard locks.  The drain plane lives in {!Ctl_gate}. *)

module Sched = Trio_sim.Sched
module Perf = Trio_nvm.Perf
open Fs_types

type op = Op_map of { ino : int; write : bool } | Op_unmap of { ino : int } | Op_lease

type completion = (unit, errno) result

type t = {
  r_proc : int;
  r_cap : int;
  r_sq : (int * op) option array; (* slot = seq mod r_cap *)
  r_cq : (int * completion) option array;
  mutable r_sq_head : int; (* next seq the consumer takes *)
  mutable r_sq_tail : int; (* entries ever submitted *)
  mutable r_cq_tail : int; (* completions ever posted (or dropped) *)
  mutable r_reaped : int; (* completions ever consumed (or dropped) *)
  mutable r_closed : bool;
  mutable r_queued : bool; (* on its shard's drain queue right now *)
  mutable r_busy : bool;
      (* a drain fiber is executing a batch right now: a second fiber
         must not start another, or the ring's FIFO order would break *)
  r_full_waiters : Sched.waker Queue.t; (* producers parked on a full SQ *)
  r_cq_waiters : (int, Sched.waker) Hashtbl.t; (* seq -> parked producer *)
  r_drain_waiters : Sched.waker Queue.t; (* producers in [drain] *)
  mutable r_notify : unit -> unit; (* doorbell into the drain plane *)
  r_forget : (int, unit) Hashtbl.t; (* fire-and-forget seqs: auto-reap *)
  mutable r_sq_parks : int;
  mutable r_cq_parks : int;
  mutable r_wakes : int;
  mutable r_dropped : int;
  mutable r_now : unit -> float;
      (* virtual clock (installed by ring_setup): times producer parks *)
  mutable r_sq_park_ns : float; (* total producer time parked on a full SQ *)
  mutable r_gate : unit -> float option;
      (* QoS admission (installed by ring_setup): [Some deadline] while
         this proc's tenant is overdrawn; default admits everything *)
  mutable r_sleep_until : float -> unit;
      (* park the producer until an absolute virtual time *)
  mutable r_note_throttle : float -> unit; (* report parked ns to the QoS plane *)
  mutable r_throttle_parks : int;
  mutable r_throttle_ns : float;
  mutable r_last_throttle_deadline : float;
      (* deadline carried by the last EAGAIN a nowait submit returned *)
}

let create ~proc ~capacity =
  if capacity < 1 then invalid_arg "Ctl_ring.create: capacity < 1";
  {
    r_proc = proc;
    r_cap = capacity;
    r_sq = Array.make capacity None;
    r_cq = Array.make capacity None;
    r_sq_head = 0;
    r_sq_tail = 0;
    r_cq_tail = 0;
    r_reaped = 0;
    r_closed = false;
    r_queued = false;
    r_busy = false;
    r_full_waiters = Queue.create ();
    r_cq_waiters = Hashtbl.create 16;
    r_drain_waiters = Queue.create ();
    r_notify = (fun () -> ());
    r_forget = Hashtbl.create 16;
    r_sq_parks = 0;
    r_cq_parks = 0;
    r_wakes = 0;
    r_dropped = 0;
    r_now = (fun () -> 0.0);
    r_sq_park_ns = 0.0;
    r_gate = (fun () -> None);
    r_sleep_until = (fun _ -> ());
    r_note_throttle = (fun _ -> ());
    r_throttle_parks = 0;
    r_throttle_ns = 0.0;
    r_last_throttle_deadline = 0.0;
  }

let set_notify t f = t.r_notify <- f
let set_clock t f = t.r_now <- f

let set_qos t ~gate ~sleep_until ~note =
  t.r_gate <- gate;
  t.r_sleep_until <- sleep_until;
  t.r_note_throttle <- note
let proc t = t.r_proc
let capacity t = t.r_cap
let depth t = t.r_sq_tail - t.r_sq_head
let outstanding t = t.r_sq_tail - t.r_reaped
let submitted t = t.r_sq_tail
let completed t = t.r_cq_tail
let dropped t = t.r_dropped
let is_closed t = t.r_closed
let is_queued t = t.r_queued
let set_queued t b = t.r_queued <- b
let is_busy t = t.r_busy
let set_busy t b = t.r_busy <- b
let sq_parks t = t.r_sq_parks
let cq_parks t = t.r_cq_parks
let wakes t = t.r_wakes
let sq_park_ns t = t.r_sq_park_ns
let throttle_parks t = t.r_throttle_parks
let throttle_ns t = t.r_throttle_ns
let last_throttle_deadline t = t.r_last_throttle_deadline

let wake_queue q t =
  while not (Queue.is_empty q) do
    t.r_wakes <- t.r_wakes + 1;
    (Queue.pop q) ()
  done

let wake_one q t =
  match Queue.take_opt q with
  | Some w ->
    t.r_wakes <- t.r_wakes + 1;
    w ()
  | None -> ()

(* A slot freed: one parked producer may enqueue, and if the ring just
   emptied, quiescing producers may proceed. *)
let slot_released t =
  wake_one t.r_full_waiters t;
  if outstanding t = 0 then wake_queue t.r_drain_waiters t

(* Enqueue one request.  The [cpu_work] at the top is the ring's only
   Delay boundary on the submit path — and therefore its kill point: a
   producer killed here has written nothing, so the entry either exists
   completely or not at all (the enqueue below runs without yielding).
   Returns the sequence number to [await] on.

   The doorbell is lazy for fire-and-forget entries: nobody waits on
   their completion, so they may linger in the SQ until an awaited
   submit (or a half-full SQ, or [drain], or the backpressure park
   below) rings it.  The lingering is what lets an unmap and the
   re-map that chases it land in one batch, where the drain plane can
   fuse the pair away (see {!Ctl_gate}). *)
(* QoS backpressure at the ring mouth: while the tenant is overdrawn,
   either park until the admission deadline (the producer is outside any
   shield here, so kills can land inside the throttled state — the
   scenario [Explore.explore_qos] sweeps) or, under [~nowait], surface
   EAGAIN immediately with the deadline recorded for the caller. *)
let rec throttle_wait t ~nowait =
  if t.r_closed then Ok ()
  else
    match t.r_gate () with
    | None -> Ok ()
    | Some deadline ->
      if nowait then begin
        t.r_last_throttle_deadline <- deadline;
        Error EAGAIN
      end
      else begin
        t.r_throttle_parks <- t.r_throttle_parks + 1;
        (* Announce lazy entries before sleeping, like the full-SQ park:
           the drain plane should not idle while we wait out a debt. *)
        if depth t > 0 then t.r_notify ();
        let t0 = t.r_now () in
        t.r_sleep_until deadline;
        let d = t.r_now () -. t0 in
        t.r_throttle_ns <- t.r_throttle_ns +. d;
        t.r_note_throttle d;
        throttle_wait t ~nowait
      end

let submit ?(forget = false) ?(nowait = false) t op =
  Sched.cpu_work Perf.Cpu.ring_submit;
  if t.r_closed then Error EIO
  else
    match throttle_wait t ~nowait with
    | Error e -> Error e
    | Ok () ->
      while outstanding t >= t.r_cap && not t.r_closed do
        t.r_sq_parks <- t.r_sq_parks + 1;
        (* The SQ may be full of un-announced lazy entries: ring before
           parking or nobody will ever free a slot. *)
        t.r_notify ();
        let t0 = t.r_now () in
        Sched.park (fun waker -> Queue.push waker t.r_full_waiters);
        t.r_sq_park_ns <- t.r_sq_park_ns +. (t.r_now () -. t0)
      done;
      if t.r_closed then Error EIO
      else begin
        let seq = t.r_sq_tail in
        t.r_sq.(seq mod t.r_cap) <- Some (seq, op);
        t.r_sq_tail <- seq + 1;
        if forget then Hashtbl.replace t.r_forget seq ();
        if (not forget) || 2 * depth t >= t.r_cap then t.r_notify ();
        Ok seq
      end

(* Consumer side: take up to [max] entries off the SQ head. *)
let take_batch t ~max =
  let batch = ref [] in
  let n = ref 0 in
  while !n < max && t.r_sq_head < t.r_sq_tail do
    let slot = t.r_sq_head mod t.r_cap in
    (match t.r_sq.(slot) with
    | Some entry ->
      t.r_sq.(slot) <- None;
      batch := entry :: !batch
    | None -> assert false);
    t.r_sq_head <- t.r_sq_head + 1;
    incr n
  done;
  List.rev !batch

(* Post one completion.  Fire-and-forget entries auto-reap: nobody will
   ever [await] them, so the slot is released immediately.  On a closed
   ring the result is discarded but the slot still releases — this is
   what drives [outstanding] to zero for entries that were in flight
   when the watchdog tore the ring down. *)
let post t ~seq result =
  t.r_cq_tail <- t.r_cq_tail + 1;
  if t.r_closed then begin
    Hashtbl.remove t.r_forget seq;
    t.r_reaped <- t.r_reaped + 1;
    t.r_dropped <- t.r_dropped + 1;
    slot_released t
  end
  else if Hashtbl.mem t.r_forget seq then begin
    Hashtbl.remove t.r_forget seq;
    t.r_reaped <- t.r_reaped + 1;
    slot_released t
  end
  else begin
    t.r_cq.(seq mod t.r_cap) <- Some (seq, result);
    match Hashtbl.find_opt t.r_cq_waiters seq with
    | Some waker ->
      Hashtbl.remove t.r_cq_waiters seq;
      t.r_wakes <- t.r_wakes + 1;
      waker ()
    | None -> ()
  end

(* Producer side: park until [seq]'s completion lands, then reap it.
   The reap charges [ring_reap] — the shared-memory read plus the
   head-pointer store a real reaper would pay. *)
let rec await t ~seq =
  let slot = seq mod t.r_cap in
  match t.r_cq.(slot) with
  | Some (s, result) when s = seq ->
    t.r_cq.(slot) <- None;
    t.r_reaped <- t.r_reaped + 1;
    Sched.cpu_work Perf.Cpu.ring_reap;
    slot_released t;
    result
  | _ ->
    if t.r_closed then Error EIO
    else begin
      t.r_cq_parks <- t.r_cq_parks + 1;
      Sched.park (fun waker -> Hashtbl.replace t.r_cq_waiters seq waker);
      await t ~seq
    end

(* Producer quiesce: wait until every submitted entry has been reaped
   (all fire-and-forget work has landed in the controller).  Lazy
   entries may still be sitting un-announced in the SQ — ring the
   doorbell before parking on them. *)
let rec drain t =
  if outstanding t > 0 && not t.r_closed then begin
    if depth t > 0 then t.r_notify ();
    Sched.park (fun waker -> Queue.push waker t.r_drain_waiters);
    drain t
  end

(* Tear the ring down (watchdog path, or unmount).  Unconsumed
   submissions and unreaped completions are dropped; in-flight entries
   release their slots at [post].  Every parked producer wakes and
   observes the closed flag. *)
let close t =
  if not t.r_closed then begin
    t.r_closed <- true;
    (* Drop submissions never taken by the consumer. *)
    while t.r_sq_head < t.r_sq_tail do
      let slot = t.r_sq_head mod t.r_cap in
      (match t.r_sq.(slot) with
      | Some (seq, _) ->
        t.r_sq.(slot) <- None;
        Hashtbl.remove t.r_forget seq
      | None -> ());
      t.r_sq_head <- t.r_sq_head + 1;
      t.r_reaped <- t.r_reaped + 1;
      t.r_dropped <- t.r_dropped + 1
    done;
    (* Drop completions posted but never reaped. *)
    Array.iteri
      (fun i slot ->
        match slot with
        | Some _ ->
          t.r_cq.(i) <- None;
          t.r_reaped <- t.r_reaped + 1;
          t.r_dropped <- t.r_dropped + 1
        | None -> ())
      t.r_cq;
    wake_queue t.r_full_waiters t;
    Hashtbl.iter
      (fun _ waker ->
        t.r_wakes <- t.r_wakes + 1;
        waker ())
      t.r_cq_waiters;
    Hashtbl.reset t.r_cq_waiters;
    wake_queue t.r_drain_waiters t
  end
