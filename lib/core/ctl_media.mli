(** Media-repair primitives used by the patrol scrubber ({!Scrub}).
    Internal to [lib/core] — external code goes through {!Controller}. *)

val badblocks : Ctl_state.t -> int list
val degradation_of : Ctl_state.t -> int -> Ctl_state.degradation option
val writer_of : Ctl_state.t -> int -> int option
val record_media_event : Ctl_state.t -> ino:int -> detail:string -> unit
val degrade_file : Ctl_state.t -> ino:int -> Ctl_state.degradation -> detail:string -> unit
val retire_page_raw : Ctl_state.t -> int -> unit
val quarantine_page : Ctl_state.t -> ino:int -> int -> unit

val replace_page :
  Ctl_state.t -> ino:int -> bad:int -> zero_lines:int list -> (int, Fs_types.errno) result

val rebuild_root_dentry : Ctl_state.t -> unit

(* Drop and rebuild a directory's B-link name index from its live
   dentries (the dentry pages are the source of truth; the index is a
   rebuildable accelerator).  Returns the new root page, 0 when the
   directory ends up unindexed (empty, or no pages available). *)
val rebuild_dindex : Ctl_state.t -> ino:int -> (int, Fs_types.errno) result

val dindex_member : Ctl_state.t -> ino:int -> int -> bool
