(* The integrity verifier: a trusted process that checks a single file's
   core state online, when its write access is transferred (paper §4.3).

   The checks mirror the paper's invariants:

   I1  fields in each inode and directory entry are valid (file type,
       name charset/length, no duplicate names, mode range, size
       consistent with the page count);
   I2  a file's inode number, index pages and data pages are valid:
       every page belongs to this file or was freshly allocated to the
       LibFS that had the file write-mapped; nothing is referenced
       twice; chains do not cycle;
   I3  the directory hierarchy stays a connected tree: a child directory
       deleted since the checkpoint must be unmapped, empty, and own no
       pages;
   I4  access permissions are enforced: the permission bits cached in
       the NVM inode must agree with the kernel's shadow inode table
       (the ground truth); mismatches are repaired from the shadow, not
       trusted.

   The verifier only reads through [Pmem] with the kernel actor, so its
   inspection costs are charged to the sharing path — that is the
   "Verifier" slice of Fig. 8.

   Incremental mode (§4.3/§6): the caller may pass [delta], a lookup
   that returns a page's bytes from a DRAM delta-checkpoint snapshot
   when the page is provably clean (no content mutation recorded by the
   MMU write-set since the snapshot was taken).  Snapshot bytes are
   bit-identical to the device by construction, and the verifier runs
   the exact same checks over them — verdicts are byte-identical to a
   full walk; only the inspection cost drops, because clean pages skip
   the media read and pay a spot-check CPU charge instead of the full
   per-entry scan (the byte-format validation of those entries was
   already vouched for when the checkpoint was taken). *)

module Pmem = Trio_nvm.Pmem
module Perf = Trio_nvm.Perf
module Sched = Trio_sim.Sched
module Stats = Trio_sim.Stats

type shadow = { s_ftype : Fs_types.ftype; s_mode : int; s_uid : int; s_gid : int }

type page_owner = Free | Allocated_to of int | In_file of int

type ino_owner = Ino_free | Ino_allocated_to of int | Ino_in_dir of int

(* The verifier's read-only window onto the kernel controller's global
   file system information (paper §4.3, check I2). *)
type view = {
  pmem : Pmem.t;
  total_pages : int;
  page_owner : int -> page_owner;
  ino_owner : int -> ino_owner;
  shadow : int -> shadow option;
  checkpoint_children : int -> int list option;
      (* child inos of a directory at its last checkpoint *)
  is_mapped_elsewhere : ino:int -> proc:int -> bool;
  write_mapped_by_other : ino:int -> proc:int -> bool;
      (* a child currently write-mapped by another process is being
         legitimately modified; it will be verified at its own unmap *)
  pages_attributed_to : int -> int list; (* pages still recorded as In_file ino *)
  rename_source_ok : src:int -> ino:int -> proc:int -> bool;
      (* the child's recorded parent is mid-handoff on behalf of this
         process — still write-mapped, queued or running in the
         verification pipeline, or already verified with the child
         observed missing (deferred delete).  These are the shapes an
         in-flight cross-directory rename takes on the source side. *)
      (* true when [proc] holds a write mapping on directory [dir]: a
         child found under a different parent is a legitimate in-flight
         rename only if its recorded parent is simultaneously
         write-mapped by the same process. *)
}

(* I5 (DESIGN.md §4.18) extends the paper's set: when a directory is
   indexed (its dentry carries a B-link root), the index must agree
   with the dentry pages — every live dentry reachable at its hash, no
   dangling entries, node ordering/fanout/CRC valid.  An unindexed
   directory (root 0) is legal: the index is an accelerator, and its
   absence just means the LibFS falls back to page scans.

   [`Media] is not one of the paper's invariants: it records an
   unrepairable media fault found by the patrol scrubber (see {!Scrub}),
   reusing the same corruption-event plumbing. *)
type violation = { check : [ `I1 | `I2 | `I3 | `I4 | `I5 | `Media ]; detail : string }

type child = { c_ino : int; c_ftype : Fs_types.ftype; c_dentry_addr : int; c_name : string }

type report = {
  ok : bool;
  violations : violation list;
  fixed : string list; (* I4 repairs applied *)
  index_pages : int list;
  data_pages : int list;
  dindex_pages : int list; (* B-link index nodes (directories only) *)
  children : child list; (* live children (directories only) *)
  deleted_children : int list; (* inos gone since the checkpoint *)
  size : int;
}

let empty_report =
  {
    ok = true;
    violations = [];
    fixed = [];
    index_pages = [];
    data_pages = [];
    dindex_pages = [];
    children = [];
    deleted_children = [];
    size = 0;
  }

(* ------------------------------------------------------------------ *)
(* Incremental-mode plumbing *)

let no_delta : int -> Bytes.t option = fun _ -> None

let count stats name = match stats with Some s -> Stats.incr s name | None -> ()

(* Per-invariant observability: a phase switcher that attributes elapsed
   virtual time exclusively to the current phase, so the four timers sum
   to the whole verification with no double counting. *)
type phaser = { mutable ph : string option; mutable t0 : float; st : Stats.t; sc : Sched.t }

let make_phaser view stats =
  Option.map (fun st -> { ph = None; t0 = 0.0; st; sc = Pmem.sched view.pmem }) stats

let phase p name =
  match p with
  | None -> ()
  | Some p ->
    let now = Sched.now p.sc in
    (match p.ph with Some n -> Stats.add p.st n (now -. p.t0) | None -> ());
    p.ph <- name;
    p.t0 <- now

(* Read a whole (meta)data page, serving clean pages from the delta
   checkpoint.  Returns the bytes and whether they came from a
   snapshot. *)
let fetch_page view ~delta ~stats ~actor page =
  match delta page with
  | Some b ->
    count stats "verify.dirty.hits";
    (b, true)
  | None ->
    count stats "verify.dirty.misses";
    (Pmem.read view.pmem ~actor ~addr:(page * Layout.page_size) ~len:Layout.page_size, false)

let check_name ~check name seen violations =
  if not (Fs_types.valid_name name) then
    violations := { check; detail = Printf.sprintf "invalid name %S" name } :: !violations
  else if Hashtbl.mem seen name then
    violations := { check; detail = Printf.sprintf "duplicate name %S" name } :: !violations
  else Hashtbl.add seen name ()

(* Validate one page reference for I2 and record it in [refs].  A valid
   page either already belongs to the file or was allocated to [proc]. *)
let check_page view ~proc ~ino ~refs ~violations page what =
  if page <= Layout.root_dentry_page || page >= view.total_pages then
    violations :=
      { check = `I2; detail = Printf.sprintf "%s points outside the volume: page %d" what page }
      :: !violations
  else if Hashtbl.mem refs page then
    violations :=
      { check = `I2; detail = Printf.sprintf "%s doubly referenced: page %d" what page }
      :: !violations
  else begin
    Hashtbl.add refs page ();
    match view.page_owner page with
    | In_file owner when owner = ino -> ()
    | Allocated_to p when p = proc -> ()
    | In_file owner ->
      violations :=
        {
          check = `I2;
          detail = Printf.sprintf "%s references page %d owned by inode %d" what page owner;
        }
        :: !violations
    | Allocated_to p ->
      violations :=
        {
          check = `I2;
          detail = Printf.sprintf "%s references page %d allocated to process %d" what page p;
        }
        :: !violations
    | Free ->
      violations :=
        { check = `I2; detail = Printf.sprintf "%s references free page %d" what page }
        :: !violations
  end

(* Walk the file's index chain collecting index and data pages; bails out
   on cycles (chain longer than the volume).  [refs] is shared across a
   whole verification so pages referenced by two files (or twice within
   one) are caught.  Clean index pages come from the delta checkpoint:
   same bytes, a spot-check CPU charge instead of the full 511-entry
   scan, and no media read. *)
let collect_pages ?refs ?(delta = no_delta) ?stats view ~actor ~proc ~ino ~head ~violations =
  let refs = match refs with Some r -> r | None -> Hashtbl.create 64 in
  let index_pages = ref [] and data_pages = ref [] in
  let result =
    Layout.walk_index_chain ~fetch:delta view.pmem ~actor ~head ~max_pages:view.total_pages
      (fun ~index_page ~entries ~next:_ ->
        check_page view ~proc ~ino ~refs ~violations index_page "index page";
        index_pages := index_page :: !index_pages;
        (match delta index_page with
        | Some _ ->
          count stats "verify.dirty.hits";
          Sched.cpu_work (Perf.Cpu.index_entry_check *. 8.0)
        | None ->
          count stats "verify.dirty.misses";
          Sched.cpu_work (Perf.Cpu.index_entry_check *. float_of_int Layout.index_entries));
        Array.iter
          (fun entry ->
            if entry <> 0 then begin
              check_page view ~proc ~ino ~refs ~violations entry "data page";
              (* only in-range pages may be dereferenced later *)
              if entry > Layout.root_dentry_page && entry < view.total_pages then
                data_pages := entry :: !data_pages
            end)
          entries)
  in
  (match result with
  | Ok () -> ()
  | Error msg -> violations := { check = `I2; detail = msg } :: !violations);
  (List.rev !index_pages, List.rev !data_pages)

(* I4 on one inode: permission fields must agree with the shadow inode
   table; mismatches are repaired in place from the shadow. *)
let check_perms view ~actor ~fixed ~violations ~(inode : Layout.inode) ~dentry_addr =
  match view.shadow inode.ino with
  | None ->
    violations :=
      { check = `I2; detail = Printf.sprintf "inode %d unknown to the kernel" inode.ino }
      :: !violations
  | Some s ->
    if s.s_ftype <> inode.ftype then
      violations :=
        {
          check = `I1;
          detail = Printf.sprintf "inode %d: file type does not match the kernel record" inode.ino;
        }
        :: !violations;
    if s.s_mode <> inode.mode || s.s_uid <> inode.uid || s.s_gid <> inode.gid then begin
      Layout.write_perms view.pmem ~actor ~dentry_addr ~mode:s.s_mode ~uid:s.s_uid ~gid:s.s_gid;
      fixed :=
        Printf.sprintf "inode %d: permissions restored from shadow inode" inode.ino :: !fixed
    end

let check_size_consistency ~violations ~(inode : Layout.inode) ~npages =
  let max_size = npages * Layout.page_size in
  let min_size = if npages = 0 then 0 else ((npages - 1) * Layout.page_size) + 1 in
  if inode.size < min_size || inode.size > max_size then
    violations :=
      {
        check = `I1;
        detail =
          Printf.sprintf "inode %d: size %d inconsistent with %d data pages" inode.ino inode.size
            npages;
      }
      :: !violations

(* Check a regular file rooted at [inode].  [ph] is the (optional)
   phase switcher of the enclosing check_file. *)
let check_regular ?refs ?delta ?stats ~ph view ~actor ~proc ~(inode : Layout.inode) ~violations =
  phase ph (Some "verify.i2");
  let index_pages, data_pages =
    collect_pages ?refs ?delta ?stats view ~actor ~proc ~ino:inode.ino ~head:inode.index_head
      ~violations
  in
  phase ph (Some "verify.i1");
  check_size_consistency ~violations ~inode ~npages:(List.length data_pages);
  (index_pages, data_pages)

(* A directory writer could corrupt the inode fields of every child
   (they live in the directory's data pages): validate the child's page
   tree and size field here.  Children held write-mapped by another
   process are skipped (they are verified at their own unmap); fresh
   children are fully verified at ingestion. *)
let check_child_tree ?delta ?stats view ~refs ~actor ~proc ~(child : Layout.inode) ~violations =
  if not (view.write_mapped_by_other ~ino:child.ino ~proc) then begin
    let _, data_pages =
      collect_pages ~refs ?delta ?stats view ~actor ~proc ~ino:child.ino ~head:child.index_head
        ~violations
    in
    match child.ftype with
    | Fs_types.Reg -> check_size_consistency ~violations ~inode:child ~npages:(List.length data_pages)
    | Fs_types.Dir ->
      (* recount the child's live entries against its size field; the
         entry contents themselves were not writable through this
         directory's mapping, so no recursion is needed *)
      let live = ref 0 in
      List.iter
        (fun pg ->
          let b, _ = fetch_page view ~delta:(Option.value delta ~default:no_delta) ~stats ~actor pg in
          for slot = 0 to Layout.dentries_per_page - 1 do
            if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then incr live
          done)
        data_pages;
      if !live <> child.size then
        violations :=
          {
            check = `I1;
            detail =
              Printf.sprintf "directory %d: size field %d does not match %d live entries"
                child.ino child.size !live;
          }
          :: !violations
  end

(* The directory's B-link index root, from the (possibly snapshot-clean)
   parent data page holding its dentry block. *)
let read_dindex_root_via ~delta view ~actor ~dentry_addr =
  match delta (dentry_addr / Layout.page_size) with
  | Some page_bytes ->
    Layout.get_u64 page_bytes ((dentry_addr mod Layout.page_size) + Layout.off_dindex_root)
  | None -> Layout.read_dindex_root view.pmem ~actor ~dentry_addr

(* I5: index <-> dentry-page agreement (DESIGN.md §4.18).  The audit
   walks the whole tree checking structure (CRCs, ordering, fanout,
   seams, parent/child agreement); its leaf entries are then matched —
   both ways — against the live dentries the I1 walk produced.  Node
   pages join the shared [refs] set so the index can never smuggle in a
   page the file does not own (I2 discipline), and clean nodes served
   from the delta checkpoint pay a spot-check charge like I1–I4. *)
let check_dindex ?(delta = no_delta) ?stats view ~refs ~actor ~proc ~(inode : Layout.inode) ~root
    ~(children : child list) ~violations =
  if root = 0 then []
  else begin
    let bad detail =
      count stats "verify.i5.violations";
      violations := { check = `I5; detail } :: !violations
    in
    let fetch pg =
      match delta pg with
      | Some b ->
        count stats "verify.dirty.hits";
        Sched.cpu_work (Perf.Cpu.index_entry_check *. 8.0);
        Some b
      | None ->
        count stats "verify.dirty.misses";
        Sched.cpu_work (Perf.Cpu.index_entry_check *. float_of_int Layout.dnode_capacity);
        None
    in
    let a = Dirindex.audit ~fetch view.pmem ~actor ~root in
    List.iter
      (fun pg -> check_page view ~proc ~ino:inode.ino ~refs ~violations pg "index node")
      a.Dirindex.au_pages;
    List.iter bad a.Dirindex.au_violations;
    let tree = Hashtbl.create 64 in
    List.iter (fun k -> Hashtbl.replace tree k ()) a.Dirindex.au_entries;
    List.iter
      (fun (c : child) ->
        let key = (Dirindex.hash_name c.c_name, c.c_dentry_addr) in
        if Hashtbl.mem tree key then Hashtbl.remove tree key
        else
          bad
            (Printf.sprintf "live dentry %S (inode %d) not reachable in the index" c.c_name
               c.c_ino))
      children;
    Hashtbl.iter
      (fun (h, addr) () ->
        bad (Printf.sprintf "dangling index entry (hash %d, dentry address %d)" h addr))
      tree;
    List.filter (fun pg -> pg > Layout.root_dentry_page && pg < view.total_pages) a.Dirindex.au_pages
  end

(* Check a directory: every live dentry is validated (I1), children are
   accounted (I2), the deleted-child rule is enforced (I3), and an
   indexed directory's B-link tree must agree with its dentries (I5). *)
let check_directory ?(delta = no_delta) ?stats ~ph view ~actor ~proc ~(inode : Layout.inode)
    ~dentry_addr ~fixed ~violations =
  let refs = Hashtbl.create 64 in
  phase ph (Some "verify.i2");
  let index_pages, data_pages =
    collect_pages ~refs ~delta ?stats view ~actor ~proc ~ino:inode.ino ~head:inode.index_head
      ~violations
  in
  phase ph (Some "verify.i1");
  let seen_names = Hashtbl.create 64 in
  let seen_inos = Hashtbl.create 64 in
  let children = ref [] in
  List.iter
    (fun page ->
      phase ph (Some "verify.i1");
      let page_bytes, from_snapshot = fetch_page view ~delta ~stats ~actor page in
      (* A snapshot-served directory page pays one spot-check charge; a
         device read is validated slot by slot. *)
      if from_snapshot then Sched.cpu_work Perf.Cpu.dentry_check;
      for slot = 0 to Layout.dentries_per_page - 1 do
        phase ph (Some "verify.i1");
        if not from_snapshot then Sched.cpu_work Perf.Cpu.dentry_check;
        let block = Bytes.sub page_bytes (slot * Layout.dentry_size) Layout.dentry_size in
        let dentry_addr = Layout.dentry_slot_addr page slot in
        match Layout.decode_dentry block with
        | None -> ()
        | Some (Error msg) ->
          violations :=
            { check = `I1; detail = Printf.sprintf "dentry at page %d slot %d: %s" page slot msg }
            :: !violations
        | Some (Ok (child, name)) ->
          check_name ~check:`I1 name seen_names violations;
          if child.mode land lnot 0o7777 <> 0 then
            violations :=
              { check = `I1; detail = Printf.sprintf "inode %d: invalid mode %o" child.ino child.mode }
              :: !violations;
          if Hashtbl.mem seen_inos child.ino then
            violations :=
              { check = `I2; detail = Printf.sprintf "inode %d appears twice in directory" child.ino }
              :: !violations
          else begin
            Hashtbl.add seen_inos child.ino ();
            (* A fresh child (inode allocated to the mapping process) has
               no shadow inode yet: the kernel establishes it, with the
               creator's credentials, at ingestion.  Known children must
               agree with their shadow (I4). *)
            let fresh =
              match view.ino_owner child.ino with Ino_allocated_to p -> p = proc | _ -> false
            in
            if not fresh then begin
              phase ph (Some "verify.i4");
              check_perms view ~actor ~fixed ~violations ~inode:child ~dentry_addr;
              phase ph (Some "verify.i2");
              check_child_tree ~delta ?stats view ~refs ~actor ~proc ~child ~violations;
              phase ph (Some "verify.i1")
            end;
            (match view.ino_owner child.ino with
            | Ino_in_dir parent when parent = inode.ino -> ()
            | Ino_allocated_to p when p = proc -> ()
            | Ino_in_dir parent when view.rename_source_ok ~src:parent ~ino:child.ino ~proc -> ()
              (* in-flight rename out of a directory this process is
                 handing off (or already handed off, with the child seen
                 missing there) *)
            | Ino_in_dir parent ->
              violations :=
                {
                  check = `I2;
                  detail =
                    Printf.sprintf "inode %d belongs to directory %d, found in %d" child.ino parent
                      inode.ino;
                }
                :: !violations
            | Ino_allocated_to p ->
              violations :=
                {
                  check = `I2;
                  detail = Printf.sprintf "inode %d was allocated to process %d" child.ino p;
                }
                :: !violations
            | Ino_free ->
              violations :=
                { check = `I2; detail = Printf.sprintf "inode %d is not a valid inode" child.ino }
                :: !violations);
            children := { c_ino = child.ino; c_ftype = child.ftype; c_dentry_addr = dentry_addr; c_name = name } :: !children
          end
      done)
    data_pages;
  phase ph (Some "verify.i1");
  let children = List.rev !children in
  if inode.size <> List.length children then
    violations :=
      {
        check = `I1;
        detail =
          Printf.sprintf "directory %d: size field %d does not match %d live entries" inode.ino
            inode.size (List.length children);
      }
      :: !violations;
  (* I3: deleted children must leave no trace. *)
  phase ph (Some "verify.i3");
  let deleted =
    match view.checkpoint_children inode.ino with
    | None -> []
    | Some old_children ->
      List.filter (fun ino -> not (Hashtbl.mem seen_inos ino)) old_children
  in
  let deleted =
    (* A child whose recorded parent is already another directory was
       moved (rename), not deleted. *)
    List.filter
      (fun ino ->
        match view.ino_owner ino with
        | Ino_in_dir p when p <> inode.ino -> false
        | _ -> true)
      deleted
  in
  List.iter
    (fun ino ->
      if view.is_mapped_elsewhere ~ino ~proc then
        violations :=
          { check = `I3; detail = Printf.sprintf "deleted inode %d is still mapped" ino }
          :: !violations;
      match view.pages_attributed_to ino with
      | [] -> ()
      | pages -> (
        match view.shadow ino with
        | Some { s_ftype = Fs_types.Dir; _ } ->
          violations :=
            {
              check = `I3;
              detail =
                Printf.sprintf "deleted directory %d still owns %d pages (non-empty rmdir?)" ino
                  (List.length pages);
            }
            :: !violations
        | _ -> () (* regular file pages are reclaimed by the controller *)))
    deleted;
  (* I5: the ordered index must agree with the dentry truth. *)
  phase ph (Some "verify.i5");
  let root = read_dindex_root_via ~delta view ~actor ~dentry_addr in
  let dindex_pages =
    check_dindex ~delta ?stats view ~refs ~actor ~proc ~inode ~root ~children ~violations
  in
  (index_pages, data_pages, dindex_pages, children, deleted)

(* Entry point: verify the file whose dentry block sits at [dentry_addr],
   which process [proc] had write-mapped.  [delta] enables incremental
   mode (see the module comment); [stats] enables the per-invariant
   timers and dirty-hit counters. *)
let check_file ?delta ?stats view ~proc ~ino ~dentry_addr : report =
  let actor = Pmem.kernel_actor in
  let violations = ref [] in
  let fixed = ref [] in
  let ph = make_phaser view stats in
  let d = Option.value delta ~default:no_delta in
  phase ph (Some "verify.i1");
  let dentry =
    (* The file's own dentry lives in a parent data page: serve it from
       the snapshot when that page is clean. *)
    match d (dentry_addr / Layout.page_size) with
    | Some page_bytes ->
      count stats "verify.dirty.hits";
      Layout.decode_dentry
        (Bytes.sub page_bytes (dentry_addr mod Layout.page_size) Layout.dentry_size)
    | None ->
      count stats "verify.dirty.misses";
      Layout.read_dentry view.pmem ~actor ~addr:dentry_addr
  in
  let finish report =
    phase ph None;
    report
  in
  match dentry with
  | None ->
    (* The file itself was deleted while write-mapped; the parent's
       verification will run the deleted-child checks. *)
    finish { empty_report with ok = true }
  | Some (Error msg) ->
    finish { empty_report with ok = false; violations = [ { check = `I1; detail = msg } ] }
  | Some (Ok (inode, _name)) ->
    if inode.ino <> ino then
      violations :=
        {
          check = `I2;
          detail = Printf.sprintf "dentry holds inode %d where %d was mapped" inode.ino ino;
        }
        :: !violations;
    phase ph (Some "verify.i4");
    check_perms view ~actor ~fixed ~violations ~inode ~dentry_addr;
    (* Re-read: I4 repairs may have rewritten the permission fields. *)
    let index_pages, data_pages, dindex_pages, children, deleted =
      match inode.ftype with
      | Fs_types.Reg ->
        let ip, dp = check_regular ?delta ?stats ~ph view ~actor ~proc ~inode ~violations in
        (* A regular file must not carry a directory-index root. *)
        phase ph (Some "verify.i5");
        let root = read_dindex_root_via ~delta:d view ~actor ~dentry_addr in
        if root <> 0 then begin
          count stats "verify.i5.violations";
          violations :=
            {
              check = `I5;
              detail = Printf.sprintf "regular file %d carries a directory-index root" inode.ino;
            }
            :: !violations
        end;
        (ip, dp, [], [], [])
      | Fs_types.Dir ->
        check_directory ~delta:d ?stats ~ph view ~actor ~proc ~inode ~dentry_addr ~fixed
          ~violations
    in
    finish
      {
        ok = !violations = [];
        violations = List.rev !violations;
        fixed = List.rev !fixed;
        index_pages;
        data_pages;
        dindex_pages;
        children;
        deleted_children = deleted;
        size = inode.size;
      }

let pp_violation ppf v =
  let tag =
    match v.check with
    | `I1 -> "I1"
    | `I2 -> "I2"
    | `I3 -> "I3"
    | `I4 -> "I4"
    | `I5 -> "I5"
    | `Media -> "MEDIA"
  in
  Fmt.pf ppf "[%s] %s" tag v.detail
