(* Background patrol scrubber (DESIGN.md §4.11).

   Periodically sweeps the device for poisoned cachelines and tries to
   bring the core state back to health without ever panicking:

   - free / LibFS-allocated pages: the damaged lines carried no ingested
     state; they are zero-filled in place (the rewrite heals the line).
   - pages of a file with a checkpoint: the damaged lines are rewritten
     from the last *verified* checkpoint copy the controller holds — a
     true repair, no data lost.
   - the root dentry (fixed location, no parent to checkpoint it): the
     block is rebuilt from the controller's soft state + shadow inode.
   - anything else: the page is migrated to a fresh page (salvageable
     lines copied, damaged lines zeroed), the dead page is retired to
     the badblock list, and the owning file is degraded to read-only —
     or to Failed when even migration is impossible.  Either way a
     [`Media] corruption event is recorded.

   Pages whose file is currently write-mapped are skipped this round
   (the writer's own stores heal lines as they land; whatever remains is
   caught by a later patrol, after verification refreshed the
   checkpoint).  Badblocked pages are skipped forever: that media is
   known bad.

   The scrubber runs as a kernel actor, whose accesses neither draw
   injected faults nor trip on poison — it *detects* poison through the
   ECC interface ({!Pmem.page_poisoned_lines}) like a real patrol read
   would. *)

module Pmem = Trio_nvm.Pmem
module Sched = Trio_sim.Sched

type stats = {
  mutable rounds : int;
  mutable scanned : int; (* poisoned pages examined *)
  mutable lines_detected : int;
  mutable repaired : int; (* lines restored from a checkpoint / rebuilt *)
  mutable scrubbed : int; (* lines zero-filled on free/allocated pages *)
  mutable migrated : int; (* pages migrated to a replacement *)
  mutable quarantined : int; (* pages retired to the badblock list *)
  mutable deferred : int; (* pages skipped: file write-mapped *)
  mutable degraded : int; (* files degraded this scrubber's lifetime *)
}

let make_stats () =
  {
    rounds = 0;
    scanned = 0;
    lines_detected = 0;
    repaired = 0;
    scrubbed = 0;
    migrated = 0;
    quarantined = 0;
    deferred = 0;
    degraded = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "rounds %d  pages scanned %d  lines detected %d  repaired %d  scrubbed %d  migrated %d  \
     quarantined %d  deferred %d  files degraded %d"
    s.rounds s.scanned s.lines_detected s.repaired s.scrubbed s.migrated s.quarantined s.deferred
    s.degraded

let line_size = Pmem.line_size
let page_size = Pmem.page_size

(* Group the device-wide poisoned-line list by page. *)
let poisoned_by_page pmem =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (pg, line) ->
      let prev = Option.value (Hashtbl.find_opt tbl pg) ~default:[] in
      Hashtbl.replace tbl pg (line :: prev))
    (Pmem.poisoned_lines pmem);
  Hashtbl.fold (fun pg lines acc -> (pg, List.sort compare lines) :: acc) tbl []
  |> List.sort compare

let zero_fill pmem ~page ~lines =
  let actor = Pmem.kernel_actor in
  let zeros = Bytes.make line_size '\000' in
  List.iter
    (fun line ->
      let addr = (page * page_size) + (line * line_size) in
      Pmem.write pmem ~actor ~addr ~src:zeros;
      Pmem.persist pmem ~addr ~len:line_size)
    lines

(* Rewrite the damaged lines of [page] from the checkpoint copy. *)
let repair_from_checkpoint pmem ~page ~lines ~snapshot =
  let actor = Pmem.kernel_actor in
  List.iter
    (fun line ->
      let off = line * line_size in
      let src = Bytes.sub snapshot off line_size in
      Pmem.write pmem ~actor ~addr:((page * page_size) + off) ~src;
      Pmem.persist pmem ~addr:((page * page_size) + off) ~len:line_size)
    lines

(* The root dentry block occupies the first [dentry_size] bytes of the
   root dentry page. *)
let root_block_lines = Layout.dentry_size / line_size

let scrub_root_page ctl st ~lines =
  let pmem = Controller.pmem ctl in
  let in_block, outside = List.partition (fun l -> l < root_block_lines) lines in
  if outside <> [] then begin
    zero_fill pmem ~page:Layout.root_dentry_page ~lines:outside;
    st.scrubbed <- st.scrubbed + List.length outside
  end;
  if in_block <> [] then begin
    Controller.rebuild_root_dentry ctl;
    st.repaired <- st.repaired + List.length in_block
  end

(* Handle one poisoned page owned by file [ino]. *)
let scrub_file_page ctl st ~ino ~page ~lines =
  let pmem = Controller.pmem ctl in
  match Controller.writer_of ctl ino with
  | Some _ -> st.deferred <- st.deferred + 1
  | None -> (
    match
      (* Repair-source ladder: DRAM checkpoint first (newest verified
         bytes), then the durable snapshot root (survives controller
         restarts; every byte ECC + CRC gated on the way out). *)
      match Controller.checkpoint_page_bytes ctl ~ino ~page with
      | Some s -> Some s
      | None -> Controller.snapshot_page_bytes ctl ~ino ~page
    with
    | Some snapshot ->
      repair_from_checkpoint pmem ~page ~lines ~snapshot;
      st.repaired <- st.repaired + List.length lines
    | None ->
      if Controller.dindex_member ctl ~ino page then begin
        (* A directory-index node with no verified copy is not worth
           patching line by line: the index is a rebuildable accelerator
           (DESIGN.md §4.18), the dentry pages are the source of truth.
           Rebuild the whole tree from the live dentries, then zero-fill
           the damaged lines of the now-free page so the media heals
           before the pool hands it out again.  No migration, no
           degradation, nothing lost. *)
        (match Controller.rebuild_dindex ctl ~ino with
        | Ok _ ->
          zero_fill pmem ~page ~lines;
          st.repaired <- st.repaired + List.length lines
        | Error _ ->
          Controller.quarantine_page ctl ~ino page;
          st.quarantined <- st.quarantined + 1)
      end
      else if page = Layout.root_dentry_page then scrub_root_page ctl st ~lines
      else begin
        (* No good copy anywhere: migrate what survives, retire the
           page, degrade the file. *)
        let detail =
          Printf.sprintf "media: page %d lost %d cacheline(s)" page (List.length lines)
        in
        match Controller.replace_page ctl ~ino ~bad:page ~zero_lines:lines with
        | Ok _fresh ->
          st.migrated <- st.migrated + 1;
          st.quarantined <- st.quarantined + 1;
          st.degraded <- st.degraded + 1;
          Controller.degrade_file ctl ~ino Controller.Degraded_ro ~detail
        | Error _ ->
          Controller.quarantine_page ctl ~ino page;
          st.quarantined <- st.quarantined + 1;
          st.degraded <- st.degraded + 1;
          Controller.degrade_file ctl ~ino Controller.Failed ~detail
      end)

(* One full patrol pass.  Returns the number of poisoned lines seen.
   The scrubber repairs from *verified* checkpoints, so it quiesces the
   verification pipeline first: a queued verification may still have to
   ingest a fresh file or refresh the checkpoint it repairs from. *)
let patrol_once ?(stats = make_stats ()) ctl =
  Controller.drain_verification ctl;
  let pmem = Controller.pmem ctl in
  let bad = Controller.badblocks ctl in
  (* Round-robin across sockets: round r starts its sweep on node
     (r mod nodes), so no socket's poison backlog systematically waits
     behind another's when a round is cut short. *)
  let nodes = max 1 (Controller.shard_count ctl) in
  let start = stats.rounds mod nodes in
  stats.rounds <- stats.rounds + 1;
  let rotated =
    List.stable_sort
      (fun (pa, _) (pb, _) ->
        let key pg = (Controller.node_of_page ctl pg - start + nodes) mod nodes in
        compare (key pa) (key pb))
      (poisoned_by_page pmem)
  in
  List.iter
    (fun (page, lines) ->
      (* Snapshot payload pages look [Free] but hold the only copy of
         the durable root: zero-filling them would destroy it.  Poison
         there is left for root validation to reject (the chain read
         goes through ECC) — there is no older copy to repair from. *)
      if not (List.mem page bad) && not (Controller.snap_pinned_mem ctl page) then begin
        stats.scanned <- stats.scanned + 1;
        stats.lines_detected <- stats.lines_detected + List.length lines;
        match Controller.page_owner_of ctl page with
        | Controller.In_file ino -> scrub_file_page ctl stats ~ino ~page ~lines
        | Controller.Free | Controller.Allocated_to _ ->
          (* nothing ingested lives here; the damaged lines' content was
             already lost, so zero-filling is the honest repair *)
          zero_fill pmem ~page ~lines;
          stats.scrubbed <- stats.scrubbed + List.length lines
      end)
    rotated;
  stats

(* Bounded background patrol: [rounds] passes, [interval_ns] of virtual
   time apart, as a scheduler fiber.  (The simulation runs until every
   fiber finishes, so an unbounded patrol would never let it end —
   callers pick the horizon.) *)
let run_patrol ?stats ctl ~interval_ns ~rounds =
  let st = match stats with Some s -> s | None -> make_stats () in
  Sched.spawn (Controller.sched ctl) (fun () ->
      for _ = 1 to rounds do
        Sched.delay interval_ns;
        ignore (patrol_once ~stats:st ctl)
      done);
  st
