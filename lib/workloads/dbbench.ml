(* LevelDB db_bench over the mini-LevelDB (paper §6.6 / Table 5).

   Default paper setup: one thread, 100-byte values, one million
   objects; object count scaled per DESIGN.md.  Workloads:

     fillseq      sequential-key inserts
     fillsync     random inserts, fsync'd WAL on every write
     fillrandom   random-key inserts
     fill100K     sequential inserts of 100 KiB values
     readrandom   random point lookups (after fillrandom)
     deleterandom random deletes (after fillrandom) *)

module Sched = Trio_sim.Sched
module Rng = Trio_util.Rng
module Fs = Trio_core.Fs_intf

type workload = Fill_seq | Fill_sync | Fill_random | Fill_100k | Read_random | Delete_random

let workload_name = function
  | Fill_seq -> "fillseq"
  | Fill_sync -> "fillsync"
  | Fill_random -> "fillrandom"
  | Fill_100k -> "fill100K"
  | Read_random -> "readrandom"
  | Delete_random -> "deleterandom"

let all = [ Fill_100k; Fill_seq; Fill_sync; Fill_random; Read_random; Delete_random ]

let fail_on what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "db_bench %s: %s" what (Trio_core.Fs_types.errno_to_string e))

let key_of i = Printf.sprintf "%016d" i

type result = { workload : workload; ops : int; ops_per_ms : float }

let pp_result ppf r =
  Fmt.pf ppf "%-12s %8.2f ops/ms (%d ops)" (workload_name r.workload) r.ops_per_ms r.ops

(* Run one workload; inside a fiber.  [n] operations, deterministic.
   [vfs] is the instrumented handle from {!Rig.mount_fs}. *)
let run ~sched vfs workload ~n =
  let fs = Trio_core.Vfs.ops vfs in
  let value_size = match workload with Fill_100k -> 100 * 1024 | _ -> 100 in
  let sync = workload = Fill_sync in
  let dir = "/db_" ^ workload_name workload in
  let options = { Minidb.Db.default_options with sync_writes = sync } in
  let db = fail_on "open" (Minidb.Db.open_db ~options fs ~dir) in
  let rng = Rng.create 4242 in
  let value = String.make value_size 'v' in
  (* read/delete workloads need a populated database *)
  (match workload with
  | Read_random | Delete_random ->
    for i = 0 to n - 1 do
      fail_on "preload" (Minidb.Db.put db ~key:(key_of i) ~value)
    done
  | _ -> ());
  let t0 = Sched.now sched in
  (match workload with
  | Fill_seq | Fill_100k ->
    for i = 0 to n - 1 do
      fail_on "put" (Minidb.Db.put db ~key:(key_of i) ~value)
    done
  | Fill_sync | Fill_random ->
    for _ = 0 to n - 1 do
      fail_on "put" (Minidb.Db.put db ~key:(key_of (Rng.int rng n)) ~value)
    done
  | Read_random ->
    for _ = 0 to n - 1 do
      ignore (fail_on "get" (Minidb.Db.get db ~key:(key_of (Rng.int rng n))))
    done
  | Delete_random ->
    for _ = 0 to n - 1 do
      fail_on "delete" (Minidb.Db.delete db ~key:(key_of (Rng.int rng n)))
    done);
  let elapsed_ns = Sched.now sched -. t0 in
  fail_on "close" (Minidb.Db.close db);
  { workload; ops = n; ops_per_ms = float_of_int n /. (elapsed_ns /. 1e6) }
