(* A complete simulated machine plus mounted file systems, by name.

   The benchmark harness builds one rig per data point: an 8-socket
   "paper machine" (or a single socket), the NVM device, MMU, kernel
   controller, the shared delegation engine, and any of the evaluated
   file systems:

     arckfs | arckfs-nd | kvfs | fpfs          (this paper)
     ext4 | ext4-raid0 | pmfs | nova | winefs | odinfs | splitfs | strata

   Must be constructed inside a simulation fiber. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Libfs = Arckfs.Libfs
module Delegation = Arckfs.Delegation
module Vfs = Trio_core.Vfs

type t = {
  sched : Sched.t;
  topo : Numa.t;
  pmem : Pmem.t;
  mmu : Mmu.t;
  ctl : Controller.t;
  delegation : Delegation.t Lazy.t;
  mutable next_proc : int;
  mutable mounts : Libfs.t list; (* every LibFS mounted through this rig *)
}

let make_machine ?(nodes = 8) ?(cpus_per_node = 28) ?(pages_per_node = 1 lsl 19)
    ?(store_data = false) ?(lease_ns = 100.0e6) () =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes ~cpus_per_node in
  let pmem = Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node ~store_data () in
  (sched, topo, pmem, lease_ns)

(* Build the kernel-side components; call inside a fiber. *)
let init ?(threads_per_node = 12) ?stripe_pages (sched, topo, pmem, lease_ns) =
  let mmu = Mmu.create pmem in
  let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns () in
  {
    sched;
    topo;
    pmem;
    mmu;
    ctl;
    delegation = lazy (Delegation.create ~sched ~pmem ~threads_per_node ?stripe_pages ());
    next_proc = 100;
    mounts = [];
  }

let fresh_proc t =
  t.next_proc <- t.next_proc + 1;
  t.next_proc

let mount_arckfs ?(delegated = true) ?(uid = 1000) ?group ?qos_share ?retry_deadline_ns
    ?unmap_after_write ?ring t =
  let delegation = if delegated then Some (Lazy.force t.delegation) else None in
  let libfs =
    Libfs.mount ~ctl:t.ctl ~proc:(fresh_proc t) ~cred:{ Trio_core.Fs_types.uid; gid = uid }
      ?group ?qos_share ?retry_deadline_ns ?delegation ?unmap_after_write ?ring ()
  in
  t.mounts <- libfs :: t.mounts;
  libfs

(* Clean teardown: hand every mapping of every mounted process back to
   the kernel (each handoff verifies inline).  Without this a rig that
   finishes its workload still holds write mappings and allocation
   caches, and a subsequent page-accounting pass would report them as
   phantom leaks. *)
let unmount_all t =
  List.iter Libfs.unmap_everything t.mounts;
  t.mounts <- []

(* Mount a file system by its evaluation name, without the VFS layer. *)
let mount_raw ?(store_data = true) t name =
  match name with
  | "arckfs" -> Libfs.ops (mount_arckfs ~delegated:true t)
  | "arckfs-nd" -> Libfs.ops (mount_arckfs ~delegated:false t)
  | "fpfs" -> Fpfs.ops (Fpfs.mount (mount_arckfs ~delegated:true t))
  | "ext4" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data ext4)
  | "ext4-raid0" ->
    Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data ext4_raid0)
  | "pmfs" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data pmfs)
  | "nova" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data nova)
  | "winefs" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data winefs)
  | "odinfs" ->
    Trio_baselines.Models.(
      mount ~sched:t.sched ~pmem:t.pmem ~store_data (odinfs ~delegation:(Lazy.force t.delegation)))
  | "splitfs" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data splitfs)
  | "strata" -> Trio_baselines.Models.(mount ~sched:t.sched ~pmem:t.pmem ~store_data strata)
  | other -> invalid_arg ("Rig.mount_fs: unknown file system " ^ other)

(* Mount a file system by its evaluation name.  The returned handle is
   the instrumented VFS dispatch layer: every operation of every file
   system flows through {!Trio_core.Vfs}, so callers get per-op counts,
   errno counters and latency histograms for free (use [Vfs.ops] for the
   plain {!Trio_core.Fs_intf.t} record). *)
let mount_fs ?store_data ?trace_capacity t name =
  let vfs = Vfs.wrap ~sched:t.sched ?trace_capacity (mount_raw ?store_data t name) in
  (* Verification work done by the controller's pipeline shows up in the
     same per-op observability as the workload that triggered it. *)
  Vfs.attach_verify_trace vfs t.ctl;
  (* Likewise the ring drain plane's batch counters. *)
  Vfs.attach_ring_trace vfs t.ctl;
  vfs

(* Run [f rig] to completion inside a fresh simulation. *)
let run ?nodes ?cpus_per_node ?pages_per_node ?store_data ?lease_ns ?threads_per_node
    ?stripe_pages f =
  let ((sched, _, _, _) as machine) =
    make_machine ?nodes ?cpus_per_node ?pages_per_node ?store_data ?lease_ns ()
  in
  let result = ref None in
  Sched.spawn sched (fun () ->
      let rig = init ?threads_per_node ?stripe_pages machine in
      result := Some (f rig);
      unmount_all rig);
  ignore (Sched.run sched);
  match !result with
  | Some v -> v
  | None -> failwith "Rig.run: simulation did not complete"
