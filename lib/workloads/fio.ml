(* fio-style data-path microbenchmark (paper §6.2, §6.3 / Figs. 5-6).

   Each thread owns a private file and issues fixed-size reads or
   writes at sequentially advancing offsets (wrapping), matching the
   paper's configuration "each thread accesses a 1 GiB private file"
   — scaled per DESIGN.md to fit the container. *)

module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
open Trio_core.Fs_types

type kind = Read | Write

type config = {
  threads : int;
  block_size : int;
  file_size : int;
  kind : kind;
}

let kind_to_string = function Read -> "read" | Write -> "write"

let setup fs ~threads ~file_size =
  let fds = Array.make threads (-1) in
  for tid = 0 to threads - 1 do
    let path = Printf.sprintf "/fio%d" tid in
    (match fs.Fs.create path 0o644 with
    | Ok fd -> fds.(tid) <- fd
    | Error e -> failwith ("fio setup: " ^ errno_to_string e));
    match fs.Fs.truncate path file_size with
    | Ok () -> ()
    | Error e -> failwith ("fio setup truncate: " ^ errno_to_string e)
  done;
  fds

(* Run one configuration; must be called inside a fiber.  Offsets are
   uniformly random block-aligned positions (fio randread/randwrite):
   sequential-in-lockstep threads would convoy onto one NUMA stripe.
   [vfs] is the instrumented handle from {!Rig.mount_fs}; per-op latency
   breakdowns accumulate on it across the run. *)
let run (rig : Rig.t) vfs config ?(max_ops = 20_000) ?(max_ns = 20.0e6) () =
  let fs = Trio_core.Vfs.ops vfs in
  let fds = setup fs ~threads:config.threads ~file_size:config.file_size in
  let rngs = Array.init config.threads (fun tid -> Trio_util.Rng.create (97 * (tid + 1))) in
  let blocks = max 1 (config.file_size / config.block_size) in
  let buf = Bytes.make config.block_size 'w' in
  let body ~tid =
    let off = Trio_util.Rng.int rngs.(tid) blocks * config.block_size in
    let result =
      match config.kind with
      | Read -> fs.Fs.pread fds.(tid) buf off
      | Write -> fs.Fs.pwrite fds.(tid) buf off
    in
    match result with
    | Ok n -> n
    | Error e -> failwith ("fio op: " ^ errno_to_string e)
  in
  Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:config.threads ~max_ops ~max_ns
    ~body ()
