(* YCSB-style multi-tenant key-value driver over the mini-LevelDB.

   The QoS evaluation workload (DESIGN.md §4.17): several *tenants*,
   each a trust group of one or more LibFS processes running its own
   Minidb instance over its own Vfs-instrumented mount, execute the
   standard YCSB mixes concurrently on one rig:

     A  50% read / 50% update         B  95% read /  5% update
     C  100% read                     D  95% read-latest / 5% insert
     E  95% short scan / 5% insert    F  50% read / 50% read-modify-write

   Keys are Zipf-distributed (the YCSB default, theta 0.9) so tenants
   contend on hot keys the way real multi-tenant stores do.  Scans are
   modelled as runs of consecutive-key point gets (the mini-LevelDB has
   no iterator).

   Two kinds of misbehaving neighbours compose with the honest tenants:

   - a *kill-prone* tenant runs its operation loop inside
     {!Sched.killable}, so an armed injector SIGKILLs it mid-operation
     (possibly inside a QoS throttle park — the watchdog must reclaim
     it);
   - *byzantine* tenants are injected by the caller as [chaos] fibers
     (built from [lib/attacks]; this library cannot depend on it), each
     looping until every honest tenant has finished.

   Per-tenant latency is recorded two ways: a driver-level histogram of
   whole-DB-op latencies (the p50/p99 in {!tenant_result} — exact
   per-tenant percentiles, shared across the tenant's processes) and
   the per-process {!Vfs} handles (per-FS-op breakdowns, kept in the
   result for callers that want them). *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Stats = Trio_sim.Stats
module Rng = Trio_util.Rng
module Vfs = Trio_core.Vfs
module Libfs = Arckfs.Libfs
open Trio_core.Fs_types

type workload = A | B | C | D | E | F

let workload_name = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | E -> "E" | F -> "F"
let all = [ A; B; C; D; E; F ]

type spec = {
  s_name : string;
  s_workload : workload;
  s_share : float option; (* QoS share; None = unenforced tenant *)
  s_procs : int; (* LibFS processes in this tenant's trust group *)
  s_kill_after : int option; (* arm the SIGKILL injector (at most one tenant) *)
  s_ops : int; (* measured operations per process *)
}

let spec ?(procs = 1) ?share ?kill_after ?(ops = 200) name workload =
  { s_name = name; s_workload = workload; s_share = share; s_procs = procs;
    s_kill_after = kill_after; s_ops = ops }

type tenant_result = {
  y_name : string;
  y_workload : workload;
  y_group : int; (* the tenant's trust group (first process id) *)
  y_share : float option;
  y_procs : int;
  y_ops_done : int;
  y_errors : int; (* failed measured operations, ETIMEDOUT included *)
  y_etimedout : int; (* of [y_errors], terminal retry-budget expiries *)
  y_killed : bool;
  y_p50 : float; (* whole-DB-op latency percentiles, virtual ns *)
  y_p99 : float;
  y_vfs : Vfs.t list; (* per-process FS-op instrumentation *)
}

let pp_tenant_result ppf r =
  Fmt.pf ppf "%-10s YCSB-%s %s%d proc(s) %6d ops  p50=%9.0fns p99=%9.0fns  err=%d%s%s"
    r.y_name (workload_name r.y_workload)
    (match r.y_share with Some s -> Fmt.str "share=%.3f " s | None -> "")
    r.y_procs r.y_ops_done r.y_p50 r.y_p99 r.y_errors
    (if r.y_etimedout > 0 then Fmt.str " (etimedout=%d)" r.y_etimedout else "")
    (if r.y_killed then " KILLED" else "")

let key_of i = Printf.sprintf "%016d" i

(* One measured operation.  [inserted] is the per-process high-water
   key for insert-bearing mixes (D/E).  Scans count as one op. *)
let run_op db wl rng ~records ~inserted ~value ~scan_max =
  let zipf () = Rng.zipf rng ~n:records ~theta:0.9 in
  let read k = Result.map (fun _ -> ()) (Minidb.Db.get db ~key:(key_of k)) in
  let update k = Minidb.Db.put db ~key:(key_of k) ~value in
  let insert () =
    incr inserted;
    Minidb.Db.put db ~key:(key_of !inserted) ~value
  in
  let pct = Rng.int rng 100 in
  match wl with
  | A -> if pct < 50 then read (zipf ()) else update (zipf ())
  | B -> if pct < 95 then read (zipf ()) else update (zipf ())
  | C -> read (zipf ())
  | D -> if pct < 95 then read (max 0 (!inserted - zipf ())) else insert ()
  | E ->
    if pct < 95 then begin
      let start = zipf () and len = 1 + Rng.int rng scan_max in
      let rec scan i acc =
        if i >= len then acc
        else
          match read ((start + i) mod max 1 !inserted) with
          | Ok () -> scan (i + 1) acc
          | Error _ as e -> e
      in
      scan 0 (Ok ())
    end
    else insert ()
  | F ->
    if pct < 50 then read (zipf ())
    else
      let k = zipf () in
      let ( let* ) = Result.bind in
      let* _ = Minidb.Db.get db ~key:(key_of k) in
      update k

(* Run the tenant set to completion; must be called inside a fiber.

   Every process preloads its database, then all workers start together
   (a warm barrier, like {!Runner.run}); the kill injector — if any
   tenant asked for one — is armed only once the measured phase begins,
   so the kill lands inside live multi-tenant traffic.  [chaos] fibers
   receive a [stop] predicate that turns true when every tenant worker
   has finished (or died). *)
let run rig ?(records = 128) ?(value_size = 64) ?(ring_depth = 0) ?(scan_max = 8)
    ?(chaos = []) specs =
  let sched = rig.Rig.sched in
  let workers = List.fold_left (fun acc s -> acc + s.s_procs) 0 specs in
  let warm = Sync.Waitgroup.create workers in
  let gate = Sync.Ivar.create () in
  let wg = Sync.Waitgroup.create workers in
  let live = ref workers in
  let stop () = !live = 0 in
  let kill_after = List.find_map (fun s -> s.s_kill_after) specs in
  (* Mount every tenant's processes up front (in the caller's fiber) so
     trust-group membership is fixed before any worker runs. *)
  let tenants =
    List.map
      (fun s ->
        let ring = if ring_depth > 0 then Some ring_depth else None in
        let first =
          Rig.mount_arckfs ~delegated:false ?qos_share:s.s_share ?ring rig
        in
        let group = Libfs.proc_of first in
        let rest =
          List.init (s.s_procs - 1) (fun _ ->
              Rig.mount_arckfs ~delegated:false ~group ?qos_share:s.s_share ?ring rig)
        in
        (s, group, first :: rest))
      specs
  in
  let results =
    List.map
      (fun (s, group, mounts) ->
        let hist = Stats.Hist.create () in
        let ops_done = ref 0 and errors = ref 0 and etimedout = ref 0 in
        let killed = ref false in
        let vfss =
          List.mapi
            (fun i libfs ->
              let vfs = Vfs.wrap ~sched (Libfs.ops libfs) in
              let ops = Vfs.ops vfs in
              let dir = Printf.sprintf "/y_%s_%d" s.s_name i in
              let rng = Rng.create (0x9c5b + (group * 131) + i) in
              let value = String.make value_size 'y' in
              Sched.spawn sched (fun () ->
                  let work () =
                    match Minidb.Db.open_db ops ~dir with
                    | Error e ->
                      failwith
                        (Printf.sprintf "ycsb %s: open_db: %s" s.s_name (errno_to_string e))
                    | Ok db ->
                      let inserted = ref (records - 1) in
                      for k = 0 to records - 1 do
                        match Minidb.Db.put db ~key:(key_of k) ~value with
                        | Ok () -> ()
                        | Error e ->
                          failwith
                            (Printf.sprintf "ycsb %s: preload: %s" s.s_name
                               (errno_to_string e))
                      done;
                      Sync.Waitgroup.done_ warm;
                      Sync.Ivar.read gate;
                      for _ = 1 to s.s_ops do
                        let t0 = Sched.now sched in
                        (match run_op db s.s_workload rng ~records ~inserted ~value ~scan_max
                         with
                        | Ok () -> ()
                        | Error ETIMEDOUT ->
                          incr etimedout;
                          incr errors
                        | Error _ -> incr errors);
                        Stats.Hist.observe hist (Sched.now sched -. t0);
                        incr ops_done
                      done;
                      ignore (Minidb.Db.close db)
                  in
                  (try
                     if s.s_kill_after <> None then Sched.killable work
                     else work ()
                   with Sched.Killed ->
                     killed := true;
                     (* the barrier must not deadlock on a dead worker *)
                     if not (Sync.Ivar.is_full gate) then Sync.Waitgroup.done_ warm);
                  decr live;
                  Sync.Waitgroup.done_ wg);
              vfs)
            mounts
        in
        (s, group, vfss, hist, ops_done, errors, etimedout, killed))
      tenants
  in
  List.iter (fun body -> Sched.spawn sched (fun () -> body ~stop)) chaos;
  Sync.Waitgroup.wait warm;
  (match kill_after with Some n -> Sched.arm_kill sched ~after:n | None -> ());
  Sync.Ivar.fill gate ();
  Sync.Waitgroup.wait wg;
  List.map
    (fun (s, group, vfss, hist, ops_done, errors, etimedout, killed) ->
      {
        y_name = s.s_name;
        y_workload = s.s_workload;
        y_group = group;
        y_share = s.s_share;
        y_procs = s.s_procs;
        y_ops_done = !ops_done;
        y_errors = !errors;
        y_etimedout = !etimedout;
        y_killed = !killed;
        y_p50 = Stats.Hist.percentile hist 50.0;
        y_p99 = Stats.Hist.percentile hist 99.0;
        y_vfs = vfss;
      })
    results
