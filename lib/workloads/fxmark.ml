(* FxMark metadata microbenchmarks (paper §6.4 / Fig. 7, Table 2).

   Naming (from FxMark): operation / sharing level.
     D=data W=write R=read; T=truncate, P=path, D(2nd)=directory,
     C=create, U=unlink, R(2nd)=rename;
     L=low (private), M=medium (shared dir), H=high (same file).

   Implemented benchmarks (Table 2):
     DWTL   reduce the size of a private file by 4 KiB per op
     MRPL/M/H   open a (private / random-shared / same) file in
                five-depth directories
     MRDL/M     enumerate a (private / shared) directory
     MWCL/M     create an empty file in a (private / shared) directory
     MWUL/M     unlink an empty file in a (private / shared) directory
     MWRL       rename a private file within a private directory
     MWRM       move a private file to a shared directory *)

module Fs = Trio_core.Fs_intf
open Trio_core.Fs_types

type bench = {
  name : string;
  description : string;
  (* setup returns the per-op body *)
  prepare : Rig.t -> Fs.t -> threads:int -> (tid:int -> int);
}

let fail_on what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "fxmark %s: %s" what (errno_to_string e))

let descriptions =
  [
    ("DWTL", "Reduces the size of a private file by 4K.");
    ("MRPL", "Open a private file in five-depth dirs.");
    ("MRPM", "Open a random file in five-depth dirs.");
    ("MRPH", "Open the same file in five-depth dirs.");
    ("MRDL", "Enumerate files of a private directory.");
    ("MRDM", "Enumerate files of a shared directory.");
    ("MWCL", "Create an empty file in a private dir.");
    ("MWCM", "Create an empty file in a shared dir.");
    ("MWUL", "Unlink an empty file in a private dir.");
    ("MWUM", "Unlink an empty file in a shared dir.");
    ("MWRL", "Rename a private file in a private dir.");
    ("MWRM", "Move a private file to a shared dir.");
  ]

(* five-deep directory path, optionally per thread *)
let deep_dir fs tag =
  let path = Printf.sprintf "/d1_%s/d2/d3/d4/d5" tag in
  fail_on "mkdir_p" (Fs.mkdir_p fs path);
  path

let dwtl =
  {
    name = "DWTL";
    description = List.assoc "DWTL" descriptions;
    prepare =
      (fun _rig fs ~threads ->
        let initial = 16 * 1024 * 1024 in
        let paths =
          Array.init threads (fun tid ->
              let path = Printf.sprintf "/dwtl%d" tid in
              ignore (fail_on "create" (fs.Fs.create path 0o644));
              fail_on "truncate" (fs.Fs.truncate path initial);
              path)
        in
        let sizes = Array.make threads initial in
        fun ~tid ->
          let next = sizes.(tid) - 4096 in
          let next = if next <= 0 then initial else next in
          sizes.(tid) <- next;
          fail_on "truncate" (fs.Fs.truncate paths.(tid) next);
          0);
  }

let mrp which =
  {
    name = (match which with `L -> "MRPL" | `M -> "MRPM" | `H -> "MRPH");
    description =
      List.assoc (match which with `L -> "MRPL" | `M -> "MRPM" | `H -> "MRPH") descriptions;
    prepare =
      (fun rig fs ~threads ->
        let rngs = Array.init threads (fun tid -> Trio_util.Rng.create (1000 + tid)) in
        match which with
        | `L ->
          let paths =
            Array.init threads (fun tid ->
                let dir = deep_dir fs (Printf.sprintf "t%d" tid) in
                let p = dir ^ "/file" in
                ignore (fail_on "create" (fs.Fs.create p 0o644));
                p)
          in
          fun ~tid ->
            let fd = fail_on "open" (fs.Fs.open_ paths.(tid) [ O_RDONLY ]) in
            fail_on "close" (fs.Fs.close fd);
            0
        | `M ->
          let dir = deep_dir fs "shared" in
          let n = 64 in
          let paths =
            Array.init n (fun i ->
                let p = Printf.sprintf "%s/f%d" dir i in
                ignore (fail_on "create" (fs.Fs.create p 0o644));
                p)
          in
          ignore rig;
          fun ~tid ->
            let p = paths.(Trio_util.Rng.int rngs.(tid) n) in
            let fd = fail_on "open" (fs.Fs.open_ p [ O_RDONLY ]) in
            fail_on "close" (fs.Fs.close fd);
            0
        | `H ->
          let dir = deep_dir fs "hot" in
          let p = dir ^ "/hot_file" in
          ignore (fail_on "create" (fs.Fs.create p 0o644));
          fun ~tid ->
            ignore tid;
            let fd = fail_on "open" (fs.Fs.open_ p [ O_RDONLY ]) in
            fail_on "close" (fs.Fs.close fd);
            0);
  }

let mrd which =
  {
    name = (match which with `L -> "MRDL" | `M -> "MRDM");
    description = List.assoc (match which with `L -> "MRDL" | `M -> "MRDM") descriptions;
    prepare =
      (fun _rig fs ~threads ->
        let fill dir =
          fail_on "mkdir_p" (Fs.mkdir_p fs dir);
          for i = 0 to 31 do
            ignore (fail_on "create" (fs.Fs.create (Printf.sprintf "%s/f%d" dir i) 0o644))
          done;
          dir
        in
        match which with
        | `L ->
          let dirs = Array.init threads (fun tid -> fill (Printf.sprintf "/mrdl%d" tid)) in
          fun ~tid ->
            ignore (fail_on "readdir" (fs.Fs.readdir dirs.(tid)));
            0
        | `M ->
          let dir = fill "/mrdm_shared" in
          fun ~tid ->
            ignore tid;
            ignore (fail_on "readdir" (fs.Fs.readdir dir));
            0);
  }

let mwc which =
  {
    name = (match which with `L -> "MWCL" | `M -> "MWCM");
    description = List.assoc (match which with `L -> "MWCL" | `M -> "MWCM") descriptions;
    prepare =
      (fun _rig fs ~threads ->
        let counters = Array.make threads 0 in
        match which with
        | `L ->
          let dirs =
            Array.init threads (fun tid ->
                let d = Printf.sprintf "/mwcl%d" tid in
                fail_on "mkdir" (fs.Fs.mkdir d 0o755);
                d)
          in
          fun ~tid ->
            let n = counters.(tid) in
            counters.(tid) <- n + 1;
            ignore (fail_on "create" (fs.Fs.create (Printf.sprintf "%s/f%d" dirs.(tid) n) 0o644));
            0
        | `M ->
          fail_on "mkdir" (fs.Fs.mkdir "/mwcm_shared" 0o755);
          fun ~tid ->
            let n = counters.(tid) in
            counters.(tid) <- n + 1;
            ignore
              (fail_on "create"
                 (fs.Fs.create (Printf.sprintf "/mwcm_shared/t%d_f%d" tid n) 0o644));
            0);
  }

let mwu which =
  {
    name = (match which with `L -> "MWUL" | `M -> "MWUM");
    description = List.assoc (match which with `L -> "MWUL" | `M -> "MWUM") descriptions;
    prepare =
      (fun rig fs ~threads ->
        (* pre-create pools; each op unlinks one file.  When a pool is
           exhausted the thread stops (Runner treats Exit as early stop). *)
        let pool_size = 512 in
        let counters = Array.make threads 0 in
        let dir tid =
          match which with `L -> Printf.sprintf "/mwul%d" tid | `M -> "/mwum_shared"
        in
        (match which with
        | `L ->
          for tid = 0 to threads - 1 do
            fail_on "mkdir" (fs.Fs.mkdir (dir tid) 0o755)
          done
        | `M -> fail_on "mkdir" (fs.Fs.mkdir (dir 0) 0o755));
        (* Each pool is created from its unlinking thread's own CPU, like
           FxMark's per-thread setup phase: the pool pages then live on
           that thread's local socket instead of all on node 0. *)
        let wg = Trio_sim.Sync.Waitgroup.create threads in
        for tid = 0 to threads - 1 do
          let cpu = Trio_nvm.Numa.cpu_of_thread rig.Rig.topo tid in
          Trio_sim.Sched.spawn ~cpu rig.Rig.sched (fun () ->
              for i = 0 to pool_size - 1 do
                ignore
                  (fail_on "create"
                     (fs.Fs.create (Printf.sprintf "%s/t%d_f%d" (dir tid) tid i) 0o644))
              done;
              Trio_sim.Sync.Waitgroup.done_ wg)
        done;
        Trio_sim.Sync.Waitgroup.wait wg;
        fun ~tid ->
          let n = counters.(tid) in
          if n >= pool_size then raise Exit;
          counters.(tid) <- n + 1;
          fail_on "unlink" (fs.Fs.unlink (Printf.sprintf "%s/t%d_f%d" (dir tid) tid n));
          0);
  }

let mwrl =
  {
    name = "MWRL";
    description = List.assoc "MWRL" descriptions;
    prepare =
      (fun _rig fs ~threads ->
        let dirs =
          Array.init threads (fun tid ->
              let d = Printf.sprintf "/mwrl%d" tid in
              fail_on "mkdir" (fs.Fs.mkdir d 0o755);
              ignore (fail_on "create" (fs.Fs.create (d ^ "/a") 0o644));
              d)
        in
        let flip = Array.make threads false in
        fun ~tid ->
          let d = dirs.(tid) in
          let src, dst = if flip.(tid) then (d ^ "/b", d ^ "/a") else (d ^ "/a", d ^ "/b") in
          flip.(tid) <- not flip.(tid);
          fail_on "rename" (fs.Fs.rename src dst);
          0);
  }

let mwrm =
  {
    name = "MWRM";
    description = List.assoc "MWRM" descriptions;
    prepare =
      (fun _rig fs ~threads ->
        fail_on "mkdir shared" (fs.Fs.mkdir "/mwrm_shared" 0o755);
        let dirs =
          Array.init threads (fun tid ->
              let d = Printf.sprintf "/mwrm%d" tid in
              fail_on "mkdir" (fs.Fs.mkdir d 0o755);
              ignore (fail_on "create" (fs.Fs.create (Printf.sprintf "%s/f" d) 0o644));
              d)
        in
        let in_private = Array.make threads true in
        fun ~tid ->
          let priv = Printf.sprintf "%s/f" dirs.(tid) in
          let shared = Printf.sprintf "/mwrm_shared/t%d_f" tid in
          let src, dst = if in_private.(tid) then (priv, shared) else (shared, priv) in
          in_private.(tid) <- not in_private.(tid);
          fail_on "rename" (fs.Fs.rename src dst);
          0);
  }

let all =
  [
    dwtl; mrp `L; mrp `M; mrp `H; mrd `L; mrd `M; mwc `L; mwc `M; mwu `L; mwu `M; mwrl; mwrm;
  ]

let find name = List.find (fun b -> b.name = name) all

(* Run one benchmark at one thread count; inside a fiber.  [vfs] is the
   instrumented handle from {!Rig.mount_fs}. *)
let run (rig : Rig.t) vfs bench ~threads ?(max_ops = 20_000) ?(max_ns = 20.0e6) () =
  let body = bench.prepare rig (Trio_core.Vfs.ops vfs) ~threads in
  Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads ~max_ops ~max_ns ~body ()
