(* Filebench-style macrobenchmarks (paper §6.6 / Fig. 9, Table 4).

   Four personalities over per-thread private filesets (the paper
   assigns a private fileset per thread to bypass Filebench's global
   fileset lock), plus the two customization workloads of Fig. 10:
   a key-value Webproxy for KVFS and a depth-20 Varmail for FPFS.

   File counts and sizes are scaled from Table 4 to fit the container;
   EXPERIMENTS.md records the scaling. *)

module Fs = Trio_core.Fs_intf
module Rng = Trio_util.Rng
open Trio_core.Fs_types

type personality = {
  p_name : string;
  p_nfiles : int; (* files per thread *)
  p_avg_size : int;
  p_io_read : int; (* read request size *)
  p_io_write : int; (* write/append request size *)
  p_dir_depth : int;
  (* operation mix per loop iteration *)
  p_mix : [ `Create_write | `Read_whole | `Append | `Delete_create | `Stat | `Fsync_write ] list;
}

(* Table 4, scaled 10x-100x down in file count / size. *)
let fileserver =
  {
    p_name = "fileserver";
    p_nfiles = 64;
    p_avg_size = 128 * 1024;
    p_io_read = 1024 * 1024;
    p_io_write = 64 * 1024;
    p_dir_depth = 2;
    p_mix = [ `Create_write; `Append; `Read_whole; `Delete_create; `Stat; `Append ];
  }

let webserver =
  {
    p_name = "webserver";
    p_nfiles = 128;
    p_avg_size = 64 * 1024;
    p_io_read = 1024 * 1024;
    p_io_write = 8 * 1024;
    p_dir_depth = 2;
    p_mix =
      [ `Read_whole; `Read_whole; `Read_whole; `Read_whole; `Read_whole;
        `Read_whole; `Read_whole; `Read_whole; `Read_whole; `Read_whole; `Append ];
  }

let webproxy =
  {
    p_name = "webproxy";
    p_nfiles = 256;
    p_avg_size = 16 * 1024;
    p_io_read = 16 * 1024;
    p_io_write = 16 * 1024;
    p_dir_depth = 1;
    p_mix = [ `Delete_create; `Read_whole; `Read_whole; `Read_whole; `Read_whole; `Read_whole ];
  }

let varmail =
  {
    p_name = "varmail";
    p_nfiles = 256;
    p_avg_size = 16 * 1024;
    p_io_read = 16 * 1024;
    p_io_write = 16 * 1024;
    p_dir_depth = 1;
    p_mix = [ `Delete_create; `Fsync_write; `Read_whole; `Fsync_write; `Read_whole ];
  }

(* Fig. 10: Varmail with a directory depth of 20 to stress path
   resolution (FPFS' target workload). *)
let varmail_deep = { varmail with p_name = "varmail-deep"; p_dir_depth = 20 }

let personalities = [ fileserver; webserver; webproxy; varmail; varmail_deep ]

let find name = List.find (fun p -> p.p_name = name) personalities

let fail_on what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "filebench %s: %s" what (errno_to_string e))

type thread_state = {
  files : string array;
  rng : Rng.t;
  mutable op_cursor : int;
  write_buf : Bytes.t;
  read_buf : Bytes.t;
}

let dir_of p tid =
  let segments = List.init p.p_dir_depth (fun i -> Printf.sprintf "d%d" i) in
  Printf.sprintf "/%s_t%d/%s" p.p_name tid (String.concat "/" segments)

let prepare p fs ~threads =
  Array.init threads (fun tid ->
      let dir = dir_of p tid in
      fail_on "mkdir_p" (Fs.mkdir_p fs dir);
      let files =
        Array.init p.p_nfiles (fun i -> Printf.sprintf "%s/f%05d" dir i)
      in
      let rng = Rng.create (7 * (tid + 1)) in
      Array.iter
        (fun path ->
          let fd = fail_on "create" (fs.Fs.create path 0o644) in
          fail_on "truncate" (fs.Fs.truncate path p.p_avg_size);
          fail_on "close" (fs.Fs.close fd))
        files;
      {
        files;
        rng;
        op_cursor = 0;
        write_buf = Bytes.make p.p_io_write 'v';
        read_buf = Bytes.make p.p_io_read 'r';
      })

let one_op p fs st =
  let op = List.nth p.p_mix (st.op_cursor mod List.length p.p_mix) in
  st.op_cursor <- st.op_cursor + 1;
  let pick () = st.files.(Rng.int st.rng (Array.length st.files)) in
  match op with
  | `Create_write ->
    (* whole-file rewrite *)
    let path = pick () in
    let fd = fail_on "open" (fs.Fs.open_ path [ O_RDWR; O_TRUNC ]) in
    let written = ref 0 in
    while !written < p.p_avg_size do
      let n = fail_on "append" (fs.Fs.append fd st.write_buf) in
      written := !written + n
    done;
    fail_on "close" (fs.Fs.close fd);
    !written
  | `Read_whole ->
    let path = pick () in
    let fd = fail_on "open" (fs.Fs.open_ path [ O_RDONLY ]) in
    let total = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let n = fail_on "pread" (fs.Fs.pread fd st.read_buf !total) in
      total := !total + n;
      if n < Bytes.length st.read_buf then continue_ := false
    done;
    fail_on "close" (fs.Fs.close fd);
    !total
  | `Append ->
    let path = pick () in
    let fd = fail_on "open" (fs.Fs.open_ path [ O_RDWR ]) in
    let n = fail_on "append" (fs.Fs.append fd st.write_buf) in
    fail_on "close" (fs.Fs.close fd);
    n
  | `Delete_create ->
    let path = pick () in
    fail_on "unlink" (fs.Fs.unlink path);
    let fd = fail_on "create" (fs.Fs.create path 0o644) in
    let n = fail_on "append" (fs.Fs.append fd st.write_buf) in
    fail_on "close" (fs.Fs.close fd);
    n
  | `Stat ->
    ignore (fail_on "stat" (fs.Fs.stat (pick ())));
    0
  | `Fsync_write ->
    let path = pick () in
    let fd = fail_on "open" (fs.Fs.open_ path [ O_RDWR ]) in
    let n = fail_on "append" (fs.Fs.append fd st.write_buf) in
    fail_on "fsync" (fs.Fs.fsync fd);
    fail_on "close" (fs.Fs.close fd);
    n

(* Run a personality; inside a fiber.  [vfs] is the instrumented handle
   from {!Rig.mount_fs}. *)
let run (rig : Rig.t) vfs p ~threads ?(max_ops = 20_000) ?(max_ns = 30.0e6) () =
  let fs = Trio_core.Vfs.ops vfs in
  let states = prepare p fs ~threads in
  let body ~tid = one_op p fs states.(tid) in
  Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads ~max_ops ~max_ns ~body ()

(* --------------------------------------------------------------- *)
(* Fig. 10: key-value Webproxy running on the KVFS get/set interface. *)

let run_kv_webproxy (rig : Rig.t) (kv : Kvfs.t) ~threads ?(max_ops = 20_000)
    ?(max_ns = 30.0e6) () =
  let p = webproxy in
  let states =
    Array.init threads (fun tid ->
        let rng = Rng.create (11 * (tid + 1)) in
        let keys = Array.init p.p_nfiles (fun i -> Printf.sprintf "t%d_obj%05d" tid i) in
        let value = Bytes.make p.p_avg_size 'v' in
        let read_buf = Bytes.create Kvfs.max_file_size in
        Array.iter (fun k -> fail_on "set" (Kvfs.set kv k value)) keys;
        (rng, keys, value, read_buf))
  in
  let cursors = Array.make threads 0 in
  let body ~tid =
    let rng, keys, value, read_buf = states.(tid) in
    let c = cursors.(tid) in
    cursors.(tid) <- c + 1;
    let key = keys.(Rng.int rng (Array.length keys)) in
    if c mod 6 = 0 then begin
      (* replace the object: delete + set in the POSIX version *)
      fail_on "set" (Kvfs.set kv key value);
      Bytes.length value
    end
    else fail_on "get" (Kvfs.get_into kv key read_buf)
  in
  Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads ~max_ops ~max_ns ~body ()
