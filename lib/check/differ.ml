(* Differential cross-FS fuzzing.

   The same op script runs through every evaluated file system via the
   instrumented VFS layer, and the observable outcome — per-op success /
   errno, then the final namespace, sizes and data — is diffed against
   the in-memory model (which all nine implementations are supposed to
   agree with, per the conformance suite).  Any disagreement is a
   semantics divergence: either this reproduction's baseline model or
   ArckFS itself mishandles the sequence.

   Divergences are shrunk the same way crash counterexamples are: drop
   ops and shrink sizes while the same file system still diverges. *)

module Rig = Trio_workloads.Rig
module Vfs = Trio_core.Vfs

(* The nine evaluated file systems: ArckFS plus the eight baselines. *)
let default_fses =
  [ "arckfs"; "ext4"; "ext4-raid0"; "pmfs"; "nova"; "winefs"; "odinfs"; "splitfs"; "strata" ]

type divergence = {
  d_fs : string;
  d_ops : Script.op list;
  d_detail : string;
}

let pp_divergence ppf d =
  Fmt.pf ppf "fs:       %s@." d.d_fs;
  Fmt.pf ppf "script:   %s@." (Script.to_string d.d_ops);
  Fmt.pf ppf "diff:     %s@." d.d_detail;
  Fmt.pf ppf "replay:   trioctl crashcheck --diff --script %S@." (Script.to_string d.d_ops)

(* Run one script through one file system in a fresh world; [Ok ()] when
   every op and the final durable state agree with the model. *)
let run_one fs_name ops =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:16384 ~store_data:true (fun rig ->
      let vfs = Rig.mount_fs rig fs_name in
      let fs = Vfs.ops vfs in
      let model = Script.model_create () in
      match Script.apply_all fs model ops with
      | Error _ as e -> e
      | Ok () -> Script.check_model fs model)

let shrink_divergence ?(budget = 64) d =
  let budget = ref budget in
  let rec go d =
    if !budget <= 0 then d
    else
      let next =
        List.find_map
          (fun candidate ->
            if !budget <= 0 || candidate = [] then None
            else begin
              decr budget;
              match run_one d.d_fs candidate with
              | Ok () -> None
              | Error detail -> Some { d with d_ops = candidate; d_detail = detail }
            end)
          (Script.shrink_candidates d.d_ops)
      in
      match next with Some d' -> go d' | None -> d
  in
  go d

(* Diff one script across [fses]; every diverging file system is
   reported (shrunk when [shrink]). *)
let diff ?(fses = default_fses) ?(shrink = true) ops =
  List.filter_map
    (fun fs_name ->
      match run_one fs_name ops with
      | Ok () -> None
      | Error detail ->
        let d = { d_fs = fs_name; d_ops = ops; d_detail = detail } in
        Some (if shrink then shrink_divergence d else d))
    fses

(* Seeded campaign: [rounds] random scripts of length [len] through all
   file systems; first divergence wins. *)
let campaign ?(fses = default_fses) ?(rounds = 5) ?(len = 12) ~seed () =
  let rng = Trio_util.Rng.create seed in
  let rec go round =
    if round >= rounds then None
    else
      let ops = Script.generate rng ~len in
      match diff ~fses ops with [] -> go (round + 1) | ds -> Some (ops, ds)
  in
  go 0
