(* Systematic crash-state exploration (the correctness backbone behind
   the paper's §4.4/§5 claims).

   Instead of sampling one random crash per run, the engine enumerates
   the crash-state space of an op script deterministically:

   1. RECORD — run the script once on a recording device
      ({!Trio_nvm.Pmem.set_recording}), yielding the ordered
      store/persist event log and the number of post-mount LibFS stores
      N.  Crash index i (0 <= i <= N) names the state "the process died
      at its (i+1)-th store" (i = N: the script completed, then power
      failed).

   2. ENUMERATE — one incremental {!Pmem.Replay} pass over the log
      computes the unflushed-line set at every crash index.  At each
      index, the subsets of lines that may survive the power failure
      are enumerated exhaustively when the set is small
      (2^k <= 2^exhaustive_lines) and sampled from a seeded RNG
      otherwise.

   3. CHECK — every (crash index, surviving set) state gets a fresh
      world: re-run the script (deterministic, so the pre-crash device
      is reconstructed exactly), kill it with the store injector, apply
      {!Pmem.crash_select} with the chosen survivors, run controller
      crash recovery + LibFS remount, and compare against the model:
      completed operations must be fully durable, the interrupted
      operation atomic (namespace is exactly the pre- or post-state).

   A failing state is reported as a minimal counterexample: the script
   is greedily shrunk (drop ops, shrink sizes) while the exploration
   still finds a violation, and printed in a form [trioctl crashcheck]
   replays. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Mmu = Trio_core.Mmu
module Controller = Trio_core.Controller
module Libfs = Arckfs.Libfs
module Rng = Trio_util.Rng

type config = {
  exhaustive_lines : int;
      (* enumerate all 2^k surviving subsets when the dirty set has <= k lines *)
  samples_per_point : int; (* sampled subsets above the threshold *)
  max_states : int; (* overall crash-state budget *)
  seed : int; (* drives subset sampling only; exploration is otherwise deterministic *)
  check_replay : bool; (* cross-check replayed images against the live device *)
  shrink : bool; (* minimize failing scripts before reporting *)
  shrink_budget : int; (* candidate explorations spent shrinking *)
}

let default_config =
  {
    exhaustive_lines = 6;
    samples_per_point = 6;
    max_states = 4096;
    seed = 1;
    check_replay = true;
    shrink = true;
    shrink_budget = 64;
  }

type counterexample = {
  cx_ops : Script.op list;
  cx_crash_index : int; (* stores completed before the process died; -1 = no crash involved *)
  cx_survivors : (int * int) list; (* (page, line) lines that survived the power failure *)
  cx_detail : string;
}

type outcome = {
  crash_points : int; (* crash indices explored (N + 1 when complete) *)
  states : int; (* (index, surviving subset) states checked *)
  exhaustive : bool; (* every crash point got its full subset enumeration *)
  counterexample : counterexample option;
}

let pp_survivors ppf survivors =
  match survivors with
  | [] -> Fmt.pf ppf "none"
  | l ->
    Fmt.pf ppf "%s" (String.concat "," (List.map (fun (p, ln) -> Printf.sprintf "%d:%d" p ln) l))

let pp_counterexample ppf cx =
  Fmt.pf ppf "script:   %s@." (Script.to_string cx.cx_ops);
  if cx.cx_crash_index >= 0 then begin
    Fmt.pf ppf "crash:    after %d LibFS stores@." cx.cx_crash_index;
    Fmt.pf ppf "survived: %a@." pp_survivors cx.cx_survivors
  end
  else Fmt.pf ppf "crash:    none (diverged without a crash)@.";
  Fmt.pf ppf "violation: %s@." cx.cx_detail;
  if cx.cx_crash_index >= 0 then
    Fmt.pf ppf "replay:   trioctl crashcheck --script %S --at %d --survive %a@."
      (Script.to_string cx.cx_ops) cx.cx_crash_index pp_survivors cx.cx_survivors

let parse_survivors s =
  if String.trim s = "" || String.trim s = "none" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | chunk :: rest -> (
        match String.split_on_char ':' (String.trim chunk) with
        | [ p; l ] -> (
          match (int_of_string_opt p, int_of_string_opt l) with
          | Some p, Some l -> go ((p, l) :: acc) rest
          | _ -> Error (Printf.sprintf "bad surviving line %S" chunk))
        | _ -> Error (Printf.sprintf "bad surviving line %S (expected page:line)" chunk))
    in
    go [] (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Worlds *)

(* The explorer's fixed geometry: small enough that thousands of fresh
   worlds are cheap, big enough for any generated script.  Every phase
   (record, replay fidelity, state checks) must use the same geometry —
   addresses are part of the reconstructed state. *)
let make_world () =
  let sched = Sched.create () in
  let topo = Numa.create ~nodes:2 ~cpus_per_node:4 in
  let pmem =
    Pmem.create ~sched ~topo ~profile:Perf.optane ~pages_per_node:8192 ~store_data:true ()
  in
  let mmu = Mmu.create pmem in
  (sched, pmem, mmu)

let cred = { Trio_core.Fs_types.uid = 1000; gid = 1000 }

(* Run [f] inside a fiber of a fresh world and hand back its result. *)
let in_world f =
  let sched, pmem, mmu = make_world () in
  let out = ref None in
  Sched.spawn sched (fun () -> out := Some (f ~sched ~pmem ~mmu));
  ignore (Sched.run sched);
  match !out with
  | Some v -> v
  | None -> failwith "Explore: simulation did not run to completion"

(* ------------------------------------------------------------------ *)
(* Phase 1: record *)

type recording = {
  rec_events : Pmem.event list;
  rec_mount_stores : int; (* LibFS stores spent mounting (before the script) *)
  rec_n_stores : int; (* LibFS stores issued by the script itself *)
  rec_divergence : string option; (* fs/model disagreement with no crash at all *)
}

let record ops =
  in_world (fun ~sched ~pmem ~mmu ->
      Pmem.set_recording pmem true;
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs in
      let mount_stores = Pmem.recorded_user_stores pmem in
      let model = Script.model_create () in
      let divergence =
        match Script.apply_all fs model ops with Ok () -> None | Error d -> Some d
      in
      Pmem.set_recording pmem false;
      {
        rec_events = Pmem.recorded_events pmem;
        rec_mount_stores = mount_stores;
        rec_n_stores = Pmem.recorded_user_stores pmem - mount_stores;
        rec_divergence = divergence;
      })

(* One incremental replay pass: the unflushed-line set at every crash
   index.  The state at index i is the log prefix strictly before the
   (mount_stores + i + 1)-th LibFS store — everything the process
   managed to issue before dying there. *)
let dirty_sets_of recording =
  let n = recording.rec_n_stores in
  let sets = Array.make (n + 1) [] in
  let img = Pmem.Replay.create () in
  let ucount = ref 0 in
  List.iter
    (fun ev ->
      (match ev with
      | Pmem.Ev_store { actor; _ } when actor <> Pmem.kernel_actor ->
        let post = !ucount - recording.rec_mount_stores in
        if post >= 0 && post <= n then sets.(post) <- Pmem.Replay.dirty img;
        incr ucount
      | _ -> ());
      Pmem.Replay.apply img ev)
    recording.rec_events;
  sets.(n) <- Pmem.Replay.dirty img;
  sets

(* Image at one crash index (fresh replay of the prefix). *)
let image_at recording ~crash_index =
  let img = Pmem.Replay.create () in
  let ucount = ref 0 in
  (try
     List.iter
       (fun ev ->
         (match ev with
         | Pmem.Ev_store { actor; _ } when actor <> Pmem.kernel_actor ->
           if !ucount - recording.rec_mount_stores >= crash_index then raise Exit;
           incr ucount
         | _ -> ());
         Pmem.Replay.apply img ev)
       recording.rec_events
   with Exit -> ());
  img

(* ------------------------------------------------------------------ *)
(* Phase 3: per-state check *)

exception Diverged of string

(* Re-run the script in a fresh world, dying after [crash_index] LibFS
   stores, then crash with exactly [survivors] surviving lines, recover,
   remount, and check the model properties.  [on_precrash] sees the dead
   world just before the power failure (replay fidelity checks hook in
   here). *)
let check_state ?(on_precrash = fun ~pmem:_ -> Ok ()) ops ~crash_index ~survivors =
  in_world (fun ~sched ~pmem ~mmu ->
      let ( let* ) = Result.bind in
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs in
      let model = Script.model_create () in
      let pre = ref (Script.model_snapshot model) in
      let cur = ref (-1) in
      Pmem.fail_after_writes pmem crash_index;
      let interrupted =
        try
          List.iteri
            (fun i op ->
              cur := i;
              pre := Script.model_snapshot model;
              match Script.apply fs model i op with
              | Ok () -> ()
              | Error d -> raise (Diverged d))
            ops;
          Ok None
        with
        | Pmem.Crash_point -> Ok (Some !cur)
        | Diverged d -> Error d
      in
      Pmem.fail_after_writes pmem (-1);
      let* interrupted = interrupted in
      (* power failure: the chosen subset of unflushed lines survives *)
      let survive_set = Hashtbl.create 16 in
      List.iter (fun k -> Hashtbl.replace survive_set k ()) survivors;
      let* () = on_precrash ~pmem in
      Pmem.crash_select pmem ~survives:(fun ~page ~line -> Hashtbl.mem survive_set (page, line));
      Controller.crash_recover ctl;
      let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred () in
      let fs2 = Libfs.ops libfs2 in
      match interrupted with
      | None ->
        (* every operation completed: full durability *)
        Script.check_model fs2 model
      | Some j ->
        (* the op in flight must be atomic, everything else durable *)
        let op = List.nth ops j in
        let* visible = Script.visible_names fs2 in
        let pre_names = Script.names_of_model !pre in
        let post_names = Script.names_of_model model in
        let* () =
          if visible = pre_names || visible = post_names then Ok ()
          else
            Error
              (Printf.sprintf "op %d (%s): namespace [%s] is neither pre [%s] nor post [%s]" j
                 (Script.show_op op) (String.concat " " visible)
                 (String.concat " " pre_names) (String.concat " " post_names))
        in
        (* files the interrupted op did not touch keep their exact
           content; data inside its own target may legitimately be
           partial (data ops are synchronous, not atomic) *)
        let touched = Script.touched_paths op in
        let pre_model = !pre in
        let* () =
          List.fold_left
            (fun acc (path, expected) ->
              let* () = acc in
              if List.mem path touched then Ok ()
              else
                match Trio_core.Fs_intf.read_file fs2 path with
                | Ok got when String.equal got expected -> Ok ()
                | Ok got ->
                  Error
                    (Printf.sprintf "op %d (%s): untouched %s corrupted (%d vs %d bytes)" j
                       (Script.show_op op) path (String.length got) (String.length expected))
                | Error e ->
                  Error
                    (Printf.sprintf "op %d (%s): untouched %s lost (%s)" j (Script.show_op op)
                       path
                       (Trio_core.Fs_types.errno_to_string e)))
            (Ok ()) (Script.model_files pre_model)
        in
        (* and whatever is visible must at least be readable *)
        List.fold_left
          (fun acc path ->
            let* () = acc in
            if Hashtbl.mem pre_model.Script.files path then
              match Trio_core.Fs_intf.read_file fs2 path with
              | Ok _ -> Ok ()
              | Error e ->
                Error
                  (Printf.sprintf "%s unreadable after crash: %s" path
                     (Trio_core.Fs_types.errno_to_string e))
            else Ok ())
          (Ok ()) visible)

(* Replay fidelity: the device the re-run reconstructed must be
   bit-identical — content and unflushed-line set — to the image
   replayed from the recorded event log. *)
let replay_fidelity recording ops ~crash_index =
  let img = image_at recording ~crash_index in
  let check ~pmem =
    let img_dirty = Pmem.Replay.dirty img in
    let dev_dirty = Pmem.dirty_line_list pmem in
    if img_dirty <> dev_dirty then
      Error
        (Printf.sprintf "replay divergence at crash index %d: %d replayed dirty lines vs %d on device"
           crash_index (List.length img_dirty) (List.length dev_dirty))
    else
      List.fold_left
        (fun acc pg ->
          Result.bind acc (fun () ->
              if Bytes.equal (Pmem.Replay.page img pg) (Pmem.peek_page pmem pg) then Ok ()
              else Error (Printf.sprintf "replay divergence at crash index %d: page %d bytes differ" crash_index pg)))
        (Ok ()) (Pmem.Replay.pages img)
  in
  (* survivors = all: the pre-crash comparison is the point; the
     post-crash world is checked like any complete run *)
  check_state ~on_precrash:check ops ~crash_index ~survivors:(Pmem.Replay.dirty img)

(* ------------------------------------------------------------------ *)
(* Subset enumeration *)

let subsets_of cfg ~crash_index dirty =
  let k = List.length dirty in
  let arr = Array.of_list dirty in
  if k <= cfg.exhaustive_lines then
    (* all 2^k subsets, mask order: [] first, everything-survives last *)
    (true, List.init (1 lsl k) (fun mask ->
         List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)))
  else begin
    let rng = Rng.create (cfg.seed + (crash_index * 2654435761)) in
    let sample () = List.filter (fun _ -> Rng.bool rng) dirty in
    let sampled = List.init (max 0 (cfg.samples_per_point - 2)) (fun _ -> sample ()) in
    (false, ([] :: dirty :: sampled))
  end

(* ------------------------------------------------------------------ *)
(* The engine *)

let explore_once cfg ops =
  let recording = record ops in
  match recording.rec_divergence with
  | Some d ->
    {
      crash_points = 0;
      states = 0;
      exhaustive = false;
      counterexample =
        Some { cx_ops = ops; cx_crash_index = -1; cx_survivors = []; cx_detail = d };
    }
  | None ->
    let n = recording.rec_n_stores in
    let dirty_sets = dirty_sets_of recording in
    let states = ref 0 in
    let exhaustive = ref true in
    let failure = ref None in
    (* replay-fidelity pass on a bounded, evenly spread index sample *)
    if cfg.check_replay then begin
      let sample =
        if n <= 8 then List.init (n + 1) Fun.id
        else List.sort_uniq compare (List.init 9 (fun i -> i * n / 8))
      in
      List.iter
        (fun i ->
          if !failure = None then
            match replay_fidelity recording ops ~crash_index:i with
            | Ok () -> ()
            | Error d ->
              failure :=
                Some
                  {
                    cx_ops = ops;
                    cx_crash_index = i;
                    cx_survivors = dirty_sets.(i);
                    cx_detail = d;
                  })
        sample
    end;
    let i = ref 0 in
    while !failure = None && !i <= n && !states < cfg.max_states do
      let idx = !i in
      let was_exhaustive, subsets = subsets_of cfg ~crash_index:idx dirty_sets.(idx) in
      if not was_exhaustive then exhaustive := false;
      List.iter
        (fun survivors ->
          if !failure = None && !states < cfg.max_states then begin
            incr states;
            match check_state ops ~crash_index:idx ~survivors with
            | Ok () -> ()
            | Error d ->
              failure :=
                Some
                  { cx_ops = ops; cx_crash_index = idx; cx_survivors = survivors; cx_detail = d }
          end)
        subsets;
      incr i
    done;
    if !i <= n && !failure = None then exhaustive := false;
    {
      crash_points = !i;
      states = !states;
      exhaustive = !exhaustive;
      counterexample = !failure;
    }

(* Greedy minimization: keep applying the first shrink candidate that
   still fails, until none does (or the budget runs out). *)
let shrink_counterexample cfg cx =
  let budget = ref cfg.shrink_budget in
  let cfg' = { cfg with shrink = false; check_replay = false } in
  let rec go cx =
    if !budget <= 0 then cx
    else
      let next =
        List.find_map
          (fun candidate ->
            if !budget <= 0 || candidate = [] then None
            else begin
              decr budget;
              (explore_once cfg' candidate).counterexample
            end)
          (Script.shrink_candidates cx.cx_ops)
      in
      match next with Some cx' -> go cx' | None -> cx
  in
  go cx

let explore ?(config = default_config) ops =
  let outcome = explore_once config ops in
  match outcome.counterexample with
  | Some cx when config.shrink ->
    { outcome with counterexample = Some (shrink_counterexample config cx) }
  | _ -> outcome

(* ------------------------------------------------------------------ *)
(* Crash x media-fault composition (DESIGN.md §4.11)

   The atomicity/durability model above assumes the medium is honest:
   what was persisted reads back.  With the media-fault plane armed,
   data genuinely disappears — stuck stores latch wrong, latent poison
   survives the power failure — so the checked property weakens from
   "the namespace matches the model" to *graceful degradation*: every
   operation after recovery returns [Ok] or a clean errno (never an
   uncaught exception), the controller's patrol scrubber runs to
   completion, and the namespace stays enumerable afterwards.

   Replay fidelity cannot compose with fault injection (poisoning
   scrambles content outside the event log), so this path never
   cross-checks replayed images; everything else is replayable from
   [fault_seed] alone. *)

module Fs = Trio_core.Fs_intf
module Scrub = Trio_core.Scrub

type fault_config = {
  fault_seed : int; (* drives injection draws, survivors and poison placement *)
  transient_read_p : float; (* per-access soft read-error probability *)
  stuck_store_p : float; (* per-store latch-failure probability *)
  fault_crash_points : int; (* crash indices sampled per script *)
  poison_lines : int; (* latent poison torn into in-flight lines at the crash *)
  scrub_rounds : int; (* patrol passes between the two degradation sweeps *)
}

let default_fault_config =
  {
    fault_seed = 1;
    transient_read_p = 0.01;
    stuck_store_p = 0.02;
    fault_crash_points = 8;
    poison_lines = 2;
    scrub_rounds = 2;
  }

type fault_report = {
  fr_crash_points : int;
  fr_states : int;
  fr_transient : int; (* soft read errors drawn across all states *)
  fr_stuck : int; (* stores that latched wrong across all states *)
  fr_poison_injected : int; (* latent poison lines injected at crashes *)
  fr_repaired : int; (* scrubber: lines restored from checkpoints *)
  fr_migrated : int; (* scrubber: pages migrated off damaged media *)
  fr_quarantined : int; (* scrubber: pages retired to the badblock list *)
  fr_failure : counterexample option;
}

let pp_fault_report ppf r =
  Fmt.pf ppf
    "crash points %d  states %d  transient %d  stuck %d  poison-injected %d@.scrub: repaired %d  migrated %d  quarantined %d@.%s"
    r.fr_crash_points r.fr_states r.fr_transient r.fr_stuck r.fr_poison_injected r.fr_repaired
    r.fr_migrated r.fr_quarantined
    (match r.fr_failure with
    | None -> "graceful degradation held in every state"
    | Some cx -> Fmt.str "FAILED:@.%a" pp_counterexample cx)

(* One crash+fault state: run the script with the injector armed, die
   after [crash_index] stores, power-fail with a seeded random surviving
   subset, tear latent poison into lines that were in flight, then
   recover, remount, scrub, and sweep for graceful degradation.  Model
   divergence is expected here (faults change outcomes); the model
   only supplies the universe of paths to probe. *)
let check_faulted_state cfg ?(poison_candidates = []) ops ~crash_index ~state_seed =
  in_world (fun ~sched ~pmem ~mmu ->
      let rng = Rng.create state_seed in
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs in
      let model = Script.model_create () in
      (* arm only after a clean mount: one seeded draw stream per state *)
      Pmem.set_fault_injection pmem ~seed:state_seed ~transient_read_p:cfg.transient_read_p
        ~stuck_store_p:cfg.stuck_store_p ();
      Pmem.fail_after_writes pmem crash_index;
      let scrub_stats = Scrub.make_stats () in
      let injected = ref 0 in
      let result =
        try
          (try
             List.iteri (fun i op -> ignore (Script.apply fs model i op : (unit, string) result)) ops
           with Pmem.Crash_point -> ());
          Pmem.fail_after_writes pmem (-1);
          (* power failure: seeded random survivors among the unflushed
             lines, plus latent poison torn into some in-flight lines *)
          let dirty = Pmem.dirty_line_list pmem in
          let keep = Hashtbl.create 16 in
          List.iter (fun k -> if Rng.bool rng then Hashtbl.replace keep k ()) dirty;
          Pmem.crash_select pmem ~survives:(fun ~page ~line -> Hashtbl.mem keep (page, line));
          (* latent poison: media degrades anywhere in live data, not just
             in the lines that were mid-flight — targets are drawn from
             every page the script had stored to by this crash point
             (line -1 = pick one of the page's lines), plus the in-flight
             lines themselves *)
          let arr =
            Array.of_list
              (List.rev_append dirty (List.map (fun pg -> (pg, -1)) poison_candidates))
          in
          if Array.length arr > 0 then
            for _ = 1 to cfg.poison_lines do
              let page, line = arr.(Rng.int rng (Array.length arr)) in
              let line = if line < 0 then Rng.int rng Pmem.lines_per_page else line in
              Pmem.poison_line pmem ~page ~line;
              incr injected
            done;
          Controller.crash_recover ctl;
          let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred () in
          let fs2 = Libfs.ops libfs2 in
          let probe () =
            (match fs2.Fs.readdir "/" with Ok _ | Error _ -> ());
            Hashtbl.iter
              (fun path _ ->
                (match Fs.read_file fs2 path with Ok _ | Error _ -> ());
                (* writes must degrade to EROFS/EIO, never throw *)
                match fs2.Fs.open_ path [ Trio_core.Fs_types.O_RDWR ] with
                | Ok fd ->
                  (match fs2.Fs.pwrite fd (Bytes.of_string "x") 0 with Ok _ | Error _ -> ());
                  (match fs2.Fs.close fd with Ok () | Error _ -> ())
                | Error _ -> ())
              model.Script.files
          in
          probe ();
          for _ = 1 to cfg.scrub_rounds do
            ignore (Scrub.patrol_once ~stats:scrub_stats ctl : Scrub.stats)
          done;
          probe ();
          Ok ()
        with exn ->
          Error
            (Printf.sprintf "uncaught exception (crash index %d, seed %d): %s" crash_index
               state_seed (Printexc.to_string exn))
      in
      (result, Pmem.fault_stats pmem, !injected, scrub_stats))

let explore_faults ?(config = default_fault_config) ops =
  let recording = record ops in
  let n = recording.rec_n_stores in
  let indices =
    if n + 1 <= config.fault_crash_points then List.init (n + 1) Fun.id
    else
      List.sort_uniq compare
        (List.init config.fault_crash_points (fun i ->
             i * n / max 1 (config.fault_crash_points - 1)))
  in
  let report =
    ref
      {
        fr_crash_points = List.length indices;
        fr_states = 0;
        fr_transient = 0;
        fr_stuck = 0;
        fr_poison_injected = 0;
        fr_repaired = 0;
        fr_migrated = 0;
        fr_quarantined = 0;
        fr_failure = None;
      }
  in
  List.iter
    (fun idx ->
      if (!report).fr_failure = None then begin
        let state_seed = config.fault_seed + (idx * 2654435761) + 1 in
        let poison_candidates = Pmem.Replay.pages (image_at recording ~crash_index:idx) in
        let result, fstats, injected, scrub =
          check_faulted_state config ~poison_candidates ops ~crash_index:idx ~state_seed
        in
        let r = !report in
        report :=
          {
            r with
            fr_states = r.fr_states + 1;
            fr_transient = r.fr_transient + fstats.Pmem.transient_faults;
            fr_stuck = r.fr_stuck + fstats.Pmem.stuck_stores;
            fr_poison_injected = r.fr_poison_injected + injected;
            fr_repaired = r.fr_repaired + scrub.Scrub.repaired;
            fr_migrated = r.fr_migrated + scrub.Scrub.migrated;
            fr_quarantined = r.fr_quarantined + scrub.Scrub.quarantined;
            fr_failure =
              (match result with
              | Ok () -> None
              | Error d ->
                Some { cx_ops = ops; cx_crash_index = idx; cx_survivors = []; cx_detail = d });
          }
      end)
    indices;
  !report

(* ------------------------------------------------------------------ *)
(* Process-death exploration (DESIGN.md §4.12)

   Power failure (above) loses unflushed lines but kills *everyone*;
   process death loses *nothing in NVM* but kills one LibFS, leaving its
   torn intermediate state live and its allocation cache orphaned.  The
   checked property is the paper's §4 containment claim: after the
   watchdog escalates the dead/wedged process — lease expiry,
   force-revoke, mark-unverified, abnormal teardown — a second process
   must be able to access every file with clean errnos (the verifier
   gate repairs from checkpoints or degrades, it never throws), the
   orphan-page GC must reclaim everything the dead process held, and
   the page-accounting invariant free + reachable + cached + badblocks
   = device pages must hold.

   Kill points are Sched delay boundaries inside the victim's killable
   scope — every simulated NVM store and yield, but never inside a
   controller syscall (those are shielded, like a kernel that finishes
   or never starts a syscall for a dying task).  A recording pass counts
   the points the script crosses; kill and hang states are sampled
   evenly across that range. *)

type proc_config = {
  pd_seed : int; (* reserved for sampling; exploration is deterministic *)
  pd_kill_points : int; (* kill-injection states sampled per script *)
  pd_hang_points : int; (* wedged-mode states sampled per script *)
  pd_timeout_ns : float; (* watchdog heartbeat timeout (also the lease) *)
  pd_ring : int option;
      (* mount the victim with a submission ring of this depth: kill
         points then include the ring submit path, and escalation must
         also tear the ring down and reap its in-flight entries *)
}

let default_proc_config =
  { pd_seed = 1; pd_kill_points = 12; pd_hang_points = 3; pd_timeout_ns = 1.0e6; pd_ring = None }

type proc_report = {
  pr_points : int; (* kill points the script crosses end to end *)
  pr_states : int;
  pr_killed : int;
  pr_hung : int;
  pr_escalated : int; (* watchdog teardowns across all states *)
  pr_unverified : int; (* files pushed through the verifier gate *)
  pr_reclaimed : int; (* orphan pages swept by the GC *)
  pr_leaked : int; (* pages still dead-owned after GC (must be 0) *)
  pr_invariant_failures : int;
  pr_failure : counterexample option;
}

let pp_proc_report ppf r =
  Fmt.pf ppf
    "kill points %d  states %d (killed %d, hung %d)  escalated %d  unverified %d@.gc: reclaimed \
     %d  leaked %d  invariant failures %d@.%s"
    r.pr_points r.pr_states r.pr_killed r.pr_hung r.pr_escalated r.pr_unverified r.pr_reclaimed
    r.pr_leaked r.pr_invariant_failures
    (match r.pr_failure with
    | None -> "graceful degradation held in every state"
    | Some cx -> Fmt.str "FAILED:@.%a" pp_counterexample cx)

(* Horizon for one state: long enough for the script to run (or die) and
   for every lease and the heartbeat timeout to expire afterwards. *)
let death_horizon_ns = 10.0e6

(* Recording pass: how many kill points does the script cross? *)
let count_kill_points cfg ops =
  in_world (fun ~sched ~pmem ~mmu ->
      let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns:cfg.pd_timeout_ns () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred ?ring:cfg.pd_ring () in
      let fs = Libfs.ops libfs in
      let model = Script.model_create () in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              List.iteri
                (fun i op -> ignore (Script.apply fs model i op : (unit, string) result))
                ops));
      Sched.arm_count sched;
      Sched.delay death_horizon_ns;
      Sched.disarm sched;
      Sched.kill_points_crossed sched)

(* One process-death state: run the victim in a killable fiber, fire the
   injector at the sampled point, let the watchdog escalate, GC, then
   probe everything from a second process. *)
let check_death_state cfg ops ~mode =
  in_world (fun ~sched ~pmem ~mmu ->
      let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns:cfg.pd_timeout_ns () in
      let libfs1 = Libfs.mount ~ctl ~proc:1 ~cred ?ring:cfg.pd_ring () in
      let fs = Libfs.ops libfs1 in
      let model = Script.model_create () in
      let finished = ref false in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              List.iteri
                (fun i op -> ignore (Script.apply fs model i op : (unit, string) result))
                ops);
          finished := true);
      (match mode with
      | `Kill i -> Sched.arm_kill sched ~after:i
      | `Hang i -> Sched.arm_hang sched ~after:i);
      Sched.delay death_horizon_ns;
      Sched.disarm sched;
      let wd = Controller.make_watchdog_report () in
      let detail =
        try
          (* Escalation: the victim holds its mount resources (journal,
             allocation cache) whether it died, wedged, or finished and
             went silent — the watchdog must always reclaim it. *)
          let escalated = Controller.watchdog_once ~report:wd ctl ~timeout_ns:cfg.pd_timeout_ns in
          if not (List.mem 1 escalated) then
            Error
              (Printf.sprintf "watchdog did not escalate the victim (escalated: [%s])"
                 (String.concat ";" (List.map string_of_int escalated)))
          else begin
            let gc1 = Controller.gc_once ctl in
            if (not gc1.Controller.gc_invariant_ok) || gc1.Controller.gc_leaked > 0 then
              Error
                (Fmt.str "page accounting broken after teardown GC: %a" Controller.pp_gc_report
                   gc1)
            else begin
              (* Second process: every model path and every visible name
                 must answer with Ok or a clean errno — the verifier
                 gate and degradation ladder, never an exception. *)
              let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred () in
              let fs2 = Libfs.ops libfs2 in
              (match fs2.Fs.readdir "/" with Ok _ | Error _ -> ());
              Hashtbl.iter
                (fun path _ ->
                  (match Fs.read_file fs2 path with Ok _ | Error _ -> ());
                  match fs2.Fs.open_ path [ Trio_core.Fs_types.O_RDWR ] with
                  | Ok fd ->
                    (match fs2.Fs.pwrite fd (Bytes.of_string "x") 0 with Ok _ | Error _ -> ());
                    (match fs2.Fs.close fd with Ok () | Error _ -> ())
                  | Error _ -> ())
                model.Script.files;
              (match Script.visible_names fs2 with
              | Ok names ->
                List.iter
                  (fun path -> match Fs.read_file fs2 path with Ok _ | Error _ -> ())
                  names
              | Error _ -> ());
              (* Drain whatever the probe did not happen to map (e.g. a
                 directory whose path vanished in a rollback), then the
                 books must balance with nothing left to collect. *)
              ignore (Controller.drain_unverified ctl : int);
              let gc2 = Controller.gc_once ctl in
              if (not gc2.Controller.gc_invariant_ok) || gc2.Controller.gc_leaked > 0 then
                Error
                  (Fmt.str "page accounting broken after probe GC: %a" Controller.pp_gc_report
                     gc2)
              else begin
                ignore (Controller.unmap_all ctl ~proc:2);
                Ok (gc1, gc2)
              end
            end
          end
        with exn -> Error (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
      in
      (detail, wd, !finished))

let explore_proc_death ?(config = default_proc_config) ops =
  let points = count_kill_points config ops in
  let sample count =
    if points <= 0 || count <= 0 then []
    else if points <= count then List.init points Fun.id
    else if count = 1 then [ points / 2 ]
    else List.sort_uniq compare (List.init count (fun i -> i * (points - 1) / (count - 1)))
  in
  let states =
    List.map (fun i -> `Kill i) (sample config.pd_kill_points)
    @ List.map (fun i -> `Hang i) (sample config.pd_hang_points)
  in
  let report =
    ref
      {
        pr_points = points;
        pr_states = 0;
        pr_killed = 0;
        pr_hung = 0;
        pr_escalated = 0;
        pr_unverified = 0;
        pr_reclaimed = 0;
        pr_leaked = 0;
        pr_invariant_failures = 0;
        pr_failure = None;
      }
  in
  List.iter
    (fun mode ->
      if (!report).pr_failure = None then begin
        let idx = match mode with `Kill i | `Hang i -> i in
        let detail, wd, _finished =
          try check_death_state config ops ~mode
          with exn ->
            ( Error (Printf.sprintf "uncaught exception escaped the state: %s" (Printexc.to_string exn)),
              Controller.make_watchdog_report (),
              false )
        in
        let r = !report in
        let killed, hung = match mode with `Kill _ -> (1, 0) | `Hang _ -> (0, 1) in
        report :=
          (match detail with
          | Ok (gc1, gc2) ->
            {
              r with
              pr_states = r.pr_states + 1;
              pr_killed = r.pr_killed + killed;
              pr_hung = r.pr_hung + hung;
              pr_escalated = r.pr_escalated + List.length wd.Controller.wd_escalated;
              pr_unverified = r.pr_unverified + wd.Controller.wd_unverified;
              pr_reclaimed =
                r.pr_reclaimed + gc1.Controller.gc_reclaimed_pages
                + gc2.Controller.gc_reclaimed_pages;
              pr_leaked = r.pr_leaked + gc1.Controller.gc_leaked + gc2.Controller.gc_leaked;
              pr_invariant_failures = r.pr_invariant_failures;
            }
          | Error d ->
            {
              r with
              pr_states = r.pr_states + 1;
              pr_killed = r.pr_killed + killed;
              pr_hung = r.pr_hung + hung;
              pr_invariant_failures =
                (r.pr_invariant_failures
                +
                if
                  String.length d >= 15
                  && String.sub d 0 15 = "page accounting"
                then 1
                else 0);
              pr_failure =
                Some { cx_ops = ops; cx_crash_index = idx; cx_survivors = []; cx_detail = d };
            })
      end)
    states;
  !report

(* ------------------------------------------------------------------ *)
(* Crash during snapshot commit (DESIGN.md §4.16)

   Property: root publication is transactional.  A kill injected at any
   Delay boundary of [Controller.snapshot_take] must leave the device
   with at least one fully valid root — the superseded root before the
   commit store persists, the new one after — never zero.  And crash
   recovery from every such state must come up in a configuration the
   differential machinery certifies: recovery mounts a root (or walks
   the tree when told to expect damage), every file record passes a
   Full-mode verification sweep, and the page accounting balances with
   the [snap_pinned] term included.

   The [sc_torn] variant publishes with the deliberately sabotaged
   ordering ({!Controller.set_snap_torn_commit}: root record first,
   payload second, into the live slot) and the exploration must CATCH
   it — find at least one kill point with zero valid roots.  That is
   the self-test that this campaign can see the bug class at all. *)

type snap_config = {
  sc_kill_points : int; (* kill-injection states sampled per script *)
  sc_torn : bool; (* run against the sabotaged commit ordering *)
}

let default_snap_config = { sc_kill_points = 24; sc_torn = false }

type snap_report = {
  sn_points : int; (* kill points publication crosses end to end *)
  sn_states : int;
  sn_root_old : int; (* states that recovered on the superseded root *)
  sn_root_new : int; (* states that recovered on the new root *)
  sn_fsck : int; (* states that fell back to the fsck walk *)
  sn_zero_roots : int; (* states with NO valid root (torn mode's catch) *)
  sn_failure : counterexample option;
}

let pp_snap_report ppf r =
  Fmt.pf ppf
    "kill points %d  states %d  recovered: old root %d, new root %d, fsck %d  zero-root states \
     %d@.%s"
    r.sn_points r.sn_states r.sn_root_old r.sn_root_new r.sn_fsck r.sn_zero_roots
    (match r.sn_failure with
    | None -> "every crash state kept a valid, certifiable root"
    | Some cx -> Fmt.str "FAILED:@.%a" pp_counterexample cx)

(* One state: populate the FS with the script, then kill publication at
   the sampled point ([`Count] instead records how many points there
   are).  Returns what recovery found. *)
let check_snap_state cfg ops ~mode =
  in_world (fun ~sched ~pmem ~mmu ->
      Controller.set_snap_torn_commit cfg.sc_torn;
      Fun.protect ~finally:(fun () -> Controller.set_snap_torn_commit false) @@ fun () ->
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs in
      let model = Script.model_create () in
      List.iteri (fun i op -> ignore (Script.apply fs model i op : (unit, string) result)) ops;
      Controller.unmap_all ctl ~proc:1;
      (* One complete snapshot over the script's files, then the one
         under attack: the superseded root is substantial, not the
         trivial epoch-1 root over an empty tree. *)
      ignore (Controller.snapshot_take ctl : (int, Trio_core.Fs_types.errno) result);
      let pre_epoch = Controller.snapshot_epoch ctl in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () ->
              ignore (Controller.snapshot_take ctl : (int, Trio_core.Fs_types.errno) result)));
      (match mode with
      | `Count -> Sched.arm_count sched
      | `Kill i -> Sched.arm_kill sched ~after:i);
      Sched.delay death_horizon_ns;
      Sched.disarm sched;
      match mode with
      | `Count -> `Points (Sched.kill_points_crossed sched)
      | `Kill _ -> (
        let valid =
          List.filter_map (fun slot -> Controller.snapshot_root_status pmem ~slot) [ 0; 1 ]
        in
        if valid = [] then `Zero_roots
        else begin
          (* The crash proper: DRAM dies with the old controller; a new
             one recovers from NVM alone. *)
          let mmu' = Mmu.create pmem in
          match Controller.recover ~sched ~pmem ~mmu:mmu' () with
          | Error e -> `Failure (Printf.sprintf "recovery refused both ladders: %s" e)
          | Ok (ctl', how) -> (
            let checked, bad = Controller.audit_all ctl' in
            let gc = Controller.gc_once ctl' in
            if bad > 0 then
              `Failure
                (Printf.sprintf "recovered state not certified: %d of %d file(s) fail Full \
                                 verification" bad checked)
            else if (not gc.Controller.gc_invariant_ok) || gc.Controller.gc_leaked > 0 then
              `Failure (Fmt.str "page accounting broken after recovery: %a" Controller.pp_gc_report gc)
            else
              match how with
              | Controller.Fsck_fallback -> `Fsck
              | Controller.Mounted_root e ->
                if e > pre_epoch then `New_root
                else if e = pre_epoch then `Old_root
                else `Failure (Printf.sprintf "recovery mounted epoch %d older than the last \
                                               committed root %d" e pre_epoch))
        end))

let explore_snapshot_commit ?(config = default_snap_config) ops =
  let points =
    match check_snap_state config ops ~mode:`Count with `Points n -> n | _ -> 0
  in
  let sample count =
    if points <= 0 || count <= 0 then []
    else if points <= count then List.init points Fun.id
    else if count = 1 then [ points / 2 ]
    else List.sort_uniq compare (List.init count (fun i -> i * (points - 1) / (count - 1)))
  in
  let report =
    ref
      {
        sn_points = points;
        sn_states = 0;
        sn_root_old = 0;
        sn_root_new = 0;
        sn_fsck = 0;
        sn_zero_roots = 0;
        sn_failure = None;
      }
  in
  List.iter
    (fun i ->
      if (!report).sn_failure = None then begin
        let outcome =
          try check_snap_state config ops ~mode:(`Kill i)
          with exn ->
            `Failure (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
        in
        let r = { !report with sn_states = (!report).sn_states + 1 } in
        report :=
          (match outcome with
          | `Old_root -> { r with sn_root_old = r.sn_root_old + 1 }
          | `New_root -> { r with sn_root_new = r.sn_root_new + 1 }
          | `Fsck ->
            (* A torn commit legitimately lands here (the sabotage
               destroyed the live root before the kill window); with the
               correct ordering a root always exists, so falling back to
               the walk means validation rejected roots it should not
               have. *)
            if config.sc_torn then { r with sn_fsck = r.sn_fsck + 1 }
            else
              {
                r with
                sn_failure =
                  Some
                    {
                      cx_ops = ops;
                      cx_crash_index = i;
                      cx_survivors = [];
                      cx_detail = "valid roots existed but recovery fell back to the fsck walk";
                    };
              }
          | `Zero_roots ->
            if config.sc_torn then { r with sn_zero_roots = r.sn_zero_roots + 1 }
            else
              {
                r with
                sn_failure =
                  Some
                    {
                      cx_ops = ops;
                      cx_crash_index = i;
                      cx_survivors = [];
                      cx_detail = "zero valid roots after kill during publication";
                    };
              }
          | `Points _ -> r
          | `Failure d ->
            {
              r with
              sn_failure =
                Some { cx_ops = ops; cx_crash_index = i; cx_survivors = []; cx_detail = d };
            })
      end)
    (sample config.sc_kill_points);
  !report

(* ------------------------------------------------------------------ *)
(* SIGKILL inside QoS throttle states (DESIGN.md §4.17)

   Property: admission control composes with process death.  A tenant
   with a tiny share is driven until the token bucket runs dry — so its
   fibers park at the ring mouth and pay admission delays on charged
   syscalls — then killed at sampled kill points, which include points
   immediately around those throttled parks.  In every sampled state:

   - the watchdog must escalate the dead tenant (a throttled park must
     not read as liveness);
   - the page-accounting invariant must balance after the teardown GC
     *and* after an honest probe (tokens owed are forgotten with the
     tenant, pages are not);
   - a fresh honest tenant must stay serviceable.

   The scenario self-checks: if no sampled state ever saw the victim
   throttled, the campaign reports failure — it would not be testing
   the interaction it claims to. *)

type qos_config = {
  qd_kill_points : int; (* kill-injection states sampled *)
  qd_timeout_ns : float; (* watchdog heartbeat timeout (also the lease) *)
  qd_ring : int; (* victim ring depth (ring-mouth parks are kill points) *)
  qd_share : float; (* victim share, dwarfed by [qd_rest_share] *)
  qd_rest_share : float; (* a competing enforced share (no process behind it) *)
  qd_ops : int; (* write+share cycles the victim attempts *)
}

let default_qos_config =
  {
    qd_kill_points = 12;
    qd_timeout_ns = 1.0e6;
    qd_ring = 4;
    qd_share = 0.02;
    qd_rest_share = 10.0;
    qd_ops = 10;
  }

type qos_report = {
  qr_points : int; (* kill points the victim crosses end to end *)
  qr_states : int;
  qr_throttles : int; (* victim throttle events summed across states *)
  qr_escalated : int;
  qr_reclaimed : int;
  qr_leaked : int; (* pages still dead-owned after GC (must be 0) *)
  qr_invariant_failures : int;
  qr_failure : counterexample option;
}

let pp_qos_report ppf r =
  Fmt.pf ppf
    "kill points %d  states %d  victim throttles %d  escalated %d@.gc: reclaimed %d  leaked %d  \
     invariant failures %d@.%s"
    r.qr_points r.qr_states r.qr_throttles r.qr_escalated r.qr_reclaimed r.qr_leaked
    r.qr_invariant_failures
    (match r.qr_failure with
    | None -> "isolation + reclamation held in every throttled-kill state"
    | Some cx -> Fmt.str "FAILED:@.%a" pp_counterexample cx)

let qos_victim fs libfs n =
  let payload = String.make 256 'q' in
  for i = 0 to n - 1 do
    ignore (Fs.write_file fs (Printf.sprintf "/q%d" i) payload : (unit, _) result);
    (* the sharing point: unmaps ride the ring, verification is charged *)
    Libfs.unmap_everything libfs
  done

let check_qos_state cfg ~mode =
  in_world (fun ~sched ~pmem ~mmu ->
      let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns:cfg.qd_timeout_ns () in
      (* a competing enforced share shrinks the victim's fraction;
         no process needs to sit behind it *)
      Controller.set_qos_share ctl ~group:99 cfg.qd_rest_share;
      let libfs1 =
        Libfs.mount ~ctl ~proc:1 ~cred ~qos_share:cfg.qd_share ~ring:cfg.qd_ring ()
      in
      let fs = Libfs.ops libfs1 in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () -> qos_victim fs libfs1 cfg.qd_ops));
      (match mode with
      | `Count -> Sched.arm_count sched
      | `Kill i -> Sched.arm_kill sched ~after:i);
      Sched.delay death_horizon_ns;
      Sched.disarm sched;
      (* A throttled victim spends most of the horizon parked, so the
         sampled kill can land just before the horizon's edge — give the
         heartbeat timeout room to expire before judging the watchdog. *)
      (match mode with `Kill _ -> Sched.delay (2.0 *. cfg.qd_timeout_ns) | `Count -> ());
      match mode with
      | `Count -> `Points (Sched.kill_points_crossed sched)
      | `Kill _ -> (
        let throttles =
          List.fold_left
            (fun acc s ->
              if s.Controller.ts_group = 1 then acc + s.Controller.ts_throttles else acc)
            0 (Controller.qos_stats ctl)
        in
        let wd = Controller.make_watchdog_report () in
        try
          let escalated =
            Controller.watchdog_once ~report:wd ctl ~timeout_ns:cfg.qd_timeout_ns
          in
          if not (List.mem 1 escalated) then
            `Failure
              ( throttles,
                Printf.sprintf "watchdog did not escalate the victim (escalated: [%s])"
                  (String.concat ";" (List.map string_of_int escalated)) )
          else begin
            let gc1 = Controller.gc_once ctl in
            if (not gc1.Controller.gc_invariant_ok) || gc1.Controller.gc_leaked > 0 then
              `Failure
                ( throttles,
                  Fmt.str "page accounting broken after teardown GC: %a" Controller.pp_gc_report
                    gc1 )
            else begin
              (* honest-tenant serviceability: a fresh unthrottled
                 process must get real work through *)
              let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred () in
              let fs2 = Libfs.ops libfs2 in
              match Fs.write_file fs2 "/honest" "alive" with
              | Error e ->
                `Failure
                  ( throttles,
                    Printf.sprintf "honest tenant not serviceable after the kill: %s"
                      (Trio_core.Fs_types.errno_to_string e) )
              | Ok () -> (
                (match fs2.Fs.readdir "/" with Ok _ | Error _ -> ());
                ignore (Controller.drain_unverified ctl : int);
                let gc2 = Controller.gc_once ctl in
                if (not gc2.Controller.gc_invariant_ok) || gc2.Controller.gc_leaked > 0 then
                  `Failure
                    ( throttles,
                      Fmt.str "page accounting broken after probe GC: %a"
                        Controller.pp_gc_report gc2 )
                else begin
                  ignore (Controller.unmap_all ctl ~proc:2);
                  `Ok (throttles, wd, gc1, gc2)
                end)
            end
          end
        with exn ->
          `Failure (throttles, Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))))

let explore_qos ?(config = default_qos_config) () =
  let points =
    match check_qos_state config ~mode:`Count with `Points n -> n | _ -> 0
  in
  let sample count =
    if points <= 0 || count <= 0 then []
    else if points <= count then List.init points Fun.id
    else if count = 1 then [ points / 2 ]
    else List.sort_uniq compare (List.init count (fun i -> i * (points - 1) / (count - 1)))
  in
  let report =
    ref
      {
        qr_points = points;
        qr_states = 0;
        qr_throttles = 0;
        qr_escalated = 0;
        qr_reclaimed = 0;
        qr_leaked = 0;
        qr_invariant_failures = 0;
        qr_failure = None;
      }
  in
  List.iter
    (fun i ->
      if (!report).qr_failure = None then begin
        let outcome =
          try check_qos_state config ~mode:(`Kill i)
          with exn ->
            `Failure (0, Printf.sprintf "uncaught exception escaped the state: %s"
                           (Printexc.to_string exn))
        in
        let r = !report in
        report :=
          (match outcome with
          | `Ok (throttles, wd, gc1, gc2) ->
            {
              r with
              qr_states = r.qr_states + 1;
              qr_throttles = r.qr_throttles + throttles;
              qr_escalated = r.qr_escalated + List.length wd.Controller.wd_escalated;
              qr_reclaimed =
                r.qr_reclaimed + gc1.Controller.gc_reclaimed_pages
                + gc2.Controller.gc_reclaimed_pages;
              qr_leaked = r.qr_leaked + gc1.Controller.gc_leaked + gc2.Controller.gc_leaked;
            }
          | `Points _ -> r
          | `Failure (throttles, d) ->
            {
              r with
              qr_states = r.qr_states + 1;
              qr_throttles = r.qr_throttles + throttles;
              qr_invariant_failures =
                (r.qr_invariant_failures
                +
                if String.length d >= 15 && String.sub d 0 15 = "page accounting" then 1 else 0);
              qr_failure =
                Some { cx_ops = []; cx_crash_index = i; cx_survivors = []; cx_detail = d };
            })
      end)
    (sample config.qd_kill_points);
  let r = !report in
  if r.qr_failure = None && r.qr_states > 0 && r.qr_throttles = 0 then
    {
      r with
      qr_failure =
        Some
          {
            cx_ops = [];
            cx_crash_index = -1;
            cx_survivors = [];
            cx_detail =
              "the victim was never throttled in any sampled state: the campaign is not \
               exercising the QoS/kill interaction";
          };
    }
  else r

(* ------------------------------------------------------------------ *)
(* SIGKILL inside directory-index mutations (DESIGN.md §4.18)

   The B-link tree over a directory's name hashes is an accelerator with
   its own multi-store mutations — leaf inserts, node splits, root
   swings — layered over the dentry truth.  The crash discipline says a
   process may die between any two of those stores and the system must
   come back *certifiable*: after watchdog escalation and GC, every file
   passes a Full verification sweep (I5 included) — the tree either
   survived intact, was rolled back with its directory's checkpoint, or
   the directory legally dropped to unindexed (root = 0, which I5
   skips).  Never a dangling root, never a tree that disagrees with the
   dentries.

   Node capacity is shrunk ({!Trio_core.Dirindex.set_test_capacity}) so
   a handful of creates forces leaf and root splits: the sampled kill
   points land inside the interesting multi-store windows, not just on
   the op boundaries between them.

   {!dir_index_mutation_caught} is the campaign's self-test: it arms the
   LibFS skip-index-updates switch (maintenance silently dropped —
   exactly what a buggy or malicious LibFS would do), keeps creating,
   and the verifier's I5 must CATCH the divergence at the sharing
   point.  That is the proof this machinery can see the bug class at
   all. *)

module Dirindex = Trio_core.Dirindex
module Layout = Trio_core.Layout
module Stats = Trio_sim.Stats

type dir_config = {
  dx_kill_points : int; (* kill-injection states sampled *)
  dx_entries : int; (* creates the victim attempts *)
  dx_capacity : int; (* forced B-link node capacity (clamped to >= 2) *)
  dx_timeout_ns : float; (* watchdog heartbeat timeout (also the lease) *)
}

let default_dir_config =
  { dx_kill_points = 18; dx_entries = 16; dx_capacity = 4; dx_timeout_ns = 1.0e6 }

type dir_report = {
  dx_points : int; (* kill points the victim crosses end to end *)
  dx_states : int;
  dx_indexed : int; (* states certified with a live tree on the root dir *)
  dx_unindexed : int; (* states certified unindexed (legal: root = 0) *)
  dx_splits : int; (* node splits summed across states (capacity-forcing proof) *)
  dx_failure : counterexample option;
}

let pp_dir_report ppf r =
  Fmt.pf ppf
    "kill points %d  states %d  certified: indexed %d, unindexed %d  splits %d@.%s"
    r.dx_points r.dx_states r.dx_indexed r.dx_unindexed r.dx_splits
    (match r.dx_failure with
    | None -> "every kill state recovered to a certified directory index"
    | Some cx -> Fmt.str "FAILED:@.%a" pp_counterexample cx)

(* The victim: a create/unlink/rename mix over the root directory with
   sharing points, so kills land inside inserts, deletes, splits and
   verification alike. *)
let dir_victim fs libfs n =
  let payload = String.make 64 'd' in
  for i = 0 to n - 1 do
    ignore (Fs.write_file fs (Printf.sprintf "/dx%02d" i) payload : (unit, _) result);
    if i mod 5 = 4 then
      ignore (fs.Fs.unlink (Printf.sprintf "/dx%02d" (i - 2)) : (unit, _) result);
    if i mod 7 = 6 then
      ignore
        (fs.Fs.rename (Printf.sprintf "/dx%02d" (i - 1)) (Printf.sprintf "/dr%02d" i)
          : (unit, _) result);
    if i mod 4 = 3 then Libfs.unmap_everything libfs
  done

let check_dir_state cfg ~mode =
  in_world (fun ~sched ~pmem ~mmu ->
      Dirindex.set_test_capacity (Some cfg.dx_capacity);
      Fun.protect ~finally:(fun () -> Dirindex.set_test_capacity None) @@ fun () ->
      let ctl = Controller.create ~sched ~pmem ~mmu ~lease_ns:cfg.dx_timeout_ns () in
      let libfs1 = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs1 in
      Sched.spawn sched (fun () ->
          Sched.killable (fun () -> dir_victim fs libfs1 cfg.dx_entries));
      (match mode with
      | `Count -> Sched.arm_count sched
      | `Kill i -> Sched.arm_kill sched ~after:i);
      Sched.delay death_horizon_ns;
      Sched.disarm sched;
      match mode with
      | `Count -> `Points (Sched.kill_points_crossed sched)
      | `Kill _ -> (
        try
          let wd = Controller.make_watchdog_report () in
          let escalated =
            Controller.watchdog_once ~report:wd ctl ~timeout_ns:cfg.dx_timeout_ns
          in
          if not (List.mem 1 escalated) then
            `Failure
              (Printf.sprintf "watchdog did not escalate the victim (escalated: [%s])"
                 (String.concat ";" (List.map string_of_int escalated)))
          else begin
            let gc1 = Controller.gc_once ctl in
            if (not gc1.Controller.gc_invariant_ok) || gc1.Controller.gc_leaked > 0 then
              `Failure
                (Fmt.str "page accounting broken after teardown GC: %a" Controller.pp_gc_report
                   gc1)
            else begin
              (* a second process resolves through whatever tree (or
                 fallback scan) survived; clean errnos only *)
              let libfs2 = Libfs.mount ~ctl ~proc:2 ~cred () in
              let fs2 = Libfs.ops libfs2 in
              match Script.visible_names fs2 with
              | Error d -> `Failure (Printf.sprintf "namespace not enumerable after the kill: %s" d)
              | Ok names ->
                List.iter
                  (fun path -> match Fs.read_file fs2 path with Ok _ | Error _ -> ())
                  names;
                ignore (Controller.drain_unverified ctl : int);
                let gc2 = Controller.gc_once ctl in
                if (not gc2.Controller.gc_invariant_ok) || gc2.Controller.gc_leaked > 0 then
                  `Failure
                    (Fmt.str "page accounting broken after probe GC: %a"
                       Controller.pp_gc_report gc2)
                else begin
                  (* certification: the surviving state passes a Full
                     sweep — I5 holds for every directory *)
                  let checked, bad = Controller.audit_all ctl in
                  if bad > 0 then
                    `Failure
                      (Fmt.str "%d of %d file(s) fail Full verification after the kill:%a" bad
                         checked
                         (Fmt.list ~sep:Fmt.nop (fun ppf (ino, vs) ->
                              Fmt.pf ppf "@.  ino %d: %a" ino
                                (Fmt.list ~sep:Fmt.comma Trio_core.Verifier.pp_violation)
                                vs))
                         (Controller.audit_failures ctl))
                  else begin
                    ignore (Controller.unmap_all ctl ~proc:2);
                    let root =
                      Layout.read_dindex_root pmem ~actor:Pmem.kernel_actor
                        ~dentry_addr:Layout.root_dentry_addr
                    in
                    let splits =
                      int_of_float (Stats.get (Controller.stats ctl) "verify.dindex.splits")
                    in
                    `Certified (root <> 0, splits)
                  end
                end
            end
          end
        with exn -> `Failure (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))))

let explore_dir_index ?(config = default_dir_config) () =
  let points =
    match check_dir_state config ~mode:`Count with `Points n -> n | _ -> 0
  in
  let sample count =
    if points <= 0 || count <= 0 then []
    else if points <= count then List.init points Fun.id
    else if count = 1 then [ points / 2 ]
    else List.sort_uniq compare (List.init count (fun i -> i * (points - 1) / (count - 1)))
  in
  let report =
    ref
      {
        dx_points = points;
        dx_states = 0;
        dx_indexed = 0;
        dx_unindexed = 0;
        dx_splits = 0;
        dx_failure = None;
      }
  in
  List.iter
    (fun i ->
      if (!report).dx_failure = None then begin
        let outcome =
          try check_dir_state config ~mode:(`Kill i)
          with exn ->
            `Failure
              (Printf.sprintf "uncaught exception escaped the state: %s" (Printexc.to_string exn))
        in
        let r = { !report with dx_states = (!report).dx_states + 1 } in
        report :=
          (match outcome with
          | `Certified (indexed, splits) ->
            {
              r with
              dx_indexed = (r.dx_indexed + if indexed then 1 else 0);
              dx_unindexed = (r.dx_unindexed + if indexed then 0 else 1);
              dx_splits = r.dx_splits + splits;
            }
          | `Points _ -> r
          | `Failure d ->
            {
              r with
              dx_failure =
                Some { cx_ops = []; cx_crash_index = i; cx_survivors = []; cx_detail = d };
            })
      end)
    (sample config.dx_kill_points);
  let r = !report in
  if r.dx_failure = None && r.dx_states > 0 && r.dx_splits = 0 then
    {
      r with
      dx_failure =
        Some
          {
            cx_ops = [];
            cx_crash_index = -1;
            cx_survivors = [];
            cx_detail =
              "no sampled state ever split an index node: the campaign is not exercising \
               the multi-store tree mutations it claims to";
          };
    }
  else r

(* Mutation self-test: with index maintenance silently dropped, the
   verifier's I5 must flag the divergence at the sharing point.  Returns
   [true] when it was caught. *)
let dir_index_mutation_caught ?(capacity = 4) () =
  in_world (fun ~sched ~pmem ~mmu ->
      ignore (pmem : Pmem.t);
      Dirindex.set_test_capacity (Some capacity);
      Fun.protect
        ~finally:(fun () ->
          Dirindex.set_test_capacity None;
          Libfs.set_skip_index_updates false)
      @@ fun () ->
      let ctl = Controller.create ~sched ~pmem ~mmu () in
      let libfs = Libfs.mount ~ctl ~proc:1 ~cred () in
      let fs = Libfs.ops libfs in
      (* honest prefix: the root directory gains a live, verified tree *)
      for i = 0 to 5 do
        ignore (Fs.write_file fs (Printf.sprintf "/m%d" i) "honest" : (unit, _) result)
      done;
      Libfs.unmap_everything libfs;
      if Controller.corruption_events ctl <> [] then
        failwith "dir_index_mutation_caught: honest prefix was flagged";
      (* sabotage: dentries keep landing, the tree stops being maintained *)
      Libfs.set_skip_index_updates true;
      for i = 6 to 11 do
        ignore (Fs.write_file fs (Printf.sprintf "/m%d" i) "stale" : (unit, _) result)
      done;
      Libfs.unmap_everything libfs;
      List.exists
        (fun (_, _, vs) ->
          List.exists (fun v -> v.Trio_core.Verifier.check = `I5) vs)
        (Controller.corruption_events ctl))
