(* Incremental-vs-full verification differential gate (DESIGN.md §4.13).

   The incremental verifier serves snapshot bytes for provably-clean
   pages instead of re-reading them, so its *verdicts* must be
   byte-identical to a full I1–I4 walk — only the simulated cost may
   differ.  This module makes that property executable:

   - [differential]: run the §6.5 attack suite (handcrafted + scripted
     campaign) and a pinned-seed crash-state exploration twice, once
     under [Full] and once under [Incremental] verification, and
     compare every rendered verdict byte for byte.

   - [mutation_self_test]: arm {!Mmu.set_crash_test_drop_writes} —
     a seeded bug that silently drops pages from the MMU write-set, so
     the incremental verifier wrongly trusts stale snapshots — and
     demand that the differential gate *catches* it.  A gate that
     cannot see a broken dirty-tracker proves nothing.

   Both entry points restore the global verification mode and the
   mutation flag on every exit path. *)

module Controller = Trio_core.Controller
module Mmu = Trio_core.Mmu
module Attacks = Trio_attacks.Attacks
module Rng = Trio_util.Rng

(* Everything one verification mode produces, rendered to stable
   strings so comparison is trivially byte-exact. *)
type snapshot = {
  vs_handcrafted : string list; (* one line per handcrafted attack *)
  vs_campaign : string; (* campaign counters *)
  vs_explore : string; (* crash-exploration outcome *)
}

let render_outcome (o : Attacks.outcome) =
  Fmt.str "%a :: %s" Attacks.pp_outcome o (String.concat " / " o.Attacks.a_events)

let render_campaign (c : Attacks.campaign_result) =
  Printf.sprintf "total=%d detected=%d consistent=%d" c.Attacks.c_total c.Attacks.c_detected
    c.Attacks.c_consistent

let render_explore (o : Explore.outcome) =
  Fmt.str "points=%d states=%d exhaustive=%b %s" o.Explore.crash_points o.Explore.states
    o.Explore.exhaustive
    (match o.Explore.counterexample with
    | None -> "no-counterexample"
    | Some cx -> Fmt.str "counterexample: %a" Explore.pp_counterexample cx)

(* The exploration slice is deliberately small: the gate's job is to
   compare verdicts across modes, not to re-run the deep campaign. *)
let explore_config =
  {
    Explore.default_config with
    Explore.max_states = 256;
    check_replay = false;
    shrink = false;
  }

let run_suite ~seeds ~script_seed ~script_len mode =
  let prev = Controller.current_verify_mode () in
  Controller.set_verify_mode mode;
  Fun.protect
    ~finally:(fun () -> Controller.set_verify_mode prev)
    (fun () ->
      let handcrafted = List.map render_outcome (Attacks.run_handcrafted ()) in
      let campaign = render_campaign (Attacks.run_campaign ~seeds ()) in
      let script = Script.generate (Rng.create script_seed) ~len:script_len in
      let explore = render_explore (Explore.explore ~config:explore_config script) in
      { vs_handcrafted = handcrafted; vs_campaign = campaign; vs_explore = explore })

(* Line-by-line comparison; [] = byte-identical. *)
let compare_snapshots ~(full : snapshot) ~(incremental : snapshot) =
  let diffs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  let nf = List.length full.vs_handcrafted and ni = List.length incremental.vs_handcrafted in
  if nf <> ni then add "handcrafted attack count differs: full=%d incremental=%d" nf ni
  else
    List.iteri
      (fun i (f, g) -> if f <> g then add "attack %d:\n  full:        %s\n  incremental: %s" i f g)
      (List.combine full.vs_handcrafted incremental.vs_handcrafted);
  if full.vs_campaign <> incremental.vs_campaign then
    add "campaign:\n  full:        %s\n  incremental: %s" full.vs_campaign
      incremental.vs_campaign;
  if full.vs_explore <> incremental.vs_explore then
    add "exploration:\n  full:        %s\n  incremental: %s" full.vs_explore
      incremental.vs_explore;
  List.rev !diffs

type verdict = {
  vd_scenarios : int; (* verdicts compared across the two runs *)
  vd_diffs : string list; (* [] = the modes agree byte for byte *)
}

let scenario_count s = List.length s.vs_handcrafted + 2 (* campaign + exploration *)

let differential ?(seeds = 2) ?(script_seed = 1) ?(script_len = 6) () =
  let full = run_suite ~seeds ~script_seed ~script_len Controller.Full in
  let incremental = run_suite ~seeds ~script_seed ~script_len Controller.Incremental in
  {
    vd_scenarios = scenario_count full;
    vd_diffs = compare_snapshots ~full ~incremental;
  }

(* Self-test: with the dirty-tracker sabotaged, the incremental run
   must *diverge* from the full run — otherwise the gate is blind. *)
let mutation_self_test ?(seeds = 2) ?(script_seed = 1) ?(script_len = 6) () =
  let full = run_suite ~seeds ~script_seed ~script_len Controller.Full in
  Mmu.set_crash_test_drop_writes true;
  let incremental =
    Fun.protect
      ~finally:(fun () -> Mmu.set_crash_test_drop_writes false)
      (fun () -> run_suite ~seeds ~script_seed ~script_len Controller.Incremental)
  in
  let diffs = compare_snapshots ~full ~incremental in
  { vd_scenarios = scenario_count full; vd_diffs = diffs }

let pp_verdict ppf v =
  match v.vd_diffs with
  | [] -> Fmt.pf ppf "%d scenarios: verdicts byte-identical across modes" v.vd_scenarios
  | ds ->
    Fmt.pf ppf "%d scenarios, %d divergences:@." v.vd_scenarios (List.length ds);
    List.iter (fun d -> Fmt.pf ppf "  %s@." d) ds
